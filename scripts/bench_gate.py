#!/usr/bin/env python3
"""CI gate over telemetry JSON artifacts (common/telemetry.h::ToJson output).

Fails (exit 1) when any must-be-zero counter is nonzero in any of the given
snapshots. The defaults encode the fault-free contract of the protocol fabric:
on a run with no FaultPlan installed, nothing may be dropped, no secure-channel
frame may be rejected, no retry budget may be exhausted, and nothing may log at
WARNING or above.

Usage:
  scripts/bench_gate.py telemetry1.json [telemetry2.json ...]
      [--forbid COUNTER_PREFIX ...]   extra must-be-zero counter prefixes
      [--require COUNTER ...]         counters that must be present AND nonzero

Counter prefixes match exact names or any dotted child (e.g. "net.bus.dropped"
matches "net.bus.dropped" and "net.bus.dropped.upload").
"""

import argparse
import json
import sys

DEFAULT_FORBIDDEN = [
    "net.bus.dropped",          # undeliverable messages (unknown/closed endpoint)
    "net.bus.fault_dropped",    # fault-injected losses: requires a FaultPlan
    "net.channel.open_rejected",  # tampered/replayed/malformed secure frames
    "net.retry.exhausted",      # a peer stayed unresponsive through the whole budget
    "common.log.warnings",
    "common.log.errors",
]


def matches(prefix: str, name: str) -> bool:
    return name == prefix or name.startswith(prefix + ".")


def check_snapshot(path: str, forbidden, required) -> list:
    try:
        with open(path, encoding="utf-8") as f:
            snapshot = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: unreadable telemetry JSON: {e}"]

    errors = []
    counters = snapshot.get("counters")
    if not isinstance(counters, dict):
        return [f"{path}: no 'counters' object — not a telemetry snapshot?"]

    for name, value in sorted(counters.items()):
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            errors.append(f"{path}: counter {name} has non-numeric value {value!r}")
            continue
        for prefix in forbidden:
            if matches(prefix, name) and value != 0:
                errors.append(f"{path}: must-be-zero counter {name} = {value}")
                break
    # Distinguish "the instrumentation disappeared" (counter absent — a refactor
    # silently dropped the DETA_COUNTER site or renamed it) from "the code path never
    # ran" (counter present but zero): they have different fixes, and the old combined
    # message sent people hunting in the wrong layer.
    for name in required:
        if name not in counters:
            hint = ""
            prefix = name.rsplit(".", 1)[0]
            near = sorted(c for c in counters if c.startswith(prefix))[:5]
            if near:
                hint = f" (present under the same prefix: {', '.join(near)})"
            errors.append(
                f"{path}: required counter {name} is MISSING from the snapshot — the "
                f"counter site may have been removed or renamed{hint}")
        else:
            value = counters[name]
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                pass  # already reported as non-numeric above
            elif value == 0:
                errors.append(
                    f"{path}: required counter {name} is present but ZERO — the "
                    "instrumented code path never executed in this run")
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("snapshots", nargs="+", help="telemetry JSON files")
    parser.add_argument("--forbid", action="append", default=[],
                        help="extra must-be-zero counter prefix")
    parser.add_argument("--require", action="append", default=[],
                        help="counter that must be present and nonzero")
    args = parser.parse_args()

    forbidden = DEFAULT_FORBIDDEN + args.forbid
    all_errors = []
    for path in args.snapshots:
        all_errors.extend(check_snapshot(path, forbidden, args.require))

    if all_errors:
        for e in all_errors:
            print(f"bench_gate: FAIL {e}", file=sys.stderr)
        return 1
    print(f"bench_gate: OK ({len(args.snapshots)} snapshot(s) clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
