#!/usr/bin/env python3
"""CI gate over bench artifacts: telemetry counters and perf baselines.

Counter mode (default): fails (exit 1) when any must-be-zero counter is nonzero
in any of the given telemetry snapshots (common/telemetry.h::ToJson output). The
defaults encode the fault-free contract of the protocol fabric: on a run with no
FaultPlan installed, nothing may be dropped, no secure-channel frame may be
rejected, no retry budget may be exhausted, and nothing may log at WARNING or
above.

Usage:
  scripts/bench_gate.py telemetry1.json [telemetry2.json ...]
      [--forbid COUNTER_PREFIX ...]   extra must-be-zero counter prefixes
      [--require COUNTER ...]         counters that must be present AND nonzero

Counter prefixes match exact names or any dotted child (e.g. "net.bus.dropped"
matches "net.bus.dropped" and "net.bus.dropped.upload").

Baseline mode (--baseline): the positional files are fresh bench snapshots
(scripts/bench_snapshot.py schema) compared row-by-row against a committed
baseline. A row is a FAIL when its ns_per_op exceeds the baseline by more than
--max-regression percent; a baseline row MISSING from the fresh snapshot is a
hard error (a renamed/deleted benchmark silently exits the perf trajectory
otherwise). Fresh rows absent from the baseline are reported but pass — they
join the gate when the baseline is next regenerated.

Usage:
  scripts/bench_gate.py --baseline BENCH_crypto.json --max-regression 35 fresh.json
"""

import argparse
import json
import sys

DEFAULT_FORBIDDEN = [
    "net.bus.dropped",          # undeliverable messages (unknown/closed endpoint)
    "net.bus.unknown_target",   # sends routed to a name nobody registered: a protocol
                                # wiring bug (stale roster, typo'd role), never load
    "net.bus.fault_dropped",    # fault-injected losses: requires a FaultPlan
    "net.channel.open_rejected",  # tampered/replayed/malformed secure frames
    "net.retry.exhausted",      # a peer stayed unresponsive through the whole budget
    "common.log.warnings",
    "common.log.errors",
]


def matches(prefix: str, name: str) -> bool:
    return name == prefix or name.startswith(prefix + ".")


def check_snapshot(path: str, forbidden, required) -> list:
    try:
        with open(path, encoding="utf-8") as f:
            snapshot = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: unreadable telemetry JSON: {e}"]

    errors = []
    counters = snapshot.get("counters")
    if not isinstance(counters, dict):
        return [f"{path}: no 'counters' object — not a telemetry snapshot?"]

    for name, value in sorted(counters.items()):
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            errors.append(f"{path}: counter {name} has non-numeric value {value!r}")
            continue
        for prefix in forbidden:
            if matches(prefix, name) and value != 0:
                errors.append(f"{path}: must-be-zero counter {name} = {value}")
                break
    # Distinguish "the instrumentation disappeared" (counter absent — a refactor
    # silently dropped the DETA_COUNTER site or renamed it) from "the code path never
    # ran" (counter present but zero): they have different fixes, and the old combined
    # message sent people hunting in the wrong layer.
    for name in required:
        if name not in counters:
            hint = ""
            prefix = name.rsplit(".", 1)[0]
            near = sorted(c for c in counters if c.startswith(prefix))[:5]
            if near:
                hint = f" (present under the same prefix: {', '.join(near)})"
            errors.append(
                f"{path}: required counter {name} is MISSING from the snapshot — the "
                f"counter site may have been removed or renamed{hint}")
        else:
            value = counters[name]
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                pass  # already reported as non-numeric above
            elif value == 0:
                errors.append(
                    f"{path}: required counter {name} is present but ZERO — the "
                    "instrumented code path never executed in this run")
    return errors


def load_bench_rows(path: str):
    with open(path, encoding="utf-8") as f:
        snapshot = json.load(f)
    rows = snapshot.get("rows")
    if not isinstance(rows, dict):
        raise ValueError(f"{path}: no 'rows' object — not a bench_snapshot.py file?")
    return rows


def check_baseline(baseline_path: str, fresh_path: str, max_regression: float) -> list:
    """Per-row relative gate: fresh ns_per_op vs the committed baseline."""
    try:
        baseline = load_bench_rows(baseline_path)
        fresh = load_bench_rows(fresh_path)
    except (OSError, json.JSONDecodeError, ValueError) as e:
        return [f"unreadable bench snapshot: {e}"]

    errors = []
    for name in sorted(baseline):
        base_ns = baseline[name].get("ns_per_op")
        if not isinstance(base_ns, (int, float)) or base_ns <= 0:
            errors.append(f"{baseline_path}: row {name} has bad ns_per_op {base_ns!r}")
            continue
        if name not in fresh:
            errors.append(
                f"{fresh_path}: baseline row {name} is MISSING — the benchmark was "
                "removed or renamed; regenerate the baseline if that was intentional")
            continue
        new_ns = fresh[name].get("ns_per_op")
        if not isinstance(new_ns, (int, float)) or new_ns <= 0:
            errors.append(f"{fresh_path}: row {name} has bad ns_per_op {new_ns!r}")
            continue
        delta_pct = (new_ns - base_ns) / base_ns * 100.0
        verdict = "FAIL" if delta_pct > max_regression else "ok"
        print(f"bench_gate: {verdict:4s} {name}: {base_ns:.0f} -> {new_ns:.0f} ns/op "
              f"({delta_pct:+.1f}%, limit +{max_regression:.0f}%)")
        if delta_pct > max_regression:
            errors.append(
                f"{name}: {new_ns:.0f} ns/op is {delta_pct:+.1f}% vs baseline "
                f"{base_ns:.0f} (limit +{max_regression:.0f}%)")
    for name in sorted(set(fresh) - set(baseline)):
        print(f"bench_gate: new  {name}: {fresh[name].get('ns_per_op')} ns/op "
              "(not in baseline; joins the gate at the next baseline refresh)")
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("snapshots", nargs="+",
                        help="telemetry JSON files (counter mode) or fresh bench "
                             "snapshots (--baseline mode)")
    parser.add_argument("--forbid", action="append", default=[],
                        help="extra must-be-zero counter prefix")
    parser.add_argument("--require", action="append", default=[],
                        help="counter that must be present and nonzero")
    parser.add_argument("--baseline", default=None,
                        help="committed bench snapshot to gate ns_per_op against")
    parser.add_argument("--max-regression", type=float, default=35.0,
                        help="per-row allowed ns_per_op increase in percent "
                             "(baseline mode; default 35)")
    args = parser.parse_args()

    all_errors = []
    if args.baseline is not None:
        for path in args.snapshots:
            all_errors.extend(check_baseline(args.baseline, path, args.max_regression))
    else:
        forbidden = DEFAULT_FORBIDDEN + args.forbid
        for path in args.snapshots:
            all_errors.extend(check_snapshot(path, forbidden, args.require))

    if all_errors:
        for e in all_errors:
            print(f"bench_gate: FAIL {e}", file=sys.stderr)
        return 1
    print(f"bench_gate: OK ({len(args.snapshots)} snapshot(s) clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
