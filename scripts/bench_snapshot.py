#!/usr/bin/env python3
"""Records a perf snapshot of the micro benches as a committed baseline.

Runs the given google-benchmark binaries with --benchmark_format=json and writes
one consolidated snapshot:

    {"commit": "<git rev>", "date": "YYYY-MM-DD", "rows": {
        "<bench>/<row name>": {"ns_per_op": <real_time ns>, "ops": <iterations>},
        ...}}

Thread pinning: rows from multi-threaded benches encode their thread count in the
row name (e.g. "coords:4096/threads:2"); --threads keeps only rows matching that
count (default 1) so the committed baseline never mixes parallel speedups into a
single-thread trajectory. Rows without a threads column are always kept.

Usage:
    scripts/bench_snapshot.py --out BENCH_crypto.json \
        build/bench/micro_crypto build/bench/micro_aggregation \
        [--threads 1] [--filter REGEX] [--min-time SECS]

The output is diff-friendly (sorted keys, one row per line) so baseline updates
review as a table of numbers. Compare a fresh snapshot against the committed one
with scripts/bench_gate.py --baseline (see EXPERIMENTS.md).
"""

import argparse
import json
import re
import subprocess
import sys
from datetime import date


def git_commit() -> str:
    try:
        out = subprocess.run(["git", "rev-parse", "HEAD"], capture_output=True,
                             text=True, check=True)
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def run_bench(binary: str, bench_filter: str, min_time: float) -> dict:
    cmd = [binary, "--benchmark_format=json", f"--benchmark_min_time={min_time}"]
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise RuntimeError(f"{binary} exited {proc.returncode}")
    return json.loads(proc.stdout)


def to_ns(value: float, unit: str) -> float:
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit)
    if scale is None:
        raise RuntimeError(f"unknown time_unit {unit!r}")
    return value * scale


def keep_row(name: str, threads: int) -> bool:
    m = re.search(r"threads:(\d+)", name)
    return m is None or int(m.group(1)) == threads


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("binaries", nargs="+", help="benchmark binaries to run")
    parser.add_argument("--out", required=True, help="snapshot JSON to write")
    parser.add_argument("--threads", type=int, default=1,
                        help="keep only rows pinned to this thread count (default 1)")
    parser.add_argument("--filter", default="",
                        help="--benchmark_filter regex forwarded to every binary")
    parser.add_argument("--min-time", type=float, default=0.5,
                        help="--benchmark_min_time per row (default 0.5s)")
    args = parser.parse_args()

    rows = {}
    for binary in args.binaries:
        bench = binary.rsplit("/", 1)[-1]
        report = run_bench(binary, args.filter, args.min_time)
        for b in report.get("benchmarks", []):
            if b.get("run_type") == "aggregate":
                continue  # keep raw iterations rows only
            name = b["name"]
            if not keep_row(name, args.threads):
                continue
            rows[f"{bench}/{name}"] = {
                "ns_per_op": round(to_ns(b["real_time"], b["time_unit"]), 1),
                "ops": int(b["iterations"]),
            }
        print(f"bench_snapshot: {bench}: "
              f"{sum(1 for k in rows if k.startswith(bench + '/'))} rows")

    if not rows:
        print("bench_snapshot: no rows captured — wrong filter/threads?",
              file=sys.stderr)
        return 1

    snapshot = {
        "commit": git_commit(),
        "date": date.today().isoformat(),
        "rows": {k: rows[k] for k in sorted(rows)},
    }
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(snapshot, f, indent=1)
        f.write("\n")
    print(f"bench_snapshot: wrote {len(rows)} rows to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
