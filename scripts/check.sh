#!/usr/bin/env bash
# Repository check gate: tier-1 build + full test suite, then a ThreadSanitizer build
# of the concurrency-sensitive surface (message bus / protocol threads / parallel
# layer). Run from anywhere; builds land in build*/ directories at the repo root.
#
# Usage: scripts/check.sh [--tier1-only] [--preset debug|release|asan|tsan|static]
#
#   (no flags)        tier-1 (RelWithDebInfo build + full ctest) then the TSan gate —
#                     unchanged historical behaviour.
#   --tier1-only      tier-1 only, skip the TSan gate.
#   --preset NAME     run exactly one CI leg:
#     debug           Debug build + full ctest                    (build-debug/)
#     release         Release build + full ctest                  (build-release/)
#     asan            ASan+UBSan build + full ctest               (build-asan/)
#     tsan            TSan build + concurrency-suite gtest filter (build-tsan/)
#     static          deta_lint (strict + selftest), deta_taintcheck (selftest +
#                     tree), Secret<T> negative-compile gate, clang -Wthread-safety
#                     build, thread-safety negative-compile gate, clang-tidy
#                     (build-static/). The clang legs SKIP with a message when
#                     clang/clang-tidy are not installed (the python legs always
#                     run); CI installs both plus python3-clang so the taint pass
#                     also runs on the real libclang AST.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"
jobs="$(nproc 2>/dev/null || echo 2)"

# The TSan gate covers the suites that exercise real threads: the bus and its fault
# injector, retry/secure-channel, the deterministic parallel layer, telemetry, and the
# aggregator/party/job protocol stack. Filtering keeps the (slow, ~10x) sanitized run
# feasible on small containers.
tsan_filter='MessageBus*:EndpointDedupTest*:EndpointStashTest*:FaultInjector*:Retry*:SecureChannel*:Codec*:ParallelFor*:ParallelReduce*:DefaultThreads*:ThreadInvariance*:AggregatorNode*:KeyBroker*:Auth*:Telemetry*:DetaJobFaultTest.QuorumFailureIsTypedNotAHang:*TransportConformanceTest.AuthHandshakeVerifiesAndRejects*:*TransportConformanceTest.KeyFetchServesIdenticalMaterial*'

cmake_flags_for_preset() {
  case "$1" in
    debug)   echo "-DCMAKE_BUILD_TYPE=Debug" ;;
    release) echo "-DCMAKE_BUILD_TYPE=Release" ;;
    asan)    echo "-DCMAKE_BUILD_TYPE=RelWithDebInfo -DDETA_SANITIZE=address,undefined" ;;
    tsan)    echo "-DCMAKE_BUILD_TYPE=RelWithDebInfo -DDETA_SANITIZE=thread" ;;
    *)       echo "unknown preset: $1 (debug|release|asan|tsan|static)" >&2; exit 2 ;;
  esac
}

run_preset() {
  local preset="$1"
  local build_dir="build-${preset}"
  local flags
  flags="$(cmake_flags_for_preset "${preset}")"
  echo "==> ${preset}: configure + build (${build_dir})"
  # shellcheck disable=SC2086
  cmake -B "${build_dir}" -S . ${flags} >/dev/null
  cmake --build "${build_dir}" -j "${jobs}"
  if [[ "${preset}" == "tsan" ]]; then
    echo "==> ${preset}: net/core/parallel/telemetry suites"
    TSAN_OPTIONS="halt_on_error=1" \
      "./${build_dir}/tests/deta_tests" --gtest_filter="${tsan_filter}"
  else
    echo "==> ${preset}: ctest"
    (cd "${build_dir}" && ctest --output-on-failure -j "${jobs}")
  fi
  if [[ "${preset}" == "asan" ]]; then
    # Durability gate: re-run the snapshot codec/store suites plus one crash-revive and
    # one whole-job-resume scenario with halt_on_error, so a heap error anywhere on the
    # crash/restore path fails the leg immediately instead of being absorbed by ctest's
    # per-test process isolation.
    echo "==> ${preset}: durability crash/resume gate"
    ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
      "./${build_dir}/tests/deta_tests" \
      --gtest_filter='PersistCodecTest.*:PersistSealTest.*:StateStoreTest.*:CheckpointTest.*:CrashResumeTest.FollowerCrashMidRunIsLossless:CrashResumeTest.WholeJobResumeMatchesUninterruptedRun'
  fi
  echo "==> OK (${preset})"
}

# Static-analysis leg. Two always-on checks (pure python) and three clang-only checks
# that degrade to an explicit SKIP when the toolchain is missing, so the preset is
# useful both in CI (clang installed, everything runs) and in minimal containers.
run_static() {
  local python="${PYTHON:-python3}"

  echo "==> static: deta_lint fixture selftest"
  "${python}" scripts/deta_lint.py --selftest

  echo "==> static: deta_lint --strict over src/ + tests/"
  "${python}" scripts/deta_lint.py --strict

  echo "==> static: deta_taintcheck fixture selftest"
  "${python}" scripts/deta_taintcheck.py --selftest

  echo "==> static: deta_taintcheck over the tree (internal frontend)"
  "${python}" scripts/deta_taintcheck.py --frontend internal --report taint-report.json

  echo "==> static: Secret<T> negative-compile gate"
  local rc=0
  scripts/secret_negcompile.sh "${repo_root}" || rc=$?
  if [[ "${rc}" -eq 77 ]]; then
    echo "==> static: SKIP Secret<T> negative-compile (no C++ compiler found)"
  elif [[ "${rc}" -ne 0 ]]; then
    return "${rc}"
  fi

  if ! command -v clang++ >/dev/null 2>&1; then
    echo "==> static: SKIP clang legs (clang++ not installed; annotations are no-ops under gcc)"
    echo "==> OK (static — python legs + negative-compile only)"
    return 0
  fi

  echo "==> static: clang build with -Wthread-safety -Werror=thread-safety (build-static)"
  cmake -B build-static -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++ >/dev/null
  cmake --build build-static -j "${jobs}"

  echo "==> static: thread-safety negative-compile gate"
  scripts/thread_safety_negcompile.sh "${repo_root}"

  # The taint pass again, this time on the real AST: python3-clang resolves calls and
  # arguments precisely where the internal frontend approximates. Optional because the
  # binding is an apt package, not a wheel — SKIP keeps minimal containers green.
  if "${python}" -c 'import clang.cindex' >/dev/null 2>&1; then
    echo "==> static: deta_taintcheck over the tree (libclang frontend)"
    "${python}" scripts/deta_taintcheck.py --frontend libclang \
      --compile-commands build-static/compile_commands.json --report taint-report.json
  else
    echo "==> static: SKIP libclang taint pass (python3-clang not installed)"
  fi

  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "==> static: SKIP clang-tidy (not installed)"
    echo "==> OK (static — no clang-tidy)"
    return 0
  fi

  echo "==> static: clang-tidy over src/ (compile_commands from build-static)"
  # run-clang-tidy parallelizes when available; fall back to a plain loop.
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -quiet -p build-static "${repo_root}/src/.*\.cc$"
  else
    find src -name '*.cc' -print0 | xargs -0 -n 8 -P "${jobs}" \
      clang-tidy -quiet -p build-static
  fi

  echo "==> OK (static)"
}

if [[ "${1:-}" == "--preset" ]]; then
  [[ -n "${2:-}" ]] || { echo "--preset requires an argument" >&2; exit 2; }
  if [[ "$2" == "static" ]]; then
    run_static
    exit 0
  fi
  run_preset "$2"
  exit 0
fi

echo "==> tier-1: configure + build"
cmake -B build -S . >/dev/null
cmake --build build -j "${jobs}"

echo "==> tier-1: ctest"
(cd build && ctest --output-on-failure -j "${jobs}")

if [[ "${1:-}" == "--tier1-only" ]]; then
  echo "==> OK (tier-1 only)"
  exit 0
fi

run_preset tsan
echo "==> OK"
