#!/usr/bin/env bash
# Repository check gate: tier-1 build + full test suite, then a ThreadSanitizer build
# of the concurrency-sensitive surface (message bus / protocol threads / parallel
# layer). Run from anywhere; builds land in build/ and build-tsan/ at the repo root.
#
# Usage: scripts/check.sh [--tier1-only]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"
jobs="$(nproc 2>/dev/null || echo 2)"

echo "==> tier-1: configure + build"
cmake -B build -S . >/dev/null
cmake --build build -j "${jobs}"

echo "==> tier-1: ctest"
(cd build && ctest --output-on-failure -j "${jobs}")

if [[ "${1:-}" == "--tier1-only" ]]; then
  echo "==> OK (tier-1 only)"
  exit 0
fi

echo "==> tsan: configure + build (DETA_SANITIZE=thread)"
cmake -B build-tsan -S . -DDETA_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "${jobs}"

# The TSan gate covers the suites that exercise real threads: the bus and its fault
# injector, retry/secure-channel, the deterministic parallel layer, and the
# aggregator/party/job protocol stack. Filtering keeps the (slow, ~10x) sanitized run
# feasible on small containers.
tsan_filter='MessageBus*:FaultInjector*:Retry*:SecureChannel*:Codec*:ParallelFor*:ParallelReduce*:DefaultThreads*:ThreadInvariance*:AggregatorNode*:KeyBroker*:Auth*:DetaJobFaultTest.QuorumFailureIsTypedNotAHang'
echo "==> tsan: net/core/parallel suites"
TSAN_OPTIONS="halt_on_error=1" \
  ./build-tsan/tests/deta_tests --gtest_filter="${tsan_filter}"

echo "==> OK"
