#!/usr/bin/env bash
# Negative-compile gate for the Secret<T> taint type (src/common/secret.h).
#
# Asserts two things:
#   1. tests/negative_compile/secret_ok.cc (every sanctioned use: explicit
#      construction, Expose* into crypto/seal sinks, WipeNow, copy/move/compare)
#      compiles — the control, so a broken include path can't fake failures;
#   2. every tests/negative_compile/secret_*_violation.cc — log streaming,
#      telemetry label, plaintext snapshot section, memcpy, implicit conversion
#      to T, exposure of a temporary — is REJECTED, with the diagnostic naming
#      Secret (so the failure is the taint type working, not an unrelated error).
#
# Unlike the thread-safety gate this needs no clang-only analysis — deleted
# operators and absent conversions are core C++ — so it prefers clang++ but
# falls back to g++. Exit 77 (ctest SKIP) only when no C++ compiler exists.
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"

cxx="${CXX_FOR_NEGCOMPILE:-}"
if [ -z "$cxx" ]; then
  for candidate in clang++ g++ c++; do
    if command -v "$candidate" >/dev/null 2>&1; then
      cxx="$candidate"
      break
    fi
  done
fi
if [ -z "$cxx" ]; then
  echo "SKIP: no C++ compiler (clang++/g++/c++) available"
  exit 77
fi

flags=(-std=c++20 -fsyntax-only -I "$root/src")
fixtures="$root/tests/negative_compile"
errlog="$(mktemp)"
trap 'rm -f "$errlog"' EXIT

if ! "$cxx" "${flags[@]}" "$fixtures/secret_ok.cc" 2>"$errlog"; then
  echo "FAIL: control secret_ok.cc must compile — sanctioned Secret<T> uses broke:"
  cat "$errlog"
  exit 1
fi

status=0
for bad in "$fixtures"/secret_*_violation.cc; do
  name="$(basename "$bad")"
  if "$cxx" "${flags[@]}" "$bad" 2>"$errlog"; then
    echo "FAIL: $name compiled — this leak path must be a compile error"
    status=1
    continue
  fi
  if ! grep -q "Secret" "$errlog"; then
    echo "FAIL: $name was rejected, but the diagnostic never mentions Secret —"
    echo "      the failure is not the taint type doing its job:"
    cat "$errlog"
    status=1
    continue
  fi
  echo "OK: $name rejected ($cxx)"
done

if [ "$status" -eq 0 ]; then
  echo "OK: Secret<T> negative-compile gate — control passes, all leak paths rejected"
fi
exit "$status"
