// Must-fail: secret-owning type with no wiping destructor leaves key bytes in
// freed heap memory.
#include "common/bytes.h"

class Shuffler {
 public:
  explicit Shuffler(deta::Bytes key) : key_(key) {}

 private:
  deta::Bytes key_;  // deta-lint: secret
};
