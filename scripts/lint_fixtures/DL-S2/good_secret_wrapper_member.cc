// Must-pass: Secret<T> (common/secret.h) wipes its value in its own
// destructor, so the owning class needs no wipe of its own. This is the
// preferred shape for secret members — prefer it over a bespoke destructor.
#include "common/secret.h"

class ChannelState {
 public:
  explicit ChannelState(deta::Bytes master)
      : master_secret_(deta::Secret<deta::Bytes>(std::move(master))) {}

 private:
  deta::Secret<deta::Bytes> master_secret_;  // deta-lint: secret
};
