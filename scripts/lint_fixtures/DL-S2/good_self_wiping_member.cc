// Must-pass: a member whose type wipes itself (Aead) needs no owner destructor.
#include "crypto/aead.h"

class Sealer {
 private:
  crypto::Aead aead_;  // deta-lint: secret — Aead wipes its own key schedule
};
