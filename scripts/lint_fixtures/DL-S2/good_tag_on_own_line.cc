// Must-pass: the tag-on-its-own-line form attaches to the next declaration and
// the .Wipe() member form satisfies the destructor check.
#include "crypto/bigint.h"

class TokenHolder {
 public:
  ~TokenHolder() { token_private_.Wipe(); }

 private:
  // deta-lint: secret — ECDSA signing scalar for the aggregator trust token,
  // documented across two comment lines to exercise the parser.
  crypto::BigUint token_private_;
};
