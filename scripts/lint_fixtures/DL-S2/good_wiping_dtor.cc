// Must-pass: destructor zeroizes before the allocation is released.
#include "common/bytes.h"
#include "crypto/secure_wipe.h"

class Shuffler {
 public:
  explicit Shuffler(deta::Bytes key) : key_(key) {}
  ~Shuffler() { deta::crypto::SecureWipe(key_); }

 private:
  deta::Bytes key_;  // deta-lint: secret
};
