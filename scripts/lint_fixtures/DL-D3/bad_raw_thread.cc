// Must-fail: a raw std::thread member escapes the ServiceThread join guarantee.
#include <thread>

class Worker {
 public:
  void Start() { thread_ = std::thread([] {}); }

 private:
  std::thread thread_;
};
