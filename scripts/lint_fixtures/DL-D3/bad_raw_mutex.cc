// Must-fail: raw std::mutex is invisible to -Wthread-safety.
#include <mutex>

class Counter {
 public:
  void Bump() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++value_;
  }

 private:
  std::mutex mutex_;
  int value_ = 0;
};
