// Must-pass: the annotated wrappers plus std::this_thread (not a thread handle;
// the DL-D3 regex must not confuse it with std::thread).
#include <chrono>
#include <thread>

#include "common/mutex.h"
#include "common/thread.h"

class Counter {
 public:
  void Bump() {
    deta::MutexLock lock(mutex_);
    ++value_;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

 private:
  deta::Mutex mutex_;
  int value_ DETA_GUARDED_BY(mutex_) = 0;
};
