// Must-fail: wall-clock reads make round transcripts time-dependent.
#include <chrono>

long NowMillis() {
  auto t = std::chrono::system_clock::now();
  return t.time_since_epoch().count();
}
