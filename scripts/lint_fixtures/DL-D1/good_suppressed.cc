// Must-pass: an allow() with a written reason suppresses the finding.
#include <random>

unsigned IdentitySeed() {
  // deta-lint: allow(DL-D1) fixture: documented one-time identity-key entropy
  std::random_device rd;
  return rd();
}
