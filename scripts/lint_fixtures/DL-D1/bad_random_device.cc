// Must-fail: ambient OS entropy in protocol code breaks replayability.
#include <random>

unsigned AmbientSeed() {
  std::random_device rd;
  return rd();
}
