// Must-pass: monotonic clocks are fine for timeouts/latency — they never reach wire
// bytes or aggregation state, and they don't step with NTP.
#include <ctime>

long DeadlineNanos() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return ts.tv_sec * 1000000000L + ts.tv_nsec;
}
