// Must-pass: steady_clock is the sanctioned clock (timeouts, not timestamps).
#include <chrono>

bool Expired(std::chrono::steady_clock::time_point deadline) {
  return std::chrono::steady_clock::now() >= deadline;
}
