// Must-fail: stamping frames with the wall clock (gettimeofday / CLOCK_REALTIME)
// makes wire transcripts time-dependent and NTP-step-sensitive.
#include <ctime>
#include <sys/time.h>

long FrameStampMicros() {
  timeval tv;
  gettimeofday(&tv, nullptr);
  timespec ts;
  clock_gettime(CLOCK_REALTIME, &ts);
  return tv.tv_sec * 1000000L + tv.tv_usec + ts.tv_nsec / 1000;
}
