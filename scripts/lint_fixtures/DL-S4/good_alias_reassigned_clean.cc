// Must-pass: the local briefly aliases the secret but is overwritten with a
// clean value before it reaches the section, so no plaintext key material
// lands on disk.
#include "persist/codec.h"

class Party {
 public:
  void Save(deta::persist::Snapshot& snap) {
    deta::Bytes blob = permutation_key_;
    UseForDerivation(blob);
    blob = deta::Bytes{0x01, 0x02};
    snap.Add(deta::persist::SectionType::kRaw, "marker", blob);
  }

 private:
  void UseForDerivation(const deta::Bytes& b);
  deta::Bytes permutation_key_;  // deta-lint: secret
};
