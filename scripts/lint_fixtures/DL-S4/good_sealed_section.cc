// Must-pass: the secret is sealed (AEAD under the role-bound SealKey) in the
// same statement that adds it.
#include "persist/codec.h"

class Party {
 public:
  void Save(deta::persist::Snapshot& snap, const deta::persist::SealKey& seal,
            deta::crypto::SecureRng& rng) {
    snap.Add(deta::persist::SectionType::kKeyMaterial, "perm_key",
             seal.Seal(permutation_key_, rng));
  }

 private:
  deta::Bytes permutation_key_;  // deta-lint: secret
};
