// Must-fail: the secret is copied into a local first, and only the *alias*
// reaches the snapshot Add. The same-statement regex alone misses this — the
// alias pre-pass carries the taint one hop.
#include "persist/codec.h"

class Party {
 public:
  void Save(deta::persist::Snapshot& snap) {
    deta::Bytes blob = permutation_key_;
    snap.Add(deta::persist::SectionType::kKeyMaterial, "perm_key", blob);
  }

 private:
  deta::Bytes permutation_key_;  // deta-lint: secret
};
