// Must-pass: the local is assigned from a Seal() expression, so it holds
// ciphertext — adding it to a section is exactly the sanctioned pattern.
#include "persist/codec.h"

class Party {
 public:
  void Save(deta::persist::Snapshot& snap, const deta::persist::SealKey& seal,
            deta::crypto::SecureRng& rng) {
    deta::Bytes sealed = seal.Seal(permutation_key_, rng);
    snap.Add(deta::persist::SectionType::kKeyMaterial, "perm_key", sealed);
  }

 private:
  deta::Bytes permutation_key_;  // deta-lint: secret
};
