// Must-fail: key material entering a snapshot section unsealed is plaintext on
// disk after the next StateStore::Write.
#include "persist/codec.h"

class Party {
 public:
  void Save(deta::persist::Snapshot& snap) {
    snap.Add(deta::persist::SectionType::kKeyMaterial, "perm_key", permutation_key_);
  }

 private:
  deta::Bytes permutation_key_;  // deta-lint: secret
};
