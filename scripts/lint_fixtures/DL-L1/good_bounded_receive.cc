// Must-pass: every blocking wait carries a timeout (the *For forms).
#include <chrono>

#include "common/queue.h"
#include "net/message_bus.h"

void Loop(deta::net::Endpoint* endpoint, deta::BlockingQueue<int>& queue) {
  auto m = endpoint->ReceiveFor(200);
  auto ack = endpoint->ReceiveTypeFor("ack", 200);
  auto item = queue.PopFor(std::chrono::milliseconds(200));
  auto maybe = queue.TryPop();
  (void)m; (void)ack; (void)item; (void)maybe;
}
