// Must-pass: the event loop wakes on a tick even with no socket activity, so stop
// requests and retransmission deadlines always get serviced.
#include <poll.h>
#include <sys/epoll.h>

void Loop(int epoll_fd, pollfd* fds) {
  epoll_event events[16];
  int n = epoll_wait(epoll_fd, events, 16, 20);
  int m = poll(fds, 1, 20);
  (void)n;
  (void)m;
}
