// Must-fail: ReceiveType has no timeout parameter; only ReceiveTypeFor does.
#include "net/message_bus.h"

void WaitForAck(deta::net::Endpoint* endpoint) {
  auto ack = endpoint->ReceiveType("ack");
  (void)ack;
}
