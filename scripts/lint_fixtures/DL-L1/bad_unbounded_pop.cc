// Must-fail: indefinite queue Pop() in protocol code; bad_typed_receive shape too.
#include "common/queue.h"

void Drain(deta::BlockingQueue<int>& queue) {
  auto item = queue.Pop();
  (void)item;
}
