// Must-fail: an event loop blocked on Receive() with no timeout is wedged
// forever by one dead peer.
#include "net/message_bus.h"

void Loop(deta::net::Endpoint* endpoint) {
  while (true) {
    auto m = endpoint->Receive();
    if (!m.has_value()) return;
  }
}
