// Must-fail: epoll_wait with a -1 timeout blocks forever — a peer that dies without
// closing its socket wedges the transport event loop.
#include <sys/epoll.h>

void Loop(int epoll_fd) {
  epoll_event events[16];
  for (;;) {
    int n = epoll_wait(epoll_fd, events, 16, -1);
    if (n <= 0) {
      return;
    }
  }
}
