// Must-fail: a tagged secret flowing into a log statement.
#include "common/bytes.h"
#include "common/logging.h"

class Channel {
 public:
  void Debug() {
    LOG_DEBUG() << "channel key " << ToHex(master_secret_);
  }

 private:
  deta::Bytes master_secret_;  // deta-lint: secret
};
