// Must-pass: logging non-secret metadata next to a secret member is fine.
#include "common/bytes.h"
#include "common/logging.h"

class Channel {
 public:
  void Debug() {
    LOG_DEBUG() << "channel " << channel_id_ << " established";
  }

 private:
  deta::Bytes master_secret_;  // deta-lint: secret
  std::string channel_id_;
};
