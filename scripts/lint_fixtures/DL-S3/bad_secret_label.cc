// Must-fail: secret material concatenated into a telemetry counter name would
// surface in every metrics snapshot and CI artifact.
#include "common/bytes.h"
#include "common/telemetry.h"

class Party {
 public:
  void Register() {
    deta::telemetry::GetCounter("party.key." + ToHex(mapper_seed_));
  }

 private:
  deta::Bytes mapper_seed_;  // deta-lint: secret
};
