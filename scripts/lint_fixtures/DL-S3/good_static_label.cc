// Must-pass: static label strings next to secret members are fine.
#include "common/bytes.h"
#include "common/telemetry.h"

class Party {
 public:
  void Register() {
    deta::telemetry::GetCounter("party.rounds").Add(1);
  }

 private:
  deta::Bytes mapper_seed_;  // deta-lint: secret
};
