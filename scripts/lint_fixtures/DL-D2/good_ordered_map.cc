// Must-pass: std::map iterates in key order on every platform.
#include <map>
#include <string>

int Count(const std::map<std::string, int>& m) {
  int total = 0;
  for (const auto& [k, v] : m) total += v;
  return total;
}
