// Must-fail: hash-order iteration can leak into wire bytes / snapshots.
#include <string>
#include <unordered_map>

int Count(const std::unordered_map<std::string, int>& m) {
  int total = 0;
  for (const auto& [k, v] : m) total += v;
  return total;
}
