#!/usr/bin/env python3
"""deta_taintcheck: interprocedural secret-flow checker for the DeTA tree.

Where deta_lint.py's DL-S rules are fast single-statement regex checks, this
pass tracks *flows*: a secret exposed from its Secret<T> wrapper (or a plain
`// deta-lint: secret` tagged variable) is followed through local assignments,
call arguments, return values, and builder objects (net::Writer and friends)
across functions and translation units, and reported when it reaches a
forbidden sink without passing a sanitizer.

Taint seeds
  * every `x.ExposeForCrypto() / x.ExposeForSeal() / x.ExposeMutable()` call —
    the complete exposure surface of Secret<T> (common/secret.h); inside the
    wrapper a secret is compile-time contained, so exposure sites are exactly
    where the type system hands responsibility to this checker;
  * plain variables tagged `// deta-lint: secret` whose type is not already
    self-wiping/contained (Secret<T>, Aead, SecureRng, SecureChannel).

Propagation
  * `lhs = <tainted expr>` taints lhs (strong updates: a clean reassignment
    clears it);
  * a call with a tainted argument taints the callee's matching parameter
    (summaries are context-insensitive unions over call sites, linked by
    simple name across translation units);
  * `return <tainted>` taints the function's result at call sites — but only
    when *every* definition sharing the simple name returns taint, so an
    unrelated `Serialize()` on a public type is not poisoned by
    `TransformMaterial::Serialize()` (name-based linking has no overload
    resolution; requiring unanimity keeps cross-class noise out at the cost
    of missing flows through ambiguous names — the fixture corpus pins the
    shapes that must keep working);
  * a method call with a tainted argument taints its receiver (a Writer that
    absorbed key bytes is key material); reads back off that receiver
    (`w.Take()`) are tainted;
  * calls into functions this pass cannot see propagate taint through to
    their result (conservative); `std::make_shared<X>(...)`/`make_unique`
    resolve to X's constructor, so handing a secret to a type that re-wraps
    it in a Secret member (Shuffler, ModelMapper) is not reported as a leak.

Sanitizers (a statement containing one neither propagates nor sinks)
  * Seal(        — SealKey::Seal / SecureChannel::Seal / Aead::Seal: the value
                   becomes ciphertext;
  * SecureWipe(  — erasure (also clears the wiped name's taint);
  * Secret<T>(   — re-wrapping restores compile-time containment.

Declassified callees (results are public by design even though they compute
over exposed secrets): EcdsaSign (signatures are published), Decrypt /
DecryptBatch / PaillierDecryptPackedSum (aggregate model data, not key
material), Open (the payload an authorized endpoint is meant to receive),
Sha256 / HmacSha256 (one-way outputs: MAC tags ship on the wire by design,
and the PRF-derived shuffle/mapper layouts feed the masked data path the
protocol deliberately puts on the wire). HKDF-style expansion is NOT
declassified — derived subkeys are still key material.

Forbidden sinks (finding classes)
  TC-LOG        tainted value in a DETA_LOG / LOG_* statement
  TC-TELEMETRY  tainted value in a metric name/label/value expression
  TC-PERSIST    tainted value in a Snapshot section Add() without Seal()
  TC-WIRE       tainted value in an Endpoint/Transport Send() or
                RequestReply() payload without Seal()

Findings carry the full flow: seed site, each propagation hop, sink site.
Suppress a deliberate sink with `// deta-taintcheck: allow(<class>) <reason>`
on the sink's line or the line above (the reason is mandatory).

Frontends
  --frontend libclang   parse via clang.cindex over compile_commands.json
                        (CI: exact function extents and parameter names);
  --frontend internal   self-contained parser, no dependencies (the default
                        fallback in containers that carry no libclang);
  --frontend auto       libclang when importable, else internal.
The taint engine is frontend-independent; both produce the same function
model, and the fixture corpus (--selftest) always runs the internal frontend
so its results do not depend on what is installed.

Known limits (documented, fixture-pinned): linking is by simple name (no
overload/receiver-type resolution); member-field taint does not transfer
between methods of the same class (Secret<T> members make the compile layer
carry that); loop bodies get one forward pass per fixpoint round.

Usage:
  scripts/deta_taintcheck.py [--root DIR] [--frontend auto|libclang|internal]
                             [--compile-commands build/compile_commands.json]
                             [--report out.json] [paths...]
  scripts/deta_taintcheck.py --selftest   # fixture corpus (scripts/taint_fixtures)
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys

# ---------------------------------------------------------------------------
# Configuration: seeds, sanitizers, declassification, sinks
# ---------------------------------------------------------------------------

EXPOSE_RE = re.compile(
    r"(?P<recv>[A-Za-z_][\w\.\[\]>-]*?)\s*(?:\.|->)\s*"
    r"(?P<which>ExposeForCrypto|ExposeForSeal|ExposeMutable)\s*\(")

SANITIZER_RE = re.compile(r"\bSeal\s*\(|\bSecureWipe\s*\(|\bSecret\s*<[^;=]*>\s*[({]")

DECLASSIFIED_CALLEES = {
    "EcdsaSign",                 # signatures are public protocol outputs
    "Decrypt", "DecryptBatch",   # decrypted aggregates are model data
    "PaillierDecryptPackedSum",
    "Open",                      # AEAD/channel Open yields the protected payload
    "Seal",                      # ciphertext
    "Sha256", "HmacSha256",      # one-way outputs (MAC tags are wire-public)
}

LOG_SINK = re.compile(r"\bDETA_LOG\b|\bLOG_(?:DEBUG|INFO|WARNING|ERROR)\b")
TELEMETRY_CALLEES = {"GetCounter", "GetGauge", "GetHistogram",
                     "DETA_COUNTER", "DETA_HISTOGRAM"}
WIRE_CALLEES = {"Send", "RequestReply"}

SINK_CLASSES = ("log", "telemetry", "persist", "wire")

TAG_SECRET = re.compile(r"deta-lint:\s*secret\b")
TAG_ALLOW = re.compile(r"deta-taintcheck:\s*allow\((log|telemetry|persist|wire)\)\s*(\S.*)")

# Types whose tagged members are already contained (mirror of deta_lint's
# SELF_WIPING_TYPES): the tag documents sensitivity, the type enforces it.
CONTAINED_TYPES = ("Secret<", "Aead", "SecureRng", "SecureChannel")

ASSIGN_RE = re.compile(
    r"^\s*(?:(?:const\s+)?[\w:]+(?:\s*<[^=;]*>)?[&\s\*]+)?"
    r"(?P<lhs>[A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*)*)\s*=(?P<rhs>[^=].*)$")

RETURN_RE = re.compile(r"^\s*return\b(?P<expr>[^;]*)")

CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "catch", "static_cast",
    "dynamic_cast", "reinterpret_cast", "const_cast", "decltype", "alignof",
    "new", "delete", "throw", "assert", "defined", "noexcept",
}

MAX_GLOBAL_ROUNDS = 12
MAX_CHAIN = 12


# ---------------------------------------------------------------------------
# Shared lexing helpers (string/comment stripping; mirrors deta_lint.py)
# ---------------------------------------------------------------------------

def split_code_and_comments(lines):
    code_lines, comment_lines = [], []
    in_block = False
    for raw in lines:
        code, comment = [], []
        i, n = 0, len(raw)
        while i < n:
            c = raw[i]
            if in_block:
                if raw.startswith("*/", i):
                    in_block = False
                    i += 2
                else:
                    comment.append(c)
                    i += 1
                continue
            if raw.startswith("//", i):
                comment.append(raw[i + 2:])
                break
            if raw.startswith("/*", i):
                in_block = True
                i += 2
                continue
            if c in "\"'":
                quote = c
                code.append(quote)
                i += 1
                while i < n:
                    if raw[i] == "\\":
                        i += 2
                        continue
                    if raw[i] == quote:
                        break
                    i += 1
                code.append(quote)
                i += 1
                continue
            code.append(c)
            i += 1
        code_lines.append("".join(code))
        comment_lines.append("".join(comment))
    return code_lines, comment_lines


# ---------------------------------------------------------------------------
# Function model (produced by either frontend)
# ---------------------------------------------------------------------------

class FunctionModel:
    def __init__(self, path, line, qname, params):
        self.path = path
        self.line = line
        self.qname = qname                      # e.g. SecureChannel::SerializeState
        self.simple = qname.rsplit("::", 1)[-1]
        self.params = params                    # parameter names, positional
        self.statements = []                    # (line, text)
        # Interprocedural summaries (filled by the engine):
        self.tainted_params = {}                # index -> provenance chain
        self.returns_taint = None               # provenance chain or None

    def __repr__(self):
        return f"<fn {self.qname} @ {self.path}:{self.line}>"


class Suppression:
    def __init__(self, sink_class, reason, path, line):
        self.sink_class = sink_class
        self.reason = reason
        self.path = path
        self.line = line
        self.used = False


class TaintSource:
    """A tagged plain (non-contained) variable name."""

    def __init__(self, name, path, line):
        self.name = name
        self.path = path
        self.line = line


# ---------------------------------------------------------------------------
# Internal frontend: dependency-free C++ text parser
# ---------------------------------------------------------------------------

PARAM_NAME_RE = re.compile(r"([A-Za-z_]\w*)\s*(?:\[\s*\])?$")
FUNC_NAME_RE = re.compile(r"((?:[A-Za-z_][\w]*::)*~?[A-Za-z_]\w*)\s*\(")
MEMBER_DECL = re.compile(
    r"^\s*(?:mutable\s+)?(?:static\s+)?(?:const\s+)?"
    r"(?P<type>[A-Za-z_][\w:]*(?:\s*<[^;{}]*>)?(?:\s*[\*&])?)"
    r"\s+(?P<name>[A-Za-z_]\w*)\s*(?:=[^;]*|\{[^;]*\})?;")
CLASS_DECL = re.compile(r"\b(?:class|struct)\s+(?:[A-Z_]+\s*(?:\([^)]*\))?\s*)?"
                        r"(?P<name>[A-Za-z_]\w*)[^;{]*$")


def _split_top_level(text, sep=","):
    parts, depth, buf = [], 0, []
    for c in text:
        if c in "(<[{":
            depth += 1
        elif c in ")>]}":
            depth -= 1
        if c == sep and depth == 0:
            parts.append("".join(buf))
            buf = []
        else:
            buf.append(c)
    if buf:
        parts.append("".join(buf))
    return parts


def _param_names(sig_args):
    names = []
    for part in _split_top_level(sig_args):
        part = part.strip()
        if not part or part == "void":
            continue
        m = PARAM_NAME_RE.search(part.split("=")[0].strip())
        names.append(m.group(1) if m else f"__anon{len(names)}")
    return names


def scan_tags(path, code_lines, comment_lines):
    """Collects allow() suppressions and tagged plain-secret sources."""
    suppressions, sources = [], []

    def source_from(idx):
        dm = MEMBER_DECL.match(code_lines[idx])
        if dm and not any(t in dm.group("type") for t in CONTAINED_TYPES):
            sources.append(TaintSource(dm.group("name"), path, idx + 1))

    pending_tag = False
    for idx, comment in enumerate(comment_lines):
        m = TAG_ALLOW.search(comment)
        if m:
            suppressions.append(Suppression(m.group(1), m.group(2).strip(),
                                            path, idx + 1))
        if pending_tag and code_lines[idx].strip():
            source_from(idx)
            pending_tag = False
        if TAG_SECRET.search(comment):
            if code_lines[idx].strip():
                source_from(idx)
            else:
                pending_tag = True
    return suppressions, sources


def parse_internal(path, text):
    """Extracts function definitions and their statement lists from raw text."""
    lines = text.splitlines()
    code_lines, comment_lines = split_code_and_comments(lines)
    suppressions, sources = scan_tags(path, code_lines, comment_lines)

    functions = []
    n = len(code_lines)
    class_stack = []       # (name, brace_depth_inside_the_class)
    depth = 0

    def scan_braces(line_text):
        nonlocal depth
        for ch in line_text:
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
                while class_stack and class_stack[-1][1] > depth:
                    class_stack.pop()

    def body_statements(fn, start_idx, end_idx, first_line_override=None):
        buf, start = [], None
        for k in range(start_idx, end_idx):
            seg = code_lines[k]
            if k == start_idx and first_line_override is not None:
                seg = first_line_override
            stripped = seg.strip()
            if not stripped:
                continue
            if start is None:
                start = k + 1
            buf.append(seg)
            if stripped.endswith((";", "{", "}", ":")) or stripped.startswith("#"):
                fn.statements.append((start, " ".join(buf)))
                buf, start = [], None
        if buf:
            fn.statements.append((start, " ".join(buf)))

    i = 0
    while i < n:
        code = code_lines[i]
        depth_before = depth

        if "(" in code and not code.lstrip().startswith("#"):
            # Accumulate the declaration until its '{' or ';' at paren depth 0.
            decl_parts = [code]
            j = i
            pdepth = code.count("(") - code.count(")")
            found_open = pdepth <= 0 and "{" in code
            ended = pdepth <= 0 and ";" in code.split("{")[0]
            while not found_open and not ended and j + 1 < n and j - i < 12:
                j += 1
                nxt = code_lines[j]
                decl_parts.append(nxt)
                pdepth += nxt.count("(") - nxt.count(")")
                if pdepth <= 0 and "{" in nxt:
                    found_open = True
                elif pdepth <= 0 and ";" in nxt:
                    ended = True
            decl = " ".join(decl_parts)
            head = decl.split("{")[0]
            if found_open and "=" not in head.split("(")[0]:
                m = FUNC_NAME_RE.search(head)
                name = m.group(1) if m else None
                if name and name.split("::")[-1] not in CONTROL_KEYWORDS and \
                        not re.match(r"^\s*(?:else|do|try)\b", head):
                    astart = head.find("(", head.find(name) + len(name))
                    aend, d = astart, 0
                    for k in range(astart, len(head)):
                        if head[k] == "(":
                            d += 1
                        elif head[k] == ")":
                            d -= 1
                            if d == 0:
                                aend = k
                                break
                    qname = name if "::" in name or not class_stack else \
                        f"{class_stack[-1][0]}::{name}"
                    fn = FunctionModel(path, i + 1, qname,
                                       _param_names(head[astart + 1:aend]))
                    # Constructor init list: model `member(expr)` as `member = expr`.
                    tail = head[aend + 1:]
                    if ":" in tail:
                        for init in _split_top_level(tail.split(":", 1)[1]):
                            im = re.match(r"\s*([A-Za-z_]\w*)\s*[({](.*)[)}]\s*$",
                                          init.strip())
                            if im:
                                fn.statements.append(
                                    (i + 1, f"{im.group(1)} = {im.group(2)} ;"))
                    # Brace-match the body.
                    open_line = j
                    bdepth, end_line, started = 0, open_line, False
                    for k in range(open_line, n):
                        seg = code_lines[k]
                        if k == open_line:
                            seg = seg[seg.find("{"):]
                        for ch in seg:
                            if ch == "{":
                                bdepth += 1
                                started = True
                            elif ch == "}":
                                bdepth -= 1
                        if started and bdepth <= 0:
                            end_line = k
                            break
                    else:
                        end_line = n - 1
                    first_extra = code_lines[open_line][code_lines[open_line]
                                                        .find("{") + 1:]
                    if first_extra.strip():
                        body_statements(fn, open_line, end_line + 1,
                                        first_line_override=first_extra)
                    else:
                        body_statements(fn, open_line + 1, end_line + 1)
                    functions.append(fn)
                    for k in range(i, min(end_line + 1, n)):
                        scan_braces(code_lines[k])
                    i = end_line + 1
                    continue

        scan_braces(code)
        if "class" in code or "struct" in code:
            cm = CLASS_DECL.search(code.split("{")[0])
            if cm and depth > depth_before:
                class_stack.append((cm.group("name"), depth))
            elif cm and "{" not in code and ";" not in code and i + 1 < n and \
                    code_lines[i + 1].lstrip().startswith("{"):
                class_stack.append((cm.group("name"), depth + 1))
        i += 1
    return functions, suppressions, sources


# ---------------------------------------------------------------------------
# libclang frontend (CI: exact extents; optional everywhere else)
# ---------------------------------------------------------------------------

def _create_index(ci):
    """Index.create() with distro-friendly library discovery.

    Ubuntu/Debian ship versioned libraries (libclang-18.so.18 under
    /usr/lib/llvm-18/lib/) that ctypes' default search never finds.  Honour an
    explicit DETA_LIBCLANG override first, then let cindex try its own lookup,
    then probe the versioned install locations, newest first.
    """
    import glob as _glob  # noqa: PLC0415

    override = os.environ.get("DETA_LIBCLANG")
    if override:
        ci.Config.set_library_file(override)
        return ci.Index.create()
    try:
        return ci.Index.create()
    except ci.LibclangError:
        pass
    candidates = sorted(
        _glob.glob("/usr/lib/llvm-*/lib/libclang*.so*")
        + _glob.glob("/usr/lib/*-linux-gnu/libclang*.so*"),
        reverse=True,
    )
    for cand in candidates:
        ci.Config.set_library_file(cand)
        try:
            return ci.Index.create()
        except ci.LibclangError:
            continue
    raise ci.LibclangError("no usable libclang found (set DETA_LIBCLANG)")


def parse_libclang(paths, compile_commands_dir):
    """Parses TUs with clang.cindex; returns the same model as parse_internal.

    Statement granularity stays textual (the engine is regex-driven over
    statement spans), but function boundaries, parameter names, and qualified
    names come from the AST, which removes the internal parser's heuristics.
    Raises ImportError/OSError when the bindings or library are unavailable.
    """
    import clang.cindex as ci  # noqa: PLC0415  (optional dependency, CI only)

    index = _create_index(ci)
    db = None
    if compile_commands_dir:
        try:
            db = ci.CompilationDatabase.fromDirectory(compile_commands_dir)
        except ci.CompilationDatabaseError:
            db = None

    all_functions, all_supps, all_sources = [], [], []
    seen_defs = set()
    for path in paths:
        args = ["-std=c++20"]
        if db is not None:
            cmds = db.getCompileCommands(path)
            if cmds:
                raw = list(cmds[0].arguments)[1:-1]
                args = [a for a in raw if a != "-c" and not a.endswith(".o")]
        try:
            tu = index.parse(path, args=args)
        except ci.TranslationUnitLoadError:
            continue
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
        code_lines, comment_lines = split_code_and_comments(text.splitlines())
        supps, sources = scan_tags(path, code_lines, comment_lines)
        all_supps.extend(supps)
        all_sources.extend(sources)

        def visit(cursor):
            for child in cursor.get_children():
                if child.location.file is None or \
                        os.path.abspath(str(child.location.file)) != \
                        os.path.abspath(path):
                    continue
                if child.kind in (ci.CursorKind.FUNCTION_DECL,
                                  ci.CursorKind.CXX_METHOD,
                                  ci.CursorKind.CONSTRUCTOR,
                                  ci.CursorKind.DESTRUCTOR) and \
                        child.is_definition():
                    key = (path, child.extent.start.line, child.spelling)
                    if key in seen_defs:
                        continue
                    seen_defs.add(key)
                    qname = child.spelling
                    parent = child.semantic_parent
                    if parent is not None and parent.kind in (
                            ci.CursorKind.CLASS_DECL, ci.CursorKind.STRUCT_DECL):
                        qname = f"{parent.spelling}::{qname}"
                    params = [p.spelling or f"__anon{k}" for k, p in
                              enumerate(child.get_arguments())]
                    fn = FunctionModel(path, child.extent.start.line, qname, params)
                    s, e = child.extent.start.line - 1, child.extent.end.line
                    buf, start = [], None
                    for k in range(s, min(e, len(code_lines))):
                        seg = code_lines[k]
                        stripped = seg.strip()
                        if not stripped:
                            continue
                        if start is None:
                            start = k + 1
                        buf.append(seg)
                        if stripped.endswith((";", "{", "}", ":")):
                            fn.statements.append((start, " ".join(buf)))
                            buf, start = [], None
                    if buf:
                        fn.statements.append((start, " ".join(buf)))
                    all_functions.append(fn)
                else:
                    visit(child)

        visit(tu.cursor)
    return all_functions, all_supps, all_sources


# ---------------------------------------------------------------------------
# The taint engine (frontend-independent)
# ---------------------------------------------------------------------------

class Finding:
    def __init__(self, path, line, sink_class, name, chain):
        self.path = path
        self.line = line
        self.sink_class = sink_class
        self.name = name
        self.chain = chain

    def render(self, root):
        relpath = os.path.relpath(self.path, root).replace(os.sep, "/")
        head = (f"{relpath}:{self.line}: [TC-{self.sink_class.upper()}] tainted "
                f"`{self.name}` reaches a {self.sink_class} sink")
        steps = "\n".join(f"    {step}" for step in self.chain[-MAX_CHAIN:])
        return f"{head}\n{steps}" if steps else head

    def to_json(self, root):
        return {
            "file": os.path.relpath(self.path, root).replace(os.sep, "/"),
            "line": self.line,
            "class": self.sink_class,
            "name": self.name,
            "flow": self.chain[-MAX_CHAIN:],
        }


CALL_RE = re.compile(r"([A-Za-z_]\w*)\s*(?:<(?P<targs>[\w:,\s<>]*)>)?\s*\(")
LAST_IDENT = re.compile(r"([A-Za-z_]\w*)\s*>*\s*$")


def _calls_in(stmt):
    """Yields (callee_simple_name, [arg_texts], receiver_or_None, (start, end)).

    `std::make_shared<X>(...)` / `make_unique<X>(...)` resolve to X — the
    constructor that actually receives the arguments."""
    for m in CALL_RE.finditer(stmt):
        name = m.group(1)
        if name in CONTROL_KEYWORDS:
            continue
        targs = m.group("targs")
        if name in ("make_shared", "make_unique") and targs:
            lm = LAST_IDENT.search(targs.split(",")[0])
            if lm:
                name = lm.group(1)
        prefix = stmt[:m.start()].rstrip()
        receiver = None
        if prefix.endswith(".") or prefix.endswith("->"):
            base = prefix[:-1] if prefix.endswith(".") else prefix[:-2]
            rm = re.search(r"([A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*)*)$", base)
            if rm:
                receiver = rm.group(1)
        start = m.end() - 1
        d, end = 0, None
        for k in range(start, len(stmt)):
            if stmt[k] == "(":
                d += 1
            elif stmt[k] == ")":
                d -= 1
                if d == 0:
                    end = k
                    break
        if end is None:
            continue
        args = [a.strip() for a in _split_top_level(stmt[start + 1:end])]
        if args == [""]:
            args = []
        yield name, args, receiver, (m.start(1), end + 1)


def _token_re(token):
    return re.compile(r"(?<![\w\.])" + re.escape(token) + r"\b")


class Engine:
    def __init__(self, functions, suppressions, sources, root):
        self.root = root
        self.functions = functions
        self.suppressions = suppressions
        self.sources = sources
        self.by_simple = {}
        for fn in functions:
            # Secret<T>'s own accessors must never register as resolvable
            # callees — a visible `ExposeForCrypto` definition whose body is
            # `return value_;` would mask every exposure in the tree.
            if fn.simple.startswith("Expose") or fn.simple in DECLASSIFIED_CALLEES:
                continue
            self.by_simple.setdefault(fn.simple, []).append(fn)
        self.source_names = {s.name: s for s in sources}
        self.findings = []

    def _rel(self, path):
        return os.path.relpath(path, self.root).replace(os.sep, "/")

    # -- expression evaluation -------------------------------------------

    def _eval_expr(self, expr, tainted, loc):
        """Taint of an expression: (name, chain) or None.

        Calls to declassified or visible-and-clean callees are masked out, so
        `seal.Seal(blob, rng)` or `Pack(x)` (with Pack visible and returning
        clean) do not leak `blob`/`x` into the textual residue. A visible
        callee's result is tainted only when every same-named definition
        returns taint (see the unanimity note in the module docstring)."""
        taint = None
        masked = []
        for cname, _args, _recv, span in _calls_in(expr):
            if any(s <= span[0] < e for s, e in masked):
                continue
            if cname.startswith("Expose"):
                continue
            if cname in DECLASSIFIED_CALLEES:
                masked.append(span)
                continue
            callees = self.by_simple.get(cname, [])
            if callees:
                if all(c.returns_taint is not None for c in callees):
                    c = callees[0]
                    taint = taint or (cname, c.returns_taint + [
                        f"{loc}: tainted result of {c.qname}()"])
                masked.append(span)
        if taint:
            return taint
        residue = expr
        for s, e in masked:
            residue = residue[:s] + " " * (e - s) + residue[e:]
        em = EXPOSE_RE.search(residue)
        if em:
            return (em.group("recv"),
                    [f"{loc}: {em.group('which')}() exposure of `{em.group('recv')}`"])
        for token, chain in tainted.items():
            if _token_re(token).search(residue):
                return token, chain
        for name, src in self.source_names.items():
            if _token_re(name).search(residue):
                return name, [f"{self._rel(src.path)}:{src.line}: "
                              f"tagged secret `{name}`"]
        return None

    # -- per-function analysis -------------------------------------------

    def analyze_function(self, fn):
        """One forward pass; returns True if interprocedural summaries grew."""
        changed = False
        tainted = {}  # token -> provenance chain
        for idx, chain in fn.tainted_params.items():
            if idx < len(fn.params):
                tainted[fn.params[idx]] = chain

        for line, stmt in fn.statements:
            loc = f"{self._rel(fn.path)}:{line}"

            if SANITIZER_RE.search(stmt):
                # Sealed / wiped / re-wrapped: the statement neither propagates
                # nor sinks, and it scrubs what it erased or overwrote.
                for wm in re.finditer(r"SecureWipe\s*\(\s*\*?\s*"
                                      r"([A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*)*)",
                                      stmt):
                    tainted.pop(wm.group(1), None)
                am = ASSIGN_RE.match(stmt)
                if am:
                    tainted.pop(am.group("lhs"), None)
                continue

            # Call-argument propagation into visible callees + receiver
            # absorption (a Writer fed secret bytes is secret).
            for cname, args, receiver, _span in _calls_in(stmt):
                if cname in DECLASSIFIED_CALLEES or cname.startswith("Expose"):
                    continue
                callees = self.by_simple.get(cname, [])
                for ai, arg in enumerate(args):
                    at = self._eval_expr(arg, tainted, loc)
                    if at is None:
                        continue
                    for callee in callees:
                        if ai < len(callee.params) and \
                                ai not in callee.tainted_params:
                            callee.tainted_params[ai] = at[1] + [
                                f"{loc}: passed to {callee.qname}() as "
                                f"`{callee.params[ai]}`"]
                            changed = True
                    if receiver is not None and receiver not in tainted:
                        tainted[receiver] = at[1] + [
                            f"{loc}: absorbed into `{receiver}`"]

            # Assignment: strong update.
            am = ASSIGN_RE.match(stmt)
            if am:
                lhs = am.group("lhs")
                rt = self._eval_expr(am.group("rhs"), tainted, loc)
                if rt is not None:
                    tainted[lhs] = rt[1] + [f"{loc}: assigned to `{lhs}`"]
                elif lhs in tainted:
                    del tainted[lhs]

            # Return propagation.
            rm = RETURN_RE.match(stmt)
            if rm and fn.simple not in DECLASSIFIED_CALLEES and \
                    fn.returns_taint is None:
                rt = self._eval_expr(rm.group("expr"), tainted, loc)
                if rt is not None:
                    fn.returns_taint = rt[1] + [
                        f"{loc}: returned from {fn.qname}()"]
                    changed = True

            self._check_sinks(fn, line, stmt, tainted, loc)
        return changed

    # -- sinks ------------------------------------------------------------

    def _check_sinks(self, fn, line, stmt, tainted, loc):
        hits = []
        if LOG_SINK.search(stmt):
            t = self._eval_expr(stmt, tainted, loc)
            if t:
                hits.append(("log", t))
        for cname, args, _recv, _span in _calls_in(stmt):
            if cname in TELEMETRY_CALLEES:
                for arg in args:
                    t = self._eval_expr(arg, tainted, loc)
                    if t:
                        hits.append(("telemetry", t))
            elif cname == "Add" and args and "SectionType" in args[0]:
                for arg in args[1:]:
                    t = self._eval_expr(arg, tainted, loc)
                    if t:
                        hits.append(("persist", t))
            elif cname in WIRE_CALLEES:
                for arg in args:
                    t = self._eval_expr(arg, tainted, loc)
                    if t:
                        hits.append(("wire", t))
        for sink_class, (name, chain) in hits:
            if self._suppressed(sink_class, fn.path, line):
                continue
            key = (fn.path, line, sink_class, name)
            if any((f.path, f.line, f.sink_class, f.name) == key
                   for f in self.findings):
                continue
            self.findings.append(Finding(
                fn.path, line, sink_class, name,
                chain + [f"{loc}: {sink_class} sink in {fn.qname}()"]))

    def _suppressed(self, sink_class, path, line):
        for s in self.suppressions:
            if s.sink_class == sink_class and s.path == path and \
                    s.line in (line, line - 1) and s.reason:
                s.used = True
                return True
        return False

    # -- driver -----------------------------------------------------------

    def run(self):
        for _round in range(MAX_GLOBAL_ROUNDS):
            self.findings = []
            changed = False
            for fn in self.functions:
                if self.analyze_function(fn):
                    changed = True
            if not changed:
                break
        self.findings.sort(key=lambda f: (f.path, f.line, f.sink_class))
        return self.findings


# ---------------------------------------------------------------------------
# File discovery / CLI
# ---------------------------------------------------------------------------

SOURCE_EXTENSIONS = (".h", ".cc")


def discover(root, arg_paths):
    if arg_paths:
        out = []
        for p in arg_paths:
            p = os.path.abspath(p)
            if os.path.isdir(p):
                for dirpath, _d, filenames in os.walk(p):
                    out.extend(os.path.join(dirpath, f) for f in filenames
                               if f.endswith(SOURCE_EXTENSIONS))
            else:
                out.append(p)
        return sorted(set(out))
    src = os.path.join(root, "src")
    out = []
    for dirpath, _d, filenames in os.walk(src):
        out.extend(os.path.join(dirpath, f) for f in filenames
                   if f.endswith(SOURCE_EXTENSIONS))
    return sorted(out)


def load_model(paths, frontend, compile_commands):
    """Returns (functions, suppressions, sources, frontend_used)."""
    if frontend in ("auto", "libclang"):
        try:
            cc_dir = os.path.dirname(compile_commands) if compile_commands else None
            result = parse_libclang(paths, cc_dir)
            return (*result, "libclang")
        except Exception as e:  # noqa: BLE001 — any bindings failure falls back
            if frontend == "libclang":
                print(f"deta_taintcheck: libclang frontend unavailable: {e}",
                      file=sys.stderr)
                sys.exit(2)
    functions, supps, sources = [], [], []
    for path in paths:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
        fns, s, src = parse_internal(path, text)
        functions.extend(fns)
        supps.extend(s)
        sources.extend(src)
    return functions, supps, sources, "internal"


def run_check(root, paths, frontend, compile_commands, report_path):
    functions, supps, sources, used = load_model(paths, frontend, compile_commands)
    engine = Engine(functions, supps, sources, root)
    findings = engine.run()
    for f in findings:
        print(f.render(root))
    if report_path:
        payload = {
            "frontend": used,
            "files": len(paths),
            "functions": len(functions),
            "findings": [f.to_json(root) for f in findings],
        }
        with open(report_path, "w", encoding="utf-8") as out:
            json.dump(payload, out, indent=2)
        print(f"deta_taintcheck: report written to {report_path}")
    if not findings:
        print(f"deta_taintcheck: OK ({len(paths)} files, {len(functions)} "
              f"functions, 0 flows, frontend={used})")
    return not findings


def run_selftest(root):
    """Fixture corpus: scripts/taint_fixtures/<class>/flow_*.cc must each yield
    >= 1 finding of that class (>= 2 flow fixtures per class, covering a
    multi-statement and a cross-function leak); clean_*.cc must yield nothing.
    Every flow fixture must also pass deta_lint cleanly — these are exactly the
    leaks the single-statement regex pass cannot see."""
    script_dir = os.path.dirname(os.path.abspath(__file__))
    fixtures = os.path.join(script_dir, "taint_fixtures")
    lint = os.path.join(script_dir, "deta_lint.py")
    if not os.path.isdir(fixtures):
        print(f"deta_taintcheck: fixture directory missing: {fixtures}")
        return False
    ok = True
    for sink_class in SINK_CLASSES:
        class_dir = os.path.join(fixtures, sink_class)
        if not os.path.isdir(class_dir):
            print(f"selftest FAIL: no fixture directory for sink class "
                  f"`{sink_class}`")
            ok = False
            continue
        flow_count = 0
        for name in sorted(os.listdir(class_dir)):
            if not name.endswith(SOURCE_EXTENSIONS):
                continue
            path = os.path.join(class_dir, name)
            functions, supps, sources, _ = load_model([path], "internal", None)
            engine = Engine(functions, supps, sources, class_dir)
            findings = engine.run()
            hits = [f for f in findings if f.sink_class == sink_class]
            if name.startswith("flow_"):
                flow_count += 1
                if not hits:
                    print(f"selftest FAIL: {sink_class}/{name} must produce a "
                          f"TC-{sink_class.upper()} flow but produced "
                          f"{[f.sink_class for f in findings] or 'nothing'}")
                    ok = False
                if os.path.isfile(lint):
                    r = subprocess.run([sys.executable, lint, path],
                                       capture_output=True, text=True,
                                       check=False)
                    if r.returncode != 0:
                        print(f"selftest FAIL: {sink_class}/{name} is flagged "
                              f"by deta_lint — the fixture must demonstrate a "
                              f"flow only the interprocedural pass catches:\n"
                              f"{r.stdout}")
                        ok = False
            elif name.startswith("clean_"):
                if findings:
                    print(f"selftest FAIL: {sink_class}/{name} must be clean "
                          f"but produced:\n{findings[0].render(class_dir)}")
                    ok = False
            else:
                print(f"selftest FAIL: {sink_class}/{name} must be named "
                      f"flow_* or clean_*")
                ok = False
        if flow_count < 2:
            print(f"selftest FAIL: sink class `{sink_class}` has {flow_count} "
                  f"flow fixture(s); at least 2 required (multi-statement + "
                  f"cross-function)")
            ok = False
    if ok:
        print("deta_taintcheck selftest: OK")
    return ok


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--frontend", choices=("auto", "libclang", "internal"),
                        default="auto")
    parser.add_argument("--compile-commands", default=None,
                        help="compile_commands.json (libclang flags source)")
    parser.add_argument("--report", default=None,
                        help="write a JSON flow report here")
    parser.add_argument("--selftest", action="store_true",
                        help="run the fixture corpus instead of checking the tree")
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: src/)")
    args = parser.parse_args(argv)

    root = os.path.abspath(args.root) if args.root else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if args.selftest:
        return 0 if run_selftest(root) else 1
    cc = args.compile_commands
    if cc is None:
        candidate = os.path.join(root, "build", "compile_commands.json")
        cc = candidate if os.path.isfile(candidate) else None
    paths = discover(root, args.paths)
    if not paths:
        print("deta_taintcheck: no source files found")
        return 2
    return 0 if run_check(root, paths, args.frontend, cc, args.report) else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
