// MUST be clean: the material blob is key material, but the Send() payload is
// channel.Seal(...) ciphertext — the tree's sanctioned re-seal-per-fetch shape.
#include <string>
#include <vector>

using Bytes = std::vector<unsigned char>;

namespace deta {
template <typename T>
class Secret;
}  // namespace deta

struct SecureRng {};

namespace net {
struct SecureChannel {
  Bytes Seal(const Bytes& plaintext, SecureRng& rng);
};
struct Endpoint {
  bool Send(const std::string& peer, const std::string& topic, const Bytes& payload);
};
}  // namespace net

struct TransformMaterial {
  deta::Secret<Bytes> permutation_key;
};

void ServeMaterial(net::Endpoint& ep, net::SecureChannel& channel, SecureRng& rng,
                   TransformMaterial& material, const std::string& party) {
  const Bytes& blob = material.permutation_key.ExposeForSeal();
  ep.Send(party, "broker.material", channel.Seal(blob, rng));
}
