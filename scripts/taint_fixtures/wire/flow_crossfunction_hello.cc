// MUST produce TC-WIRE: a frame builder absorbs the exposed master secret into
// a Writer and returns the buffer; the caller Sends the returned frame raw.
// The taint crosses a function boundary through the Writer and the return
// value — exactly what the interprocedural pass exists to catch.
#include <cstdint>
#include <string>
#include <vector>

using Bytes = std::vector<unsigned char>;

namespace deta {
template <typename T>
class Secret;
}  // namespace deta

namespace net {
struct Writer {
  void WriteU8(uint8_t v);
  void WriteBytes(const Bytes& b);
  Bytes Take();
};
struct Endpoint {
  bool Send(const std::string& peer, const std::string& topic, const Bytes& payload);
};
}  // namespace net

static Bytes BuildHello(const Bytes& master) {
  net::Writer w;
  w.WriteU8(1);
  w.WriteBytes(master);
  return w.Take();
}

void Handshake(net::Endpoint& ep, deta::Secret<Bytes>& master_secret) {
  const Bytes& master = master_secret.ExposeForCrypto();
  Bytes hello = BuildHello(master);
  ep.Send("broker", "hs.hello", hello);
}
