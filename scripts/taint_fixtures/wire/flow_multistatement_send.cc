// MUST produce TC-WIRE: the channel key is exposed, copied into a frame across
// two statements, and pushed to a transport Send() with no Seal(). The frame
// variable is what reaches the wire — no single statement ties it to the key.
#include <string>
#include <vector>

using Bytes = std::vector<unsigned char>;

namespace deta {
template <typename T>
class Secret;
}  // namespace deta

namespace net {
struct Endpoint {
  bool Send(const std::string& peer, const std::string& topic, const Bytes& payload);
};
}  // namespace net

void DebugPushKey(net::Endpoint& ep, deta::Secret<Bytes>& channel_key) {
  const Bytes& raw = channel_key.ExposeForCrypto();
  Bytes frame;
  frame.insert(frame.end(), raw.begin(), raw.end());
  ep.Send("peer-0", "debug.key", frame);
}
