// MUST be clean: EcdsaSign consumes the exposed private scalar but its output
// is a public signature — declassified by design; sending the serialized
// signature is the auth protocol working as intended.
#include <string>
#include <vector>

using Bytes = std::vector<unsigned char>;

namespace deta {
template <typename T>
class Secret;
}  // namespace deta

struct BigUint {};
struct SecureRng {};

struct EcdsaSignature {
  Bytes Serialize() const;
};

EcdsaSignature EcdsaSign(const BigUint& private_key, const Bytes& digest,
                         SecureRng& rng);

namespace net {
struct Endpoint {
  bool Send(const std::string& peer, const std::string& topic, const Bytes& payload);
};
}  // namespace net

void AnswerChallenge(net::Endpoint& ep, deta::Secret<BigUint>& token_private,
                     const Bytes& digest, SecureRng& rng, const std::string& from) {
  EcdsaSignature sig = EcdsaSign(token_private.ExposeForSeal(), digest, rng);
  ep.Send(from, "auth.response", sig.Serialize());
}
