// MUST be clean: the exposed working copy feeds key derivation and is securely
// wiped; the log statement afterwards carries only public metadata.
#include <string>
#include <vector>

using Bytes = std::vector<unsigned char>;

namespace deta {
template <typename T>
class Secret;
}  // namespace deta

struct Logger {};
Logger& log_stream();
Logger& operator<<(Logger& l, const std::string& s);
#define LOG_INFO log_stream()

void SecureWipe(Bytes& b);
void MixIntoSchedule(Bytes& working);

void DeriveAndLog(deta::Secret<Bytes>& key, const std::string& peer) {
  Bytes working = key.ExposeForCrypto();
  MixIntoSchedule(working);
  SecureWipe(working);
  LOG_INFO << "key schedule derived for " << peer;
}
