// MUST be clean: the function owns a Secret it never exposes; the log line
// reports sizes and peer names only. Holding a secret is not a finding —
// exposing one into a sink is.
#include <string>
#include <vector>

using Bytes = std::vector<unsigned char>;

namespace deta {
template <typename T>
class Secret;
}  // namespace deta

struct Logger {};
Logger& log_stream();
Logger& operator<<(Logger& l, const std::string& s);
#define LOG_DEBUG log_stream()

struct Channel {
  deta::Secret<Bytes> master;
  std::string peer;
  int handshakes = 0;
};

void NoteHandshake(Channel& chan) {
  chan.handshakes = chan.handshakes + 1;
  LOG_DEBUG << "handshake with " << chan.peer;
}
