// MUST produce TC-LOG: the exposure happens in one function, the taint rides a
// call argument through a formatting helper, and the sink fires inside a third
// function. No single statement connects the secret to the log, so the regex
// pass has nothing to match.
#include <string>
#include <vector>

using Bytes = std::vector<unsigned char>;

namespace deta {
template <typename T>
class Secret;
}  // namespace deta

struct Logger {};
Logger& log_stream();
Logger& operator<<(Logger& l, const std::string& s);
#define LOG_WARNING log_stream()

std::string ToHex(const Bytes& b);

static std::string DescribeKey(const Bytes& key_bytes) {
  return "key=" + ToHex(key_bytes);
}

static void Audit(const std::string& detail) {
  LOG_WARNING << "audit: " << detail;
}

void ReportChannel(deta::Secret<Bytes>& key) {
  const Bytes& raw = key.ExposeForCrypto();
  Audit(DescribeKey(raw));
}
