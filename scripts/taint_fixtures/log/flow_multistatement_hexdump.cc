// MUST produce TC-LOG: the channel key is exposed, hex-formatted through an
// intermediate local, and logged two statements later. deta_lint's DL-S1 only
// matches a tagged name inside the log statement itself, so this flow is
// invisible to the regex pass — the log line mentions only `hex`.
#include <string>
#include <vector>

using Bytes = std::vector<unsigned char>;

namespace deta {
template <typename T>
class Secret;
}  // namespace deta

struct Logger {};
Logger& log_stream();
Logger& operator<<(Logger& l, const std::string& s);
#define LOG_INFO log_stream()

std::string ToHex(const Bytes& b);

struct SessionKeys {
  deta::Secret<Bytes> channel_key;
};

void DumpSessionState(SessionKeys& keys) {
  const Bytes& raw = keys.channel_key.ExposeForCrypto();
  std::string hex = ToHex(raw);
  LOG_INFO << "channel key: " << hex;
}
