// MUST be clean: labels built from public configuration (party name, round
// number) are fine even in a function that owns secret material.
#include <string>
#include <vector>

using Bytes = std::vector<unsigned char>;

namespace deta {
template <typename T>
class Secret;
}  // namespace deta

struct Histogram {
  void Observe(double v);
};
struct Registry {
  Histogram& GetHistogram(const std::string& name);
};

struct PartyState {
  deta::Secret<Bytes> upload_key;
  std::string name;
  int round = 0;
};

void RecordRound(Registry& reg, PartyState& party, double seconds) {
  std::string label = "round." + party.name;
  reg.GetHistogram(label).Observe(seconds);
}
