// MUST be clean: metrics carry public protocol progress; the secret in scope
// is exposed only into a declassified MAC whose tag is wire-public anyway,
// and the metric label never touches either.
#include <string>
#include <vector>

using Bytes = std::vector<unsigned char>;

namespace deta {
template <typename T>
class Secret;
}  // namespace deta

struct Counter {
  void Increment();
};
struct Registry {
  Counter& GetCounter(const std::string& name);
};

Bytes HmacSha256(const Bytes& key, const Bytes& msg);

void ServeFetch(Registry& reg, deta::Secret<Bytes>& mac_key, const Bytes& msg) {
  Bytes tag = HmacSha256(mac_key.ExposeForCrypto(), msg);
  reg.GetCounter("broker.fetches_served").Increment();
  (void)tag;
}
