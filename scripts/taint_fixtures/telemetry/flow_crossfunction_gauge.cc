// MUST produce TC-TELEMETRY: a helper exposes the token key and returns a
// string derived from it; the caller folds the returned value into a gauge
// name. The taint crosses the function boundary via the return value, which
// the single-statement pass cannot follow.
#include <string>
#include <vector>

using Bytes = std::vector<unsigned char>;

namespace deta {
template <typename T>
class Secret;
}  // namespace deta

struct BigUint {};

struct Gauge {
  void Set(int v);
};
struct Registry {
  Gauge& GetGauge(const std::string& name);
};

std::string FormatScalar(const BigUint& k);

static std::string TokenTag(deta::Secret<BigUint>& token_private) {
  const BigUint& k = token_private.ExposeForSeal();
  return FormatScalar(k);
}

void RecordAuth(Registry& reg, deta::Secret<BigUint>& token_private) {
  std::string tag = TokenTag(token_private);
  reg.GetGauge("auth." + tag).Set(1);
}
