// MUST produce TC-TELEMETRY: the mapper seed is exposed, folded into a metric
// label through an intermediate string, and registered two statements later.
// DL-S3 needs the tagged name inside the registration expression; here the
// registration only names `label`.
#include <string>
#include <vector>

using Bytes = std::vector<unsigned char>;

namespace deta {
template <typename T>
class Secret;
}  // namespace deta

struct Counter {
  void Increment();
};
struct Registry {
  Counter& GetCounter(const std::string& name);
};

std::string ToHex(const Bytes& b);

struct TransformMaterial {
  deta::Secret<Bytes> mapper_seed;
};

void CountTransform(Registry& telemetry, TransformMaterial& material) {
  const Bytes& seed = material.mapper_seed.ExposeForCrypto();
  std::string label = "mapper." + ToHex(seed);
  telemetry.GetCounter(label).Increment();
}
