// MUST produce TC-PERSIST: a serializer helper absorbs exposed seed bytes into
// a Writer and returns the buffer; the caller persists the returned blob
// unsealed. Two functions, a builder object, and no statement that names both
// the secret and the sink — regex checks cannot connect them.
#include <cstdint>
#include <string>
#include <vector>

using Bytes = std::vector<unsigned char>;

namespace deta {
template <typename T>
class Secret;
}  // namespace deta

namespace net {
struct Writer {
  void WriteU32(uint32_t v);
  void WriteBytes(const Bytes& b);
  Bytes Take();
};
}  // namespace net

namespace persist {
enum class SectionType { kRaw, kKeyMaterial };
struct Snapshot {
  void Add(SectionType type, const std::string& name, const Bytes& payload);
};
}  // namespace persist

struct TransformMaterial {
  deta::Secret<Bytes> mapper_seed;
  uint32_t epoch = 0;
};

static Bytes PackMaterial(const TransformMaterial& material) {
  net::Writer w;
  w.WriteU32(material.epoch);
  w.WriteBytes(material.mapper_seed.ExposeForSeal());
  return w.Take();
}

void CheckpointMaterial(persist::Snapshot& snap, const TransformMaterial& material) {
  Bytes packed = PackMaterial(material);
  snap.Add(persist::SectionType::kKeyMaterial, "material", packed);
}
