// MUST produce TC-PERSIST: the permutation key is exposed into a local and
// written to a snapshot section two statements later with no Seal() anywhere.
// DL-S4's alias pre-pass only seeds from `deta-lint: secret` tags — a
// Secret<T> exposure feeding an alias is exactly the shape it cannot see.
#include <string>
#include <vector>

using Bytes = std::vector<unsigned char>;

namespace deta {
template <typename T>
class Secret;
}  // namespace deta

namespace persist {
enum class SectionType { kRaw, kKeyMaterial };
struct Snapshot {
  void Add(SectionType type, const std::string& name, const Bytes& payload);
};
}  // namespace persist

struct TransformMaterial {
  deta::Secret<Bytes> permutation_key;
};

void CheckpointKeys(persist::Snapshot& snap, TransformMaterial& material) {
  const Bytes& blob = material.permutation_key.ExposeForSeal();
  snap.Add(persist::SectionType::kKeyMaterial, "permutation", blob);
}
