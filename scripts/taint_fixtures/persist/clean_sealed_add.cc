// MUST be clean: same exposure, same snapshot section — but the payload goes
// through SealKey::Seal() in the persisting statement, so what reaches disk is
// ciphertext. This is the tree's sanctioned checkpoint shape.
#include <string>
#include <vector>

using Bytes = std::vector<unsigned char>;

namespace deta {
template <typename T>
class Secret;
}  // namespace deta

struct SecureRng {};

namespace persist {
enum class SectionType { kRaw, kKeyMaterial };
struct Snapshot {
  void Add(SectionType type, const std::string& name, const Bytes& payload);
};
struct SealKey {
  Bytes Seal(const Bytes& plaintext, SecureRng& rng);
};
}  // namespace persist

struct TransformMaterial {
  deta::Secret<Bytes> permutation_key;
};

void CheckpointKeys(persist::Snapshot& snap, persist::SealKey& seal,
                    SecureRng& rng, TransformMaterial& material) {
  const Bytes& blob = material.permutation_key.ExposeForSeal();
  snap.Add(persist::SectionType::kKeyMaterial, "permutation", seal.Seal(blob, rng));
}
