// MUST be clean: progress counters and public round state persist unsealed by
// design; no secret is exposed anywhere in the flow.
#include <cstdint>
#include <string>
#include <vector>

using Bytes = std::vector<unsigned char>;

namespace net {
struct Writer {
  void WriteU32(uint32_t v);
  Bytes Take();
};
}  // namespace net

namespace persist {
enum class SectionType { kRaw, kKeyMaterial };
struct Snapshot {
  void Add(SectionType type, const std::string& name, const Bytes& payload);
};
}  // namespace persist

void CheckpointProgress(persist::Snapshot& snap, uint32_t round, uint32_t served) {
  net::Writer w;
  w.WriteU32(round);
  w.WriteU32(served);
  snap.Add(persist::SectionType::kRaw, "progress", w.Take());
}
