#!/usr/bin/env python3
"""deta_lint: repo-specific static checks for the DeTA invariants.

Three passes over src/ (and, where noted, tests/):

Determinism
  DL-D1  nondeterminism sources (std::random_device, rand(, srand(, time(,
         system_clock, gettimeofday(, CLOCK_REALTIME) outside the whitelist.
         Aggregation must be a pure function of the workload; ambient entropy or
         wall-clock reads silently break the bitwise "decentralized ==
         centralized" guarantee.
  DL-D2  unordered_{map,set,...} anywhere in src/. Hash-order iteration reaching
         any output (wire bytes, snapshots, aggregation order) is nondeterministic
         across libc++/libstdc++ and even process runs; the repo bans the
         containers outright so nobody has to prove an iteration can't escape.
  DL-D3  raw concurrency primitives (std::thread, std::mutex, lock_guard,
         unique_lock, condition_variable, ...) outside the annotated wrappers
         (common/mutex.h, common/thread.h) and the pool internals
         (common/parallel.*). Raw primitives are invisible to clang's
         -Wthread-safety analysis, so locking through them is unchecked.

Secret hygiene (taint from `// deta-lint: secret` tags on declarations)
  DL-S1  tagged secret referenced in a DETA_LOG / LOG_* statement.
  DL-S2  class owning a tagged secret member has no destructor that wipes it
         (crypto::SecureWipe / .Wipe()), unless every secret member's type wipes
         itself (Secret<T>, Aead, SecureRng, SecureChannel).
  DL-S3  tagged secret referenced in a telemetry registration/label expression.
  DL-S4  tagged secret reaching a snapshot section Add() without Seal() in the
         same statement (plaintext state on disk). A statement-ordered alias
         pre-pass extends this one hop: `auto blob = <secret-expr>;` taints
         `blob`, so the Add() no longer needs to name the secret directly.

Scope note: these are fast regex/statement checks — a pre-pass. They see one
file at a time and (for DL-S4) one level of local aliasing. Flows that span
functions or translation units (a getter returning key material that a caller
logs, a helper that serializes a secret for a plaintext send) are the job of
the interprocedural taint checker, scripts/deta_taintcheck.py, which runs in
the same `check.sh --preset static` gate.

Protocol liveness
  DL-L1  unbounded blocking wait: mailbox receives with no deadline (.Receive() /
         .ReceiveType( / .Pop()) outside the transport internals, and socket
         waits that block forever (epoll_wait/poll with a -1 timeout). Every
         protocol wait must carry a timeout (the *For forms; a tick for event
         loops) so a dead peer cannot wedge an event loop — the rule PR 2
         established by hand, now machine-checked.

Suppressions: `// deta-lint: allow(DL-XX) <reason>` on the finding's line or the
line directly above. The reason is mandatory; unused suppressions and unused
whitelist entries fail --strict, so stale escapes rot loudly.

Usage:
  scripts/deta_lint.py [--strict] [--root DIR] [paths...]
  scripts/deta_lint.py --selftest     # run the fixture corpus (scripts/lint_fixtures)
"""

from __future__ import annotations

import argparse
import os
import re
import sys

# ---------------------------------------------------------------------------
# Rule catalogue
# ---------------------------------------------------------------------------

RULES = {
    "DL-D1": "nondeterminism source outside the whitelist",
    "DL-D2": "unordered container (hash-order iteration is nondeterministic)",
    "DL-D3": "raw concurrency primitive outside the annotated wrappers",
    "DL-S1": "secret referenced in a log statement",
    "DL-S2": "secret-owning type does not wipe in its destructor",
    "DL-S3": "secret referenced in a telemetry name/label expression",
    "DL-S4": "secret added to a snapshot section without Seal()",
    "DL-L1": "unbounded blocking receive (no timeout)",
}

# (rule, repo-relative path, reason). Every entry must suppress at least one
# would-be finding or --strict fails it as stale.
WHITELIST = [
    ("DL-D1", "src/crypto/chacha20.cc",
     "SecureRng::FromEntropy seeds long-lived identity keys from OS entropy; "
     "nondeterminism is the point of this one path"),
    ("DL-D3", "src/common/mutex.h",
     "the annotated wrapper itself owns the raw std::mutex/condition_variable"),
    ("DL-D3", "src/common/thread.h",
     "ServiceThread is the one sanctioned owner of protocol std::threads"),
    ("DL-D3", "src/common/parallel.h",
     "pool internals: the worker vector holds raw std::thread handles"),
    ("DL-D3", "src/common/parallel.cc",
     "pool internals spawn/join workers under the annotated mutex"),
    ("DL-L1", "src/net/transport.cc",
     "Endpoint implements the unbounded primitives directly over the mailbox queue; "
     "Close() is their documented unblocking path"),
]

# Types that zeroize their own key material on destruction; members of these
# types satisfy DL-S2 without the owning class adding a wipe. Secret<T>
# (common/secret.h) is the canonical one: the wrapper wipes in its destructor,
# so tagged members should migrate to it rather than grow bespoke destructors.
SELF_WIPING_TYPES = ("Secret<", "Aead", "SecureRng", "SecureChannel")

# Token patterns per rule (applied to comment/string-stripped code).
D1_TOKENS = [
    (re.compile(r"std::random_device"), "std::random_device"),
    (re.compile(r"\brand\s*\("), "rand("),
    (re.compile(r"\bsrand\s*\("), "srand("),
    (re.compile(r"\btime\s*\("), "time("),
    (re.compile(r"system_clock"), "system_clock"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday("),
    (re.compile(r"\bCLOCK_REALTIME\b"), "CLOCK_REALTIME"),
]
D2_TOKEN = re.compile(r"std::unordered_\w+")
D3_TOKENS = [
    (re.compile(r"std::thread\b"), "std::thread"),
    (re.compile(r"std::jthread\b"), "std::jthread"),
    (re.compile(r"std::(?:recursive_|timed_|shared_)?mutex\b"), "std::mutex"),
    (re.compile(r"std::condition_variable"), "std::condition_variable"),
    (re.compile(r"std::lock_guard"), "std::lock_guard"),
    (re.compile(r"std::unique_lock"), "std::unique_lock"),
    (re.compile(r"std::scoped_lock"), "std::scoped_lock"),
]
L1_TOKEN = re.compile(
    # Unbounded mailbox primitives: Receive()/Pop() with no deadline, typed ReceiveType.
    r"(?:\.|->)\s*(?:Receive|Pop)\s*\(\s*\)|(?:\.|->)\s*ReceiveType\s*\("
    # Unbounded socket waits: epoll_wait/poll with a -1 timeout block forever, so a
    # peer that dies without closing its socket wedges the transport event loop.
    r"|\bepoll_wait\s*\([^;()]*,\s*-1\s*\)"
    r"|\bpoll\s*\([^;()]*,\s*-1\s*\)")

LOG_TOKEN = re.compile(r"\bDETA_LOG\b|\bLOG_(?:DEBUG|INFO|WARNING|ERROR)\b")
TELEMETRY_TOKEN = re.compile(
    r"\bGetCounter\s*\(|\bGetGauge\s*\(|\bGetHistogram\s*\(|\bDETA_COUNTER\s*\(|"
    r"\bDETA_HISTOGRAM\s*\(")
SNAPSHOT_ADD_TOKEN = re.compile(r"\.\s*Add\s*\(\s*(?:[\w]+::)*SectionType")
SEAL_TOKEN = re.compile(r"\bSeal\s*\(")

# Local alias assignment: `Type name = expr;` or `name = expr;` with a plain
# identifier LHS (member accesses like `kp.priv.lambda = ...` are declarations
# of taint, not aliases, and are handled by the secret-name match itself).
ALIAS_ASSIGN = re.compile(
    r"\s*(?:const\s+)?(?:[A-Za-z_][\w:]*(?:\s*<[^=;]*>)?[&\s\*]+)?"
    r"(?P<name>[A-Za-z_]\w*)\s*=[^=]")

TAG_SECRET = re.compile(r"deta-lint:\s*secret\b")
TAG_ALLOW = re.compile(r"deta-lint:\s*allow\((DL-[A-Z]\d)\)\s*(.*)")

MEMBER_DECL = re.compile(
    r"^\s*(?:mutable\s+)?(?:const\s+)?"
    r"(?P<type>[A-Za-z_][\w:]*(?:\s*<[^;{}]*>)?(?:\s*[\*&])?)"
    r"\s+(?P<name>[A-Za-z_]\w*)\s*(?:=[^;]*|\{[^;]*\})?;")
CLASS_DECL = re.compile(r"\b(?:class|struct)\s+(?:DETA_\w+\s*(?:\([^)]*\))?\s*)?"
                        r"(?P<name>[A-Za-z_]\w*)")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# ---------------------------------------------------------------------------
# Lexing: split each line into code (strings/comments blanked) and comment text
# ---------------------------------------------------------------------------

def split_code_and_comments(lines):
    """Returns (code_lines, comment_lines); both same length as input.

    String/char literal contents are blanked in code_lines, so token scans and
    secret-name matches never fire inside literals. Block comments are handled
    across lines.
    """
    code_lines, comment_lines = [], []
    in_block = False
    for raw in lines:
        code, comment = [], []
        i, n = 0, len(raw)
        while i < n:
            c = raw[i]
            if in_block:
                if raw.startswith("*/", i):
                    in_block = False
                    i += 2
                else:
                    comment.append(c)
                    i += 1
                continue
            if raw.startswith("//", i):
                comment.append(raw[i + 2:])
                break
            if raw.startswith("/*", i):
                in_block = True
                i += 2
                continue
            if c in "\"'":
                quote = c
                code.append(quote)
                i += 1
                while i < n:
                    if raw[i] == "\\":
                        i += 2
                        continue
                    if raw[i] == quote:
                        break
                    i += 1
                code.append(quote)
                i += 1
                continue
            code.append(c)
            i += 1
        code_lines.append("".join(code))
        comment_lines.append("".join(comment))
    return code_lines, comment_lines


# ---------------------------------------------------------------------------
# Per-file parsing: suppressions, secret tags, class structure
# ---------------------------------------------------------------------------

class Suppression:
    def __init__(self, rule, reason, path, line):
        self.rule = rule
        self.reason = reason.strip()
        self.path = path
        self.line = line  # comment's own line (1-based)
        self.used = False


def collect_suppressions(path, comment_lines):
    out = []
    for idx, comment in enumerate(comment_lines):
        m = TAG_ALLOW.search(comment)
        if m:
            out.append(Suppression(m.group(1), m.group(2), path, idx + 1))
    return out


class SecretMember:
    def __init__(self, path, line, cls, name, decl_type):
        self.path = path
        self.line = line
        self.cls = cls  # enclosing class name or None
        self.name = name
        self.decl_type = decl_type

    @property
    def self_wiping(self):
        return any(t in self.decl_type for t in SELF_WIPING_TYPES)


def enclosing_classes(code_lines):
    """For each line (0-based), the innermost enclosing class/struct name or None,
    evaluated at the *start* of the line."""
    result = []
    stack = []  # brace stack: class name or None per open brace
    pending = None  # class name seen, brace not yet opened
    for code in code_lines:
        result.append(next((s for s in reversed(stack) if s), None))
        m = CLASS_DECL.search(code)
        decl_pos = m.start() if m else None
        for pos, ch in enumerate(code):
            if decl_pos is not None and pos == decl_pos:
                pending = m.group("name")
            if ch == "{":
                stack.append(pending)
                pending = None
            elif ch == "}":
                if stack:
                    stack.pop()
            elif ch == ";" and pending is not None and decl_pos is not None:
                pending = None  # forward declaration
    return result


def collect_secrets(path, code_lines, comment_lines):
    """Finds `// deta-lint: secret` tags: on a declaration line, or on a
    comment-only line directly preceding one."""
    classes = enclosing_classes(code_lines)
    secrets = []
    pending_tag_line = None
    for idx in range(len(code_lines)):
        tagged_here = bool(TAG_SECRET.search(comment_lines[idx]))
        code = code_lines[idx].strip()
        if not code:
            if tagged_here:
                pending_tag_line = idx
            continue
        if tagged_here or pending_tag_line is not None:
            tag_line = idx if tagged_here else pending_tag_line
            m = MEMBER_DECL.match(code_lines[idx])
            if m:
                secrets.append(SecretMember(path, idx + 1, classes[idx],
                                            m.group("name"), m.group("type")))
            else:
                secrets.append(SecretMember(path, tag_line + 1, classes[idx],
                                            None, ""))
        pending_tag_line = idx if (tagged_here and not code) else None
    return secrets


# ---------------------------------------------------------------------------
# Statement grouping (for the taint passes)
# ---------------------------------------------------------------------------

def statements(code_lines):
    """Yields (start_line_1based, text) for ';'-terminated statement chunks.
    Braces also end a chunk, so function bodies don't glue together."""
    buf, start = [], None
    for idx, code in enumerate(code_lines):
        stripped = code.strip()
        if not stripped:
            continue
        if start is None:
            start = idx + 1
        buf.append(code)
        if stripped.endswith((";", "{", "}", ":")) or stripped.startswith("#"):
            yield start, " ".join(buf)
            buf, start = [], None
    if buf:
        yield start, " ".join(buf)


# ---------------------------------------------------------------------------
# The lint engine
# ---------------------------------------------------------------------------

def rel(path, root):
    return os.path.relpath(path, root).replace(os.sep, "/")


class Linter:
    def __init__(self, root):
        self.root = root
        self.findings = []
        self.whitelist_used = {i: False for i in range(len(WHITELIST))}
        self.suppressions = []  # across all files

    # -- whitelist / suppression plumbing --------------------------------

    def _whitelisted(self, rule, relpath):
        for i, (wrule, wpath, _reason) in enumerate(WHITELIST):
            if wrule == rule and wpath == relpath:
                self.whitelist_used[i] = True
                return True
        return False

    def _suppressed(self, rule, path, line, file_suppressions):
        for s in file_suppressions:
            if s.rule == rule and s.line in (line, line - 1):
                if not s.reason:
                    continue  # a reasonless allow() never suppresses
                s.used = True
                return True
        return False

    def _report(self, rule, path, relpath, line, message, file_suppressions):
        if self._whitelisted(rule, relpath):
            return
        if self._suppressed(rule, path, line, file_suppressions):
            return
        self.findings.append(Finding(relpath, line, rule, message))

    # -- passes ----------------------------------------------------------

    def lint_files(self, paths):
        parsed = {}
        all_secrets = []
        for path in paths:
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                lines = f.read().splitlines()
            code_lines, comment_lines = split_code_and_comments(lines)
            supps = collect_suppressions(path, comment_lines)
            self.suppressions.extend(supps)
            relpath = rel(path, self.root)
            in_src = relpath.startswith("src/") or "/" not in relpath
            secrets = collect_secrets(relpath, code_lines, comment_lines) if in_src else []
            all_secrets.extend(secrets)
            parsed[path] = (relpath, code_lines, comment_lines, supps, secrets, in_src)

        secret_names = sorted({s.name for s in all_secrets if s.name})
        secret_name_re = (re.compile(r"\b(?:" + "|".join(map(re.escape, secret_names)) + r")\b")
                          if secret_names else None)

        for path, (relpath, code_lines, _comments, supps, secrets, in_src) in parsed.items():
            self._token_pass(path, relpath, code_lines, supps, in_src)
            if in_src:
                self._taint_pass(path, relpath, code_lines, supps, secret_name_re)
                self._wipe_pass(path, relpath, code_lines, supps, secrets, parsed)

    def _token_pass(self, path, relpath, code_lines, supps, in_src):
        for idx, code in enumerate(code_lines):
            line = idx + 1
            for pattern, token in D1_TOKENS:
                if pattern.search(code):
                    self._report("DL-D1", path, relpath, line,
                                 f"nondeterminism source `{token}` — aggregation and "
                                 "protocol state must be a pure function of the workload",
                                 supps)
            if not in_src:
                continue  # D2/D3/L1 are src-only: tests drive threads/receives directly
            m = D2_TOKEN.search(code)
            if m:
                self._report("DL-D2", path, relpath, line,
                             f"`{m.group(0)}` — hash-order iteration is nondeterministic; "
                             "use std::map/std::set or a sorted vector", supps)
            for pattern, token in D3_TOKENS:
                if pattern.search(code):
                    self._report("DL-D3", path, relpath, line,
                                 f"raw `{token}` — use deta::Mutex/MutexLock/CondVar "
                                 "(common/mutex.h) or deta::ServiceThread (common/thread.h) "
                                 "so clang -Wthread-safety can check it", supps)
            if L1_TOKEN.search(code):
                self._report("DL-L1", path, relpath, line,
                             "unbounded blocking receive — use the *For variant with a "
                             "timeout so a dead peer cannot wedge this loop", supps)

    def _taint_pass(self, path, relpath, code_lines, supps, secret_name_re):
        if secret_name_re is None:
            return
        # Statement-ordered alias tracking (DL-S4 only): `auto blob = <expr
        # naming a secret or an existing alias>;` taints `blob`, so a later
        # plaintext Add(blob) is caught even though the Add statement never
        # names the tagged member. Seal() in the aliasing statement sanitizes
        # (the alias then holds ciphertext); reassigning an alias from a clean
        # expression clears it. One file, one hop — deeper flows (through
        # helpers, returns, other TUs) are deta_taintcheck.py's job.
        aliases = {}  # alias name -> originating secret name
        for start, text in statements(code_lines):
            alias_hit = next((a for a in aliases
                              if re.search(r"\b" + re.escape(a) + r"\b", text)), None)
            hit = secret_name_re.search(text)
            m = ALIAS_ASSIGN.match(text)
            if m:
                lhs = m.group("name")
                rhs = text[m.end("name"):]
                rhs_secret = secret_name_re.search(rhs)
                rhs_alias = next((a for a in aliases
                                  if re.search(r"\b" + re.escape(a) + r"\b", rhs)), None)
                if SEAL_TOKEN.search(rhs):
                    aliases.pop(lhs, None)  # holds ciphertext now
                elif rhs_secret:
                    aliases[lhs] = rhs_secret.group(0)
                elif rhs_alias:
                    aliases[lhs] = aliases[rhs_alias]
                else:
                    aliases.pop(lhs, None)  # overwritten with a clean value
            if not hit and alias_hit is None:
                continue
            name = hit.group(0) if hit else alias_hit
            if hit:
                if LOG_TOKEN.search(text):
                    self._report("DL-S1", path, relpath, start,
                                 f"secret `{name}` referenced in a log statement", supps)
                if TELEMETRY_TOKEN.search(text):
                    self._report("DL-S3", path, relpath, start,
                                 f"secret `{name}` referenced in a telemetry "
                                 "name/label expression", supps)
            if SNAPSHOT_ADD_TOKEN.search(text) and not SEAL_TOKEN.search(text):
                origin = name if hit else aliases[alias_hit]
                via = "" if hit else f" (via local `{alias_hit}`)"
                self._report("DL-S4", path, relpath, start,
                             f"secret `{origin}` added to a snapshot section without "
                             f"Seal(){via} — plaintext key material on disk", supps)

    def _wipe_pass(self, path, relpath, code_lines, supps, secrets, parsed):
        by_class = {}
        for s in secrets:
            if s.name is None:
                continue
            by_class.setdefault(s.cls, []).append(s)
        file_text = "\n".join(code_lines)
        for cls, members in by_class.items():
            if cls is None:
                continue  # free declarations (locals/globals) have no destructor to check
            if all(m.self_wiping for m in members):
                continue
            texts = [file_text]
            sibling = self._sibling_source(path)
            if sibling and sibling in parsed:
                texts.append("\n".join(parsed[sibling][1]))
            if not any(self._destructor_wipes(t, cls) for t in texts):
                first = members[0]
                self._report(
                    "DL-S2", path, relpath, first.line,
                    f"`{cls}` owns secret member(s) "
                    f"{', '.join(m.name for m in members if not m.self_wiping)} but no "
                    "destructor calls crypto::SecureWipe / .Wipe()", supps)

    @staticmethod
    def _sibling_source(path):
        if path.endswith(".h"):
            return path[:-2] + ".cc"
        if path.endswith(".cc"):
            return path[:-3] + ".h"
        return None

    @staticmethod
    def _destructor_wipes(text, cls):
        for m in re.finditer(r"~" + re.escape(cls) + r"\s*\(", text):
            window = text[m.start():m.start() + 600]
            if "= delete" in window.split(";", 1)[0]:
                continue
            if "Wipe" in window:
                return True
        return False

    # -- strict-mode bookkeeping -----------------------------------------

    def stale_whitelist(self):
        return [WHITELIST[i] for i, used in self.whitelist_used.items() if not used]

    @staticmethod
    def whitelist_entry_location(rule, wpath):
        """(script_path, line) of a WHITELIST entry inside this script, so a
        stale-entry report is clickable and jumps straight to the tuple to
        delete. Line 1 if the tuple cannot be located (reformatted source)."""
        script = os.path.abspath(__file__)
        try:
            with open(script, "r", encoding="utf-8") as f:
                for lineno, line in enumerate(f, start=1):
                    if f'"{rule}"' in line and f'"{wpath}"' in line:
                        return script, lineno
        except OSError:
            pass
        return script, 1

    def stale_suppressions(self):
        return [s for s in self.suppressions if not s.used]

    def reasonless_suppressions(self):
        return [s for s in self.suppressions if not s.reason]


# ---------------------------------------------------------------------------
# File discovery / CLI
# ---------------------------------------------------------------------------

SOURCE_EXTENSIONS = (".h", ".cc")


def discover(root, arg_paths):
    if arg_paths:
        out = []
        for p in arg_paths:
            p = os.path.abspath(p)
            if os.path.isdir(p):
                out.extend(walk(p))
            else:
                out.append(p)
        return sorted(out)
    files = []
    for sub in ("src", "tests"):
        d = os.path.join(root, sub)
        if os.path.isdir(d):
            files.extend(walk(d))
    return sorted(files)


def walk(directory):
    out = []
    for dirpath, _dirnames, filenames in os.walk(directory):
        for name in filenames:
            if name.endswith(SOURCE_EXTENSIONS):
                out.append(os.path.join(dirpath, name))
    return out


def run_lint(root, paths, strict):
    linter = Linter(root)
    linter.lint_files(paths)
    ok = True
    for finding in sorted(linter.findings, key=lambda f: (f.path, f.line)):
        print(finding)
        ok = False
    if strict:
        for rule, path, _reason in linter.stale_whitelist():
            wfile, wline = Linter.whitelist_entry_location(rule, path)
            print(f"{rel(wfile, root)}:{wline}: stale whitelist entry "
                  f"({rule}, {path}) — it suppresses nothing; remove it")
            ok = False
        for s in linter.stale_suppressions():
            print(f"{rel(s.path, root)}:{s.line}: stale suppression allow({s.rule}) — "
                  "it suppresses nothing; remove it")
            ok = False
        for s in linter.reasonless_suppressions():
            print(f"{rel(s.path, root)}:{s.line}: suppression allow({s.rule}) has no "
                  "reason — a written reason is mandatory")
            ok = False
    if ok:
        print(f"deta_lint: OK ({len(paths)} files, 0 findings)")
    return ok


def run_selftest(root):
    """Fixture corpus: every rule has >= 1 must-fail (bad_*) fixture that the
    engine must flag with exactly that rule, and every good_* fixture must be
    clean for its rule. Fixtures are linted as if they lived under src/."""
    fixtures = os.path.join(os.path.dirname(os.path.abspath(__file__)), "lint_fixtures")
    if not os.path.isdir(fixtures):
        print(f"deta_lint: fixture directory missing: {fixtures}")
        return False
    ok = True
    rules_with_bad_fixture = set()
    for rule in sorted(os.listdir(fixtures)):
        rule_dir = os.path.join(fixtures, rule)
        if not os.path.isdir(rule_dir):
            continue
        for name in sorted(os.listdir(rule_dir)):
            if not name.endswith(SOURCE_EXTENSIONS):
                continue
            path = os.path.join(rule_dir, name)
            # Root the linter at the rule directory so the fixture's relpath has
            # no directory prefix and is treated as src/ scope (see lint_files).
            linter = Linter(rule_dir)
            linter.lint_files([path])
            hits = [f for f in linter.findings if f.rule == rule]
            if name.startswith("bad_"):
                rules_with_bad_fixture.add(rule)
                if not hits:
                    print(f"selftest FAIL: {rule}/{name} should trigger {rule} "
                          "but produced no such finding")
                    ok = False
            elif name.startswith("good_"):
                if hits:
                    print(f"selftest FAIL: {rule}/{name} should be clean for {rule} "
                          f"but produced: {hits[0]}")
                    ok = False
            else:
                print(f"selftest FAIL: {rule}/{name} must be named bad_* or good_*")
                ok = False
    missing = sorted(set(RULES) - rules_with_bad_fixture)
    if missing:
        print(f"selftest FAIL: rules without a must-fail fixture: {', '.join(missing)}")
        ok = False
    if ok:
        print("deta_lint selftest: OK")
    return ok


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--strict", action="store_true",
                        help="also fail on stale whitelist entries / suppressions")
    parser.add_argument("--selftest", action="store_true",
                        help="run the fixture corpus instead of linting the tree")
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("paths", nargs="*", help="files or directories (default: src/ tests/)")
    args = parser.parse_args(argv)

    root = os.path.abspath(args.root) if args.root else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if args.selftest:
        return 0 if run_selftest(root) else 1
    paths = discover(root, args.paths)
    if not paths:
        print("deta_lint: no source files found")
        return 2
    return 0 if run_lint(root, paths, args.strict) else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
