#!/usr/bin/env bash
# Negative-compile gate for the thread-safety annotations.
#
# Asserts two things with clang's -Wthread-safety -Werror=thread-safety:
#   1. tests/negative_compile/thread_safety_ok.cc (correctly locked) compiles — the
#      control, so a broken include path can't fake the expected failure;
#   2. tests/negative_compile/thread_safety_violation.cc (unannotated guarded access)
#      is REJECTED, and rejected specifically by the thread-safety analysis.
#
# Exit 77 (ctest SKIP, see lint.thread_safety_negcompile) when clang++ is unavailable:
# the analysis only exists in clang, and this container may only carry gcc.
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
clangxx="${CLANGXX:-clang++}"

if ! command -v "$clangxx" >/dev/null 2>&1; then
  echo "SKIP: $clangxx not installed; the thread-safety analysis needs clang"
  exit 77
fi

flags=(-std=c++20 -fsyntax-only -I "$root/src" -Wthread-safety -Werror=thread-safety)
ok_src="$root/tests/negative_compile/thread_safety_ok.cc"
bad_src="$root/tests/negative_compile/thread_safety_violation.cc"
errlog="$(mktemp)"
trap 'rm -f "$errlog"' EXIT

if ! "$clangxx" "${flags[@]}" "$ok_src" 2>"$errlog"; then
  echo "FAIL: control $ok_src must compile cleanly under -Wthread-safety:"
  cat "$errlog"
  exit 1
fi

if "$clangxx" "${flags[@]}" "$bad_src" 2>"$errlog"; then
  echo "FAIL: $bad_src compiled — the unannotated guarded access must be rejected."
  echo "      The thread-safety analysis is not actually running."
  exit 1
fi

if ! grep -q "thread-safety" "$errlog"; then
  echo "FAIL: $bad_src was rejected, but not by the thread-safety analysis:"
  cat "$errlog"
  exit 1
fi

echo "OK: -Wthread-safety rejects the unannotated access and accepts the locked control"
