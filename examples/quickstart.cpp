// Quickstart: train a model with DeTA — four parties, three SEV-protected aggregators,
// partitioned + shuffled updates — and compare against the centralized baseline.
//
//   $ ./quickstart
//
// Walks the full Figure-1 life cycle: attestation, token provisioning, two-phase party
// authentication, then federated rounds with Trans/Trans^-1 around every update.
#include <cstdio>

#include "common/logging.h"
#include "core/deta_job.h"
#include "fl/training_job.h"

using namespace deta;

int main() {
  SetLogLevel(LogLevel::kInfo);  // narrate attestation + round progress

  // 1. A shared model architecture. Every party (and the evaluation harness) builds the
  //    same seeded network, so initial weights agree everywhere.
  fl::ModelFactory model_factory = [] {
    Rng rng(1234);
    return nn::BuildConvNet8(/*in_channels=*/1, /*image_size=*/28, /*classes=*/10, rng);
  };

  // 2. Private data: four parties, IID shards of a synthetic MNIST-like problem.
  data::Dataset train = data::SynthMnist(/*num_examples=*/800, /*seed=*/7);
  data::Dataset eval = data::SynthMnist(/*num_examples=*/200, /*seed=*/8);
  Rng split_rng(5);
  auto shards = data::SplitIid(train, /*parties=*/4, split_rng);

  fl::TrainConfig train_config;
  train_config.batch_size = 32;
  train_config.local_epochs = 1;
  train_config.lr = 0.08f;

  auto make_parties = [&] {
    std::vector<std::unique_ptr<fl::Party>> parties;
    for (int i = 0; i < 4; ++i) {
      parties.push_back(std::make_unique<fl::Party>(
          "party" + std::to_string(i), shards[static_cast<size_t>(i)], model_factory,
          train_config, static_cast<uint64_t>(100 + i)));
    }
    return parties;
  };

  // 3. DeTA job: three decentralized aggregators, partitioning + shuffling on. The same
  //    fl::ExecutionOptions drives both the DeTA job and the centralized baseline.
  fl::ExecutionOptions options;
  options.rounds = 5;
  options.train = train_config;
  options.algorithm = "iterative_averaging";
  core::DetaOptions deta_options;
  deta_options.num_aggregators = 3;
  deta_options.enable_partition = true;
  deta_options.enable_shuffle = true;
  deta_options.permutation_key_bits = 128;

  std::printf("== DeTA: 4 parties, 3 SEV-protected aggregators ==\n");
  core::DetaJob deta(options, deta_options, make_parties(), model_factory, eval);
  fl::JobResult deta_result = deta.Run();
  std::printf("one-time attestation/setup: %.3fs (simulated SEV provisioning)\n",
              deta_result.setup_seconds);

  // 4. The centralized baseline on the identical workload.
  std::printf("\n== Baseline: centralized FFL aggregator ==\n");
  fl::FflJob ffl(options, make_parties(), model_factory, eval);
  fl::JobResult ffl_result = ffl.Run();

  // 5. Verdict: same model, small overhead.
  std::printf("\n%5s  %22s  %22s\n", "round", "DeTA (loss/acc/lat)", "FFL (loss/acc/lat)");
  for (size_t i = 0; i < deta_result.rounds.size(); ++i) {
    const fl::RoundMetrics& d = deta_result.rounds[i];
    const fl::RoundMetrics& f = ffl_result.rounds[i];
    std::printf("%5d  %7.4f %6.3f %6.2fs  %7.4f %6.3f %6.2fs\n", d.round, d.loss,
                d.accuracy, d.cumulative_latency_s, f.loss, f.accuracy,
                f.cumulative_latency_s);
  }
  bool identical = deta_result.final_params == ffl_result.final_params;
  std::printf("\nfinal model parameters identical to the centralized baseline: %s\n",
              identical ? "YES (bit-exact)" : "no");
  return identical ? 0 : 1;
}
