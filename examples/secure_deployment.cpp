// Secure deployment walkthrough: the two-phase authentication protocol (§4.3) end to
// end, including the failure paths —
//   * a tampered aggregator image failing attestation (phase I),
//   * an impersonated aggregator failing the token challenge (phase II),
//   * what a rogue hypervisor admin sees (ciphertext),
//   * what a full SEV breach yields (shuffled fragments only).
#include <cstdio>

#include "core/deta_job.h"
#include "crypto/sha256.h"
#include "net/codec.h"

using namespace deta;

int main() {
  crypto::SecureRng rng(StringToBytes("secure-deployment-demo"));

  std::printf("== Phase I: launching trustworthy aggregators ==\n");
  cc::RemoteAttestationService ras(rng);  // "AMD RAS"
  Bytes good_image = StringToBytes("deta-aggregator-image-v1");
  cc::AttestationProxy proxy(ras.RootKey(), crypto::Sha256Digest(good_image),
                             crypto::SecureRng(rng.NextBytes(32)));

  cc::SevPlatform platform("platform0", ras, rng);
  auto cvm = platform.LaunchPausedCvm("aggregator0", good_image);
  auto provision = proxy.VerifyAndProvision(platform, *cvm);
  std::printf("  genuine image:   attestation %s\n", provision.ok ? "PASSED" : "failed");

  // A tampered build (e.g. with collusion code) has a different measurement.
  Bytes evil_image = good_image;
  evil_image.push_back('!');
  auto evil_cvm = platform.LaunchPausedCvm("evil-aggregator", evil_image);
  auto evil_result = proxy.VerifyAndProvision(platform, *evil_cvm);
  std::printf("  tampered image:  attestation %s (%s)\n",
              evil_result.ok ? "passed?!" : "REJECTED", evil_result.failure_reason.c_str());

  // A platform without AMD-rooted certificates cannot attest either.
  crypto::SecureRng rogue_rng(StringToBytes("rogue"));
  cc::RemoteAttestationService rogue_ras(rogue_rng);
  cc::SevPlatform rogue_platform("rogue-host", rogue_ras, rogue_rng);
  auto rogue_cvm = rogue_platform.LaunchPausedCvm("rogue-agg", good_image);
  auto rogue_result = proxy.VerifyAndProvision(rogue_platform, *rogue_cvm);
  std::printf("  forged platform: attestation %s (%s)\n",
              rogue_result.ok ? "passed?!" : "REJECTED", rogue_result.failure_reason.c_str());

  std::printf("\n== Phase II: party-side verification ==\n");
  net::MessageBus bus;
  auto party = bus.CreateEndpoint("party0");
  auto agg = bus.CreateEndpoint("aggregator0");
  Secret<crypto::BigUint> token_private(
      crypto::BigUint::FromBytes(*cvm->GuestRead(cc::kTokenRegion)));

  // The aggregator thread answers one challenge and one registration.
  std::thread responder([&] {
    crypto::SecureRng agg_rng(StringToBytes("agg"));
    auto challenge = agg->ReceiveType(core::kAuthChallenge);
    core::AnswerChallenge(*agg, *challenge, token_private);
    auto registration = agg->ReceiveType(core::kAuthRegister);
    auto channel = core::AcceptRegistration(*agg, *registration, token_private, agg_rng);
    // Echo one sealed message back across the established channel.
    auto upload = agg->ReceiveType("demo.upload");
    auto opened = channel->second.Open(upload->payload);
    std::printf("  aggregator opened sealed payload: \"%s\"\n",
                opened ? BytesToString(*opened).c_str() : "(failed)");
  });

  crypto::SecureRng party_rng(StringToBytes("party"));
  bool verified = core::VerifyAggregator(*party, "aggregator0",
                                         proxy.TokenRegistry().at("aggregator0"), party_rng);
  std::printf("  challenge/response against provisioned token: %s\n",
              verified ? "VERIFIED" : "failed");
  auto channel = core::RegisterWithAggregator(
      *party, "aggregator0", proxy.TokenRegistry().at("aggregator0"), party_rng);
  std::printf("  registration + authenticated ECDH channel:    %s\n",
              channel ? "ESTABLISHED" : "failed");
  party->Send("aggregator0", "demo.upload",
              channel->Seal(StringToBytes("hello over TLS-equivalent"), party_rng));
  responder.join();

  std::printf("\n== Adversary views ==\n");
  // Simulate the aggregator staging a (transformed) model fragment in CVM memory.
  cvm->GuestWrite("update:party0:r1", StringToBytes("0.91 -0.22 1.37 0.08 ..."));
  auto hypervisor_view = cvm->HypervisorRead("update:party0:r1");
  std::printf("  rogue host admin (SEV intact) sees:  %s...\n",
              ToHex(Bytes(hypervisor_view->begin(), hypervisor_view->begin() + 12)).c_str());
  auto breach = cvm->Breach();
  std::printf("  full SEV breach (worst case) yields: \"%s\"\n",
              BytesToString(breach.at("update:party0:r1")).c_str());
  std::printf(
      "  ...which under DeTA is a partitioned, shuffled fragment: useless for\n"
      "  reconstruction without the party-held mapper and permutation key\n"
      "  (run ./attack_demo to see that quantified).\n");
  return 0;
}
