// Byzantine robustness under DeTA (§4.2 "Applicable Aggregation Algorithms"): a poisoning
// party submits hostile updates; Krum / Coordinate Median / FLAME filter it equally well
// whether aggregation is centralized or running on DeTA's partitioned, shuffled
// fragments — distances and per-coordinate statistics are permutation-invariant.
#include <cstdio>

#include "core/deta_job.h"

using namespace deta;

namespace {

// A malicious party: trains normally, then negates and amplifies its update
// (a classic model-poisoning strategy).
class PoisoningParty : public fl::Party {
 public:
  using fl::Party::Party;

  LocalResult RunLocalRound(const std::vector<float>& global_params, int round) override {
    LocalResult result = fl::Party::RunLocalRound(global_params, round);
    for (auto& v : result.update.values) {
      v = -8.0f * v;
    }
    return result;
  }
};

}  // namespace

int main() {
  fl::ModelFactory model_factory = [] {
    Rng rng(1234);
    return nn::BuildConvNet8(1, 14, 10, rng);
  };
  data::SyntheticConfig dc;
  dc.num_examples = 500;
  dc.classes = 10;
  dc.channels = 1;
  dc.image_size = 14;
  dc.style = data::ImageStyle::kBlobs;
  dc.seed = 7;
  dc.prototype_seed = 777;
  data::Dataset train = data::GenerateSynthetic(dc);
  dc.seed = 8;
  dc.num_examples = 150;
  data::Dataset eval = data::GenerateSynthetic(dc);

  Rng split_rng(5);
  auto shards = data::SplitIid(train, 5, split_rng);

  fl::TrainConfig tc;
  tc.batch_size = 25;
  tc.local_epochs = 1;
  tc.lr = 0.08f;

  auto make_parties = [&] {
    std::vector<std::unique_ptr<fl::Party>> parties;
    for (int i = 0; i < 4; ++i) {
      parties.push_back(std::make_unique<fl::Party>("party" + std::to_string(i),
                                                    shards[static_cast<size_t>(i)],
                                                    model_factory, tc, 100 + i));
    }
    parties.push_back(std::make_unique<PoisoningParty>("poisoner", shards[4], model_factory,
                                                       tc, 104));
    return parties;
  };

  std::printf("5 parties, one of which negates & amplifies its updates (x-8).\n\n");
  std::printf("%-22s %-14s %-14s\n", "aggregation", "final acc", "final loss");
  for (const char* algorithm : {"iterative_averaging", "coordinate_median", "krum",
                                "flame", "trimmed_mean"}) {
    fl::ExecutionOptions options;
    options.rounds = 4;
    options.train = tc;
    options.algorithm = algorithm;
    core::DetaOptions deta_options;
    deta_options.num_aggregators = 3;
    core::DetaJob job(options, deta_options, make_parties(), model_factory, eval);
    fl::JobResult result = job.Run();
    std::printf("%-22s %-14.3f %-14.3f%s\n", algorithm, result.rounds.back().accuracy,
                result.rounds.back().loss,
                std::string(algorithm) == "iterative_averaging"
                    ? "   <- plain averaging is wrecked by the poisoner"
                    : "");
  }
  std::printf(
      "\nThe Byzantine-robust algorithms hold up on DeTA's partitioned+shuffled\n"
      "fragments: outlier filtering relies only on permutation-invariant quantities.\n");
  return 0;
}
