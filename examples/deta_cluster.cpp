// deta_cluster — multi-process DeTA deployment over real TCP sockets.
//
// The parent process hosts the transport name registry and the evaluation observer,
// then re-execs itself once per role: N aggregators, M parties, and the key broker each
// run in their own OS process and talk only through the TCP transport. Every process
// derives identical job state (auth tokens, transform material, Paillier keys, data
// shards) from the shared seed, so the distributed run trains the exact model the
// single-process deta_run would.
//
//   $ ./deta_cluster --aggregators=3 --parties=8 --rounds=3 --telemetry-dir=out/
//   $ ./deta_cluster --config=cluster.toml          # flat `key = value` TOML
//
// Flags (all optional; --config values are overridden by explicit flags):
//   --parties=N --aggregators=N --rounds=N --seed=N
//   --algorithm=NAME --paillier=0|1 --key-broker=0|1
//   --examples-per-party=N --eval-examples=N --image-size=N
//   --batch=N --local-epochs=N --lr=F --threads=N
//   --round-timeout-ms=N --setup-timeout-ms=N
//   --retry-attempts=N --retry-initial-timeout-ms=N --retry-max-timeout-ms=N
//   --stagger-ms=N                              per-party setup start stagger (in-proc)
//   --listen-host=HOST --registry-port=N        (0 = pick a free port)
//   --telemetry-dir=DIR                         per-role telemetry JSON under DIR
//   --drop=F --fault-seed=N                     seeded message-loss injection
//   --config=FILE                               load flags from a flat TOML file
//
// Internal (added by the parent when spawning children — do not set by hand):
//   --role=NAME --registry=HOST:PORT
#include <cstdio>
#include <map>
#include <string>

#include "common/logging.h"
#include "core/cluster.h"

using namespace deta;

int main(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unrecognized argument: %s\n", arg.c_str());
      return 2;
    }
    size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      flags[arg.substr(2)] = "1";
    } else {
      flags[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
  auto config_it = flags.find("config");
  if (config_it != flags.end()) {
    std::string error;
    // Merged after the command line, so explicit flags win over the file.
    if (!core::ParseTomlFile(config_it->second, &flags, &error)) {
      std::fprintf(stderr, "config error: %s\n", error.c_str());
      return 2;
    }
  }
  SetLogLevel(flags.count("verbose") != 0 ? LogLevel::kInfo : LogLevel::kWarning);
  core::ClusterSpec spec = core::ClusterSpec::FromFlags(flags);

  auto role_it = flags.find("role");
  if (role_it != flags.end()) {
    auto registry_it = flags.find("registry");
    if (registry_it == flags.end()) {
      std::fprintf(stderr, "--role requires --registry=HOST:PORT\n");
      return 2;
    }
    return core::RunClusterChild(spec, role_it->second, registry_it->second);
  }

  std::printf("deta_cluster: %d aggregators, %d parties%s, %d rounds over TCP\n",
              spec.aggregators, spec.parties,
              spec.use_key_broker ? ", key broker" : "", spec.rounds);
  core::ClusterResult result = core::LaunchCluster(spec, argv[0]);

  for (const core::RoleOutcome& role : result.roles) {
    std::printf("  role %-14s pid %-7d exit %d\n", role.role.c_str(),
                static_cast<int>(role.pid), role.exit_code);
  }
  if (!result.observer.ok()) {
    std::fprintf(stderr, "observer run failed (%s): %s\n",
                 fl::JobStatusName(result.observer.status),
                 result.observer.error.c_str());
    return 1;
  }
  if (!result.AllExitedCleanly()) {
    std::fprintf(stderr, "one or more roles exited uncleanly\n");
    return 1;
  }
  std::printf("\n%5s %10s %10s %12s %12s\n", "round", "loss", "accuracy", "latency(s)",
              "wall(s)");
  for (const auto& m : result.observer.rounds) {
    std::printf("%5d %10.4f %10.4f %12.3f %12.3f\n", m.round, m.loss, m.accuracy,
                m.cumulative_latency_s, m.wall_seconds);
  }
  if (!spec.telemetry_dir.empty()) {
    std::printf("per-role telemetry under %s/\n", spec.telemetry_dir.c_str());
  }
  return 0;
}
