// Attack demo: run the DLG gradient-inversion attack against a party's model update with
// and without DeTA's protections, and render the reconstructions as terminal ASCII art.
//
//   $ ./attack_demo
//
// This is the paper's §6 worst case: the adversary breached the aggregator and holds the
// upstreamed update; it even gets white-box model access. With full in-order gradients
// the training image leaks; with DeTA's partitioning+shuffling it does not.
#include <cstdio>

#include "attacks/gradient_inversion.h"
#include "data/dataset.h"

using namespace deta;

namespace {

// Renders a [1,1,H,W] image as ASCII grayscale.
void Render(const Tensor& image, const char* title) {
  static const char kRamp[] = " .:-=+*#%@";
  int h = image.dim(2), w = image.dim(3);
  std::printf("%s\n", title);
  for (int y = 0; y < h; ++y) {
    std::printf("  ");
    for (int x = 0; x < w; ++x) {
      float v = image[static_cast<int64_t>(y) * w + x];
      v = std::min(1.0f, std::max(0.0f, v));
      int idx = static_cast<int>(v * 9.0f);
      std::printf("%c%c", kRamp[idx], kRamp[idx]);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  // Victim: a LeNet being trained on a private image (sigmoid LeNet, as in DLG).
  Rng rng(3);
  auto model = nn::BuildLeNet(/*in_channels=*/1, /*image_size=*/16, /*classes=*/10, rng);

  data::SyntheticConfig dc;
  dc.num_examples = 1;
  dc.classes = 10;
  dc.channels = 1;
  dc.image_size = 16;
  dc.style = data::ImageStyle::kBlobs;
  dc.seed = 11;
  dc.prototype_seed = 101;
  data::Dataset dataset = data::GenerateSynthetic(dc);
  Tensor secret_image = dataset.Example(0);
  int label = dataset.labels[0];

  Render(secret_image, "\n[private training image — never leaves the party]");

  attacks::AttackConfig config;
  config.kind = attacks::AttackKind::kDlg;
  config.iterations = 80;

  struct Scenario {
    const char* title;
    double factor;
    bool shuffle;
  };
  const Scenario scenarios[] = {
      {"\n[attack vs. plain FL: full, in-order gradient leaked]", 1.0, false},
      {"\n[attack vs. DeTA partition-only: one aggregator's 0.6 fragment]", 0.6, false},
      {"\n[attack vs. full DeTA: 0.6 fragment, parameters shuffled]", 0.6, true},
  };
  for (const Scenario& s : scenarios) {
    attacks::AttackScenario scenario;
    scenario.partition_factor = s.factor;
    scenario.shuffle = s.shuffle;
    auto result = attacks::RunAttack(*model, secret_image, label, 10, config, scenario);
    Render(Clamp(result.reconstruction, 0.0f, 1.0f), s.title);
    std::printf("  reconstruction MSE vs. truth: %.4g  (%s)\n", result.mse,
                result.mse < 1e-3 ? "RECOGNIZABLE — data leaked"
                                  : "unrecognizable — attack defeated");
  }

  std::printf(
      "\nTakeaway: the same attack that reads a training image off a plain FL gradient\n"
      "recovers only noise once the update is partitioned across aggregators and\n"
      "shuffled with the party-held permutation key.\n");
  return 0;
}
