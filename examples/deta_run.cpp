// deta_run — configurable command-line driver for DeTA / FFL training jobs.
//
//   $ ./deta_run --dataset=mnist --parties=4 --aggregators=3 --rounds=5 \
//                --algorithm=coordinate_median --shuffle=1 --compare-baseline=1
//
// Flags (all optional):
//   --dataset=mnist|cifar10|rvlcdip      workload preset           (default mnist)
//   --parties=N                          number of parties         (default 4)
//   --aggregators=N                      number of DeTA aggregators (default 3)
//   --rounds=N                           training rounds           (default 5)
//   --local-epochs=N                     local epochs per round    (default 1)
//   --batch=N                            batch size                (default 32)
//   --lr=F                               learning rate             (default 0.08)
//   --algorithm=NAME                     iterative_averaging | coordinate_median | krum |
//                                        flame | trimmed_mean | multi_krum | bulyan
//   --fedsgd=0|1                         gradient uploads instead of parameters
//   --partition=0|1 --shuffle=0|1        DeTA transform stages     (default 1/1)
//   --paillier=0|1                       homomorphic aggregation   (default 0)
//   --ldp=0|1 --ldp-sigma=F --ldp-clip=F party-side DP (default off; sigma=0.05 clip=2)
//   --noniid=0|1                         90-10 two-class skew split
//   --train-examples=N --eval-examples=N dataset sizes
//   --compare-baseline=0|1               also run centralized FFL and diff the models
//   --seed=N                             reproducibility seed
//   --threads=N                          worker threads for aggregation/crypto hot paths
//                                        (0 = hardware concurrency; results are bitwise
//                                        identical for any value)
//   --checkpoint-dir=DIR                 durable per-role snapshots under DIR (src/persist/)
//   --checkpoint-every=N                 snapshot cadence in rounds (default 1)
//   --resume=0|1                         resume from the newest job snapshot in
//                                        --checkpoint-dir instead of starting fresh
//   --telemetry-out=FILE                 write the run's telemetry snapshot as JSON
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "common/logging.h"
#include "common/telemetry.h"
#include "core/deta_job.h"
#include "fl/training_job.h"

using namespace deta;

namespace {

struct Flags {
  std::map<std::string, std::string> values;

  static Flags Parse(int argc, char** argv) {
    Flags flags;
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unrecognized argument: %s\n", arg.c_str());
        std::exit(2);
      }
      size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        flags.values[arg.substr(2)] = "1";
      } else {
        flags.values[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
    return flags;
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
  int GetInt(const std::string& key, int fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : std::atoi(it->second.c_str());
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : std::atof(it->second.c_str());
  }
  bool GetBool(const std::string& key, bool fallback) const {
    return GetInt(key, fallback ? 1 : 0) != 0;
  }
};

struct Workload {
  std::function<data::Dataset(int, uint64_t)> make;
  fl::ModelFactory model_factory;
  int classes;
};

Workload ResolveWorkload(const std::string& name, uint64_t seed) {
  if (name == "mnist") {
    return {[](int n, uint64_t s) { return data::SynthMnist(n, s); },
            [seed] {
              Rng rng(seed);
              return nn::BuildConvNet8(1, 28, 10, rng);
            },
            10};
  }
  if (name == "cifar10") {
    return {[](int n, uint64_t s) { return data::SynthCifar10(n, s); },
            [seed] {
              Rng rng(seed);
              return nn::BuildConvNet23(3, 32, 10, rng);
            },
            10};
  }
  if (name == "rvlcdip") {
    return {[](int n, uint64_t s) {
              data::SyntheticConfig c;
              c.num_examples = n;
              c.classes = 16;
              c.channels = 1;
              c.image_size = 32;
              c.style = data::ImageStyle::kDocument;
              c.seed = s;
              c.prototype_seed = 505;
              return data::GenerateSynthetic(c);
            },
            [seed] {
              Rng rng(seed);
              return nn::BuildMiniVgg(1, 32, 16, rng);
            },
            16};
  }
  std::fprintf(stderr, "unknown dataset: %s (mnist|cifar10|rvlcdip)\n", name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  SetLogLevel(flags.GetBool("verbose", false) ? LogLevel::kInfo : LogLevel::kWarning);

  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1234));
  Workload workload = ResolveWorkload(flags.Get("dataset", "mnist"), seed);
  int parties = flags.GetInt("parties", 4);
  int train_examples = flags.GetInt("train-examples", 200 * parties);
  int eval_examples = flags.GetInt("eval-examples", 150);

  fl::TrainConfig train;
  train.batch_size = flags.GetInt("batch", 32);
  train.local_epochs = flags.GetInt("local-epochs", 1);
  train.lr = static_cast<float>(flags.GetDouble("lr", 0.08));
  if (flags.GetBool("fedsgd", false)) {
    train.kind = fl::TrainConfig::UpdateKind::kGradient;
  }
  train.ldp.enabled = flags.GetBool("ldp", false);
  train.ldp.noise_multiplier = static_cast<float>(flags.GetDouble("ldp-sigma", 0.05));
  train.ldp.clip_norm = static_cast<float>(flags.GetDouble("ldp-clip", 2.0));

  fl::ExecutionOptions options;
  options.rounds = flags.GetInt("rounds", 5);
  options.train = train;
  options.algorithm = flags.Get("algorithm", "iterative_averaging");
  options.use_paillier = flags.GetBool("paillier", false);
  options.seed = seed;
  options.threads = flags.GetInt("threads", 0);
  options.checkpoint.dir = flags.Get("checkpoint-dir", "");
  options.checkpoint.every_n_rounds = flags.GetInt("checkpoint-every", 1);
  options.checkpoint.resume = flags.GetBool("resume", false);
  core::DetaOptions deta_options;
  deta_options.num_aggregators = flags.GetInt("aggregators", 3);
  deta_options.enable_partition = flags.GetBool("partition", true);
  deta_options.enable_shuffle = flags.GetBool("shuffle", true);

  data::Dataset train_data = workload.make(train_examples, 7);
  data::Dataset eval_data = workload.make(eval_examples, 8);
  Rng split_rng(seed + 1);
  auto shards = flags.GetBool("noniid", false)
                    ? data::SplitNonIidSkew(train_data, parties, 2, 0.9f, split_rng)
                    : data::SplitIid(train_data, parties, split_rng);

  auto make_parties = [&] {
    std::vector<std::unique_ptr<fl::Party>> out;
    for (int i = 0; i < parties; ++i) {
      out.push_back(std::make_unique<fl::Party>("party" + std::to_string(i),
                                                shards[static_cast<size_t>(i)],
                                                workload.model_factory, train,
                                                seed + 100 + static_cast<uint64_t>(i)));
    }
    return out;
  };

  std::printf("DeTA run: %d parties, %d aggregators, %d rounds, algorithm=%s, "
              "partition=%d shuffle=%d paillier=%d ldp=%d threads=%d\n",
              parties, deta_options.num_aggregators, options.rounds,
              options.algorithm.c_str(), deta_options.enable_partition ? 1 : 0,
              deta_options.enable_shuffle ? 1 : 0, options.use_paillier ? 1 : 0,
              train.ldp.enabled ? 1 : 0, options.threads);
  if (train.ldp.enabled) {
    std::printf("LDP: sigma=%.3f clip=%.3f -> per-round epsilon=%.2f at delta=1e-5\n",
                train.ldp.noise_multiplier, train.ldp.clip_norm,
                fl::GaussianMechanismEpsilon(train.ldp.noise_multiplier, 1e-5));
  }

  core::DetaJob deta(options, deta_options, make_parties(), workload.model_factory,
                     eval_data);
  fl::JobResult result = deta.Run();
  if (!result.ok()) {
    std::fprintf(stderr, "run failed (%s): %s\n", fl::JobStatusName(result.status),
                 result.error.c_str());
    return 1;
  }
  if (result.resumed_from_round > 0) {
    std::printf("resumed from round %d\n", result.resumed_from_round);
  }
  std::printf("\n%5s %10s %10s %14s\n", "round", "loss", "accuracy", "latency(s)");
  for (const auto& m : result.rounds) {
    std::printf("%5d %10.4f %10.4f %14.3f\n", m.round, m.loss, m.accuracy,
                m.cumulative_latency_s);
  }
  std::printf("setup (attestation + provisioning): %.3fs\n", result.setup_seconds);

  if (flags.GetBool("compare-baseline", false)) {
    fl::FflJob ffl(options, make_parties(), workload.model_factory, eval_data);
    fl::JobResult baseline = ffl.Run();
    std::printf("\nbaseline FFL final: loss=%.4f acc=%.4f latency=%.3fs\n",
                baseline.rounds.back().loss, baseline.rounds.back().accuracy,
                baseline.rounds.back().cumulative_latency_s);
    float max_diff = 0.0f;
    const auto& a = baseline.final_params;
    const auto& b = result.final_params;
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      max_diff = std::max(max_diff, std::abs(a[i] - b[i]));
    }
    std::printf("max parameter difference DeTA vs FFL: %g%s\n", max_diff,
                train.ldp.enabled || options.use_paillier
                    ? " (noise/quantization expected)"
                    : (max_diff == 0.0f ? " (bit-exact)" : ""));
  }

  std::string telemetry_out = flags.Get("telemetry-out", "");
  if (!telemetry_out.empty()) {
    // The DeTA run's own delta (not process-global), so the baseline comparison above
    // cannot leak its counters into the artifact.
    if (!telemetry::WriteJsonFile(result.telemetry, telemetry_out)) {
      return 1;
    }
    std::printf("telemetry written to %s\n", telemetry_out.c_str());
  }
  return 0;
}
