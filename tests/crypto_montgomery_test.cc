// Differential tests for the Montgomery hot path (crypto/montgomery.h): every REDC
// multiply, fixed-window exponentiation, and CRT decryption must be bitwise identical
// to the schoolbook reference it replaced. The suites below throw >10k randomized
// cases at the fast paths with the slow paths as oracle — the determinism guarantee
// (DESIGN.md "Crypto hot path") rests on this equivalence, not on code inspection.
#include <gtest/gtest.h>

#include "common/check.h"
#include "crypto/bigint.h"
#include "crypto/montgomery.h"
#include "crypto/paillier.h"

namespace deta::crypto {
namespace {

// Odd modulus with exactly |bits| bits (msb set by RandomBits; the +1 on an even draw
// cannot carry past the top bit because the all-ones value is already odd).
BigUint RandomOddModulus(SecureRng& rng, size_t bits) {
  BigUint m = BigUint::RandomBits(rng, bits);
  return m.IsOdd() ? m : m.Add(BigUint(1));
}

constexpr size_t kBitSizes[] = {8, 31, 32, 33, 64, 96, 128, 160, 224, 256};

TEST(MontgomeryDifferentialTest, MulModMatchesBigUintMulMod) {
  SecureRng rng(StringToBytes("mont-mulmod"));
  int cases = 0;
  for (size_t bits : kBitSizes) {
    for (int rep = 0; rep < 60; ++rep) {
      BigUint m = RandomOddModulus(rng, bits);
      MontgomeryContext ctx(m);
      for (int i = 0; i < 15; ++i) {
        BigUint a = BigUint::RandomBelow(rng, m);
        BigUint b = BigUint::RandomBelow(rng, m);
        ASSERT_EQ(ctx.MulMod(a, b), BigUint::MulMod(a, b, m))
            << "bits=" << bits << " m=" << m.ToHexString();
        ++cases;
      }
    }
  }
  EXPECT_GE(cases, 9000);
}

TEST(MontgomeryDifferentialTest, ToMontFromMontRoundTrips) {
  SecureRng rng(StringToBytes("mont-roundtrip"));
  int cases = 0;
  for (size_t bits : kBitSizes) {
    for (int rep = 0; rep < 20; ++rep) {
      BigUint m = RandomOddModulus(rng, bits);
      MontgomeryContext ctx(m);
      for (int i = 0; i < 5; ++i) {
        BigUint a = BigUint::RandomBelow(rng, m);
        ASSERT_EQ(ctx.FromMont(ctx.ToMont(a)), a) << "bits=" << bits;
        ++cases;
      }
    }
  }
  EXPECT_GE(cases, 1000);
}

TEST(MontgomeryDifferentialTest, MulMontIsMontgomeryProduct) {
  SecureRng rng(StringToBytes("mont-mulmont"));
  for (int rep = 0; rep < 200; ++rep) {
    BigUint m = RandomOddModulus(rng, 128);
    MontgomeryContext ctx(m);
    BigUint a = BigUint::RandomBelow(rng, m);
    BigUint b = BigUint::RandomBelow(rng, m);
    // FromMont(MulMont(ToMont(a), ToMont(b))) is a*b mod m by definition of REDC.
    EXPECT_EQ(ctx.FromMont(ctx.MulMont(ctx.ToMont(a), ctx.ToMont(b))),
              BigUint::MulMod(a, b, m));
  }
}

TEST(MontgomeryDifferentialTest, PowModMatchesSchoolbookOddModulus) {
  SecureRng rng(StringToBytes("mont-powmod"));
  int cases = 0;
  for (size_t bits : {size_t{32}, size_t{64}, size_t{128}, size_t{192}, size_t{256}}) {
    for (int rep = 0; rep < 60; ++rep) {
      BigUint m = RandomOddModulus(rng, bits);
      // Base intentionally drawn wider than m so the pre-reduction path is exercised.
      BigUint base = BigUint::RandomBits(rng, bits + 17);
      BigUint exp = BigUint::RandomBits(rng, 1 + rng.NextBelow(bits));
      ASSERT_EQ(BigUint::PowMod(base, exp, m),
                BigUint::PowModSchoolbook(base, exp, m))
          << "bits=" << bits << " m=" << m.ToHexString();
      ++cases;
    }
  }
  EXPECT_GE(cases, 300);
}

TEST(MontgomeryDifferentialTest, PowModExponentEdgeCases) {
  SecureRng rng(StringToBytes("mont-powmod-edge"));
  for (int rep = 0; rep < 50; ++rep) {
    BigUint m = RandomOddModulus(rng, 96);
    BigUint base = BigUint::RandomBelow(rng, m);
    EXPECT_EQ(BigUint::PowMod(base, BigUint(0), m), BigUint(1).Mod(m));
    EXPECT_EQ(BigUint::PowMod(base, BigUint(1), m), base);
    EXPECT_EQ(BigUint::PowMod(BigUint(0), BigUint(5), m), BigUint(0));
    // Exponent = modulus-sized all-significant-bits value.
    BigUint exp = m.Sub(BigUint(1));
    EXPECT_EQ(BigUint::PowMod(base, exp, m), BigUint::PowModSchoolbook(base, exp, m));
  }
  // Modulus 1: everything is 0.
  EXPECT_EQ(BigUint::PowModSchoolbook(BigUint(7), BigUint(3), BigUint(1)), BigUint(0));
}

// Regression for the PowMod dispatch: a non-odd modulus must take the schoolbook
// fallback (Montgomery needs gcd(m, 2^32) = 1) and still produce correct results.
TEST(MontgomeryDifferentialTest, PowModEvenModulusFallback) {
  SecureRng rng(StringToBytes("mont-powmod-even"));
  int cases = 0;
  for (size_t bits : {size_t{16}, size_t{48}, size_t{64}, size_t{128}}) {
    for (int rep = 0; rep < 60; ++rep) {
      BigUint m = BigUint::RandomBits(rng, bits);
      if (m.IsOdd()) {
        m = m.Add(BigUint(1));  // cannot overflow bits: all-ones is odd
      }
      ASSERT_FALSE(m.IsOdd());
      BigUint base = BigUint::RandomBits(rng, bits + 5);
      BigUint exp = BigUint::RandomBits(rng, 1 + rng.NextBelow(size_t{40}));
      ASSERT_EQ(BigUint::PowMod(base, exp, m),
                BigUint::PowModSchoolbook(base, exp, m))
          << "m=" << m.ToHexString();
      ++cases;
    }
  }
  EXPECT_GE(cases, 240);
  // Small fixed vectors, checked against hand-computable values.
  EXPECT_EQ(BigUint::PowMod(BigUint(3), BigUint(4), BigUint(10)).ToU64(), 1u);  // 81 mod 10
  EXPECT_EQ(BigUint::PowMod(BigUint(2), BigUint(10), BigUint(6)).ToU64(), 4u);  // 1024 mod 6
}

TEST(MontgomeryContextTest, RejectsEvenOrTrivialModulus) {
  EXPECT_THROW(MontgomeryContext(BigUint(10)), CheckFailure);
  EXPECT_THROW(MontgomeryContext(BigUint(0)), CheckFailure);
  EXPECT_THROW(MontgomeryContext(BigUint(1)), CheckFailure);
}

// CRT decryption must be plaintext-identical to the lambda/mu path for the same key —
// a legacy (v1 snapshot) key and an extended key must never disagree on a ciphertext.
TEST(PaillierCrtDifferentialTest, CrtDecryptMatchesLambdaMu) {
  SecureRng rng(StringToBytes("crt-diff"));
  for (size_t modulus_bits : {size_t{128}, size_t{256}}) {
    PaillierKeyPair key = GeneratePaillierKey(rng, modulus_bits);
    ASSERT_TRUE(key.priv.HasCrt());
    PaillierPrivateKey legacy;  // lambda/mu only: the pre-CRT decryption path
    legacy.lambda = key.priv.lambda;
    legacy.mu = key.priv.mu;
    ASSERT_FALSE(legacy.HasCrt());
    for (int i = 0; i < 100; ++i) {
      BigUint m = BigUint::RandomBelow(rng, key.pub.n);
      BigUint c = key.pub.Encrypt(m, rng);
      BigUint via_crt = key.priv.Decrypt(c, key.pub);
      BigUint via_lambda = legacy.Decrypt(c, key.pub);
      ASSERT_EQ(via_crt, via_lambda) << "modulus_bits=" << modulus_bits << " i=" << i;
      ASSERT_EQ(via_crt, m);
    }
  }
}

}  // namespace
}  // namespace deta::crypto
