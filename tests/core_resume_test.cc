// Crash/resume determinism: any single role (party, initiator aggregator, follower
// aggregator, key broker) crash-killed at any checkpointed round and revived from its
// snapshot must leave the run bitwise-identical to a fault-free run — same final
// parameters, same training-progress telemetry signature — at any thread count. Plus
// whole-job resume (checkpoint.resume) for both DeTA and the FFL baseline.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <map>

#include "common/telemetry.h"
#include "core/deta_job.h"
#include "fl/training_job.h"

namespace deta::core {
namespace {

constexpr int kParties = 3;
constexpr int kAggregators = 2;

fl::ModelFactory TinyMlpFactory() {
  return [] {
    Rng rng(1234);
    return nn::BuildMlp(14 * 14, {8}, 10, rng);
  };
}

data::Dataset SmallMnist(int n, uint64_t seed) {
  data::SyntheticConfig config;
  config.num_examples = n;
  config.classes = 10;
  config.channels = 1;
  config.image_size = 14;
  config.style = data::ImageStyle::kBlobs;
  config.seed = seed;
  config.prototype_seed = 777;
  return data::GenerateSynthetic(config);
}

fl::TrainConfig TrainCfg() {
  fl::TrainConfig tc;
  tc.batch_size = 16;
  tc.local_epochs = 1;
  tc.lr = 0.1f;
  return tc;
}

std::vector<std::unique_ptr<fl::Party>> MakeParties() {
  data::Dataset full = SmallMnist(32 * kParties, 5);
  Rng rng(9);
  auto shards = data::SplitIid(full, kParties, rng);
  std::vector<std::unique_ptr<fl::Party>> parties;
  for (int i = 0; i < kParties; ++i) {
    parties.push_back(std::make_unique<fl::Party>(
        "party" + std::to_string(i), shards[static_cast<size_t>(i)], TinyMlpFactory(),
        TrainCfg(), 100 + i));
  }
  return parties;
}

std::string UniqueDir(const std::string& tag) {
  static int counter = 0;
  // The pid keeps concurrently running ctest processes (each test is its own process,
  // each with its own counter starting at 0) out of each other's directories; the
  // remove_all guards against a recycled pid resurfacing a previous run's snapshots,
  // which a revived role must never load.
  std::string dir = ::testing::TempDir() + "resume_" + tag + "_" +
                    std::to_string(::getpid()) + "_" + std::to_string(counter++);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return dir;
}

fl::ExecutionOptions BaseOptions(int rounds, int threads, const std::string& dir) {
  fl::ExecutionOptions options;
  options.rounds = rounds;
  options.train = TrainCfg();
  options.threads = threads;
  // Generous deadlines: a crashed role is revived within ~50ms, but the suite must
  // stay robust on loaded or sanitizer-slowed CI machines, where the EC handshakes of
  // setup alone can exceed the default 30s readiness barrier on a single core.
  options.round_timeout_ms = 30000;
  options.setup_timeout_ms = 180000;
  options.retry.max_attempts = 10;
  options.retry.max_timeout_ms = 8000;
  options.checkpoint.dir = dir;
  return options;
}

DetaOptions Deployment() {
  DetaOptions d;
  d.num_aggregators = kAggregators;
  return d;
}

struct CleanRun {
  std::vector<float> final_params;
  std::string signature;
};

// Fault-free reference runs, cached per (threads, rounds): every crash scenario
// compares against the identical workload executed without interruption.
const CleanRun& CleanBaseline(int threads, int rounds) {
  static std::map<std::pair<int, int>, CleanRun> cache;
  auto key = std::make_pair(threads, rounds);
  auto it = cache.find(key);
  if (it == cache.end()) {
    fl::ExecutionOptions options = BaseOptions(rounds, threads, "");
    DetaJob job(options, Deployment(), MakeParties(), TinyMlpFactory(),
                SmallMnist(40, 6));
    fl::JobResult r = job.Run();
    EXPECT_TRUE(r.ok()) << r.error;
    EXPECT_FALSE(r.final_params.empty());
    it = cache.emplace(key,
                       CleanRun{r.final_params,
                                r.telemetry.DeterministicSignature("core.deta_job.")})
             .first;
  }
  return it->second;
}

fl::JobResult RunWithCrash(const std::string& role, int at_round, int threads,
                           int rounds) {
  fl::ExecutionOptions options =
      BaseOptions(rounds, threads, UniqueDir("crash_" + role));
  options.fault_plan.crashes.push_back({role, at_round});
  DetaJob job(options, Deployment(), MakeParties(), TinyMlpFactory(), SmallMnist(40, 6));
  return job.Run();
}

void ExpectMatchesClean(const fl::JobResult& r, int threads, int rounds) {
  ASSERT_TRUE(r.ok()) << r.error;
  const CleanRun& clean = CleanBaseline(threads, rounds);
  EXPECT_EQ(r.final_params, clean.final_params);
  EXPECT_EQ(r.telemetry.DeterministicSignature("core.deta_job."), clean.signature);
  EXPECT_EQ(r.telemetry.counters.at("persist.crash.injected"), 1u);
  EXPECT_GE(r.telemetry.counters.at("persist.role_revived"), 1u);
}

TEST(CrashResumeTest, PartyCrashAtEveryRoundIsLossless) {
  for (int round = 1; round <= 3; ++round) {
    SCOPED_TRACE("crash round " + std::to_string(round));
    ExpectMatchesClean(RunWithCrash("party1", round, 2, 3), 2, 3);
  }
}

TEST(CrashResumeTest, PartyCrashIsThreadCountInvariant) {
  for (int threads : {1, 2, 4}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    ExpectMatchesClean(RunWithCrash("party1", 2, threads, 3), threads, 3);
  }
  // The revived runs agree across thread counts too (transitively via the clean
  // baselines, which must themselves be identical).
  EXPECT_EQ(CleanBaseline(1, 3).final_params, CleanBaseline(2, 3).final_params);
  EXPECT_EQ(CleanBaseline(2, 3).final_params, CleanBaseline(4, 3).final_params);
}

TEST(CrashResumeTest, InitiatorCrashAtEveryRoundIsLossless) {
  for (int round = 1; round <= 3; ++round) {
    SCOPED_TRACE("crash round " + std::to_string(round));
    ExpectMatchesClean(RunWithCrash("aggregator0", round, 2, 3), 2, 3);
  }
}

TEST(CrashResumeTest, FollowerCrashMidRunIsLossless) {
  ExpectMatchesClean(RunWithCrash("aggregator1", 2, 2, 3), 2, 3);
}

TEST(CrashResumeTest, KeyBrokerCrashDuringEverySetupServeIsLossless) {
  // For the broker, |at_round| counts distinct parties served: crash before the 1st,
  // 2nd, and 3rd fetch — the stranded party retries the whole handshake against the
  // revived broker.
  for (int serve = 1; serve <= kParties; ++serve) {
    SCOPED_TRACE("crash before serve " + std::to_string(serve));
    ExpectMatchesClean(RunWithCrash(KeyBroker::kEndpointName, serve, 2, 3), 2, 3);
  }
}

TEST(CrashResumeTest, WholeJobResumeMatchesUninterruptedRun) {
  std::string dir = UniqueDir("modeb_deta");
  fl::JobResult first =
      DetaJob(BaseOptions(2, 2, dir), Deployment(), MakeParties(), TinyMlpFactory(),
              SmallMnist(40, 6))
          .Run();
  ASSERT_TRUE(first.ok()) << first.error;

  fl::ExecutionOptions resumed_options = BaseOptions(4, 2, dir);
  resumed_options.checkpoint.resume = true;
  fl::JobResult resumed = DetaJob(resumed_options, Deployment(), MakeParties(),
                                  TinyMlpFactory(), SmallMnist(40, 6))
                              .Run();
  ASSERT_TRUE(resumed.ok()) << resumed.error;
  EXPECT_EQ(resumed.resumed_from_round, 2);
  ASSERT_EQ(resumed.rounds.size(), 2u);  // only rounds 3 and 4 were executed
  EXPECT_EQ(resumed.rounds.front().round, 3);
  EXPECT_EQ(resumed.final_params, CleanBaseline(2, 4).final_params);
}

TEST(CrashResumeTest, FflWholeJobResumeMatchesUninterruptedRun) {
  std::string dir = UniqueDir("modeb_ffl");
  fl::JobResult first = fl::FflJob(BaseOptions(2, 2, dir), MakeParties(),
                                   TinyMlpFactory(), SmallMnist(40, 6))
                            .Run();
  ASSERT_TRUE(first.ok()) << first.error;

  fl::ExecutionOptions resumed_options = BaseOptions(4, 2, dir);
  resumed_options.checkpoint.resume = true;
  fl::JobResult resumed = fl::FflJob(resumed_options, MakeParties(), TinyMlpFactory(),
                                     SmallMnist(40, 6))
                              .Run();
  ASSERT_TRUE(resumed.ok()) << resumed.error;
  EXPECT_EQ(resumed.resumed_from_round, 2);
  ASSERT_EQ(resumed.rounds.size(), 2u);

  fl::JobResult clean = fl::FflJob(BaseOptions(4, 2, ""), MakeParties(),
                                   TinyMlpFactory(), SmallMnist(40, 6))
                            .Run();
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(resumed.final_params, clean.final_params);
}

TEST(CrashResumeTest, ResumeWithoutSnapshotIsATypedFailure) {
  fl::ExecutionOptions options = BaseOptions(2, 2, UniqueDir("nosnap"));
  options.checkpoint.resume = true;
  fl::JobResult r = DetaJob(options, Deployment(), MakeParties(), TinyMlpFactory(),
                            SmallMnist(40, 6))
                        .Run();
  EXPECT_EQ(r.status, fl::JobStatus::kSetupFailed);
  EXPECT_NE(r.error.find("no verifiable job snapshot"), std::string::npos) << r.error;
}

TEST(CrashResumeTest, ResumeUnderDifferentConfigIsATypedFailure) {
  std::string dir = UniqueDir("misconfig");
  fl::JobResult first =
      DetaJob(BaseOptions(1, 2, dir), Deployment(), MakeParties(), TinyMlpFactory(),
              SmallMnist(40, 6))
          .Run();
  ASSERT_TRUE(first.ok()) << first.error;

  fl::ExecutionOptions options = BaseOptions(2, 2, dir);
  options.checkpoint.resume = true;
  options.seed = 8;  // different job identity than the snapshot's writer
  fl::JobResult r = DetaJob(options, Deployment(), MakeParties(), TinyMlpFactory(),
                            SmallMnist(40, 6))
                        .Run();
  EXPECT_EQ(r.status, fl::JobStatus::kSetupFailed);
  EXPECT_NE(r.error.find("different configuration"), std::string::npos) << r.error;
}

}  // namespace
}  // namespace deta::core
