#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "tensor/tensor.h"

namespace deta {
namespace {

TEST(TensorTest, ConstructionAndShape) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_EQ(t.ShapeString(), "[2,3]");
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_EQ(t[i], 0.0f);
  }
}

TEST(TensorTest, ValueConstructorChecksSize) {
  EXPECT_NO_THROW(Tensor({2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor({2, 2}, {1, 2, 3}), CheckFailure);
}

TEST(TensorTest, FillAndFull) {
  Tensor t = Tensor::Full({3}, 2.5f);
  EXPECT_EQ(t[0], 2.5f);
  t.Fill(-1.0f);
  EXPECT_EQ(t[2], -1.0f);
  EXPECT_EQ(Tensor::Ones({2})[1], 1.0f);
  EXPECT_EQ(Tensor::FromScalar(9.0f).numel(), 1);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.Reshape({3, 2});
  EXPECT_EQ(r[4], 5.0f);
  EXPECT_THROW(t.Reshape({4, 2}), CheckFailure);
  EXPECT_EQ(t.Flatten().rank(), 1u);
}

TEST(TensorTest, InPlaceHelpers) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {10, 20, 30});
  a.AddScaled(b, 0.1f);
  EXPECT_FLOAT_EQ(a[2], 6.0f);
  a.Scale(2.0f);
  EXPECT_FLOAT_EQ(a[0], 4.0f);
}

TEST(TensorTest, Reductions) {
  Tensor t({4}, {1, -2, 3, -4});
  EXPECT_FLOAT_EQ(t.SumValue(), -2.0f);
  EXPECT_FLOAT_EQ(t.MeanValue(), -0.5f);
  EXPECT_FLOAT_EQ(t.MaxValue(), 3.0f);
  EXPECT_FLOAT_EQ(t.MinValue(), -4.0f);
  EXPECT_FLOAT_EQ(t.Norm(), std::sqrt(30.0f));
}

TEST(TensorTest, ElementwiseOps) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 2}, {5, 6, 7, 8});
  EXPECT_FLOAT_EQ(Add(a, b)[3], 12.0f);
  EXPECT_FLOAT_EQ(Sub(b, a)[0], 4.0f);
  EXPECT_FLOAT_EQ(Mul(a, b)[1], 12.0f);
  EXPECT_FLOAT_EQ(AddScalar(a, 1.0f)[0], 2.0f);
  EXPECT_FLOAT_EQ(MulScalar(a, -2.0f)[3], -8.0f);
  EXPECT_FLOAT_EQ(Neg(a)[2], -3.0f);
  EXPECT_THROW(Add(a, Tensor({3})), CheckFailure);
}

TEST(TensorTest, MatMulKnownValues) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Tensor::Shape{2, 2}));
  EXPECT_FLOAT_EQ(c[0], 58.0f);
  EXPECT_FLOAT_EQ(c[1], 64.0f);
  EXPECT_FLOAT_EQ(c[2], 139.0f);
  EXPECT_FLOAT_EQ(c[3], 154.0f);
  EXPECT_THROW(MatMul(a, a), CheckFailure);
}

TEST(TensorTest, TransposeInvolution) {
  Rng rng(1);
  Tensor a = Tensor::Gaussian({5, 7}, rng, 0, 1);
  Tensor tt = Transpose(Transpose(a));
  EXPECT_TRUE(AllClose(a, tt, 0.0f, 0.0f));
  EXPECT_FLOAT_EQ(Transpose(a)[static_cast<int64_t>(3) * 5 + 2],
                  a[static_cast<int64_t>(2) * 7 + 3]);
}

TEST(TensorTest, ActivationValues) {
  Tensor x({3}, {-1.0f, 0.0f, 1.0f});
  EXPECT_NEAR(Sigmoid(x)[1], 0.5f, 1e-6f);
  EXPECT_NEAR(TanhT(x)[2], std::tanh(1.0f), 1e-6f);
  EXPECT_FLOAT_EQ(Relu(x)[0], 0.0f);
  EXPECT_FLOAT_EQ(Relu(x)[2], 1.0f);
  EXPECT_FLOAT_EQ(Abs(x)[0], 1.0f);
  EXPECT_FLOAT_EQ(Sign(x)[0], -1.0f);
  EXPECT_FLOAT_EQ(Sign(x)[1], 0.0f);
  EXPECT_FLOAT_EQ(Clamp(x, -0.5f, 0.5f)[0], -0.5f);
}

TEST(TensorTest, RowColumnReductions) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor sr = SumRows(a);  // [3]
  EXPECT_FLOAT_EQ(sr[0], 5.0f);
  EXPECT_FLOAT_EQ(sr[2], 9.0f);
  Tensor rs = RowSum(a);  // [2]
  EXPECT_FLOAT_EQ(rs[0], 6.0f);
  EXPECT_FLOAT_EQ(rs[1], 15.0f);
  Tensor rm = RowMax(a);
  EXPECT_FLOAT_EQ(rm[1], 6.0f);
  EXPECT_FLOAT_EQ(SumAll(a)[0], 21.0f);
}

TEST(TensorTest, Broadcasts) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor v({3}, {10, 20, 30});
  Tensor av = AddRowVec(a, v);
  EXPECT_FLOAT_EQ(av[0], 11.0f);
  EXPECT_FLOAT_EQ(av[5], 36.0f);
  Tensor c({2}, {1, 2});
  Tensor sc = SubColVec(a, c);
  EXPECT_FLOAT_EQ(sc[0], 0.0f);
  EXPECT_FLOAT_EQ(sc[3], 2.0f);
  Tensor bc = BroadcastColToShape(c, 4);
  EXPECT_EQ(bc.shape(), (Tensor::Shape{2, 4}));
  EXPECT_FLOAT_EQ(bc[5], 2.0f);
}

TEST(TensorTest, Im2ColIdentityKernel) {
  // 1x1 kernel, stride 1: im2col is a reshape.
  Tensor img({1, 2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  ConvGeometry geom{1, 2, 2, 2, 1, 1, 1, 0};
  Tensor cols = Im2Col(img, geom);
  EXPECT_EQ(cols.shape(), (Tensor::Shape{4, 2}));
  // Row 0 = pixel (0,0) across channels.
  EXPECT_FLOAT_EQ(cols[0], 1.0f);
  EXPECT_FLOAT_EQ(cols[1], 5.0f);
}

TEST(TensorTest, Im2ColPaddingZeros) {
  Tensor img({1, 1, 2, 2}, {1, 2, 3, 4});
  ConvGeometry geom{1, 1, 2, 2, 3, 3, 1, 1};
  Tensor cols = Im2Col(img, geom);
  EXPECT_EQ(cols.dim(0), 4);  // 2x2 output
  EXPECT_EQ(cols.dim(1), 9);
  // First patch centered at (0,0): top-left 4 entries are padding.
  EXPECT_FLOAT_EQ(cols[0], 0.0f);
  EXPECT_FLOAT_EQ(cols[4], 1.0f);  // center = pixel (0,0)
}

// Col2Im is the adjoint of Im2Col: <Im2Col(x), y> == <x, Col2Im(y)> for all x, y.
TEST(TensorTest, Im2ColCol2ImAdjoint) {
  Rng rng(5);
  ConvGeometry geom{2, 3, 5, 5, 3, 3, 2, 1};
  Tensor x = Tensor::Gaussian({2, 3, 5, 5}, rng, 0, 1);
  Tensor cols = Im2Col(x, geom);
  Tensor y = Tensor::Gaussian(cols.shape(), rng, 0, 1);
  double lhs = 0.0, rhs = 0.0;
  Tensor xy = Col2Im(y, geom);
  for (int64_t i = 0; i < cols.numel(); ++i) {
    lhs += static_cast<double>(cols[i]) * y[i];
  }
  for (int64_t i = 0; i < x.numel(); ++i) {
    rhs += static_cast<double>(x[i]) * xy[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(TensorTest, MaxPoolSelectsMaxAndIndices) {
  Tensor img({1, 1, 4, 4}, {1, 2, 3, 4,
                            5, 6, 7, 8,
                            9, 10, 11, 12,
                            13, 14, 15, 16});
  PoolResult pr = MaxPool2d(img, 2, 2);
  EXPECT_EQ(pr.output.shape(), (Tensor::Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(pr.output[0], 6.0f);
  EXPECT_FLOAT_EQ(pr.output[3], 16.0f);
  EXPECT_EQ(pr.argmax[0], 5);
  EXPECT_EQ(pr.argmax[3], 15);
}

TEST(TensorTest, AvgPoolValues) {
  Tensor img({1, 1, 2, 2}, {1, 2, 3, 4});
  Tensor out = AvgPool2d(img, 2, 2);
  EXPECT_EQ(out.numel(), 1);
  EXPECT_FLOAT_EQ(out[0], 2.5f);
}

TEST(TensorTest, ScatterGatherInverse) {
  Tensor v({4}, {1, 2, 3, 4});
  std::vector<int64_t> idx = {3, 1, 0, 2};
  Tensor g = GatherByIndex(v, idx, {4});
  EXPECT_FLOAT_EQ(g[0], 4.0f);
  Tensor s = ScatterByIndex(g, idx, {4});
  EXPECT_TRUE(AllClose(s, v, 0.0f, 0.0f));
  // Scatter with repeated indices accumulates.
  Tensor two({2}, {1.0f, 1.0f});
  Tensor acc = ScatterByIndex(two, {0, 0}, {2});
  EXPECT_FLOAT_EQ(acc[0], 2.0f);
}

TEST(TensorTest, Metrics) {
  Tensor a({3}, {1, 0, 0});
  Tensor b({3}, {0, 1, 0});
  EXPECT_NEAR(MeanSquaredError(a, a), 0.0, 1e-12);
  EXPECT_NEAR(MeanSquaredError(a, b), 2.0 / 3.0, 1e-6);
  EXPECT_NEAR(CosineDistance(a, a), 0.0, 1e-6);
  EXPECT_NEAR(CosineDistance(a, b), 1.0, 1e-6);
  Tensor c({3}, {-1, 0, 0});
  EXPECT_NEAR(CosineDistance(a, c), 2.0, 1e-6);
  EXPECT_FLOAT_EQ(MaxAbsDiff(a, b), 1.0f);
}

TEST(TensorTest, RandomFillsSeeded) {
  Rng r1(3), r2(3);
  Tensor a = Tensor::Uniform({100}, r1, -1, 1);
  Tensor b = Tensor::Uniform({100}, r2, -1, 1);
  EXPECT_TRUE(AllClose(a, b, 0.0f, 0.0f));
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_GE(a[i], -1.0f);
    EXPECT_LT(a[i], 1.0f);
  }
}

}  // namespace
}  // namespace deta
