#include <gtest/gtest.h>

#include <map>
#include <set>

#include "data/dataset.h"

namespace deta::data {
namespace {

TEST(DatasetTest, GenerationIsDeterministic) {
  Dataset a = SynthMnist(50, 7);
  Dataset b = SynthMnist(50, 7);
  EXPECT_TRUE(AllClose(a.images, b.images, 0.0f, 0.0f));
  EXPECT_EQ(a.labels, b.labels);
}

TEST(DatasetTest, SamplingSeedChangesExamplesNotConcepts) {
  Dataset a = SynthMnist(50, 7);
  Dataset c = SynthMnist(50, 8);
  EXPECT_FALSE(AllClose(a.images, c.images, 0.0f, 0.0f));
  // Same class in both datasets must be near the same prototype: mean images of a class
  // across the two datasets correlate strongly.
  auto class_mean = [](const Dataset& ds, int cls) {
    Tensor mean({ds.Channels(), ds.Height(), ds.Width()});
    int count = 0;
    int64_t row = mean.numel();
    for (int i = 0; i < ds.Size(); ++i) {
      if (ds.labels[static_cast<size_t>(i)] != cls) {
        continue;
      }
      for (int64_t j = 0; j < row; ++j) {
        mean[j] += ds.images[static_cast<int64_t>(i) * row + j];
      }
      ++count;
    }
    if (count > 0) {
      mean.Scale(1.0f / static_cast<float>(count));
    }
    return mean;
  };
  Tensor m1 = class_mean(a, 0);
  Tensor m2 = class_mean(c, 0);
  EXPECT_LT(CosineDistance(m1, m2), 0.15);
}

TEST(DatasetTest, PresetShapes) {
  Dataset mnist = SynthMnist(4, 1);
  EXPECT_EQ(mnist.Channels(), 1);
  EXPECT_EQ(mnist.Height(), 28);
  EXPECT_EQ(mnist.classes, 10);
  Dataset cifar = SynthCifar10(4, 1);
  EXPECT_EQ(cifar.Channels(), 3);
  EXPECT_EQ(cifar.Height(), 32);
  Dataset cifar100 = SynthCifar100(4, 1);
  EXPECT_EQ(cifar100.classes, 100);
  Dataset imagenet = SynthImageNet(4, 1);
  EXPECT_EQ(imagenet.Height(), 64);
  Dataset rvl = SynthRvlCdip(4, 1);
  EXPECT_EQ(rvl.classes, 16);
  EXPECT_EQ(rvl.Channels(), 1);
}

TEST(DatasetTest, PixelRange) {
  Dataset ds = SynthCifar10(20, 3);
  EXPECT_GE(ds.images.MinValue(), 0.0f);
  EXPECT_LE(ds.images.MaxValue(), 1.0f);
}

TEST(DatasetTest, ExampleAndSubset) {
  Dataset ds = SynthMnist(10, 2);
  Tensor ex = ds.Example(3);
  EXPECT_EQ(ex.shape(), (Tensor::Shape{1, 1, 28, 28}));
  Dataset sub = ds.Subset({1, 3, 5});
  EXPECT_EQ(sub.Size(), 3);
  EXPECT_EQ(sub.labels[1], ds.labels[3]);
  EXPECT_TRUE(AllClose(sub.Example(1), ds.Example(3), 0.0f, 0.0f));
}

TEST(SplitTest, IidPartitionSizesAndDisjoint) {
  Dataset ds = SynthMnist(100, 5);
  Rng rng(1);
  auto shards = SplitIid(ds, 4, rng);
  ASSERT_EQ(shards.size(), 4u);
  for (const auto& shard : shards) {
    EXPECT_EQ(shard.Size(), 25);
    EXPECT_EQ(shard.classes, 10);
  }
}

TEST(SplitTest, IidLabelDistributionRoughlyBalanced) {
  Dataset ds = SynthMnist(2000, 5);
  Rng rng(2);
  auto shards = SplitIid(ds, 2, rng);
  // Each shard's class histogram should be near 10% per class.
  for (const auto& shard : shards) {
    std::map<int, int> hist;
    for (int label : shard.labels) {
      hist[label]++;
    }
    for (const auto& [cls, count] : hist) {
      EXPECT_GT(count, 50) << "class " << cls;
      EXPECT_LT(count, 150) << "class " << cls;
    }
  }
}

TEST(SplitTest, NonIidSkewProperty) {
  // Paper §7.3: two dominant classes hold 90% of each party's data.
  Dataset ds = SynthRvlCdip(1600, 5);
  Rng rng(3);
  auto shards = SplitNonIidSkew(ds, 8, /*dominant_classes=*/2, /*dominant_fraction=*/0.9f,
                                rng);
  ASSERT_EQ(shards.size(), 8u);
  for (size_t p = 0; p < shards.size(); ++p) {
    std::map<int, int> hist;
    for (int label : shards[p].labels) {
      hist[label]++;
    }
    // Top-2 classes should cover ~90% (tolerate supply exhaustion effects).
    std::vector<int> counts;
    for (const auto& [cls, count] : hist) {
      counts.push_back(count);
    }
    std::sort(counts.rbegin(), counts.rend());
    int top2 = counts[0] + (counts.size() > 1 ? counts[1] : 0);
    double fraction = static_cast<double>(top2) / shards[p].Size();
    EXPECT_GT(fraction, 0.7) << "party " << p;
  }
}

TEST(BatcherTest, CoversEpochExactlyOnce) {
  Dataset ds = SynthMnist(50, 9);
  Batcher batcher(ds, 16, 1);
  EXPECT_EQ(batcher.BatchesPerEpoch(), 4);  // 16+16+16+2
  std::multiset<float> seen;
  int total = 0;
  for (int b = 0; b < 4; ++b) {
    auto batch = batcher.Next();
    total += static_cast<int>(batch.labels.size());
    for (int i = 0; i < batch.images.dim(0); ++i) {
      seen.insert(batch.images[static_cast<int64_t>(i) * 28 * 28 + 400]);
    }
  }
  EXPECT_EQ(total, 50);
  EXPECT_EQ(seen.size(), 50u);
}

TEST(BatcherTest, ReshufflesAcrossEpochs) {
  Dataset ds = SynthMnist(64, 9);
  Batcher batcher(ds, 64, 2);
  auto epoch1 = batcher.Next();
  auto epoch2 = batcher.Next();
  EXPECT_NE(epoch1.labels, epoch2.labels);  // same multiset, different order (w.h.p.)
}

TEST(DatasetTest, GenericConfigRespectsFields) {
  SyntheticConfig config;
  config.num_examples = 12;
  config.classes = 5;
  config.channels = 2;
  config.image_size = 9;
  config.style = ImageStyle::kTextured;
  config.seed = 4;
  Dataset ds = GenerateSynthetic(config);
  EXPECT_EQ(ds.Size(), 12);
  EXPECT_EQ(ds.Channels(), 2);
  EXPECT_EQ(ds.Height(), 9);
  for (int label : ds.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 5);
  }
}

}  // namespace
}  // namespace deta::data
