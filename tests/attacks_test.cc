// Gradient-inversion attack machinery + the paper's headline security property (§6): the
// attacks reconstruct under full in-order access and fail under partitioning/shuffling.
#include <gtest/gtest.h>

#include <set>

#include "attacks/gradient_inversion.h"
#include "common/check.h"
#include "data/dataset.h"

namespace deta::attacks {
namespace {

struct Fixture {
  Fixture() {
    Rng rng(3);
    model = nn::BuildLeNet(1, 16, 10, rng);
    data::SyntheticConfig config;
    config.num_examples = 4;
    config.classes = 10;
    config.channels = 1;
    config.image_size = 16;
    config.style = data::ImageStyle::kBlobs;
    config.seed = 11;
    config.prototype_seed = 101;
    dataset = data::GenerateSynthetic(config);
  }
  std::unique_ptr<nn::Model> model;
  data::Dataset dataset;
};

Fixture& SharedFixture() {
  static Fixture fixture;
  return fixture;
}

TEST(AttackInfraTest, VictimGradientMatchesParameterCount) {
  auto& f = SharedFixture();
  auto grad = VictimGradient(*f.model, f.dataset.Example(0), f.dataset.labels[0], 10);
  EXPECT_EQ(static_cast<int64_t>(grad.size()), f.model->NumParameters());
  double norm = 0.0;
  for (float v : grad) {
    norm += static_cast<double>(v) * v;
  }
  EXPECT_GT(norm, 0.0);
}

TEST(AttackInfraTest, ObserveFullIsIdentity) {
  std::vector<float> grad = {1, 2, 3, 4, 5};
  AttackScenario scenario;
  Observation obs = Observe(grad, scenario);
  EXPECT_EQ(obs.observed_values, grad);
  EXPECT_EQ(obs.attack_indices, obs.true_indices);
  EXPECT_EQ(obs.true_indices.size(), 5u);
}

TEST(AttackInfraTest, ObservePartitionSizesAndOrder) {
  std::vector<float> grad(1000);
  for (size_t i = 0; i < grad.size(); ++i) {
    grad[i] = static_cast<float>(i);
  }
  AttackScenario scenario;
  scenario.partition_factor = 0.6;
  Observation obs = Observe(grad, scenario);
  EXPECT_EQ(obs.observed_values.size(), 600u);
  // True indices ascend (squeezed in sequence) and values match them.
  for (size_t i = 1; i < obs.true_indices.size(); ++i) {
    EXPECT_LT(obs.true_indices[i - 1], obs.true_indices[i]);
  }
  for (size_t i = 0; i < obs.observed_values.size(); ++i) {
    EXPECT_FLOAT_EQ(obs.observed_values[i], static_cast<float>(obs.true_indices[i]));
  }
  // Without the oracle, attack indices are the sequential stretch, not the true ones.
  EXPECT_NE(obs.attack_indices, obs.true_indices);
}

TEST(AttackInfraTest, ObserveOraclePositions) {
  std::vector<float> grad(100, 1.0f);
  AttackScenario scenario;
  scenario.partition_factor = 0.5;
  scenario.oracle_positions = true;
  Observation obs = Observe(grad, scenario);
  EXPECT_EQ(obs.attack_indices, obs.true_indices);
}

TEST(AttackInfraTest, ObserveShufflePermutesValues) {
  std::vector<float> grad(500);
  for (size_t i = 0; i < grad.size(); ++i) {
    grad[i] = static_cast<float>(i);
  }
  AttackScenario plain, shuffled;
  shuffled.shuffle = true;
  Observation a = Observe(grad, plain);
  Observation b = Observe(grad, shuffled);
  EXPECT_NE(a.observed_values, b.observed_values);
  std::multiset<float> ma(a.observed_values.begin(), a.observed_values.end());
  std::multiset<float> mb(b.observed_values.begin(), b.observed_values.end());
  EXPECT_EQ(ma, mb);  // same values, different order
}

TEST(AttackInfraTest, ObserveDeterministicPerSeed) {
  std::vector<float> grad(100, 2.0f);
  AttackScenario s1, s2, s3;
  s1.partition_factor = s2.partition_factor = s3.partition_factor = 0.4;
  s3.transform_seed = 1234;
  EXPECT_EQ(Observe(grad, s1).true_indices, Observe(grad, s2).true_indices);
  EXPECT_NE(Observe(grad, s1).true_indices, Observe(grad, s3).true_indices);
}

TEST(AttackInfraTest, BucketBoundaries) {
  EXPECT_EQ(MseBucket(0.0), 0);
  EXPECT_EQ(MseBucket(9.9e-4), 0);
  EXPECT_EQ(MseBucket(1e-3), 1);
  EXPECT_EQ(MseBucket(0.999), 1);
  EXPECT_EQ(MseBucket(1.0), 2);
  EXPECT_EQ(MseBucket(999.0), 2);
  EXPECT_EQ(MseBucket(1e3), 3);
  EXPECT_EQ(CosineBucket(0.005), 0);
  EXPECT_EQ(CosineBucket(0.1), 1);
  EXPECT_EQ(CosineBucket(0.3), 2);
  EXPECT_EQ(CosineBucket(0.5), 3);
  EXPECT_EQ(CosineBucket(0.7), 4);
  EXPECT_EQ(CosineBucket(0.95), 5);
}

TEST(AttackInfraTest, AttackNames) {
  EXPECT_EQ(AttackName(AttackKind::kDlg), "DLG");
  EXPECT_EQ(AttackName(AttackKind::kIdlg), "iDLG");
  EXPECT_EQ(AttackName(AttackKind::kIg), "IG");
}

// --- the paper's Table 1/2/3 property, one example per cell class ---

TEST(DlgAttackTest, FullAccessReconstructs) {
  auto& f = SharedFixture();
  AttackConfig config;
  config.kind = AttackKind::kDlg;
  config.iterations = 60;
  AttackScenario scenario;  // Full, no shuffle
  AttackResult r = RunAttack(*f.model, f.dataset.Example(0), f.dataset.labels[0], 10,
                             config, scenario);
  EXPECT_LT(r.mse, 1e-3) << "DLG with full in-order gradients must reconstruct";
}

TEST(DlgAttackTest, PartitioningDefeatsReconstruction) {
  auto& f = SharedFixture();
  AttackConfig config;
  config.kind = AttackKind::kDlg;
  config.iterations = 40;
  AttackScenario scenario;
  scenario.partition_factor = 0.6;
  AttackResult r = RunAttack(*f.model, f.dataset.Example(0), f.dataset.labels[0], 10,
                             config, scenario);
  EXPECT_GT(r.mse, 1.0) << "partitioned gradients must not reconstruct";
}

TEST(DlgAttackTest, ShufflingDefeatsReconstruction) {
  auto& f = SharedFixture();
  AttackConfig config;
  config.kind = AttackKind::kDlg;
  config.iterations = 40;
  AttackScenario scenario;
  scenario.shuffle = true;  // Full + shuffle
  AttackResult r = RunAttack(*f.model, f.dataset.Example(0), f.dataset.labels[0], 10,
                             config, scenario);
  EXPECT_GT(r.mse, 1.0);
}

TEST(IdlgAttackTest, LabelInferenceExactUnderFullAccess) {
  auto& f = SharedFixture();
  AttackConfig config;
  config.kind = AttackKind::kIdlg;
  config.iterations = 40;
  AttackScenario scenario;
  for (int i = 0; i < 3; ++i) {
    AttackResult r = RunAttack(*f.model, f.dataset.Example(i), f.dataset.labels[i], 10,
                               config, scenario);
    EXPECT_EQ(r.inferred_label, f.dataset.labels[i]) << "example " << i;
    EXPECT_LT(r.mse, 1e-2) << "example " << i;
  }
}

TEST(IgAttackTest, FullAccessConverges) {
  auto& f = SharedFixture();
  AttackConfig config;
  config.kind = AttackKind::kIg;
  config.iterations = 100;
  AttackScenario scenario;
  AttackResult r = RunAttack(*f.model, f.dataset.Example(1), f.dataset.labels[1], 10,
                             config, scenario);
  EXPECT_LT(r.cosine_distance, 0.01) << "IG cost must converge with full access";
}

TEST(IgAttackTest, ShufflePreventsConvergence) {
  auto& f = SharedFixture();
  AttackConfig config;
  config.kind = AttackKind::kIg;
  config.iterations = 60;
  AttackScenario scenario;
  scenario.shuffle = true;
  AttackResult r = RunAttack(*f.model, f.dataset.Example(1), f.dataset.labels[1], 10,
                             config, scenario);
  EXPECT_GT(r.cosine_distance, 0.8) << "shuffled gradients pin the cost near 1";
  // IG clamps its search space, so reconstructions stay in [0,1].
  EXPECT_GE(r.reconstruction.MinValue(), 0.0f);
  EXPECT_LE(r.reconstruction.MaxValue(), 1.0f);
}

TEST(BatchAttackTest, DlgReconstructsSmallBatch) {
  auto& f = SharedFixture();
  Tensor batch = f.dataset.Subset({0, 1}).images;
  std::vector<int> labels = {f.dataset.labels[0], f.dataset.labels[1]};
  AttackConfig config;
  config.kind = AttackKind::kDlg;
  config.iterations = 100;
  AttackScenario scenario;  // Full access
  AttackResult r = RunBatchAttack(*f.model, batch, labels, 10, config, scenario);
  EXPECT_EQ(r.reconstruction.dim(0), 2);
  EXPECT_LT(r.mse, 1e-2) << "batch-of-2 DLG with known labels must reconstruct";
}

TEST(BatchAttackTest, ShuffleDefeatsBatchAttack) {
  auto& f = SharedFixture();
  Tensor batch = f.dataset.Subset({0, 1}).images;
  std::vector<int> labels = {f.dataset.labels[0], f.dataset.labels[1]};
  AttackConfig config;
  config.kind = AttackKind::kDlg;
  config.iterations = 40;
  AttackScenario scenario;
  scenario.shuffle = true;
  AttackResult r = RunBatchAttack(*f.model, batch, labels, 10, config, scenario);
  EXPECT_GT(r.mse, 0.5);
}

TEST(BatchAttackTest, IdlgBatchRejected) {
  auto& f = SharedFixture();
  Tensor batch = f.dataset.Subset({0, 1}).images;
  AttackConfig config;
  config.kind = AttackKind::kIdlg;
  AttackScenario scenario;
  EXPECT_THROW(RunBatchAttack(*f.model, batch, {0, 1}, 10, config, scenario), CheckFailure);
}

TEST(OracleAblationTest, PositionOracleRescuesPartitionOnlyAttack) {
  // If the mapper leaks (position oracle), partition-only DLG succeeds again — the reason
  // the mapper must remain in participant-controlled domains, and why shuffling is the
  // needed second layer.
  auto& f = SharedFixture();
  AttackConfig config;
  config.kind = AttackKind::kDlg;
  config.iterations = 60;
  AttackScenario scenario;
  scenario.partition_factor = 0.6;
  scenario.oracle_positions = true;
  AttackResult with_oracle = RunAttack(*f.model, f.dataset.Example(0), f.dataset.labels[0],
                                       10, config, scenario);
  EXPECT_LT(with_oracle.mse, 1e-2);

  // Even with the oracle, adding shuffle defeats the attack.
  scenario.shuffle = true;
  AttackResult shuffled = RunAttack(*f.model, f.dataset.Example(0), f.dataset.labels[0], 10,
                                    config, scenario);
  EXPECT_GT(shuffled.mse, 1.0);
}

}  // namespace
}  // namespace deta::attacks
