// Telemetry substrate tests: concurrent correctness of the sharded counters and
// histograms, span nesting, the DETA_LOG lazy-evaluation guard, and — the load-bearing
// contract — snapshot determinism of a full DeTA job across thread counts.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/telemetry.h"
#include "core/deta_job.h"
#include "fl/training_job.h"

namespace deta::telemetry {
namespace {

uint64_t CounterOr0(const TelemetrySnapshot& s, const std::string& name) {
  auto it = s.counters.find(name);
  return it == s.counters.end() ? 0 : it->second;
}

TEST(TelemetryCounterTest, ConcurrentAddsFoldExactly) {
  const TelemetrySnapshot before = Snapshot();
  constexpr int kThreads = 4;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      Counter& c = MetricsRegistry::Global().GetCounter("test.concurrent.counter");
      for (int i = 0; i < kIncrements; ++i) {
        c.Increment();
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  const TelemetrySnapshot delta = Delta(before, Snapshot());
  EXPECT_EQ(CounterOr0(delta, "test.concurrent.counter"),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(TelemetryHistogramTest, ConcurrentRecordsFoldExactly) {
  const TelemetrySnapshot before = Snapshot();
  constexpr int kThreads = 4;
  constexpr int kRecords = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      Histogram& h =
          MetricsRegistry::Global().GetHistogram("test.concurrent.hist", Unit::kBytes);
      for (int i = 0; i < kRecords; ++i) {
        h.Record(static_cast<double>(1 << (t % 4)));  // values 1, 2, 4, 8
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  const TelemetrySnapshot delta = Delta(before, Snapshot());
  auto it = delta.histograms.find("test.concurrent.hist");
  ASSERT_NE(it, delta.histograms.end());
  EXPECT_EQ(it->second.count, static_cast<uint64_t>(kThreads) * kRecords);
  EXPECT_DOUBLE_EQ(it->second.sum, (1.0 + 2.0 + 4.0 + 8.0) * kRecords);
  uint64_t bucket_total = 0;
  for (const auto& [bucket, count] : it->second.buckets) {
    bucket_total += count;
  }
  EXPECT_EQ(bucket_total, it->second.count);
}

TEST(TelemetryHistogramTest, BucketBoundariesArePureFunctions) {
  // Bucket b holds [2^(b-31), 2^(b-30)); 1.0 = 2^0 lands in bucket 31.
  EXPECT_EQ(BucketFor(1.0), 31);
  EXPECT_DOUBLE_EQ(BucketLowerBound(31), 1.0);
  EXPECT_EQ(BucketFor(2.0), 32);
  EXPECT_EQ(BucketFor(1.5), 31);
  EXPECT_EQ(BucketFor(0.5), 30);
  // Underflow/overflow clamp to the edge buckets.
  EXPECT_EQ(BucketFor(0.0), 0);
  EXPECT_EQ(BucketFor(-7.0), 0);
  EXPECT_EQ(BucketFor(1e300), kHistogramBuckets - 1);
}

TEST(TelemetrySpanTest, NestingTracksPerThreadStack) {
  EXPECT_EQ(Span::Depth(), 0);
  const TelemetrySnapshot before = Snapshot();
  {
    Span outer("test.span.outer");
    EXPECT_EQ(Span::Depth(), 1);
    EXPECT_EQ(Span::Current(), "test.span.outer");
    {
      Span inner("test.span.inner");
      EXPECT_EQ(Span::Depth(), 2);
      EXPECT_EQ(Span::Current(), "test.span.inner");
      inner.End();
      EXPECT_EQ(Span::Depth(), 1);
      inner.End();  // idempotent
      EXPECT_EQ(Span::Depth(), 1);
    }
    EXPECT_EQ(Span::Current(), "test.span.outer");
    // A sibling thread's spans never see this thread's stack.
    std::thread([] {
      EXPECT_EQ(Span::Depth(), 0);
      Span t("test.span.thread");
      EXPECT_EQ(Span::Depth(), 1);
    }).join();
    EXPECT_EQ(Span::Depth(), 1);
  }
  EXPECT_EQ(Span::Depth(), 0);
  const TelemetrySnapshot delta = Delta(before, Snapshot());
  auto it = delta.histograms.find("span.test.span.outer.wall_s");
  ASSERT_NE(it, delta.histograms.end());
  EXPECT_EQ(it->second.count, 1u);
  EXPECT_EQ(delta.histograms.at("span.test.span.inner.wall_s").count, 1u);
}

TEST(TelemetrySpanTest, SimClockDeltaIsRecorded) {
  SimClock clock;
  const TelemetrySnapshot before = Snapshot();
  {
    Span span("test.span.sim", &clock);
    clock.Advance(2.5);
  }
  const TelemetrySnapshot delta = Delta(before, Snapshot());
  auto it = delta.histograms.find("span.test.span.sim.sim_s");
  ASSERT_NE(it, delta.histograms.end());
  EXPECT_EQ(it->second.count, 1u);
  EXPECT_DOUBLE_EQ(it->second.sum, 2.5);
}

TEST(TelemetryJsonTest, ExportContainsRegisteredMetrics) {
  MetricsRegistry::Global().GetCounter("test.json.counter").Add(3);
  MetricsRegistry::Global().GetGauge("test.json.gauge").Set(1.5);
  MetricsRegistry::Global().GetHistogram("test.json.hist", Unit::kSeconds).Record(0.25);
  std::string json = ToJson(Snapshot());
  EXPECT_NE(json.find("\"version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.counter\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json.gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"unit\":\"seconds\""), std::string::npos);
}

TEST(TelemetryFlagTest, ConsumeTelemetryFlagStripsArgv) {
  char prog[] = "prog";
  char flag[] = "--telemetry-out=/tmp/x.json";
  char other[] = "--benchmark_filter=foo";
  char* argv[] = {prog, flag, other, nullptr};
  int argc = 3;
  EXPECT_EQ(ConsumeTelemetryFlag(&argc, argv), "/tmp/x.json");
  EXPECT_EQ(argc, 2);
  EXPECT_STREQ(argv[1], "--benchmark_filter=foo");

  char* argv2[] = {prog, other, nullptr};
  int argc2 = 2;
  EXPECT_EQ(ConsumeTelemetryFlag(&argc2, argv2), "");
  EXPECT_EQ(argc2, 2);
}

TEST(TelemetryLogTest, DisabledLevelSkipsStreamEvaluation) {
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto observe = [&evaluations] {
    ++evaluations;
    return "x";
  };
  LOG_DEBUG << observe();
  LOG_WARNING << observe();
  EXPECT_EQ(evaluations, 0) << "stream body ran below the log threshold";
  LOG_ERROR << observe();
  EXPECT_EQ(evaluations, 1);
  SetLogLevel(saved);
}

TEST(TelemetryLogTest, WarningsAndErrorsFeedCounters) {
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kWarning);
  const TelemetrySnapshot before = Snapshot();
  LOG_WARNING << "telemetry test warning (expected)";
  LOG_ERROR << "telemetry test error (expected)";
  LOG_INFO << "suppressed, must not count";
  const TelemetrySnapshot delta = Delta(before, Snapshot());
  EXPECT_EQ(CounterOr0(delta, "common.log.warnings"), 1u);
  EXPECT_EQ(CounterOr0(delta, "common.log.errors"), 1u);
  SetLogLevel(saved);
}

// --- full-job determinism ---------------------------------------------------

fl::ModelFactory TinyMlpFactory() {
  return [] {
    Rng rng(1234);
    return nn::BuildMlp(14 * 14, {8}, 10, rng);
  };
}

data::Dataset SmallMnist(int n, uint64_t seed) {
  data::SyntheticConfig config;
  config.num_examples = n;
  config.classes = 10;
  config.channels = 1;
  config.image_size = 14;
  config.style = data::ImageStyle::kBlobs;
  config.seed = seed;
  config.prototype_seed = 777;
  return data::GenerateSynthetic(config);
}

std::vector<std::unique_ptr<fl::Party>> MakeParties(int count, const fl::TrainConfig& tc) {
  data::Dataset full = SmallMnist(32 * count, 5);
  Rng rng(9);
  auto shards = data::SplitIid(full, count, rng);
  std::vector<std::unique_ptr<fl::Party>> parties;
  for (int i = 0; i < count; ++i) {
    parties.push_back(std::make_unique<fl::Party>("party" + std::to_string(i),
                                                  shards[static_cast<size_t>(i)],
                                                  TinyMlpFactory(), tc, 100 + i));
  }
  return parties;
}

fl::ExecutionOptions JobOptions(int threads) {
  fl::ExecutionOptions options;
  options.rounds = 2;
  options.train.batch_size = 16;
  options.train.local_epochs = 1;
  options.train.lr = 0.1f;
  options.threads = threads;
  // Generous timeouts: on a slow (sanitized, 1-core) CI machine a retransmission would
  // perturb the attempt counters the determinism check compares, and TSan's ~10x
  // slowdown can push the EC handshakes past the default 30 s readiness barrier.
  options.retry.initial_timeout_ms = 8000;
  options.retry.max_timeout_ms = 16000;
  options.round_timeout_ms = 120000;
  options.setup_timeout_ms = 240000;
  return options;
}

fl::JobResult RunDetaJob(int threads) {
  fl::ExecutionOptions options = JobOptions(threads);
  core::DetaOptions deta_options;
  deta_options.num_aggregators = 2;
  core::DetaJob job(options, deta_options, MakeParties(2, options.train),
                    TinyMlpFactory(), SmallMnist(40, 6));
  return job.Run();
}

TEST(TelemetryDetaJobTest, FaultFreeRoundMetricsMatchSchedule) {
  constexpr int kParties = 2;
  constexpr int kAggregators = 2;
  constexpr int kRounds = 2;
  fl::JobResult result = RunDetaJob(/*threads=*/1);
  ASSERT_TRUE(result.ok()) << result.error;
  const TelemetrySnapshot& t = result.telemetry;

  EXPECT_EQ(CounterOr0(t, "core.deta_job.rounds"), static_cast<uint64_t>(kRounds));
  EXPECT_EQ(CounterOr0(t, "core.deta_party.rounds"),
            static_cast<uint64_t>(kRounds * kParties));
  EXPECT_EQ(CounterOr0(t, "core.deta_agg.rounds_aggregated"),
            static_cast<uint64_t>(kRounds * kAggregators));
  EXPECT_EQ(CounterOr0(t, "core.deta_agg.fragments"),
            static_cast<uint64_t>(kRounds * kAggregators * kParties));
  // Each party verifies + registers with every aggregator plus the key broker.
  EXPECT_EQ(CounterOr0(t, "core.auth.verify_ok"),
            static_cast<uint64_t>(kParties * (kAggregators + 1)));
  EXPECT_EQ(CounterOr0(t, "core.auth.register_ok"),
            static_cast<uint64_t>(kParties * (kAggregators + 1)));
  EXPECT_EQ(CounterOr0(t, "core.kb.fetch_ok"), static_cast<uint64_t>(kParties));

  // The fault-free contract the CI bench gate enforces.
  EXPECT_EQ(CounterOr0(t, "net.bus.dropped"), 0u);
  EXPECT_EQ(CounterOr0(t, "net.bus.fault_dropped"), 0u);
  EXPECT_EQ(CounterOr0(t, "net.bus.duplicated"), 0u);
  EXPECT_EQ(CounterOr0(t, "net.channel.open_rejected"), 0u);
  EXPECT_EQ(CounterOr0(t, "net.retry.exhausted"), 0u);

  // Per-round spans recorded on both clocks.
  ASSERT_TRUE(t.histograms.count("span.core.deta_job.round.wall_s"));
  EXPECT_EQ(t.histograms.at("span.core.deta_job.round.wall_s").count,
            static_cast<uint64_t>(kRounds));
  ASSERT_TRUE(t.histograms.count("span.core.deta_job.round.sim_s"));
  EXPECT_GT(t.sim_seconds, 0.0);
}

TEST(TelemetryDetaJobTest, SnapshotsAreIdenticalAcrossThreadCounts) {
  std::vector<std::string> signatures;
  std::vector<std::vector<float>> params;
  for (int threads : {1, 2, 4}) {
    fl::JobResult result = RunDetaJob(threads);
    ASSERT_TRUE(result.ok()) << "threads=" << threads << ": " << result.error;
    signatures.push_back(result.telemetry.DeterministicSignature());
    params.push_back(result.final_params);
  }
  EXPECT_EQ(signatures[0], signatures[1]) << "threads=1 vs threads=2";
  EXPECT_EQ(signatures[0], signatures[2]) << "threads=1 vs threads=4";
  // The numeric contract the telemetry one piggybacks on.
  EXPECT_EQ(params[0], params[1]);
  EXPECT_EQ(params[0], params[2]);
}

TEST(TelemetryFflJobTest, ResultCarriesPerRunDelta) {
  fl::ExecutionOptions options = JobOptions(/*threads=*/1);
  fl::FflJob job(options, MakeParties(2, options.train), TinyMlpFactory(),
                 SmallMnist(40, 6));
  fl::JobResult result = job.Run();
  EXPECT_EQ(CounterOr0(result.telemetry, "fl.ffl.rounds"), 2u);
  EXPECT_EQ(CounterOr0(result.telemetry, "fl.aggregation.calls"), 2u);
  EXPECT_TRUE(result.telemetry.histograms.count("span.fl.ffl.round.wall_s"));
}

}  // namespace
}  // namespace deta::telemetry
