// The deterministic parallel layer (common/parallel.h): static chunking must cover the
// range exactly once, results must be bitwise-identical across thread counts, and
// exceptions must propagate out of parallel regions.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"

namespace deta::parallel {
namespace {

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    ScopedThreads scoped(threads);
    const int64_t n = 10007;  // prime: last chunk is short
    std::vector<std::atomic<int>> hits(static_cast<size_t>(n));
    ParallelFor(0, n, 64, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        hits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1)
          << "index " << i << " at threads=" << threads;
    }
  }
}

TEST(ParallelForTest, ChunkBoundariesFollowGrain) {
  // Boundaries must be begin + k*grain regardless of thread count.
  for (int threads : {1, 8}) {
    ScopedThreads scoped(threads);
    std::mutex m;
    std::vector<std::pair<int64_t, int64_t>> chunks;
    ParallelFor(5, 103, 10, [&](int64_t lo, int64_t hi) {
      std::lock_guard<std::mutex> lock(m);
      chunks.emplace_back(lo, hi);
    });
    std::sort(chunks.begin(), chunks.end());
    ASSERT_EQ(chunks.size(), 10u);
    for (size_t c = 0; c < chunks.size(); ++c) {
      EXPECT_EQ(chunks[c].first, 5 + static_cast<int64_t>(c) * 10);
      EXPECT_EQ(chunks[c].second, std::min<int64_t>(103, chunks[c].first + 10));
    }
  }
}

TEST(ParallelForTest, EmptyAndSingleChunkRanges) {
  ScopedThreads scoped(8);
  int calls = 0;
  ParallelFor(3, 3, 16, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(0, 5, 16, [&](int64_t lo, int64_t hi) {
    ++calls;
    EXPECT_EQ(lo, 0);
    EXPECT_EQ(hi, 5);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, ExceptionPropagates) {
  for (int threads : {1, 2, 8}) {
    ScopedThreads scoped(threads);
    EXPECT_THROW(
        ParallelFor(0, 1000, 10,
                    [&](int64_t lo, int64_t) {
                      if (lo >= 500) {
                        throw std::runtime_error("chunk failed");
                      }
                    }),
        std::runtime_error)
        << "threads=" << threads;
    // The pool must stay usable after a throwing region.
    std::atomic<int64_t> sum{0};
    ParallelFor(0, 100, 10, [&](int64_t lo, int64_t hi) {
      sum.fetch_add(hi - lo, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 100);
  }
}

TEST(ParallelForTest, NestedRegionsFallBackToSerial) {
  ScopedThreads scoped(8);
  std::vector<std::atomic<int>> hits(64 * 64);
  ParallelFor(0, 64, 4, [&](int64_t olo, int64_t ohi) {
    for (int64_t o = olo; o < ohi; ++o) {
      ParallelFor(0, 64, 8, [&](int64_t ilo, int64_t ihi) {
        for (int64_t i = ilo; i < ihi; ++i) {
          hits[static_cast<size_t>(o * 64 + i)].fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
  });
  for (const auto& h : hits) {
    ASSERT_EQ(h.load(), 1);
  }
}

TEST(ParallelReduceTest, BitwiseIdenticalAcrossThreadCounts) {
  // Sum of a float series whose result depends on association order: identical chunking
  // plus the fixed left-fold must make every thread count agree bit for bit.
  Rng rng(123);
  const int64_t n = 1 << 17;
  std::vector<float> values(static_cast<size_t>(n));
  for (auto& v : values) {
    v = rng.NextGaussian() * 1e-3f;
  }
  auto run = [&] {
    return ParallelReduce(
        0, n, 1 << 12, 0.0,
        [&](int64_t lo, int64_t hi) {
          double partial = 0.0;
          for (int64_t i = lo; i < hi; ++i) {
            partial += static_cast<double>(values[static_cast<size_t>(i)]);
          }
          return partial;
        },
        [](double a, double b) { return a + b; });
  };
  double reference;
  {
    ScopedThreads scoped(1);
    reference = run();
  }
  for (int threads : {2, 8}) {
    ScopedThreads scoped(threads);
    double out = run();
    EXPECT_EQ(out, reference) << "threads=" << threads;  // bitwise, not approximate
  }
}

TEST(ParallelReduceTest, EmptyRangeReturnsIdentity) {
  ScopedThreads scoped(4);
  double out = ParallelReduce(
      7, 7, 8, 42.0, [](int64_t, int64_t) { return 1.0; },
      [](double a, double b) { return a + b; });
  EXPECT_EQ(out, 42.0);
}

TEST(DefaultThreadsTest, ZeroMeansHardwareConcurrency) {
  ScopedThreads scoped(0);
  EXPECT_GE(DefaultThreads(), 1);
}

TEST(ScopedThreadsTest, RestoresPreviousValue) {
  SetDefaultThreads(3);
  {
    ScopedThreads scoped(7);
    EXPECT_EQ(DefaultThreads(), 7);
  }
  EXPECT_EQ(DefaultThreads(), 3);
  SetDefaultThreads(0);
}

}  // namespace
}  // namespace deta::parallel
