#include <gtest/gtest.h>

#include <thread>

#include "core/key_broker.h"
#include "net/codec.h"
#include "net/message_bus.h"

namespace deta::core {
namespace {

TransformMaterial TestMaterial() {
  TransformMaterial m;
  m.permutation_key = Secret<Bytes>(GeneratePermutationKey(128, StringToBytes("kb-test")));
  m.mapper_seed = Secret<Bytes>(StringToBytes("mapper-seed-0123456789"));
  m.total_params = 1000;
  m.num_aggregators = 3;
  m.enable_partition = true;
  m.enable_shuffle = true;
  return m;
}

TEST(TransformMaterialTest, SerializationRoundTrip) {
  TransformMaterial m = TestMaterial();
  m.proportions = {0.5, 0.25, 0.25};
  TransformMaterial back = TransformMaterial::Deserialize(m.Serialize());
  EXPECT_EQ(back.permutation_key, m.permutation_key);
  EXPECT_EQ(back.mapper_seed, m.mapper_seed);
  EXPECT_EQ(back.total_params, m.total_params);
  EXPECT_EQ(back.proportions, m.proportions);
  EXPECT_EQ(back.num_aggregators, m.num_aggregators);
  EXPECT_EQ(back.enable_partition, m.enable_partition);
  EXPECT_EQ(back.enable_shuffle, m.enable_shuffle);
}

TEST(TransformMaterialTest, PaillierKeyRoundTripsOnTheWire) {
  TransformMaterial m = TestMaterial();
  m.paillier_key = Secret<Bytes>(StringToBytes("opaque serialized key blob"));
  TransformMaterial back = TransformMaterial::Deserialize(m.Serialize());
  EXPECT_EQ(back.paillier_key, m.paillier_key);
}

TEST(TransformMaterialTest, DeserializesPreExtensionWireFormat) {
  // Material serialized before the paillier_key field existed (v1 sealed snapshots,
  // old brokers) ends right after the shuffle flag; it must still parse, with the key
  // simply absent.
  TransformMaterial m = TestMaterial();
  net::Writer w;
  w.WriteBytes(m.permutation_key.ExposeForSeal());
  w.WriteBytes(m.mapper_seed.ExposeForSeal());
  w.WriteI64(m.total_params);
  w.WriteU64(0);
  w.WriteU32(static_cast<uint32_t>(m.num_aggregators));
  w.WriteU32(1);
  w.WriteU32(1);
  TransformMaterial back = TransformMaterial::Deserialize(w.Take());
  EXPECT_EQ(back.permutation_key, m.permutation_key);
  EXPECT_EQ(back.num_aggregators, m.num_aggregators);
  EXPECT_TRUE(back.paillier_key.ExposeForCrypto().empty());
}

TEST(TransformMaterialTest, BuildTransformIsDeterministic) {
  TransformMaterial m = TestMaterial();
  auto t1 = m.BuildTransform();
  auto t2 = m.BuildTransform();
  // Same material -> identical partition assignment and permutations.
  EXPECT_EQ(t1->mapper().PartitionIndices(0), t2->mapper().PartitionIndices(0));
  std::vector<float> update(1000);
  for (size_t i = 0; i < update.size(); ++i) {
    update[i] = static_cast<float>(i);
  }
  EXPECT_EQ(t1->Apply(update, 3), t2->Apply(update, 3));
}

TEST(KeyBrokerTest, ServesMaterialToVerifiedParties) {
  net::MessageBus bus;
  crypto::SecureRng setup_rng(StringToBytes("kb"));
  crypto::EcKeyPair identity = crypto::GenerateEcKey(setup_rng);
  TransformMaterial material = TestMaterial();
  KeyBroker broker(material, identity, /*expected_parties=*/2, bus,
                   crypto::SecureRng(setup_rng.NextBytes(32)));
  broker.Start();

  auto fetch = [&](const std::string& name) -> std::optional<TransformMaterial> {
    auto endpoint = bus.CreateEndpoint(name);
    crypto::SecureRng rng(StringToBytes("party-" + name));
    return FetchTransformMaterial(*endpoint, identity.public_key, rng);
  };
  std::optional<TransformMaterial> m1, m2;
  std::thread t1([&] { m1 = fetch("party0"); });
  std::thread t2([&] { m2 = fetch("party1"); });
  t1.join();
  t2.join();
  broker.Join();

  ASSERT_TRUE(m1.has_value());
  ASSERT_TRUE(m2.has_value());
  EXPECT_EQ(m1->permutation_key, material.permutation_key);
  EXPECT_EQ(m2->mapper_seed, material.mapper_seed);
  // Both parties derive the identical transform.
  std::vector<float> update(1000, 1.0f);
  EXPECT_EQ(m1->BuildTransform()->Apply(update, 1), m2->BuildTransform()->Apply(update, 1));
}

TEST(KeyBrokerTest, RejectsImpostorBroker) {
  // A party configured with the genuine broker key refuses material from an impostor
  // broker signing with a different identity.
  net::MessageBus bus;
  crypto::SecureRng setup_rng(StringToBytes("kb2"));
  crypto::EcKeyPair genuine = crypto::GenerateEcKey(setup_rng);
  crypto::EcKeyPair impostor = crypto::GenerateEcKey(setup_rng);
  KeyBroker broker(TestMaterial(), impostor, /*expected_parties=*/1, bus,
                   crypto::SecureRng(setup_rng.NextBytes(32)));
  broker.Start();

  auto endpoint = bus.CreateEndpoint("party0");
  crypto::SecureRng rng(StringToBytes("p"));
  // Expect verification failure against the genuine public key.
  EXPECT_FALSE(FetchTransformMaterial(*endpoint, genuine.public_key, rng).has_value());
  // Unblock the broker thread (it still waits for one successful serve).
  crypto::SecureRng rng2(StringToBytes("p2"));
  auto endpoint2 = bus.CreateEndpoint("party1");
  EXPECT_TRUE(FetchTransformMaterial(*endpoint2, impostor.public_key, rng2).has_value());
  broker.Join();
}

}  // namespace
}  // namespace deta::core
