#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "net/codec.h"
#include "net/message_bus.h"
#include "net/secure_channel.h"

namespace deta::net {
namespace {

TEST(CodecTest, AllTypesRoundTrip) {
  Writer w;
  w.WriteU32(0xdeadbeef);
  w.WriteU64(1ULL << 60);
  w.WriteI64(-12345);
  w.WriteFloat(3.25f);
  w.WriteDouble(-2.5e-300);
  w.WriteBytes({9, 8, 7});
  w.WriteString("deta");
  w.WriteFloatVector({1.0f, -2.0f, 0.5f});
  w.WriteU32Vector({1, 2, 3});
  Bytes wire = w.Take();

  Reader r(wire);
  EXPECT_EQ(r.ReadU32(), 0xdeadbeefu);
  EXPECT_EQ(r.ReadU64(), 1ULL << 60);
  EXPECT_EQ(r.ReadI64(), -12345);
  EXPECT_FLOAT_EQ(r.ReadFloat(), 3.25f);
  EXPECT_DOUBLE_EQ(r.ReadDouble(), -2.5e-300);
  EXPECT_EQ(r.ReadBytes(), (Bytes{9, 8, 7}));
  EXPECT_EQ(r.ReadString(), "deta");
  EXPECT_EQ(r.ReadFloatVector(), (std::vector<float>{1.0f, -2.0f, 0.5f}));
  EXPECT_EQ(r.ReadU32Vector(), (std::vector<uint32_t>{1, 2, 3}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(CodecTest, TruncatedReadThrows) {
  Writer w;
  w.WriteBytes({1, 2, 3, 4, 5});
  Bytes wire = w.Take();
  wire.resize(wire.size() - 2);
  Reader r(wire);
  EXPECT_THROW(r.ReadBytes(), CheckFailure);
}

TEST(CodecTest, MaliciousLengthPrefixRejected) {
  Bytes wire;
  AppendU64(wire, 1ULL << 40);  // claims a 1 TiB payload
  Reader r(wire);
  EXPECT_THROW(r.ReadBytes(), CheckFailure);
  Reader r2(wire);
  EXPECT_THROW(r2.ReadFloatVector(), CheckFailure);
}

TEST(MessageBusTest, RoutesByName) {
  MessageBus bus;
  auto a = bus.CreateEndpoint("a");
  auto b = bus.CreateEndpoint("b");
  a->Send("b", "greet", StringToBytes("hello"));
  auto m = b->Receive();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->from, "a");
  EXPECT_EQ(m->type, "greet");
  EXPECT_EQ(BytesToString(m->payload), "hello");
}

TEST(MessageBusTest, DuplicateNameRejected) {
  MessageBus bus;
  auto a = bus.CreateEndpoint("dup");
  EXPECT_THROW(bus.CreateEndpoint("dup"), CheckFailure);
}

TEST(MessageBusTest, NameReusableAfterDestruction) {
  MessageBus bus;
  {
    auto a = bus.CreateEndpoint("tmp");
  }
  EXPECT_NO_THROW(bus.CreateEndpoint("tmp"));
}

TEST(MessageBusTest, UnknownTargetDropped) {
  MessageBus bus;
  auto a = bus.CreateEndpoint("a");
  a->Send("ghost", "x", {});  // no crash; message dropped (with a warning)
  EXPECT_EQ(bus.MessageCount(), 1u);
}

TEST(MessageBusTest, ByteAccounting) {
  MessageBus bus;
  auto a = bus.CreateEndpoint("a");
  auto b = bus.CreateEndpoint("b");
  a->Send("b", "t", Bytes(100));
  a->Send("b", "t", Bytes(50));
  b->Send("a", "t", Bytes(10));
  EXPECT_EQ(bus.MessageCount(), 3u);
  EXPECT_GT(bus.EdgeBytes("a", "b"), bus.EdgeBytes("b", "a"));
  EXPECT_GE(bus.TotalBytes(), 160u);
  bus.ResetStats();
  EXPECT_EQ(bus.TotalBytes(), 0u);
}

TEST(MessageBusTest, ReceiveTypeStashesOthers) {
  MessageBus bus;
  auto a = bus.CreateEndpoint("a");
  auto b = bus.CreateEndpoint("b");
  a->Send("b", "first", {});
  a->Send("b", "second", {});
  a->Send("b", "first", {});
  auto m = b->ReceiveType("second");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->type, "second");
  // Stashed messages delivered afterwards, order preserved.
  EXPECT_EQ(b->Receive()->type, "first");
  EXPECT_EQ(b->Receive()->type, "first");
}

TEST(MessageBusTest, ReceiveForTimesOut) {
  MessageBus bus;
  auto a = bus.CreateEndpoint("a");
  auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(a->ReceiveFor(50).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - start, std::chrono::milliseconds(45));
}

TEST(MessageBusTest, ReceiveTypeForTimesOutButKeepsStash) {
  MessageBus bus;
  auto a = bus.CreateEndpoint("a");
  auto b = bus.CreateEndpoint("b");
  b->Send("a", "other", {});
  // Waiting for a type that never comes: times out, but the unrelated message is stashed
  // and still deliverable afterwards.
  EXPECT_FALSE(a->ReceiveTypeFor("wanted", 50).has_value());
  auto m = a->Receive();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->type, "other");
}

TEST(MessageBusTest, ReceiveTypeForReturnsEarlyWhenAvailable) {
  MessageBus bus;
  auto a = bus.CreateEndpoint("a");
  auto b = bus.CreateEndpoint("b");
  b->Send("a", "wanted", StringToBytes("x"));
  auto start = std::chrono::steady_clock::now();
  auto m = a->ReceiveTypeFor("wanted", 5000);
  EXPECT_LT(std::chrono::steady_clock::now() - start, std::chrono::milliseconds(1000));
  ASSERT_TRUE(m.has_value());
}

TEST(MessageBusTest, CloseUnblocksReceiver) {
  MessageBus bus;
  auto a = bus.CreateEndpoint("a");
  std::thread closer([&] { a->Close(); });
  auto m = a->Receive();
  closer.join();
  EXPECT_FALSE(m.has_value());
}

TEST(MessageBusTest, CrossThreadPingPong) {
  MessageBus bus;
  auto ping = bus.CreateEndpoint("ping");
  auto pong = bus.CreateEndpoint("pong");
  const int kRounds = 200;
  std::thread responder([&] {
    for (int i = 0; i < kRounds; ++i) {
      auto m = pong->Receive();
      ASSERT_TRUE(m.has_value());
      pong->Send(m->from, "pong", m->payload);
    }
  });
  for (int i = 0; i < kRounds; ++i) {
    Bytes payload;
    AppendU32(payload, static_cast<uint32_t>(i));
    ping->Send("pong", "ping", payload);
    auto m = ping->Receive();
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(ReadU32(m->payload, 0), static_cast<uint32_t>(i));
  }
  responder.join();
}

TEST(MessageBusTest, FanInFromManySenders) {
  MessageBus bus;
  auto sink = bus.CreateEndpoint("sink");
  const int kSenders = 8, kEach = 50;
  std::vector<std::thread> threads;
  std::vector<std::unique_ptr<Endpoint>> endpoints;
  for (int s = 0; s < kSenders; ++s) {
    endpoints.push_back(bus.CreateEndpoint("s" + std::to_string(s)));
  }
  for (int s = 0; s < kSenders; ++s) {
    threads.emplace_back([&, s] {
      for (int i = 0; i < kEach; ++i) {
        endpoints[static_cast<size_t>(s)]->Send("sink", "data", Bytes(4));
      }
    });
  }
  int received = 0;
  for (int i = 0; i < kSenders * kEach; ++i) {
    if (sink->Receive().has_value()) {
      ++received;
    }
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(received, kSenders * kEach);
}

}  // namespace
}  // namespace deta::net
