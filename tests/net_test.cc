#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/telemetry.h"
#include "net/codec.h"
#include "net/fault.h"
#include "net/message_bus.h"
#include "net/retry.h"
#include "net/secure_channel.h"

namespace deta::net {
namespace {

TEST(CodecTest, AllTypesRoundTrip) {
  Writer w;
  w.WriteU32(0xdeadbeef);
  w.WriteU64(1ULL << 60);
  w.WriteI64(-12345);
  w.WriteFloat(3.25f);
  w.WriteDouble(-2.5e-300);
  w.WriteBytes({9, 8, 7});
  w.WriteString("deta");
  w.WriteFloatVector({1.0f, -2.0f, 0.5f});
  w.WriteU32Vector({1, 2, 3});
  Bytes wire = w.Take();

  Reader r(wire);
  EXPECT_EQ(r.ReadU32(), 0xdeadbeefu);
  EXPECT_EQ(r.ReadU64(), 1ULL << 60);
  EXPECT_EQ(r.ReadI64(), -12345);
  EXPECT_FLOAT_EQ(r.ReadFloat(), 3.25f);
  EXPECT_DOUBLE_EQ(r.ReadDouble(), -2.5e-300);
  EXPECT_EQ(r.ReadBytes(), (Bytes{9, 8, 7}));
  EXPECT_EQ(r.ReadString(), "deta");
  EXPECT_EQ(r.ReadFloatVector(), (std::vector<float>{1.0f, -2.0f, 0.5f}));
  EXPECT_EQ(r.ReadU32Vector(), (std::vector<uint32_t>{1, 2, 3}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(CodecTest, TruncatedReadThrows) {
  Writer w;
  w.WriteBytes({1, 2, 3, 4, 5});
  Bytes wire = w.Take();
  wire.resize(wire.size() - 2);
  Reader r(wire);
  EXPECT_THROW(r.ReadBytes(), CheckFailure);
}

TEST(CodecTest, MaliciousLengthPrefixRejected) {
  Bytes wire;
  AppendU64(wire, 1ULL << 40);  // claims a 1 TiB payload
  Reader r(wire);
  EXPECT_THROW(r.ReadBytes(), CheckFailure);
  Reader r2(wire);
  EXPECT_THROW(r2.ReadFloatVector(), CheckFailure);
}

TEST(MessageBusTest, RoutesByName) {
  MessageBus bus;
  auto a = bus.CreateEndpoint("a");
  auto b = bus.CreateEndpoint("b");
  a->Send("b", "greet", StringToBytes("hello"));
  auto m = b->Receive();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->from, "a");
  EXPECT_EQ(m->type, "greet");
  EXPECT_EQ(BytesToString(m->payload), "hello");
}

TEST(MessageBusTest, DuplicateNameRejected) {
  MessageBus bus;
  auto a = bus.CreateEndpoint("dup");
  EXPECT_THROW(bus.CreateEndpoint("dup"), CheckFailure);
}

TEST(MessageBusTest, NameReusableAfterDestruction) {
  MessageBus bus;
  {
    auto a = bus.CreateEndpoint("tmp");
  }
  EXPECT_NO_THROW(bus.CreateEndpoint("tmp"));
}

TEST(MessageBusTest, UnknownTargetDropped) {
  MessageBus bus;
  auto a = bus.CreateEndpoint("a");
  // Undelivered traffic must not count as delivered: it would inflate the byte counters
  // that feed the simulated latency model.
  EXPECT_FALSE(a->Send("ghost", "x", {}));
  EXPECT_EQ(bus.MessageCount(), 0u);
  EXPECT_EQ(bus.TotalBytes(), 0u);
  EXPECT_EQ(bus.DroppedCount(), 1u);
  EXPECT_EQ(bus.DroppedCount("x"), 1u);
}

TEST(MessageBusTest, SendToClosedEndpointFails) {
  MessageBus bus;
  auto a = bus.CreateEndpoint("a");
  auto b = bus.CreateEndpoint("b");
  b->Close();
  EXPECT_FALSE(a->Send("b", "x", {}));
  EXPECT_EQ(bus.DroppedCount(), 1u);
  EXPECT_EQ(bus.MessageCount(), 0u);
}

TEST(MessageBusTest, ClosedFlagDisambiguatesTimeout) {
  MessageBus bus;
  auto a = bus.CreateEndpoint("a");
  EXPECT_FALSE(a->ReceiveFor(10).has_value());
  EXPECT_FALSE(a->closed());  // genuine timeout
  a->Close();
  EXPECT_FALSE(a->ReceiveFor(10).has_value());
  EXPECT_TRUE(a->closed());  // closed, not slow
}

TEST(MessageBusTest, ByteAccounting) {
  MessageBus bus;
  auto a = bus.CreateEndpoint("a");
  auto b = bus.CreateEndpoint("b");
  a->Send("b", "t", Bytes(100));
  a->Send("b", "t", Bytes(50));
  b->Send("a", "t", Bytes(10));
  EXPECT_EQ(bus.MessageCount(), 3u);
  EXPECT_GT(bus.EdgeBytes("a", "b"), bus.EdgeBytes("b", "a"));
  EXPECT_GE(bus.TotalBytes(), 160u);
  bus.ResetStats();
  EXPECT_EQ(bus.TotalBytes(), 0u);
}

TEST(MessageBusTest, ReceiveTypeStashesOthers) {
  MessageBus bus;
  auto a = bus.CreateEndpoint("a");
  auto b = bus.CreateEndpoint("b");
  a->Send("b", "first", {});
  a->Send("b", "second", {});
  a->Send("b", "first", {});
  auto m = b->ReceiveType("second");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->type, "second");
  // Stashed messages delivered afterwards, order preserved.
  EXPECT_EQ(b->Receive()->type, "first");
  EXPECT_EQ(b->Receive()->type, "first");
}

TEST(MessageBusTest, ReceiveForTimesOut) {
  MessageBus bus;
  auto a = bus.CreateEndpoint("a");
  auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(a->ReceiveFor(50).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - start, std::chrono::milliseconds(45));
}

TEST(MessageBusTest, ReceiveTypeForTimesOutButKeepsStash) {
  MessageBus bus;
  auto a = bus.CreateEndpoint("a");
  auto b = bus.CreateEndpoint("b");
  b->Send("a", "other", {});
  // Waiting for a type that never comes: times out, but the unrelated message is stashed
  // and still deliverable afterwards.
  EXPECT_FALSE(a->ReceiveTypeFor("wanted", 50).has_value());
  auto m = a->Receive();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->type, "other");
}

TEST(MessageBusTest, ReceiveTypeForReturnsEarlyWhenAvailable) {
  MessageBus bus;
  auto a = bus.CreateEndpoint("a");
  auto b = bus.CreateEndpoint("b");
  b->Send("a", "wanted", StringToBytes("x"));
  auto start = std::chrono::steady_clock::now();
  auto m = a->ReceiveTypeFor("wanted", 5000);
  EXPECT_LT(std::chrono::steady_clock::now() - start, std::chrono::milliseconds(1000));
  ASSERT_TRUE(m.has_value());
}

TEST(MessageBusTest, CloseUnblocksReceiver) {
  MessageBus bus;
  auto a = bus.CreateEndpoint("a");
  std::thread closer([&] { a->Close(); });
  auto m = a->Receive();
  closer.join();
  EXPECT_FALSE(m.has_value());
}

TEST(MessageBusTest, CrossThreadPingPong) {
  MessageBus bus;
  auto ping = bus.CreateEndpoint("ping");
  auto pong = bus.CreateEndpoint("pong");
  const int kRounds = 200;
  std::thread responder([&] {
    for (int i = 0; i < kRounds; ++i) {
      auto m = pong->Receive();
      ASSERT_TRUE(m.has_value());
      pong->Send(m->from, "pong", m->payload);
    }
  });
  for (int i = 0; i < kRounds; ++i) {
    Bytes payload;
    AppendU32(payload, static_cast<uint32_t>(i));
    ping->Send("pong", "ping", payload);
    auto m = ping->Receive();
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(ReadU32(m->payload, 0), static_cast<uint32_t>(i));
  }
  responder.join();
}

TEST(MessageBusTest, FanInFromManySenders) {
  MessageBus bus;
  auto sink = bus.CreateEndpoint("sink");
  const int kSenders = 8, kEach = 50;
  std::vector<std::thread> threads;
  std::vector<std::unique_ptr<Endpoint>> endpoints;
  for (int s = 0; s < kSenders; ++s) {
    endpoints.push_back(bus.CreateEndpoint("s" + std::to_string(s)));
  }
  for (int s = 0; s < kSenders; ++s) {
    threads.emplace_back([&, s] {
      for (int i = 0; i < kEach; ++i) {
        endpoints[static_cast<size_t>(s)]->Send("sink", "data", Bytes(4));
      }
    });
  }
  int received = 0;
  for (int i = 0; i < kSenders * kEach; ++i) {
    if (sink->Receive().has_value()) {
      ++received;
    }
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(received, kSenders * kEach);
}

// --- fault injection ---

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  FaultPlan plan;
  plan.seed = 42;
  plan.default_rates.drop = 0.3;
  plan.default_rates.duplicate = 0.2;
  plan.default_rates.reorder = 0.15;
  FaultInjector x(plan);
  FaultInjector y(plan);
  for (int i = 0; i < 300; ++i) {
    const std::string to = i % 2 ? "b" : "c";
    FaultDecision dx = x.Decide("a", to, "t");
    FaultDecision dy = y.Decide("a", to, "t");
    EXPECT_EQ(dx.drop, dy.drop) << i;
    EXPECT_EQ(dx.duplicate, dy.duplicate) << i;
    EXPECT_EQ(dx.reorder, dy.reorder) << i;
  }
}

TEST(FaultInjectorTest, DifferentSeedDifferentSchedule) {
  FaultPlan plan;
  plan.seed = 42;
  plan.default_rates.drop = 0.5;
  FaultPlan other = plan;
  other.seed = 43;
  FaultInjector x(plan);
  FaultInjector y(other);
  int disagreements = 0;
  for (int i = 0; i < 200; ++i) {
    if (x.Decide("a", "b", "t").drop != y.Decide("a", "b", "t").drop) {
      ++disagreements;
    }
  }
  EXPECT_GT(disagreements, 0);
}

TEST(FaultInjectorTest, ImmuneEndpointsNeverFaulted) {
  FaultPlan plan;
  plan.seed = 1;
  plan.default_rates.drop = 1.0;
  plan.immune.insert("observer");
  FaultInjector inj(plan);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(inj.Decide("a", "observer", "t").drop);
    EXPECT_FALSE(inj.Decide("observer", "a", "t").drop);
    EXPECT_TRUE(inj.Decide("a", "b", "t").drop);
  }
}

TEST(FaultInjectorTest, OverrideMatchesPrefixAndWildcards) {
  FaultPlan plan;
  plan.seed = 9;
  EdgeFault only_uploads;
  only_uploads.from = "p0";
  only_uploads.type_prefix = "round.upload";
  only_uploads.rates.drop = 1.0;
  plan.overrides.push_back(only_uploads);
  FaultInjector inj(plan);
  EXPECT_TRUE(inj.Decide("p0", "agg0", "round.upload").drop);
  EXPECT_TRUE(inj.Decide("p0", "agg1", "round.upload").drop);  // empty |to| = any target
  EXPECT_FALSE(inj.Decide("p0", "agg0", "round.done").drop);
  EXPECT_FALSE(inj.Decide("p1", "agg0", "round.upload").drop);
}

TEST(FaultInjectorTest, MaxFaultsBudgetExhausts) {
  FaultPlan plan;
  plan.seed = 2;
  EdgeFault burst;
  burst.type_prefix = "t";
  burst.rates.drop = 1.0;
  burst.max_faults = 2;
  plan.overrides.push_back(burst);
  FaultInjector inj(plan);
  EXPECT_TRUE(inj.Decide("a", "b", "t").drop);
  EXPECT_TRUE(inj.Decide("a", "b", "t").drop);
  // Budget spent: the override stops matching and the defaults (no faults) apply.
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(inj.Decide("a", "b", "t").drop) << i;
  }
}

TEST(MessageBusTest, FaultDropIsCountedNotDelivered) {
  MessageBus bus;
  FaultPlan plan;
  plan.seed = 7;
  plan.default_rates.drop = 1.0;
  bus.SetFaultPlan(plan);
  auto a = bus.CreateEndpoint("a");
  auto b = bus.CreateEndpoint("b");
  // A fault-dropped message looks like network loss to the sender: Send succeeds.
  EXPECT_TRUE(a->Send("b", "lost", {}));
  EXPECT_FALSE(b->ReceiveFor(30).has_value());
  EXPECT_EQ(bus.MessageCount(), 0u);
  EXPECT_EQ(bus.DroppedCount(), 1u);
  EXPECT_EQ(bus.DroppedCountWithPrefix("lo"), 1u);
}

TEST(MessageBusTest, BusDuplicatesAreSuppressedByReceiver) {
  MessageBus bus;
  FaultPlan plan;
  plan.seed = 11;
  plan.default_rates.duplicate = 1.0;
  bus.SetFaultPlan(plan);
  auto a = bus.CreateEndpoint("a");
  auto b = bus.CreateEndpoint("b");
  a->Send("b", "once", StringToBytes("payload"));
  auto first = b->ReceiveFor(1000);
  ASSERT_TRUE(first.has_value());
  // The duplicate carries the same sequence tag and must be invisible to the receiver.
  EXPECT_FALSE(b->ReceiveFor(50).has_value());
  // Distinct sends (fresh tags) are NOT deduplicated.
  a->Send("b", "twice", {});
  a->Send("b", "twice", {});
  EXPECT_TRUE(b->ReceiveFor(1000).has_value());
  EXPECT_TRUE(b->ReceiveFor(1000).has_value());
}

TEST(MessageBusTest, ReorderSwapsAdjacentMessages) {
  MessageBus bus;
  FaultPlan plan;
  plan.seed = 3;
  plan.default_rates.reorder = 1.0;
  bus.SetFaultPlan(plan);
  auto a = bus.CreateEndpoint("a");
  auto b = bus.CreateEndpoint("b");
  a->Send("b", "m1", {});
  a->Send("b", "m2", {});
  a->Send("b", "m3", {});
  a->Send("b", "m4", {});
  // One-slot holdback: each held message is released right after its successor.
  EXPECT_EQ(b->Receive()->type, "m2");
  EXPECT_EQ(b->Receive()->type, "m1");
  EXPECT_EQ(b->Receive()->type, "m4");
  EXPECT_EQ(b->Receive()->type, "m3");
}

TEST(MessageBusTest, ReceiveTypeSelectsAcrossReorderedDelivery) {
  MessageBus bus;
  FaultPlan plan;
  plan.seed = 5;
  plan.default_rates.reorder = 1.0;
  bus.SetFaultPlan(plan);
  auto a = bus.CreateEndpoint("a");
  auto b = bus.CreateEndpoint("b");
  a->Send("b", "wanted", StringToBytes("w"));
  a->Send("b", "other", StringToBytes("o"));
  // Delivered other-then-wanted; selective receive still finds the wanted message and
  // stashes the rest in delivery order.
  auto m = b->ReceiveTypeFor("wanted", 1000);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(BytesToString(m->payload), "w");
  auto rest = b->Receive();
  ASSERT_TRUE(rest.has_value());
  EXPECT_EQ(rest->type, "other");
}

TEST(MessageBusTest, SameSeedSameDropSchedule) {
  auto run = [](uint64_t seed) {
    MessageBus bus;
    FaultPlan plan;
    plan.seed = seed;
    plan.default_rates.drop = 0.4;
    bus.SetFaultPlan(plan);
    auto a = bus.CreateEndpoint("a");
    auto b = bus.CreateEndpoint("b");
    std::vector<bool> delivered;
    for (int i = 0; i < 100; ++i) {
      a->Send("b", "t", {});
      delivered.push_back(b->ReceiveFor(5).has_value());
    }
    return delivered;
  };
  EXPECT_EQ(run(21), run(21));
  EXPECT_NE(run(21), run(22));
}

// --- bounded request/reply ---

TEST(RetryTest, RequestReplyRecoversFromDrops) {
  MessageBus bus;
  FaultPlan plan;
  plan.seed = 13;
  plan.default_rates.drop = 0.5;  // both directions lossy
  bus.SetFaultPlan(plan);
  auto client = bus.CreateEndpoint("client");
  auto server = bus.CreateEndpoint("server");
  std::thread responder([&] {
    // Idempotent echo server: answers every request that survives the bus.
    for (;;) {
      auto m = server->Receive();
      if (!m.has_value()) {
        return;
      }
      server->Send(m->from, "rep", m->payload);
    }
  });
  RetryPolicy policy;
  policy.initial_timeout_ms = 50;
  policy.max_attempts = 10;
  for (int i = 0; i < 8; ++i) {
    auto reply = RequestReply(*client, "server", "req", StringToBytes("ping"), "rep",
                              policy);
    ASSERT_TRUE(reply.has_value()) << i;
    EXPECT_EQ(BytesToString(reply->payload), "ping");
  }
  EXPECT_GT(bus.DroppedCount(), 0u);  // the retries actually did something
  server->Close();
  responder.join();
}

TEST(RetryTest, RequestReplyMatchesSender) {
  MessageBus bus;
  auto client = bus.CreateEndpoint("client");
  auto right = bus.CreateEndpoint("right");
  auto wrong = bus.CreateEndpoint("wrong");
  // A stray reply of the right type from the wrong peer must not satisfy the call.
  wrong->Send("client", "rep", StringToBytes("impostor"));
  std::thread responder([&] {
    auto m = right->Receive();
    ASSERT_TRUE(m.has_value());
    right->Send(m->from, "rep", StringToBytes("genuine"));
  });
  auto reply = RequestReply(*client, "right", "req", {}, "rep");
  responder.join();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->from, "right");
  EXPECT_EQ(BytesToString(reply->payload), "genuine");
}

TEST(RetryTest, RequestReplyFailsFastOnDeadPeer) {
  MessageBus bus;
  auto client = bus.CreateEndpoint("client");
  RetryPolicy policy;
  policy.initial_timeout_ms = 20;
  policy.max_attempts = 3;
  auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(RequestReply(*client, "ghost", "req", {}, "rep", policy).has_value());
  // Send fails immediately for a nonexistent endpoint — no pointless backoff.
  EXPECT_LT(std::chrono::steady_clock::now() - start, std::chrono::milliseconds(500));
}

TEST(RetryTest, BackoffIsCappedAndBounded) {
  RetryPolicy policy;
  policy.initial_timeout_ms = 100;
  policy.backoff = 2.0;
  policy.max_timeout_ms = 400;
  policy.max_attempts = 5;
  EXPECT_EQ(policy.TimeoutForAttempt(0), 100);
  EXPECT_EQ(policy.TimeoutForAttempt(1), 200);
  EXPECT_EQ(policy.TimeoutForAttempt(2), 400);
  EXPECT_EQ(policy.TimeoutForAttempt(3), 400);  // capped
  EXPECT_EQ(policy.TotalBudgetMs(), 100 + 200 + 400 + 400 + 400);
}

// --- secure channel hardening ---

TEST(SecureChannelTest, ReplayRejected) {
  crypto::SecureRng rng(StringToBytes("replay"));
  Bytes master = StringToBytes("master");
  SecureChannel sender(master, "chan:p:a", ChannelRole::kInitiator);
  SecureChannel receiver(master, "chan:p:a", ChannelRole::kResponder);
  Bytes frame = sender.Seal(StringToBytes("msg"), rng);
  EXPECT_TRUE(receiver.Open(frame).has_value());
  // Byte-identical replay: the sequence number is no longer fresh.
  EXPECT_FALSE(receiver.Open(frame).has_value());
}

TEST(SecureChannelTest, ReflectionRejected) {
  crypto::SecureRng rng(StringToBytes("reflect"));
  Bytes master = StringToBytes("master");
  SecureChannel initiator(master, "chan:p:a", ChannelRole::kInitiator);
  SecureChannel responder(master, "chan:p:a", ChannelRole::kResponder);
  // A frame bounced back at its own sender fails: the direction label in the
  // associated data does not match.
  Bytes frame = initiator.Seal(StringToBytes("msg"), rng);
  EXPECT_FALSE(initiator.Open(frame).has_value());
  Bytes back = responder.Seal(StringToBytes("msg"), rng);
  EXPECT_FALSE(responder.Open(back).has_value());
  // The legitimate directions still work.
  EXPECT_TRUE(responder.Open(frame).has_value());
  EXPECT_TRUE(initiator.Open(back).has_value());
}

TEST(SecureChannelTest, NonMonotonicSequenceRejected) {
  crypto::SecureRng rng(StringToBytes("mono"));
  Bytes master = StringToBytes("master");
  SecureChannel sender(master, "chan:p:a", ChannelRole::kInitiator);
  SecureChannel receiver(master, "chan:p:a", ChannelRole::kResponder);
  Bytes f1 = sender.Seal(StringToBytes("one"), rng);
  Bytes f2 = sender.Seal(StringToBytes("two"), rng);
  // Newest first: accepted and advances the window past the older frame.
  EXPECT_TRUE(receiver.Open(f2).has_value());
  EXPECT_FALSE(receiver.Open(f1).has_value());
}

TEST(SecureChannelTest, TruncatedFrameRejected) {
  crypto::SecureRng rng(StringToBytes("trunc"));
  SecureChannel sender(StringToBytes("k"), "chan:p:a", ChannelRole::kInitiator);
  SecureChannel receiver(StringToBytes("k"), "chan:p:a", ChannelRole::kResponder);
  Bytes frame = sender.Seal(StringToBytes("msg"), rng);
  EXPECT_FALSE(receiver.Open(Bytes(frame.begin(), frame.begin() + 4)).has_value());
  EXPECT_FALSE(receiver.Open({}).has_value());
}

// Crafts a tagged message sent through the transport directly (Endpoint::Send draws
// fresh tags, so duplicates and out-of-window tags need the raw Send path).
Message Tagged(const std::string& from, const std::string& to, const std::string& type,
               uint64_t seq, const std::string& payload = "") {
  Message m;
  m.from = from;
  m.to = to;
  m.type = type;
  m.seq = seq;
  m.payload = StringToBytes(payload);
  return m;
}

TEST(EndpointDedupTest, WindowStaysBoundedAndStillSuppressesAncientDuplicates) {
  MessageBus bus;
  auto a = bus.CreateEndpoint("a");
  auto b = bus.CreateEndpoint("b");
  // Drive far more tagged traffic through one edge than the window retains. The old
  // unbounded seen-set grew one entry per message for the lifetime of the endpoint,
  // which at 10k-party scale is an O(rounds * parties) leak.
  const uint64_t kTotal = 1000;
  for (uint64_t i = 1; i <= kTotal; ++i) {
    ASSERT_TRUE(bus.Send(Tagged("a", "b", "tick", i)));
  }
  for (uint64_t i = 0; i < kTotal; ++i) {
    ASSERT_TRUE(b->ReceiveFor(1000).has_value()) << i;
  }
  EXPECT_LE(b->DedupTagsForTest(), 128u);

  // A duplicate far below the compacted horizon is still invisible: tags only grow, so
  // anything at or below the horizon can only be a stale retransmission.
  ASSERT_TRUE(bus.Send(Tagged("a", "b", "tick", 5)));
  EXPECT_FALSE(b->ReceiveFor(50).has_value());
  // A duplicate inside the retained window is suppressed too.
  ASSERT_TRUE(bus.Send(Tagged("a", "b", "tick", kTotal)));
  EXPECT_FALSE(b->ReceiveFor(50).has_value());
  // Fresh tags keep flowing, and untagged (seq 0) messages are never deduplicated.
  ASSERT_TRUE(bus.Send(Tagged("a", "b", "tick", kTotal + 1)));
  EXPECT_TRUE(b->ReceiveFor(1000).has_value());
  ASSERT_TRUE(bus.Send(Tagged("a", "b", "untagged", 0)));
  ASSERT_TRUE(bus.Send(Tagged("a", "b", "untagged", 0)));
  EXPECT_TRUE(b->ReceiveFor(1000).has_value());
  EXPECT_TRUE(b->ReceiveFor(1000).has_value());
}

TEST(EndpointStashTest, ReceiveMatchForStashesNonMatchesInOrderAcrossADuplicate) {
  MessageBus bus;
  auto rx = bus.CreateEndpoint("rx");
  // Delivery order: progress p1, a duplicate of p1, progress p2, a reply from the
  // *wrong* sender, then the reply the receiver is actually waiting on.
  ASSERT_TRUE(bus.Send(Tagged("alice", "rx", "progress", 101, "p1")));
  ASSERT_TRUE(bus.Send(Tagged("alice", "rx", "progress", 101, "p1")));
  ASSERT_TRUE(bus.Send(Tagged("alice", "rx", "progress", 102, "p2")));
  ASSERT_TRUE(bus.Send(Tagged("alice", "rx", "reply", 103, "not-bobs")));
  ASSERT_TRUE(bus.Send(Tagged("bob", "rx", "reply", 201, "bobs")));

  // The selective receive skips past everything that doesn't match on (type, from) —
  // including the duplicate, which must be suppressed, not stashed twice.
  auto m = rx->ReceiveMatchFor("reply", "bob", 1000);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(BytesToString(m->payload), "bobs");

  // Stashed non-matches come back to later receives in original delivery order.
  auto p1 = rx->ReceiveType("progress");
  ASSERT_TRUE(p1.has_value());
  EXPECT_EQ(BytesToString(p1->payload), "p1");
  auto p2 = rx->ReceiveType("progress");
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(BytesToString(p2->payload), "p2");
  auto stale = rx->ReceiveType("reply");
  ASSERT_TRUE(stale.has_value());
  EXPECT_EQ(BytesToString(stale->payload), "not-bobs");
  // The duplicate is gone for good: nothing further arrives.
  EXPECT_FALSE(rx->ReceiveFor(50).has_value());
}

TEST(MessageBusTest, UnknownTargetBumpsTelemetryCounter) {
  auto counter_value = [] {
    auto counters = telemetry::Snapshot().counters;
    auto it = counters.find("net.bus.unknown_target");
    return it == counters.end() ? uint64_t{0} : it->second;
  };
  uint64_t before = counter_value();
  MessageBus bus;
  auto a = bus.CreateEndpoint("a");
  EXPECT_FALSE(a->Send("ghost", "x", {}));
  // The CI gate keys on this counter: routing to a name nobody registered is a wiring
  // bug, distinct from fault-injected or closed-endpoint drops.
  EXPECT_EQ(counter_value(), before + 1);
  FaultPlan plan;
  plan.seed = 7;
  plan.default_rates.drop = 1.0;
  bus.SetFaultPlan(plan);
  auto b = bus.CreateEndpoint("b");
  EXPECT_TRUE(a->Send("b", "x", {}));
  EXPECT_EQ(counter_value(), before + 1);  // fault loss is not an unknown target
}

}  // namespace
}  // namespace deta::net
