// The central correctness property of DeTA (§3.1): coordinate-wise aggregation commutes
// with Trans/Trans^-1, bit-exactly, for every supported algorithm and configuration.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/transform.h"
#include "fl/aggregation.h"

namespace deta::core {
namespace {

std::shared_ptr<Transform> MakeTransform(int64_t total, int partitions, bool partition_on,
                                         bool shuffle_on) {
  auto mapper = std::make_shared<ModelMapper>(
      ModelMapper::Uniform(total, partitions, StringToBytes("transform-test")));
  auto shuffler =
      std::make_shared<Shuffler>(GeneratePermutationKey(128, StringToBytes("key")));
  TransformConfig config;
  config.enable_partition = partition_on;
  config.enable_shuffle = shuffle_on;
  return std::make_shared<Transform>(mapper, shuffler, config);
}

TEST(TransformTest, ApplyInvertRoundTrip) {
  Rng rng(1);
  std::vector<float> flat(501);
  for (auto& v : flat) {
    v = rng.NextGaussian();
  }
  for (bool partition : {true, false}) {
    for (bool shuffle : {true, false}) {
      auto transform = MakeTransform(501, 3, partition, shuffle);
      auto fragments = transform->Apply(flat, 7);
      EXPECT_EQ(static_cast<int>(fragments.size()), transform->num_partitions());
      EXPECT_EQ(transform->Invert(fragments, 7), flat)
          << "partition=" << partition << " shuffle=" << shuffle;
    }
  }
}

TEST(TransformTest, RoundIdMattersForInversion) {
  Rng rng(2);
  std::vector<float> flat(200);
  for (auto& v : flat) {
    v = rng.NextGaussian();
  }
  auto transform = MakeTransform(200, 2, true, true);
  auto fragments = transform->Apply(flat, /*round=*/1);
  // Inverting with the wrong round id yields garbage (different permutation).
  EXPECT_NE(transform->Invert(fragments, /*round=*/2), flat);
  EXPECT_EQ(transform->Invert(fragments, /*round=*/1), flat);
}

TEST(TransformTest, PartitionDisabledProducesSingleFragment) {
  auto transform = MakeTransform(100, 3, /*partition=*/false, /*shuffle=*/true);
  EXPECT_EQ(transform->num_partitions(), 1);
  std::vector<float> flat(100, 1.0f);
  auto fragments = transform->Apply(flat, 1);
  EXPECT_EQ(fragments.size(), 1u);
  EXPECT_EQ(fragments[0].size(), 100u);
}

struct CommuteCase {
  const char* algorithm;
  bool shuffle;
};

class TransformCommuteTest : public ::testing::TestWithParam<CommuteCase> {};

// For each algorithm A and transform T: T^-1( A(T(u_1)), ..., per partition ) must equal
// A(u_1, ..., u_n) computed centrally — the paper's "no utility loss" claim.
TEST_P(TransformCommuteTest, AggregationCommutesBitExactly) {
  auto [algorithm_name, shuffle] = GetParam();
  const int64_t kTotal = 737;
  const int kParties = 5;
  const int kPartitions = 3;
  auto transform = MakeTransform(kTotal, kPartitions, true, shuffle);
  auto algorithm = fl::MakeAlgorithm(algorithm_name);

  Rng rng(33);
  std::vector<fl::ModelUpdate> updates(kParties);
  for (int p = 0; p < kParties; ++p) {
    updates[static_cast<size_t>(p)].values.resize(kTotal);
    for (auto& v : updates[static_cast<size_t>(p)].values) {
      v = rng.NextGaussian();
    }
    updates[static_cast<size_t>(p)].weight = 1.0 + p;
  }

  // Central result.
  std::vector<float> central = algorithm->Aggregate(updates);

  // DeTA path: every party transforms; each partition aggregates independently.
  const uint64_t kRound = 4;
  std::vector<std::vector<fl::ModelUpdate>> per_partition(kPartitions);
  for (const auto& update : updates) {
    auto fragments = transform->Apply(update.values, kRound);
    for (int j = 0; j < kPartitions; ++j) {
      fl::ModelUpdate fragment;
      fragment.values = fragments[static_cast<size_t>(j)];
      fragment.weight = update.weight;
      per_partition[static_cast<size_t>(j)].push_back(std::move(fragment));
    }
  }
  std::vector<std::vector<float>> aggregated(kPartitions);
  for (int j = 0; j < kPartitions; ++j) {
    aggregated[static_cast<size_t>(j)] =
        algorithm->Aggregate(per_partition[static_cast<size_t>(j)]);
  }
  std::vector<float> decentralized = transform->Invert(aggregated, kRound);

  // Krum may legitimately select different parties per partition (§4.2 discusses that the
  // clustering happens independently per partition); bit-exactness is only guaranteed for
  // coordinate-wise algorithms when every partition selects the same winner. With one far
  // outlier the honest cluster dominates in all partitions, so equality can still be
  // asserted coordinate-wise against the per-partition winners rather than the central
  // pick; here we assert the coordinate-wise algorithms exactly and Krum approximately.
  if (std::string(algorithm_name) == "krum") {
    // All updates here are i.i.d. Gaussian — check the result is one of the updates,
    // partition-wise; i.e. each coordinate comes from some party's value at that coord.
    ASSERT_EQ(decentralized.size(), central.size());
    for (size_t i = 0; i < decentralized.size(); ++i) {
      bool found = false;
      for (const auto& u : updates) {
        if (u.values[i] == decentralized[i]) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "coord " << i << " not from any party";
    }
  } else {
    EXPECT_EQ(decentralized, central);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, TransformCommuteTest,
    ::testing::Values(CommuteCase{"iterative_averaging", false},
                      CommuteCase{"iterative_averaging", true},
                      CommuteCase{"coordinate_median", false},
                      CommuteCase{"coordinate_median", true},
                      CommuteCase{"trimmed_mean", true}, CommuteCase{"krum", true}),
    [](const ::testing::TestParamInfo<CommuteCase>& info) {
      return std::string(info.param.algorithm) + (info.param.shuffle ? "_shuffled" : "_plain");
    });

// Security-relevant structural property: a fragment reveals neither positions nor
// original ordering. Verify the fragment is not simply a prefix/suffix/stride of the
// original and that shuffled fragments differ from unshuffled ones.
TEST(TransformTest, FragmentsAreObfuscated) {
  const int64_t kTotal = 400;
  std::vector<float> flat(kTotal);
  for (int64_t i = 0; i < kTotal; ++i) {
    flat[static_cast<size_t>(i)] = static_cast<float>(i);  // identifiable coordinates
  }
  auto plain = MakeTransform(kTotal, 2, true, false)->Apply(flat, 1);
  auto shuffled = MakeTransform(kTotal, 2, true, true)->Apply(flat, 1);
  // Same membership per partition, different order.
  for (int j = 0; j < 2; ++j) {
    std::multiset<float> a(plain[static_cast<size_t>(j)].begin(),
                           plain[static_cast<size_t>(j)].end());
    std::multiset<float> b(shuffled[static_cast<size_t>(j)].begin(),
                           shuffled[static_cast<size_t>(j)].end());
    EXPECT_EQ(a, b);
    EXPECT_NE(plain[static_cast<size_t>(j)], shuffled[static_cast<size_t>(j)]);
  }
  // The plain fragment is not a contiguous slice of the original.
  bool is_prefix = true;
  for (size_t i = 0; i < plain[0].size(); ++i) {
    if (plain[0][i] != flat[i]) {
      is_prefix = false;
      break;
    }
  }
  EXPECT_FALSE(is_prefix);
}

}  // namespace
}  // namespace deta::core
