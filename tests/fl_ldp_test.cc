#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "fl/ldp.h"
#include "fl/training_job.h"

namespace deta::fl {
namespace {

TEST(LdpTest, ClipLeavesSmallVectorsAlone) {
  std::vector<float> v = {0.3f, 0.4f};  // norm 0.5
  float norm = ClipToNorm(v, 1.0f);
  EXPECT_FLOAT_EQ(norm, 0.5f);
  EXPECT_FLOAT_EQ(v[0], 0.3f);
}

TEST(LdpTest, ClipScalesLargeVectorsToBound) {
  std::vector<float> v = {3.0f, 4.0f};  // norm 5
  float norm = ClipToNorm(v, 1.0f);
  EXPECT_FLOAT_EQ(norm, 5.0f);
  double clipped = std::sqrt(static_cast<double>(v[0]) * v[0] + static_cast<double>(v[1]) * v[1]);
  EXPECT_NEAR(clipped, 1.0, 1e-6);
  EXPECT_THROW(ClipToNorm(v, 0.0f), CheckFailure);
}

TEST(LdpTest, DisabledMechanismIsIdentity) {
  std::vector<float> v = {1.0f, 2.0f, 3.0f};
  auto original = v;
  LdpConfig config;
  config.enabled = false;
  ApplyGaussianMechanism(v, config, 42);
  EXPECT_EQ(v, original);
}

TEST(LdpTest, NoiseMatchesConfiguredScale) {
  LdpConfig config;
  config.enabled = true;
  config.clip_norm = 1.0f;
  config.noise_multiplier = 0.5f;
  // Zero vector: output is pure noise with stddev sigma*C = 0.5.
  const int n = 20000;
  std::vector<float> v(n, 0.0f);
  ApplyGaussianMechanism(v, config, 7);
  double sum = 0.0, sum2 = 0.0;
  for (float x : v) {
    sum += x;
    sum2 += static_cast<double>(x) * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(std::sqrt(sum2 / n), 0.5, 0.02);
}

TEST(LdpTest, DeterministicPerSeed) {
  LdpConfig config;
  config.enabled = true;
  std::vector<float> a(10, 0.1f), b(10, 0.1f), c(10, 0.1f);
  ApplyGaussianMechanism(a, config, 1);
  ApplyGaussianMechanism(b, config, 1);
  ApplyGaussianMechanism(c, config, 2);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(LdpTest, EpsilonAccounting) {
  // sigma = 1, delta = 1e-5: eps = sqrt(2 ln(1.25e5)) ~ 4.84.
  EXPECT_NEAR(GaussianMechanismEpsilon(1.0f, 1e-5), 4.84, 0.02);
  // More noise -> smaller epsilon.
  EXPECT_LT(GaussianMechanismEpsilon(2.0f, 1e-5), GaussianMechanismEpsilon(1.0f, 1e-5));
  EXPECT_THROW(GaussianMechanismEpsilon(0.0f, 1e-5), CheckFailure);
}

TEST(LdpTest, PartyAppliesMechanismToUpdates) {
  data::SyntheticConfig dc;
  dc.num_examples = 16;
  dc.classes = 10;
  dc.channels = 1;
  dc.image_size = 14;
  dc.seed = 3;
  dc.prototype_seed = 777;
  data::Dataset shard = data::GenerateSynthetic(dc);
  ModelFactory factory = [] {
    Rng rng(1234);
    return nn::BuildMlp(14 * 14, {8}, 10, rng);
  };

  TrainConfig plain_config;
  plain_config.batch_size = 8;
  plain_config.kind = TrainConfig::UpdateKind::kGradient;
  TrainConfig ldp_config = plain_config;
  ldp_config.ldp.enabled = true;
  ldp_config.ldp.clip_norm = 0.5f;
  ldp_config.ldp.noise_multiplier = 0.3f;

  Party plain("p", shard, factory, plain_config, 1);
  Party noisy("p2", shard, factory, ldp_config, 1);
  auto model = factory();
  std::vector<float> global = model->GetFlatParams();
  auto plain_result = plain.RunLocalRound(global, 1);
  auto noisy_result = noisy.RunLocalRound(global, 1);
  EXPECT_NE(plain_result.update.values, noisy_result.update.values);

  // The noisy gradient's norm reflects clip + noise, not the raw gradient.
  double norm = 0.0;
  for (float v : noisy_result.update.values) {
    norm += static_cast<double>(v) * v;
  }
  // Expected norm^2 ~ clip^2 + d * (sigma*clip)^2; just check it is bounded well below
  // a pathological blowup and above zero.
  EXPECT_GT(norm, 0.0);
}

TEST(LdpTest, LdpComposesWithFflTraining) {
  // §8.1: LDP perturbs updates on the parties' devices; training still converges (with
  // some utility loss) and the pipeline is otherwise unchanged.
  data::SyntheticConfig dc;
  dc.num_examples = 120;
  dc.classes = 10;
  dc.channels = 1;
  dc.image_size = 14;
  dc.seed = 3;
  dc.prototype_seed = 777;
  data::Dataset train = data::GenerateSynthetic(dc);
  dc.seed = 4;
  dc.num_examples = 60;
  data::Dataset eval = data::GenerateSynthetic(dc);

  ModelFactory factory = [] {
    Rng rng(1234);
    return nn::BuildMlp(14 * 14, {16}, 10, rng);
  };
  ExecutionOptions options;
  options.rounds = 6;
  options.train.batch_size = 16;
  options.train.lr = 0.1f;
  options.train.ldp.enabled = true;
  options.train.ldp.clip_norm = 2.0f;
  options.train.ldp.noise_multiplier = 0.05f;

  Rng split_rng(9);
  auto shards = data::SplitIid(train, 3, split_rng);
  std::vector<std::unique_ptr<Party>> parties;
  for (int i = 0; i < 3; ++i) {
    parties.push_back(std::make_unique<Party>("party" + std::to_string(i),
                                              shards[static_cast<size_t>(i)], factory,
                                              options.train, 100 + i));
  }
  FflJob job(options, std::move(parties), factory, eval);
  JobResult result = job.Run();
  EXPECT_LT(result.rounds.back().loss, result.rounds.front().loss);
}

}  // namespace
}  // namespace deta::fl
