#include <gtest/gtest.h>

#include "common/check.h"
#include "crypto/bigint.h"
#include "crypto/chacha20.h"

namespace deta::crypto {
namespace {

TEST(BigUintTest, ConstructionAndU64) {
  EXPECT_TRUE(BigUint().IsZero());
  EXPECT_EQ(BigUint(0).ToU64(), 0u);
  EXPECT_EQ(BigUint(42).ToU64(), 42u);
  EXPECT_EQ(BigUint(0xffffffffffffffffULL).ToU64(), 0xffffffffffffffffULL);
}

TEST(BigUintTest, HexRoundTrip) {
  for (const char* hex : {"0", "1", "ff", "deadbeef", "123456789abcdef0fedcba9876543210"}) {
    BigUint v = BigUint::FromHexString(hex);
    EXPECT_EQ(v.ToHexString(), hex);
  }
}

TEST(BigUintTest, BytesRoundTrip) {
  Bytes be = FromHex("0102030405060708090a0b0c0d0e0f10");
  BigUint v = BigUint::FromBytes(be);
  EXPECT_EQ(v.ToBytes(), be);
  EXPECT_EQ(v.ToBytesPadded(20).size(), 20u);
  EXPECT_EQ(BigUint::FromBytes(v.ToBytesPadded(20)), v);
}

TEST(BigUintTest, PaddedTooSmallThrows) {
  EXPECT_THROW(BigUint::FromHexString("ffff").ToBytesPadded(1), CheckFailure);
}

TEST(BigUintTest, BitLength) {
  EXPECT_EQ(BigUint().BitLength(), 0u);
  EXPECT_EQ(BigUint(1).BitLength(), 1u);
  EXPECT_EQ(BigUint(255).BitLength(), 8u);
  EXPECT_EQ(BigUint(256).BitLength(), 9u);
  EXPECT_EQ(BigUint::FromHexString("80000000000000000").BitLength(), 68u);
}

TEST(BigUintTest, Comparisons) {
  BigUint a(100), b(200);
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b > a);
  EXPECT_TRUE(a <= a);
  EXPECT_TRUE(a >= a);
  EXPECT_TRUE(a == a);
  EXPECT_TRUE(a != b);
}

TEST(BigUintTest, SubUnderflowThrows) {
  EXPECT_THROW(BigUint(1).Sub(BigUint(2)), CheckFailure);
}

TEST(BigUintTest, DivisionByZeroThrows) {
  EXPECT_THROW(BigUint(1).DivMod(BigUint()), CheckFailure);
}

TEST(BigUintTest, ShiftRoundTrip) {
  BigUint v = BigUint::FromHexString("123456789abcdef");
  for (size_t bits : {1u, 7u, 31u, 32u, 33u, 64u, 100u}) {
    EXPECT_EQ(v.ShiftLeft(bits).ShiftRight(bits), v) << bits;
  }
  EXPECT_TRUE(BigUint(1).ShiftRight(1).IsZero());
}

// Randomized agreement with native 64-bit arithmetic.
TEST(BigUintTest, RandomizedSmallAgainstNative) {
  SecureRng rng(StringToBytes("bigint-small"));
  for (int i = 0; i < 3000; ++i) {
    uint64_t a = rng.NextU64() >> (rng.NextU64() % 33);
    uint64_t b = rng.NextU64() >> (rng.NextU64() % 33);
    BigUint A(a), B(b);
    EXPECT_EQ((A.Add(B)).ToU64(), a + b);
    if (a >= b) {
      EXPECT_EQ(A.Sub(B).ToU64(), a - b);
    }
    EXPECT_EQ(A.Mul(B).ToU64(), a * b);  // mod 2^64 agreement
    if (b != 0) {
      auto qr = A.DivMod(B);
      EXPECT_EQ(qr.quotient.ToU64(), a / b);
      EXPECT_EQ(qr.remainder.ToU64(), a % b);
    }
  }
}

// Property: for random multi-limb a, b: a = q*b + r with r < b.
TEST(BigUintTest, DivModInvariantLarge) {
  SecureRng rng(StringToBytes("bigint-large"));
  for (int i = 0; i < 400; ++i) {
    BigUint a = BigUint::RandomBits(rng, 200 + static_cast<size_t>(i % 300));
    BigUint b = BigUint::RandomBits(rng, 30 + static_cast<size_t>(i % 250));
    auto qr = a.DivMod(b);
    EXPECT_TRUE(qr.remainder < b);
    EXPECT_EQ(qr.quotient.Mul(b).Add(qr.remainder), a);
  }
}

// Knuth algorithm D's add-back branch needs specially crafted inputs; exercise the
// neighborhood with divisors just below limb boundaries.
TEST(BigUintTest, DivModEdgePatterns) {
  std::vector<std::string> dividends = {
      "ffffffffffffffffffffffffffffffff", "80000000000000000000000000000000",
      "fffffffeffffffffffffffffffffffff", "100000000000000000000000000000000"};
  std::vector<std::string> divisors = {"ffffffffffffffff", "8000000000000001",
                                       "ffffffff00000001", "100000001"};
  for (const auto& dh : dividends) {
    for (const auto& vh : divisors) {
      BigUint a = BigUint::FromHexString(dh);
      BigUint b = BigUint::FromHexString(vh);
      auto qr = a.DivMod(b);
      EXPECT_TRUE(qr.remainder < b);
      EXPECT_EQ(qr.quotient.Mul(b).Add(qr.remainder), a);
    }
  }
}

TEST(BigUintTest, PowModKnownValues) {
  EXPECT_EQ(BigUint::PowMod(3, 20, 1000).ToU64(), 401u);
  EXPECT_EQ(BigUint::PowMod(2, 10, 1025).ToU64(), 1024u);
  EXPECT_EQ(BigUint::PowMod(5, 0, 7).ToU64(), 1u);
  EXPECT_TRUE(BigUint::PowMod(5, 100, 1).IsZero());
}

// Fermat's little theorem as a property test: a^(p-1) = 1 mod p for prime p.
TEST(BigUintTest, FermatLittleTheorem) {
  SecureRng rng(StringToBytes("fermat"));
  BigUint p = BigUint::RandomPrime(rng, 128);
  for (int i = 0; i < 10; ++i) {
    BigUint a = BigUint::RandomBelow(rng, p.Sub(BigUint(2))).Add(BigUint(1));
    EXPECT_EQ(BigUint::PowMod(a, p.Sub(BigUint(1)), p), BigUint(1));
  }
}

TEST(BigUintTest, InvModCorrect) {
  BigUint inv;
  ASSERT_TRUE(BigUint::InvMod(BigUint(3), BigUint(7), &inv));
  EXPECT_EQ(inv.ToU64(), 5u);
  // Non-invertible: gcd(4, 8) != 1.
  EXPECT_FALSE(BigUint::InvMod(BigUint(4), BigUint(8), &inv));
}

TEST(BigUintTest, InvModRandomized) {
  SecureRng rng(StringToBytes("invmod"));
  BigUint m = BigUint::RandomPrime(rng, 96);
  for (int i = 0; i < 50; ++i) {
    BigUint a = BigUint::RandomBelow(rng, m.Sub(BigUint(1))).Add(BigUint(1));
    BigUint inv;
    ASSERT_TRUE(BigUint::InvMod(a, m, &inv));
    EXPECT_EQ(BigUint::MulMod(a, inv, m), BigUint(1));
  }
}

TEST(BigUintTest, GcdLcm) {
  EXPECT_EQ(BigUint::Gcd(BigUint(12), BigUint(18)).ToU64(), 6u);
  EXPECT_EQ(BigUint::Gcd(BigUint(17), BigUint(5)).ToU64(), 1u);
  EXPECT_EQ(BigUint::Lcm(BigUint(4), BigUint(6)).ToU64(), 12u);
  EXPECT_EQ(BigUint::Gcd(BigUint(0), BigUint(5)).ToU64(), 5u);
}

TEST(BigUintTest, MillerRabinKnownPrimes) {
  SecureRng rng(StringToBytes("mr"));
  for (uint64_t p : {2ULL, 3ULL, 5ULL, 17ULL, 97ULL, 7919ULL, 2147483647ULL}) {
    EXPECT_TRUE(BigUint::IsProbablePrime(BigUint(p), rng)) << p;
  }
  for (uint64_t c : {1ULL, 4ULL, 100ULL, 561ULL /* Carmichael */, 7917ULL,
                     2147483647ULL * 3}) {
    EXPECT_FALSE(BigUint::IsProbablePrime(BigUint(c), rng)) << c;
  }
}

TEST(BigUintTest, RandomPrimeHasExactBitLength) {
  SecureRng rng(StringToBytes("prime"));
  for (size_t bits : {32u, 64u, 128u}) {
    BigUint p = BigUint::RandomPrime(rng, bits);
    EXPECT_EQ(p.BitLength(), bits);
    EXPECT_TRUE(BigUint::IsProbablePrime(p, rng));
  }
}

TEST(BigUintTest, RandomBelowUniformSupport) {
  SecureRng rng(StringToBytes("below"));
  BigUint bound(100);
  std::vector<int> seen(100, 0);
  for (int i = 0; i < 3000; ++i) {
    uint64_t v = BigUint::RandomBelow(rng, bound).ToU64();
    ASSERT_LT(v, 100u);
    seen[v]++;
  }
  // All residues hit at least once with overwhelming probability.
  for (int i = 0; i < 100; ++i) {
    EXPECT_GT(seen[static_cast<size_t>(i)], 0) << i;
  }
}

TEST(BigUintTest, ModularArithmeticIdentities) {
  SecureRng rng(StringToBytes("modarith"));
  BigUint m = BigUint::RandomBits(rng, 150);
  for (int i = 0; i < 50; ++i) {
    BigUint a = BigUint::RandomBelow(rng, m);
    BigUint b = BigUint::RandomBelow(rng, m);
    // (a + b) - b = a mod m
    EXPECT_EQ(BigUint::SubMod(BigUint::AddMod(a, b, m), b, m), a);
    // a * b mod m == b * a mod m
    EXPECT_EQ(BigUint::MulMod(a, b, m), BigUint::MulMod(b, a, m));
  }
}

}  // namespace
}  // namespace deta::crypto
