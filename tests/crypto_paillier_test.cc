#include <gtest/gtest.h>

#include "common/check.h"
#include "crypto/paillier.h"
#include "fl/paillier_fusion.h"

namespace deta::crypto {
namespace {

class PaillierTest : public ::testing::Test {
 protected:
  PaillierTest() : rng_(StringToBytes("paillier-test")) {
    key_ = GeneratePaillierKey(rng_, 256);
  }
  SecureRng rng_;
  PaillierKeyPair key_;
};

TEST_F(PaillierTest, EncryptDecryptRoundTrip) {
  for (uint64_t m : {0ULL, 1ULL, 42ULL, 123456789ULL}) {
    BigUint c = key_.pub.Encrypt(BigUint(m), rng_);
    EXPECT_EQ(key_.priv.Decrypt(c, key_.pub).ToU64(), m);
  }
}

TEST_F(PaillierTest, EncryptionIsRandomized) {
  BigUint m(7);
  EXPECT_NE(key_.pub.Encrypt(m, rng_), key_.pub.Encrypt(m, rng_));
}

TEST_F(PaillierTest, HomomorphicAddition) {
  BigUint c1 = key_.pub.Encrypt(BigUint(1000), rng_);
  BigUint c2 = key_.pub.Encrypt(BigUint(2345), rng_);
  BigUint sum = key_.pub.AddCiphertexts(c1, c2);
  EXPECT_EQ(key_.priv.Decrypt(sum, key_.pub).ToU64(), 3345u);
}

TEST_F(PaillierTest, HomomorphicScalarMultiply) {
  BigUint c = key_.pub.Encrypt(BigUint(11), rng_);
  BigUint scaled = key_.pub.MulPlain(c, BigUint(9));
  EXPECT_EQ(key_.priv.Decrypt(scaled, key_.pub).ToU64(), 99u);
}

TEST_F(PaillierTest, ManyAddendsAccumulate) {
  BigUint acc = key_.pub.Encrypt(BigUint(0), rng_);
  uint64_t expected = 0;
  for (uint64_t i = 1; i <= 20; ++i) {
    acc = key_.pub.AddCiphertexts(acc, key_.pub.Encrypt(BigUint(i * i), rng_));
    expected += i * i;
  }
  EXPECT_EQ(key_.priv.Decrypt(acc, key_.pub).ToU64(), expected);
}

TEST_F(PaillierTest, PlaintextOutOfRangeThrows) {
  EXPECT_THROW(key_.pub.Encrypt(key_.pub.n, rng_), CheckFailure);
}

TEST_F(PaillierTest, FloatCodecRoundTripsSums) {
  PaillierFloatCodec codec(key_.pub);
  // Sum of 3 encoded values, mixed signs.
  float values[3] = {1.5f, -2.25f, 0.125f};
  BigUint acc = key_.pub.Encrypt(codec.Encode(values[0]), rng_);
  acc = key_.pub.AddCiphertexts(acc, key_.pub.Encrypt(codec.Encode(values[1]), rng_));
  acc = key_.pub.AddCiphertexts(acc, key_.pub.Encrypt(codec.Encode(values[2]), rng_));
  float sum = codec.DecodeSum(key_.priv.Decrypt(acc, key_.pub), 3);
  EXPECT_NEAR(sum, -0.625f, 1e-4f);
}

TEST_F(PaillierTest, VectorCodecPacksAndUnpacks) {
  fl::PaillierVectorCodec codec(key_.pub, /*max_parties=*/8);
  EXPECT_GT(codec.LanesPerCiphertext(), 1);
  std::vector<float> v = {0.5f, -1.25f, 3.75f, -0.0625f, 100.0f, -100.0f, 0.0f};
  auto ct = codec.Encrypt(v, rng_);
  EXPECT_EQ(ct.size(), codec.CiphertextCount(v.size()));
  auto decoded = codec.DecryptSum(ct, key_.priv, v.size(), 1);
  ASSERT_EQ(decoded.size(), v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(decoded[i], v[i], 1e-4f) << i;
  }
}

TEST_F(PaillierTest, VectorCodecHomomorphicSumAcrossParties) {
  const int kParties = 5;
  fl::PaillierVectorCodec codec(key_.pub, kParties);
  std::vector<std::vector<float>> updates(kParties);
  std::vector<float> expected(11, 0.0f);
  SecureRng data_rng(StringToBytes("vec"));
  for (int p = 0; p < kParties; ++p) {
    for (size_t i = 0; i < expected.size(); ++i) {
      float v = static_cast<float>(static_cast<int64_t>(data_rng.NextBelow(2001)) - 1000) /
                64.0f;
      updates[static_cast<size_t>(p)].push_back(v);
      expected[i] += v;
    }
  }
  std::vector<BigUint> acc = codec.Encrypt(updates[0], rng_);
  for (int p = 1; p < kParties; ++p) {
    codec.AccumulateInPlace(acc, codec.Encrypt(updates[static_cast<size_t>(p)], rng_));
  }
  auto sum = codec.DecryptSum(acc, key_.priv, expected.size(), kParties);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(sum[i], expected[i], 1e-3f) << i;
  }
}

TEST_F(PaillierTest, CiphertextSerializationRoundTrip) {
  fl::PaillierVectorCodec codec(key_.pub, 4);
  std::vector<float> v = {1.0f, 2.0f, -3.0f};
  auto ct = codec.Encrypt(v, rng_);
  Bytes wire = fl::SerializeCiphertexts(ct);
  auto back = fl::DeserializeCiphertexts(wire);
  ASSERT_EQ(back.size(), ct.size());
  for (size_t i = 0; i < ct.size(); ++i) {
    EXPECT_EQ(back[i], ct[i]);
  }
}

TEST(PaillierKeyGenTest, DistinctKeysForDistinctSeeds) {
  SecureRng r1(StringToBytes("a")), r2(StringToBytes("b"));
  auto k1 = GeneratePaillierKey(r1, 128);
  auto k2 = GeneratePaillierKey(r2, 128);
  EXPECT_NE(k1.pub.n, k2.pub.n);
  EXPECT_EQ(k1.pub.g, k1.pub.n.Add(BigUint(1)));
}

}  // namespace
}  // namespace deta::crypto
