#include <gtest/gtest.h>

#include "common/check.h"
#include "common/parallel.h"
#include "crypto/paillier.h"
#include "fl/paillier_fusion.h"
#include "persist/paillier_key_codec.h"

namespace deta::crypto {
namespace {

class PaillierTest : public ::testing::Test {
 protected:
  PaillierTest() : rng_(StringToBytes("paillier-test")) {
    key_ = GeneratePaillierKey(rng_, 256);
  }
  SecureRng rng_;
  PaillierKeyPair key_;
};

TEST_F(PaillierTest, EncryptDecryptRoundTrip) {
  for (uint64_t m : {0ULL, 1ULL, 42ULL, 123456789ULL}) {
    BigUint c = key_.pub.Encrypt(BigUint(m), rng_);
    EXPECT_EQ(key_.priv.Decrypt(c, key_.pub).ToU64(), m);
  }
}

TEST_F(PaillierTest, EncryptionIsRandomized) {
  BigUint m(7);
  EXPECT_NE(key_.pub.Encrypt(m, rng_), key_.pub.Encrypt(m, rng_));
}

TEST_F(PaillierTest, HomomorphicAddition) {
  BigUint c1 = key_.pub.Encrypt(BigUint(1000), rng_);
  BigUint c2 = key_.pub.Encrypt(BigUint(2345), rng_);
  BigUint sum = key_.pub.AddCiphertexts(c1, c2);
  EXPECT_EQ(key_.priv.Decrypt(sum, key_.pub).ToU64(), 3345u);
}

TEST_F(PaillierTest, HomomorphicScalarMultiply) {
  BigUint c = key_.pub.Encrypt(BigUint(11), rng_);
  BigUint scaled = key_.pub.MulPlain(c, BigUint(9));
  EXPECT_EQ(key_.priv.Decrypt(scaled, key_.pub).ToU64(), 99u);
}

TEST_F(PaillierTest, ManyAddendsAccumulate) {
  BigUint acc = key_.pub.Encrypt(BigUint(0), rng_);
  uint64_t expected = 0;
  for (uint64_t i = 1; i <= 20; ++i) {
    acc = key_.pub.AddCiphertexts(acc, key_.pub.Encrypt(BigUint(i * i), rng_));
    expected += i * i;
  }
  EXPECT_EQ(key_.priv.Decrypt(acc, key_.pub).ToU64(), expected);
}

TEST_F(PaillierTest, PlaintextOutOfRangeThrows) {
  EXPECT_THROW(key_.pub.Encrypt(key_.pub.n, rng_), CheckFailure);
}

TEST_F(PaillierTest, FloatCodecRoundTripsSums) {
  PaillierFloatCodec codec(key_.pub);
  // Sum of 3 encoded values, mixed signs.
  float values[3] = {1.5f, -2.25f, 0.125f};
  BigUint acc = key_.pub.Encrypt(codec.Encode(values[0]), rng_);
  acc = key_.pub.AddCiphertexts(acc, key_.pub.Encrypt(codec.Encode(values[1]), rng_));
  acc = key_.pub.AddCiphertexts(acc, key_.pub.Encrypt(codec.Encode(values[2]), rng_));
  float sum = codec.DecodeSum(key_.priv.Decrypt(acc, key_.pub), 3);
  EXPECT_NEAR(sum, -0.625f, 1e-4f);
}

TEST_F(PaillierTest, VectorCodecPacksAndUnpacks) {
  fl::PaillierVectorCodec codec(key_.pub, /*max_parties=*/8);
  EXPECT_GT(codec.LanesPerCiphertext(), 1);
  std::vector<float> v = {0.5f, -1.25f, 3.75f, -0.0625f, 100.0f, -100.0f, 0.0f};
  auto ct = codec.Encrypt(v, rng_);
  EXPECT_EQ(ct.size(), codec.CiphertextCount(v.size()));
  auto decoded = codec.DecryptSum(ct, key_.priv, v.size(), 1);
  ASSERT_EQ(decoded.size(), v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(decoded[i], v[i], 1e-4f) << i;
  }
}

TEST_F(PaillierTest, VectorCodecHomomorphicSumAcrossParties) {
  const int kParties = 5;
  fl::PaillierVectorCodec codec(key_.pub, kParties);
  std::vector<std::vector<float>> updates(kParties);
  std::vector<float> expected(11, 0.0f);
  SecureRng data_rng(StringToBytes("vec"));
  for (int p = 0; p < kParties; ++p) {
    for (size_t i = 0; i < expected.size(); ++i) {
      float v = static_cast<float>(static_cast<int64_t>(data_rng.NextBelow(2001)) - 1000) /
                64.0f;
      updates[static_cast<size_t>(p)].push_back(v);
      expected[i] += v;
    }
  }
  std::vector<BigUint> acc = codec.Encrypt(updates[0], rng_);
  for (int p = 1; p < kParties; ++p) {
    codec.AccumulateInPlace(acc, codec.Encrypt(updates[static_cast<size_t>(p)], rng_));
  }
  auto sum = codec.DecryptSum(acc, key_.priv, expected.size(), kParties);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(sum[i], expected[i], 1e-3f) << i;
  }
}

TEST_F(PaillierTest, CiphertextSerializationRoundTrip) {
  fl::PaillierVectorCodec codec(key_.pub, 4);
  std::vector<float> v = {1.0f, 2.0f, -3.0f};
  auto ct = codec.Encrypt(v, rng_);
  Bytes wire = fl::SerializeCiphertexts(ct);
  auto back = fl::DeserializeCiphertexts(wire);
  ASSERT_EQ(back.size(), ct.size());
  for (size_t i = 0; i < ct.size(); ++i) {
    EXPECT_EQ(back[i], ct[i]);
  }
}

// --- Lane packing (crypto::PaillierPacker): exact integer semantics ---

TEST_F(PaillierTest, PackerRoundTripsExactSums) {
  const int kAddends = 6;
  PaillierPacker packer(key_.pub, kAddends, /*lane_bits=*/32);
  EXPECT_GT(packer.lanes(), 1);
  SecureRng data_rng(StringToBytes("packer"));
  std::vector<std::vector<int64_t>> vectors(kAddends);
  std::vector<int64_t> expected(37, 0);
  for (auto& vec : vectors) {
    for (size_t i = 0; i < expected.size(); ++i) {
      int64_t v = static_cast<int64_t>(data_rng.NextBelow(2001)) - 1000;
      vec.push_back(v);
      expected[i] += v;
    }
  }
  std::vector<BigUint> acc = PaillierEncryptPacked(key_.pub, packer, vectors[0], rng_);
  for (int a = 1; a < kAddends; ++a) {
    acc = key_.pub.AddCiphertextBatch(
        acc, PaillierEncryptPacked(key_.pub, packer, vectors[static_cast<size_t>(a)],
                                   rng_));
  }
  std::vector<int64_t> sums = PaillierDecryptPackedSum(
      key_.priv, key_.pub, packer, acc, expected.size(), kAddends);
  ASSERT_EQ(sums.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(sums[i], expected[i]) << i;  // exact: packing adds no rounding
  }
}

TEST_F(PaillierTest, PackedMatchesUnpackedCiphertextSums) {
  // The packed aggregate must decrypt to exactly the sums a per-value (one plaintext
  // per ciphertext, offset-free) Paillier aggregation produces.
  PaillierPacker packer(key_.pub, /*max_addends=*/4, /*lane_bits=*/24);
  std::vector<int64_t> a = {5, -3, 1000, -1000, 0, 77, -77};
  std::vector<int64_t> b = {-5, 4, -999, 1001, 12, -6, 7};
  std::vector<BigUint> packed = key_.pub.AddCiphertextBatch(
      PaillierEncryptPacked(key_.pub, packer, a, rng_),
      PaillierEncryptPacked(key_.pub, packer, b, rng_));
  std::vector<int64_t> packed_sums =
      PaillierDecryptPackedSum(key_.priv, key_.pub, packer, packed, a.size(), 2);
  for (size_t i = 0; i < a.size(); ++i) {
    // Unpacked reference: encrypt the nonnegative shifted value per coordinate.
    const int64_t shift = int64_t{1} << 20;
    BigUint ca = key_.pub.Encrypt(BigUint(static_cast<uint64_t>(a[i] + shift)), rng_);
    BigUint cb = key_.pub.Encrypt(BigUint(static_cast<uint64_t>(b[i] + shift)), rng_);
    uint64_t sum = key_.priv.Decrypt(key_.pub.AddCiphertexts(ca, cb), key_.pub).ToU64();
    EXPECT_EQ(packed_sums[i], static_cast<int64_t>(sum) - 2 * shift) << i;
  }
}

TEST_F(PaillierTest, PackerRejectsValuesOutsideBound) {
  PaillierPacker packer(key_.pub, /*max_addends=*/8, /*lane_bits=*/16);
  EXPECT_THROW(packer.Pack({packer.value_bound()}), CheckFailure);
  EXPECT_THROW(packer.Pack({-packer.value_bound()}), CheckFailure);
  EXPECT_NO_THROW(packer.Pack({packer.value_bound() - 1}));
  EXPECT_NO_THROW(packer.Pack({-(packer.value_bound() - 1)}));
}

TEST_F(PaillierTest, PackerBlockCountMatchesPackOutput) {
  PaillierPacker packer(key_.pub, /*max_addends=*/8, /*lane_bits=*/16);
  for (size_t n : {size_t{1}, size_t{7}, size_t{64}, size_t{65}}) {
    std::vector<int64_t> values(n, 3);
    EXPECT_EQ(packer.Pack(values).size(), packer.BlockCount(n)) << n;
  }
}

// The fusion codec (and thus aggregated model parameters) must be bitwise identical
// for any worker count: per-element randomness is pre-drawn sequentially, so the
// thread fan-out only changes who computes each exponentiation, never its inputs.
TEST_F(PaillierTest, VectorCodecBitExactAcrossThreadCounts) {
  std::vector<float> v(50);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<float>(static_cast<int>(i) - 25) * 0.375f;
  }
  std::vector<std::vector<BigUint>> cts;
  std::vector<std::vector<float>> sums;
  for (int threads : {1, 2, 4}) {
    parallel::ScopedThreads scoped(threads);
    SecureRng rng(StringToBytes("thread-determinism"));
    fl::PaillierVectorCodec codec(key_.pub, /*max_parties=*/4);
    std::vector<BigUint> acc = codec.Encrypt(v, rng);
    codec.AccumulateInPlace(acc, codec.Encrypt(v, rng));
    sums.push_back(codec.DecryptSum(acc, key_.priv, v.size(), 2));
    cts.push_back(std::move(acc));
  }
  for (size_t t = 1; t < cts.size(); ++t) {
    ASSERT_EQ(cts[t].size(), cts[0].size());
    for (size_t i = 0; i < cts[0].size(); ++i) {
      EXPECT_EQ(cts[t][i], cts[0][i]) << "threads variant " << t << " block " << i;
    }
    for (size_t i = 0; i < v.size(); ++i) {
      // Bit-exact, not NEAR: same ciphertexts, same integer sums, same floats.
      EXPECT_EQ(sums[t][i], sums[0][i]) << "threads variant " << t << " coord " << i;
    }
  }
}

// --- Versioned private-key persistence (persist/paillier_key_codec.h) ---

TEST_F(PaillierTest, KeyCodecV2RoundTripsCrtExtension) {
  Bytes blob = persist::SerializePaillierKey(key_);
  std::optional<PaillierKeyPair> back = persist::ParsePaillierKey(blob);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->priv.HasCrt());
  EXPECT_EQ(back->pub.n, key_.pub.n);
  EXPECT_EQ(back->priv.p, key_.priv.p);
  EXPECT_EQ(back->priv.q, key_.priv.q);
  BigUint c = key_.pub.Encrypt(BigUint(31337), rng_);
  EXPECT_EQ(back->priv.Decrypt(c, back->pub).ToU64(), 31337u);
  // The reloaded public key must also encrypt (Montgomery cache rebuilt).
  BigUint c2 = back->pub.Encrypt(BigUint(9), rng_);
  EXPECT_EQ(key_.priv.Decrypt(c2, key_.pub).ToU64(), 9u);
}

TEST_F(PaillierTest, KeyCodecLegacyV1LoadsWithoutCrt) {
  // A snapshot written before the CRT extension existed must still resume: same
  // plaintexts through the lambda/mu fallback, just without the speedup.
  Bytes blob = persist::SerializePaillierKeyV1(key_);
  std::optional<PaillierKeyPair> back = persist::ParsePaillierKey(blob);
  ASSERT_TRUE(back.has_value());
  EXPECT_FALSE(back->priv.HasCrt());
  BigUint c = key_.pub.Encrypt(BigUint(424242), rng_);
  EXPECT_EQ(back->priv.Decrypt(c, back->pub).ToU64(), 424242u);
}

TEST_F(PaillierTest, KeyCodecRejectsGarbage) {
  EXPECT_FALSE(persist::ParsePaillierKey({}).has_value());
  EXPECT_FALSE(persist::ParsePaillierKey(StringToBytes("not a key")).has_value());
  Bytes blob = persist::SerializePaillierKey(key_);
  Bytes truncated(blob.begin(), blob.begin() + static_cast<long>(blob.size() / 2));
  EXPECT_FALSE(persist::ParsePaillierKey(truncated).has_value());
  Bytes wrong_version = blob;
  wrong_version[0] = 0x7f;  // version byte far beyond kVersionCrt
  EXPECT_FALSE(persist::ParsePaillierKey(wrong_version).has_value());
}

TEST(PaillierKeyGenTest, DistinctKeysForDistinctSeeds) {
  SecureRng r1(StringToBytes("a")), r2(StringToBytes("b"));
  auto k1 = GeneratePaillierKey(r1, 128);
  auto k2 = GeneratePaillierKey(r2, 128);
  EXPECT_NE(k1.pub.n, k2.pub.n);
  EXPECT_EQ(k1.pub.g, k1.pub.n.Add(BigUint(1)));
}

}  // namespace
}  // namespace deta::crypto
