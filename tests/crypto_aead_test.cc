#include <gtest/gtest.h>

#include "crypto/aead.h"
#include "net/secure_channel.h"

namespace deta::crypto {
namespace {

class AeadTest : public ::testing::Test {
 protected:
  AeadTest() : aead_(StringToBytes("master-key")), rng_(StringToBytes("aead-rng")) {}
  Aead aead_;
  SecureRng rng_;
};

TEST_F(AeadTest, SealOpenRoundTrip) {
  Bytes pt = StringToBytes("model update fragment");
  Bytes ad = StringToBytes("round:3");
  Bytes frame = aead_.Seal(pt, ad, rng_);
  auto opened = aead_.Open(frame, ad);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, pt);
}

TEST_F(AeadTest, EmptyPlaintext) {
  Bytes frame = aead_.Seal({}, {}, rng_);
  auto opened = aead_.Open(frame, {});
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->empty());
}

TEST_F(AeadTest, DistinctNoncesPerSeal) {
  Bytes pt = StringToBytes("same plaintext");
  Bytes f1 = aead_.Seal(pt, {}, rng_);
  Bytes f2 = aead_.Seal(pt, {}, rng_);
  EXPECT_NE(f1, f2);
}

TEST_F(AeadTest, TamperedCiphertextRejected) {
  Bytes frame = aead_.Seal(StringToBytes("secret"), {}, rng_);
  for (size_t i = 0; i < frame.size(); i += 7) {
    Bytes bad = frame;
    bad[i] ^= 0x01;
    EXPECT_FALSE(aead_.Open(bad, {}).has_value()) << "byte " << i;
  }
}

TEST_F(AeadTest, WrongAssociatedDataRejected) {
  Bytes frame = aead_.Seal(StringToBytes("secret"), StringToBytes("chan-A"), rng_);
  EXPECT_FALSE(aead_.Open(frame, StringToBytes("chan-B")).has_value());
}

TEST_F(AeadTest, TruncatedFrameRejected) {
  Bytes frame = aead_.Seal(StringToBytes("secret"), {}, rng_);
  Bytes truncated(frame.begin(), frame.begin() + 10);
  EXPECT_FALSE(aead_.Open(truncated, {}).has_value());
  EXPECT_FALSE(aead_.Open({}, {}).has_value());
}

TEST_F(AeadTest, WrongKeyRejected) {
  Aead other(StringToBytes("different-key"));
  Bytes frame = aead_.Seal(StringToBytes("secret"), {}, rng_);
  EXPECT_FALSE(other.Open(frame, {}).has_value());
}

TEST(SecureChannelTest, BindsFramesToChannelId) {
  SecureRng rng(StringToBytes("chan"));
  Bytes master = StringToBytes("shared-master-secret");
  net::SecureChannel a(master, "chan:party0:aggregator1", net::ChannelRole::kInitiator);
  net::SecureChannel a_peer(master, "chan:party0:aggregator1",
                            net::ChannelRole::kResponder);
  net::SecureChannel b(master, "chan:party0:aggregator2", net::ChannelRole::kResponder);
  Bytes frame = a.Seal(StringToBytes("fragment"), rng);
  EXPECT_TRUE(a_peer.Open(frame).has_value());
  // Same key, different channel id: cross-channel replay is rejected.
  EXPECT_FALSE(b.Open(frame).has_value());
}

TEST(SecureChannelTest, LargePayloadRoundTrip) {
  SecureRng rng(StringToBytes("chan2"));
  net::SecureChannel sender(StringToBytes("k"), "chan:x:y", net::ChannelRole::kInitiator);
  net::SecureChannel receiver(StringToBytes("k"), "chan:x:y",
                              net::ChannelRole::kResponder);
  Bytes big = rng.NextBytes(1 << 18);  // 256 KiB, spans many ChaCha blocks
  Bytes frame = sender.Seal(big, rng);
  auto opened = receiver.Open(frame);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, big);
}

}  // namespace
}  // namespace deta::crypto
