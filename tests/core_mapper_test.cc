#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "common/check.h"
#include "common/rng.h"
#include "core/model_mapper.h"

namespace deta::core {
namespace {

TEST(ModelMapperTest, UniformPartitionSizes) {
  ModelMapper mapper = ModelMapper::Uniform(100, 4, StringToBytes("seed"));
  EXPECT_EQ(mapper.num_partitions(), 4);
  int64_t total = 0;
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(mapper.PartitionSize(p), 25);
    total += mapper.PartitionSize(p);
  }
  EXPECT_EQ(total, 100);
}

TEST(ModelMapperTest, CustomProportions) {
  ModelMapper mapper(1000, {0.6, 0.2, 0.2}, StringToBytes("seed"));
  EXPECT_EQ(mapper.PartitionSize(0), 600);
  EXPECT_EQ(mapper.PartitionSize(1), 200);
  EXPECT_EQ(mapper.PartitionSize(2), 200);
}

TEST(ModelMapperTest, UnnormalizedProportionsNormalized) {
  ModelMapper mapper(100, {3.0, 1.0}, StringToBytes("seed"));
  EXPECT_EQ(mapper.PartitionSize(0), 75);
  EXPECT_EQ(mapper.PartitionSize(1), 25);
}

// Property: partitions are disjoint and cover every coordinate exactly once.
struct MapperParams {
  int64_t total;
  int parts;
};

class MapperPropertyTest : public ::testing::TestWithParam<MapperParams> {};

TEST_P(MapperPropertyTest, PartitionIsExactCover) {
  auto [total, parts] = GetParam();
  ModelMapper mapper = ModelMapper::Uniform(total, parts, StringToBytes("cover"));
  std::set<int64_t> seen;
  for (int p = 0; p < parts; ++p) {
    for (int64_t idx : mapper.PartitionIndices(p)) {
      EXPECT_GE(idx, 0);
      EXPECT_LT(idx, total);
      EXPECT_TRUE(seen.insert(idx).second) << "duplicate index " << idx;
    }
  }
  EXPECT_EQ(static_cast<int64_t>(seen.size()), total);
}

TEST_P(MapperPropertyTest, PartitionMergeRoundTrip) {
  auto [total, parts] = GetParam();
  ModelMapper mapper = ModelMapper::Uniform(total, parts, StringToBytes("roundtrip"));
  Rng rng(static_cast<uint64_t>(total * 31 + parts));
  std::vector<float> flat(static_cast<size_t>(total));
  for (auto& v : flat) {
    v = rng.NextGaussian();
  }
  auto fragments = mapper.Partition(flat);
  EXPECT_EQ(static_cast<int>(fragments.size()), parts);
  EXPECT_EQ(mapper.Merge(fragments), flat);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MapperPropertyTest,
                         ::testing::Values(MapperParams{1, 1}, MapperParams{7, 3},
                                           MapperParams{100, 2}, MapperParams{101, 3},
                                           MapperParams{1000, 7}, MapperParams{4096, 16}),
                         [](const ::testing::TestParamInfo<MapperParams>& info) {
                           return "n" + std::to_string(info.param.total) + "_p" +
                                  std::to_string(info.param.parts);
                         });

TEST(ModelMapperTest, SeedDeterminesAssignment) {
  ModelMapper a = ModelMapper::Uniform(500, 3, StringToBytes("same"));
  ModelMapper b = ModelMapper::Uniform(500, 3, StringToBytes("same"));
  ModelMapper c = ModelMapper::Uniform(500, 3, StringToBytes("different"));
  EXPECT_EQ(a.PartitionIndices(0), b.PartitionIndices(0));
  EXPECT_NE(a.PartitionIndices(0), c.PartitionIndices(0));
}

TEST(ModelMapperTest, AssignmentIsUnbiased) {
  // Each coordinate should land in each of 2 partitions about half the time across seeds.
  const int64_t kTotal = 64;
  std::vector<int> in_first(kTotal, 0);
  const int kTrials = 200;
  for (int t = 0; t < kTrials; ++t) {
    ModelMapper mapper =
        ModelMapper::Uniform(kTotal, 2, StringToBytes("bias" + std::to_string(t)));
    for (int64_t idx : mapper.PartitionIndices(0)) {
      in_first[static_cast<size_t>(idx)]++;
    }
  }
  for (int64_t i = 0; i < kTotal; ++i) {
    EXPECT_GT(in_first[static_cast<size_t>(i)], kTrials / 4) << i;
    EXPECT_LT(in_first[static_cast<size_t>(i)], 3 * kTrials / 4) << i;
  }
}

TEST(ModelMapperTest, MergeRejectsWrongFragmentShapes) {
  ModelMapper mapper = ModelMapper::Uniform(10, 2, StringToBytes("x"));
  auto fragments = mapper.Partition(std::vector<float>(10, 1.0f));
  fragments[0].pop_back();
  EXPECT_THROW(mapper.Merge(fragments), CheckFailure);
  EXPECT_THROW(mapper.Partition(std::vector<float>(9)), CheckFailure);
}

TEST(ModelMapperTest, FragmentLeaksNoArchitectureInfo) {
  // A fragment is a dense vector whose length depends only on the proportion — two models
  // with the same parameter count produce indistinguishable fragment shapes.
  ModelMapper mapper = ModelMapper::Uniform(999, 3, StringToBytes("arch"));
  auto f1 = mapper.Partition(std::vector<float>(999, 1.0f));
  EXPECT_EQ(f1[0].size() + f1[1].size() + f1[2].size(), 999u);
  for (const auto& frag : f1) {
    EXPECT_GT(frag.size(), 300u);
    EXPECT_LT(frag.size(), 350u);
  }
}

}  // namespace
}  // namespace deta::core
