#include <gtest/gtest.h>

#include "cc/attestation_proxy.h"
#include "cc/sev.h"
#include "common/check.h"
#include "crypto/sha256.h"

namespace deta::cc {
namespace {

class SevTest : public ::testing::Test {
 protected:
  SevTest()
      : rng_(StringToBytes("sev-test")),
        ras_(rng_),
        platform_("platform0", ras_, rng_),
        image_(StringToBytes("aggregator-image-v1")) {}

  crypto::SecureRng rng_;
  RemoteAttestationService ras_;
  SevPlatform platform_;
  Bytes image_;
};

TEST_F(SevTest, CertChainVerifies) {
  auto cvm = platform_.LaunchPausedCvm("cvm0", image_);
  AttestationReport report = platform_.GenerateReport(*cvm, rng_.NextBytes(32));
  EXPECT_TRUE(report.chain.Verify(ras_.RootKey()));
}

TEST_F(SevTest, CertChainRejectsWrongRoot) {
  auto cvm = platform_.LaunchPausedCvm("cvm0", image_);
  AttestationReport report = platform_.GenerateReport(*cvm, rng_.NextBytes(32));
  crypto::SecureRng other_rng(StringToBytes("other"));
  RemoteAttestationService rogue_ras(other_rng);
  EXPECT_FALSE(report.chain.Verify(rogue_ras.RootKey()));
}

TEST_F(SevTest, CertChainRejectsSwappedPek) {
  auto cvm = platform_.LaunchPausedCvm("cvm0", image_);
  AttestationReport report = platform_.GenerateReport(*cvm, rng_.NextBytes(32));
  // Substitute an attacker-controlled PEK: the ASK signature no longer covers it.
  crypto::EcKeyPair attacker = crypto::GenerateEcKey(rng_);
  report.chain.pek_public = attacker.public_key;
  EXPECT_FALSE(report.chain.Verify(ras_.RootKey()));
}

TEST_F(SevTest, MeasurementIsImageDigest) {
  auto cvm = platform_.LaunchPausedCvm("cvm0", image_);
  EXPECT_EQ(cvm->measurement(), crypto::Sha256Digest(image_));
  Bytes tampered = image_;
  tampered.push_back(0xff);
  auto evil = platform_.LaunchPausedCvm("cvm1", tampered);
  EXPECT_NE(evil->measurement(), cvm->measurement());
}

TEST_F(SevTest, GuestMemoryEncryptedFromHypervisor) {
  auto cvm = platform_.LaunchPausedCvm("cvm0", image_);
  platform_.Resume(*cvm);
  Bytes secret = StringToBytes("model update fragment data");
  cvm->GuestWrite("updates", secret);

  auto guest_view = cvm->GuestRead("updates");
  ASSERT_TRUE(guest_view.has_value());
  EXPECT_EQ(*guest_view, secret);

  auto hypervisor_view = cvm->HypervisorRead("updates");
  ASSERT_TRUE(hypervisor_view.has_value());
  EXPECT_NE(*hypervisor_view, secret);  // ciphertext only
  EXPECT_EQ(hypervisor_view->size(), secret.size());
}

TEST_F(SevTest, BreachExposesPlaintext) {
  auto cvm = platform_.LaunchPausedCvm("cvm0", image_);
  platform_.Resume(*cvm);
  cvm->GuestWrite("a", StringToBytes("alpha"));
  cvm->GuestWrite("b", StringToBytes("beta"));
  auto dump = cvm->Breach();
  EXPECT_EQ(dump.size(), 2u);
  EXPECT_EQ(BytesToString(dump.at("a")), "alpha");
  EXPECT_EQ(BytesToString(dump.at("b")), "beta");
}

TEST_F(SevTest, GuestAccessRequiresRunningState) {
  auto cvm = platform_.LaunchPausedCvm("cvm0", image_);
  EXPECT_FALSE(cvm->GuestRead("x").has_value());
  EXPECT_THROW(cvm->GuestWrite("x", {}), CheckFailure);
  platform_.Resume(*cvm);
  cvm->GuestWrite("x", StringToBytes("ok"));
  cvm->Terminate();
  EXPECT_FALSE(cvm->GuestRead("x").has_value());
}

TEST_F(SevTest, LaunchSecretInjectionRoundTrip) {
  auto cvm = platform_.LaunchPausedCvm("cvm0", image_);
  Bytes secret = StringToBytes("token-private-key");
  SealedSecret sealed = SealForPlatform(secret, platform_.TransportPublicKey(), rng_);
  EXPECT_TRUE(platform_.InjectLaunchSecret(*cvm, "tok", sealed.ciphertext,
                                           sealed.ephemeral_public));
  platform_.Resume(*cvm);
  auto read = cvm->GuestRead("tok");
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(*read, secret);
}

TEST_F(SevTest, LaunchSecretWrongPlatformFails) {
  SevPlatform other("platform1", ras_, rng_);
  auto cvm = platform_.LaunchPausedCvm("cvm0", image_);
  // Sealed for the *other* platform's transport key: this platform cannot unwrap it.
  SealedSecret sealed =
      SealForPlatform(StringToBytes("secret"), other.TransportPublicKey(), rng_);
  EXPECT_FALSE(platform_.InjectLaunchSecret(*cvm, "tok", sealed.ciphertext,
                                            sealed.ephemeral_public));
}

class AttestationProxyTest : public SevTest {
 protected:
  AttestationProxyTest()
      : proxy_(ras_.RootKey(), crypto::Sha256Digest(image_),
               crypto::SecureRng(StringToBytes("ap"))) {}
  AttestationProxy proxy_;
};

TEST_F(AttestationProxyTest, ProvisionHappyPath) {
  auto cvm = platform_.LaunchPausedCvm("agg0", image_);
  auto result = proxy_.VerifyAndProvision(platform_, *cvm);
  EXPECT_TRUE(result.ok) << result.failure_reason;
  EXPECT_EQ(cvm->state(), Cvm::State::kRunning);
  // Token private key landed in encrypted memory; registry has the public half.
  auto token = cvm->GuestRead(kTokenRegion);
  ASSERT_TRUE(token.has_value());
  crypto::BigUint priv = crypto::BigUint::FromBytes(*token);
  EXPECT_EQ(crypto::Secp256k1::Instance().MulGenerator(priv),
            proxy_.TokenRegistry().at("agg0"));
}

TEST_F(AttestationProxyTest, TamperedImageFailsAttestation) {
  // A malicious aggregator build (e.g. with collusion code) changes the measurement.
  Bytes evil_image = image_;
  evil_image.push_back('!');
  auto cvm = platform_.LaunchPausedCvm("agg0", evil_image);
  auto result = proxy_.VerifyAndProvision(platform_, *cvm);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.failure_reason.find("measurement"), std::string::npos);
  EXPECT_EQ(cvm->state(), Cvm::State::kPaused);  // never resumed
  EXPECT_FALSE(cvm->HypervisorRead(kTokenRegion).has_value());
}

TEST_F(AttestationProxyTest, ForgedPlatformFailsChainVerification) {
  crypto::SecureRng rogue_rng(StringToBytes("rogue"));
  RemoteAttestationService rogue_ras(rogue_rng);
  SevPlatform rogue_platform("rogue", rogue_ras, rogue_rng);
  auto cvm = rogue_platform.LaunchPausedCvm("agg0", image_);
  auto result = proxy_.VerifyAndProvision(rogue_platform, *cvm);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.failure_reason.find("chain"), std::string::npos);
}

TEST_F(AttestationProxyTest, VerifyReportRejectsStaleNonce) {
  auto cvm = platform_.LaunchPausedCvm("agg0", image_);
  Bytes nonce = rng_.NextBytes(32);
  AttestationReport report = platform_.GenerateReport(*cvm, nonce);
  std::string reason;
  EXPECT_TRUE(proxy_.VerifyReport(report, nonce, &reason)) << reason;
  Bytes other_nonce = rng_.NextBytes(32);
  EXPECT_FALSE(proxy_.VerifyReport(report, other_nonce, &reason));
  EXPECT_NE(reason.find("nonce"), std::string::npos);
}

TEST_F(AttestationProxyTest, VerifyReportRejectsTamperedSignature) {
  auto cvm = platform_.LaunchPausedCvm("agg0", image_);
  Bytes nonce = rng_.NextBytes(32);
  AttestationReport report = platform_.GenerateReport(*cvm, nonce);
  report.signature.s = report.signature.s.Add(crypto::BigUint(1));
  std::string reason;
  EXPECT_FALSE(proxy_.VerifyReport(report, nonce, &reason));
}

}  // namespace
}  // namespace deta::cc
