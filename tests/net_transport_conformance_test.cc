// Transport conformance: every protocol-level behavior must be identical whether the
// roles talk over the in-process MessageBus or over real TCP sockets. The suite runs
// the auth handshake, the key-broker fetch, a full training job (clean, 5% message
// loss, and crash/resume) against both backends and asserts the final model parameters
// are bitwise-identical — including a distributed scenario where every role lives on
// its own TcpTransport node, exactly like a deta_cluster process would.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <thread>

#include "core/auth_protocol.h"
#include "core/cluster.h"
#include "core/deta_job.h"
#include "core/key_broker.h"
#include "net/message_bus.h"
#include "net/tcp_transport.h"

namespace deta::core {
namespace {

std::unique_ptr<net::Transport> MakeBackend(const std::string& which) {
  if (which == "tcp") {
    net::TcpTransportOptions options;
    options.node_name = "conformance";
    return std::make_unique<net::TcpTransport>(options);
  }
  return std::make_unique<net::MessageBus>();
}

ClusterSpec SmallSpec() {
  ClusterSpec spec;
  spec.parties = 3;
  spec.aggregators = 2;
  spec.rounds = 2;
  spec.seed = 1234;
  // Generous deadlines + retries: TCP adds scheduling latency the in-proc bus does not
  // have, and the suite must stay robust on sanitizer-slowed CI machines.
  spec.round_timeout_ms = 30000;
  spec.setup_timeout_ms = 180000;
  return spec;
}

// Runs the spec's job with every role local. |transport| null = the job's own
// MessageBus (the pre-transport-subsystem code path, which existing DetaJob tests pin
// against the centralized baseline — matching it means matching the pre-PR result).
fl::JobResult RunAllLocal(const ClusterSpec& spec, net::Transport* transport,
                          const std::string& checkpoint_dir = "") {
  fl::ExecutionOptions options = BuildExecutionOptions(spec);
  options.retry.max_attempts = 10;
  options.retry.max_timeout_ms = 8000;
  options.checkpoint.dir = checkpoint_dir;
  DetaDeployment deployment;
  deployment.transport = transport;
  DetaJob job(options, BuildDetaOptions(spec), BuildLocalParties(spec, spec.PartyNames()),
              ClusterModelFactory(spec), ClusterEvalData(spec), deployment);
  return job.Run();
}

// The clean in-proc reference every scenario compares against, cached per seed.
const std::vector<float>& CleanReference() {
  static const std::vector<float>* params = [] {
    fl::JobResult r = RunAllLocal(SmallSpec(), nullptr);
    EXPECT_TRUE(r.ok()) << r.error;
    EXPECT_FALSE(r.final_params.empty());
    return new std::vector<float>(r.final_params);
  }();
  return *params;
}

std::string UniqueDir(const std::string& tag) {
  static int counter = 0;
  std::string dir = ::testing::TempDir() + "conformance_" + tag + "_" +
                    std::to_string(::getpid()) + "_" + std::to_string(counter++);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return dir;
}

class TransportConformanceTest : public ::testing::TestWithParam<const char*> {};

INSTANTIATE_TEST_SUITE_P(Backends, TransportConformanceTest,
                         ::testing::Values("inproc", "tcp"),
                         [](const auto& info) { return std::string(info.param); });

TEST_P(TransportConformanceTest, AuthHandshakeVerifiesAndRejects) {
  std::unique_ptr<net::Transport> transport = MakeBackend(GetParam());
  auto party = transport->CreateEndpoint("party0");
  auto aggregator = transport->CreateEndpoint("agg0");
  crypto::SecureRng rng(StringToBytes("conformance-auth"));
  crypto::EcKeyPair token = crypto::GenerateEcKey(rng);
  crypto::EcKeyPair impostor = crypto::GenerateEcKey(rng);

  std::thread responder([&] {
    for (int i = 0; i < 2; ++i) {
      auto m = aggregator->ReceiveType(kAuthChallenge);
      ASSERT_TRUE(m.has_value());
      // Answer the first challenge with the provisioned token, the second with an
      // impostor key: the verifier must accept exactly one of them on any backend.
      AnswerChallenge(*aggregator, *m, i == 0 ? token.private_key : impostor.private_key);
    }
  });
  EXPECT_TRUE(VerifyAggregator(*party, "agg0", token.public_key, rng));
  EXPECT_FALSE(VerifyAggregator(*party, "agg0", token.public_key, rng));
  responder.join();
}

TEST_P(TransportConformanceTest, KeyFetchServesIdenticalMaterial) {
  std::unique_ptr<net::Transport> transport = MakeBackend(GetParam());
  crypto::SecureRng setup_rng(StringToBytes("conformance-kb"));
  crypto::EcKeyPair identity = crypto::GenerateEcKey(setup_rng);
  TransformMaterial material;
  material.permutation_key =
      Secret<Bytes>(GeneratePermutationKey(128, StringToBytes("conformance")));
  material.mapper_seed = Secret<Bytes>(StringToBytes("conformance-mapper-seed"));
  material.total_params = 1000;
  material.num_aggregators = 2;
  KeyBroker broker(material, identity, /*expected_parties=*/2, *transport,
                   crypto::SecureRng(setup_rng.NextBytes(32)));
  broker.Start();

  auto fetch = [&](const std::string& name) -> std::optional<TransformMaterial> {
    auto endpoint = transport->CreateEndpoint(name);
    crypto::SecureRng rng(StringToBytes("party-" + name));
    return FetchTransformMaterial(*endpoint, identity.public_key, rng);
  };
  std::optional<TransformMaterial> m1, m2;
  std::thread t1([&] { m1 = fetch("party0"); });
  std::thread t2([&] { m2 = fetch("party1"); });
  t1.join();
  t2.join();
  broker.Join();

  ASSERT_TRUE(m1.has_value());
  ASSERT_TRUE(m2.has_value());
  EXPECT_EQ(m1->permutation_key, material.permutation_key);
  EXPECT_EQ(m2->permutation_key, material.permutation_key);
  EXPECT_EQ(m1->mapper_seed, material.mapper_seed);
}

TEST_P(TransportConformanceTest, FullRoundMatchesInProcReferenceBitExactly) {
  std::unique_ptr<net::Transport> transport = MakeBackend(GetParam());
  fl::JobResult r = RunAllLocal(SmallSpec(), transport.get());
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.final_params, CleanReference());
  ASSERT_EQ(r.rounds.size(), 2u);
  // The scale-harness inputs must be populated on any backend: per-round wall time and
  // one upload RTT per party per round.
  for (const auto& m : r.rounds) {
    EXPECT_GT(m.wall_seconds, 0.0);
    EXPECT_EQ(m.party_rtts_s.size(), 3u);
  }
}

TEST_P(TransportConformanceTest, FivePercentDropStillConvergesBitExactly) {
  ClusterSpec spec = SmallSpec();
  spec.drop_probability = 0.05;
  std::unique_ptr<net::Transport> transport = MakeBackend(GetParam());
  fl::JobResult r = RunAllLocal(spec, transport.get());
  ASSERT_TRUE(r.ok()) << r.error;
  // Retransmission recovers every loss: the faulty run trains the exact model of the
  // fault-free in-proc run, on either backend.
  EXPECT_EQ(r.final_params, CleanReference());
}

TEST_P(TransportConformanceTest, PartyCrashResumeIsLossless) {
  ClusterSpec spec = SmallSpec();
  fl::ExecutionOptions options = BuildExecutionOptions(spec);
  options.retry.max_attempts = 10;
  options.retry.max_timeout_ms = 8000;
  options.checkpoint.dir = UniqueDir(GetParam());
  options.fault_plan.crashes.push_back({"party1", 2});
  std::unique_ptr<net::Transport> transport = MakeBackend(GetParam());
  DetaDeployment deployment;
  deployment.transport = transport.get();
  DetaJob job(options, BuildDetaOptions(spec), BuildLocalParties(spec, spec.PartyNames()),
              ClusterModelFactory(spec), ClusterEvalData(spec), deployment);
  fl::JobResult r = job.Run();
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.telemetry.counters.at("persist.crash.injected"), 1u);
  EXPECT_GE(r.telemetry.counters.at("persist.role_revived"), 1u);
  EXPECT_EQ(r.final_params, CleanReference());
}

// Distributed scenario: every role on its own TcpTransport node (one registry node +
// one client node per role), each running a role-filtered DetaJob exactly like one
// deta_cluster child process — but on threads, so the test stays single-process.
TEST(TransportDistributedTest, MultiNodeJobMatchesInProcReferenceBitExactly) {
  ClusterSpec spec = SmallSpec();

  net::TcpTransportOptions host_options;
  host_options.node_name = "observer-node";
  net::TcpTransport host(host_options);
  std::string registry = host.registry_address();

  std::vector<std::string> worker_roles = spec.AggregatorNames();
  for (const std::string& p : spec.PartyNames()) {
    worker_roles.push_back(p);
  }
  worker_roles.push_back(KeyBroker::kEndpointName);

  auto run_role = [&spec, &registry](const std::string& role, fl::JobResult* out) {
    net::TcpTransportOptions options;
    options.registry_addr = registry;
    options.node_name = role + "-node";
    net::TcpTransport transport(options);
    fl::ExecutionOptions exec = BuildExecutionOptions(spec);
    exec.retry.max_attempts = 10;
    exec.retry.max_timeout_ms = 8000;
    DetaDeployment deployment;
    deployment.transport = &transport;
    deployment.local_roles = {role};
    deployment.party_names = spec.PartyNames();
    std::vector<std::string> local_parties;
    for (const std::string& p : spec.PartyNames()) {
      if (p == role) {
        local_parties.push_back(p);
      }
    }
    DetaJob job(exec, BuildDetaOptions(spec), BuildLocalParties(spec, local_parties),
                ClusterModelFactory(spec), ClusterEvalData(spec), deployment);
    *out = job.Run();
  };

  std::vector<fl::JobResult> worker_results(worker_roles.size());
  std::vector<std::thread> workers;
  for (size_t i = 0; i < worker_roles.size(); ++i) {
    workers.emplace_back(run_role, worker_roles[i], &worker_results[i]);
  }

  fl::ExecutionOptions exec = BuildExecutionOptions(spec);
  exec.retry.max_attempts = 10;
  exec.retry.max_timeout_ms = 8000;
  DetaDeployment deployment;
  deployment.transport = &host;
  deployment.local_roles = {"observer"};
  deployment.party_names = spec.PartyNames();
  DetaJob observer(exec, BuildDetaOptions(spec), {}, ClusterModelFactory(spec),
                   ClusterEvalData(spec), deployment);
  fl::JobResult r = observer.Run();
  for (std::thread& w : workers) {
    w.join();
  }

  ASSERT_TRUE(r.ok()) << r.error;
  for (size_t i = 0; i < worker_roles.size(); ++i) {
    SCOPED_TRACE(worker_roles[i]);
    EXPECT_TRUE(worker_results[i].ok()) << worker_results[i].error;
  }
  EXPECT_EQ(r.final_params, CleanReference());
  // Every hosted party's copy of the merged model agrees with the observer's.
  for (size_t i = 0; i < worker_roles.size(); ++i) {
    if (worker_roles[i].rfind("party", 0) == 0) {
      SCOPED_TRACE(worker_roles[i]);
      EXPECT_EQ(worker_results[i].final_params, r.final_params);
    }
  }
}

}  // namespace
}  // namespace deta::core
