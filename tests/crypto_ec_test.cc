#include <gtest/gtest.h>

#include "crypto/ec.h"
#include "crypto/ecdsa.h"

namespace deta::crypto {
namespace {

const Secp256k1& Curve() { return Secp256k1::Instance(); }

TEST(EcTest, GeneratorOnCurve) {
  EXPECT_TRUE(Curve().IsOnCurve(Curve().generator()));
}

TEST(EcTest, InfinityIdentities) {
  EcPoint inf;
  EXPECT_TRUE(Curve().IsOnCurve(inf));
  EXPECT_EQ(Curve().Add(inf, Curve().generator()), Curve().generator());
  EXPECT_EQ(Curve().Add(Curve().generator(), inf), Curve().generator());
}

TEST(EcTest, OrderTimesGeneratorIsInfinity) {
  EcPoint result = Curve().MulGenerator(Curve().n());
  EXPECT_TRUE(result.is_infinity);
}

TEST(EcTest, KnownMultiple2G) {
  // 2G for secp256k1 (public test vector).
  EcPoint two_g = Curve().Double(Curve().generator());
  EXPECT_EQ(two_g.x.ToHexString(),
            "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5");
  EXPECT_EQ(two_g.y.ToHexString(),
            "1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a");
}

TEST(EcTest, AdditionCommutesAndAssociates) {
  SecureRng rng(StringToBytes("ec"));
  EcPoint p = Curve().MulGenerator(BigUint::RandomBelow(rng, Curve().n()));
  EcPoint q = Curve().MulGenerator(BigUint::RandomBelow(rng, Curve().n()));
  EcPoint r = Curve().MulGenerator(BigUint::RandomBelow(rng, Curve().n()));
  EXPECT_EQ(Curve().Add(p, q), Curve().Add(q, p));
  EXPECT_EQ(Curve().Add(Curve().Add(p, q), r), Curve().Add(p, Curve().Add(q, r)));
}

TEST(EcTest, ScalarMulDistributes) {
  SecureRng rng(StringToBytes("ec2"));
  BigUint a = BigUint::RandomBelow(rng, BigUint(1000000));
  BigUint b = BigUint::RandomBelow(rng, BigUint(1000000));
  // (a + b) G == aG + bG
  EcPoint lhs = Curve().MulGenerator(a.Add(b));
  EcPoint rhs = Curve().Add(Curve().MulGenerator(a), Curve().MulGenerator(b));
  EXPECT_EQ(lhs, rhs);
}

TEST(EcTest, EncodeDecodeRoundTrip) {
  SecureRng rng(StringToBytes("ec3"));
  EcKeyPair key = GenerateEcKey(rng);
  Bytes encoded = Curve().Encode(key.public_key);
  EXPECT_EQ(encoded.size(), 65u);
  EXPECT_EQ(encoded[0], 0x04);
  auto decoded = Curve().Decode(encoded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, key.public_key);
  // Infinity encodes to a single zero byte.
  EXPECT_EQ(Curve().Encode(EcPoint{}), Bytes{0x00});
  EXPECT_TRUE(Curve().Decode(Bytes{0x00})->is_infinity);
}

TEST(EcTest, DecodeRejectsOffCurvePoint) {
  Bytes bogus(65, 0x01);
  bogus[0] = 0x04;
  EXPECT_FALSE(Curve().Decode(bogus).has_value());
  EXPECT_FALSE(Curve().Decode(Bytes{0x01, 0x02}).has_value());
}

TEST(EcdhTest, SharedSecretAgreement) {
  SecureRng rng(StringToBytes("ecdh"));
  EcKeyPair alice = GenerateEcKey(rng);
  EcKeyPair bob = GenerateEcKey(rng);
  Bytes s1 = EcdhSharedSecret(alice.private_key, bob.public_key);
  Bytes s2 = EcdhSharedSecret(bob.private_key, alice.public_key);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1.size(), 32u);
  // Third party derives something different.
  EcKeyPair eve = GenerateEcKey(rng);
  EXPECT_NE(EcdhSharedSecret(eve.private_key, bob.public_key), s1);
}

TEST(EcdsaTest, SignVerifyRoundTrip) {
  SecureRng rng(StringToBytes("ecdsa"));
  EcKeyPair key = GenerateEcKey(rng);
  Bytes message = StringToBytes("attest me");
  EcdsaSignature sig = EcdsaSign(key.private_key, message);
  EXPECT_TRUE(EcdsaVerify(key.public_key, message, sig));
}

TEST(EcdsaTest, VerifyRejectsWrongMessage) {
  SecureRng rng(StringToBytes("ecdsa2"));
  EcKeyPair key = GenerateEcKey(rng);
  EcdsaSignature sig = EcdsaSign(key.private_key, StringToBytes("hello"));
  EXPECT_FALSE(EcdsaVerify(key.public_key, StringToBytes("hellp"), sig));
}

TEST(EcdsaTest, VerifyRejectsWrongKey) {
  SecureRng rng(StringToBytes("ecdsa3"));
  EcKeyPair key = GenerateEcKey(rng);
  EcKeyPair other = GenerateEcKey(rng);
  Bytes message = StringToBytes("msg");
  EcdsaSignature sig = EcdsaSign(key.private_key, message);
  EXPECT_FALSE(EcdsaVerify(other.public_key, message, sig));
}

TEST(EcdsaTest, VerifyRejectsTamperedSignature) {
  SecureRng rng(StringToBytes("ecdsa4"));
  EcKeyPair key = GenerateEcKey(rng);
  Bytes message = StringToBytes("msg");
  EcdsaSignature sig = EcdsaSign(key.private_key, message);
  EcdsaSignature bad = sig;
  bad.s = bad.s.Add(BigUint(1));
  EXPECT_FALSE(EcdsaVerify(key.public_key, message, bad));
  EcdsaSignature zero;
  EXPECT_FALSE(EcdsaVerify(key.public_key, message, zero));
}

TEST(EcdsaTest, DeterministicSignatures) {
  // RFC 6979-style nonces: same key + message -> same signature (no RNG needed).
  SecureRng rng(StringToBytes("ecdsa5"));
  EcKeyPair key = GenerateEcKey(rng);
  Bytes message = StringToBytes("stable");
  EcdsaSignature s1 = EcdsaSign(key.private_key, message);
  EcdsaSignature s2 = EcdsaSign(key.private_key, message);
  EXPECT_EQ(s1.r, s2.r);
  EXPECT_EQ(s1.s, s2.s);
}

TEST(EcdsaTest, SerializationRoundTrip) {
  SecureRng rng(StringToBytes("ecdsa6"));
  EcKeyPair key = GenerateEcKey(rng);
  EcdsaSignature sig = EcdsaSign(key.private_key, StringToBytes("wire"));
  Bytes wire = sig.Serialize();
  EXPECT_EQ(wire.size(), 64u);
  EcdsaSignature back = EcdsaSignature::Deserialize(wire);
  EXPECT_EQ(back.r, sig.r);
  EXPECT_EQ(back.s, sig.s);
}

}  // namespace
}  // namespace deta::crypto
