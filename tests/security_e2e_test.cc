// End-to-end security analysis (paper §6 worst case), wired through the *real* system:
// run a DeTA training round, breach every aggregator CVM (simulated SEV compromise),
// reassemble what the adversary actually holds, and run the DLG attack on it.
//
// This differs from attacks_test.cc, which models the observation directly: here the
// fragments come out of the breached CVMs of a live threaded deployment.
#include <gtest/gtest.h>

#include "attacks/gradient_inversion.h"
#include "core/deta_job.h"

namespace deta {
namespace {

struct PipelineRun {
  std::unique_ptr<core::DetaJob> job;
  std::vector<fl::ModelUpdate> breached_fragments;  // per aggregator, party0's fragment
  data::Dataset party0_data;
  std::vector<float> initial_params;
};

// Runs one FedSGD round with a single-example party0 shard, then breaches all CVMs.
PipelineRun RunAndBreach(bool enable_shuffle) {
  auto factory = [] {
    Rng rng(1234);
    return nn::BuildLeNet(1, 16, 10, rng);
  };

  data::SyntheticConfig dc;
  dc.num_examples = 8;
  dc.classes = 10;
  dc.channels = 1;
  dc.image_size = 16;
  dc.style = data::ImageStyle::kBlobs;
  dc.seed = 11;
  dc.prototype_seed = 101;
  data::Dataset full = data::GenerateSynthetic(dc);

  fl::TrainConfig tc;
  tc.kind = fl::TrainConfig::UpdateKind::kGradient;
  tc.batch_size = 1;
  tc.lr = 0.1f;

  PipelineRun run;
  // party0 holds exactly one example: its uploaded gradient is the attack target.
  run.party0_data = full.Subset({0});
  data::Dataset party1_data = full.Subset({1, 2, 3});

  std::vector<std::unique_ptr<fl::Party>> parties;
  parties.push_back(std::make_unique<fl::Party>("party0", run.party0_data, factory, tc, 1));
  parties.push_back(std::make_unique<fl::Party>("party1", party1_data, factory, tc, 2));

  fl::ExecutionOptions options;
  options.rounds = 1;
  options.train = tc;
  core::DetaOptions deta_options;
  deta_options.num_aggregators = 2;
  deta_options.enable_partition = true;
  deta_options.enable_shuffle = enable_shuffle;

  run.job = std::make_unique<core::DetaJob>(options, deta_options, std::move(parties),
                                            factory, full.Subset({4, 5, 6, 7}));
  {
    auto model = factory();
    run.initial_params = model->GetFlatParams();
  }
  run.job->Run();

  // The SEV breach: dump each aggregator CVM and pull party0's staged fragment.
  for (const auto& cvm : run.job->aggregator_cvms()) {
    auto dump = cvm->Breach();
    auto it = dump.find("update:party0:r1");
    EXPECT_NE(it, dump.end()) << "CVM " << cvm->id() << " holds no fragment from party0";
    if (it != dump.end()) {
      run.breached_fragments.push_back(fl::DeserializeUpdate(it->second));
    }
  }
  return run;
}

TEST(SecurityE2eTest, BreachYieldsDisjointFragmentsCoveringTheUpdate) {
  PipelineRun run = RunAndBreach(/*enable_shuffle=*/true);
  ASSERT_EQ(run.breached_fragments.size(), 2u);
  size_t total = 0;
  for (const auto& fragment : run.breached_fragments) {
    total += fragment.values.size();
  }
  EXPECT_EQ(total, run.initial_params.size());
  // No aggregator holds more than its share.
  for (const auto& fragment : run.breached_fragments) {
    EXPECT_LT(fragment.values.size(), run.initial_params.size());
  }
}

TEST(SecurityE2eTest, BreachedFragmentsAreTheTransformedVictimGradient) {
  // The leaked fragments must be exactly Trans(victim_gradient): reassembling them with
  // the *party-held* transform recovers the true gradient (the adversary cannot do this —
  // it lacks the mapper and the permutation key).
  PipelineRun run = RunAndBreach(/*enable_shuffle=*/true);
  ASSERT_EQ(run.breached_fragments.size(), 2u);

  auto factory = [] {
    Rng rng(1234);
    return nn::BuildLeNet(1, 16, 10, rng);
  };
  auto model = factory();
  std::vector<float> victim_grad = attacks::VictimGradient(
      *model, run.party0_data.Example(0), run.party0_data.labels[0], 10);

  std::vector<std::vector<float>> fragments;
  for (const auto& f : run.breached_fragments) {
    fragments.push_back(f.values);
  }
  std::vector<float> recovered = run.job->transform().Invert(fragments, /*round=*/1);
  ASSERT_EQ(recovered.size(), victim_grad.size());
  float max_diff = 0.0f;
  for (size_t i = 0; i < recovered.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(recovered[i] - victim_grad[i]));
  }
  EXPECT_LT(max_diff, 1e-6f);
}

TEST(SecurityE2eTest, DlgOnBreachedShuffledFragmentFails) {
  // The adversary's best case: it breached aggregator 0, and we even grant it the model
  // mapper (position oracle). The fragment's values are still shuffled with the
  // party-held key, so DLG cannot reconstruct.
  PipelineRun run = RunAndBreach(/*enable_shuffle=*/true);

  auto factory = [] {
    Rng rng(1234);
    return nn::BuildLeNet(1, 16, 10, rng);
  };
  auto model = factory();

  // Build the observation from the *actual* breached material, granting the adversary
  // even the model mapper (position oracle): the fragment values remain permuted by the
  // party-held key, and that alone defeats the attack.
  attacks::Observation obs;
  obs.true_indices = run.job->transform().mapper().PartitionIndices(0);
  obs.attack_indices = obs.true_indices;
  obs.observed_values = run.breached_fragments[0].values;

  attacks::AttackConfig config;
  config.kind = attacks::AttackKind::kDlg;
  config.iterations = 40;
  attacks::AttackResult result = attacks::RunAttackOnObservation(
      *model, obs, run.party0_data.Example(0), run.party0_data.labels[0], 10, config);
  EXPECT_GT(result.mse, 1.0) << "breached shuffled fragment must not reconstruct";
}

TEST(SecurityE2eTest, HypervisorViewIsCiphertextEvenWithoutBreach) {
  PipelineRun run = RunAndBreach(/*enable_shuffle=*/true);
  const auto& cvm = run.job->aggregator_cvms()[0];
  auto ciphertext = cvm->HypervisorRead("update:party0:r1");
  ASSERT_TRUE(ciphertext.has_value());
  Bytes plaintext = fl::SerializeUpdate(run.breached_fragments[0]);
  EXPECT_NE(*ciphertext, plaintext);  // SEV memory encryption holds without a CPU exploit
}

}  // namespace
}  // namespace deta
