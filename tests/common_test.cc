#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/bytes.h"
#include "common/check.h"
#include "common/queue.h"
#include "common/rng.h"
#include "common/sim_clock.h"

namespace deta {
namespace {

TEST(BytesTest, HexRoundTrip) {
  Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(ToHex(data), "0001abff7f");
  EXPECT_EQ(FromHex("0001abff7f"), data);
  EXPECT_EQ(FromHex("0001ABFF7F"), data);
}

TEST(BytesTest, HexRejectsMalformed) {
  EXPECT_THROW(FromHex("abc"), CheckFailure);   // odd length
  EXPECT_THROW(FromHex("zz"), CheckFailure);    // non-hex digit
}

TEST(BytesTest, StringConversion) {
  EXPECT_EQ(BytesToString(StringToBytes("hello")), "hello");
  EXPECT_TRUE(StringToBytes("").empty());
}

TEST(BytesTest, IntegerAppendRead) {
  Bytes buffer;
  AppendU32(buffer, 0xdeadbeef);
  AppendU64(buffer, 0x0123456789abcdefULL);
  EXPECT_EQ(ReadU32(buffer, 0), 0xdeadbeefu);
  EXPECT_EQ(ReadU64(buffer, 4), 0x0123456789abcdefULL);
}

TEST(BytesTest, ReadOutOfBoundsThrows) {
  Bytes buffer = {1, 2, 3};
  EXPECT_THROW(ReadU32(buffer, 0), CheckFailure);
  EXPECT_THROW(ReadU64(buffer, 0), CheckFailure);
}

TEST(BytesTest, ConstantTimeEqual) {
  EXPECT_TRUE(ConstantTimeEqual({1, 2, 3}, {1, 2, 3}));
  EXPECT_FALSE(ConstantTimeEqual({1, 2, 3}, {1, 2, 4}));
  EXPECT_FALSE(ConstantTimeEqual({1, 2}, {1, 2, 3}));
  EXPECT_TRUE(ConstantTimeEqual({}, {}));
}

TEST(CheckTest, MacrosThrowWithContext) {
  EXPECT_NO_THROW(DETA_CHECK(true));
  try {
    DETA_CHECK_MSG(false, "custom detail " << 42);
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("custom detail 42"), std::string::npos);
  }
  EXPECT_THROW(DETA_CHECK_EQ(1, 2), CheckFailure);
  EXPECT_THROW(DETA_CHECK_LT(2, 1), CheckFailure);
  EXPECT_NO_THROW(DETA_CHECK_LE(2, 2));
  EXPECT_NO_THROW(DETA_CHECK_GE(2, 2));
  EXPECT_THROW(DETA_CHECK_NE(3, 3), CheckFailure);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowRejectsZero) {
  Rng rng(7);
  EXPECT_THROW(rng.NextBelow(0), CheckFailure);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(5);
  Rng child1 = parent.Fork(1);
  Rng child2 = parent.Fork(2);
  EXPECT_NE(child1.NextU64(), child2.NextU64());
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) {
    v[static_cast<size_t>(i)] = i;
  }
  auto original = v;
  rng.Shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(QueueTest, FifoOrder) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Push(3);
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_EQ(q.Pop(), 2);
  EXPECT_EQ(q.Pop(), 3);
}

TEST(QueueTest, TryPopEmptyReturnsNullopt) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.TryPop().has_value());
  q.Push(42);
  EXPECT_EQ(q.TryPop(), 42);
}

TEST(QueueTest, CloseUnblocksWaiters) {
  BlockingQueue<int> q;
  std::atomic<bool> got_nullopt{false};
  std::thread waiter([&] {
    auto v = q.Pop();
    got_nullopt = !v.has_value();
  });
  q.Close();
  waiter.join();
  EXPECT_TRUE(got_nullopt);
}

TEST(QueueTest, PushAfterCloseDropped) {
  BlockingQueue<int> q;
  q.Close();
  q.Push(1);
  EXPECT_EQ(q.size(), 0u);
}

TEST(QueueTest, CrossThreadTransfer) {
  BlockingQueue<int> q;
  const int kCount = 1000;
  std::thread producer([&] {
    for (int i = 0; i < kCount; ++i) {
      q.Push(i);
    }
  });
  int sum = 0;
  for (int i = 0; i < kCount; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    sum += *v;
  }
  producer.join();
  EXPECT_EQ(sum, kCount * (kCount - 1) / 2);
}

TEST(SimClockTest, AdvanceAccumulates) {
  SimClock clock;
  clock.Advance(1.5);
  clock.Advance(0.5);
  EXPECT_DOUBLE_EQ(clock.seconds(), 2.0);
  clock.AdvanceTo(1.0);  // no-op, already past
  EXPECT_DOUBLE_EQ(clock.seconds(), 2.0);
  clock.AdvanceTo(3.0);
  EXPECT_DOUBLE_EQ(clock.seconds(), 3.0);
  clock.Reset();
  EXPECT_DOUBLE_EQ(clock.seconds(), 0.0);
}

TEST(SimClockTest, LatencyModelTransfer) {
  LatencyModel lm;
  lm.rtt_seconds = 0.01;
  lm.bandwidth_bytes_per_sec = 1000.0;
  EXPECT_DOUBLE_EQ(lm.TransferSeconds(0), 0.01);
  EXPECT_DOUBLE_EQ(lm.TransferSeconds(500), 0.01 + 0.5);
}

TEST(StopwatchTest, MeasuresThreadCpuTime) {
  Stopwatch watch;
  // Burn a little CPU.
  volatile double x = 1.0;
  for (int i = 0; i < 2000000; ++i) {
    x = x * 1.0000001;
  }
  EXPECT_GT(watch.ElapsedSeconds(), 0.0);
}

}  // namespace
}  // namespace deta
