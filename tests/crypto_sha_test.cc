// SHA-256 / HMAC / HKDF / ChaCha20 against published test vectors (FIPS 180-4 examples,
// RFC 4231, RFC 5869, RFC 8439).
#include <gtest/gtest.h>

#include "crypto/chacha20.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace deta::crypto {
namespace {

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(ToHex(Sha256Digest(Bytes{})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(ToHex(Sha256Digest(StringToBytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(ToHex(Sha256Digest(StringToBytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Bytes input(1000000, 'a');
  EXPECT_EQ(ToHex(Sha256Digest(input)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Bytes input = StringToBytes("the quick brown fox jumps over the lazy dog, repeatedly");
  Sha256 h;
  // Feed in awkward chunk sizes crossing block boundaries.
  size_t pos = 0;
  for (size_t chunk : {1u, 3u, 7u, 13u, 64u, 100u}) {
    size_t take = std::min(chunk, input.size() - pos);
    h.Update(input.data() + pos, take);
    pos += take;
  }
  h.Update(input.data() + pos, input.size() - pos);
  auto digest = h.Finish();
  EXPECT_EQ(Bytes(digest.begin(), digest.end()), Sha256Digest(input));
}

TEST(Sha256Test, ExactBlockBoundaries) {
  for (size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 128u}) {
    Bytes input(len, 0x5a);
    Sha256 h;
    h.Update(input);
    auto digest = h.Finish();
    EXPECT_EQ(Bytes(digest.begin(), digest.end()), Sha256Digest(input)) << "len=" << len;
  }
}

// RFC 4231 test case 1.
TEST(HmacTest, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(ToHex(HmacSha256(key, StringToBytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2 ("Jefe").
TEST(HmacTest, Rfc4231Case2) {
  EXPECT_EQ(ToHex(HmacSha256(StringToBytes("Jefe"),
                             StringToBytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3: 20-byte 0xaa key, 50-byte 0xdd data.
TEST(HmacTest, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes data(50, 0xdd);
  EXPECT_EQ(ToHex(HmacSha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 6: key longer than the block size.
TEST(HmacTest, Rfc4231Case6LongKey) {
  Bytes key(131, 0xaa);
  EXPECT_EQ(ToHex(HmacSha256(
                key, StringToBytes("Test Using Larger Than Block-Size Key - Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// RFC 5869 test case 1.
TEST(HkdfTest, Rfc5869Case1) {
  Bytes ikm(22, 0x0b);
  Bytes salt = FromHex("000102030405060708090a0b0c");
  Bytes info = FromHex("f0f1f2f3f4f5f6f7f8f9");
  Bytes prk = HkdfExtract(salt, ikm);
  EXPECT_EQ(ToHex(prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");
  Bytes okm = HkdfExpand(prk, info, 42);
  EXPECT_EQ(ToHex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

// RFC 5869 test case 3: empty salt and info.
TEST(HkdfTest, Rfc5869Case3) {
  Bytes ikm(22, 0x0b);
  Bytes okm = Hkdf(Bytes{}, ikm, Bytes{}, 42);
  EXPECT_EQ(ToHex(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

// RFC 8439 §2.4.2 ChaCha20 encryption example.
TEST(ChaCha20Test, Rfc8439Example) {
  std::array<uint8_t, kChaChaKeySize> key;
  for (size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<uint8_t>(i);
  }
  std::array<uint8_t, kChaChaNonceSize> nonce = {0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                                                 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  Bytes plaintext = StringToBytes(
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.");
  Bytes ciphertext = ChaCha20Xor(key, nonce, 1, plaintext);
  EXPECT_EQ(ToHex(Bytes(ciphertext.begin(), ciphertext.begin() + 32)),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b");
  // Decryption is the same operation.
  EXPECT_EQ(ChaCha20Xor(key, nonce, 1, ciphertext), plaintext);
}

TEST(SecureRngTest, DeterministicFromSeed) {
  SecureRng a(StringToBytes("seed"));
  SecureRng b(StringToBytes("seed"));
  EXPECT_EQ(a.NextBytes(64), b.NextBytes(64));
  SecureRng c(StringToBytes("other"));
  EXPECT_NE(SecureRng(StringToBytes("seed")).NextBytes(32), c.NextBytes(32));
}

TEST(SecureRngTest, NextBelowUnbiasedRange) {
  SecureRng rng(StringToBytes("x"));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(SecureRngTest, ByteDistributionRoughlyUniform) {
  SecureRng rng(StringToBytes("dist"));
  std::vector<int> counts(256, 0);
  const int n = 256 * 64;
  for (int i = 0; i < n; ++i) {
    counts[rng.NextByte()]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, 16);   // expectation 64; crude sanity bound
    EXPECT_LT(c, 160);
  }
}

}  // namespace
}  // namespace deta::crypto
