// Durable snapshot layer tests: codec integrity (any truncation or bit flip is
// rejected whole), sealed-section confidentiality, the StateStore's
// generation/retention/fallback behavior, and the model-checkpoint wrapper's typed
// architecture-mismatch errors.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "common/telemetry.h"
#include "crypto/chacha20.h"
#include "net/codec.h"
#include "nn/checkpoint.h"
#include "nn/models.h"
#include "persist/codec.h"
#include "persist/state_store.h"

namespace deta::persist {
namespace {

std::string UniqueDir(const std::string& tag) {
  static int counter = 0;
  // ctest runs every test in its own process, so the counter restarts at zero each
  // time; the pid separates concurrent processes and the remove_all wipes any
  // leftovers a recycled pid might resurface.
  std::string dir = ::testing::TempDir() + "persist_" + tag + "_" +
                    std::to_string(::getpid()) + "_" + std::to_string(counter++);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return dir;
}

Snapshot SampleSnapshot(int round) {
  Snapshot s;
  s.role = "unit-role";
  s.round = round;
  s.AddFloats(SectionType::kModelParams, "params",
              {1.0f, -2.5f, 3.25f, static_cast<float>(round)});
  s.Add(SectionType::kRaw, "note", StringToBytes("round-" + std::to_string(round)));
  return s;
}

TEST(PersistCodecTest, RoundTripPreservesEverySection) {
  Snapshot s = SampleSnapshot(7);
  s.generation = 42;
  Bytes blob = SerializeSnapshot(s);
  std::optional<Snapshot> parsed = ParseSnapshot(blob);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->role, "unit-role");
  EXPECT_EQ(parsed->round, 7);
  EXPECT_EQ(parsed->generation, 42u);
  ASSERT_EQ(parsed->sections.size(), 2u);
  auto params = parsed->FindFloats("params");
  ASSERT_TRUE(params.has_value());
  EXPECT_EQ(*params, (std::vector<float>{1.0f, -2.5f, 3.25f, 7.0f}));
  const Section* note = parsed->Find("note");
  ASSERT_NE(note, nullptr);
  EXPECT_EQ(note->type, SectionType::kRaw);
  EXPECT_EQ(note->data, StringToBytes("round-7"));
}

TEST(PersistCodecTest, TruncationAtEveryByteOffsetIsRejected) {
  Bytes blob = SerializeSnapshot(SampleSnapshot(3));
  for (size_t len = 0; len < blob.size(); ++len) {
    Bytes truncated(blob.begin(), blob.begin() + static_cast<ptrdiff_t>(len));
    EXPECT_FALSE(ParseSnapshot(truncated).has_value()) << "length " << len;
  }
  EXPECT_TRUE(ParseSnapshot(blob).has_value());
}

TEST(PersistCodecTest, EveryBitFlipIsRejected) {
  Bytes blob = SerializeSnapshot(SampleSnapshot(3));
  for (size_t i = 0; i < blob.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes flipped = blob;
      flipped[i] ^= static_cast<uint8_t>(1 << bit);
      EXPECT_FALSE(ParseSnapshot(flipped).has_value())
          << "byte " << i << " bit " << bit;
    }
  }
}

TEST(PersistSealTest, SealedSectionsRoundTripAndRejectTampering) {
  crypto::SecureRng rng(StringToBytes("seal-test"));
  SealKey key = SealKey::Derive(99, "aggregator0");
  Bytes secret = StringToBytes("channel master secret");
  Bytes sealed = key.Seal(secret, rng);
  // Ciphertext never contains the plaintext.
  EXPECT_EQ(std::search(sealed.begin(), sealed.end(), secret.begin(), secret.end()),
            sealed.end());
  std::optional<Bytes> opened = key.Open(sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, secret);
  // Any bit flip fails authentication.
  for (size_t i = 0; i < sealed.size(); ++i) {
    Bytes tampered = sealed;
    tampered[i] ^= 1;
    EXPECT_FALSE(key.Open(tampered).has_value()) << "byte " << i;
  }
  // A different role (or job seed) derives a different key.
  EXPECT_FALSE(SealKey::Derive(99, "aggregator1").Open(sealed).has_value());
  EXPECT_FALSE(SealKey::Derive(100, "aggregator0").Open(sealed).has_value());
}

TEST(StateStoreTest, WriteAssignsMonotonicGenerationsAndLoadReturnsNewest) {
  StateStore store({UniqueDir("gen"), 10});
  for (int round = 1; round <= 4; ++round) {
    Snapshot s = SampleSnapshot(round);
    ASSERT_TRUE(store.Write(s));
    EXPECT_EQ(s.generation, static_cast<uint64_t>(round));
  }
  std::optional<Snapshot> loaded = store.Load("unit-role");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->round, 4);
  // LoadAt pins the consistent cut.
  std::optional<Snapshot> at = store.LoadAt("unit-role", 2);
  ASSERT_TRUE(at.has_value());
  EXPECT_EQ(at->round, 2);
  EXPECT_FALSE(store.Load("other-role").has_value());
}

TEST(StateStoreTest, RetentionPrunesOldGenerations) {
  StateStore store({UniqueDir("keep"), 3});
  for (int round = 1; round <= 6; ++round) {
    Snapshot s = SampleSnapshot(round);
    ASSERT_TRUE(store.Write(s));
  }
  std::vector<uint64_t> gens = store.Generations("unit-role");
  EXPECT_EQ(gens, (std::vector<uint64_t>{4, 5, 6}));
  // Pruning one role never touches another's files.
  Snapshot other = SampleSnapshot(1);
  other.role = "other-role";
  ASSERT_TRUE(store.Write(other));
  EXPECT_EQ(store.Generations("unit-role").size(), 3u);
}

TEST(StateStoreTest, TruncatedNewestGenerationFallsBackAtEveryByteOffset) {
  std::string dir = UniqueDir("trunc");
  StateStore store({dir, 10});
  Snapshot g1 = SampleSnapshot(1);
  ASSERT_TRUE(store.Write(g1));
  Snapshot g2 = SampleSnapshot(2);
  ASSERT_TRUE(store.Write(g2));
  std::string path2 = store.PathFor("unit-role", g2.generation);
  std::optional<Bytes> full = ReadFile(path2);
  ASSERT_TRUE(full.has_value());

  uint64_t rejected_before = telemetry::Snapshot().counters["persist.snapshot.rejected"];
  for (size_t len = 0; len < full->size(); ++len) {
    Bytes truncated(full->begin(), full->begin() + static_cast<ptrdiff_t>(len));
    {
      std::FILE* f = std::fopen(path2.c_str(), "wb");
      ASSERT_NE(f, nullptr);
      if (!truncated.empty()) {
        ASSERT_EQ(std::fwrite(truncated.data(), 1, truncated.size(), f),
                  truncated.size());
      }
      std::fclose(f);
    }
    std::optional<Snapshot> loaded = store.Load("unit-role");
    ASSERT_TRUE(loaded.has_value()) << "truncated at " << len;
    // The corrupt generation 2 is never trusted; recovery returns generation 1.
    EXPECT_EQ(loaded->round, 1) << "truncated at " << len;
  }
  EXPECT_GT(telemetry::Snapshot().counters["persist.snapshot.rejected"],
            rejected_before);

  // Restore the intact file: generation 2 becomes loadable again.
  ASSERT_TRUE(AtomicWriteFile(path2, *full));
  std::optional<Snapshot> healed = store.Load("unit-role");
  ASSERT_TRUE(healed.has_value());
  EXPECT_EQ(healed->round, 2);
}

TEST(StateStoreTest, NoVerifiableGenerationMeansNullopt) {
  std::string dir = UniqueDir("allbad");
  StateStore store({dir, 10});
  Snapshot s = SampleSnapshot(1);
  ASSERT_TRUE(store.Write(s));
  ASSERT_TRUE(AtomicWriteFile(store.PathFor("unit-role", s.generation),
                              StringToBytes("garbage, not a snapshot")));
  EXPECT_FALSE(store.Load("unit-role").has_value());
}

}  // namespace
}  // namespace deta::persist

namespace deta::nn {
namespace {

std::unique_ptr<Model> CheckpointTestModel() {
  Rng rng(77);
  return BuildMlp(16, {6}, 4, rng);
}

TEST(CheckpointTest, SaveLoadRoundTripsParamsAndOptimizerState) {
  auto model = CheckpointTestModel();
  Sgd opt(0.1f, 0.9f);
  // One momentum step so the velocity buffers are non-trivial.
  std::vector<Tensor> grads;
  for (const Var& p : model->params()) {
    const auto& shape = p.shape();
    size_t numel = 1;
    for (int d : shape) {
      numel *= static_cast<size_t>(d);
    }
    grads.emplace_back(shape, std::vector<float>(numel, 0.25f));
  }
  opt.Step(model->params(), grads);
  std::vector<float> params = model->GetFlatParams();
  Bytes opt_state = opt.SerializeState();

  std::string path = ::testing::TempDir() + "ckpt_roundtrip.snap";
  ASSERT_TRUE(SaveCheckpointWithOptimizer(*model, &opt, path));

  auto restored_model = CheckpointTestModel();
  Sgd restored_opt(0.1f, 0.9f);
  EXPECT_EQ(LoadCheckpointInto(*restored_model, &restored_opt, path),
            CheckpointStatus::kOk);
  EXPECT_EQ(restored_model->GetFlatParams(), params);
  EXPECT_EQ(restored_opt.SerializeState(), opt_state);
}

TEST(CheckpointTest, ArchitectureMismatchIsATypedError) {
  auto model = CheckpointTestModel();
  std::string path = ::testing::TempDir() + "ckpt_arch.snap";
  ASSERT_TRUE(SaveCheckpointWithOptimizer(*model, nullptr, path));

  Rng rng(78);
  auto other = BuildMlp(16, {7}, 4, rng);  // different hidden width, different shapes
  EXPECT_EQ(LoadCheckpointInto(*other, nullptr, path),
            CheckpointStatus::kArchitectureMismatch);
  EXPECT_EQ(std::string(CheckpointStatusName(CheckpointStatus::kArchitectureMismatch)),
            "architecture_mismatch");
}

TEST(CheckpointTest, MissingAndCorruptFilesAreDistinguished) {
  auto model = CheckpointTestModel();
  EXPECT_EQ(LoadCheckpointInto(*model, nullptr,
                               ::testing::TempDir() + "ckpt_does_not_exist.snap"),
            CheckpointStatus::kIoError);

  std::string path = ::testing::TempDir() + "ckpt_corrupt.snap";
  ASSERT_TRUE(SaveCheckpointWithOptimizer(*model, nullptr, path));
  std::optional<Bytes> blob = persist::ReadFile(path);
  ASSERT_TRUE(blob.has_value());
  (*blob)[blob->size() / 2] ^= 1;
  ASSERT_TRUE(persist::AtomicWriteFile(path, *blob));
  EXPECT_EQ(LoadCheckpointInto(*model, nullptr, path), CheckpointStatus::kCorrupt);
}

TEST(CheckpointTest, LegacyHelpersStillRoundTrip) {
  std::vector<float> params = {0.5f, -1.5f, 2.0f};
  Bytes blob = SerializeCheckpoint(params);
  std::optional<std::vector<float>> parsed = ParseCheckpoint(blob);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, params);
  blob[3] ^= 1;
  EXPECT_FALSE(ParseCheckpoint(blob).has_value());
}

}  // namespace
}  // namespace deta::nn
