// Direct protocol-level tests of a DetaAggregator node: the test plays the roles of the
// attestation proxy (provisioning), the parties (auth + uploads), the follower/initiator
// peers, and the observer. Covers the round protocol and quorum/straggler handling that
// the full-job tests cannot exercise deterministically.
#include <gtest/gtest.h>

#include "cc/attestation_proxy.h"
#include "core/deta_aggregator.h"
#include "crypto/sha256.h"
#include "net/codec.h"
#include "net/message_bus.h"

namespace deta::core {
namespace {

class AggregatorNodeTest : public ::testing::Test {
 protected:
  AggregatorNodeTest()
      : rng_(StringToBytes("agg-node-test")),
        ras_(rng_),
        platform_("plat", ras_, rng_),
        proxy_(ras_.RootKey(), crypto::Sha256Digest(Image()),
               crypto::SecureRng(StringToBytes("ap"))) {}

  static Bytes Image() { return StringToBytes("agg-image"); }

  // Launches + provisions a CVM and builds the aggregator on top of it.
  std::unique_ptr<DetaAggregator> MakeAggregator(AggregatorConfig config) {
    cvm_ = platform_.LaunchPausedCvm(config.name, Image());
    auto provision = proxy_.VerifyAndProvision(platform_, *cvm_);
    EXPECT_TRUE(provision.ok);
    token_public_ = provision.token_public;
    return std::make_unique<DetaAggregator>(config, bus_, cvm_,
                                            crypto::SecureRng(rng_.NextBytes(32)));
  }

  // Party-side helper: verify + register, returning the secure channel.
  net::SecureChannel Register(net::Endpoint& endpoint, const std::string& aggregator) {
    EXPECT_TRUE(VerifyAggregator(endpoint, aggregator, token_public_, rng_));
    auto channel = RegisterWithAggregator(endpoint, aggregator, token_public_, rng_);
    EXPECT_TRUE(channel.has_value());
    return std::move(*channel);
  }

  void Upload(net::Endpoint& endpoint, net::SecureChannel& channel,
              const std::string& aggregator, int round, const std::vector<float>& values) {
    fl::ModelUpdate update;
    update.values = values;
    update.weight = 1.0;
    net::Writer w;
    w.WriteU32(static_cast<uint32_t>(round));
    w.WriteBytes(channel.Seal(fl::SerializeUpdate(update), rng_));
    endpoint.Send(aggregator, kRoundUpload, w.Take());
  }

  std::vector<float> AwaitResult(net::Endpoint& endpoint, net::SecureChannel& channel,
                                 int expect_round) {
    auto m = endpoint.ReceiveType(kRoundResult);
    EXPECT_TRUE(m.has_value());
    net::Reader r(m->payload);
    EXPECT_EQ(static_cast<int>(r.ReadU32()), expect_round);
    auto payload = channel.Open(r.ReadBytes());
    EXPECT_TRUE(payload.has_value());
    return fl::DeserializeUpdate(*payload).values;
  }

  net::MessageBus bus_;
  crypto::SecureRng rng_;
  cc::RemoteAttestationService ras_;
  cc::SevPlatform platform_;
  cc::AttestationProxy proxy_;
  std::shared_ptr<cc::Cvm> cvm_;
  crypto::EcPoint token_public_;
};

AggregatorConfig BaseConfig() {
  AggregatorConfig config;
  config.name = "agg0";
  config.is_initiator = true;
  config.num_parties = 2;
  config.num_aggregators = 1;
  config.rounds = 1;
  config.algorithm = "iterative_averaging";
  config.initiator_name = "agg0";
  config.party_names = {"p0", "p1"};
  config.aggregator_names = {"agg0"};
  return config;
}

TEST_F(AggregatorNodeTest, FullRoundProtocol) {
  auto aggregator = MakeAggregator(BaseConfig());
  aggregator->Start();

  auto p0 = bus_.CreateEndpoint("p0");
  auto p1 = bus_.CreateEndpoint("p1");
  auto driver = bus_.CreateEndpoint("driver");

  net::SecureChannel c0 = Register(*p0, "agg0");
  net::SecureChannel c1 = Register(*p1, "agg0");

  driver->Send("agg0", kJobStart, {});
  // Both parties get the round.begin broadcast.
  EXPECT_TRUE(p0->ReceiveType(kRoundBegin).has_value());
  EXPECT_TRUE(p1->ReceiveType(kRoundBegin).has_value());

  Upload(*p0, c0, "agg0", 1, {1.0f, 2.0f});
  Upload(*p1, c1, "agg0", 1, {3.0f, 4.0f});
  EXPECT_EQ(AwaitResult(*p0, c0, 1), (std::vector<float>{2.0f, 3.0f}));
  EXPECT_EQ(AwaitResult(*p1, c1, 1), (std::vector<float>{2.0f, 3.0f}));

  // Last round complete: parties receive shutdown; aggregator thread exits.
  EXPECT_TRUE(p0->ReceiveType(kShutdown).has_value());
  EXPECT_TRUE(p1->ReceiveType(kShutdown).has_value());
  aggregator->Join();
}

TEST_F(AggregatorNodeTest, QuorumAggregatesWithoutStragglers) {
  AggregatorConfig config = BaseConfig();
  config.num_parties = 3;
  config.party_names = {"p0", "p1", "p2"};
  config.quorum = 2;  // tolerate one straggler
  auto aggregator = MakeAggregator(config);
  aggregator->Start();

  auto p0 = bus_.CreateEndpoint("p0");
  auto p1 = bus_.CreateEndpoint("p1");
  auto p2 = bus_.CreateEndpoint("p2");
  auto driver = bus_.CreateEndpoint("driver");
  net::SecureChannel c0 = Register(*p0, "agg0");
  net::SecureChannel c1 = Register(*p1, "agg0");
  net::SecureChannel c2 = Register(*p2, "agg0");

  driver->Send("agg0", kJobStart, {});
  p0->ReceiveType(kRoundBegin);
  p1->ReceiveType(kRoundBegin);
  p2->ReceiveType(kRoundBegin);

  // Only two of three parties upload; the round must still complete.
  Upload(*p0, c0, "agg0", 1, {2.0f});
  Upload(*p1, c1, "agg0", 1, {4.0f});
  EXPECT_EQ(AwaitResult(*p0, c0, 1), (std::vector<float>{3.0f}));
  // The straggler still receives the aggregated result (it is registered).
  EXPECT_EQ(AwaitResult(*p2, c2, 1), (std::vector<float>{3.0f}));

  // The straggler's late upload for the completed round is dropped without crashing.
  Upload(*p2, c2, "agg0", 1, {100.0f});

  p0->ReceiveType(kShutdown);
  aggregator->Join();
}

TEST_F(AggregatorNodeTest, UnregisteredUploadIgnored) {
  auto aggregator = MakeAggregator(BaseConfig());
  aggregator->Start();

  auto p0 = bus_.CreateEndpoint("p0");
  auto p1 = bus_.CreateEndpoint("p1");
  auto intruder = bus_.CreateEndpoint("intruder");
  auto driver = bus_.CreateEndpoint("driver");
  net::SecureChannel c0 = Register(*p0, "agg0");
  net::SecureChannel c1 = Register(*p1, "agg0");

  driver->Send("agg0", kJobStart, {});
  p0->ReceiveType(kRoundBegin);

  // The intruder has no channel; its garbage upload must not poison the round.
  net::Writer w;
  w.WriteU32(1);
  w.WriteBytes(Bytes(64, 0xff));
  intruder->Send("agg0", kRoundUpload, w.Take());

  Upload(*p0, c0, "agg0", 1, {1.0f});
  Upload(*p1, c1, "agg0", 1, {5.0f});
  EXPECT_EQ(AwaitResult(*p0, c0, 1), (std::vector<float>{3.0f}));
  p0->ReceiveType(kShutdown);
  aggregator->Join();
}

TEST_F(AggregatorNodeTest, StoresFragmentsInCvmMemory) {
  auto aggregator = MakeAggregator(BaseConfig());
  aggregator->Start();

  auto p0 = bus_.CreateEndpoint("p0");
  auto p1 = bus_.CreateEndpoint("p1");
  auto driver = bus_.CreateEndpoint("driver");
  net::SecureChannel c0 = Register(*p0, "agg0");
  net::SecureChannel c1 = Register(*p1, "agg0");
  driver->Send("agg0", kJobStart, {});
  p0->ReceiveType(kRoundBegin);
  Upload(*p0, c0, "agg0", 1, {7.0f});
  Upload(*p1, c1, "agg0", 1, {9.0f});
  AwaitResult(*p0, c0, 1);
  p0->ReceiveType(kShutdown);
  aggregator->Join();

  // The staged fragment and the aggregated result live in encrypted CVM memory.
  auto dump = cvm_->Breach();
  EXPECT_TRUE(dump.count("update:p0:r1"));
  EXPECT_TRUE(dump.count("update:p1:r1"));
  EXPECT_TRUE(dump.count("aggregated:r1"));
  EXPECT_EQ(fl::DeserializeUpdate(dump.at("update:p0:r1")).values,
            (std::vector<float>{7.0f}));
}

}  // namespace
}  // namespace deta::core
