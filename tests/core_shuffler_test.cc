#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "common/check.h"
#include "common/rng.h"
#include "core/shuffler.h"

namespace deta::core {
namespace {

Bytes TestKey() { return GeneratePermutationKey(128, StringToBytes("entropy")); }

TEST(ShufflerTest, PermutationIsBijection) {
  Shuffler shuffler(TestKey());
  for (int64_t size : {1, 2, 17, 100, 1000}) {
    auto perm = shuffler.PermutationFor(3, 0, size);
    std::set<int64_t> seen(perm.begin(), perm.end());
    EXPECT_EQ(static_cast<int64_t>(seen.size()), size);
    EXPECT_EQ(*seen.begin(), 0);
    EXPECT_EQ(*seen.rbegin(), size - 1);
  }
}

TEST(ShufflerTest, ShuffleUnshuffleRoundTrip) {
  Shuffler shuffler(TestKey());
  Rng rng(4);
  for (uint64_t round : {1ULL, 2ULL, 99ULL}) {
    for (int partition : {0, 1, 2}) {
      std::vector<float> fragment(257);
      for (auto& v : fragment) {
        v = rng.NextGaussian();
      }
      auto shuffled = shuffler.Shuffle(fragment, round, partition);
      EXPECT_NE(shuffled, fragment);  // w.h.p. for 257 elements
      EXPECT_EQ(shuffler.Unshuffle(shuffled, round, partition), fragment);
    }
  }
}

TEST(ShufflerTest, PermutationChangesEveryRound) {
  // §4.2: "the permutation changes dynamically at each training round".
  Shuffler shuffler(TestKey());
  auto p1 = shuffler.PermutationFor(1, 0, 100);
  auto p2 = shuffler.PermutationFor(2, 0, 100);
  EXPECT_NE(p1, p2);
}

TEST(ShufflerTest, PermutationDiffersAcrossPartitions) {
  Shuffler shuffler(TestKey());
  EXPECT_NE(shuffler.PermutationFor(1, 0, 100), shuffler.PermutationFor(1, 1, 100));
}

TEST(ShufflerTest, DeterministicAcrossParties) {
  // All parties hold the same key and must derive the identical permutation.
  Bytes key = TestKey();
  Shuffler party_a(key), party_b(key);
  EXPECT_EQ(party_a.PermutationFor(5, 2, 333), party_b.PermutationFor(5, 2, 333));
}

TEST(ShufflerTest, DifferentKeysDifferentPermutations) {
  Shuffler a(GeneratePermutationKey(128, StringToBytes("e1")));
  Shuffler b(GeneratePermutationKey(128, StringToBytes("e2")));
  EXPECT_NE(a.PermutationFor(1, 0, 100), b.PermutationFor(1, 0, 100));
}

TEST(ShufflerTest, ShufflePreservesMultiset) {
  Shuffler shuffler(TestKey());
  std::vector<float> fragment = {5, 3, 3, 1, 9, 9, 9};
  auto shuffled = shuffler.Shuffle(fragment, 7, 0);
  std::multiset<float> a(fragment.begin(), fragment.end());
  std::multiset<float> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(ShufflerTest, KeyGeneration) {
  Bytes k1 = GeneratePermutationKey(128, StringToBytes("a"));
  EXPECT_EQ(k1.size(), 16u);
  Bytes k2 = GeneratePermutationKey(257, StringToBytes("a"));
  EXPECT_EQ(k2.size(), 33u);
  EXPECT_THROW(GeneratePermutationKey(4, StringToBytes("a")), CheckFailure);
  EXPECT_THROW(Shuffler(Bytes{}), CheckFailure);
}

// Aggregation commutes with shuffling: mean(shuffle(u_i)) == shuffle(mean(u_i)).
TEST(ShufflerTest, CoordinateWiseAggregationCommutes) {
  Shuffler shuffler(TestKey());
  Rng rng(8);
  const size_t n = 128;
  std::vector<std::vector<float>> updates(4, std::vector<float>(n));
  for (auto& u : updates) {
    for (auto& v : u) {
      v = rng.NextGaussian();
    }
  }
  // Mean of shuffled updates, then unshuffle.
  std::vector<float> mean_shuffled(n, 0.0f);
  for (const auto& u : updates) {
    auto s = shuffler.Shuffle(u, 3, 1);
    for (size_t i = 0; i < n; ++i) {
      mean_shuffled[i] += s[i] / 4.0f;
    }
  }
  auto recovered = shuffler.Unshuffle(mean_shuffled, 3, 1);
  // Plain mean.
  std::vector<float> mean_plain(n, 0.0f);
  for (const auto& u : updates) {
    for (size_t i = 0; i < n; ++i) {
      mean_plain[i] += u[i] / 4.0f;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    EXPECT_FLOAT_EQ(recovered[i], mean_plain[i]);
  }
}

}  // namespace
}  // namespace deta::core
