// Phase-II authentication protocol: challenge/response and registration over a live bus,
// including the negative paths (impersonation, tampering).
#include <gtest/gtest.h>

#include <thread>

#include "core/auth_protocol.h"
#include "net/codec.h"
#include "net/message_bus.h"

namespace deta::core {
namespace {

class AuthTest : public ::testing::Test {
 protected:
  AuthTest()
      : rng_(StringToBytes("auth-test")),
        token_(crypto::GenerateEcKey(rng_)),
        party_(bus_.CreateEndpoint("party0")),
        aggregator_(bus_.CreateEndpoint("agg0")) {}

  // Runs the aggregator side for |challenges| challenge messages and |registrations|
  // registration messages, using |key| as its token private key.
  std::thread AggregatorResponder(const Secret<crypto::BigUint>& key, int challenges,
                                  int registrations) {
    return std::thread([this, key, challenges, registrations] {
      crypto::SecureRng agg_rng(StringToBytes("agg-rng"));
      for (int i = 0; i < challenges; ++i) {
        auto m = aggregator_->ReceiveType(kAuthChallenge);
        ASSERT_TRUE(m.has_value());
        AnswerChallenge(*aggregator_, *m, key);
      }
      for (int i = 0; i < registrations; ++i) {
        auto m = aggregator_->ReceiveType(kAuthRegister);
        ASSERT_TRUE(m.has_value());
        auto channel = AcceptRegistration(*aggregator_, *m, key, agg_rng);
        ASSERT_TRUE(channel.has_value());
        server_channels_.push_back(std::move(channel->second));
      }
    });
  }

  net::MessageBus bus_;
  crypto::SecureRng rng_;
  crypto::EcKeyPair token_;
  std::unique_ptr<net::Endpoint> party_;
  std::unique_ptr<net::Endpoint> aggregator_;
  std::vector<net::SecureChannel> server_channels_;
};

TEST_F(AuthTest, ChallengeResponseSucceedsWithProvisionedToken) {
  std::thread responder = AggregatorResponder(token_.private_key, 1, 0);
  EXPECT_TRUE(VerifyAggregator(*party_, "agg0", token_.public_key, rng_));
  responder.join();
}

TEST_F(AuthTest, ChallengeResponseFailsWithWrongKey) {
  // An impersonator without the provisioned token signs with its own key.
  crypto::EcKeyPair impostor = crypto::GenerateEcKey(rng_);
  std::thread responder = AggregatorResponder(impostor.private_key, 1, 0);
  EXPECT_FALSE(VerifyAggregator(*party_, "agg0", token_.public_key, rng_));
  responder.join();
}

TEST_F(AuthTest, RegistrationEstablishesWorkingChannel) {
  std::thread responder = AggregatorResponder(token_.private_key, 0, 1);
  auto channel = RegisterWithAggregator(*party_, "agg0", token_.public_key, rng_);
  responder.join();
  ASSERT_TRUE(channel.has_value());
  ASSERT_EQ(server_channels_.size(), 1u);

  // Both directions seal/open across the pair.
  crypto::SecureRng traffic_rng(StringToBytes("traffic"));
  Bytes frame = channel->Seal(StringToBytes("upstream fragment"), traffic_rng);
  auto opened = server_channels_[0].Open(frame);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(BytesToString(*opened), "upstream fragment");

  Bytes down = server_channels_[0].Seal(StringToBytes("aggregated"), traffic_rng);
  auto opened_down = channel->Open(down);
  ASSERT_TRUE(opened_down.has_value());
  EXPECT_EQ(BytesToString(*opened_down), "aggregated");
}

TEST_F(AuthTest, RegistrationFailsWithImpostorToken) {
  crypto::EcKeyPair impostor = crypto::GenerateEcKey(rng_);
  std::thread responder = AggregatorResponder(impostor.private_key, 0, 1);
  auto channel = RegisterWithAggregator(*party_, "agg0", token_.public_key, rng_);
  responder.join();
  EXPECT_FALSE(channel.has_value());
}

TEST_F(AuthTest, MalformedRegistrationShareRejected) {
  crypto::SecureRng agg_rng(StringToBytes("agg"));
  net::Message bogus;
  bogus.from = "party0";
  bogus.to = "agg0";
  bogus.type = kAuthRegister;
  bogus.payload = Bytes(65, 0x01);  // not a curve point
  auto channel = AcceptRegistration(*aggregator_, bogus, token_.private_key, agg_rng);
  EXPECT_FALSE(channel.has_value());
}

TEST_F(AuthTest, ChannelIdBindsPartyAndAggregator) {
  EXPECT_EQ(ChannelId("p", "a"), "chan:p:a");
  EXPECT_NE(ChannelId("p", "a"), ChannelId("a", "p"));
}

TEST_F(AuthTest, MultiplePartiesRegisterConcurrently) {
  auto party1 = bus_.CreateEndpoint("party1");
  auto party2 = bus_.CreateEndpoint("party2");
  std::thread responder = AggregatorResponder(token_.private_key, 0, 2);
  crypto::SecureRng rng1(StringToBytes("r1")), rng2(StringToBytes("r2"));
  std::optional<net::SecureChannel> c1, c2;
  std::thread t1([&] { c1 = RegisterWithAggregator(*party1, "agg0", token_.public_key, rng1); });
  std::thread t2([&] { c2 = RegisterWithAggregator(*party2, "agg0", token_.public_key, rng2); });
  t1.join();
  t2.join();
  responder.join();
  ASSERT_TRUE(c1.has_value());
  ASSERT_TRUE(c2.has_value());
  EXPECT_EQ(server_channels_.size(), 2u);
  EXPECT_NE(c1->channel_id(), c2->channel_id());
}

}  // namespace
}  // namespace deta::core
