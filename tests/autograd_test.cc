// Finite-difference verification of every differentiable op, first and second order.
// Second-order correctness is what the DLG/iDLG/IG attacks depend on.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "autograd/ops.h"
#include "common/check.h"
#include "common/rng.h"

namespace deta::autograd {
namespace {

using ScalarFn = std::function<Var(const Var&)>;

Tensor NumericalGradient(const std::function<float(const Tensor&)>& f, const Tensor& x,
                         float eps = 1e-3f) {
  Tensor g(x.shape());
  Tensor probe = x;
  for (int64_t i = 0; i < x.numel(); ++i) {
    float original = probe[i];
    probe[i] = original + eps;
    float fp = f(probe);
    probe[i] = original - eps;
    float fm = f(probe);
    probe[i] = original;
    g[i] = (fp - fm) / (2.0f * eps);
  }
  return g;
}

void ExpectGradMatches(const ScalarFn& fn, const Tensor& x0, float tol = 2e-2f) {
  Var x(x0, /*requires_grad=*/true);
  Var loss = fn(x);
  ASSERT_EQ(loss.numel(), 1);
  std::vector<Var> grads = Grad(loss, {x});
  Tensor numeric = NumericalGradient(
      [&](const Tensor& t) { return fn(Var(t)).value()[0]; }, x0);
  float scale = std::max(1.0f, numeric.Norm());
  EXPECT_LT(MaxAbsDiff(grads[0].value(), numeric) / scale, tol);
}

struct OpCase {
  const char* name;
  ScalarFn fn;
  Tensor::Shape shape;
};

class GradCheckTest : public ::testing::TestWithParam<OpCase> {};

TEST_P(GradCheckTest, MatchesFiniteDifference) {
  Rng rng(42);
  const OpCase& c = GetParam();
  Tensor x0 = Tensor::Gaussian(c.shape, rng, 0.1f, 0.8f);
  ExpectGradMatches(c.fn, x0);
}

Tensor FixedTensor(Tensor::Shape shape, uint64_t seed) {
  Rng rng(seed);
  return Tensor::Gaussian(std::move(shape), rng, 0.0f, 1.0f);
}

const OpCase kOpCases[] = {
    {"mul_self", [](const Var& x) { return SumAll(Mul(x, x)); }, {3, 4}},
    {"add_sub_neg",
     [](const Var& x) {
       return Add(SumAll(Mul(Add(x, Neg(x)), x)), SumAll(Mul(Sub(x, MulScalar(x, 0.5f)), x)));
     },
     {3, 4}},
    {"scalar_ops",
     [](const Var& x) { return SumAll(Mul(AddScalar(MulScalar(x, 2.0f), 1.0f), x)); },
     {2, 5}},
    {"recip",
     [](const Var& x) { return SumAll(Recip(AddScalar(Mul(x, x), 2.0f))); },
     {3, 3}},
    {"scale_by_scalar",
     [](const Var& x) {
       Var s = SumAll(Mul(x, x));
       return SumAll(ScaleByScalar(x, MulScalar(s, 0.1f)));
     },
     {2, 3}},
    {"sigmoid", [](const Var& x) { return SumAll(Sigmoid(x)); }, {3, 4}},
    {"tanh", [](const Var& x) { return SumAll(Mul(Tanh(x), Tanh(x))); }, {3, 4}},
    {"exp_log",
     [](const Var& x) { return SumAll(Log(AddScalar(Exp(MulScalar(x, 0.5f)), 1.0f))); },
     {3, 4}},
    {"sqrt",
     [](const Var& x) { return SumAll(Sqrt(AddScalar(Mul(x, x), 1.0f))); },
     {3, 4}},
    {"abs", [](const Var& x) { return SumAll(Abs(x)); }, {4, 4}},
    {"reshape_transpose",
     [](const Var& x) {
       Var r = Reshape(x, {4, 3});
       return SumAll(Mul(Transpose(r), Transpose(r)));
     },
     {3, 4}},
    {"matmul",
     [](const Var& x) {
       Var w(FixedTensor({4, 2}, 7));
       Var y = MatMul(x, w);
       return SumAll(Mul(y, Sigmoid(y)));
     },
     {3, 4}},
    {"sum_rows_row_sum",
     [](const Var& x) {
       return Add(SumAll(Mul(SumRows(x), SumRows(x))), SumAll(Mul(RowSum(x), RowSum(x))));
     },
     {3, 4}},
    {"row_broadcasts",
     [](const Var& x) {
       Var v(FixedTensor({4}, 8));
       Var c(FixedTensor({3}, 9));
       return SumAll(Mul(AddRowVec(x, v), SubColVec(x, c)));
     },
     {3, 4}},
    {"broadcast_scalar",
     [](const Var& x) {
       Var s = MeanAll(x);
       return SumAll(Mul(BroadcastScalar(s, {3, 4}), x));
     },
     {3, 4}},
    {"slice_pad",
     [](const Var& x) {
       Var f = Flatten(x);
       Var s = Slice1D(f, 2, 6);
       Var p = PadSlice1D(s, 1, 12);
       return SumAll(Mul(p, p));
     },
     {3, 4}},
    {"gather_scatter",
     [](const Var& x) {
       Var f = Flatten(x);
       Var g = Gather1D(f, {0, 3, 3, 7, 11});
       Var sc = Scatter1D(g, {1, 2, 2, 0, 4}, 6);
       return SumAll(Mul(sc, sc));
     },
     {3, 4}},
    {"concat",
     [](const Var& x) {
       Var c = ConcatFlat({x, MulScalar(x, 2.0f), Reshape(x, {12})});
       return SumAll(Mul(c, c));
     },
     {3, 4}},
    {"softmax_ce",
     [](const Var& x) {
       Tensor one_hot({3, 4});
       one_hot[0] = 1;
       one_hot[5] = 1;
       one_hot[10] = 1;
       return SoftmaxCrossEntropy(x, Var(one_hot));
     },
     {3, 4}},
    {"mse", [](const Var& x) { return MseLoss(x, Var(FixedTensor({3, 4}, 10))); }, {3, 4}},
    {"total_variation",
     [](const Var& x) { return TotalVariation(Reshape(x, {1, 1, 3, 4})); },
     {3, 4}},
    {"cosine",
     [](const Var& x) {
       return CosineDistanceLoss(Flatten(x), Flatten(Var(FixedTensor({3, 4}, 11))));
     },
     {3, 4}},
    {"sq_diff",
     [](const Var& x) {
       return SquaredDifferenceSum(Flatten(x), Flatten(Var(FixedTensor({3, 4}, 12))));
     },
     {3, 4}},
    {"conv_stack",
     [](const Var& x) {
       ConvGeometry geom{1, 2, 4, 4, 3, 3, 1, 1};
       Var img = Reshape(x, {1, 2, 4, 4});
       Var cols = Im2Col(img, geom);
       Var w(FixedTensor({3, 18}, 13));
       Var y = MatMul(cols, Transpose(w));
       return SumAll(Mul(y, Tanh(y)));
     },
     {2, 16}},
    {"max_pool",
     [](const Var& x) {
       Var img = Reshape(x, {1, 2, 4, 4});
       Var p = MaxPool(img, 2, 2);
       return SumAll(Mul(p, p));
     },
     {2, 16}},
    {"avg_pool",
     [](const Var& x) {
       Var img = Reshape(x, {1, 2, 4, 4});
       Var p = AvgPool(img, 2, 2);
       return SumAll(Exp(p));
     },
     {2, 16}},
    {"relu", [](const Var& x) { return SumAll(Mul(Relu(x), Relu(x))); }, {4, 5}},
};

std::string OpCaseName(const ::testing::TestParamInfo<OpCase>& info) {
  return info.param.name;
}

INSTANTIATE_TEST_SUITE_P(AllOps, GradCheckTest, ::testing::ValuesIn(kOpCases), OpCaseName);

TEST(AutogradTest, LeafProperties) {
  Var leaf(Tensor({2}, {1, 2}), true);
  EXPECT_TRUE(leaf.requires_grad());
  EXPECT_TRUE(leaf.defined());
  Var detached = leaf.Detach();
  EXPECT_FALSE(detached.requires_grad());
  Var undefined;
  EXPECT_FALSE(undefined.defined());
}

TEST(AutogradTest, NoGradThroughDetach) {
  Var x(Tensor({2}, {3, 4}), true);
  Var y = SumAll(Mul(x.Detach(), x));  // only one factor tracks gradient
  std::vector<Var> g = Grad(y, {x});
  EXPECT_FLOAT_EQ(g[0].value()[0], 3.0f);
  EXPECT_FLOAT_EQ(g[0].value()[1], 4.0f);
}

TEST(AutogradTest, UnusedInputGetsZeroGradient) {
  Var x(Tensor({2}, {1, 2}), true);
  Var unused(Tensor({3}, {1, 1, 1}), true);
  Var loss = SumAll(Mul(x, x));
  std::vector<Var> g = Grad(loss, {x, unused});
  EXPECT_EQ(g[1].value().numel(), 3);
  EXPECT_FLOAT_EQ(g[1].value()[0], 0.0f);
}

TEST(AutogradTest, GradAccumulatesOverFanOut) {
  Var x(Tensor({1}, {3.0f}), true);
  Var y = Add(Mul(x, x), Mul(x, x));  // 2x^2, dy/dx = 4x = 12
  std::vector<Var> g = Grad(y, {x});
  EXPECT_FLOAT_EQ(g[0].value()[0], 12.0f);
}

TEST(AutogradTest, NonScalarGradRequiresSeed) {
  Var x(Tensor({2}, {1, 2}), true);
  Var y = Mul(x, x);
  EXPECT_THROW(Grad(y, {x}), CheckFailure);
  Var seed(Tensor({2}, {1, 1}));
  EXPECT_NO_THROW(Grad(y, {x}, false, seed));
}

TEST(AutogradTest, MutationOnNonLeafThrows) {
  Var x(Tensor({2}, {1, 2}), true);
  Var y = Mul(x, x);
  EXPECT_THROW(y.mutable_value(), CheckFailure);
}

// d/dx of (dL/dx · c) — the Hessian-vector product the attacks rely on.
TEST(AutogradTest, SecondOrderSigmoidHvp) {
  Rng rng(17);
  Tensor x0 = Tensor::Gaussian({3, 3}, rng, 0.0f, 1.0f);
  Tensor c = Tensor::Gaussian({3, 3}, rng, 0.0f, 1.0f);
  auto inner = [](const Var& x) { return SumAll(Mul(Sigmoid(x), Mul(x, x))); };

  Var x(x0, true);
  std::vector<Var> g1 = Grad(inner(x), {x}, /*create_graph=*/true);
  Var hvp_target = SumAll(Mul(g1[0], Var(c)));
  std::vector<Var> g2 = Grad(hvp_target, {x});

  Tensor numeric = NumericalGradient(
      [&](const Tensor& t) {
        Var v(t, true);
        std::vector<Var> gi = Grad(inner(v), {v});
        return Mul(gi[0].value(), c).SumValue();
      },
      x0);
  float scale = std::max(1.0f, numeric.Norm());
  EXPECT_LT(MaxAbsDiff(g2[0].value(), numeric) / scale, 2e-2f);
}

// Full DLG-shaped double backprop: gradient of a gradient-matching loss w.r.t. the input.
TEST(AutogradTest, SecondOrderGradientMatching) {
  Rng rng(23);
  Tensor w0 = Tensor::Gaussian({4, 5}, rng, 0.0f, 0.5f);
  Tensor x0 = Tensor::Gaussian({1, 4}, rng, 0.0f, 1.0f);
  Tensor target({1, 5});
  target[2] = 1.0f;

  auto model_grad = [&](const Var& input, const Var& weights) {
    Var logits = MatMul(input, weights);
    Var loss = SoftmaxCrossEntropy(logits, Var(target));
    return Grad(loss, {weights}, /*create_graph=*/true)[0];
  };

  Var w_victim(w0, true);
  Var x_victim(Tensor::Gaussian({1, 4}, rng, 0.0f, 1.0f));
  Tensor victim_grad = model_grad(x_victim, w_victim).value();

  auto attack_loss = [&](const Var& x_dummy) {
    Var w(w0, true);
    Var dummy_grad = model_grad(x_dummy, w);
    return SquaredDifferenceSum(Flatten(dummy_grad), Flatten(Var(victim_grad)));
  };

  Var x_dummy(x0, true);
  std::vector<Var> analytic = Grad(attack_loss(x_dummy), {x_dummy});
  Tensor numeric = NumericalGradient(
      [&](const Tensor& t) { return attack_loss(Var(t, true)).value()[0]; }, x0);
  float scale = std::max(1.0f, numeric.Norm());
  EXPECT_LT(MaxAbsDiff(analytic[0].value(), numeric) / scale, 2e-2f);
}

TEST(AutogradTest, CreateGraphFalseDetachesResult) {
  Var x(Tensor({1}, {2.0f}), true);
  std::vector<Var> g = Grad(SumAll(Mul(x, x)), {x}, /*create_graph=*/false);
  EXPECT_FALSE(g[0].requires_grad());
  std::vector<Var> g2 = Grad(SumAll(Mul(x, x)), {x}, /*create_graph=*/true);
  EXPECT_TRUE(g2[0].requires_grad());
}

TEST(AutogradTest, DeepChainDoesNotOverflowStack) {
  // Iterative topo sort must handle long chains.
  Var x(Tensor({1}, {0.001f}), true);
  Var y = x;
  for (int i = 0; i < 5000; ++i) {
    y = AddScalar(MulScalar(y, 0.9999f), 1e-7f);
  }
  Var loss = SumAll(y);
  std::vector<Var> g = Grad(loss, {x});
  EXPECT_GT(g[0].value()[0], 0.0f);
}

}  // namespace
}  // namespace deta::autograd
