#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "nn/checkpoint.h"
#include "nn/models.h"
#include "nn/optimizer.h"

namespace deta::nn {
namespace {

namespace ag = autograd;

TEST(LayersTest, LinearShapesAndParams) {
  Rng rng(1);
  Linear linear(4, 3, rng);
  Var x(Tensor({2, 4}, {1, 0, 0, 0, 0, 1, 0, 0}));
  Var y = linear.Forward(x);
  EXPECT_EQ(y.value().shape(), (Tensor::Shape{2, 3}));
  EXPECT_EQ(linear.Params().size(), 2u);
  EXPECT_EQ(linear.Params()[0].numel(), 12);
  EXPECT_EQ(linear.Params()[1].numel(), 3);
}

TEST(LayersTest, Conv2dOutputShape) {
  Rng rng(2);
  Conv2d conv(3, 8, 3, 1, 1, rng);
  Var x(Tensor({2, 3, 8, 8}));
  Var y = conv.Forward(x);
  EXPECT_EQ(y.value().shape(), (Tensor::Shape{2, 8, 8, 8}));
  Conv2d strided(3, 4, 5, 2, 2, rng);
  Var y2 = strided.Forward(x);
  EXPECT_EQ(y2.value().shape(), (Tensor::Shape{2, 4, 4, 4}));
}

TEST(LayersTest, Conv2dMatchesDirectConvolution) {
  // 1 input channel, 1 output channel, known kernel: verify against a hand computation.
  Rng rng(3);
  Conv2d conv(1, 1, 3, 1, 0, rng);
  // Overwrite weights with a simple box filter, bias with 1.
  conv.Params()[0].mutable_value().Fill(1.0f);
  conv.Params()[1].mutable_value().Fill(1.0f);
  Tensor img({1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Var y = conv.Forward(Var(img));
  EXPECT_EQ(y.value().numel(), 1);
  EXPECT_FLOAT_EQ(y.value()[0], 45.0f + 1.0f);
}

TEST(LayersTest, FlattenAndPoolShapes) {
  Rng rng(4);
  FlattenLayer flatten;
  Var x(Tensor({2, 3, 4, 4}));
  EXPECT_EQ(flatten.Forward(x).value().shape(), (Tensor::Shape{2, 48}));
  MaxPool2dLayer pool(2, 2);
  EXPECT_EQ(pool.Forward(x).value().shape(), (Tensor::Shape{2, 3, 2, 2}));
  AvgPool2dLayer apool(2, 2);
  EXPECT_EQ(apool.Forward(x).value().shape(), (Tensor::Shape{2, 3, 2, 2}));
}

TEST(LayersTest, ResidualBlockPreservesShape) {
  Rng rng(5);
  ResidualBlock block(4, rng);
  Var x(Tensor::Gaussian({1, 4, 6, 6}, rng, 0, 1));
  Var y = block.Forward(x);
  EXPECT_EQ(y.value().shape(), x.value().shape());
  EXPECT_EQ(block.Params().size(), 4u);
}

TEST(LayersTest, SequentialComposesAndCollectsParams) {
  Rng rng(6);
  auto net = std::make_unique<Sequential>();
  net->Emplace<Linear>(4, 8, rng);
  net->Emplace<ReluLayer>();
  net->Emplace<Linear>(8, 2, rng);
  EXPECT_EQ(net->NumLayers(), 3u);
  EXPECT_EQ(net->Params().size(), 4u);
  Var y = net->Forward(Var(Tensor({1, 4})));
  EXPECT_EQ(y.value().shape(), (Tensor::Shape{1, 2}));
}

TEST(LayersTest, ParamFlattenLoadRoundTrip) {
  Rng rng(7);
  auto model = BuildMlp(10, {8}, 4, rng);
  std::vector<float> flat = model->GetFlatParams();
  EXPECT_EQ(static_cast<int64_t>(flat.size()), model->NumParameters());
  std::vector<float> modified = flat;
  for (auto& v : modified) {
    v += 1.0f;
  }
  model->SetFlatParams(modified);
  EXPECT_EQ(model->GetFlatParams(), modified);
  EXPECT_THROW(model->SetFlatParams(std::vector<float>(3)), CheckFailure);
}

TEST(ModelsTest, ZooParameterCountsAndForward) {
  Rng rng(8);
  struct Case {
    std::unique_ptr<Model> model;
    Tensor input;
    int classes;
  };
  std::vector<Case> cases;
  cases.push_back({BuildLeNet(3, 32, 100, rng), Tensor({1, 3, 32, 32}), 100});
  cases.push_back({BuildConvNet8(1, 28, 10, rng), Tensor({2, 1, 28, 28}), 10});
  cases.push_back({BuildConvNet23(3, 32, 10, rng), Tensor({1, 3, 32, 32}), 10});
  cases.push_back({BuildMiniVgg(1, 64, 16, rng), Tensor({1, 1, 64, 64}), 16});
  cases.push_back({BuildMiniResNet(3, 32, 10, rng), Tensor({1, 3, 32, 32}), 10});
  for (auto& c : cases) {
    EXPECT_GT(c.model->NumParameters(), 1000);
    Var logits = c.model->Forward(Var(c.input));
    EXPECT_EQ(logits.value().dim(0), c.input.dim(0));
    EXPECT_EQ(logits.value().dim(1), c.classes);
  }
}

TEST(ModelsTest, OneHotEncoding) {
  Tensor oh = OneHot({2, 0}, 3);
  EXPECT_EQ(oh.shape(), (Tensor::Shape{2, 3}));
  EXPECT_FLOAT_EQ(oh[2], 1.0f);
  EXPECT_FLOAT_EQ(oh[3], 1.0f);
  EXPECT_FLOAT_EQ(oh[0], 0.0f);
  EXPECT_THROW(OneHot({5}, 3), CheckFailure);
}

TEST(OptimizerTest, SgdQuadraticConvergence) {
  // Minimize ||x - 3||^2 with plain SGD and with momentum.
  for (float momentum : {0.0f, 0.9f}) {
    Var x(Tensor({1}, {0.0f}), true);
    std::vector<Var> params{x};
    Sgd opt(0.1f, momentum);
    for (int i = 0; i < 200; ++i) {
      Tensor grad({1}, {2.0f * (x.value()[0] - 3.0f)});
      opt.Step(params, {grad});
    }
    EXPECT_NEAR(x.value()[0], 3.0f, 1e-2f) << "momentum=" << momentum;
  }
}

TEST(OptimizerTest, AdamQuadraticConvergence) {
  Var x(Tensor({2}, {5.0f, -5.0f}), true);
  std::vector<Var> params{x};
  Adam opt(0.2f);
  for (int i = 0; i < 300; ++i) {
    Tensor grad({2}, {2.0f * (x.value()[0] - 1.0f), 2.0f * (x.value()[1] + 2.0f)});
    opt.Step(params, {grad});
  }
  EXPECT_NEAR(x.value()[0], 1.0f, 5e-2f);
  EXPECT_NEAR(x.value()[1], -2.0f, 5e-2f);
}

TEST(OptimizerTest, LbfgsRosenbrock) {
  // Classic Rosenbrock: minimum at (1, 1).
  auto fn = [](const std::vector<float>& x, std::vector<float>& grad) -> double {
    double a = 1.0 - x[0];
    double b = x[1] - static_cast<double>(x[0]) * x[0];
    grad.resize(2);
    grad[0] = static_cast<float>(-2.0 * a - 400.0 * x[0] * b);
    grad[1] = static_cast<float>(200.0 * b);
    return a * a + 100.0 * b * b;
  };
  std::vector<float> x = {-1.2f, 1.0f};
  nn::Lbfgs lbfgs;
  double loss = 1e9;
  for (int i = 0; i < 150; ++i) {
    loss = lbfgs.Step(fn, x);
  }
  EXPECT_LT(loss, 1e-5);
  EXPECT_NEAR(x[0], 1.0f, 1e-2f);
  EXPECT_NEAR(x[1], 1.0f, 1e-2f);
}

TEST(OptimizerTest, SignedAdamIgnoresGradientMagnitude) {
  Var x1(Tensor({1}, {0.0f}), true);
  Var x2(Tensor({1}, {0.0f}), true);
  std::vector<Var> p1{x1}, p2{x2};
  Adam a1(0.1f), a2(0.1f);
  a1.set_use_grad_sign(true);
  a2.set_use_grad_sign(true);
  // Same sign, wildly different magnitudes -> identical trajectories.
  for (int i = 0; i < 10; ++i) {
    a1.Step(p1, {Tensor({1}, {1e-6f})});
    a2.Step(p2, {Tensor({1}, {1e6f})});
  }
  EXPECT_FLOAT_EQ(x1.value()[0], x2.value()[0]);
}

TEST(TrainingTest, LossDecreasesOnToyProblem) {
  Rng rng(10);
  auto model = BuildMlp(8, {16}, 3, rng);
  // Linearly separable toy data.
  Rng data_rng(11);
  Tensor inputs({60, 8});
  std::vector<int> labels(60);
  for (int i = 0; i < 60; ++i) {
    int cls = i % 3;
    labels[static_cast<size_t>(i)] = cls;
    for (int j = 0; j < 8; ++j) {
      inputs[static_cast<int64_t>(i) * 8 + j] =
          data_rng.NextGaussian() * 0.3f + (j % 3 == cls ? 1.5f : 0.0f);
    }
  }
  Tensor one_hot = OneHot(labels, 3);
  Sgd opt(0.1f);
  auto first = ComputeLossAndGrads(*model, inputs, one_hot);
  float loss = first.loss;
  opt.Step(model->params(), first.grads);
  for (int step = 0; step < 100; ++step) {
    auto lg = ComputeLossAndGrads(*model, inputs, one_hot);
    opt.Step(model->params(), lg.grads);
    loss = lg.loss;
  }
  EXPECT_LT(loss, first.loss * 0.3f);
  EXPECT_GT(Accuracy(*model, inputs, labels), 0.9);
  EXPECT_LT(MeanLoss(*model, inputs, labels, 3), 0.5);
}


TEST(CheckpointTest, BlobRoundTrip) {
  std::vector<float> params = {1.5f, -2.25f, 0.0f, 3.14159f};
  Bytes blob = SerializeCheckpoint(params);
  auto back = ParseCheckpoint(blob);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, params);
}

TEST(CheckpointTest, CorruptionDetected) {
  Bytes blob = SerializeCheckpoint({1.0f, 2.0f});
  for (size_t i = 0; i < blob.size(); i += 11) {
    Bytes bad = blob;
    bad[i] ^= 0x01;
    EXPECT_FALSE(ParseCheckpoint(bad).has_value()) << "byte " << i;
  }
  Bytes truncated(blob.begin(), blob.begin() + static_cast<long>(blob.size() / 2));
  EXPECT_FALSE(ParseCheckpoint(truncated).has_value());
  EXPECT_FALSE(ParseCheckpoint({}).has_value());
}

TEST(CheckpointTest, FileSaveLoadRestoresModel) {
  Rng rng(21);
  auto model = BuildMlp(6, {4}, 3, rng);
  std::vector<float> original = model->GetFlatParams();
  std::string path = ::testing::TempDir() + "/deta_ckpt_test.bin";
  ASSERT_TRUE(SaveCheckpoint(*model, path));

  // Perturb, then restore.
  std::vector<float> perturbed = original;
  for (auto& v : perturbed) {
    v += 1.0f;
  }
  model->SetFlatParams(perturbed);
  ASSERT_TRUE(LoadCheckpoint(*model, path));
  EXPECT_EQ(model->GetFlatParams(), original);
  std::remove(path.c_str());
}

TEST(CheckpointTest, ArchitectureMismatchRejected) {
  Rng rng(22);
  auto small = BuildMlp(4, {2}, 2, rng);
  auto big = BuildMlp(8, {4}, 3, rng);
  std::string path = ::testing::TempDir() + "/deta_ckpt_mismatch.bin";
  ASSERT_TRUE(SaveCheckpoint(*small, path));
  EXPECT_FALSE(LoadCheckpoint(*big, path));
  EXPECT_FALSE(LoadCheckpoint(*big, "/nonexistent/path.bin"));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace deta::nn
