// End-to-end centralized-baseline (FFL) training jobs.
#include <gtest/gtest.h>

#include "fl/training_job.h"

namespace deta::fl {
namespace {

ModelFactory SmallModelFactory() {
  return [] {
    Rng rng(1234);
    return nn::BuildConvNet8(1, 14, 10, rng);
  };
}


ModelFactory TinyMlpFactory() {
  return [] {
    Rng rng(1234);
    return nn::BuildMlp(14 * 14, {8}, 10, rng);
  };
}

data::Dataset SmallMnist(int n, uint64_t seed) {
  data::SyntheticConfig config;
  config.num_examples = n;
  config.classes = 10;
  config.channels = 1;
  config.image_size = 14;
  config.style = data::ImageStyle::kBlobs;
  config.seed = seed;
  config.prototype_seed = 777;
  return data::GenerateSynthetic(config);
}

std::vector<std::unique_ptr<Party>> MakePartiesWith(const ModelFactory& factory, int count,
                                                    const TrainConfig& tc) {
  data::Dataset full = SmallMnist(40 * count, 5);
  Rng rng(9);
  auto shards = data::SplitIid(full, count, rng);
  std::vector<std::unique_ptr<Party>> parties;
  for (int i = 0; i < count; ++i) {
    parties.push_back(std::make_unique<Party>("party" + std::to_string(i),
                                              shards[static_cast<size_t>(i)], factory, tc,
                                              100 + i));
  }
  return parties;
}

std::vector<std::unique_ptr<Party>> MakeParties(int count, const TrainConfig& tc) {
  return MakePartiesWith(SmallModelFactory(), count, tc);
}

TEST(FflJobTest, FedAvgLossDecreases) {
  ExecutionOptions options;
  options.rounds = 4;
  options.train.batch_size = 16;
  options.train.local_epochs = 1;
  options.train.lr = 0.1f;
  FflJob job(options, MakeParties(3, options.train), SmallModelFactory(),
             SmallMnist(60, 6));
  JobResult result = job.Run();
  const auto& metrics = result.rounds;
  ASSERT_EQ(metrics.size(), 4u);
  EXPECT_LT(metrics.back().loss, metrics.front().loss);
  EXPECT_GT(metrics.back().accuracy, 0.3);
  EXPECT_FALSE(result.final_params.empty());
  // Latency accumulates monotonically.
  for (size_t i = 1; i < metrics.size(); ++i) {
    EXPECT_GT(metrics[i].cumulative_latency_s, metrics[i - 1].cumulative_latency_s);
    EXPECT_GT(metrics[i].round_latency_s, 0.0);
  }
}

TEST(FflJobTest, FedSgdModeTrains) {
  ExecutionOptions options;
  options.rounds = 25;
  options.train.batch_size = 32;
  options.train.lr = 0.15f;
  options.train.kind = TrainConfig::UpdateKind::kGradient;
  FflJob job(options, MakeParties(3, options.train), SmallModelFactory(),
             SmallMnist(60, 6));
  JobResult result = job.Run();
  EXPECT_LT(result.rounds.back().loss, result.rounds.front().loss);
}

TEST(FflJobTest, CoordinateMedianConverges) {
  ExecutionOptions options;
  options.rounds = 4;
  options.algorithm = "coordinate_median";
  options.train.batch_size = 16;
  options.train.lr = 0.1f;
  FflJob job(options, MakeParties(3, options.train), SmallModelFactory(),
             SmallMnist(60, 6));
  JobResult result = job.Run();
  EXPECT_LT(result.rounds.back().loss, result.rounds.front().loss);
}

TEST(FflJobTest, PaillierMatchesPlainAveraging) {
  // One round of Paillier fusion must reproduce plain uniform averaging up to the
  // fixed-point codec's quantization.
  ExecutionOptions plain_options;
  plain_options.rounds = 1;
  plain_options.train.batch_size = 16;
  plain_options.train.lr = 0.1f;
  // Equal-sized shards make weighted and uniform averaging coincide.
  FflJob plain(plain_options, MakePartiesWith(TinyMlpFactory(), 3, plain_options.train),
               TinyMlpFactory(), SmallMnist(40, 6));
  JobResult plain_result = plain.Run();

  ExecutionOptions paillier_options = plain_options;
  paillier_options.use_paillier = true;
  paillier_options.paillier_modulus_bits = 256;
  FflJob homomorphic(paillier_options,
                     MakePartiesWith(TinyMlpFactory(), 3, paillier_options.train),
                     TinyMlpFactory(), SmallMnist(40, 6));
  JobResult homomorphic_result = homomorphic.Run();

  const auto& a = plain_result.final_params;
  const auto& b = homomorphic_result.final_params;
  ASSERT_EQ(a.size(), b.size());
  float max_diff = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(a[i] - b[i]));
  }
  EXPECT_LT(max_diff, 1e-4f);  // fixed-point scale 2^-20 per addend
}

TEST(PartyTest, GradientModeReturnsGradients) {
  TrainConfig tc;
  tc.kind = TrainConfig::UpdateKind::kGradient;
  tc.batch_size = 8;
  data::Dataset shard = SmallMnist(16, 3);
  Party party("p", shard, SmallModelFactory(), tc, 1);
  auto factory = SmallModelFactory();
  auto model = factory();
  std::vector<float> global = model->GetFlatParams();
  auto result = party.RunLocalRound(global, 1);
  EXPECT_EQ(result.update.values.size(), global.size());
  EXPECT_DOUBLE_EQ(result.update.weight, 16.0);
  EXPECT_GT(result.train_seconds, 0.0);
  // A gradient is not a parameter vector: norms differ wildly.
  double norm = 0;
  for (float v : result.update.values) {
    norm += static_cast<double>(v) * v;
  }
  EXPECT_GT(norm, 0.0);
}

TEST(PartyTest, ParameterModeChangesParams) {
  TrainConfig tc;
  tc.batch_size = 8;
  tc.local_epochs = 1;
  tc.lr = 0.1f;
  data::Dataset shard = SmallMnist(16, 3);
  Party party("p", shard, SmallModelFactory(), tc, 1);
  auto factory = SmallModelFactory();
  auto model = factory();
  std::vector<float> global = model->GetFlatParams();
  auto result = party.RunLocalRound(global, 1);
  EXPECT_NE(result.update.values, global);
}

}  // namespace
}  // namespace deta::fl
