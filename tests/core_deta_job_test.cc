// Full-system DeTA tests: the threaded multi-aggregator pipeline must reproduce the
// centralized baseline bit-exactly, and breached aggregators must hold only transformed
// fragments.
#include <gtest/gtest.h>

#include <set>

#include "core/deta_job.h"
#include "fl/training_job.h"

namespace deta::core {
namespace {

fl::ModelFactory SmallModelFactory() {
  return [] {
    Rng rng(1234);
    return nn::BuildConvNet8(1, 14, 10, rng);
  };
}


fl::ModelFactory TinyMlpFactory() {
  return [] {
    Rng rng(1234);
    return nn::BuildMlp(14 * 14, {8}, 10, rng);
  };
}

data::Dataset SmallMnist(int n, uint64_t seed) {
  data::SyntheticConfig config;
  config.num_examples = n;
  config.classes = 10;
  config.channels = 1;
  config.image_size = 14;
  config.style = data::ImageStyle::kBlobs;
  config.seed = seed;
  config.prototype_seed = 777;
  return data::GenerateSynthetic(config);
}

std::vector<std::unique_ptr<fl::Party>> MakePartiesWith(const fl::ModelFactory& factory,
                                                        int count,
                                                        const fl::TrainConfig& tc) {
  data::Dataset full = SmallMnist(32 * count, 5);
  Rng rng(9);
  auto shards = data::SplitIid(full, count, rng);
  std::vector<std::unique_ptr<fl::Party>> parties;
  for (int i = 0; i < count; ++i) {
    parties.push_back(std::make_unique<fl::Party>("party" + std::to_string(i),
                                                  shards[static_cast<size_t>(i)], factory,
                                                  tc, 100 + i));
  }
  return parties;
}

std::vector<std::unique_ptr<fl::Party>> MakeParties(int count, const fl::TrainConfig& tc) {
  return MakePartiesWith(SmallModelFactory(), count, tc);
}

fl::ExecutionOptions BaseOptions() {
  fl::ExecutionOptions options;
  options.rounds = 2;
  options.train.batch_size = 16;
  options.train.local_epochs = 1;
  options.train.lr = 0.1f;
  return options;
}

TEST(DetaJobTest, MatchesCentralizedBaselineBitExactly) {
  fl::ExecutionOptions base = BaseOptions();
  fl::FflJob ffl(base, MakeParties(3, base.train), SmallModelFactory(), SmallMnist(40, 6));
  fl::JobResult ffl_result = ffl.Run();

  DetaOptions deta_options;
  deta_options.num_aggregators = 3;
  DetaJob deta(base, deta_options, MakeParties(3, base.train), SmallModelFactory(),
               SmallMnist(40, 6));
  fl::JobResult deta_result = deta.Run();

  ASSERT_EQ(ffl_result.rounds.size(), deta_result.rounds.size());
  for (size_t i = 0; i < ffl_result.rounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(ffl_result.rounds[i].loss, deta_result.rounds[i].loss)
        << "round " << i;
    EXPECT_DOUBLE_EQ(ffl_result.rounds[i].accuracy, deta_result.rounds[i].accuracy);
  }
  EXPECT_EQ(ffl_result.final_params, deta_result.final_params);
}

TEST(DetaJobTest, CoordinateMedianMatchesBaseline) {
  fl::ExecutionOptions base = BaseOptions();
  base.algorithm = "coordinate_median";
  fl::FflJob ffl(base, MakeParties(3, base.train), SmallModelFactory(), SmallMnist(40, 6));
  fl::JobResult ffl_result = ffl.Run();

  DetaOptions deta_options;
  deta_options.num_aggregators = 2;
  DetaJob deta(base, deta_options, MakeParties(3, base.train), SmallModelFactory(),
               SmallMnist(40, 6));
  fl::JobResult deta_result = deta.Run();
  EXPECT_EQ(ffl_result.final_params, deta_result.final_params);
}

TEST(DetaJobTest, FedSgdMatchesBaseline) {
  fl::ExecutionOptions base = BaseOptions();
  base.rounds = 3;
  base.train.kind = fl::TrainConfig::UpdateKind::kGradient;
  fl::FflJob ffl(base, MakeParties(2, base.train), SmallModelFactory(), SmallMnist(40, 6));
  fl::JobResult ffl_result = ffl.Run();

  DetaOptions deta_options;
  deta_options.num_aggregators = 3;
  DetaJob deta(base, deta_options, MakeParties(2, base.train), SmallModelFactory(),
               SmallMnist(40, 6));
  fl::JobResult deta_result = deta.Run();

  const auto& a = ffl_result.final_params;
  const auto& b = deta_result.final_params;
  ASSERT_EQ(a.size(), b.size());
  float max_diff = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(a[i] - b[i]));
  }
  EXPECT_EQ(max_diff, 0.0f);
}

TEST(DetaJobTest, CustomProportionsWork) {
  fl::ExecutionOptions base = BaseOptions();
  base.rounds = 1;
  DetaOptions deta_options;
  deta_options.num_aggregators = 3;
  deta_options.proportions = {0.6, 0.2, 0.2};
  DetaJob deta(base, deta_options, MakeParties(2, base.train), SmallModelFactory(),
               SmallMnist(30, 6));
  fl::JobResult result = deta.Run();
  EXPECT_EQ(result.rounds.size(), 1u);
  // Partition sizes honor the proportions.
  const auto& mapper = deta.transform().mapper();
  EXPECT_GT(mapper.PartitionSize(0), mapper.PartitionSize(1) * 2);
}

TEST(DetaJobTest, PaillierFusionMatchesBaselineApproximately) {
  fl::ExecutionOptions base = BaseOptions();
  base.rounds = 1;
  base.use_paillier = true;
  base.paillier_modulus_bits = 256;
  fl::FflJob ffl(base, MakePartiesWith(TinyMlpFactory(), 2, base.train), TinyMlpFactory(),
                 SmallMnist(30, 6));
  fl::JobResult ffl_result = ffl.Run();

  DetaOptions deta_options;
  deta_options.num_aggregators = 2;
  DetaJob deta(base, deta_options, MakePartiesWith(TinyMlpFactory(), 2, base.train),
               TinyMlpFactory(), SmallMnist(30, 6));
  fl::JobResult deta_result = deta.Run();

  const auto& a = ffl_result.final_params;
  const auto& b = deta_result.final_params;
  ASSERT_EQ(a.size(), b.size());
  float max_diff = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(a[i] - b[i]));
  }
  EXPECT_LT(max_diff, 1e-4f);
}

// §6 worst case: dump every aggregator CVM and verify what leaks is only the transformed
// fragments — no aggregator holds a full update, and the fragments differ from the true
// in-order coordinate values.
TEST(DetaJobTest, BreachedAggregatorsHoldOnlyFragments) {
  fl::ExecutionOptions base = BaseOptions();
  base.rounds = 1;
  DetaOptions deta_options;
  deta_options.num_aggregators = 3;
  DetaJob deta(base, deta_options, MakeParties(2, base.train), SmallModelFactory(),
               SmallMnist(30, 6));
  deta.Run();

  int64_t total_params = 0;
  {
    auto factory = SmallModelFactory();
    total_params = factory()->NumParameters();
  }
  for (const auto& cvm : deta.aggregator_cvms()) {
    auto dump = cvm->Breach();
    EXPECT_FALSE(dump.empty());
    for (const auto& [region, plaintext] : dump) {
      if (region.rfind("update:", 0) == 0) {
        fl::ModelUpdate fragment = fl::DeserializeUpdate(plaintext);
        // Fragment, not the whole update.
        EXPECT_LT(static_cast<int64_t>(fragment.values.size()), total_params);
        EXPECT_GT(fragment.values.size(), 0u);
      }
    }
  }
}

TEST(DetaJobTest, SingleAggregatorNoTransformModeWorks) {
  // §4.2: users can run one CVM-protected aggregator with partitioning/shuffling off
  // (e.g. for FLTrust-style algorithms needing the full model).
  fl::ExecutionOptions base = BaseOptions();
  base.rounds = 1;
  DetaOptions deta_options;
  deta_options.num_aggregators = 1;
  deta_options.enable_partition = false;
  deta_options.enable_shuffle = false;
  DetaJob deta(base, deta_options, MakeParties(2, base.train), SmallModelFactory(),
               SmallMnist(30, 6));
  fl::JobResult deta_result = deta.Run();
  EXPECT_EQ(deta_result.rounds.size(), 1u);

  fl::FflJob ffl(base, MakeParties(2, base.train), SmallModelFactory(), SmallMnist(30, 6));
  fl::JobResult ffl_result = ffl.Run();
  EXPECT_EQ(ffl_result.final_params, deta_result.final_params);
}

TEST(DetaJobTest, AttestationTimeReportedSeparately) {
  fl::ExecutionOptions base = BaseOptions();
  base.rounds = 1;
  DetaOptions deta_options;
  deta_options.num_aggregators = 2;
  DetaJob deta(base, deta_options, MakeParties(2, base.train), SmallModelFactory(),
               SmallMnist(30, 6));
  fl::JobResult result = deta.Run();
  ASSERT_TRUE(result.ok()) << result.error;
  ASSERT_FALSE(result.rounds.empty());
  // One-time attestation/provisioning cost is reported in JobResult::setup_seconds and
  // does not silently inflate per-round latency.
  EXPECT_GT(result.setup_seconds, 0.0);
  EXPECT_GT(result.rounds[0].round_latency_s, 0.0);
}

// The deterministic parallel layer must not change results: the whole FFL-vs-DeTA
// bit-exactness contract has to hold at any thread count.
TEST(DetaJobTest, ThreadCountDoesNotChangeResults) {
  std::vector<float> reference;
  for (int threads : {1, 2, 8}) {
    fl::ExecutionOptions base = BaseOptions();
    base.rounds = 1;
    base.threads = threads;
    DetaOptions deta_options;
    deta_options.num_aggregators = 3;
    DetaJob deta(base, deta_options, MakeParties(3, base.train), SmallModelFactory(),
                 SmallMnist(30, 6));
    fl::JobResult result = deta.Run();
    if (reference.empty()) {
      reference = result.final_params;
    } else {
      EXPECT_EQ(reference, result.final_params) << "threads=" << threads;
    }
  }
}

// The acceptance bar for the robustness layer: a seeded plan dropping ~5% of all
// protocol messages — including auth handshake and key-broker traffic — must converge
// bit-identically to the fault-free run, because every lost message is retransmitted
// and every receiver is idempotent.
TEST(DetaJobFaultTest, FivePercentDropConvergesBitExact) {
  fl::ExecutionOptions base = BaseOptions();
  DetaOptions deta_options;
  deta_options.num_aggregators = 3;

  DetaJob clean(base, deta_options, MakePartiesWith(TinyMlpFactory(), 3, base.train),
                TinyMlpFactory(), SmallMnist(30, 6));
  fl::JobResult clean_result = clean.Run();
  ASSERT_EQ(clean_result.status, fl::JobStatus::kOk);

  fl::ExecutionOptions faulty = base;
  faulty.fault_plan.seed = 7;
  faulty.fault_plan.default_rates.drop = 0.05;
  // Guarantee the interesting setup paths are hit regardless of how load-dependent
  // retransmissions shift the per-edge schedules: burst-drop exactly the first
  // two-phase-auth challenge and the first key-broker fetch.
  net::EdgeFault first_auth;
  first_auth.type_prefix = "auth.challenge";
  first_auth.rates.drop = 1.0;
  first_auth.max_faults = 1;
  net::EdgeFault first_fetch;
  first_fetch.type_prefix = "kb.fetch";
  first_fetch.rates.drop = 1.0;
  first_fetch.max_faults = 1;
  faulty.fault_plan.overrides = {first_auth, first_fetch};
  DetaJob deta(faulty, deta_options, MakePartiesWith(TinyMlpFactory(), 3, faulty.train),
               TinyMlpFactory(), SmallMnist(30, 6));
  fl::JobResult result = deta.Run();

  EXPECT_EQ(result.status, fl::JobStatus::kOk);
  EXPECT_TRUE(result.ok());
  // The plan actually exercised the interesting paths: at least one two-phase-auth
  // message and one key-broker message were lost and recovered.
  EXPECT_GE(deta.bus().DroppedCountWithPrefix("auth."), 1u);
  EXPECT_GE(deta.bus().DroppedCountWithPrefix("kb."), 1u);
  EXPECT_GT(deta.bus().DroppedCount(), 0u);
  // No party was fully dropped, so every round completed with everyone aboard...
  ASSERT_EQ(result.rounds.size(), clean_result.rounds.size());
  EXPECT_TRUE(result.per_round_dropouts.empty());
  // ...and the result is bitwise identical to the fault-free run.
  EXPECT_EQ(result.final_params, clean_result.final_params);
  for (size_t i = 0; i < result.rounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(result.rounds[i].loss, clean_result.rounds[i].loss) << "round " << i;
  }
}

// A party whose uploads never arrive is skipped per round — recorded, not fatal — and
// the same fault seed reproduces the same dropout schedule.
TEST(DetaJobFaultTest, DropoutScheduleIsDeterministic) {
  auto run = [] {
    fl::ExecutionOptions base = BaseOptions();
    base.fault_plan.seed = 5;
    net::EdgeFault fault;
    fault.from = "party2";
    fault.type_prefix = "round.upload";
    fault.rates.drop = 1.0;
    base.fault_plan.overrides.push_back(fault);
    DetaOptions deta_options;
    deta_options.num_aggregators = 2;
    deta_options.quorum = 2;  // aggregate once the two live parties are in
    DetaJob deta(base, deta_options, MakePartiesWith(TinyMlpFactory(), 3, base.train),
                 TinyMlpFactory(), SmallMnist(30, 6));
    return deta.Run();
  };
  fl::JobResult first = run();
  EXPECT_EQ(first.status, fl::JobStatus::kOk);
  ASSERT_EQ(first.rounds.size(), 2u);
  std::map<int, std::vector<std::string>> expected = {{1, {"party2"}}, {2, {"party2"}}};
  EXPECT_EQ(first.per_round_dropouts, expected);

  fl::JobResult second = run();
  EXPECT_EQ(second.per_round_dropouts, first.per_round_dropouts);
  EXPECT_EQ(second.final_params, first.final_params);
}

// When no quorum can form, the job ends with a typed error instead of hanging.
TEST(DetaJobFaultTest, QuorumFailureIsTypedNotAHang) {
  fl::ExecutionOptions base = BaseOptions();
  base.fault_plan.seed = 5;
  net::EdgeFault fault;
  fault.type_prefix = "round.upload";  // every upload from every party
  fault.rates.drop = 1.0;
  base.fault_plan.overrides.push_back(fault);
  base.round_timeout_ms = 700;    // keep the doomed round short; setup pacing stays default
  base.setup_timeout_ms = 120000;  // sanitizer builds slow the auth handshakes ~10-20x
  DetaOptions deta_options;
  deta_options.num_aggregators = 2;
  DetaJob deta(base, deta_options, MakePartiesWith(TinyMlpFactory(), 2, base.train),
               TinyMlpFactory(), SmallMnist(30, 6));
  fl::JobResult result = deta.Run();
  EXPECT_EQ(result.status, fl::JobStatus::kQuorumFailed);
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.error.empty());
  EXPECT_TRUE(result.rounds.empty());
}

}  // namespace
}  // namespace deta::core
