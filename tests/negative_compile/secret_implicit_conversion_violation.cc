// Must NOT compile: implicit conversion from Secret<T> back to T. Without this,
// any T-shaped sink — wire codecs, ToHex, a return value — silently launders the
// taint away; every detaint must be an audited Expose* call instead.
#include "common/secret.h"

deta::Bytes LaunderSecret() {
  deta::Secret<deta::Bytes> key(deta::Bytes{0x01, 0x02});
  deta::Bytes plain = key;
  return plain;
}
