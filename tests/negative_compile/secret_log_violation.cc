// Must NOT compile: streaming a Secret into a log statement. The deleted
// templated operator<< wins overload resolution for any stream type, so the
// leak dies at compile time instead of surviving until deta_lint runs.
#include "common/logging.h"
#include "common/secret.h"

void LeakToLog() {
  deta::Secret<deta::Bytes> key(deta::Bytes{0x01, 0x02});
  LOG_INFO << "master secret is " << key;
}
