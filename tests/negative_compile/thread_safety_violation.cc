// Must NOT compile under clang -Wthread-safety -Werror=thread-safety: both methods touch
// a DETA_GUARDED_BY member without holding the annotated mutex. If this file ever starts
// compiling, the analysis has been silently disabled (annotations no-opped, flags
// dropped) and lint.thread_safety_negcompile fails the build.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Bump() {
    ++value_;  // write without mutex_ held
  }

  int Get() const {
    return value_;  // read without mutex_ held
  }

 private:
  mutable deta::Mutex mutex_;
  int value_ DETA_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Bump();
  return counter.Get();
}
