// Must NOT compile: exposing a temporary Secret. The const&&-qualified Expose*
// overloads are deleted — a temporary's exposure would return a reference that
// dangles as soon as the full expression ends, and would leave no owner whose
// audit trail covers the exposed bytes.
#include "common/secret.h"

deta::Secret<deta::Bytes> MakeKey();

const deta::Bytes& DanglingExposure() {
  return MakeKey().ExposeForCrypto();
}
