// Control for the negative-compile check: identical shape to
// thread_safety_violation.cc but correctly locked, so it must compile cleanly under
// clang -Wthread-safety -Werror=thread-safety. This proves the violation file is
// rejected by the analysis itself, not by a broken include path or flag typo.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Bump() {
    deta::MutexLock lock(mutex_);
    ++value_;
  }

  int Get() const {
    deta::MutexLock lock(mutex_);
    return value_;
  }

 private:
  mutable deta::Mutex mutex_;
  int value_ DETA_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Bump();
  return counter.Get();
}
