// Must NOT compile: adding a Secret to a snapshot section directly. Snapshot::Add
// takes Bytes; a Secret<Bytes> only reaches it through ExposeForSeal() — and the
// sanctioned pattern wraps that exposure in SealKey::Seal so ciphertext, not key
// material, lands on disk.
#include "common/secret.h"
#include "persist/codec.h"

void LeakToSnapshot(deta::persist::Snapshot& snap) {
  deta::Secret<deta::Bytes> permutation_key(deta::Bytes{0x01, 0x02});
  snap.Add(deta::persist::SectionType::kKeyMaterial, "perm_key", permutation_key);
}
