// Control for the Secret<T> negative-compile gate: every *sanctioned* use of the
// taint wrapper must compile. If this file breaks, the violation fixtures' failures
// prove nothing (they could all be failing on a bad include path).
#include <utility>

#include "common/secret.h"
#include "crypto/bigint.h"

namespace {

using deta::Bytes;
using deta::Secret;

// A Seal-shaped sink: takes the exposed plaintext by const reference.
deta::Bytes SealLike(const deta::Bytes& plaintext) { return plaintext; }

void SanctionedUses() {
  // Explicit construction introduces taint deliberately.
  Secret<Bytes> key(Bytes{0x01, 0x02, 0x03});

  // Copy / move / assignment keep the value inside the wrapper.
  Secret<Bytes> copy = key;
  Secret<Bytes> moved = std::move(copy);
  copy = moved;

  // Equality without exposure.
  bool same = key == moved;
  (void)same;

  // Audited exposure into crypto / seal sinks.
  Bytes sealed = SealLike(key.ExposeForSeal());
  (void)sealed;
  const Bytes& raw = key.ExposeForCrypto();
  (void)raw;

  // Mutation for deserialization paths, and explicit early erasure.
  moved.ExposeMutable().push_back(0x04);
  moved.WipeNow();

  // Wrapping a type with its own Wipe() (BigUint zeroes its limbs).
  Secret<deta::crypto::BigUint> scalar(deta::crypto::BigUint(42));
  scalar.WipeNow();
}

}  // namespace

int main() {
  SanctionedUses();
  return 0;
}
