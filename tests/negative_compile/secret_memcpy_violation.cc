// Must NOT compile: memcpy-ing a Secret's contents out through the wrapper.
// Secret<T> converts to neither T nor a pointer, so the classic "copy the key
// into a scratch buffer" leak has no overload to land on.
#include <cstring>

#include "common/secret.h"

void LeakViaMemcpy(unsigned char* out) {
  deta::Secret<deta::Bytes> key(deta::Bytes{0x01, 0x02, 0x03, 0x04});
  std::memcpy(out, key, 4);
}
