// Must NOT compile: a Secret used as a telemetry metric name/label. The metric
// registry takes std::string, and Secret<std::string> has no conversion to it —
// key material cannot become a counter name without an audited Expose* call.
#include <string>

#include "common/secret.h"
#include "common/telemetry.h"

void LeakToTelemetry() {
  deta::Secret<std::string> derived_label(std::string("kdf-context"));
  DETA_COUNTER(derived_label).Increment();
}
