#include <gtest/gtest.h>

#include "common/check.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "fl/aggregation.h"

namespace deta::fl {
namespace {

ModelUpdate MakeUpdate(std::vector<float> values, double weight = 1.0) {
  ModelUpdate u;
  u.values = std::move(values);
  u.weight = weight;
  return u;
}

TEST(UpdateTest, SerializationRoundTrip) {
  ModelUpdate u = MakeUpdate({1.5f, -2.0f, 0.0f}, 42.0);
  ModelUpdate back = DeserializeUpdate(SerializeUpdate(u));
  EXPECT_EQ(back.values, u.values);
  EXPECT_DOUBLE_EQ(back.weight, u.weight);
}

TEST(IterativeAveragingTest, UnweightedMean) {
  IterativeAveraging avg;
  auto out = avg.Aggregate({MakeUpdate({1, 2}), MakeUpdate({3, 4})});
  EXPECT_FLOAT_EQ(out[0], 2.0f);
  EXPECT_FLOAT_EQ(out[1], 3.0f);
}

TEST(IterativeAveragingTest, WeightedMean) {
  IterativeAveraging avg;
  // weights 3:1 -> (3*0 + 1*4)/4 = 1
  auto out = avg.Aggregate({MakeUpdate({0}, 3.0), MakeUpdate({4}, 1.0)});
  EXPECT_FLOAT_EQ(out[0], 1.0f);
}

TEST(IterativeAveragingTest, RejectsEmptyAndMismatched) {
  IterativeAveraging avg;
  EXPECT_THROW(avg.Aggregate({}), CheckFailure);
  EXPECT_THROW(avg.Aggregate({MakeUpdate({1}), MakeUpdate({1, 2})}), CheckFailure);
}

TEST(CoordinateMedianTest, OddAndEvenCounts) {
  CoordinateMedian median;
  auto odd = median.Aggregate({MakeUpdate({1, 10}), MakeUpdate({2, 20}), MakeUpdate({9, 0})});
  EXPECT_FLOAT_EQ(odd[0], 2.0f);
  EXPECT_FLOAT_EQ(odd[1], 10.0f);
  auto even = median.Aggregate({MakeUpdate({1}), MakeUpdate({3}), MakeUpdate({5}),
                                MakeUpdate({100})});
  EXPECT_FLOAT_EQ(even[0], 4.0f);
}

TEST(CoordinateMedianTest, RobustToOneOutlier) {
  CoordinateMedian median;
  auto out = median.Aggregate(
      {MakeUpdate({1.0f, 1.0f}), MakeUpdate({1.1f, 0.9f}), MakeUpdate({1e9f, -1e9f})});
  EXPECT_LT(std::abs(out[0] - 1.05f), 0.1f);
}

TEST(KrumTest, SelectsFromHonestCluster) {
  Krum krum(/*byzantine=*/1);
  // Three clustered honest updates + one far outlier; Krum must return a cluster member.
  std::vector<ModelUpdate> updates = {
      MakeUpdate({1.0f, 1.0f}), MakeUpdate({1.1f, 1.0f}), MakeUpdate({0.9f, 1.1f}),
      MakeUpdate({50.0f, -50.0f})};
  auto out = krum.Aggregate(updates);
  EXPECT_LT(std::abs(out[0] - 1.0f), 0.2f);
  EXPECT_LT(std::abs(out[1] - 1.0f), 0.2f);
}

TEST(KrumTest, ReturnsVerbatimUpdate) {
  Krum krum(0);
  auto out = krum.Aggregate({MakeUpdate({1, 2, 3}), MakeUpdate({1, 2, 4})});
  // Output must be exactly one of the inputs.
  EXPECT_TRUE((out == std::vector<float>{1, 2, 3}) || (out == std::vector<float>{1, 2, 4}));
}

TEST(FlameTest, FiltersPoisonedUpdate) {
  Flame flame;
  // Honest gradients point one way; the poisoned one is reversed and huge.
  std::vector<ModelUpdate> updates = {
      MakeUpdate({1.0f, 2.0f, 1.0f}), MakeUpdate({1.1f, 1.9f, 1.0f}),
      MakeUpdate({0.9f, 2.1f, 1.1f}), MakeUpdate({-40.0f, -80.0f, -40.0f})};
  auto out = flame.Aggregate(updates);
  // The result should stay near the honest cluster mean, not get dragged negative.
  EXPECT_GT(out[0], 0.3f);
  EXPECT_GT(out[1], 0.5f);
}

TEST(FlameTest, SmallCohortFallsBackToMean) {
  Flame flame;
  auto out = flame.Aggregate({MakeUpdate({2}), MakeUpdate({4})});
  EXPECT_FLOAT_EQ(out[0], 3.0f);
}

TEST(TrimmedMeanTest, DropsExtremes) {
  TrimmedMean trimmed(1);
  auto out = trimmed.Aggregate(
      {MakeUpdate({-100}), MakeUpdate({1}), MakeUpdate({2}), MakeUpdate({100})});
  EXPECT_FLOAT_EQ(out[0], 1.5f);
  EXPECT_THROW(TrimmedMean(2).Aggregate({MakeUpdate({1}), MakeUpdate({2})}), CheckFailure);
}

TEST(MultiKrumTest, AveragesHonestCluster) {
  MultiKrum multi(1, 3);
  std::vector<ModelUpdate> updates = {
      MakeUpdate({1.0f}), MakeUpdate({1.2f}), MakeUpdate({0.8f}), MakeUpdate({100.0f})};
  auto out = multi.Aggregate(updates);
  EXPECT_NEAR(out[0], 1.0f, 0.01f);
}

TEST(MultiKrumTest, SelectOneEqualsKrum) {
  MultiKrum multi(1, 1);
  Krum krum(1);
  std::vector<ModelUpdate> updates = {MakeUpdate({1.0f, 2.0f}), MakeUpdate({1.1f, 2.1f}),
                                      MakeUpdate({0.9f, 1.9f}), MakeUpdate({-50.0f, 50.0f})};
  EXPECT_EQ(multi.Aggregate(updates), krum.Aggregate(updates));
}

TEST(BulyanTest, SurvivesCoordinateAndSelectionAttacks) {
  Bulyan bulyan(1);
  // One update is selection-plausible but has a single poisoned coordinate; plain
  // Multi-Krum averaging would absorb it, Bulyan's coordinate-wise trim rejects it.
  std::vector<ModelUpdate> updates = {
      MakeUpdate({1.0f, 1.0f, 1.0f}), MakeUpdate({1.1f, 0.9f, 1.0f}),
      MakeUpdate({0.9f, 1.1f, 1.0f}), MakeUpdate({1.0f, 1.0f, 1.05f}),
      MakeUpdate({1.0f, 1.0f, 500.0f}),  // hidden coordinate spike
      MakeUpdate({1.05f, 0.95f, 1.0f}), MakeUpdate({0.95f, 1.05f, 1.0f})};
  auto out = bulyan.Aggregate(updates);
  EXPECT_NEAR(out[0], 1.0f, 0.1f);
  EXPECT_NEAR(out[2], 1.0f, 0.2f) << "coordinate spike must be trimmed";
}

TEST(MakeAlgorithmTest, FactoryNames) {
  for (const char* name : {"iterative_averaging", "coordinate_median", "krum", "flame",
                           "trimmed_mean", "multi_krum", "bulyan"}) {
    auto algorithm = MakeAlgorithm(name);
    ASSERT_NE(algorithm, nullptr);
    EXPECT_EQ(algorithm->Name(), name);
  }
  EXPECT_THROW(MakeAlgorithm("nope"), CheckFailure);
}

// §4.2: shuffling must not change distance-based algorithms' outcomes. Apply the same
// permutation to all updates and verify Krum picks the same party and coordinate median /
// mean commute with the permutation.
TEST(ShuffleInvarianceTest, AlgorithmsCommuteWithPermutation) {
  Rng rng(77);
  const size_t n = 64;
  std::vector<ModelUpdate> updates;
  for (int p = 0; p < 5; ++p) {
    std::vector<float> v(n);
    for (auto& x : v) {
      x = rng.NextGaussian();
    }
    updates.push_back(MakeUpdate(std::move(v), 1.0 + p));
  }
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) {
    perm[i] = i;
  }
  rng.Shuffle(perm);
  auto permute = [&](const std::vector<float>& v) {
    std::vector<float> out(n);
    for (size_t i = 0; i < n; ++i) {
      out[i] = v[perm[i]];
    }
    return out;
  };
  std::vector<ModelUpdate> shuffled;
  for (const auto& u : updates) {
    shuffled.push_back(MakeUpdate(permute(u.values), u.weight));
  }

  for (const char* name : {"iterative_averaging", "coordinate_median", "krum", "flame",
                           "trimmed_mean", "multi_krum", "bulyan"}) {
    auto algorithm = MakeAlgorithm(name);
    auto direct = algorithm->Aggregate(updates);
    auto via_shuffle = algorithm->Aggregate(shuffled);
    auto expected = permute(direct);
    ASSERT_EQ(via_shuffle.size(), expected.size()) << name;
    for (size_t i = 0; i < n; ++i) {
      EXPECT_FLOAT_EQ(via_shuffle[i], expected[i]) << name << " coord " << i;
    }
  }
}

// The parallel layer's core contract: chunk boundaries depend only on the range and
// grain, never the thread count, so every algorithm must produce bitwise-identical
// outputs for any ExecutionOptions::threads value.
TEST(ThreadInvarianceTest, AllAlgorithmsBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(42);
  const size_t n = 50000;  // spans several chunks at the aggregation grain sizes
  std::vector<ModelUpdate> updates;
  for (int p = 0; p < 5; ++p) {
    std::vector<float> v(n);
    for (auto& x : v) {
      x = rng.NextGaussian();
    }
    updates.push_back(MakeUpdate(std::move(v), 1.0 + p));
  }

  for (const char* name : {"iterative_averaging", "coordinate_median", "krum", "flame",
                           "trimmed_mean", "multi_krum", "bulyan"}) {
    auto algorithm = MakeAlgorithm(name);
    std::vector<float> reference;
    for (int threads : {1, 2, 8}) {
      parallel::ScopedThreads scoped(threads);
      auto out = algorithm->Aggregate(updates);
      if (reference.empty()) {
        reference = std::move(out);
      } else {
        EXPECT_EQ(out, reference) << name << " diverges at threads=" << threads;
      }
    }
  }
}

}  // namespace
}  // namespace deta::fl
