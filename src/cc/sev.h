// Software model of AMD SEV (§3.2, §4.3 of the paper). The protocol artifacts are real
// (measurements, certificate chains, ECDSA signatures, encrypted guest memory); only the
// hardware root of trust is emulated — see DESIGN.md's substitution table.
//
// Modelled pieces:
//   * RemoteAttestationService — "AMD RAS": owns the ARK root key, signs the ASK, and
//     lets platforms obtain PEK certificates (simplified 3-link chain ARK→ASK→PEK).
//   * SevPlatform — one SEV-capable host: secure processor holding the PEK and per-CVM
//     VM encryption keys (VEKs), measured CVM launch, attestation report generation,
//     launch-secret injection into encrypted guest memory, CVM resume.
//   * Cvm — a confidential VM: image measurement (SHA-256 standing in for the OVMF launch
//     digest), memory regions encrypted under the VEK, and explicit adversary views:
//     HypervisorRead() (what a rogue host admin sees — ciphertext) and Breach() (what a
//     successful SEV exploit yields — plaintext; drives the §6 worst-case analysis).
#ifndef DETA_CC_SEV_H_
#define DETA_CC_SEV_H_

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "crypto/chacha20.h"
#include "crypto/ec.h"
#include "crypto/ecdsa.h"

namespace deta::cc {

// Simplified AMD certificate chain: ARK (root) signs ASK, ASK signs the platform's PEK.
struct CertChain {
  crypto::EcPoint ark_public;
  crypto::EcPoint ask_public;
  crypto::EcdsaSignature ark_signature_on_ask;  // over encoded ASK key
  crypto::EcPoint pek_public;
  crypto::EcdsaSignature ask_signature_on_pek;  // over encoded PEK key

  // Validates both links against a trusted root key.
  bool Verify(const crypto::EcPoint& trusted_root) const;
};

struct AttestationReport {
  std::string platform_id;
  Bytes measurement;  // SHA-256 of the launched CVM image
  Bytes nonce;        // verifier freshness challenge
  CertChain chain;
  crypto::EcdsaSignature signature;  // PEK signature over the report body

  Bytes Body() const;  // canonical signed bytes
};

class SevPlatform;

// A confidential VM. Its memory is a set of named regions stored encrypted under the
// platform-held VEK; the guest decrypts transparently (GuestRead), the hypervisor sees
// ciphertext (HypervisorRead).
class Cvm {
 public:
  enum class State { kPaused, kRunning, kTerminated };

  const std::string& id() const { return id_; }
  State state() const { return state_; }
  const Bytes& measurement() const { return measurement_; }

  // In-guest accesses (only valid while running).
  void GuestWrite(const std::string& region, const Bytes& plaintext);
  std::optional<Bytes> GuestRead(const std::string& region) const;

  // Host-adversary view: raw encrypted bytes (what SEV protects against).
  std::optional<Bytes> HypervisorRead(const std::string& region) const;

  // Worst-case CC-breach view (§6): the attacker has defeated SEV and can decrypt all
  // guest memory. Returns every region in plaintext.
  std::map<std::string, Bytes> Breach() const;

  void Terminate() { state_ = State::kTerminated; }

 private:
  friend class SevPlatform;
  Cvm(std::string id, Bytes measurement, std::array<uint8_t, crypto::kChaChaKeySize> vek);

  Bytes EncryptRegion(const std::string& region, const Bytes& plaintext) const;
  Bytes DecryptRegion(const std::string& region, const Bytes& ciphertext) const;

  std::string id_;
  State state_ = State::kPaused;
  Bytes measurement_;
  std::array<uint8_t, crypto::kChaChaKeySize> vek_;  // held by the secure processor
  std::map<std::string, Bytes> encrypted_memory_;
};

// "AMD RAS": root of the certificate hierarchy.
class RemoteAttestationService {
 public:
  explicit RemoteAttestationService(crypto::SecureRng& rng);

  // Issues a certificate chain for a platform endorsement key.
  CertChain IssuePlatformChain(const crypto::EcPoint& pek_public);

  const crypto::EcPoint& RootKey() const { return ark_.public_key; }

 private:
  crypto::EcKeyPair ark_;
  crypto::EcKeyPair ask_;
  crypto::EcdsaSignature ark_signature_on_ask_;
};

// One SEV-capable host machine.
class SevPlatform {
 public:
  SevPlatform(std::string platform_id, RemoteAttestationService& ras, crypto::SecureRng& rng);

  const std::string& id() const { return platform_id_; }

  // Measured launch; the CVM starts paused, as in the paper's phase I, so a secret can be
  // injected after attestation and before any guest code runs.
  std::shared_ptr<Cvm> LaunchPausedCvm(const std::string& cvm_id, const Bytes& image);

  // Secure-processor attestation report over (measurement, nonce).
  AttestationReport GenerateReport(const Cvm& cvm, const Bytes& nonce) const;

  // Phase-I secret injection: |sealed| is ECDH-wrapped to this platform's transport key;
  // the secure processor unwraps it and writes it into the paused CVM's encrypted memory.
  bool InjectLaunchSecret(Cvm& cvm, const std::string& region, const Bytes& sealed,
                          const crypto::EcPoint& sender_ephemeral_public);

  void Resume(Cvm& cvm);

  // Public half of the transport key used to wrap launch secrets for this platform.
  const crypto::EcPoint& TransportPublicKey() const { return transport_.public_key; }

 private:
  std::string platform_id_;
  crypto::EcKeyPair pek_;        // platform endorsement key (signs reports)
  crypto::EcKeyPair transport_;  // launch-secret wrapping key
  CertChain chain_;
  crypto::SecureRng rng_;
};

// Seals |secret| for |platform_transport_public| (ECDH + AEAD); used by the attestation
// proxy to provision tokens. Returns the sealed blob and the ephemeral public key.
struct SealedSecret {
  Bytes ciphertext;
  crypto::EcPoint ephemeral_public;
};
SealedSecret SealForPlatform(const Bytes& secret, const crypto::EcPoint& platform_transport_public,
                             crypto::SecureRng& rng);

}  // namespace deta::cc

#endif  // DETA_CC_SEV_H_
