#include "cc/sev.h"

#include "common/check.h"
#include "common/logging.h"
#include "crypto/aead.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "net/codec.h"

namespace deta::cc {

namespace {

const crypto::Secp256k1& Curve() { return crypto::Secp256k1::Instance(); }

}  // namespace

bool CertChain::Verify(const crypto::EcPoint& trusted_root) const {
  if (!(ark_public == trusted_root)) {
    return false;
  }
  if (!crypto::EcdsaVerify(ark_public, Curve().Encode(ask_public), ark_signature_on_ask)) {
    return false;
  }
  return crypto::EcdsaVerify(ask_public, Curve().Encode(pek_public), ask_signature_on_pek);
}

Bytes AttestationReport::Body() const {
  net::Writer w;
  w.WriteString(platform_id);
  w.WriteBytes(measurement);
  w.WriteBytes(nonce);
  w.WriteBytes(Curve().Encode(chain.pek_public));
  return w.Take();
}

Cvm::Cvm(std::string id, Bytes measurement, std::array<uint8_t, crypto::kChaChaKeySize> vek)
    : id_(std::move(id)), measurement_(std::move(measurement)), vek_(vek) {}

Bytes Cvm::EncryptRegion(const std::string& region, const Bytes& plaintext) const {
  // Region name -> deterministic per-region nonce (models the ASID/C-bit page tagging;
  // regions are whole-value replaced, so nonce reuse across writes is not a concern for
  // the simulation's threat model).
  Bytes nonce_seed = crypto::Sha256Digest(StringToBytes("vek-nonce:" + region));
  std::array<uint8_t, crypto::kChaChaNonceSize> nonce;
  std::copy(nonce_seed.begin(), nonce_seed.begin() + crypto::kChaChaNonceSize, nonce.begin());
  return crypto::ChaCha20Xor(vek_, nonce, 0, plaintext);
}

Bytes Cvm::DecryptRegion(const std::string& region, const Bytes& ciphertext) const {
  return EncryptRegion(region, ciphertext);  // XOR stream cipher: symmetric
}

void Cvm::GuestWrite(const std::string& region, const Bytes& plaintext) {
  DETA_CHECK_MSG(state_ == State::kRunning, "guest write on non-running CVM");
  encrypted_memory_[region] = EncryptRegion(region, plaintext);
}

std::optional<Bytes> Cvm::GuestRead(const std::string& region) const {
  if (state_ != State::kRunning) {
    return std::nullopt;
  }
  auto it = encrypted_memory_.find(region);
  if (it == encrypted_memory_.end()) {
    return std::nullopt;
  }
  return DecryptRegion(region, it->second);
}

std::optional<Bytes> Cvm::HypervisorRead(const std::string& region) const {
  auto it = encrypted_memory_.find(region);
  if (it == encrypted_memory_.end()) {
    return std::nullopt;
  }
  return it->second;  // ciphertext: this is all a rogue host admin can see
}

std::map<std::string, Bytes> Cvm::Breach() const {
  std::map<std::string, Bytes> plaintext;
  for (const auto& [region, ciphertext] : encrypted_memory_) {
    plaintext[region] = DecryptRegion(region, ciphertext);
  }
  return plaintext;
}

RemoteAttestationService::RemoteAttestationService(crypto::SecureRng& rng)
    : ark_(crypto::GenerateEcKey(rng)), ask_(crypto::GenerateEcKey(rng)) {
  ark_signature_on_ask_ = crypto::EcdsaSign(ark_.private_key, Curve().Encode(ask_.public_key));
}

CertChain RemoteAttestationService::IssuePlatformChain(const crypto::EcPoint& pek_public) {
  CertChain chain;
  chain.ark_public = ark_.public_key;
  chain.ask_public = ask_.public_key;
  chain.ark_signature_on_ask = ark_signature_on_ask_;
  chain.pek_public = pek_public;
  chain.ask_signature_on_pek =
      crypto::EcdsaSign(ask_.private_key, Curve().Encode(pek_public));
  return chain;
}

SevPlatform::SevPlatform(std::string platform_id, RemoteAttestationService& ras,
                         crypto::SecureRng& rng)
    : platform_id_(std::move(platform_id)),
      pek_(crypto::GenerateEcKey(rng)),
      transport_(crypto::GenerateEcKey(rng)),
      rng_(rng.NextBytes(32)) {
  chain_ = ras.IssuePlatformChain(pek_.public_key);
}

std::shared_ptr<Cvm> SevPlatform::LaunchPausedCvm(const std::string& cvm_id,
                                                  const Bytes& image) {
  Bytes measurement = crypto::Sha256Digest(image);
  auto vek = rng_.NextArray<crypto::kChaChaKeySize>();
  LOG_INFO << "platform " << platform_id_ << ": launched paused CVM " << cvm_id
           << " measurement=" << ToHex(measurement).substr(0, 16) << "...";
  return std::shared_ptr<Cvm>(new Cvm(cvm_id, std::move(measurement), vek));
}

AttestationReport SevPlatform::GenerateReport(const Cvm& cvm, const Bytes& nonce) const {
  AttestationReport report;
  report.platform_id = platform_id_;
  report.measurement = cvm.measurement();
  report.nonce = nonce;
  report.chain = chain_;
  report.signature = crypto::EcdsaSign(pek_.private_key, report.Body());
  return report;
}

bool SevPlatform::InjectLaunchSecret(Cvm& cvm, const std::string& region, const Bytes& sealed,
                                     const crypto::EcPoint& sender_ephemeral_public) {
  DETA_CHECK_MSG(cvm.state() == Cvm::State::kPaused,
                 "launch secrets can only be injected into a paused CVM");
  Bytes shared = crypto::EcdhSharedSecret(transport_.private_key, sender_ephemeral_public);
  crypto::Aead aead(shared);
  std::optional<Bytes> secret = aead.Open(sealed, StringToBytes("sev-launch-secret"));
  if (!secret.has_value()) {
    LOG_WARNING << "platform " << platform_id_ << ": launch secret failed to unseal";
    return false;
  }
  cvm.encrypted_memory_[region] = cvm.EncryptRegion(region, *secret);
  return true;
}

void SevPlatform::Resume(Cvm& cvm) {
  DETA_CHECK(cvm.state() == Cvm::State::kPaused);
  cvm.state_ = Cvm::State::kRunning;
}

SealedSecret SealForPlatform(const Bytes& secret,
                             const crypto::EcPoint& platform_transport_public,
                             crypto::SecureRng& rng) {
  crypto::EcKeyPair ephemeral = crypto::GenerateEcKey(rng);
  Bytes shared = crypto::EcdhSharedSecret(ephemeral.private_key, platform_transport_public);
  crypto::Aead aead(shared);
  SealedSecret out;
  out.ciphertext = aead.Seal(secret, StringToBytes("sev-launch-secret"), rng);
  out.ephemeral_public = ephemeral.public_key;
  return out;
}

}  // namespace deta::cc
