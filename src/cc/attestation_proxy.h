// Phase I of the paper's two-phase authentication protocol (§4.3): the attestation proxy
// (AP) — deployed and controlled by the participating parties — verifies each aggregator
// CVM against AMD's remote attestation service and provisions an ECDSA authentication
// token into its encrypted memory before the CVM is resumed.
#ifndef DETA_CC_ATTESTATION_PROXY_H_
#define DETA_CC_ATTESTATION_PROXY_H_

#include <map>
#include <string>

#include "cc/sev.h"

namespace deta::cc {

// Well-known CVM memory region holding the provisioned token private key.
inline constexpr char kTokenRegion[] = "deta.auth_token";

class AttestationProxy {
 public:
  // |trusted_root| is AMD's ARK public key fetched from the RAS; |expected_measurement|
  // is the known-good launch digest of the aggregator image.
  AttestationProxy(crypto::EcPoint trusted_root, Bytes expected_measurement,
                   crypto::SecureRng rng);

  struct ProvisionResult {
    bool ok = false;
    std::string failure_reason;
    // Public half of the provisioned token; parties use it to authenticate the
    // aggregator via challenge/response in phase II.
    crypto::EcPoint token_public;
  };

  // Runs the full phase-I flow for one paused CVM: challenge → report → verify chain,
  // measurement, signature, nonce → generate token → seal → inject → resume.
  ProvisionResult VerifyAndProvision(SevPlatform& platform, Cvm& cvm);

  // Verification only (no provisioning); exposed for tests and for re-attestation.
  bool VerifyReport(const AttestationReport& report, const Bytes& expected_nonce,
                    std::string* failure_reason) const;

  // Registry of provisioned aggregator tokens, keyed by CVM id.
  const std::map<std::string, crypto::EcPoint>& TokenRegistry() const { return tokens_; }

 private:
  crypto::EcPoint trusted_root_;
  Bytes expected_measurement_;
  crypto::SecureRng rng_;
  std::map<std::string, crypto::EcPoint> tokens_;
};

}  // namespace deta::cc

#endif  // DETA_CC_ATTESTATION_PROXY_H_
