#include "cc/attestation_proxy.h"

#include "common/logging.h"

namespace deta::cc {

namespace {
const crypto::Secp256k1& Curve() { return crypto::Secp256k1::Instance(); }
}  // namespace

AttestationProxy::AttestationProxy(crypto::EcPoint trusted_root, Bytes expected_measurement,
                                   crypto::SecureRng rng)
    : trusted_root_(std::move(trusted_root)),
      expected_measurement_(std::move(expected_measurement)),
      rng_(std::move(rng)) {}

bool AttestationProxy::VerifyReport(const AttestationReport& report,
                                    const Bytes& expected_nonce,
                                    std::string* failure_reason) const {
  if (!report.chain.Verify(trusted_root_)) {
    *failure_reason = "certificate chain does not verify against the AMD root";
    return false;
  }
  if (!ConstantTimeEqual(report.measurement, expected_measurement_)) {
    *failure_reason = "launch measurement mismatch (tampered or unknown image)";
    return false;
  }
  if (!ConstantTimeEqual(report.nonce, expected_nonce)) {
    *failure_reason = "stale attestation report (nonce mismatch)";
    return false;
  }
  if (!crypto::EcdsaVerify(report.chain.pek_public, report.Body(), report.signature)) {
    *failure_reason = "report signature invalid";
    return false;
  }
  return true;
}

AttestationProxy::ProvisionResult AttestationProxy::VerifyAndProvision(SevPlatform& platform,
                                                                       Cvm& cvm) {
  ProvisionResult result;
  Bytes nonce = rng_.NextBytes(32);
  AttestationReport report = platform.GenerateReport(cvm, nonce);
  if (!VerifyReport(report, nonce, &result.failure_reason)) {
    LOG_WARNING << "AP: attestation of CVM " << cvm.id() << " failed: "
                << result.failure_reason;
    return result;
  }

  // Generate the authentication token (the paper provisions an ECDSA key) and inject its
  // private half into the paused CVM's encrypted memory.
  crypto::EcKeyPair token = crypto::GenerateEcKey(rng_);
  // ExposeForSeal: the private half is immediately sealed to the platform's transport
  // key and injected into encrypted guest memory; the plaintext copy is wiped below.
  Bytes token_private = token.private_key.ExposeForSeal().ToBytesPadded(32);
  SealedSecret sealed = SealForPlatform(token_private, platform.TransportPublicKey(), rng_);
  crypto::SecureWipe(token_private);
  if (!platform.InjectLaunchSecret(cvm, kTokenRegion, sealed.ciphertext,
                                   sealed.ephemeral_public)) {
    result.failure_reason = "launch secret injection failed";
    return result;
  }
  platform.Resume(cvm);

  tokens_[cvm.id()] = token.public_key;
  result.ok = true;
  result.token_public = token.public_key;
  LOG_INFO << "AP: CVM " << cvm.id() << " attested and provisioned with auth token "
           << ToHex(Curve().Encode(token.public_key)).substr(0, 16) << "...";
  return result;
}

}  // namespace deta::cc
