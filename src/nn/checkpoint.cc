#include "nn/checkpoint.h"

#include <cstdio>

#include "common/logging.h"
#include "crypto/sha256.h"
#include "persist/codec.h"
#include "persist/state_store.h"

namespace deta::nn {

namespace {

constexpr char kCheckpointRole[] = "model-checkpoint";
constexpr char kParamsSection[] = "params";
constexpr char kArchSection[] = "arch";
constexpr char kOptimizerSection[] = "optimizer";

Bytes ReadWholeFile(const std::string& path) {
  std::optional<Bytes> blob = persist::ReadFile(path);
  return blob.has_value() ? std::move(*blob) : Bytes{};
}

persist::Snapshot BuildSnapshot(const std::vector<float>& params) {
  persist::Snapshot snapshot;
  snapshot.role = kCheckpointRole;
  snapshot.AddFloats(persist::SectionType::kModelParams, kParamsSection, params);
  return snapshot;
}

}  // namespace

Bytes ArchitectureDigest(const Model& model) {
  Bytes description;
  for (const Var& p : model.params()) {
    const Tensor::Shape& shape = p.shape();
    AppendU32(description, static_cast<uint32_t>(shape.size()));
    for (int dim : shape) {
      AppendU32(description, static_cast<uint32_t>(dim));
    }
  }
  return crypto::Sha256Digest(description);
}

const char* CheckpointStatusName(CheckpointStatus status) {
  switch (status) {
    case CheckpointStatus::kOk:
      return "ok";
    case CheckpointStatus::kIoError:
      return "io_error";
    case CheckpointStatus::kCorrupt:
      return "corrupt";
    case CheckpointStatus::kArchitectureMismatch:
      return "architecture_mismatch";
  }
  return "unknown";
}

Bytes SerializeCheckpoint(const std::vector<float>& params) {
  return persist::SerializeSnapshot(BuildSnapshot(params));
}

std::optional<std::vector<float>> ParseCheckpoint(const Bytes& blob) {
  std::optional<persist::Snapshot> snapshot = persist::ParseSnapshot(blob);
  if (!snapshot.has_value() || snapshot->role != kCheckpointRole) {
    LOG_WARNING << "checkpoint rejected (corrupted or not a model checkpoint)";
    return std::nullopt;
  }
  return snapshot->FindFloats(kParamsSection);
}

bool SaveCheckpoint(const Model& model, const std::string& path) {
  return SaveCheckpointWithOptimizer(model, nullptr, path);
}

bool LoadCheckpoint(Model& model, const std::string& path) {
  return LoadCheckpointInto(model, nullptr, path) == CheckpointStatus::kOk;
}

bool SaveCheckpointWithOptimizer(const Model& model, const Sgd* sgd,
                                 const std::string& path) {
  persist::Snapshot snapshot = BuildSnapshot(model.GetFlatParams());
  snapshot.Add(persist::SectionType::kRaw, kArchSection, ArchitectureDigest(model));
  if (sgd != nullptr) {
    snapshot.Add(persist::SectionType::kOptimizerState, kOptimizerSection,
                 sgd->SerializeState());
  }
  return persist::AtomicWriteFile(path, persist::SerializeSnapshot(snapshot));
}

CheckpointStatus LoadCheckpointInto(Model& model, Sgd* sgd, const std::string& path) {
  Bytes blob = ReadWholeFile(path);
  if (blob.empty()) {
    return CheckpointStatus::kIoError;
  }
  std::optional<persist::Snapshot> snapshot = persist::ParseSnapshot(blob);
  if (!snapshot.has_value() || snapshot->role != kCheckpointRole) {
    LOG_WARNING << "checkpoint rejected (corrupted or not a model checkpoint)";
    return CheckpointStatus::kCorrupt;
  }
  const persist::Section* arch = snapshot->Find(kArchSection);
  if (arch != nullptr && arch->data != ArchitectureDigest(model)) {
    LOG_WARNING << "checkpoint architecture digest does not match model";
    return CheckpointStatus::kArchitectureMismatch;
  }
  std::optional<std::vector<float>> params = snapshot->FindFloats(kParamsSection);
  if (!params.has_value()) {
    return CheckpointStatus::kCorrupt;
  }
  // Pre-digest checkpoints carry no architecture section; the count check is the only
  // compatibility signal left for those.
  if (static_cast<int64_t>(params->size()) != model.NumParameters()) {
    LOG_WARNING << "checkpoint parameter count " << params->size()
                << " does not match model (" << model.NumParameters() << ")";
    return CheckpointStatus::kArchitectureMismatch;
  }
  if (sgd != nullptr) {
    const persist::Section* opt = snapshot->Find(kOptimizerSection);
    if (opt != nullptr && !sgd->RestoreState(opt->data)) {
      LOG_WARNING << "checkpoint optimizer state rejected";
      return CheckpointStatus::kCorrupt;
    }
  }
  model.SetFlatParams(*params);
  return CheckpointStatus::kOk;
}

}  // namespace deta::nn
