#include "nn/checkpoint.h"

#include <cstdio>

#include "common/logging.h"
#include "crypto/sha256.h"
#include "net/codec.h"

namespace deta::nn {

namespace {
constexpr char kMagic[] = "DETA-CKPT";
constexpr uint32_t kVersion = 1;
}  // namespace

Bytes SerializeCheckpoint(const std::vector<float>& params) {
  net::Writer w;
  w.WriteString(kMagic);
  w.WriteU32(kVersion);
  w.WriteFloatVector(params);
  Bytes body = w.Take();
  Bytes digest = crypto::Sha256Digest(body);
  net::Writer framed;
  framed.WriteBytes(body);
  framed.WriteBytes(digest);
  return framed.Take();
}

std::optional<std::vector<float>> ParseCheckpoint(const Bytes& blob) {
  try {
    net::Reader framed(blob);
    Bytes body = framed.ReadBytes();
    Bytes digest = framed.ReadBytes();
    if (!ConstantTimeEqual(digest, crypto::Sha256Digest(body))) {
      LOG_WARNING << "checkpoint digest mismatch (corrupted file?)";
      return std::nullopt;
    }
    net::Reader r(body);
    if (r.ReadString() != kMagic) {
      return std::nullopt;
    }
    if (r.ReadU32() != kVersion) {
      LOG_WARNING << "unsupported checkpoint version";
      return std::nullopt;
    }
    return r.ReadFloatVector();
  } catch (const CheckFailure&) {
    return std::nullopt;  // truncated / malformed framing
  }
}

bool SaveCheckpoint(const Model& model, const std::string& path) {
  Bytes blob = SerializeCheckpoint(model.GetFlatParams());
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  size_t written = std::fwrite(blob.data(), 1, blob.size(), f);
  std::fclose(f);
  return written == blob.size();
}

bool LoadCheckpoint(Model& model, const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  Bytes blob;
  uint8_t buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    blob.insert(blob.end(), buffer, buffer + n);
  }
  std::fclose(f);
  std::optional<std::vector<float>> params = ParseCheckpoint(blob);
  if (!params.has_value()) {
    return false;
  }
  if (static_cast<int64_t>(params->size()) != model.NumParameters()) {
    LOG_WARNING << "checkpoint parameter count " << params->size()
                << " does not match model (" << model.NumParameters() << ")";
    return false;
  }
  model.SetFlatParams(*params);
  return true;
}

}  // namespace deta::nn
