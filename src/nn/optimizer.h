// First-order optimizers (SGD with momentum, Adam) plus the two attack optimizers the
// paper's evaluated attacks use: L-BFGS (DLG/iDLG) and signed Adam (IG).
#ifndef DETA_NN_OPTIMIZER_H_
#define DETA_NN_OPTIMIZER_H_

#include <functional>
#include <vector>

#include "common/bytes.h"
#include "nn/layers.h"

namespace deta::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  // Applies one update; grads[i] matches params[i] in shape.
  virtual void Step(std::vector<Var>& params, const std::vector<Tensor>& grads) = 0;
};

class Sgd : public Optimizer {
 public:
  explicit Sgd(float lr, float momentum = 0.0f) : lr_(lr), momentum_(momentum) {}
  void Step(std::vector<Var>& params, const std::vector<Tensor>& grads) override;
  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

  // Momentum buffers for checkpoint/resume (empty until the first Step with
  // momentum > 0). Hyperparameters are not included — they come from the config.
  Bytes SerializeState() const;
  // False (state unchanged) on a malformed blob.
  bool RestoreState(const Bytes& data);

 private:
  float lr_;
  float momentum_;
  std::vector<Tensor> velocity_;
};

class Adam : public Optimizer {
 public:
  explicit Adam(float lr, float beta1 = 0.9f, float beta2 = 0.999f, float eps = 1e-8f)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}
  void Step(std::vector<Var>& params, const std::vector<Tensor>& grads) override;

  // IG variant: applies Adam to sign(grad) instead of grad.
  void set_use_grad_sign(bool v) { use_grad_sign_ = v; }
  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_, beta1_, beta2_, eps_;
  bool use_grad_sign_ = false;
  int t_ = 0;
  std::vector<Tensor> m_, v_;
};

// Limited-memory BFGS with backtracking Armijo line search, as used by the DLG attack.
// Operates on a single flat parameter vector through a loss closure.
class Lbfgs {
 public:
  struct Options {
    int history = 10;
    int max_line_search_steps = 12;
    float initial_step = 1.0f;
    float armijo_c1 = 1e-4f;
    float min_step = 1e-10f;
  };

  // Evaluates loss and gradient at |x|; returns loss, fills |grad| (same size as |x|).
  using LossFn = std::function<double(const std::vector<float>& x, std::vector<float>& grad)>;

  Lbfgs() : options_(Options{}) {}
  explicit Lbfgs(const Options& options) : options_(options) {}

  // One L-BFGS iteration updating |x| in place; returns the loss at the new point.
  // |loss| must be the value at the current x (pass the previous return, or evaluate).
  double Step(const LossFn& fn, std::vector<float>& x);

  void Reset();

 private:
  Options options_;
  std::vector<std::vector<float>> s_history_;  // x_{k+1} - x_k
  std::vector<std::vector<float>> y_history_;  // g_{k+1} - g_k
  std::vector<float> last_x_, last_grad_;
  bool has_last_ = false;
};

}  // namespace deta::nn

#endif  // DETA_NN_OPTIMIZER_H_
