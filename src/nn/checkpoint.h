// Model checkpointing: versioned binary serialization of a parameter vector with an
// integrity digest. Parties use this to persist/restore global models across process
// restarts; the format is self-describing enough to reject mismatched architectures.
#ifndef DETA_NN_CHECKPOINT_H_
#define DETA_NN_CHECKPOINT_H_

#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "nn/models.h"

namespace deta::nn {

// Serializes a checkpoint blob: magic, version, parameter count, raw float data, and a
// SHA-256 digest over all of it.
Bytes SerializeCheckpoint(const std::vector<float>& params);
// Parses and verifies a checkpoint blob; nullopt if malformed, truncated, or corrupted.
std::optional<std::vector<float>> ParseCheckpoint(const Bytes& blob);

// File convenience wrappers. Save returns false on I/O failure.
bool SaveCheckpoint(const Model& model, const std::string& path);
// Loads into |model|; false on I/O failure, corruption, or parameter-count mismatch.
bool LoadCheckpoint(Model& model, const std::string& path);

}  // namespace deta::nn

#endif  // DETA_NN_CHECKPOINT_H_
