// Model checkpointing, now a thin wrapper over the durable snapshot codec
// (src/persist/codec.h): a checkpoint is a persist::Snapshot with role
// "model-checkpoint" carrying the flat parameter vector, optionally the optimizer's
// momentum buffers, and an architecture digest (a hash of the per-parameter shapes) so
// restoring into a mismatched model is a *typed* error, not a silent count check.
#ifndef DETA_NN_CHECKPOINT_H_
#define DETA_NN_CHECKPOINT_H_

#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "nn/models.h"
#include "nn/optimizer.h"

namespace deta::nn {

// SHA-256 over the model's per-parameter shapes (rank + dims, in parameter order).
// Two models agree iff their parameter tensors are layout-compatible.
Bytes ArchitectureDigest(const Model& model);

// How a checkpoint restore ended.
enum class CheckpointStatus {
  kOk = 0,
  kIoError,                // file missing/unreadable/unwritable
  kCorrupt,                // digest mismatch, truncation, or malformed framing
  kArchitectureMismatch,   // valid checkpoint for a different model architecture
};

const char* CheckpointStatusName(CheckpointStatus status);

// Serializes a checkpoint blob: a persist snapshot with the parameter vector and (via
// the overload) architecture digest + optimizer state, integrity-protected by the
// codec's SHA-256 frame.
Bytes SerializeCheckpoint(const std::vector<float>& params);
// Parses and verifies a checkpoint blob; nullopt if malformed, truncated, or corrupted.
std::optional<std::vector<float>> ParseCheckpoint(const Bytes& blob);

// File convenience wrappers (atomic write-rename; Save returns false on I/O failure).
bool SaveCheckpoint(const Model& model, const std::string& path);
// Loads into |model|; false on I/O failure, corruption, or parameter-count mismatch.
bool LoadCheckpoint(Model& model, const std::string& path);

// Full-fidelity variants: persist the architecture digest and, when |sgd| is non-null,
// its momentum buffers, so training resumes with identical optimizer dynamics.
bool SaveCheckpointWithOptimizer(const Model& model, const Sgd* sgd,
                                 const std::string& path);
// Restores parameters (and optimizer state into |sgd| when present in the file and
// |sgd| != nullptr). Returns kArchitectureMismatch when the checkpoint was written by
// a model whose parameter shapes differ from |model|'s.
CheckpointStatus LoadCheckpointInto(Model& model, Sgd* sgd, const std::string& path);

}  // namespace deta::nn

#endif  // DETA_NN_CHECKPOINT_H_
