#include "nn/optimizer.h"

#include <cmath>
#include <cstring>

#include "common/check.h"

namespace deta::nn {

void Sgd::Step(std::vector<Var>& params, const std::vector<Tensor>& grads) {
  DETA_CHECK_EQ(params.size(), grads.size());
  if (momentum_ != 0.0f && velocity_.empty()) {
    for (const Var& p : params) {
      velocity_.push_back(Tensor::Zeros(p.shape()));
    }
  }
  for (size_t i = 0; i < params.size(); ++i) {
    Tensor& value = params[i].mutable_value();
    DETA_CHECK(value.SameShape(grads[i]));
    if (momentum_ != 0.0f) {
      velocity_[i].Scale(momentum_);
      velocity_[i].AddScaled(grads[i], 1.0f);
      value.AddScaled(velocity_[i], -lr_);
    } else {
      value.AddScaled(grads[i], -lr_);
    }
  }
}

Bytes Sgd::SerializeState() const {
  Bytes out;
  AppendU32(out, static_cast<uint32_t>(velocity_.size()));
  for (const Tensor& v : velocity_) {
    AppendU32(out, static_cast<uint32_t>(v.shape().size()));
    for (int dim : v.shape()) {
      AppendU32(out, static_cast<uint32_t>(dim));
    }
    AppendU64(out, static_cast<uint64_t>(v.values().size()));
    for (float value : v.values()) {
      uint32_t bits = 0;
      std::memcpy(&bits, &value, sizeof(bits));
      AppendU32(out, bits);
    }
  }
  return out;
}

bool Sgd::RestoreState(const Bytes& data) {
  size_t offset = 0;
  auto read_u32 = [&](uint32_t& v) {
    if (data.size() < offset + sizeof(uint32_t)) {
      return false;
    }
    v = ReadU32(data, offset);
    offset += sizeof(uint32_t);
    return true;
  };
  uint32_t count = 0;
  if (!read_u32(count)) {
    return false;
  }
  std::vector<Tensor> velocity;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t rank = 0;
    if (!read_u32(rank) || rank > 8) {
      return false;
    }
    Tensor::Shape shape(rank);
    int64_t expect = 1;
    for (auto& dim : shape) {
      uint32_t d = 0;
      if (!read_u32(d)) {
        return false;
      }
      dim = static_cast<int>(d);
      expect *= dim;
    }
    if (data.size() < offset + sizeof(uint64_t)) {
      return false;
    }
    uint64_t numel = ReadU64(data, offset);
    offset += sizeof(uint64_t);
    if (numel != static_cast<uint64_t>(expect)) {
      return false;
    }
    std::vector<float> values(static_cast<size_t>(numel));
    for (auto& value : values) {
      uint32_t bits = 0;
      if (!read_u32(bits)) {
        return false;
      }
      std::memcpy(&value, &bits, sizeof(bits));
    }
    velocity.emplace_back(std::move(shape), std::move(values));
  }
  if (offset != data.size()) {
    return false;
  }
  velocity_ = std::move(velocity);
  return true;
}

void Adam::Step(std::vector<Var>& params, const std::vector<Tensor>& grads) {
  DETA_CHECK_EQ(params.size(), grads.size());
  if (m_.empty()) {
    for (const Var& p : params) {
      m_.push_back(Tensor::Zeros(p.shape()));
      v_.push_back(Tensor::Zeros(p.shape()));
    }
  }
  ++t_;
  float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params.size(); ++i) {
    Tensor& value = params[i].mutable_value();
    const Tensor& g = grads[i];
    DETA_CHECK(value.SameShape(g));
    for (int64_t j = 0; j < value.numel(); ++j) {
      float gj = g[j];
      if (use_grad_sign_) {
        gj = gj > 0.0f ? 1.0f : (gj < 0.0f ? -1.0f : 0.0f);
      }
      m_[i][j] = beta1_ * m_[i][j] + (1.0f - beta1_) * gj;
      v_[i][j] = beta2_ * v_[i][j] + (1.0f - beta2_) * gj * gj;
      float m_hat = m_[i][j] / bias1;
      float v_hat = v_[i][j] / bias2;
      value[j] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

namespace {

double Dot(const std::vector<float>& a, const std::vector<float>& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    s += static_cast<double>(a[i]) * b[i];
  }
  return s;
}

}  // namespace

void Lbfgs::Reset() {
  s_history_.clear();
  y_history_.clear();
  has_last_ = false;
}

double Lbfgs::Step(const LossFn& fn, std::vector<float>& x) {
  const size_t n = x.size();
  std::vector<float> grad(n);
  double loss = fn(x, grad);

  // Update curvature history from the previous step.
  if (has_last_) {
    std::vector<float> s(n), y(n);
    for (size_t i = 0; i < n; ++i) {
      s[i] = x[i] - last_x_[i];
      y[i] = grad[i] - last_grad_[i];
    }
    if (Dot(s, y) > 1e-10) {  // curvature condition
      s_history_.push_back(std::move(s));
      y_history_.push_back(std::move(y));
      if (static_cast<int>(s_history_.size()) > options_.history) {
        s_history_.erase(s_history_.begin());
        y_history_.erase(y_history_.begin());
      }
    }
  }

  // Two-loop recursion for the search direction d = -H grad.
  std::vector<float> q = grad;
  size_t h = s_history_.size();
  std::vector<double> alpha(h), rho(h);
  for (size_t i = h; i-- > 0;) {
    rho[i] = 1.0 / Dot(y_history_[i], s_history_[i]);
    alpha[i] = rho[i] * Dot(s_history_[i], q);
    for (size_t j = 0; j < n; ++j) {
      q[j] -= static_cast<float>(alpha[i]) * y_history_[i][j];
    }
  }
  double gamma = 1.0;
  if (h > 0) {
    gamma = Dot(s_history_[h - 1], y_history_[h - 1]) /
            Dot(y_history_[h - 1], y_history_[h - 1]);
  }
  for (auto& v : q) {
    v = static_cast<float>(v * gamma);
  }
  for (size_t i = 0; i < h; ++i) {
    double beta = rho[i] * Dot(y_history_[i], q);
    for (size_t j = 0; j < n; ++j) {
      q[j] += static_cast<float>((alpha[i] - beta)) * s_history_[i][j];
    }
  }
  // Direction is -q.
  double directional = -Dot(q, grad);
  if (directional >= 0.0) {
    // Not a descent direction (can happen after noisy curvature); fall back to -grad.
    q = grad;
    directional = -Dot(grad, grad);
  }

  // Backtracking Armijo line search.
  last_x_ = x;
  last_grad_ = grad;
  has_last_ = true;

  float step = options_.initial_step;
  std::vector<float> candidate(n);
  std::vector<float> trial_grad(n);
  auto evaluate = [&](float s) {
    for (size_t i = 0; i < n; ++i) {
      candidate[i] = x[i] - s * q[i];
    }
    return fn(candidate, trial_grad);
  };

  double best_loss = loss;
  bool accepted = false;
  for (int ls = 0; ls < options_.max_line_search_steps; ++ls) {
    double trial = evaluate(step);
    if (trial <= loss + options_.armijo_c1 * step * directional) {
      best_loss = trial;
      accepted = true;
      break;
    }
    step *= 0.5f;
    if (step < options_.min_step) {
      break;
    }
  }
  if (accepted) {
    // Backtracking alone cannot grow an underscaled quasi-Newton step, which stalls
    // progress (and starves the curvature history of usable pairs). Greedily expand while
    // doubling keeps decreasing the objective.
    std::vector<float> best_candidate = candidate;
    for (int expand = 0; expand < 10; ++expand) {
      float doubled = step * 2.0f;
      double trial = evaluate(doubled);
      if (trial >= best_loss) {
        break;
      }
      best_loss = trial;
      best_candidate = candidate;
      step = doubled;
    }
    x = best_candidate;
  } else {
    // Tiny gradient step as a last resort keeps the iteration moving.
    float tiny = options_.min_step * 100.0f;
    for (size_t i = 0; i < n; ++i) {
      x[i] -= tiny * grad[i];
    }
    best_loss = loss;
  }
  return best_loss;
}

}  // namespace deta::nn
