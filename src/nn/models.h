// Model zoo matching the paper's evaluation workloads (scaled for CPU; see DESIGN.md):
//   * LeNet (sigmoid activations) — the DLG/iDLG attack target (§6.2),
//   * ConvNet-8 — the 8-layer MNIST ConvNet (§7.1),
//   * ConvNet-23 — the 23-layer CIFAR-10 ConvNet (§7.2),
//   * MiniVGG — VGG-16 stand-in for RVL-CDIP transfer learning (§7.3),
//   * MiniResNet — ResNet-18 stand-in for the IG attack (§6.3),
//   * MLP — small fully-connected model for tests.
#ifndef DETA_NN_MODELS_H_
#define DETA_NN_MODELS_H_

#include <memory>

#include "nn/layers.h"

namespace deta::nn {

// A model is a Sequential plus its cached parameter handles.
class Model {
 public:
  explicit Model(std::unique_ptr<Sequential> net);

  Var Forward(const Var& x) { return net_->Forward(x); }
  std::vector<Var>& params() { return params_; }
  const std::vector<Var>& params() const { return params_; }
  int64_t NumParameters() const { return ParamCount(params_); }

  // Snapshot / restore the full parameter vector (FL model update view).
  std::vector<float> GetFlatParams() const { return FlattenParams(params_); }
  void SetFlatParams(const std::vector<float>& flat) { LoadParams(params_, flat); }

 private:
  std::unique_ptr<Sequential> net_;
  std::vector<Var> params_;
};

std::unique_ptr<Model> BuildMlp(int input_dim, const std::vector<int>& hidden, int classes,
                                Rng& rng);
// DLG's LeNet variant: sigmoid convnet (twice differentiable, as the attack requires).
std::unique_ptr<Model> BuildLeNet(int in_channels, int image_size, int classes, Rng& rng);
// 8-layer MNIST ConvNet (paper §7.1).
std::unique_ptr<Model> BuildConvNet8(int in_channels, int image_size, int classes, Rng& rng);
// 23-layer CIFAR-10 ConvNet (paper §7.2).
std::unique_ptr<Model> BuildConvNet23(int in_channels, int image_size, int classes, Rng& rng);
// VGG-style document classifier (paper §7.3 stand-in for VGG-16 on RVL-CDIP).
std::unique_ptr<Model> BuildMiniVgg(int in_channels, int image_size, int classes, Rng& rng);
// Residual network (paper §6.3 stand-in for ResNet-18 on ImageNet).
std::unique_ptr<Model> BuildMiniResNet(int in_channels, int image_size, int classes, Rng& rng);

// --- training helpers ---

// One-hot encodes labels into [batch, classes].
Tensor OneHot(const std::vector<int>& labels, int classes);

// Computes mean cross-entropy loss and parameter gradients for one batch.
struct LossAndGrads {
  float loss = 0.0f;
  std::vector<Tensor> grads;
};
LossAndGrads ComputeLossAndGrads(Model& model, const Tensor& inputs, const Tensor& one_hot);

// Fraction of argmax(logits) == labels.
double Accuracy(Model& model, const Tensor& inputs, const std::vector<int>& labels,
                int batch_size = 64);
// Mean cross-entropy over a dataset.
double MeanLoss(Model& model, const Tensor& inputs, const std::vector<int>& labels,
                int classes, int batch_size = 64);

}  // namespace deta::nn

#endif  // DETA_NN_MODELS_H_
