// Neural-network layers over the autograd engine. Parameters are leaf Vars with
// requires_grad; optimizers update them in place through the shared node handle.
#ifndef DETA_NN_LAYERS_H_
#define DETA_NN_LAYERS_H_

#include <memory>
#include <string>
#include <vector>

#include "autograd/ops.h"
#include "common/rng.h"

namespace deta::nn {

using autograd::Var;

class Layer {
 public:
  virtual ~Layer() = default;
  virtual Var Forward(const Var& x) = 0;
  // Trainable parameters (shared handles).
  virtual std::vector<Var> Params() { return {}; }
  virtual std::string Name() const = 0;
};

// Fully connected: y = x W + b, x: [batch, in].
class Linear : public Layer {
 public:
  Linear(int in_features, int out_features, Rng& rng);
  Var Forward(const Var& x) override;
  std::vector<Var> Params() override { return {weight_, bias_}; }
  std::string Name() const override { return "linear"; }

 private:
  Var weight_;  // [in, out]
  Var bias_;    // [out]
};

// 2-D convolution implemented as im2col + matmul (linear ops all the way down, so the
// attacks can differentiate through it twice).
class Conv2d : public Layer {
 public:
  Conv2d(int in_channels, int out_channels, int kernel, int stride, int padding, Rng& rng);
  Var Forward(const Var& x) override;  // x: [N, C, H, W]
  std::vector<Var> Params() override { return {weight_, bias_}; }
  std::string Name() const override { return "conv2d"; }

 private:
  int in_channels_, out_channels_, kernel_, stride_, padding_;
  Var weight_;  // [out_ch, in_ch * k * k]
  Var bias_;    // [out_ch]
  // Cached NHWC-rows -> NCHW permutation per input geometry.
  struct PermCache {
    int n = -1, oh = -1, ow = -1;
    std::vector<int64_t> indices;
  };
  PermCache perm_;
};

class SigmoidLayer : public Layer {
 public:
  Var Forward(const Var& x) override { return autograd::Sigmoid(x); }
  std::string Name() const override { return "sigmoid"; }
};

class TanhLayer : public Layer {
 public:
  Var Forward(const Var& x) override { return autograd::Tanh(x); }
  std::string Name() const override { return "tanh"; }
};

class ReluLayer : public Layer {
 public:
  Var Forward(const Var& x) override { return autograd::Relu(x); }
  std::string Name() const override { return "relu"; }
};

class MaxPool2dLayer : public Layer {
 public:
  MaxPool2dLayer(int kernel, int stride) : kernel_(kernel), stride_(stride) {}
  Var Forward(const Var& x) override { return autograd::MaxPool(x, kernel_, stride_); }
  std::string Name() const override { return "max_pool2d"; }

 private:
  int kernel_, stride_;
};

class AvgPool2dLayer : public Layer {
 public:
  AvgPool2dLayer(int kernel, int stride) : kernel_(kernel), stride_(stride) {}
  Var Forward(const Var& x) override { return autograd::AvgPool(x, kernel_, stride_); }
  std::string Name() const override { return "avg_pool2d"; }

 private:
  int kernel_, stride_;
};

// [N, C, H, W] -> [N, C*H*W].
class FlattenLayer : public Layer {
 public:
  Var Forward(const Var& x) override;
  std::string Name() const override { return "flatten"; }
};

// Residual block: y = act(x + F(x)) with F = conv-act-conv; spatial dims preserved.
class ResidualBlock : public Layer {
 public:
  ResidualBlock(int channels, Rng& rng);
  Var Forward(const Var& x) override;
  std::vector<Var> Params() override;
  std::string Name() const override { return "residual"; }

 private:
  Conv2d conv1_;
  Conv2d conv2_;
};

// Sequential container; owns its layers.
class Sequential : public Layer {
 public:
  Sequential() = default;
  void Append(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }
  template <typename L, typename... Args>
  void Emplace(Args&&... args) {
    layers_.push_back(std::make_unique<L>(std::forward<Args>(args)...));
  }
  Var Forward(const Var& x) override;
  std::vector<Var> Params() override;
  std::string Name() const override { return "sequential"; }
  size_t NumLayers() const { return layers_.size(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

// --- parameter vector helpers (the FL "model update" view) ---

// Total scalar count across params.
int64_t ParamCount(const std::vector<Var>& params);
// Concatenates parameter values into one flat vector (the paper's flattened vector M).
std::vector<float> FlattenParams(const std::vector<Var>& params);
// Writes a flat vector back into the parameter tensors.
void LoadParams(std::vector<Var>& params, const std::vector<float>& flat);

}  // namespace deta::nn

#endif  // DETA_NN_LAYERS_H_
