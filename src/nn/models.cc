#include "nn/models.h"

#include <algorithm>

#include "common/check.h"

namespace deta::nn {

namespace ag = autograd;

Model::Model(std::unique_ptr<Sequential> net) : net_(std::move(net)) {
  params_ = net_->Params();
}

std::unique_ptr<Model> BuildMlp(int input_dim, const std::vector<int>& hidden, int classes,
                                Rng& rng) {
  auto net = std::make_unique<Sequential>();
  // Accept both [batch, features] rows and [batch, C, H, W] images.
  net->Emplace<FlattenLayer>();
  int in = input_dim;
  for (int h : hidden) {
    net->Emplace<Linear>(in, h, rng);
    net->Emplace<ReluLayer>();
    in = h;
  }
  net->Emplace<Linear>(in, classes, rng);
  return std::make_unique<Model>(std::move(net));
}

std::unique_ptr<Model> BuildLeNet(int in_channels, int image_size, int classes, Rng& rng) {
  // The DLG paper's LeNet variant: stride-2 sigmoid convolutions, no pooling. All
  // components are smooth, so the attack's second-order optimization is well defined.
  auto net = std::make_unique<Sequential>();
  net->Emplace<Conv2d>(in_channels, 12, 5, 2, 2, rng);
  net->Emplace<SigmoidLayer>();
  net->Emplace<Conv2d>(12, 12, 5, 2, 2, rng);
  net->Emplace<SigmoidLayer>();
  net->Emplace<Conv2d>(12, 12, 5, 1, 2, rng);
  net->Emplace<SigmoidLayer>();
  net->Emplace<FlattenLayer>();
  int spatial = image_size / 4;  // two stride-2 convs
  net->Emplace<Linear>(12 * spatial * spatial, classes, rng);
  return std::make_unique<Model>(std::move(net));
}

std::unique_ptr<Model> BuildConvNet8(int in_channels, int image_size, int classes, Rng& rng) {
  // 8 layers: conv-relu-pool-conv-relu-pool-fc-fc (paper §7.1's "ConvNet with eight
  // layers" on MNIST).
  auto net = std::make_unique<Sequential>();
  net->Emplace<Conv2d>(in_channels, 16, 3, 1, 1, rng);
  net->Emplace<ReluLayer>();
  net->Emplace<MaxPool2dLayer>(2, 2);
  net->Emplace<Conv2d>(16, 32, 3, 1, 1, rng);
  net->Emplace<ReluLayer>();
  net->Emplace<MaxPool2dLayer>(2, 2);
  net->Emplace<FlattenLayer>();
  int spatial = image_size / 4;
  net->Emplace<Linear>(32 * spatial * spatial, 128, rng);
  net->Emplace<ReluLayer>();
  net->Emplace<Linear>(128, classes, rng);
  return std::make_unique<Model>(std::move(net));
}

std::unique_ptr<Model> BuildConvNet23(int in_channels, int image_size, int classes,
                                      Rng& rng) {
  // VGG-style 23-layer stack (counting conv/act/pool/fc layers), the paper §7.2 CIFAR-10
  // model shape at reduced width.
  auto net = std::make_unique<Sequential>();
  auto block = [&](int in, int out) {
    net->Emplace<Conv2d>(in, out, 3, 1, 1, rng);
    net->Emplace<ReluLayer>();
    net->Emplace<Conv2d>(out, out, 3, 1, 1, rng);
    net->Emplace<ReluLayer>();
    net->Emplace<MaxPool2dLayer>(2, 2);
  };
  block(in_channels, 16);  // 5 layers
  block(16, 32);           // 10
  block(32, 64);           // 15
  net->Emplace<FlattenLayer>();  // 16
  int spatial = image_size / 8;
  net->Emplace<Linear>(64 * spatial * spatial, 256, rng);  // 17
  net->Emplace<ReluLayer>();                               // 18
  net->Emplace<Linear>(256, 128, rng);                     // 19
  net->Emplace<ReluLayer>();                               // 20
  net->Emplace<Linear>(128, classes, rng);                 // 21
  return std::make_unique<Model>(std::move(net));
}

std::unique_ptr<Model> BuildMiniVgg(int in_channels, int image_size, int classes, Rng& rng) {
  // VGG-16-shaped: conv blocks with doubling widths and three FC head layers (the part
  // the paper replaces for RVL-CDIP transfer learning).
  auto net = std::make_unique<Sequential>();
  auto block = [&](int in, int out) {
    net->Emplace<Conv2d>(in, out, 3, 1, 1, rng);
    net->Emplace<ReluLayer>();
    net->Emplace<MaxPool2dLayer>(2, 2);
  };
  block(in_channels, 16);
  block(16, 32);
  block(32, 64);
  block(64, 64);
  net->Emplace<FlattenLayer>();
  int spatial = image_size / 16;
  net->Emplace<Linear>(64 * spatial * spatial, 256, rng);
  net->Emplace<ReluLayer>();
  net->Emplace<Linear>(256, 128, rng);
  net->Emplace<ReluLayer>();
  net->Emplace<Linear>(128, classes, rng);
  return std::make_unique<Model>(std::move(net));
}

namespace {

// Sequential wrapper so ResidualBlock composes with Sequential ownership.
class ResidualWrapper : public Layer {
 public:
  ResidualWrapper(int channels, Rng& rng) : block_(channels, rng) {}
  Var Forward(const Var& x) override { return block_.Forward(x); }
  std::vector<Var> Params() override { return block_.Params(); }
  std::string Name() const override { return "residual"; }

 private:
  ResidualBlock block_;
};

}  // namespace

std::unique_ptr<Model> BuildMiniResNet(int in_channels, int image_size, int classes,
                                       Rng& rng) {
  auto net = std::make_unique<Sequential>();
  // ResNet-18 downsamples with stride-2 convolutions and ends in average pooling;
  // average pooling (not max) keeps the gradient-matching landscape piecewise-smooth,
  // matching the published IG attack's operating conditions.
  net->Emplace<Conv2d>(in_channels, 16, 3, 1, 1, rng);
  net->Emplace<ReluLayer>();
  net->Emplace<ResidualWrapper>(16, rng);
  net->Emplace<AvgPool2dLayer>(2, 2);
  net->Emplace<Conv2d>(16, 32, 3, 1, 1, rng);
  net->Emplace<ReluLayer>();
  net->Emplace<ResidualWrapper>(32, rng);
  net->Emplace<AvgPool2dLayer>(2, 2);
  net->Emplace<FlattenLayer>();
  int spatial = image_size / 4;
  net->Emplace<Linear>(32 * spatial * spatial, classes, rng);
  return std::make_unique<Model>(std::move(net));
}

Tensor OneHot(const std::vector<int>& labels, int classes) {
  Tensor out({static_cast<int>(labels.size()), classes});
  for (size_t i = 0; i < labels.size(); ++i) {
    DETA_CHECK_GE(labels[i], 0);
    DETA_CHECK_LT(labels[i], classes);
    out[static_cast<int64_t>(i) * classes + labels[i]] = 1.0f;
  }
  return out;
}

LossAndGrads ComputeLossAndGrads(Model& model, const Tensor& inputs, const Tensor& one_hot) {
  Var x(inputs);
  Var logits = model.Forward(x);
  Var loss = ag::SoftmaxCrossEntropy(logits, Var(one_hot));
  auto grad_vars = ag::Grad(loss, model.params());
  LossAndGrads result;
  result.loss = loss.value()[0];
  result.grads.reserve(grad_vars.size());
  for (const Var& g : grad_vars) {
    result.grads.push_back(g.value());
  }
  return result;
}

namespace {

// Copies rows [start, start+count) of a batch-major tensor.
Tensor SliceBatch(const Tensor& data, int start, int count) {
  Tensor::Shape shape = data.shape();
  int total = shape[0];
  DETA_CHECK_LE(start + count, total);
  int64_t row = data.numel() / total;
  shape[0] = count;
  Tensor out(shape);
  std::copy(data.data() + start * row, data.data() + (start + count) * row, out.data());
  return out;
}

}  // namespace

double Accuracy(Model& model, const Tensor& inputs, const std::vector<int>& labels,
                int batch_size) {
  int total = inputs.dim(0);
  DETA_CHECK_EQ(static_cast<size_t>(total), labels.size());
  int correct = 0;
  for (int start = 0; start < total; start += batch_size) {
    int count = std::min(batch_size, total - start);
    Var x(SliceBatch(inputs, start, count));
    Var logits = model.Forward(x);
    int classes = logits.value().dim(1);
    for (int i = 0; i < count; ++i) {
      const float* row = logits.value().data() + static_cast<int64_t>(i) * classes;
      int best = 0;
      for (int c = 1; c < classes; ++c) {
        if (row[c] > row[best]) {
          best = c;
        }
      }
      if (best == labels[static_cast<size_t>(start + i)]) {
        ++correct;
      }
    }
  }
  return static_cast<double>(correct) / static_cast<double>(total);
}

double MeanLoss(Model& model, const Tensor& inputs, const std::vector<int>& labels,
                int classes, int batch_size) {
  int total = inputs.dim(0);
  DETA_CHECK_EQ(static_cast<size_t>(total), labels.size());
  double loss_sum = 0.0;
  for (int start = 0; start < total; start += batch_size) {
    int count = std::min(batch_size, total - start);
    Var x(SliceBatch(inputs, start, count));
    std::vector<int> batch_labels(labels.begin() + start, labels.begin() + start + count);
    Var logits = model.Forward(x);
    Var loss = ag::SoftmaxCrossEntropy(logits, Var(OneHot(batch_labels, classes)));
    loss_sum += static_cast<double>(loss.value()[0]) * count;
  }
  return loss_sum / static_cast<double>(total);
}

}  // namespace deta::nn
