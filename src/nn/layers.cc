#include "nn/layers.h"

#include <cmath>

#include "common/check.h"

namespace deta::nn {

namespace ag = autograd;

namespace {

// Xavier/Glorot uniform initialization.
Tensor XavierUniform(Tensor::Shape shape, int fan_in, int fan_out, Rng& rng) {
  float limit = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::Uniform(std::move(shape), rng, -limit, limit);
}

}  // namespace

Linear::Linear(int in_features, int out_features, Rng& rng)
    : weight_(XavierUniform({in_features, out_features}, in_features, out_features, rng),
              /*requires_grad=*/true),
      bias_(Tensor::Zeros({out_features}), /*requires_grad=*/true) {}

Var Linear::Forward(const Var& x) {
  DETA_CHECK_EQ(x.value().rank(), 2u);
  return ag::AddRowVec(ag::MatMul(x, weight_), bias_);
}

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, int stride, int padding,
               Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      weight_(XavierUniform({out_channels, in_channels * kernel * kernel},
                            in_channels * kernel * kernel, out_channels, rng),
              /*requires_grad=*/true),
      bias_(Tensor::Zeros({out_channels}), /*requires_grad=*/true) {}

Var Conv2d::Forward(const Var& x) {
  DETA_CHECK_EQ(x.value().rank(), 4u);
  DETA_CHECK_EQ(x.value().dim(1), in_channels_);
  ConvGeometry geom;
  geom.batch = x.value().dim(0);
  geom.channels = in_channels_;
  geom.height = x.value().dim(2);
  geom.width = x.value().dim(3);
  geom.kernel_h = kernel_;
  geom.kernel_w = kernel_;
  geom.stride = stride_;
  geom.padding = padding_;
  int oh = geom.OutH(), ow = geom.OutW();

  Var cols = ag::Im2Col(x, geom);                         // [N*oh*ow, C*k*k]
  Var rows = ag::MatMul(cols, ag::Transpose(weight_));    // [N*oh*ow, out_ch]
  rows = ag::AddRowVec(rows, bias_);

  // Permute NHWC rows into NCHW. Cached per geometry; a pure index map (linear op).
  if (perm_.n != geom.batch || perm_.oh != oh || perm_.ow != ow) {
    perm_.n = geom.batch;
    perm_.oh = oh;
    perm_.ow = ow;
    perm_.indices.resize(static_cast<size_t>(geom.batch) * out_channels_ * oh * ow);
    size_t di = 0;
    for (int n = 0; n < geom.batch; ++n) {
      for (int c = 0; c < out_channels_; ++c) {
        for (int y = 0; y < oh; ++y) {
          for (int xx = 0; xx < ow; ++xx, ++di) {
            perm_.indices[di] =
                ((static_cast<int64_t>(n) * oh + y) * ow + xx) * out_channels_ + c;
          }
        }
      }
    }
  }
  Var nchw = ag::Gather1D(ag::Flatten(rows), perm_.indices);
  return ag::Reshape(nchw, {geom.batch, out_channels_, oh, ow});
}

Var FlattenLayer::Forward(const Var& x) {
  DETA_CHECK_GE(x.value().rank(), 2u);
  int batch = x.value().dim(0);
  int features = static_cast<int>(x.numel() / batch);
  return ag::Reshape(x, {batch, features});
}

ResidualBlock::ResidualBlock(int channels, Rng& rng)
    : conv1_(channels, channels, 3, 1, 1, rng), conv2_(channels, channels, 3, 1, 1, rng) {}

Var ResidualBlock::Forward(const Var& x) {
  Var h = ag::Relu(conv1_.Forward(x));
  h = conv2_.Forward(h);
  return ag::Relu(ag::Add(x, h));
}

std::vector<Var> ResidualBlock::Params() {
  std::vector<Var> params = conv1_.Params();
  for (const Var& p : conv2_.Params()) {
    params.push_back(p);
  }
  return params;
}

Var Sequential::Forward(const Var& x) {
  Var h = x;
  for (auto& layer : layers_) {
    h = layer->Forward(h);
  }
  return h;
}

std::vector<Var> Sequential::Params() {
  std::vector<Var> params;
  for (auto& layer : layers_) {
    for (const Var& p : layer->Params()) {
      params.push_back(p);
    }
  }
  return params;
}

int64_t ParamCount(const std::vector<Var>& params) {
  int64_t n = 0;
  for (const Var& p : params) {
    n += p.numel();
  }
  return n;
}

std::vector<float> FlattenParams(const std::vector<Var>& params) {
  std::vector<float> flat;
  flat.reserve(static_cast<size_t>(ParamCount(params)));
  for (const Var& p : params) {
    const auto& values = p.value().values();
    flat.insert(flat.end(), values.begin(), values.end());
  }
  return flat;
}

void LoadParams(std::vector<Var>& params, const std::vector<float>& flat) {
  DETA_CHECK_EQ(static_cast<int64_t>(flat.size()), ParamCount(params));
  size_t offset = 0;
  for (Var& p : params) {
    auto& values = p.mutable_value().mutable_values();
    std::copy(flat.begin() + static_cast<long>(offset),
              flat.begin() + static_cast<long>(offset + values.size()), values.begin());
    offset += values.size();
  }
}

}  // namespace deta::nn
