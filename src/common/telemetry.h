// Process-global observability substrate: counters, gauges, log-scale histograms, and
// lightweight RAII spans, feeding the machine-readable per-run reports the CI bench gate
// consumes (scripts/bench_gate.py).
//
// Design constraints, in priority order:
//
//  1. *Deterministic-friendly.* A metric counts logical events (messages delivered,
//     coordinates aggregated, chunks scheduled) whose number is a pure function of the
//     workload — never of the thread count. Snapshots are sorted by name, so two
//     fault-free runs of the same job at different thread counts produce identical
//     counter values and metric sets; only durations (histograms registered with
//     Unit::kSeconds, gauge values) may differ. DeterministicSignature() captures exactly
//     the invariant part, and tests diff it across threads={1,2,4}.
//  2. *Cheap enough for hot paths.* The write path is one relaxed atomic add into a
//     per-thread shard — no shared cache line is ever contended, no lock is taken after
//     a handle is resolved. Handle resolution (name -> slot) takes the registry mutex
//     once per call site via a function-local static. The enabled-check is one relaxed
//     atomic load. Budget: < 2% wall-clock on micro_aggregation with telemetry on.
//  3. *Fold-on-snapshot.* Shards are only summed when Snapshot() runs; the instrumented
//     code never observes aggregation.
//
// Metric naming scheme: `layer.component.metric` (e.g. `net.bus.delivered`,
// `crypto.paillier.encrypt`, `core.deta_agg.fragments`). Span S records the histogram
// `span.S.wall_s` (and `span.S.sim_s` when a SimClock is attached); its count doubles as
// the span's invocation counter. See DESIGN.md "Observability".
#ifndef DETA_COMMON_TELEMETRY_H_
#define DETA_COMMON_TELEMETRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/sim_clock.h"

namespace deta::telemetry {

// What a histogram's recorded values measure. kSeconds histograms hold wall/CPU-time
// durations and are excluded from the determinism contract (their *presence* and the
// metric name still are part of it; their bucket contents are not).
enum class Unit : uint8_t { kCount = 0, kBytes = 1, kSeconds = 2 };

const char* UnitName(Unit unit);

// Number of log2 buckets per histogram. Bucket b holds values in [2^(b-31), 2^(b-30));
// bucket 0 additionally absorbs everything below 2^-31 (incl. zero/negative), bucket 63
// everything at or above 2^32. Covers ~0.5ns..4s durations and 1B..4GB sizes.
inline constexpr int kHistogramBuckets = 64;

// Lower bound of bucket |b| (the `le`-style boundary used by ToJson).
double BucketLowerBound(int b);
// Bucket index for |value| (pure function; identical on every platform/thread count).
int BucketFor(double value);

class MetricsRegistry;

// Monotonic event counter. Handle is stable for the process lifetime; copy freely.
class Counter {
 public:
  void Add(uint64_t delta);
  void Increment() { Add(1); }

 private:
  friend class MetricsRegistry;
  explicit Counter(uint32_t slot) : slot_(slot) {}
  uint32_t slot_;
};

// Last-write-wins instantaneous value (configured thread count, pool size, ...). Gauge
// values are run-configuration, not event counts: excluded from the determinism
// signature (names included).
class Gauge {
 public:
  void Set(double value);

 private:
  friend class MetricsRegistry;
  explicit Gauge(uint32_t index) : index_(index) {}
  uint32_t index_;
};

// Fixed log2-bucket histogram. Record() is one relaxed atomic add into the value's
// bucket plus a count/sum update in the caller's shard.
class Histogram {
 public:
  void Record(double value);

 private:
  friend class MetricsRegistry;
  Histogram(uint32_t base_slot, uint32_t sum_index)
      : base_slot_(base_slot), sum_index_(sum_index) {}
  uint32_t base_slot_;  // kHistogramBuckets bucket slots, then one count slot
  uint32_t sum_index_;  // per-shard double accumulator index
};

struct HistogramSnapshot {
  Unit unit = Unit::kCount;
  uint64_t count = 0;
  double sum = 0.0;
  // Non-empty buckets as (bucket index, count), ascending by index.
  std::vector<std::pair<int, uint64_t>> buckets;
};

// A sorted, immutable fold of every shard at one instant.
struct TelemetrySnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  // Simulated seconds at capture time, when the capturing job stamps one (0 otherwise).
  double sim_seconds = 0.0;

  // One line per invariant fact: counter name=value, gauge/histogram names, and — for
  // histograms not in Unit::kSeconds — count plus bucket contents. Two fault-free runs
  // of the same workload at different thread counts produce byte-identical signatures.
  std::string DeterministicSignature() const;
  // Same, restricted to metrics whose name starts with |prefix|. Crash/resume tests use
  // this: protocol-fabric counters (retries, channel seals) legitimately differ when a
  // role dies and is revived, but the training-progress metrics under "core.deta_job."
  // must not.
  std::string DeterministicSignature(const std::string& prefix) const;
};

// after - before, element-wise: counters/histogram contents subtract (values missing
// from |before| pass through), gauges take the |after| value. Lets a job report its own
// per-run telemetry without resetting the process-global registry.
TelemetrySnapshot Delta(const TelemetrySnapshot& before, const TelemetrySnapshot& after);

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  // Idempotent: the same name always resolves to the same handle. The registry mutex is
  // taken only here — cache the returned reference (e.g. in a function-local static).
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name, Unit unit = Unit::kCount);

  // Folds every thread's shard into one sorted snapshot. Safe to call concurrently with
  // writers; in-flight increments land in this snapshot or the next.
  TelemetrySnapshot Snapshot() const;

  // Zeroes every counter/histogram/gauge value (registrations persist). Meant for test
  // setup and between bench repetitions while writers are quiescent.
  void Reset();

 private:
  MetricsRegistry() = default;
};

// Convenience wrappers over MetricsRegistry::Global().
TelemetrySnapshot Snapshot();
void Reset();

// Master switch. When disabled, Add/Set/Record/Span are no-ops (handles still resolve).
void SetEnabled(bool enabled);
bool Enabled();

// Function-local-static handle caching for hot call sites:
//   DETA_COUNTER("net.channel.seal").Increment();
// resolves the name exactly once per call site.
#define DETA_COUNTER(name)                                                     \
  ([]() -> ::deta::telemetry::Counter& {                                       \
    static ::deta::telemetry::Counter& counter =                               \
        ::deta::telemetry::MetricsRegistry::Global().GetCounter(name);         \
    return counter;                                                            \
  }())
#define DETA_HISTOGRAM(name, unit)                                             \
  ([]() -> ::deta::telemetry::Histogram& {                                     \
    static ::deta::telemetry::Histogram& histogram =                           \
        ::deta::telemetry::MetricsRegistry::Global().GetHistogram(name, unit); \
    return histogram;                                                          \
  }())

// RAII trace span. Construction pushes onto the calling thread's span stack;
// End()/destruction pops it and records the wall-clock duration into the histogram
// `span.<name>.wall_s`. With a SimClock attached, the simulated-time delta between
// construction and End() additionally lands in `span.<name>.sim_s` — the caller advances
// the clock; the span only reads it.
class Span {
 public:
  explicit Span(std::string name, const SimClock* sim = nullptr);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Stops and records early; the destructor becomes a no-op. Idempotent.
  void End();

  const std::string& name() const { return name_; }
  // Nesting depth of the *current thread's* innermost open span (0 = none open). The
  // per-thread stack means concurrent nodes (aggregator threads, party threads) trace
  // independently without synchronization.
  static int Depth();
  // Name of the current thread's innermost open span; empty when none.
  static std::string Current();

 private:
  std::string name_;
  const SimClock* sim_;
  double sim_start_ = 0.0;
  WallStopwatch wall_;
  Span* parent_;  // enclosing span on this thread, restored by End()
  bool ended_ = false;
};

// --- driver integration -----------------------------------------------------

// Scans argv for `--telemetry-out=PATH` (or `--telemetry-out PATH`), removes it, and
// returns PATH ("" if absent). Call before handing argv to a flag parser that rejects
// unknown flags (e.g. benchmark::Initialize).
std::string ConsumeTelemetryFlag(int* argc, char** argv);

// Machine-readable export consumed by scripts/bench_gate.py:
//   {"version":1,"counters":{...},"gauges":{...},
//    "histograms":{name:{"unit":...,"count":...,"sum":...,"buckets":[[b,c],...]}}}
std::string ToJson(const TelemetrySnapshot& snapshot);
// Writes ToJson(snapshot) to |path|; false (with a logged error) on I/O failure.
bool WriteJsonFile(const TelemetrySnapshot& snapshot, const std::string& path);

}  // namespace deta::telemetry

#endif  // DETA_COMMON_TELEMETRY_H_
