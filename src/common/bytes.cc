#include "common/bytes.h"

#include "common/check.h"

namespace deta {

namespace {

int HexNibble(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}

}  // namespace

std::string ToHex(const Bytes& data) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0x0f]);
  }
  return out;
}

Bytes FromHex(const std::string& hex) {
  DETA_CHECK_MSG(hex.size() % 2 == 0, "hex string must have even length");
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexNibble(hex[i]);
    int lo = HexNibble(hex[i + 1]);
    DETA_CHECK_MSG(hi >= 0 && lo >= 0, "invalid hex digit");
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

Bytes StringToBytes(const std::string& s) { return Bytes(s.begin(), s.end()); }

std::string BytesToString(const Bytes& b) { return std::string(b.begin(), b.end()); }

void AppendU32(Bytes& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void AppendU64(Bytes& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint32_t ReadU32(const Bytes& in, size_t offset) {
  DETA_CHECK_LE(offset + 4, in.size());
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(in[offset + i]) << (8 * i);
  }
  return v;
}

uint64_t ReadU64(const Bytes& in, size_t offset) {
  DETA_CHECK_LE(offset + 8, in.size());
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(in[offset + i]) << (8 * i);
  }
  return v;
}

bool ConstantTimeEqual(const Bytes& a, const Bytes& b) {
  if (a.size() != b.size()) {
    return false;
  }
  uint8_t diff = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    diff |= static_cast<uint8_t>(a[i] ^ b[i]);
  }
  return diff == 0;
}

}  // namespace deta
