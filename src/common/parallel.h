// Deterministic parallel execution for the aggregation/crypto hot paths.
//
// The contract that makes this safe to sprinkle over numeric code: chunk boundaries are a
// pure function of (begin, end, grain) — never of the thread count — and ParallelReduce
// combines per-chunk partials in ascending chunk order. Any result computed through this
// API is therefore bitwise-identical whether it runs on 1 thread or 64, which is what
// lets DeTA's "decentralized == centralized" bit-exactness guarantees survive threading.
//
// The pool is global and lazily started; it runs one parallel region at a time. A region
// submitted while another is in flight (e.g. two DetaAggregator threads aggregating
// concurrently, or a nested ParallelFor) executes serially on the calling thread — same
// chunks, same order, same results — so composition can never deadlock.
#ifndef DETA_COMMON_PARALLEL_H_
#define DETA_COMMON_PARALLEL_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/telemetry.h"
#include "common/thread_annotations.h"

namespace deta::parallel {

// Sets the number of threads parallel regions may use; 0 means one per hardware core.
// Flows in from fl::ExecutionOptions::threads at job start. Thread-safe.
void SetDefaultThreads(int threads);

// The resolved thread count (always >= 1).
int DefaultThreads();

// Restores the previous thread count on scope exit. Used by benches and tests that sweep
// thread counts.
class ScopedThreads {
 public:
  explicit ScopedThreads(int threads);
  ~ScopedThreads();
  ScopedThreads(const ScopedThreads&) = delete;
  ScopedThreads& operator=(const ScopedThreads&) = delete;

 private:
  int previous_;
};

// Lazily-started shared worker pool. Use the ParallelFor/ParallelReduce wrappers below
// rather than calling Run directly.
class ThreadPool {
 public:
  static ThreadPool& Global();

  // Executes fn(chunk) for every chunk in [0, num_chunks), spreading chunks over up to
  // |threads| threads (the calling thread participates). Blocks until every chunk has
  // completed. If chunks throw, the exception from the lowest-index throwing chunk is
  // rethrown after all chunks finish.
  void Run(int64_t num_chunks, const std::function<void(int64_t)>& fn, int threads);

  ~ThreadPool();

 private:
  ThreadPool() = default;
  struct Job;

  void WorkerLoop();
  // Spawns workers until |count| exist.
  void EnsureWorkers(int count) DETA_REQUIRES(mutex_);
  // Claims and runs chunks until none remain, capturing the first (lowest-index)
  // exception into the job.
  static void WorkOn(Job& job);

  Mutex mutex_;
  CondVar wake_cv_;
  CondVar done_cv_;
  // Workers are spawned under mutex_ and only drained by the destructor, which swaps
  // the vector out under the lock and joins outside it.
  std::vector<std::thread> workers_ DETA_GUARDED_BY(mutex_);
  Job* job_ DETA_GUARDED_BY(mutex_) = nullptr;
  // Bumped per submitted job so workers can tell a fresh job from a stale wakeup.
  uint64_t generation_ DETA_GUARDED_BY(mutex_) = 0;
  bool stop_ DETA_GUARDED_BY(mutex_) = false;
  Mutex submit_mutex_;  // held for the duration of one pooled region
};

namespace internal {

// Telemetry handles for the parallel layer, resolved once. Bundled so every metric is
// *registered* on the first region regardless of which execution path (serial vs
// pooled) runs — keeping the metric set identical across thread counts, which the
// telemetry determinism contract requires. Region/chunk counters count logical work
// (pure functions of begin/end/grain), never threads, so their values are
// thread-count-invariant too; only the duration histograms vary.
struct RegionMetrics {
  telemetry::Counter& regions;
  telemetry::Counter& chunks;
  telemetry::Histogram& region_wall_s;
  telemetry::Histogram& drain_wait_s;  // recorded by ThreadPool::Run (pooled path only)

  static RegionMetrics& Get() {
    static RegionMetrics& metrics = *new RegionMetrics{
        telemetry::MetricsRegistry::Global().GetCounter("common.parallel.regions"),
        telemetry::MetricsRegistry::Global().GetCounter("common.parallel.chunks"),
        telemetry::MetricsRegistry::Global().GetHistogram("common.parallel.region.wall_s",
                                                          telemetry::Unit::kSeconds),
        telemetry::MetricsRegistry::Global().GetHistogram(
            "common.parallel.pool.drain_wait_s", telemetry::Unit::kSeconds)};
    // Present in every snapshot even if the pool never spawns (threads=1 runs).
    telemetry::MetricsRegistry::Global().GetGauge("common.parallel.pool.workers");
    return metrics;
  }
};

}  // namespace internal

// Calls fn(chunk_begin, chunk_end) over [begin, end) split into fixed chunks of |grain|
// indices (the last chunk may be short). Chunks may run concurrently and in any order;
// fn must only touch state that is disjoint across chunks.
template <typename Fn>
void ParallelFor(int64_t begin, int64_t end, int64_t grain, Fn&& fn) {
  if (end <= begin) return;
  grain = std::max<int64_t>(1, grain);
  const int64_t chunks = (end - begin + grain - 1) / grain;
  internal::RegionMetrics& metrics = internal::RegionMetrics::Get();
  metrics.regions.Increment();
  metrics.chunks.Add(static_cast<uint64_t>(chunks));
  WallStopwatch region_watch;
  auto run_chunk = [&](int64_t c) {
    const int64_t lo = begin + c * grain;
    fn(lo, std::min(end, lo + grain));
  };
  const int threads = DefaultThreads();
  if (threads <= 1 || chunks <= 1) {
    for (int64_t c = 0; c < chunks; ++c) run_chunk(c);
  } else {
    ThreadPool::Global().Run(chunks, run_chunk, threads);
  }
  metrics.region_wall_s.Record(region_watch.ElapsedSeconds());
}

// Deterministic map/reduce: acc = combine(acc, map(chunk_begin, chunk_end)) folded left
// in ascending chunk order over the same fixed chunks as ParallelFor. Because chunking
// ignores the thread count and the fold order is fixed, floating-point results are
// bitwise-identical for any thread count (including 1).
template <typename T, typename Map, typename Combine>
T ParallelReduce(int64_t begin, int64_t end, int64_t grain, T identity, Map&& map,
                 Combine&& combine) {
  if (end <= begin) return identity;
  grain = std::max<int64_t>(1, grain);
  const int64_t chunks = (end - begin + grain - 1) / grain;
  std::vector<T> partials(static_cast<size_t>(chunks), identity);
  ParallelFor(begin, end, grain, [&](int64_t lo, int64_t hi) {
    partials[static_cast<size_t>((lo - begin) / grain)] = map(lo, hi);
  });
  T acc = std::move(identity);
  for (T& partial : partials) acc = combine(std::move(acc), std::move(partial));
  return acc;
}

}  // namespace deta::parallel

#endif  // DETA_COMMON_PARALLEL_H_
