// Deterministic, fast, non-cryptographic RNG used for dataset synthesis, weight
// initialization, and workload generation. Cryptographic randomness (tokens, keys, nonces)
// lives in crypto/chacha20.h.
#ifndef DETA_COMMON_RNG_H_
#define DETA_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/bytes.h"

namespace deta {

// xoshiro256** seeded via SplitMix64. Deterministic across platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t NextU64();
  // Uniform in [0, bound). bound must be nonzero.
  uint64_t NextBelow(uint64_t bound);
  // Uniform in [0, 1).
  double NextDouble();
  // Uniform float in [lo, hi).
  float NextUniform(float lo, float hi);
  // Standard normal via Box-Muller.
  float NextGaussian();

  // Derives an independent child stream, e.g. one per party or per round.
  Rng Fork(uint64_t stream_id);

  // Full generator state (xoshiro words + the Box-Muller spare), for checkpoint/resume:
  // a restored Rng continues the exact stream the serialized one would have produced.
  Bytes SerializeState() const;
  // False (state unchanged) when |data| is not a serialized Rng state.
  bool RestoreState(const Bytes& data);

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBelow(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t s_[4];
  bool have_spare_gaussian_ = false;
  float spare_gaussian_ = 0.0f;
};

}  // namespace deta

#endif  // DETA_COMMON_RNG_H_
