// Thread-safe blocking queue used as per-endpoint mailbox by the message bus.
#ifndef DETA_COMMON_QUEUE_H_
#define DETA_COMMON_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace deta {

template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  void Push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) {
        return;  // Messages to a closed mailbox are dropped.
      }
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
  }

  // Blocks until an item is available or the queue is closed. Returns nullopt on close.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Blocks up to |timeout| for an item; nullopt on timeout or close.
  template <typename Rep, typename Period>
  std::optional<T> PopFor(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!cv_.wait_for(lock, timeout, [this] { return !items_.empty() || closed_; })) {
      return std::nullopt;
    }
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Non-blocking pop; returns nullopt when empty.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Unblocks all waiters; subsequent pushes are dropped.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace deta

#endif  // DETA_COMMON_QUEUE_H_
