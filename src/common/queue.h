// Thread-safe blocking queue used as per-endpoint mailbox by the message bus.
//
// Every wait is either bounded (PopFor) or cancellable (Close unblocks Pop); the
// protocol-liveness lint (DL-L1) leans on this: callers in protocol code must use the
// timed form so a dead peer can never wedge an event loop.
#ifndef DETA_COMMON_QUEUE_H_
#define DETA_COMMON_QUEUE_H_

#include <chrono>
#include <deque>
#include <optional>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace deta {

template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  void Push(T item) {
    {
      MutexLock lock(mutex_);
      if (closed_) {
        return;  // Messages to a closed mailbox are dropped.
      }
      items_.push_back(std::move(item));
    }
    cv_.NotifyOne();
  }

  // Blocks until an item is available or the queue is closed. Returns nullopt on close.
  // Unbounded on purpose (mailbox primitive): Close() is the documented unblocking path,
  // and DL-L1 polices the call sites — protocol code must use PopFor.
  std::optional<T> Pop() {
    MutexLock lock(mutex_);
    while (items_.empty() && !closed_) {
      cv_.Wait(mutex_);
    }
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Blocks up to |timeout| for an item; nullopt on timeout or close.
  template <typename Rep, typename Period>
  std::optional<T> PopFor(std::chrono::duration<Rep, Period> timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    MutexLock lock(mutex_);
    while (items_.empty() && !closed_) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        return std::nullopt;
      }
      cv_.WaitFor(mutex_, deadline - now);
    }
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Non-blocking pop; returns nullopt when empty.
  std::optional<T> TryPop() {
    MutexLock lock(mutex_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Unblocks all waiters; subsequent pushes are dropped.
  void Close() {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    cv_.NotifyAll();
  }

  bool closed() const {
    MutexLock lock(mutex_);
    return closed_;
  }

  size_t size() const {
    MutexLock lock(mutex_);
    return items_.size();
  }

 private:
  mutable Mutex mutex_;
  CondVar cv_;
  std::deque<T> items_ DETA_GUARDED_BY(mutex_);
  bool closed_ DETA_GUARDED_BY(mutex_) = false;
};

}  // namespace deta

#endif  // DETA_COMMON_QUEUE_H_
