#include "common/telemetry.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace deta::telemetry {

namespace {

// Capacity ceilings. Metrics are registered by code, not by input data, so these are
// bounds on the instrumentation surface, not on workload size; blowing one is a
// programming error caught loudly below.
constexpr uint32_t kMaxSlots = 16384;       // counter slots + histogram bucket/count slots
constexpr uint32_t kMaxHistograms = 128;    // per-shard double accumulators

// One thread's private write surface. Only the owning thread writes (relaxed atomic
// adds, never contended); Snapshot() folds across all shards with relaxed loads. Shards
// are leaked on thread exit so late folds never lose counts.
struct Shard {
  std::atomic<uint64_t> slots[kMaxSlots] = {};
  std::atomic<double> sums[kMaxHistograms] = {};
};

struct HistogramInfo {
  Histogram* handle;
  Unit unit;
};

// All registry state, heap-allocated once and never destroyed: instrumented worker
// threads may outlive static destruction order, and a dead registry must not be
// observable from a Counter::Add in flight.
struct State {
  Mutex mutex;
  // Stable addresses for returned references.
  std::deque<Counter> counters DETA_GUARDED_BY(mutex);
  std::deque<Gauge> gauges DETA_GUARDED_BY(mutex);
  std::deque<Histogram> histograms DETA_GUARDED_BY(mutex);
  std::map<std::string, Counter*> counter_by_name DETA_GUARDED_BY(mutex);
  std::map<std::string, Gauge*> gauge_by_name DETA_GUARDED_BY(mutex);
  std::map<std::string, HistogramInfo> histogram_by_name DETA_GUARDED_BY(mutex);
  // Indexed by Gauge::index_. Deliberately NOT guarded: elements are atomics at stable
  // deque addresses, and Gauge::Set writes them lock-free on the hot path; the mutex
  // only serializes growth (registration) against iteration (Snapshot/Reset).
  std::deque<std::atomic<double>> gauge_values;
  std::vector<std::unique_ptr<Shard>> shards DETA_GUARDED_BY(mutex);
  uint32_t next_slot DETA_GUARDED_BY(mutex) = 0;
  uint32_t next_histogram DETA_GUARDED_BY(mutex) = 0;
};

State& GlobalState() {
  static State* state = new State();
  return *state;
}

// Sums |slot| across every shard. A static helper rather than a lambda inside
// Snapshot(): the analysis checks lambda bodies out of context, so a guarded access
// inside one warns even when every call site holds the lock.
uint64_t FoldSlot(const State& state, uint32_t slot) DETA_REQUIRES(state.mutex) {
  uint64_t total = 0;
  for (const auto& shard : state.shards) {
    total += shard->slots[slot].load(std::memory_order_relaxed);
  }
  return total;
}

std::atomic<bool> g_enabled{true};

thread_local Shard* tls_shard = nullptr;

Shard& LocalShard() {
  if (tls_shard == nullptr) {
    auto shard = std::make_unique<Shard>();
    tls_shard = shard.get();
    State& state = GlobalState();
    MutexLock lock(state.mutex);
    state.shards.push_back(std::move(shard));
  }
  return *tls_shard;
}

[[noreturn]] void CapacityOverflow(const char* what) {
  std::fprintf(stderr, "telemetry: %s capacity exhausted — raise the ceiling in telemetry.cc\n",
               what);
  std::abort();
}

void AppendDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

// --- span stack (per thread) ---

thread_local Span* tls_current_span = nullptr;
thread_local int tls_span_depth = 0;

}  // namespace

const char* UnitName(Unit unit) {
  switch (unit) {
    case Unit::kCount:
      return "count";
    case Unit::kBytes:
      return "bytes";
    case Unit::kSeconds:
      return "seconds";
  }
  return "?";
}

double BucketLowerBound(int b) { return std::ldexp(1.0, b - 31); }

int BucketFor(double value) {
  if (!(value > 0.0)) {
    return 0;
  }
  int exp = 0;
  std::frexp(value, &exp);  // value = m * 2^exp with m in [0.5, 1)
  int b = exp + 30;         // [2^(exp-1), 2^exp) => bucket exp+30
  if (b < 0) return 0;
  if (b >= kHistogramBuckets) return kHistogramBuckets - 1;
  return b;
}

void SetEnabled(bool enabled) { g_enabled.store(enabled, std::memory_order_relaxed); }

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void Counter::Add(uint64_t delta) {
  if (!Enabled()) {
    return;
  }
  LocalShard().slots[slot_].fetch_add(delta, std::memory_order_relaxed);
}

void Gauge::Set(double value) {
  if (!Enabled()) {
    return;
  }
  GlobalState().gauge_values[index_].store(value, std::memory_order_relaxed);
}

void Histogram::Record(double value) {
  if (!Enabled()) {
    return;
  }
  Shard& shard = LocalShard();
  shard.slots[base_slot_ + static_cast<uint32_t>(BucketFor(value))].fetch_add(
      1, std::memory_order_relaxed);
  shard.slots[base_slot_ + kHistogramBuckets].fetch_add(1, std::memory_order_relaxed);
  shard.sums[sum_index_].fetch_add(value, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  State& state = GlobalState();
  MutexLock lock(state.mutex);
  auto it = state.counter_by_name.find(name);
  if (it != state.counter_by_name.end()) {
    return *it->second;
  }
  if (state.next_slot + 1 > kMaxSlots) {
    CapacityOverflow("counter slot");
  }
  state.counters.push_back(Counter(state.next_slot++));
  Counter* handle = &state.counters.back();
  state.counter_by_name.emplace(name, handle);
  return *handle;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  State& state = GlobalState();
  MutexLock lock(state.mutex);
  auto it = state.gauge_by_name.find(name);
  if (it != state.gauge_by_name.end()) {
    return *it->second;
  }
  state.gauge_values.emplace_back(0.0);
  state.gauges.push_back(Gauge(static_cast<uint32_t>(state.gauge_values.size() - 1)));
  Gauge* handle = &state.gauges.back();
  state.gauge_by_name.emplace(name, handle);
  return *handle;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name, Unit unit) {
  State& state = GlobalState();
  MutexLock lock(state.mutex);
  auto it = state.histogram_by_name.find(name);
  if (it != state.histogram_by_name.end()) {
    return *it->second.handle;
  }
  if (state.next_slot + kHistogramBuckets + 1 > kMaxSlots) {
    CapacityOverflow("histogram slot");
  }
  if (state.next_histogram + 1 > kMaxHistograms) {
    CapacityOverflow("histogram accumulator");
  }
  state.histograms.push_back(Histogram(state.next_slot, state.next_histogram));
  state.next_slot += kHistogramBuckets + 1;
  ++state.next_histogram;
  Histogram* handle = &state.histograms.back();
  state.histogram_by_name.emplace(name, HistogramInfo{handle, unit});
  return *handle;
}

TelemetrySnapshot MetricsRegistry::Snapshot() const {
  State& state = GlobalState();
  MutexLock lock(state.mutex);
  TelemetrySnapshot snapshot;
  for (const auto& [name, counter] : state.counter_by_name) {
    snapshot.counters[name] = FoldSlot(state, counter->slot_);
  }
  for (const auto& [name, gauge] : state.gauge_by_name) {
    snapshot.gauges[name] =
        state.gauge_values[gauge->index_].load(std::memory_order_relaxed);
  }
  for (const auto& [name, info] : state.histogram_by_name) {
    HistogramSnapshot h;
    h.unit = info.unit;
    h.count = FoldSlot(state, info.handle->base_slot_ + kHistogramBuckets);
    double sum = 0.0;
    for (const auto& shard : state.shards) {
      sum += shard->sums[info.handle->sum_index_].load(std::memory_order_relaxed);
    }
    h.sum = sum;
    for (int b = 0; b < kHistogramBuckets; ++b) {
      uint64_t c = FoldSlot(state, info.handle->base_slot_ + static_cast<uint32_t>(b));
      if (c > 0) {
        h.buckets.emplace_back(b, c);
      }
    }
    snapshot.histograms.emplace(name, std::move(h));
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  State& state = GlobalState();
  MutexLock lock(state.mutex);
  for (const auto& shard : state.shards) {
    for (uint32_t s = 0; s < state.next_slot; ++s) {
      shard->slots[s].store(0, std::memory_order_relaxed);
    }
    for (uint32_t h = 0; h < state.next_histogram; ++h) {
      shard->sums[h].store(0.0, std::memory_order_relaxed);
    }
  }
  for (auto& gauge : state.gauge_values) {
    gauge.store(0.0, std::memory_order_relaxed);
  }
}

TelemetrySnapshot Snapshot() { return MetricsRegistry::Global().Snapshot(); }

void Reset() { MetricsRegistry::Global().Reset(); }

std::string TelemetrySnapshot::DeterministicSignature() const {
  return DeterministicSignature("");
}

std::string TelemetrySnapshot::DeterministicSignature(const std::string& prefix) const {
  auto matches = [&prefix](const std::string& name) {
    return name.compare(0, prefix.size(), prefix) == 0;
  };
  std::string out;
  for (const auto& [name, value] : counters) {
    if (!matches(name)) {
      continue;
    }
    out.append("counter ").append(name).append("=").append(std::to_string(value));
    out.push_back('\n');
  }
  for (const auto& [name, value] : gauges) {
    if (!matches(name)) {
      continue;
    }
    (void)value;  // gauge values are run configuration, not workload facts
    out.append("gauge ").append(name).push_back('\n');
  }
  for (const auto& [name, h] : histograms) {
    if (!matches(name)) {
      continue;
    }
    out.append("hist ").append(name).append(" unit=").append(UnitName(h.unit));
    if (h.unit != Unit::kSeconds) {
      out.append(" count=").append(std::to_string(h.count)).append(" buckets=");
      for (const auto& [b, c] : h.buckets) {
        out.append(std::to_string(b)).append(":").append(std::to_string(c));
        out.push_back(',');
      }
    }
    out.push_back('\n');
  }
  return out;
}

TelemetrySnapshot Delta(const TelemetrySnapshot& before, const TelemetrySnapshot& after) {
  TelemetrySnapshot delta;
  delta.sim_seconds = after.sim_seconds - before.sim_seconds;
  for (const auto& [name, value] : after.counters) {
    auto it = before.counters.find(name);
    uint64_t base = it == before.counters.end() ? 0 : it->second;
    delta.counters[name] = value >= base ? value - base : 0;
  }
  delta.gauges = after.gauges;
  for (const auto& [name, h] : after.histograms) {
    auto it = before.histograms.find(name);
    if (it == before.histograms.end()) {
      delta.histograms[name] = h;
      continue;
    }
    const HistogramSnapshot& b = it->second;
    HistogramSnapshot d;
    d.unit = h.unit;
    d.count = h.count >= b.count ? h.count - b.count : 0;
    d.sum = h.sum - b.sum;
    std::map<int, uint64_t> base_buckets(b.buckets.begin(), b.buckets.end());
    for (const auto& [bucket, count] : h.buckets) {
      auto bit = base_buckets.find(bucket);
      uint64_t base = bit == base_buckets.end() ? 0 : bit->second;
      if (count > base) {
        d.buckets.emplace_back(bucket, count - base);
      }
    }
    delta.histograms.emplace(name, std::move(d));
  }
  return delta;
}

// --- spans ------------------------------------------------------------------

Span::Span(std::string name, const SimClock* sim)
    : name_(std::move(name)), sim_(sim), parent_(tls_current_span) {
  if (sim_ != nullptr) {
    sim_start_ = sim_->seconds();
  }
  tls_current_span = this;
  ++tls_span_depth;
}

Span::~Span() { End(); }

void Span::End() {
  if (ended_) {
    return;
  }
  ended_ = true;
  tls_current_span = parent_;
  --tls_span_depth;
  if (!Enabled()) {
    return;
  }
  MetricsRegistry& registry = MetricsRegistry::Global();
  std::string metric = "span.";
  metric.append(name_).append(".wall_s");
  registry.GetHistogram(metric, Unit::kSeconds).Record(wall_.ElapsedSeconds());
  if (sim_ != nullptr) {
    metric.assign("span.").append(name_).append(".sim_s");
    registry.GetHistogram(metric, Unit::kSeconds).Record(sim_->seconds() - sim_start_);
  }
}

int Span::Depth() { return tls_span_depth; }

std::string Span::Current() {
  return tls_current_span == nullptr ? std::string() : tls_current_span->name();
}

// --- driver integration -----------------------------------------------------

std::string ConsumeTelemetryFlag(int* argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--telemetry-out=", 16) == 0) {
      path = arg + 16;
      continue;
    }
    if (std::strcmp(arg, "--telemetry-out") == 0 && i + 1 < *argc) {
      path = argv[++i];
      continue;
    }
    argv[out++] = argv[i];
  }
  for (int i = out; i < *argc; ++i) {
    argv[i] = nullptr;
  }
  *argc = out;
  return path;
}

std::string ToJson(const TelemetrySnapshot& snapshot) {
  std::string out = "{\"version\":1,\"sim_seconds\":";
  AppendDouble(&out, snapshot.sim_seconds);
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, name);
    out.push_back(':');
    out.append(std::to_string(value));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, name);
    out += ":";
    AppendDouble(&out, value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, name);
    out += ":{\"unit\":\"";
    out += UnitName(h.unit);
    out += "\",\"count\":";
    out.append(std::to_string(h.count));
    out += ",\"sum\":";
    AppendDouble(&out, h.sum);
    out += ",\"buckets\":[";
    bool bfirst = true;
    for (const auto& [b, c] : h.buckets) {
      if (!bfirst) out += ",";
      bfirst = false;
      out.push_back('[');
      out.append(std::to_string(b));
      out.push_back(',');
      out.append(std::to_string(c));
      out.push_back(']');
    }
    out += "]}";
  }
  out += "}}\n";
  return out;
}

bool WriteJsonFile(const TelemetrySnapshot& snapshot, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "telemetry: cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::string json = ToJson(snapshot);
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  bool ok = written == json.size() && std::fclose(f) == 0;
  if (!ok) {
    std::fprintf(stderr, "telemetry: short write to %s\n", path.c_str());
  }
  return ok;
}

}  // namespace deta::telemetry
