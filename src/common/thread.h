// deta::ServiceThread — the sanctioned owner of a protocol event-loop thread.
//
// Every long-lived role in the system (aggregator, party, key broker) runs one loop
// thread with the same lifecycle: start in the constructor, drain on Stop(), join on
// destruction. Wrapping that in one type keeps raw std::thread out of protocol code
// (deta_lint rule DL-D3 bans it outside this header and common/parallel), so thread
// ownership and joining are auditable in exactly two places.
#ifndef DETA_COMMON_THREAD_H_
#define DETA_COMMON_THREAD_H_

#include <thread>
#include <utility>

namespace deta {

class ServiceThread {
 public:
  ServiceThread() = default;
  template <typename Fn>
  explicit ServiceThread(Fn&& fn) : thread_(std::forward<Fn>(fn)) {}

  ServiceThread(ServiceThread&&) = default;
  ServiceThread& operator=(ServiceThread&& other) {
    Join();
    thread_ = std::move(other.thread_);
    return *this;
  }
  ServiceThread(const ServiceThread&) = delete;
  ServiceThread& operator=(const ServiceThread&) = delete;

  ~ServiceThread() { Join(); }

  // Blocks until the loop function returns. Idempotent; safe on a never-started
  // thread. Callers must first signal the loop to exit (close the endpoint, set the
  // stop flag) or this will block forever — that ordering is the role's contract.
  void Join() {
    if (thread_.joinable()) thread_.join();
  }

  bool Joinable() const { return thread_.joinable(); }

 private:
  std::thread thread_;
};

}  // namespace deta

#endif  // DETA_COMMON_THREAD_H_
