// Secret<T>: a taint type for key material and other must-not-leak values.
//
// DeTA's trust argument (paper §4) is that secrets — Paillier private components,
// channel master secrets, the broker's transform material, CSPRNG states — only ever
// leave a role sealed or wiped. PR 5 enforced that with a regex lint over hand-placed
// `// deta-lint: secret` tags; this wrapper moves the first line of defence into the
// type system, where a leak is a *compile error* instead of a lint finding:
//
//   * construction is explicit: a T never silently becomes a Secret<T>, so taint is
//     always introduced deliberately at the point a value becomes secret;
//   * there is NO implicit conversion back to T: a Secret<T> cannot be passed to a
//     log stream, a telemetry label, ToHex, memcpy, a wire codec, or any other
//     T-shaped sink without an audited Expose* call that names its purpose;
//   * stream insertion is deleted outright, so `DETA_LOG(...) << secret` and
//     `std::cout << secret` fail to build even via ADL;
//   * destruction (and reassignment) wipes the previous value through
//     crypto::SecureWipe / T::Wipe, so owners no longer need hand-written zeroizing
//     destructors that DL-S2 has to police.
//
// The audited accessors are the complete exposure surface, and their names are what
// the interprocedural taint checker (scripts/deta_taintcheck.py) seeds on — a value
// obtained from Expose* is tainted and must reach a sanitizer sink (Seal/SecureWipe/
// AEAD internals) rather than a forbidden one (logs, telemetry, plaintext persist,
// raw transport frames):
//
//   ExposeForCrypto()  read access for key-schedule/crypto kernels (PowMod with a
//                      CRT prime, ChaCha block generation, ECDH/ECDSA scalars);
//   ExposeForSeal()    read access on the way into an AEAD seal or an authenticated
//                      channel (the value is about to become ciphertext);
//   ExposeMutable()    write access for deserialization/rekeying paths;
//   WipeNow()          explicit early erasure (ExposeForWipe in the design docs).
//
// Both const accessors return the same reference; the split exists so call sites
// document *why* the secret is exposed and so the checker can treat seal-bound
// exposures as sanitized flows. Negative-compile fixtures
// (tests/negative_compile/secret_*.cc, scripts/secret_negcompile.sh) prove the
// deleted paths actually fail to build.
#ifndef DETA_COMMON_SECRET_H_
#define DETA_COMMON_SECRET_H_

#include <array>
#include <cstddef>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "crypto/secure_wipe.h"

namespace deta {

namespace secret_internal {

template <typename T, typename = void>
struct HasWipeMethod : std::false_type {};
template <typename T>
struct HasWipeMethod<T, std::void_t<decltype(std::declval<T&>().Wipe())>>
    : std::true_type {};

template <typename T>
struct IsContiguousTrivial : std::false_type {};
template <typename E, typename A>
struct IsContiguousTrivial<std::vector<E, A>> : std::is_trivially_copyable<E> {};
template <typename C, typename Tr, typename A>
struct IsContiguousTrivial<std::basic_string<C, Tr, A>> : std::is_trivially_copyable<C> {};

// Best-effort erasure strategy per wrapped type: prefer the type's own Wipe()
// (BigUint zeroes its limbs), then raw-byte wipes for flat and contiguous storage.
// A type with none of these has heap internals this header cannot see; storing it
// in a Secret is a compile error rather than a silent non-wipe.
template <typename T>
void WipeValue(T& value) {
  if constexpr (HasWipeMethod<T>::value) {
    value.Wipe();
  } else if constexpr (std::is_trivially_copyable_v<T>) {
    crypto::SecureWipe(&value, sizeof(T));
  } else if constexpr (IsContiguousTrivial<T>::value) {
    crypto::SecureWipe(value.data(), value.size() * sizeof(*value.data()));
    value.clear();
  } else {
    static_assert(HasWipeMethod<T>::value,
                  "Secret<T> needs T::Wipe(), a trivially copyable T, or a "
                  "contiguous container of trivially copyable elements");
  }
}

}  // namespace secret_internal

template <typename T>
class Secret {
 public:
  using value_type = T;

  Secret() = default;
  explicit Secret(T value) : value_(std::move(value)) {}

  Secret(const Secret&) = default;
  Secret(Secret&& other) noexcept : value_(std::move(other.value_)) {
    // Moved-from containers may keep their buffer; leave no readable copy behind.
    other.WipeNow();
  }
  Secret& operator=(const Secret& other) {
    if (this != &other) {
      secret_internal::WipeValue(value_);
      value_ = other.value_;
    }
    return *this;
  }
  Secret& operator=(Secret&& other) noexcept {
    if (this != &other) {
      secret_internal::WipeValue(value_);
      value_ = std::move(other.value_);
      other.WipeNow();
    }
    return *this;
  }
  ~Secret() { secret_internal::WipeValue(value_); }

  // Audited exposure surface — see the header comment for when each applies.
  // lvalue-qualified: exposing a temporary Secret would hand out a dangling
  // reference *and* dodge the audit trail, so it does not compile.
  const T& ExposeForCrypto() const& { return value_; }
  const T& ExposeForSeal() const& { return value_; }
  T& ExposeMutable() & { return value_; }
  const T& ExposeForCrypto() const&& = delete;
  const T& ExposeForSeal() const&& = delete;

  // Explicit early erasure (the value stays usable as an empty/zero T).
  void WipeNow() { secret_internal::WipeValue(value_); }

  // Equality never exposes the value; tests compare snapshots/keys through this.
  // (Not constant-time for every T — use ConstantTimeEqual on exposed Bytes where
  // an adversary can time the comparison.)
  friend bool operator==(const Secret& a, const Secret& b) {
    return a.value_ == b.value_;
  }
  friend bool operator!=(const Secret& a, const Secret& b) { return !(a == b); }

  // A secret is never printable: this catches DETA_LOG/std::ostream insertion (and
  // any other stream type) at overload resolution, before a byte can escape.
  template <typename Os>
  friend Os& operator<<(Os&, const Secret&) = delete;

 private:
  T value_{};
};

}  // namespace deta

#endif  // DETA_COMMON_SECRET_H_
