// Minimal leveled logging. Defaults to WARNING so benches/tests stay quiet; examples and
// the end-to-end drivers raise the level to INFO for narration.
#ifndef DETA_COMMON_LOGGING_H_
#define DETA_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace deta {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

// Process-global log threshold. Messages below the threshold are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

// Emits one formatted log line to stderr; thread-safe. Lines at kWarning/kError also
// bump the telemetry counters `common.log.warnings` / `common.log.errors`, so tests and
// the CI bench gate can assert "this run logged no warnings".
void EmitLog(LogLevel level, const char* file, int line, const std::string& message);

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { EmitLog(level_, file_, line_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the level is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

// Lets the ternary in DETA_LOG discard the stream expression as void.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace deta

// Leveled log statement. Expression form (not a dangling if/else): when the level is
// below the process threshold the whole right-hand side — including every operand
// streamed into it — is skipped, so hot paths (MessageBus delivery, per-fragment
// protocol handlers) pay one atomic load and nothing else for a disabled LOG_DEBUG.
#define DETA_LOG(level)                                                         \
  (static_cast<int>(::deta::LogLevel::level) <                                  \
   static_cast<int>(::deta::GetLogLevel()))                                     \
      ? (void)0                                                                 \
      : ::deta::internal::Voidify() &                                           \
            ::deta::internal::LogMessage(::deta::LogLevel::level, __FILE__,     \
                                         __LINE__)                              \
                .stream()

#define LOG_DEBUG DETA_LOG(kDebug)
#define LOG_INFO DETA_LOG(kInfo)
#define LOG_WARNING DETA_LOG(kWarning)
#define LOG_ERROR DETA_LOG(kError)

#endif  // DETA_COMMON_LOGGING_H_
