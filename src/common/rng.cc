#include "common/rng.h"

#include <cmath>
#include <cstring>

#include "common/check.h"

namespace deta {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::NextU64() {
  uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  DETA_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
}

float Rng::NextUniform(float lo, float hi) {
  return lo + static_cast<float>(NextDouble()) * (hi - lo);
}

float Rng::NextGaussian() {
  if (have_spare_gaussian_) {
    have_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  spare_gaussian_ = static_cast<float>(mag * std::sin(2.0 * M_PI * u2));
  have_spare_gaussian_ = true;
  return static_cast<float>(mag * std::cos(2.0 * M_PI * u2));
}

Rng Rng::Fork(uint64_t stream_id) {
  // Mix the stream id into a fresh seed drawn from this stream.
  uint64_t base = NextU64();
  uint64_t sm = base ^ (stream_id * 0x9e3779b97f4a7c15ULL + 0x1234567890abcdefULL);
  return Rng(SplitMix64(sm));
}

Bytes Rng::SerializeState() const {
  Bytes out;
  for (uint64_t word : s_) {
    AppendU64(out, word);
  }
  out.push_back(have_spare_gaussian_ ? 1 : 0);
  uint32_t spare_bits = 0;
  static_assert(sizeof(spare_bits) == sizeof(spare_gaussian_));
  std::memcpy(&spare_bits, &spare_gaussian_, sizeof(spare_bits));
  AppendU32(out, spare_bits);
  return out;
}

bool Rng::RestoreState(const Bytes& data) {
  if (data.size() != 4 * sizeof(uint64_t) + 1 + sizeof(uint32_t)) {
    return false;
  }
  for (int i = 0; i < 4; ++i) {
    s_[i] = ReadU64(data, static_cast<size_t>(i) * sizeof(uint64_t));
  }
  have_spare_gaussian_ = data[4 * sizeof(uint64_t)] != 0;
  uint32_t spare_bits = ReadU32(data, 4 * sizeof(uint64_t) + 1);
  std::memcpy(&spare_gaussian_, &spare_bits, sizeof(spare_bits));
  return true;
}

}  // namespace deta
