#include "common/parallel.h"

#include <atomic>
#include <exception>

namespace deta::parallel {

namespace {

std::atomic<int> g_default_threads{0};

// Beyond this many workers extra oversubscription buys nothing; also bounds pool memory.
constexpr int kMaxWorkers = 63;

}  // namespace

void SetDefaultThreads(int threads) {
  g_default_threads.store(threads < 0 ? 0 : threads, std::memory_order_relaxed);
  telemetry::MetricsRegistry::Global()
      .GetGauge("common.parallel.threads")
      .Set(DefaultThreads());
}

int DefaultThreads() {
  const int t = g_default_threads.load(std::memory_order_relaxed);
  if (t > 0) return t;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ScopedThreads::ScopedThreads(int threads)
    : previous_(g_default_threads.load(std::memory_order_relaxed)) {
  SetDefaultThreads(threads);
}

ScopedThreads::~ScopedThreads() { SetDefaultThreads(previous_); }

// One parallel region. |next| hands out chunk indices; |slots| caps how many pool
// workers may join (the caller always participates); |active| counts workers currently
// inside WorkOn so the caller knows when every claimed chunk has finished.
struct ThreadPool::Job {
  const std::function<void(int64_t)>* fn = nullptr;
  int64_t num_chunks = 0;
  std::atomic<int64_t> next{0};
  std::atomic<int> slots{0};
  // Guarded by the *pool's* mutex_ — a different object's capability, which the
  // guarded_by attribute cannot name from here; the annotated accesses in WorkerLoop
  // and Run all hold it.
  int active = 0;
  Mutex error_mutex;
  int64_t error_chunk DETA_GUARDED_BY(error_mutex) = -1;
  std::exception_ptr error DETA_GUARDED_BY(error_mutex);
};

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::~ThreadPool() {
  std::vector<std::thread> workers;
  {
    MutexLock lock(mutex_);
    stop_ = true;
    workers.swap(workers_);
  }
  wake_cv_.NotifyAll();
  for (std::thread& worker : workers) worker.join();
}

void ThreadPool::EnsureWorkers(int count) {
  count = std::min(count, kMaxWorkers);
  while (static_cast<int>(workers_.size()) < count) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  telemetry::MetricsRegistry::Global()
      .GetGauge("common.parallel.pool.workers")
      .Set(static_cast<double>(workers_.size()));
}

void ThreadPool::WorkOn(Job& job) {
  for (;;) {
    const int64_t c = job.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.num_chunks) return;
    try {
      (*job.fn)(c);
    } catch (...) {
      MutexLock lock(job.error_mutex);
      if (job.error_chunk < 0 || c < job.error_chunk) {
        job.error_chunk = c;
        job.error = std::current_exception();
      }
    }
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  mutex_.Lock();
  for (;;) {
    while (!stop_ && generation_ == seen) {
      wake_cv_.Wait(mutex_);
    }
    if (stop_) {
      mutex_.Unlock();
      return;
    }
    seen = generation_;
    Job* job = job_;
    if (job == nullptr) continue;
    // Late wakeups and extra workers bounce off the slot cap.
    if (job->slots.fetch_sub(1, std::memory_order_relaxed) <= 0) continue;
    ++job->active;
    mutex_.Unlock();
    WorkOn(*job);
    mutex_.Lock();
    // The submitting thread holds submit_mutex_ until |active| drains, so |job| stays
    // alive for this decrement.
    if (--job->active == 0) done_cv_.NotifyAll();
  }
}

void ThreadPool::Run(int64_t num_chunks, const std::function<void(int64_t)>& fn,
                     int threads) {
  if (num_chunks <= 0) return;
  const int64_t limit = std::min<int64_t>(num_chunks, threads);
  if (limit <= 1) {
    for (int64_t c = 0; c < num_chunks; ++c) fn(c);
    return;
  }
  if (!submit_mutex_.TryLock()) {
    // Nested or concurrent region (another thread owns the pool right now): run the
    // identical chunks serially in index order.
    for (int64_t c = 0; c < num_chunks; ++c) fn(c);
    return;
  }

  Job job;
  job.fn = &fn;
  job.num_chunks = num_chunks;
  job.slots.store(static_cast<int>(limit) - 1, std::memory_order_relaxed);
  {
    MutexLock lock(mutex_);
    EnsureWorkers(static_cast<int>(limit) - 1);
    job_ = &job;
    ++generation_;
  }
  wake_cv_.NotifyAll();
  WorkOn(job);  // WorkOn catches everything into the job, so submit_mutex_ stays paired.
  {
    // Drain wait: the submitting thread ran out of chunks but pool workers are still
    // finishing theirs. Long waits here mean chunk granularity is too coarse.
    WallStopwatch drain_watch;
    {
      MutexLock lock(mutex_);
      while (job.active != 0) {
        done_cv_.Wait(mutex_);
      }
      job_ = nullptr;
    }
    internal::RegionMetrics::Get().drain_wait_s.Record(drain_watch.ElapsedSeconds());
  }
  std::exception_ptr error;
  {
    MutexLock lock(job.error_mutex);
    error = job.error;
  }
  submit_mutex_.Unlock();
  if (error) std::rethrow_exception(error);
}

}  // namespace deta::parallel
