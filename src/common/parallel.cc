#include "common/parallel.h"

#include <atomic>
#include <exception>

namespace deta::parallel {

namespace {

std::atomic<int> g_default_threads{0};

// Beyond this many workers extra oversubscription buys nothing; also bounds pool memory.
constexpr int kMaxWorkers = 63;

}  // namespace

void SetDefaultThreads(int threads) {
  g_default_threads.store(threads < 0 ? 0 : threads, std::memory_order_relaxed);
  telemetry::MetricsRegistry::Global()
      .GetGauge("common.parallel.threads")
      .Set(DefaultThreads());
}

int DefaultThreads() {
  const int t = g_default_threads.load(std::memory_order_relaxed);
  if (t > 0) return t;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ScopedThreads::ScopedThreads(int threads)
    : previous_(g_default_threads.load(std::memory_order_relaxed)) {
  SetDefaultThreads(threads);
}

ScopedThreads::~ScopedThreads() { SetDefaultThreads(previous_); }

// One parallel region. |next| hands out chunk indices; |slots| caps how many pool
// workers may join (the caller always participates); |active| counts workers currently
// inside WorkOn so the caller knows when every claimed chunk has finished.
struct ThreadPool::Job {
  const std::function<void(int64_t)>* fn = nullptr;
  int64_t num_chunks = 0;
  std::atomic<int64_t> next{0};
  std::atomic<int> slots{0};
  int active = 0;           // guarded by the pool's mutex_
  int64_t error_chunk = -1;  // guarded by error_mutex
  std::exception_ptr error;  // guarded by error_mutex
  std::mutex error_mutex;
};

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::EnsureWorkers(int count) {
  count = std::min(count, kMaxWorkers);
  while (static_cast<int>(workers_.size()) < count) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  telemetry::MetricsRegistry::Global()
      .GetGauge("common.parallel.pool.workers")
      .Set(static_cast<double>(workers_.size()));
}

void ThreadPool::WorkOn(Job& job) {
  for (;;) {
    const int64_t c = job.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.num_chunks) return;
    try {
      (*job.fn)(c);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.error_mutex);
      if (job.error_chunk < 0 || c < job.error_chunk) {
        job.error_chunk = c;
        job.error = std::current_exception();
      }
    }
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    wake_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    Job* job = job_;
    if (job == nullptr) continue;
    // Late wakeups and extra workers bounce off the slot cap.
    if (job->slots.fetch_sub(1, std::memory_order_relaxed) <= 0) continue;
    ++job->active;
    lock.unlock();
    WorkOn(*job);
    lock.lock();
    // The submitting thread holds submit_mutex_ until |active| drains, so |job| stays
    // alive for this decrement.
    if (--job->active == 0) done_cv_.notify_all();
  }
}

void ThreadPool::Run(int64_t num_chunks, const std::function<void(int64_t)>& fn,
                     int threads) {
  if (num_chunks <= 0) return;
  const int64_t limit = std::min<int64_t>(num_chunks, threads);
  std::unique_lock<std::mutex> submit(submit_mutex_, std::try_to_lock);
  if (limit <= 1 || !submit.owns_lock()) {
    // Nested or concurrent region (another thread owns the pool right now), or nothing
    // to spread: run the identical chunks serially in index order.
    for (int64_t c = 0; c < num_chunks; ++c) fn(c);
    return;
  }

  Job job;
  job.fn = &fn;
  job.num_chunks = num_chunks;
  job.slots.store(static_cast<int>(limit) - 1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    EnsureWorkers(static_cast<int>(limit) - 1);
    job_ = &job;
    ++generation_;
  }
  wake_cv_.notify_all();
  WorkOn(job);
  {
    // Drain wait: the submitting thread ran out of chunks but pool workers are still
    // finishing theirs. Long waits here mean chunk granularity is too coarse.
    WallStopwatch drain_watch;
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return job.active == 0; });
    job_ = nullptr;
    internal::RegionMetrics::Get().drain_wait_s.Record(drain_watch.ElapsedSeconds());
  }
  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace deta::parallel
