// Lightweight runtime-check macros.
//
// CHECK-style macros throw deta::CheckFailure (a std::logic_error) instead of aborting so
// that unit tests can assert on violated preconditions and so that long-running simulated
// deployments surface programming errors as catchable diagnostics.
#ifndef DETA_COMMON_CHECK_H_
#define DETA_COMMON_CHECK_H_

#include <sstream>
#include <stdexcept>
#include <string>

namespace deta {

// Thrown when a CHECK macro fails. Carries file/line context in what().
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& message) : std::logic_error(message) {}
};

namespace internal {

[[noreturn]] inline void CheckFail(const char* file, int line, const std::string& expr,
                                   const std::string& detail) {
  std::ostringstream os;
  os << "CHECK failed at " << file << ":" << line << ": " << expr;
  if (!detail.empty()) {
    os << " — " << detail;
  }
  throw CheckFailure(os.str());
}

}  // namespace internal
}  // namespace deta

#define DETA_CHECK(cond)                                                  \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::deta::internal::CheckFail(__FILE__, __LINE__, #cond, "");         \
    }                                                                     \
  } while (false)

#define DETA_CHECK_MSG(cond, msg)                                         \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream deta_check_os_;                                  \
      deta_check_os_ << msg;                                              \
      ::deta::internal::CheckFail(__FILE__, __LINE__, #cond,              \
                                  deta_check_os_.str());                  \
    }                                                                     \
  } while (false)

#define DETA_CHECK_EQ(a, b)                                               \
  do {                                                                    \
    if (!((a) == (b))) {                                                  \
      std::ostringstream deta_check_os_;                                  \
      deta_check_os_ << "lhs=" << (a) << " rhs=" << (b);                  \
      ::deta::internal::CheckFail(__FILE__, __LINE__, #a " == " #b,       \
                                  deta_check_os_.str());                  \
    }                                                                     \
  } while (false)

#define DETA_CHECK_NE(a, b)                                               \
  do {                                                                    \
    if ((a) == (b)) {                                                     \
      ::deta::internal::CheckFail(__FILE__, __LINE__, #a " != " #b, "");  \
    }                                                                     \
  } while (false)

#define DETA_CHECK_LT(a, b)                                               \
  do {                                                                    \
    if (!((a) < (b))) {                                                   \
      std::ostringstream deta_check_os_;                                  \
      deta_check_os_ << "lhs=" << (a) << " rhs=" << (b);                  \
      ::deta::internal::CheckFail(__FILE__, __LINE__, #a " < " #b,        \
                                  deta_check_os_.str());                  \
    }                                                                     \
  } while (false)

#define DETA_CHECK_LE(a, b)                                               \
  do {                                                                    \
    if (!((a) <= (b))) {                                                  \
      std::ostringstream deta_check_os_;                                  \
      deta_check_os_ << "lhs=" << (a) << " rhs=" << (b);                  \
      ::deta::internal::CheckFail(__FILE__, __LINE__, #a " <= " #b,       \
                                  deta_check_os_.str());                  \
    }                                                                     \
  } while (false)

#define DETA_CHECK_GT(a, b)                                               \
  do {                                                                    \
    if (!((a) > (b))) {                                                   \
      std::ostringstream deta_check_os_;                                  \
      deta_check_os_ << "lhs=" << (a) << " rhs=" << (b);                  \
      ::deta::internal::CheckFail(__FILE__, __LINE__, #a " > " #b,        \
                                  deta_check_os_.str());                  \
    }                                                                     \
  } while (false)

#define DETA_CHECK_GE(a, b)                                               \
  do {                                                                    \
    if (!((a) >= (b))) {                                                  \
      std::ostringstream deta_check_os_;                                  \
      deta_check_os_ << "lhs=" << (a) << " rhs=" << (b);                  \
      ::deta::internal::CheckFail(__FILE__, __LINE__, #a " >= " #b,       \
                                  deta_check_os_.str());                  \
    }                                                                     \
  } while (false)

#endif  // DETA_COMMON_CHECK_H_
