// Clang thread-safety-analysis annotations (no-ops on other compilers).
//
// These macros put the repo's concurrency contracts — "field X is only touched under
// mutex M", "helper F may only be called with M held" — into the type system, so a
// missing lock is a compile error under `clang -Wthread-safety -Werror=thread-safety`
// (the CI `static-analysis` leg and `scripts/check.sh --preset static`) instead of a
// probabilistic TSan finding. Use them through the annotated wrappers in
// common/mutex.h; raw std::mutex outside those wrappers is a deta_lint error (DL-D3).
//
// Naming follows the clang capability model (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html):
//   DETA_GUARDED_BY(mu)   on a data member: reads/writes require mu.
//   DETA_REQUIRES(mu)     on a function: caller must hold mu (the *Locked() convention).
//   DETA_ACQUIRE/RELEASE  on lock/unlock-shaped functions.
//   DETA_EXCLUDES(mu)     on a function: caller must NOT hold mu (self-deadlock guard).
#ifndef DETA_COMMON_THREAD_ANNOTATIONS_H_
#define DETA_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define DETA_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define DETA_THREAD_ANNOTATION_(x)
#endif

// On a class: instances are lockable capabilities (deta::Mutex).
#define DETA_CAPABILITY(x) DETA_THREAD_ANNOTATION_(capability(x))

// On a class: RAII object that acquires a capability for its lifetime (deta::MutexLock).
#define DETA_SCOPED_CAPABILITY DETA_THREAD_ANNOTATION_(scoped_lockable)

// On a data member: accessing it requires holding the named mutex.
#define DETA_GUARDED_BY(x) DETA_THREAD_ANNOTATION_(guarded_by(x))

// On a pointer member: accessing *ptr (not the pointer itself) requires the mutex.
#define DETA_PT_GUARDED_BY(x) DETA_THREAD_ANNOTATION_(pt_guarded_by(x))

// Lock-ordering declarations between mutexes (deadlock prevention).
#define DETA_ACQUIRED_BEFORE(...) DETA_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define DETA_ACQUIRED_AFTER(...) DETA_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

// On a function: the caller must hold the listed mutexes (exclusively).
#define DETA_REQUIRES(...) DETA_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

// On a function: acquires / releases the listed mutexes (or `this` when empty).
#define DETA_ACQUIRE(...) DETA_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define DETA_RELEASE(...) DETA_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

// On a function returning bool: acquires the mutex when it returns |success|.
#define DETA_TRY_ACQUIRE(...) DETA_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

// On a function: the caller must NOT hold the listed mutexes (it locks them itself).
#define DETA_EXCLUDES(...) DETA_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// On a function: asserts (at runtime) that the mutex is held; informs the analysis.
#define DETA_ASSERT_CAPABILITY(x) DETA_THREAD_ANNOTATION_(assert_capability(x))

// On a function returning a reference to a mutex (accessor pattern).
#define DETA_RETURN_CAPABILITY(x) DETA_THREAD_ANNOTATION_(lock_returned(x))

// Escape hatch: the function is exempt from analysis. Every use needs a comment
// explaining why the contract cannot be expressed (see DESIGN.md "Static analysis").
#define DETA_NO_THREAD_SAFETY_ANALYSIS DETA_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // DETA_COMMON_THREAD_ANNOTATIONS_H_
