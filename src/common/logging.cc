#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>

#include "common/mutex.h"
#include "common/telemetry.h"

namespace deta {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};
Mutex g_log_mutex;  // serializes whole lines to stderr

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

// Trims a path down to its basename for compact log lines.
const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  return base;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

namespace internal {

void EmitLog(LogLevel level, const char* file, int line, const std::string& message) {
  // Elevated lines feed the "no warnings" CI gate even when stderr goes unread.
  if (level == LogLevel::kWarning) {
    DETA_COUNTER("common.log.warnings").Increment();
  } else if (level == LogLevel::kError) {
    DETA_COUNTER("common.log.errors").Increment();
  }
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  double elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  MutexLock lock(g_log_mutex);
  std::fprintf(stderr, "[%9.3f %-5s %s:%d] %s\n", elapsed, LevelName(level), Basename(file),
               line, message.c_str());
}

}  // namespace internal
}  // namespace deta
