// Simulated-time accounting for the latency experiments (Figures 5d-f, 6b, 7b).
//
// The paper measures wall-clock training latency on a physical testbed (SEV machines,
// GPUs, a real network). This repo runs everything in one process, so latency is modelled:
// each logical node (party/aggregator) owns a SimClock that mixes
//   * measured compute time (real CPU time spent in training/aggregation), and
//   * modelled costs (network transfer = rtt + bytes/bandwidth; SEV memory-encryption
//     overhead as a multiplicative factor on aggregator compute).
// A round's end-to-end latency combines sequential party work (max over parties, since
// parties run in parallel in the paper's testbed) and parallel aggregator work (max over
// aggregators — the property that makes Paillier *faster* under DeTA).
#ifndef DETA_COMMON_SIM_CLOCK_H_
#define DETA_COMMON_SIM_CLOCK_H_

#include <chrono>
#include <cstdint>
#include <ctime>

namespace deta {

// Parameters of the modelled deployment, chosen to echo the paper's testbed shape.
struct LatencyModel {
  double rtt_seconds = 0.002;             // per message round trip (same-region LAN/WAN mix)
  double bandwidth_bytes_per_sec = 125e6;  // ~1 Gbps
  double sev_compute_overhead = 0.08;     // extra fraction of compute inside a CVM
  double attestation_seconds = 0.35;      // one-time phase-I attestation per aggregator

  // Modelled time to move |bytes| across one hop.
  double TransferSeconds(uint64_t bytes) const {
    return rtt_seconds + static_cast<double>(bytes) / bandwidth_bytes_per_sec;
  }
};

// Accumulates simulated seconds for one logical node.
class SimClock {
 public:
  SimClock() = default;

  void Advance(double seconds) { seconds_ += seconds; }
  double seconds() const { return seconds_; }
  void Reset() { seconds_ = 0.0; }

  // Advances to at least |t| (used when a node waits on another node's output).
  void AdvanceTo(double t) {
    if (t > seconds_) {
      seconds_ = t;
    }
  }

 private:
  double seconds_ = 0.0;
};

// Stopwatch measuring this thread's CPU time. Thread CPU time (not wall time) is the
// right "compute cost" signal here: parties/aggregators that run concurrently in the
// modelled deployment share one core in this process, and wall time would charge each
// node for its neighbours' work.
class Stopwatch {
 public:
  Stopwatch() : start_(Now()) {}
  double ElapsedSeconds() const { return Now() - start_; }

 private:
  static double Now() {
    timespec ts;
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
  }
  double start_;
};

// Wall-clock stopwatch for end-to-end measurements.
class WallStopwatch {
 public:
  WallStopwatch() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace deta

#endif  // DETA_COMMON_SIM_CLOCK_H_
