// Byte-buffer alias and hex/serialization helpers shared across the crypto and
// networking substrates.
#ifndef DETA_COMMON_BYTES_H_
#define DETA_COMMON_BYTES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace deta {

using Bytes = std::vector<uint8_t>;

// Encodes |data| as lowercase hex.
std::string ToHex(const Bytes& data);

// Decodes a hex string (upper or lower case). Throws CheckFailure on malformed input.
Bytes FromHex(const std::string& hex);

// Converts a std::string payload into bytes and back.
Bytes StringToBytes(const std::string& s);
std::string BytesToString(const Bytes& b);

// Appends a fixed-width little-endian integer to |out| / reads it back.
void AppendU32(Bytes& out, uint32_t v);
void AppendU64(Bytes& out, uint64_t v);
uint32_t ReadU32(const Bytes& in, size_t offset);
uint64_t ReadU64(const Bytes& in, size_t offset);

// Constant-time equality for secrets (length leak is acceptable: lengths are public).
bool ConstantTimeEqual(const Bytes& a, const Bytes& b);

}  // namespace deta

#endif  // DETA_COMMON_BYTES_H_
