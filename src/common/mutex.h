// Annotated mutex / scoped-lock / condition-variable wrappers. The ONLY sanctioned way
// to lock in this repo (deta_lint rule DL-D3): wrapping std::mutex behind an annotated
// capability is what lets clang's thread-safety analysis prove every access to a
// DETA_GUARDED_BY member happens under its mutex — across the bus, the pool, telemetry,
// and the persistence layer — at compile time.
//
// Zero-cost: each wrapper is a thin inline shell over the std primitive; no extra state,
// no virtual calls. CondVar pairs with deta::Mutex the way std::condition_variable pairs
// with std::unique_lock — use an explicit `while (!pred) cv.Wait(mu);` loop (predicates
// as lambdas defeat the static analysis, which checks lambda bodies out of context).
#ifndef DETA_COMMON_MUTEX_H_
#define DETA_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace deta {

class CondVar;

// Exclusive mutex carrying the clang `capability` attribute. Non-reentrant, like the
// std::mutex it wraps.
class DETA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DETA_ACQUIRE() { mutex_.lock(); }
  void Unlock() DETA_RELEASE() { mutex_.unlock(); }
  bool TryLock() DETA_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mutex_;
};

// RAII lock (std::lock_guard equivalent) that participates in the analysis.
class DETA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) DETA_ACQUIRE(mutex) : mutex_(mutex) { mutex_.Lock(); }
  ~MutexLock() DETA_RELEASE() { mutex_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

// Condition variable over deta::Mutex. Wait/WaitFor atomically release the mutex while
// blocked and reacquire before returning, exactly like std::condition_variable; the
// DETA_REQUIRES annotations make "you must hold the mutex to wait" a compile-time rule.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

  // Blocks until notified (or spuriously woken); always re-check the predicate.
  void Wait(Mutex& mutex) DETA_REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(mutex.mutex_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's scope still owns the mutex
  }

  // Returns false when |timeout| elapsed without a notification (the mutex is held
  // again either way).
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mutex, std::chrono::duration<Rep, Period> timeout)
      DETA_REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(mutex.mutex_, std::adopt_lock);
    std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace deta

#endif  // DETA_COMMON_MUTEX_H_
