#include "data/dataset.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace deta::data {

Tensor Dataset::Example(int i) const {
  DETA_CHECK_GE(i, 0);
  DETA_CHECK_LT(i, Size());
  int64_t row = images.numel() / Size();
  Tensor out({1, Channels(), Height(), Width()});
  std::copy(images.data() + i * row, images.data() + (i + 1) * row, out.data());
  return out;
}

Dataset Dataset::Subset(const std::vector<int>& indices) const {
  Dataset out;
  out.classes = classes;
  out.labels.reserve(indices.size());
  int64_t row = images.numel() / Size();
  out.images = Tensor({static_cast<int>(indices.size()), Channels(), Height(), Width()});
  for (size_t k = 0; k < indices.size(); ++k) {
    int i = indices[k];
    DETA_CHECK_GE(i, 0);
    DETA_CHECK_LT(i, Size());
    std::copy(images.data() + i * row, images.data() + (i + 1) * row,
              out.images.data() + static_cast<int64_t>(k) * row);
    out.labels.push_back(labels[static_cast<size_t>(i)]);
  }
  return out;
}

namespace {

// Renders the deterministic prototype image for one class into |proto| [C, S, S].
void RenderPrototype(ImageStyle style, int cls, int channels, int size, Rng& rng,
                     std::vector<float>& proto) {
  proto.assign(static_cast<size_t>(channels) * size * size, 0.0f);
  auto px = [&](int c, int y, int x) -> float& {
    return proto[(static_cast<size_t>(c) * size + static_cast<size_t>(y)) * size +
                 static_cast<size_t>(x)];
  };

  switch (style) {
    case ImageStyle::kBlobs: {
      // 3-5 Gaussian blobs at class-deterministic positions form a "glyph".
      int blobs = 3 + static_cast<int>(rng.NextBelow(3));
      for (int b = 0; b < blobs; ++b) {
        float cy = rng.NextUniform(0.2f, 0.8f) * size;
        float cx = rng.NextUniform(0.2f, 0.8f) * size;
        float sigma = rng.NextUniform(0.06f, 0.14f) * size;
        float amp = rng.NextUniform(0.6f, 1.0f);
        for (int y = 0; y < size; ++y) {
          for (int x = 0; x < size; ++x) {
            float d2 = (y - cy) * (y - cy) + (x - cx) * (x - cx);
            float v = amp * std::exp(-d2 / (2.0f * sigma * sigma));
            for (int c = 0; c < channels; ++c) {
              px(c, y, x) = std::min(1.0f, px(c, y, x) + v);
            }
          }
        }
      }
      break;
    }
    case ImageStyle::kTextured: {
      // Class-specific 2-D sinusoid mixture, distinct per channel (color texture).
      for (int c = 0; c < channels; ++c) {
        float fy1 = rng.NextUniform(0.5f, 3.0f), fx1 = rng.NextUniform(0.5f, 3.0f);
        float fy2 = rng.NextUniform(2.0f, 6.0f), fx2 = rng.NextUniform(2.0f, 6.0f);
        float phase1 = rng.NextUniform(0.0f, 6.28f), phase2 = rng.NextUniform(0.0f, 6.28f);
        float bias = rng.NextUniform(0.3f, 0.7f);
        for (int y = 0; y < size; ++y) {
          for (int x = 0; x < size; ++x) {
            float ny = static_cast<float>(y) / size * 6.28f;
            float nx = static_cast<float>(x) / size * 6.28f;
            float v = bias + 0.25f * std::sin(fy1 * ny + fx1 * nx + phase1) +
                      0.2f * std::sin(fy2 * ny - fx2 * nx + phase2);
            px(c, y, x) = std::min(1.0f, std::max(0.0f, v));
          }
        }
      }
      break;
    }
    case ImageStyle::kDocument: {
      // White page with class-deterministic "text block" layout: dark horizontal bands
      // (lines of text) in blocks, mimicking document genre structure in RVL-CDIP.
      for (auto& v : proto) {
        v = 0.95f;
      }
      int num_blocks = 2 + static_cast<int>(rng.NextBelow(3));
      for (int b = 0; b < num_blocks; ++b) {
        int top = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(size * 3 / 4)));
        int height = 3 + static_cast<int>(rng.NextBelow(static_cast<uint64_t>(size / 4)));
        int left = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(size / 3)));
        int width = size / 3 + static_cast<int>(rng.NextBelow(static_cast<uint64_t>(size / 2)));
        int line_pitch = 2 + static_cast<int>(rng.NextBelow(3));
        for (int y = top; y < std::min(size, top + height); ++y) {
          if ((y - top) % line_pitch != 0) {
            continue;
          }
          for (int x = left; x < std::min(size, left + width); ++x) {
            for (int c = 0; c < channels; ++c) {
              px(c, y, x) = 0.15f;
            }
          }
        }
      }
      break;
    }
  }
}

}  // namespace

Dataset GenerateSynthetic(const SyntheticConfig& config) {
  DETA_CHECK_GT(config.num_examples, 0);
  DETA_CHECK_GT(config.classes, 0);
  Rng master(config.seed);

  // Class prototypes are derived from per-class forks so they do not depend on
  // num_examples (stable across dataset sizes).
  std::vector<std::vector<float>> prototypes(static_cast<size_t>(config.classes));
  for (int cls = 0; cls < config.classes; ++cls) {
    Rng proto_rng(config.prototype_seed * 1000003ULL + static_cast<uint64_t>(cls) * 7919ULL +
                  17ULL);
    RenderPrototype(config.style, cls, config.channels, config.image_size, proto_rng,
                    prototypes[static_cast<size_t>(cls)]);
  }

  Dataset out;
  out.classes = config.classes;
  out.images =
      Tensor({config.num_examples, config.channels, config.image_size, config.image_size});
  out.labels.resize(static_cast<size_t>(config.num_examples));

  int size = config.image_size;
  int64_t row = static_cast<int64_t>(config.channels) * size * size;
  for (int i = 0; i < config.num_examples; ++i) {
    int cls = static_cast<int>(master.NextBelow(static_cast<uint64_t>(config.classes)));
    out.labels[static_cast<size_t>(i)] = cls;
    const auto& proto = prototypes[static_cast<size_t>(cls)];
    int dy = config.max_shift == 0
                 ? 0
                 : static_cast<int>(master.NextBelow(2 * config.max_shift + 1)) -
                       config.max_shift;
    int dx = config.max_shift == 0
                 ? 0
                 : static_cast<int>(master.NextBelow(2 * config.max_shift + 1)) -
                       config.max_shift;
    float* dst = out.images.data() + static_cast<int64_t>(i) * row;
    for (int c = 0; c < config.channels; ++c) {
      for (int y = 0; y < size; ++y) {
        for (int x = 0; x < size; ++x) {
          int sy = std::clamp(y + dy, 0, size - 1);
          int sx = std::clamp(x + dx, 0, size - 1);
          float v = proto[(static_cast<size_t>(c) * size + static_cast<size_t>(sy)) * size +
                          static_cast<size_t>(sx)];
          v += config.noise_stddev * master.NextGaussian();
          dst[(static_cast<int64_t>(c) * size + y) * size + x] =
              std::min(1.0f, std::max(0.0f, v));
        }
      }
    }
  }
  return out;
}

Dataset SynthMnist(int num_examples, uint64_t seed) {
  SyntheticConfig c;
  c.num_examples = num_examples;
  c.classes = 10;
  c.channels = 1;
  c.image_size = 28;
  c.style = ImageStyle::kBlobs;
  c.seed = seed;
  c.prototype_seed = 101;
  return GenerateSynthetic(c);
}

Dataset SynthCifar10(int num_examples, uint64_t seed) {
  SyntheticConfig c;
  c.num_examples = num_examples;
  c.classes = 10;
  c.channels = 3;
  c.image_size = 32;
  c.style = ImageStyle::kTextured;
  c.seed = seed;
  c.prototype_seed = 202;
  return GenerateSynthetic(c);
}

Dataset SynthCifar100(int num_examples, uint64_t seed) {
  SyntheticConfig c;
  c.num_examples = num_examples;
  c.classes = 100;
  c.channels = 3;
  c.image_size = 32;
  c.style = ImageStyle::kTextured;
  c.seed = seed;
  c.prototype_seed = 303;
  return GenerateSynthetic(c);
}

Dataset SynthImageNet(int num_examples, uint64_t seed) {
  SyntheticConfig c;
  c.num_examples = num_examples;
  c.classes = 50;
  c.channels = 3;
  c.image_size = 64;
  c.style = ImageStyle::kTextured;
  c.noise_stddev = 0.06f;
  c.seed = seed;
  c.prototype_seed = 404;
  return GenerateSynthetic(c);
}

Dataset SynthRvlCdip(int num_examples, uint64_t seed) {
  SyntheticConfig c;
  c.num_examples = num_examples;
  c.classes = 16;
  c.channels = 1;
  c.image_size = 64;
  c.style = ImageStyle::kDocument;
  c.noise_stddev = 0.05f;
  c.seed = seed;
  c.prototype_seed = 505;
  return GenerateSynthetic(c);
}

std::vector<Dataset> SplitIid(const Dataset& dataset, int parties, Rng& rng) {
  DETA_CHECK_GT(parties, 0);
  std::vector<int> order(static_cast<size_t>(dataset.Size()));
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<int>(i);
  }
  rng.Shuffle(order);

  std::vector<Dataset> out;
  out.reserve(static_cast<size_t>(parties));
  int per_party = dataset.Size() / parties;
  for (int p = 0; p < parties; ++p) {
    std::vector<int> indices(order.begin() + static_cast<long>(p) * per_party,
                             order.begin() + static_cast<long>(p + 1) * per_party);
    out.push_back(dataset.Subset(indices));
  }
  return out;
}

std::vector<Dataset> SplitNonIidSkew(const Dataset& dataset, int parties,
                                     int dominant_classes, float dominant_fraction,
                                     Rng& rng) {
  DETA_CHECK_GT(parties, 0);
  DETA_CHECK_GT(dominant_classes, 0);
  DETA_CHECK_LE(dominant_classes, dataset.classes);
  DETA_CHECK_GT(dominant_fraction, 0.0f);
  DETA_CHECK_LE(dominant_fraction, 1.0f);

  // Bucket example indices by class, shuffled.
  std::vector<std::vector<int>> by_class(static_cast<size_t>(dataset.classes));
  for (int i = 0; i < dataset.Size(); ++i) {
    by_class[static_cast<size_t>(dataset.labels[static_cast<size_t>(i)])].push_back(i);
  }
  for (auto& bucket : by_class) {
    rng.Shuffle(bucket);
  }
  std::vector<size_t> cursor(static_cast<size_t>(dataset.classes), 0);
  auto take = [&](int cls) -> int {
    auto& bucket = by_class[static_cast<size_t>(cls)];
    size_t& cur = cursor[static_cast<size_t>(cls)];
    if (cur >= bucket.size()) {
      return -1;
    }
    return bucket[cur++];
  };

  int per_party = dataset.Size() / parties;
  int dominant_per_party = static_cast<int>(per_party * dominant_fraction);

  std::vector<Dataset> out;
  out.reserve(static_cast<size_t>(parties));
  for (int p = 0; p < parties; ++p) {
    std::vector<int> indices;
    indices.reserve(static_cast<size_t>(per_party));
    // Rotate dominant-class assignment across parties.
    std::vector<int> dominant;
    for (int k = 0; k < dominant_classes; ++k) {
      dominant.push_back((p * dominant_classes + k) % dataset.classes);
    }
    for (int k = 0; k < dominant_per_party; ++k) {
      int idx = take(dominant[static_cast<size_t>(k % dominant.size())]);
      if (idx >= 0) {
        indices.push_back(idx);
      }
    }
    // Fill the remainder from the other classes round-robin.
    int cls = 0;
    int needed = per_party - static_cast<int>(indices.size());
    int attempts = 0;
    while (needed > 0 && attempts < dataset.classes * per_party) {
      bool is_dominant =
          std::find(dominant.begin(), dominant.end(), cls) != dominant.end();
      if (!is_dominant) {
        int idx = take(cls);
        if (idx >= 0) {
          indices.push_back(idx);
          --needed;
        }
      }
      cls = (cls + 1) % dataset.classes;
      ++attempts;
    }
    rng.Shuffle(indices);
    out.push_back(dataset.Subset(indices));
  }
  return out;
}

Batcher::Batcher(const Dataset& dataset, int batch_size, uint64_t seed)
    : dataset_(dataset), batch_size_(batch_size), rng_(seed) {
  DETA_CHECK_GT(batch_size, 0);
  order_.resize(static_cast<size_t>(dataset.Size()));
  for (size_t i = 0; i < order_.size(); ++i) {
    order_[i] = static_cast<int>(i);
  }
  rng_.Shuffle(order_);
}

int Batcher::BatchesPerEpoch() const {
  return (dataset_.Size() + batch_size_ - 1) / batch_size_;
}

Batcher::Batch Batcher::Next() {
  if (cursor_ >= order_.size()) {
    cursor_ = 0;
    rng_.Shuffle(order_);
  }
  size_t count = std::min(static_cast<size_t>(batch_size_), order_.size() - cursor_);
  std::vector<int> indices(order_.begin() + static_cast<long>(cursor_),
                           order_.begin() + static_cast<long>(cursor_ + count));
  cursor_ += count;
  Dataset subset = dataset_.Subset(indices);
  return Batch{std::move(subset.images), std::move(subset.labels)};
}

Bytes Batcher::SerializeState() const {
  Bytes out;
  Bytes rng_state = rng_.SerializeState();
  AppendU32(out, static_cast<uint32_t>(rng_state.size()));
  out.insert(out.end(), rng_state.begin(), rng_state.end());
  AppendU64(out, static_cast<uint64_t>(order_.size()));
  for (int index : order_) {
    AppendU32(out, static_cast<uint32_t>(index));
  }
  AppendU64(out, static_cast<uint64_t>(cursor_));
  return out;
}

bool Batcher::RestoreState(const Bytes& data) {
  size_t offset = 0;
  if (data.size() < sizeof(uint32_t)) {
    return false;
  }
  uint32_t rng_size = ReadU32(data, offset);
  offset += sizeof(uint32_t);
  if (data.size() < offset + rng_size) {
    return false;
  }
  Bytes rng_state(data.begin() + static_cast<long>(offset),
                  data.begin() + static_cast<long>(offset + rng_size));
  offset += rng_size;
  if (data.size() < offset + sizeof(uint64_t)) {
    return false;
  }
  uint64_t order_size = ReadU64(data, offset);
  offset += sizeof(uint64_t);
  if (order_size != static_cast<uint64_t>(dataset_.Size()) ||
      data.size() != offset + order_size * sizeof(uint32_t) + sizeof(uint64_t)) {
    return false;
  }
  std::vector<int> order(static_cast<size_t>(order_size));
  for (auto& index : order) {
    uint32_t v = ReadU32(data, offset);
    offset += sizeof(uint32_t);
    if (v >= order_size) {
      return false;
    }
    index = static_cast<int>(v);
  }
  uint64_t cursor = ReadU64(data, offset);
  if (cursor > order_size) {
    return false;
  }
  Rng restored(0);
  if (!restored.RestoreState(rng_state)) {
    return false;
  }
  rng_ = restored;
  order_ = std::move(order);
  cursor_ = static_cast<size_t>(cursor);
  return true;
}

}  // namespace deta::data
