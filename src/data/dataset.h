// Seeded synthetic datasets standing in for MNIST / CIFAR-10 / CIFAR-100 / ImageNet /
// RVL-CDIP (none of which are available offline — see the substitution table in
// DESIGN.md). Each class gets a deterministic structured prototype (blobs, textures, or
// document-like line patterns); samples are prototypes plus jitter and noise. The
// resulting problems are non-trivially learnable and class-structured, which is what the
// paper's convergence and attack experiments actually exercise.
#ifndef DETA_DATA_DATASET_H_
#define DETA_DATA_DATASET_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace deta::data {

struct Dataset {
  Tensor images;            // [N, C, H, W], values in [0, 1]
  std::vector<int> labels;  // size N
  int classes = 0;

  int Size() const { return images.numel() == 0 ? 0 : images.dim(0); }
  int Channels() const { return images.dim(1); }
  int Height() const { return images.dim(2); }
  int Width() const { return images.dim(3); }

  // Copies example i as a [1, C, H, W] tensor.
  Tensor Example(int i) const;
  // Copies a subset by index.
  Dataset Subset(const std::vector<int>& indices) const;
};

enum class ImageStyle {
  kBlobs,     // MNIST-like: grayscale Gaussian-blob glyphs
  kTextured,  // CIFAR-like: colored multi-frequency textures
  kDocument,  // RVL-CDIP-like: line/paragraph layout patterns
};

struct SyntheticConfig {
  int num_examples = 1000;
  int classes = 10;
  int channels = 1;
  int image_size = 28;
  ImageStyle style = ImageStyle::kBlobs;
  float noise_stddev = 0.08f;
  int max_shift = 2;  // per-sample random translation of the prototype
  // Sampling seed: which examples get drawn (train/test splits differ here).
  uint64_t seed = 1234;
  // Concept seed: defines the class prototypes. Train and test sets of the same problem
  // must share it, or they describe different classification tasks.
  uint64_t prototype_seed = 42;
};

// Deterministic: same config -> bit-identical dataset.
Dataset GenerateSynthetic(const SyntheticConfig& config);

// Paper-shaped presets.
Dataset SynthMnist(int num_examples, uint64_t seed);      // 28x28x1, 10 classes
Dataset SynthCifar10(int num_examples, uint64_t seed);    // 32x32x3, 10 classes
Dataset SynthCifar100(int num_examples, uint64_t seed);   // 32x32x3, 100 classes
Dataset SynthImageNet(int num_examples, uint64_t seed);   // 64x64x3, 50 classes
Dataset SynthRvlCdip(int num_examples, uint64_t seed);    // 64x64x1, 16 classes

// --- partitioners (paper §7.1-7.3) ---

// Random equal split across |parties|.
std::vector<Dataset> SplitIid(const Dataset& dataset, int parties, Rng& rng);
// Non-IID 90-10 skew (paper §7.3): each party's |dominant_classes| hold
// |dominant_fraction| of its examples; the rest are spread over the other classes.
std::vector<Dataset> SplitNonIidSkew(const Dataset& dataset, int parties,
                                     int dominant_classes, float dominant_fraction,
                                     Rng& rng);

// Mini-batch iterator; reshuffles every epoch.
class Batcher {
 public:
  Batcher(const Dataset& dataset, int batch_size, uint64_t seed);

  struct Batch {
    Tensor images;            // [B, C, H, W]
    std::vector<int> labels;  // size B
  };

  // Next batch, wrapping and reshuffling at epoch boundaries.
  Batch Next();
  int BatchesPerEpoch() const;

  // Exact iteration state (shuffle RNG, current epoch order, cursor) for
  // checkpoint/resume: a restored Batcher emits the identical batch sequence the
  // original would have. Contains no dataset contents, only indices.
  Bytes SerializeState() const;
  // False (state unchanged) on a malformed blob or an index out of range for the
  // dataset this Batcher wraps.
  bool RestoreState(const Bytes& data);

 private:
  const Dataset& dataset_;
  int batch_size_;
  Rng rng_;
  std::vector<int> order_;
  size_t cursor_ = 0;
};

}  // namespace deta::data

#endif  // DETA_DATA_DATASET_H_
