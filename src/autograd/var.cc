#include "autograd/var.h"

#include <map>
#include <set>

#include "autograd/ops.h"
#include "common/check.h"

namespace deta::autograd {

Var::Var(Tensor value, bool requires_grad) {
  node_ = std::make_shared<Node>();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

const Tensor& Var::value() const {
  DETA_CHECK_MSG(defined(), "reading value of an undefined Var");
  return node_->value;
}

Tensor& Var::mutable_value() {
  DETA_CHECK_MSG(defined(), "mutating an undefined Var");
  DETA_CHECK_MSG(node_->parents.empty(), "in-place mutation is only allowed on leaves");
  return node_->value;
}

bool Var::requires_grad() const { return defined() && node_->requires_grad; }

Var Var::Detach() const { return Var(value(), /*requires_grad=*/false); }

Var Var::FromNode(std::shared_ptr<Node> node) {
  Var v;
  v.node_ = std::move(node);
  return v;
}

Var MakeOp(Tensor value, std::vector<Var> parents, BackwardFn backward, const char* name) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->op_name = name;
  node->requires_grad = false;
  for (const Var& p : parents) {
    if (p.requires_grad()) {
      node->requires_grad = true;
      break;
    }
  }
  if (node->requires_grad) {
    node->parents = std::move(parents);
    node->backward = std::move(backward);
  }
  return Var::FromNode(std::move(node));
}

namespace {

// Depth-first topological order over the requires_grad subgraph rooted at |root|.
void TopoSort(const std::shared_ptr<Node>& root, std::vector<Node*>& order) {
  // Ordered container by policy (lint DL-D2): never iterated, but keeping unordered_*
  // out of src/ entirely means no reviewer has to prove an iteration can't reach
  // output. The graph walk is lookup/insert-only, so the O(log n) cost is noise.
  std::set<Node*> visited;
  // Iterative DFS; graphs from unrolled attacks can be deep.
  struct Frame {
    Node* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  if (root->requires_grad) {
    stack.push_back({root.get(), 0});
    visited.insert(root.get());
  }
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_parent < top.node->parents.size()) {
      Node* parent = top.node->parents[top.next_parent].node().get();
      ++top.next_parent;
      if (parent != nullptr && parent->requires_grad && !visited.count(parent)) {
        visited.insert(parent);
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(top.node);
      stack.pop_back();
    }
  }
}

}  // namespace

std::vector<Var> Grad(const Var& output, const std::vector<Var>& inputs, bool create_graph,
                      const Var& grad_output) {
  DETA_CHECK_MSG(output.defined(), "Grad on undefined output");

  Var seed = grad_output;
  if (!seed.defined()) {
    DETA_CHECK_MSG(output.numel() == 1, "Grad without grad_output requires a scalar output");
    seed = Var(Tensor::Ones(output.shape()));
  }
  DETA_CHECK_MSG(seed.value().SameShape(output.value()), "grad_output shape mismatch");

  std::vector<Node*> order;
  TopoSort(output.node(), order);

  std::map<Node*, Var> grads;  // lookup-only; ordered for the same DL-D2 policy
  grads[output.node().get()] = seed;

  // Reverse topological order: every node is processed after all of its consumers.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    auto found = grads.find(node);
    if (found == grads.end() || !node->backward) {
      continue;
    }
    std::vector<Var> parent_grads = node->backward(found->second);
    DETA_CHECK_EQ(parent_grads.size(), node->parents.size());
    for (size_t i = 0; i < node->parents.size(); ++i) {
      const Var& parent = node->parents[i];
      if (!parent.requires_grad() || !parent_grads[i].defined()) {
        continue;
      }
      DETA_CHECK_MSG(parent_grads[i].value().SameShape(parent.value()),
                     "backward of " << node->op_name << " produced grad shape "
                                    << parent_grads[i].value().ShapeString() << " for parent "
                                    << parent.value().ShapeString());
      Node* pnode = parent.node().get();
      auto existing = grads.find(pnode);
      if (existing == grads.end()) {
        grads[pnode] = parent_grads[i];
      } else {
        existing->second = Add(existing->second, parent_grads[i]);
      }
    }
  }

  std::vector<Var> result;
  result.reserve(inputs.size());
  for (const Var& input : inputs) {
    auto found = grads.find(input.node().get());
    Var g;
    if (found != grads.end()) {
      g = found->second;
    } else {
      g = Var(Tensor::Zeros(input.shape()));
    }
    if (!create_graph) {
      g = g.Detach();
    }
    result.push_back(g);
  }
  return result;
}

}  // namespace deta::autograd
