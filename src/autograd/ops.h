// Differentiable operations. Every backward is written in terms of these same ops, so all
// ops support arbitrary-order differentiation (ReLU/Abs/MaxPool use the standard
// almost-everywhere subgradients: their selection masks are treated as constants).
#ifndef DETA_AUTOGRAD_OPS_H_
#define DETA_AUTOGRAD_OPS_H_

#include "autograd/var.h"
#include "tensor/tensor.h"

namespace deta::autograd {

// --- elementwise arithmetic ---
Var Add(const Var& a, const Var& b);
Var Sub(const Var& a, const Var& b);
Var Mul(const Var& a, const Var& b);
Var Neg(const Var& a);
Var AddScalar(const Var& a, float s);
Var MulScalar(const Var& a, float s);
// Elementwise reciprocal 1/x.
Var Recip(const Var& a);
// a * s where s is a scalar Var of shape {1} (gradient flows into both).
Var ScaleByScalar(const Var& a, const Var& s);

// --- nonlinearities ---
Var Sigmoid(const Var& a);
Var Tanh(const Var& a);
Var Relu(const Var& a);
Var Exp(const Var& a);
Var Log(const Var& a);
Var Sqrt(const Var& a);
Var Abs(const Var& a);

// --- shape ---
Var Reshape(const Var& a, Tensor::Shape shape);
Var Flatten(const Var& a);
Var Transpose(const Var& a);
// Concatenates flattened inputs into one 1-D Var (used to view a whole model update as
// the flat vector M the paper aggregates coordinate-wise).
Var ConcatFlat(const std::vector<Var>& parts);
// 1-D slice [start, start+len).
Var Slice1D(const Var& a, int64_t start, int64_t len);
// Embeds a 1-D Var into a zero vector of |total| elements at |start| (adjoint of Slice1D).
Var PadSlice1D(const Var& a, int64_t start, int64_t total);
// Gather a.flat[indices[i]] -> out[i]; out 1-D. Adjoint is scatter-add.
Var Gather1D(const Var& a, std::vector<int64_t> indices);
// Scatter-add a[i] into zeros(|size|) at indices[i] (adjoint of Gather1D).
Var Scatter1D(const Var& a, std::vector<int64_t> indices, int64_t size);

// --- reductions / broadcasts (2-D conventions as in tensor.h) ---
Var SumAll(const Var& a);                     // -> {1}
Var MeanAll(const Var& a);                    // -> {1}
Var SumRows(const Var& a);                    // [m,n] -> [n]
Var RowSum(const Var& a);                     // [m,n] -> [m]
Var AddRowVec(const Var& a, const Var& v);    // [m,n] + [n]
Var SubColVec(const Var& a, const Var& v);    // [m,n] - [m]
Var BroadcastCol(const Var& v, int cols);     // [m] -> [m,cols]
Var BroadcastScalar(const Var& s, Tensor::Shape shape);  // {1} -> shape

// --- linear algebra ---
Var MatMul(const Var& a, const Var& b);

// --- convolution / pooling building blocks ---
Var Im2Col(const Var& input, const ConvGeometry& geom);
Var Col2Im(const Var& columns, const ConvGeometry& geom);
Var MaxPool(const Var& input, int kernel, int stride);
Var AvgPool(const Var& input, int kernel, int stride);
// Adjoint of AvgPool (spreads each cell over its window, scaled 1/k^2).
Var AvgUnpool(const Var& a, int kernel, int stride, const Tensor::Shape& input_shape);

// --- composite losses ---
// Mean softmax cross-entropy between logits [m,c] and one-hot targets [m,c]. The row-max
// shift uses a detached constant (exact gradient, standard log-sum-exp stabilization).
Var SoftmaxCrossEntropy(const Var& logits, const Var& one_hot_targets);
// Mean squared error (mean over all elements).
Var MseLoss(const Var& a, const Var& b);
// Anisotropic total variation of an image batch [n,c,h,w] (IG's image prior).
Var TotalVariation(const Var& images);
// Cosine distance 1 - <a,b>/(|a||b|) of two flat Vars; the IG attack objective.
Var CosineDistanceLoss(const Var& a, const Var& b);
// Sum of squared differences (DLG/iDLG gradient-matching objective term).
Var SquaredDifferenceSum(const Var& a, const Var& b);

}  // namespace deta::autograd

#endif  // DETA_AUTOGRAD_OPS_H_
