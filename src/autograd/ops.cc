#include "autograd/ops.h"

#include <cmath>

#include "common/check.h"

namespace deta::autograd {

namespace dt = ::deta;

Var Add(const Var& a, const Var& b) {
  return MakeOp(
      dt::Add(a.value(), b.value()), {a, b},
      [](const Var& g) { return std::vector<Var>{g, g}; }, "add");
}

Var Sub(const Var& a, const Var& b) {
  return MakeOp(
      dt::Sub(a.value(), b.value()), {a, b},
      [](const Var& g) { return std::vector<Var>{g, Neg(g)}; }, "sub");
}

Var Mul(const Var& a, const Var& b) {
  return MakeOp(
      dt::Mul(a.value(), b.value()), {a, b},
      [a, b](const Var& g) { return std::vector<Var>{Mul(g, b), Mul(g, a)}; }, "mul");
}

Var Neg(const Var& a) {
  return MakeOp(
      dt::Neg(a.value()), {a}, [](const Var& g) { return std::vector<Var>{Neg(g)}; }, "neg");
}

Var AddScalar(const Var& a, float s) {
  return MakeOp(
      dt::AddScalar(a.value(), s), {a},
      [](const Var& g) { return std::vector<Var>{g}; }, "add_scalar");
}

Var MulScalar(const Var& a, float s) {
  return MakeOp(
      dt::MulScalar(a.value(), s), {a},
      [s](const Var& g) { return std::vector<Var>{MulScalar(g, s)}; }, "mul_scalar");
}

Var Recip(const Var& a) {
  Tensor out(a.shape());
  for (int64_t i = 0; i < a.numel(); ++i) {
    out[i] = 1.0f / a.value()[i];
  }
  return MakeOp(
      std::move(out), {a},
      [a](const Var& g) {
        // d(1/x) = -1/x^2
        Var r = Recip(a);
        return std::vector<Var>{Neg(Mul(g, Mul(r, r)))};
      },
      "recip");
}

Var ScaleByScalar(const Var& a, const Var& s) {
  DETA_CHECK_EQ(s.numel(), 1);
  float sv = s.value()[0];
  return MakeOp(
      dt::MulScalar(a.value(), sv), {a, s},
      [a, s](const Var& g) {
        return std::vector<Var>{ScaleByScalar(g, s), SumAll(Mul(g, a))};
      },
      "scale_by_scalar");
}

Var Sigmoid(const Var& a) {
  return MakeOp(
      dt::Sigmoid(a.value()), {a},
      [a](const Var& g) {
        Var s = Sigmoid(a);  // recomputed to avoid a self-referential closure
        return std::vector<Var>{Mul(g, Mul(s, AddScalar(Neg(s), 1.0f)))};
      },
      "sigmoid");
}

Var Tanh(const Var& a) {
  return MakeOp(
      dt::TanhT(a.value()), {a},
      [a](const Var& g) {
        Var t = Tanh(a);
        return std::vector<Var>{Mul(g, AddScalar(Neg(Mul(t, t)), 1.0f))};
      },
      "tanh");
}

Var Relu(const Var& a) {
  // The 0/1 mask is a constant of the linearization (correct a.e. subgradient).
  Tensor mask(a.shape());
  for (int64_t i = 0; i < a.numel(); ++i) {
    mask[i] = a.value()[i] > 0.0f ? 1.0f : 0.0f;
  }
  Var mask_var(std::move(mask));
  return MakeOp(
      dt::Relu(a.value()), {a},
      [mask_var](const Var& g) { return std::vector<Var>{Mul(g, mask_var)}; }, "relu");
}

Var Exp(const Var& a) {
  return MakeOp(
      dt::Exp(a.value()), {a},
      [a](const Var& g) { return std::vector<Var>{Mul(g, Exp(a))}; }, "exp");
}

Var Log(const Var& a) {
  return MakeOp(
      dt::Log(a.value()), {a},
      [a](const Var& g) { return std::vector<Var>{Mul(g, Recip(a))}; }, "log");
}

Var Sqrt(const Var& a) {
  return MakeOp(
      dt::SqrtT(a.value()), {a},
      [a](const Var& g) {
        return std::vector<Var>{Mul(g, MulScalar(Recip(Sqrt(a)), 0.5f))};
      },
      "sqrt");
}

Var Abs(const Var& a) {
  Var sign_var(dt::Sign(a.value()));
  return MakeOp(
      dt::Abs(a.value()), {a},
      [sign_var](const Var& g) { return std::vector<Var>{Mul(g, sign_var)}; }, "abs");
}

Var Reshape(const Var& a, Tensor::Shape shape) {
  Tensor::Shape original = a.shape();
  return MakeOp(
      a.value().Reshape(std::move(shape)), {a},
      [original](const Var& g) { return std::vector<Var>{Reshape(g, original)}; }, "reshape");
}

Var Flatten(const Var& a) { return Reshape(a, {static_cast<int>(a.numel())}); }

Var Transpose(const Var& a) {
  return MakeOp(
      dt::Transpose(a.value()), {a},
      [](const Var& g) { return std::vector<Var>{Transpose(g)}; }, "transpose");
}

Var ConcatFlat(const std::vector<Var>& parts) {
  DETA_CHECK(!parts.empty());
  int64_t total = 0;
  for (const Var& p : parts) {
    total += p.numel();
  }
  Tensor out({static_cast<int>(total)});
  int64_t offset = 0;
  std::vector<int64_t> offsets;
  std::vector<Tensor::Shape> shapes;
  for (const Var& p : parts) {
    offsets.push_back(offset);
    shapes.push_back(p.shape());
    for (int64_t i = 0; i < p.numel(); ++i) {
      out[offset + i] = p.value()[i];
    }
    offset += p.numel();
  }
  return MakeOp(
      std::move(out), parts,
      [offsets, shapes](const Var& g) {
        std::vector<Var> grads;
        grads.reserve(offsets.size());
        for (size_t i = 0; i < offsets.size(); ++i) {
          int64_t len = 1;
          for (int d : shapes[i]) {
            len *= d;
          }
          grads.push_back(Reshape(Slice1D(g, offsets[i], len), shapes[i]));
        }
        return grads;
      },
      "concat_flat");
}

Var Slice1D(const Var& a, int64_t start, int64_t len) {
  DETA_CHECK_EQ(a.value().rank(), 1u);
  DETA_CHECK_LE(start + len, a.numel());
  Tensor out({static_cast<int>(len)});
  for (int64_t i = 0; i < len; ++i) {
    out[i] = a.value()[start + i];
  }
  int64_t total = a.numel();
  return MakeOp(
      std::move(out), {a},
      [start, total](const Var& g) {
        return std::vector<Var>{PadSlice1D(g, start, total)};
      },
      "slice1d");
}

Var PadSlice1D(const Var& a, int64_t start, int64_t total) {
  DETA_CHECK_EQ(a.value().rank(), 1u);
  int64_t len = a.numel();
  DETA_CHECK_LE(start + len, total);
  Tensor out({static_cast<int>(total)});
  for (int64_t i = 0; i < len; ++i) {
    out[start + i] = a.value()[i];
  }
  return MakeOp(
      std::move(out), {a},
      [start, len](const Var& g) { return std::vector<Var>{Slice1D(g, start, len)}; },
      "pad_slice1d");
}

Var Gather1D(const Var& a, std::vector<int64_t> indices) {
  Tensor::Shape out_shape{static_cast<int>(indices.size())};
  Tensor out = dt::GatherByIndex(a.value(), indices, out_shape);
  int64_t size = a.numel();
  Tensor::Shape in_shape = a.shape();
  return MakeOp(
      std::move(out), {a},
      [indices = std::move(indices), size, in_shape](const Var& g) {
        return std::vector<Var>{Reshape(Scatter1D(g, indices, size), in_shape)};
      },
      "gather1d");
}

Var Scatter1D(const Var& a, std::vector<int64_t> indices, int64_t size) {
  Tensor::Shape out_shape{static_cast<int>(size)};
  Tensor out = dt::ScatterByIndex(a.value(), indices, out_shape);
  Tensor::Shape in_shape = a.shape();
  return MakeOp(
      std::move(out), {a},
      [indices = std::move(indices), in_shape](const Var& g) {
        return std::vector<Var>{Reshape(Gather1D(Flatten(g), indices), in_shape)};
      },
      "scatter1d");
}

Var SumAll(const Var& a) {
  Tensor::Shape shape = a.shape();
  return MakeOp(
      dt::SumAll(a.value()), {a},
      [shape](const Var& g) { return std::vector<Var>{BroadcastScalar(g, shape)}; },
      "sum_all");
}

Var MeanAll(const Var& a) {
  return MulScalar(SumAll(a), 1.0f / static_cast<float>(a.numel()));
}

Var SumRows(const Var& a) {
  int m = a.value().dim(0);
  return MakeOp(
      dt::SumRows(a.value()), {a},
      [m](const Var& g) {
        // grad broadcasts back over rows: [n] -> [m,n]
        return std::vector<Var>{Transpose(BroadcastCol(g, m))};
      },
      "sum_rows");
}

Var RowSum(const Var& a) {
  int n = a.value().dim(1);
  return MakeOp(
      dt::RowSum(a.value()), {a},
      [n](const Var& g) { return std::vector<Var>{BroadcastCol(g, n)}; }, "row_sum");
}

Var AddRowVec(const Var& a, const Var& v) {
  return MakeOp(
      dt::AddRowVec(a.value(), v.value()), {a, v},
      [](const Var& g) { return std::vector<Var>{g, SumRows(g)}; }, "add_row_vec");
}

Var SubColVec(const Var& a, const Var& v) {
  return MakeOp(
      dt::SubColVec(a.value(), v.value()), {a, v},
      [](const Var& g) { return std::vector<Var>{g, Neg(RowSum(g))}; }, "sub_col_vec");
}

Var BroadcastCol(const Var& v, int cols) {
  return MakeOp(
      dt::BroadcastColToShape(v.value(), cols), {v},
      [](const Var& g) { return std::vector<Var>{RowSum(g)}; }, "broadcast_col");
}

Var BroadcastScalar(const Var& s, Tensor::Shape shape) {
  DETA_CHECK_EQ(s.numel(), 1);
  Tensor out = Tensor::Full(shape, s.value()[0]);
  return MakeOp(
      std::move(out), {s},
      [](const Var& g) { return std::vector<Var>{SumAll(g)}; }, "broadcast_scalar");
}

Var MatMul(const Var& a, const Var& b) {
  return MakeOp(
      dt::MatMul(a.value(), b.value()), {a, b},
      [a, b](const Var& g) {
        return std::vector<Var>{MatMul(g, Transpose(b)), MatMul(Transpose(a), g)};
      },
      "matmul");
}

Var Im2Col(const Var& input, const ConvGeometry& geom) {
  return MakeOp(
      dt::Im2Col(input.value(), geom), {input},
      [geom](const Var& g) { return std::vector<Var>{Col2Im(g, geom)}; }, "im2col");
}

Var Col2Im(const Var& columns, const ConvGeometry& geom) {
  return MakeOp(
      dt::Col2Im(columns.value(), geom), {columns},
      [geom](const Var& g) { return std::vector<Var>{Im2Col(g, geom)}; }, "col2im");
}

Var MaxPool(const Var& input, int kernel, int stride) {
  PoolResult pooled = dt::MaxPool2d(input.value(), kernel, stride);
  Tensor::Shape in_shape = input.shape();
  int64_t in_numel = input.numel();
  auto indices = std::make_shared<std::vector<int64_t>>(std::move(pooled.argmax));
  return MakeOp(
      std::move(pooled.output), {input},
      [indices, in_shape, in_numel](const Var& g) {
        return std::vector<Var>{
            Reshape(Scatter1D(Flatten(g), *indices, in_numel), in_shape)};
      },
      "max_pool");
}

Var AvgPool(const Var& input, int kernel, int stride) {
  Tensor::Shape in_shape = input.shape();
  return MakeOp(
      dt::AvgPool2d(input.value(), kernel, stride), {input},
      [kernel, stride, in_shape](const Var& g) {
        return std::vector<Var>{AvgUnpool(g, kernel, stride, in_shape)};
      },
      "avg_pool");
}

Var AvgUnpool(const Var& a, int kernel, int stride, const Tensor::Shape& input_shape) {
  // Linear adjoint of AvgPool: each pooled cell's value is spread uniformly over its
  // window with weight 1/k^2.
  DETA_CHECK_EQ(input_shape.size(), 4u);
  int n = input_shape[0], c = input_shape[1], h = input_shape[2], w = input_shape[3];
  int oh = (h - kernel) / stride + 1;
  int ow = (w - kernel) / stride + 1;
  DETA_CHECK_EQ(a.value().dim(2), oh);
  DETA_CHECK_EQ(a.value().dim(3), ow);
  Tensor out(input_shape);
  const float* in = a.value().data();
  float* o = out.data();
  float inv = 1.0f / static_cast<float>(kernel * kernel);
  int64_t ii = 0;
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      float* plane = o + (static_cast<int64_t>(b) * c + ch) * h * w;
      for (int y = 0; y < oh; ++y) {
        for (int x = 0; x < ow; ++x, ++ii) {
          float v = in[ii] * inv;
          for (int ky = 0; ky < kernel; ++ky) {
            for (int kx = 0; kx < kernel; ++kx) {
              plane[static_cast<int64_t>(y * stride + ky) * w + (x * stride + kx)] += v;
            }
          }
        }
      }
    }
  }
  return MakeOp(
      std::move(out), {a},
      [kernel, stride](const Var& g) {
        return std::vector<Var>{AvgPool(g, kernel, stride)};
      },
      "avg_unpool");
}

Var SoftmaxCrossEntropy(const Var& logits, const Var& one_hot_targets) {
  DETA_CHECK_EQ(logits.value().rank(), 2u);
  DETA_CHECK(logits.value().SameShape(one_hot_targets.value()));
  int m = logits.value().dim(0);
  // Row-max shift as a detached constant: softmax is shift-invariant, so the gradient is
  // exact even though the max is not differentiated through.
  Var row_max(dt::RowMax(logits.value()));
  Var shifted = SubColVec(logits, row_max);
  Var lse = Log(RowSum(Exp(shifted)));  // [m]
  Var log_probs = SubColVec(shifted, lse);
  return MulScalar(SumAll(Mul(one_hot_targets, log_probs)), -1.0f / static_cast<float>(m));
}

Var MseLoss(const Var& a, const Var& b) {
  Var d = Sub(a, b);
  return MulScalar(SumAll(Mul(d, d)), 1.0f / static_cast<float>(a.numel()));
}

Var TotalVariation(const Var& images) {
  DETA_CHECK_EQ(images.value().rank(), 4u);
  int n = images.value().dim(0), c = images.value().dim(1);
  int h = images.value().dim(2), w = images.value().dim(3);
  Var flat = Flatten(images);

  // Horizontal neighbours: (y, x) vs (y, x+1).
  std::vector<int64_t> left, right;
  // Vertical neighbours: (y, x) vs (y+1, x).
  std::vector<int64_t> top, bottom;
  for (int b = 0; b < n; ++b) {
    for (int ch = 0; ch < c; ++ch) {
      int64_t base = (static_cast<int64_t>(b) * c + ch) * h * w;
      for (int y = 0; y < h; ++y) {
        for (int x = 0; x + 1 < w; ++x) {
          left.push_back(base + static_cast<int64_t>(y) * w + x);
          right.push_back(base + static_cast<int64_t>(y) * w + x + 1);
        }
      }
      for (int y = 0; y + 1 < h; ++y) {
        for (int x = 0; x < w; ++x) {
          top.push_back(base + static_cast<int64_t>(y) * w + x);
          bottom.push_back(base + static_cast<int64_t>(y + 1) * w + x);
        }
      }
    }
  }
  Var dh = Sub(Gather1D(flat, right), Gather1D(flat, left));
  Var dv = Sub(Gather1D(flat, bottom), Gather1D(flat, top));
  return Add(SumAll(Abs(dh)), SumAll(Abs(dv)));
}

Var CosineDistanceLoss(const Var& a, const Var& b) {
  Var dot = SumAll(Mul(a, b));
  Var norm_a = Sqrt(SumAll(Mul(a, a)));
  Var norm_b = Sqrt(SumAll(Mul(b, b)));
  Var cosine = Mul(dot, Recip(Mul(norm_a, norm_b)));
  return AddScalar(Neg(cosine), 1.0f);
}

Var SquaredDifferenceSum(const Var& a, const Var& b) {
  Var d = Sub(a, b);
  return SumAll(Mul(d, d));
}

}  // namespace deta::autograd
