// Define-by-run automatic differentiation with higher-order gradient support.
//
// Why higher-order: the data-reconstruction attacks the paper evaluates (DLG, iDLG, IG)
// minimize a loss whose arguments are *gradients* of the victim model. Computing
// d(attack_loss)/d(dummy_input) therefore differentiates through a backward pass. This
// engine makes that work the standard way: every op's backward function is itself composed
// of differentiable ops, so Grad(..., create_graph=true) yields gradients that are again
// graph nodes and can be differentiated.
//
// Design notes:
//   * A Var is a shared handle to an immutable-value graph Node. Leaves (parameters,
//     inputs) may be updated in place by optimizers via mutable_value().
//   * Backward closures never capture the op's own output Var (that would create a
//     shared_ptr cycle); nonlinear ops recompute their forward value from parents instead.
//   * Grad() returns one gradient Var per requested input; inputs the output does not
//     depend on get zero gradients.
#ifndef DETA_AUTOGRAD_VAR_H_
#define DETA_AUTOGRAD_VAR_H_

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace deta::autograd {

class Var;

// Given the gradient flowing into this node, produces the gradient for each parent
// (ordered exactly like Node::parents).
using BackwardFn = std::function<std::vector<Var>(const Var& grad_out)>;

struct Node {
  Tensor value;
  bool requires_grad = false;
  std::vector<Var> parents;
  BackwardFn backward;
  const char* op_name = "leaf";
};

class Var {
 public:
  Var() = default;
  // Leaf node.
  explicit Var(Tensor value, bool requires_grad = false);

  bool defined() const { return node_ != nullptr; }
  const Tensor& value() const;
  // In-place access for optimizers; only valid on leaves.
  Tensor& mutable_value();
  bool requires_grad() const;
  const Tensor::Shape& shape() const { return value().shape(); }
  int64_t numel() const { return value().numel(); }

  // Same value, cut off from history (gradient does not flow).
  Var Detach() const;

  std::shared_ptr<Node> node() const { return node_; }

  // Internal: wraps an op result.
  static Var FromNode(std::shared_ptr<Node> node);

 private:
  std::shared_ptr<Node> node_;
};

// Builds an op node. requires_grad is inferred from parents.
Var MakeOp(Tensor value, std::vector<Var> parents, BackwardFn backward, const char* name);

// Computes d(output)/d(inputs). |output| must be scalar (numel()==1) unless |grad_output|
// is provided with output's shape. When |create_graph| is true the returned gradients are
// differentiable graph nodes; otherwise they are detached leaves.
std::vector<Var> Grad(const Var& output, const std::vector<Var>& inputs,
                      bool create_graph = false, const Var& grad_output = Var());

}  // namespace deta::autograd

#endif  // DETA_AUTOGRAD_VAR_H_
