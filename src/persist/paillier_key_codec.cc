#include "persist/paillier_key_codec.h"

#include "common/check.h"
#include "net/codec.h"

namespace deta::persist {

namespace {

constexpr uint32_t kVersionLegacy = 1;  // lambda/mu only
constexpr uint32_t kVersionCrt = 2;     // + CRT primes p, q

using crypto::BigUint;

void WriteBigUint(net::Writer& w, const BigUint& v) { w.WriteBytes(v.ToBytes()); }

BigUint ReadBigUint(net::Reader& r) { return BigUint::FromBytes(r.ReadBytes()); }

Bytes SerializeWithVersion(const crypto::PaillierKeyPair& kp, uint32_t version) {
  net::Writer w;
  w.WriteU32(version);
  WriteBigUint(w, kp.pub.n);
  // ExposeForSeal: the serialized blob travels only inside sealed snapshot sections
  // and over the broker's authenticated channel (deta_taintcheck tracks this flow).
  WriteBigUint(w, kp.priv.lambda.ExposeForSeal());
  WriteBigUint(w, kp.priv.mu.ExposeForSeal());
  if (version >= kVersionCrt) {
    WriteBigUint(w, kp.priv.p.ExposeForSeal());
    WriteBigUint(w, kp.priv.q.ExposeForSeal());
  }
  return w.Take();
}

}  // namespace

Bytes SerializePaillierKey(const crypto::PaillierKeyPair& kp) {
  // Keys without the CRT extension (hand-built or themselves loaded from a v1 blob)
  // round-trip through the v1 format rather than failing the snapshot.
  return SerializeWithVersion(kp, kp.priv.HasCrt() ? kVersionCrt : kVersionLegacy);
}

Bytes SerializePaillierKeyV1(const crypto::PaillierKeyPair& kp) {
  return SerializeWithVersion(kp, kVersionLegacy);
}

std::optional<crypto::PaillierKeyPair> ParsePaillierKey(const Bytes& blob) {
  try {
    net::Reader r(blob);
    uint32_t version = r.ReadU32();
    if (version != kVersionLegacy && version != kVersionCrt) {
      return std::nullopt;
    }
    crypto::PaillierKeyPair kp;
    kp.pub.n = ReadBigUint(r);
    if (kp.pub.n.IsZero()) {
      return std::nullopt;
    }
    kp.pub.n_squared = kp.pub.n.Mul(kp.pub.n);
    kp.pub.g = kp.pub.n.Add(BigUint(1));
    kp.pub.PrecomputeCache();
    kp.priv.lambda = deta::Secret<BigUint>(ReadBigUint(r));
    kp.priv.mu = deta::Secret<BigUint>(ReadBigUint(r));
    if (version >= kVersionCrt) {
      kp.priv.p = deta::Secret<BigUint>(ReadBigUint(r));
      kp.priv.q = deta::Secret<BigUint>(ReadBigUint(r));
      // PrecomputeCrt validates p*q == n, so a corrupted prime cannot produce a key
      // that silently decrypts to garbage.
      if (!kp.priv.PrecomputeCrt(kp.pub)) {
        return std::nullopt;
      }
    }
    return kp;
  } catch (const CheckFailure&) {
    return std::nullopt;  // truncated / malformed
  }
}

}  // namespace deta::persist
