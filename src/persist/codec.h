// Versioned, self-describing snapshot codec for durable role state (checkpoint/resume).
//
// A Snapshot is the unit of persistence: one role's complete resumable state at one
// round, as a list of typed, named sections. The wire format is a single framed blob —
// body || SHA-256(body) — so any torn write, bit flip, or truncation is detected before
// a single section is trusted (ParseSnapshot never returns partially-valid state).
//
// Confidentiality: sections that hold key material (transform permutation keys, secure
// channel master secrets, CSPRNG states, registration caches) are sealed with an AEAD
// under a role-bound SealKey before they enter the snapshot, so what reaches disk is
// ciphertext. SealKey::Derive is the simulation stand-in for a CVM's sealed-storage key
// (derived from platform measurement + job identity in a real SEV deployment); model
// parameters and trainer order state are not secret from the role itself and stay
// plaintext. See DESIGN.md "Durability & resume" for the full sealed-vs-plaintext table.
#ifndef DETA_PERSIST_CODEC_H_
#define DETA_PERSIST_CODEC_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "crypto/aead.h"

namespace deta::persist {

// What a section holds. The type is advisory self-description (tools can tell key
// material from bulk floats without knowing the role); lookup is by name.
enum class SectionType : uint32_t {
  kRaw = 0,
  kModelParams = 1,
  kOptimizerState = 2,
  kKeyMaterial = 3,
  kRngState = 4,
  kTrainerState = 5,
  kChannelState = 6,
  kRegistrationCache = 7,
};

const char* SectionTypeName(SectionType type);

struct Section {
  SectionType type = SectionType::kRaw;
  std::string name;
  Bytes data;
};

struct Snapshot {
  std::string role;        // endpoint / role name this state belongs to
  uint64_t generation = 0; // assigned by StateStore::Write, monotonic per role
  int round = 0;           // last round fully reflected by this state
  std::vector<Section> sections;

  void Add(SectionType type, const std::string& name, Bytes data);
  void AddFloats(SectionType type, const std::string& name,
                 const std::vector<float>& values);
  // nullptr when no section has this name.
  const Section* Find(const std::string& name) const;
  std::optional<std::vector<float>> FindFloats(const std::string& name) const;
};

// Serializes magic + version + header + sections, framed with a SHA-256 digest over the
// whole body.
Bytes SerializeSnapshot(const Snapshot& snapshot);

// Parses and verifies a snapshot blob. nullopt if the frame is truncated or malformed,
// the digest does not match, the magic/version is unknown, or any section is bad —
// a snapshot is either fully verified or rejected whole.
std::optional<Snapshot> ParseSnapshot(const Bytes& blob);

// Role-bound sealing key for the secret sections of a snapshot. Deterministically
// derived (HKDF) from the job seed and the role name: the revived role — and only a
// role holding the same job identity — can re-derive it and open its own sections.
class SealKey {
 public:
  static SealKey Derive(uint64_t job_seed, const std::string& role);

  Bytes Seal(const Bytes& plaintext, crypto::SecureRng& rng) const;
  // nullopt when the ciphertext was tampered with or sealed under a different role/job.
  std::optional<Bytes> Open(const Bytes& sealed) const;

 private:
  explicit SealKey(const Bytes& master_key) : aead_(master_key) {}
  // deta-lint: secret — Aead wipes its own key schedule on destruction, so SealKey
  // needs no destructor of its own.
  crypto::Aead aead_;
};

}  // namespace deta::persist

#endif  // DETA_PERSIST_CODEC_H_
