#include "persist/state_store.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/check.h"
#include "common/logging.h"
#include "common/sim_clock.h"
#include "common/telemetry.h"

namespace deta::persist {

namespace {

std::string ParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) {
    return ".";
  }
  if (slash == 0) {
    return "/";
  }
  return path.substr(0, slash);
}

bool SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return false;
  }
  bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

// mkdir -p. Returns false when a component cannot be created.
bool MakeDirs(const std::string& dir) {
  if (dir.empty() || dir == "/" || dir == ".") {
    return true;
  }
  struct stat st{};
  if (::stat(dir.c_str(), &st) == 0) {
    return S_ISDIR(st.st_mode);
  }
  if (!MakeDirs(ParentDir(dir))) {
    return false;
  }
  return ::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST;
}

}  // namespace

bool AtomicWriteFile(const std::string& path, const Bytes& blob) {
  if (!MakeDirs(ParentDir(path))) {
    LOG_WARNING << "persist: cannot create directory for " << path;
    return false;
  }
  std::string tmp = path + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    LOG_WARNING << "persist: cannot open " << tmp << " for writing";
    return false;
  }
  bool ok = blob.empty() || std::fwrite(blob.data(), 1, blob.size(), f) == blob.size();
  ok = std::fflush(f) == 0 && ok;
  // The data must be on stable storage *before* the rename publishes the file name,
  // or a crash can expose a fully-named, partially-written snapshot.
  ok = ::fsync(fileno(f)) == 0 && ok;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    LOG_WARNING << "persist: rename " << tmp << " -> " << path << " failed";
    std::remove(tmp.c_str());
    return false;
  }
  // Make the rename itself durable: the directory entry is metadata of the directory.
  return SyncDir(ParentDir(path));
}

std::optional<Bytes> ReadFile(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return std::nullopt;
  }
  Bytes blob;
  uint8_t buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    blob.insert(blob.end(), buffer, buffer + n);
  }
  std::fclose(f);
  return blob;
}

StateStore::StateStore(StateStoreOptions options) : options_(std::move(options)) {
  DETA_CHECK(!options_.dir.empty());
  if (options_.keep < 1) {
    options_.keep = 1;
  }
  MakeDirs(options_.dir);
}

std::string StateStore::PathFor(const std::string& role, uint64_t generation) const {
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), ".g%012" PRIu64 ".snap", generation);
  return options_.dir + "/" + role + suffix;
}

std::vector<uint64_t> StateStore::GenerationsLocked(const std::string& role) const {
  std::vector<uint64_t> generations;
  DIR* d = ::opendir(options_.dir.c_str());
  if (d == nullptr) {
    return generations;
  }
  const std::string prefix = role + ".g";
  const std::string suffix = ".snap";
  while (struct dirent* entry = ::readdir(d)) {
    std::string name = entry->d_name;
    if (name.size() <= prefix.size() + suffix.size() ||
        name.compare(0, prefix.size(), prefix) != 0 ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    if (digits.empty() || digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    generations.push_back(std::strtoull(digits.c_str(), nullptr, 10));
  }
  ::closedir(d);
  std::sort(generations.begin(), generations.end());
  return generations;
}

std::vector<uint64_t> StateStore::Generations(const std::string& role) const {
  MutexLock lock(mutex_);
  return GenerationsLocked(role);
}

bool StateStore::Write(Snapshot& snapshot) {
  DETA_CHECK(!snapshot.role.empty());
  telemetry::Span span("persist.snapshot.write");
  MutexLock lock(mutex_);
  std::vector<uint64_t> generations = GenerationsLocked(snapshot.role);
  snapshot.generation = generations.empty() ? 1 : generations.back() + 1;
  Bytes blob = SerializeSnapshot(snapshot);
  if (!AtomicWriteFile(PathFor(snapshot.role, snapshot.generation), blob)) {
    return false;
  }
  DETA_COUNTER("persist.snapshot.written").Increment();
  DETA_COUNTER("persist.snapshot.bytes_written").Add(blob.size());
  PruneLocked(snapshot.role);
  return true;
}

void StateStore::PruneLocked(const std::string& role) {
  std::vector<uint64_t> generations = GenerationsLocked(role);
  if (static_cast<int>(generations.size()) <= options_.keep) {
    return;
  }
  size_t excess = generations.size() - static_cast<size_t>(options_.keep);
  for (size_t i = 0; i < excess; ++i) {
    if (std::remove(PathFor(role, generations[i]).c_str()) == 0) {
      DETA_COUNTER("persist.snapshot.pruned").Increment();
    }
  }
}

std::optional<Snapshot> StateStore::LoadLocked(const std::string& role,
                                               int max_round) const {
  std::vector<uint64_t> generations = GenerationsLocked(role);
  bool newest = true;
  for (auto it = generations.rbegin(); it != generations.rend(); ++it) {
    std::optional<Bytes> blob = ReadFile(PathFor(role, *it));
    std::optional<Snapshot> snapshot =
        blob.has_value() ? ParseSnapshot(*blob) : std::nullopt;
    if (!snapshot.has_value() || snapshot->role != role) {
      // Unreadable, torn, corrupted, or mislabelled: never trusted.
      DETA_COUNTER("persist.snapshot.rejected").Increment();
      LOG_WARNING << "persist: rejecting snapshot " << role << " generation " << *it
                  << " (corrupt or unreadable)";
      newest = false;
      continue;
    }
    if (max_round >= 0 && snapshot->round > max_round) {
      newest = false;
      continue;  // newer than the consistent cut being resumed
    }
    snapshot->generation = *it;
    if (!newest) {
      DETA_COUNTER("persist.snapshot.fallbacks").Increment();
    }
    DETA_COUNTER("persist.snapshot.loaded").Increment();
    return snapshot;
  }
  return std::nullopt;
}

std::optional<Snapshot> StateStore::Load(const std::string& role) const {
  telemetry::Span span("persist.snapshot.load");
  MutexLock lock(mutex_);
  return LoadLocked(role, -1);
}

std::optional<Snapshot> StateStore::LoadAt(const std::string& role, int max_round) const {
  telemetry::Span span("persist.snapshot.load");
  MutexLock lock(mutex_);
  return LoadLocked(role, max_round);
}

}  // namespace deta::persist
