// Versioned snapshot codec for Paillier key material (checkpoint/resume of roles that
// hold the fusion decryption capability).
//
// v1 carried only lambda/mu (the pre-CRT private key). v2 adds the CRT primes p/q; the
// derived CRT fields (p^2, q^2, exponents, hp/hq, Garner inverse, Montgomery contexts)
// are recomputed on load rather than stored, so the on-disk secret surface stays
// minimal. Loading a v1 blob still yields a fully working key — decryption falls back
// to the lambda/mu path — which is the legacy-resume guarantee: a snapshot written
// before the CRT extension existed resumes against current code with identical
// plaintexts, just without the CRT speedup.
//
// The blob holds raw private key material: callers MUST seal it (persist::SealKey)
// before it enters a snapshot section, exactly like RNG state and transform material.
#ifndef DETA_PERSIST_PAILLIER_KEY_CODEC_H_
#define DETA_PERSIST_PAILLIER_KEY_CODEC_H_

#include <optional>

#include "common/bytes.h"
#include "crypto/paillier.h"

namespace deta::persist {

// Current format: v2 (lambda/mu + CRT primes) when the private key carries the CRT
// extension, v1 otherwise.
Bytes SerializePaillierKey(const crypto::PaillierKeyPair& kp);

// v1 format (lambda/mu only). Kept as a writer so the legacy-load fallback stays
// testable end-to-end; new snapshots should use SerializePaillierKey.
Bytes SerializePaillierKeyV1(const crypto::PaillierKeyPair& kp);

// Parses either version; nullopt on malformed/truncated input, unknown version, or CRT
// primes that do not multiply to n. The returned key has its Montgomery caches (and,
// for v2, CRT tables) rebuilt and ready.
std::optional<crypto::PaillierKeyPair> ParsePaillierKey(const Bytes& blob);

}  // namespace deta::persist

#endif  // DETA_PERSIST_PAILLIER_KEY_CODEC_H_
