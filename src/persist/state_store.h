// Durable, crash-consistent snapshot storage with generations and retention.
//
// Write path (per snapshot): serialize -> write to `<final>.tmp` -> fflush + fsync ->
// close -> rename(tmp, final) -> fsync(directory). A crash at any byte leaves either the
// previous generation intact (tmp never renamed) or the new generation fully written —
// never a half-visible file under the final name. Readers additionally verify the
// codec's SHA-256 frame, so even a torn rename on a non-atomic filesystem degrades to
// "rejected, fall back one generation" rather than resuming from garbage.
//
// Load path: scan `<role>.g<generation>.snap` files newest-first, return the first one
// that verifies. Corrupt generations are counted (`persist.snapshot.rejected`), skipped
// (`persist.snapshot.fallbacks`), and never trusted.
//
// One StateStore (one directory) is shared by every role of a job; roles write disjoint
// file names, and a mutex serializes directory-level operations so concurrent role
// threads cannot interleave scan-prune-rename sequences.
#ifndef DETA_PERSIST_STATE_STORE_H_
#define DETA_PERSIST_STATE_STORE_H_

#include <optional>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "persist/codec.h"

namespace deta::persist {

// Atomic durable file write: tmp + fsync + rename + directory fsync. Shared by the
// StateStore and the model-checkpoint wrappers (nn/checkpoint.h). False on any I/O
// failure (the tmp file is cleaned up best-effort).
bool AtomicWriteFile(const std::string& path, const Bytes& blob);

// Reads a whole file; nullopt when it cannot be opened.
std::optional<Bytes> ReadFile(const std::string& path);

struct StateStoreOptions {
  std::string dir;
  // Verified generations retained per role; older ones are pruned after each write.
  // Minimum 1 (the write being made).
  int keep = 3;
};

class StateStore {
 public:
  explicit StateStore(StateStoreOptions options);

  const std::string& dir() const { return options_.dir; }

  // Persists |snapshot| as the next generation for its role (assigns
  // snapshot.generation), prunes generations beyond options.keep, and returns false on
  // I/O failure. The snapshot on disk is durable (fsynced) when this returns true.
  bool Write(Snapshot& snapshot);

  // Latest verifiable snapshot for |role|; corrupt newer generations are skipped with
  // telemetry. nullopt when no generation verifies.
  std::optional<Snapshot> Load(const std::string& role) const;

  // Latest verifiable snapshot for |role| whose round is <= |max_round| — the
  // consistent-cut load used when every role must resume at the same round.
  std::optional<Snapshot> LoadAt(const std::string& role, int max_round) const;

  // Sorted ascending generation numbers currently on disk for |role| (including
  // corrupt files: a generation exists once its file name does).
  std::vector<uint64_t> Generations(const std::string& role) const;

  // File path for one generation (for tests that corrupt snapshots deliberately).
  std::string PathFor(const std::string& role, uint64_t generation) const;

 private:
  std::optional<Snapshot> LoadLocked(const std::string& role, int max_round) const
      DETA_REQUIRES(mutex_);
  std::vector<uint64_t> GenerationsLocked(const std::string& role) const
      DETA_REQUIRES(mutex_);
  void PruneLocked(const std::string& role) DETA_REQUIRES(mutex_);

  StateStoreOptions options_;
  // Serializes directory-level scan/prune/rename sequences; the guarded state is the
  // directory itself, so no data member carries a DETA_GUARDED_BY.
  mutable Mutex mutex_;
};

}  // namespace deta::persist

#endif  // DETA_PERSIST_STATE_STORE_H_
