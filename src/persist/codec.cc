#include "persist/codec.h"

#include "common/check.h"
#include "common/telemetry.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "net/codec.h"

namespace deta::persist {

namespace {
constexpr char kMagic[] = "DETA-SNAP";
constexpr uint32_t kVersion = 1;
// Associated data binding sealed sections to this codec version; a sealed blob lifted
// into a different context fails authentication.
constexpr char kSealContext[] = "deta-persist-section-v1";
}  // namespace

const char* SectionTypeName(SectionType type) {
  switch (type) {
    case SectionType::kRaw:
      return "raw";
    case SectionType::kModelParams:
      return "model_params";
    case SectionType::kOptimizerState:
      return "optimizer_state";
    case SectionType::kKeyMaterial:
      return "key_material";
    case SectionType::kRngState:
      return "rng_state";
    case SectionType::kTrainerState:
      return "trainer_state";
    case SectionType::kChannelState:
      return "channel_state";
    case SectionType::kRegistrationCache:
      return "registration_cache";
  }
  return "unknown";
}

void Snapshot::Add(SectionType type, const std::string& name, Bytes data) {
  sections.push_back(Section{type, name, std::move(data)});
}

void Snapshot::AddFloats(SectionType type, const std::string& name,
                         const std::vector<float>& values) {
  net::Writer w;
  w.WriteFloatVector(values);
  Add(type, name, w.Take());
}

const Section* Snapshot::Find(const std::string& name) const {
  for (const Section& s : sections) {
    if (s.name == name) {
      return &s;
    }
  }
  return nullptr;
}

std::optional<std::vector<float>> Snapshot::FindFloats(const std::string& name) const {
  const Section* s = Find(name);
  if (s == nullptr) {
    return std::nullopt;
  }
  try {
    net::Reader r(s->data);
    std::vector<float> values = r.ReadFloatVector();
    if (!r.AtEnd()) {
      return std::nullopt;
    }
    return values;
  } catch (const CheckFailure&) {
    return std::nullopt;
  }
}

Bytes SerializeSnapshot(const Snapshot& snapshot) {
  net::Writer w;
  w.WriteString(kMagic);
  w.WriteU32(kVersion);
  w.WriteString(snapshot.role);
  w.WriteU64(snapshot.generation);
  w.WriteU32(static_cast<uint32_t>(snapshot.round));
  w.WriteU32(static_cast<uint32_t>(snapshot.sections.size()));
  for (const Section& s : snapshot.sections) {
    w.WriteU32(static_cast<uint32_t>(s.type));
    w.WriteString(s.name);
    w.WriteBytes(s.data);
  }
  Bytes body = w.Take();
  Bytes digest = crypto::Sha256Digest(body);
  net::Writer framed;
  framed.WriteBytes(body);
  framed.WriteBytes(digest);
  return framed.Take();
}

std::optional<Snapshot> ParseSnapshot(const Bytes& blob) {
  try {
    net::Reader framed(blob);
    Bytes body = framed.ReadBytes();
    Bytes digest = framed.ReadBytes();
    if (!framed.AtEnd()) {
      return std::nullopt;  // trailing garbage — not a cleanly written snapshot
    }
    if (!ConstantTimeEqual(digest, crypto::Sha256Digest(body))) {
      return std::nullopt;
    }
    net::Reader r(body);
    if (r.ReadString() != kMagic) {
      return std::nullopt;
    }
    if (r.ReadU32() != kVersion) {
      return std::nullopt;
    }
    Snapshot snapshot;
    snapshot.role = r.ReadString();
    snapshot.generation = r.ReadU64();
    snapshot.round = static_cast<int>(r.ReadU32());
    uint32_t count = r.ReadU32();
    for (uint32_t i = 0; i < count; ++i) {
      Section s;
      s.type = static_cast<SectionType>(r.ReadU32());
      s.name = r.ReadString();
      s.data = r.ReadBytes();
      snapshot.sections.push_back(std::move(s));
    }
    if (!r.AtEnd()) {
      return std::nullopt;
    }
    return snapshot;
  } catch (const CheckFailure&) {
    return std::nullopt;  // truncated / malformed framing
  }
}

SealKey SealKey::Derive(uint64_t job_seed, const std::string& role) {
  Bytes ikm = StringToBytes("deta-persist-seal-v1");
  AppendU64(ikm, job_seed);
  Bytes master = crypto::Hkdf(StringToBytes("deta-persist"), ikm, StringToBytes(role),
                              crypto::kChaChaKeySize);
  return SealKey(master);
}

Bytes SealKey::Seal(const Bytes& plaintext, crypto::SecureRng& rng) const {
  return aead_.Seal(plaintext, StringToBytes(kSealContext), rng);
}

std::optional<Bytes> SealKey::Open(const Bytes& sealed) const {
  return aead_.Open(sealed, StringToBytes(kSealContext));
}

}  // namespace deta::persist
