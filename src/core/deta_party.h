// A DeTA training party: wraps the baseline fl::Party local trainer with the full DeTA
// life cycle of Figure 1 — verify every aggregator (phase II challenge/response),
// register and establish secure channels, then per round: local train, Trans (partition +
// shuffle), sealed upload to each aggregator, collect aggregated fragments, Trans^-1
// (un-shuffle + merge), and synchronize the local model. Runs as a real thread.
//
// Fault tolerance: every wait is bounded. Uploads are retransmitted (re-sealed, so the
// channel replay window accepts them) to any aggregator whose result has not arrived;
// an aggregator that stays silent all the way to the collection deadline causes the
// party to *skip* the round — params stay at the last synchronized state, the observer
// is told via party.round_skipped, and the party keeps participating — rather than
// aborting the job.
#ifndef DETA_CORE_DETA_PARTY_H_
#define DETA_CORE_DETA_PARTY_H_

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "common/thread.h"
#include "core/deta_aggregator.h"
#include "core/key_broker.h"
#include "core/transform.h"
#include "fl/party.h"
#include "net/retry.h"
#include "persist/state_store.h"

namespace deta::core {

inline constexpr char kPartyReady[] = "party.ready";
inline constexpr char kPartyTiming[] = "party.timing";
inline constexpr char kPartyReport[] = "party.report";
inline constexpr char kPartyRoundSkipped[] = "party.round_skipped";
inline constexpr char kPartyFailed[] = "party.failed";

struct DetaPartyConfig {
  std::vector<std::string> aggregator_names;
  // Token public keys from the attestation proxy's registry, keyed by aggregator name.
  std::map<std::string, crypto::EcPoint> token_registry;
  std::string observer;
  // Exactly one party per job uploads the merged global parameters to the observer each
  // round for evaluation (they are identical across parties).
  bool is_reporter = false;
  fl::TrainConfig train;
  // Paillier fusion key material (all parties hold it; the key-broker role).
  bool use_paillier = false;
  std::optional<crypto::PaillierKeyPair> paillier;
  int paillier_lane_bits = 56;
  int num_parties = 1;
  // Starting global parameters; identical across all parties of a job.
  std::vector<float> initial_params;
  // When true, the party fetches the transform material (permutation key + mapper seed)
  // from the trusted key broker during setup instead of receiving a pre-built transform.
  bool fetch_from_key_broker = false;
  crypto::EcPoint key_broker_public;
  // Total rounds in the job; after the final round the party exits on its own, so a
  // dropped shutdown message cannot strand it (0 = exit only on shutdown/idle timeout).
  int rounds = 0;
  // Retransmission pacing for setup handshakes and per-round uploads.
  net::RetryPolicy retry;
  // Wait this long before starting setup. At 1k-10k-party scale the job staggers party
  // starts (index * DetaOptions::party_start_stagger_ms) so thousands of simultaneous
  // EC handshakes cannot back up the aggregators into a retransmission storm.
  int start_delay_ms = 0;
  // Overall ceiling on one round's upload + result collection; the round is skipped
  // when it expires (0 = no ceiling — wait for shutdown).
  int result_timeout_ms = 120000;
  // Backstop: exit (with a warning) when no message arrives for this long between rounds.
  int idle_timeout_ms = 60000;

  // --- durability (src/persist/) ---
  // Snapshot store, owned by the job; null disables persistence.
  persist::StateStore* store = nullptr;
  // Snapshot cadence (every Nth completed round; the post-setup state is always saved).
  int checkpoint_every = 1;
  // Restore from the newest verifiable snapshot before setup. Setup fails if none loads.
  bool resume = false;
  // With resume: require the restored snapshot to be for exactly this round (>= 0).
  // Whole-job resume uses this to pin every role to one consistent cut; -1 = newest.
  int resume_max_round = -1;
  // Send the kPartyReady barrier message (disabled for in-run revives: the barrier
  // already completed and the observer is no longer listening for it).
  bool announce_ready = true;
  // Fault injection: kill this party when round |crash_at_round| begins (0 = never).
  int crash_at_round = 0;
  // Seed for the snapshot sealing key (stand-in for CVM sealed storage; job-provided).
  uint64_t seal_seed = 0;
  // Attempts for the key-broker material fetch during setup. The job raises this when a
  // broker crash is planned: the fetch aborts instantly while the broker is down, and a
  // plain retry budget would be burned before the revive lands.
  int broker_fetch_attempts = 1;
};

class DetaParty {
 public:
  // |transform| may be null when config.fetch_from_key_broker is set; the party then
  // builds it from the broker-served material during setup.
  DetaParty(std::unique_ptr<fl::Party> local, DetaPartyConfig config,
            std::shared_ptr<const Transform> transform, net::Transport& transport,
            crypto::SecureRng rng);
  ~DetaParty();

  DetaParty(const DetaParty&) = delete;
  DetaParty& operator=(const DetaParty&) = delete;

  void Start();
  void Join();
  // Closes the party's mailbox, waking any in-flight wait (including mid-round result
  // collection, which a queued shutdown message cannot interrupt). Used by the job's
  // failure paths; on the happy path the party exits on its own after the final round.
  void Shutdown() { endpoint_->Close(); }

  const std::string& name() const { return name_; }
  // True once the setup phase (verification + registration) succeeded.
  bool setup_ok() const { return setup_ok_; }
  const std::vector<float>& final_params() const { return global_params_; }

  // True after an injected crash fault fired; the job driver polls this and revives the
  // party from its latest snapshot.
  bool crashed() const { return crashed_.load(); }
  // Releases the local trainer so a revived replacement party can own it (its durable
  // iteration state is restored from the snapshot anyway; handing the object over avoids
  // re-partitioning the dataset). Call only after Join().
  std::unique_ptr<fl::Party> TakeLocal() { return std::move(local_); }

 private:
  void Run();
  bool SetupChannels();
  void RunRound(int round);
  // Writes a snapshot for completed round |round| (respects checkpoint_every).
  void SaveState(int round);
  // Restores params/trainer/rng/material from the store; false when nothing verifiable
  // matches the configured resume point.
  bool RestoreFromSnapshot();

  std::unique_ptr<fl::Party> local_;
  std::string name_;
  DetaPartyConfig config_;
  std::shared_ptr<const Transform> transform_;
  net::Transport& transport_;
  std::unique_ptr<net::Endpoint> endpoint_;
  crypto::SecureRng rng_;
  std::unique_ptr<fl::PaillierVectorCodec> paillier_codec_;

  std::map<std::string, net::SecureChannel> channels_;  // aggregator -> channel
  std::vector<float> global_params_;
  // Broker-served transform material, retained (and snapshotted sealed) so a resumed
  // party can rebuild its transform without a live broker.
  std::optional<TransformMaterial> material_;
  int resume_round_ = 0;
  bool setup_ok_ = false;
  std::atomic<bool> crashed_{false};
  ServiceThread thread_;
};

}  // namespace deta::core

#endif  // DETA_CORE_DETA_PARTY_H_
