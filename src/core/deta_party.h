// A DeTA training party: wraps the baseline fl::Party local trainer with the full DeTA
// life cycle of Figure 1 — verify every aggregator (phase II challenge/response),
// register and establish secure channels, then per round: local train, Trans (partition +
// shuffle), sealed upload to each aggregator, collect aggregated fragments, Trans^-1
// (un-shuffle + merge), and synchronize the local model. Runs as a real thread.
//
// Fault tolerance: every wait is bounded. Uploads are retransmitted (re-sealed, so the
// channel replay window accepts them) to any aggregator whose result has not arrived;
// an aggregator that stays silent all the way to the collection deadline causes the
// party to *skip* the round — params stay at the last synchronized state, the observer
// is told via party.round_skipped, and the party keeps participating — rather than
// aborting the job.
#ifndef DETA_CORE_DETA_PARTY_H_
#define DETA_CORE_DETA_PARTY_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "core/deta_aggregator.h"
#include "core/key_broker.h"
#include "core/transform.h"
#include "fl/party.h"
#include "net/retry.h"

namespace deta::core {

inline constexpr char kPartyReady[] = "party.ready";
inline constexpr char kPartyTiming[] = "party.timing";
inline constexpr char kPartyReport[] = "party.report";
inline constexpr char kPartyRoundSkipped[] = "party.round_skipped";
inline constexpr char kPartyFailed[] = "party.failed";

struct DetaPartyConfig {
  std::vector<std::string> aggregator_names;
  // Token public keys from the attestation proxy's registry, keyed by aggregator name.
  std::map<std::string, crypto::EcPoint> token_registry;
  std::string observer;
  // Exactly one party per job uploads the merged global parameters to the observer each
  // round for evaluation (they are identical across parties).
  bool is_reporter = false;
  fl::TrainConfig train;
  // Paillier fusion key material (all parties hold it; the key-broker role).
  bool use_paillier = false;
  std::optional<crypto::PaillierKeyPair> paillier;
  int paillier_lane_bits = 56;
  int num_parties = 1;
  // Starting global parameters; identical across all parties of a job.
  std::vector<float> initial_params;
  // When true, the party fetches the transform material (permutation key + mapper seed)
  // from the trusted key broker during setup instead of receiving a pre-built transform.
  bool fetch_from_key_broker = false;
  crypto::EcPoint key_broker_public;
  // Total rounds in the job; after the final round the party exits on its own, so a
  // dropped shutdown message cannot strand it (0 = exit only on shutdown/idle timeout).
  int rounds = 0;
  // Retransmission pacing for setup handshakes and per-round uploads.
  net::RetryPolicy retry;
  // Overall ceiling on one round's upload + result collection; the round is skipped
  // when it expires (0 = no ceiling — wait for shutdown).
  int result_timeout_ms = 120000;
  // Backstop: exit (with a warning) when no message arrives for this long between rounds.
  int idle_timeout_ms = 60000;
};

class DetaParty {
 public:
  // |transform| may be null when config.fetch_from_key_broker is set; the party then
  // builds it from the broker-served material during setup.
  DetaParty(std::unique_ptr<fl::Party> local, DetaPartyConfig config,
            std::shared_ptr<const Transform> transform, net::MessageBus& bus,
            crypto::SecureRng rng);
  ~DetaParty();

  DetaParty(const DetaParty&) = delete;
  DetaParty& operator=(const DetaParty&) = delete;

  void Start();
  void Join();
  // Closes the party's mailbox, waking any in-flight wait (including mid-round result
  // collection, which a queued shutdown message cannot interrupt). Used by the job's
  // failure paths; on the happy path the party exits on its own after the final round.
  void Shutdown() { endpoint_->Close(); }

  const std::string& name() const { return local_->name(); }
  // True once the setup phase (verification + registration) succeeded.
  bool setup_ok() const { return setup_ok_; }
  const std::vector<float>& final_params() const { return global_params_; }

 private:
  void Run();
  bool SetupChannels();
  void RunRound(int round);

  std::unique_ptr<fl::Party> local_;
  DetaPartyConfig config_;
  std::shared_ptr<const Transform> transform_;
  net::MessageBus& bus_;
  std::unique_ptr<net::Endpoint> endpoint_;
  crypto::SecureRng rng_;
  std::unique_ptr<fl::PaillierVectorCodec> paillier_codec_;

  std::map<std::string, net::SecureChannel> channels_;  // aggregator -> channel
  std::vector<float> global_params_;
  bool setup_ok_ = false;
  std::thread thread_;
};

}  // namespace deta::core

#endif  // DETA_CORE_DETA_PARTY_H_
