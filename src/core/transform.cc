#include "core/transform.h"

#include "common/check.h"

namespace deta::core {

Transform::Transform(std::shared_ptr<const ModelMapper> mapper,
                     std::shared_ptr<const Shuffler> shuffler, TransformConfig config)
    : mapper_(std::move(mapper)), shuffler_(std::move(shuffler)), config_(config) {
  DETA_CHECK(mapper_ != nullptr);
  if (config_.enable_shuffle) {
    DETA_CHECK_MSG(shuffler_ != nullptr, "shuffle enabled but no shuffler provided");
  }
}

int Transform::num_partitions() const {
  return config_.enable_partition ? mapper_->num_partitions() : 1;
}

std::vector<std::vector<float>> Transform::Apply(const std::vector<float>& flat,
                                                 uint64_t round_id) const {
  std::vector<std::vector<float>> fragments;
  if (config_.enable_partition) {
    fragments = mapper_->Partition(flat);
  } else {
    fragments.push_back(flat);
  }
  if (config_.enable_shuffle) {
    for (size_t p = 0; p < fragments.size(); ++p) {
      fragments[p] = shuffler_->Shuffle(fragments[p], round_id, static_cast<int>(p));
    }
  }
  return fragments;
}

std::vector<float> Transform::Invert(const std::vector<std::vector<float>>& fragments,
                                     uint64_t round_id) const {
  std::vector<std::vector<float>> unshuffled = fragments;
  if (config_.enable_shuffle) {
    for (size_t p = 0; p < unshuffled.size(); ++p) {
      unshuffled[p] = shuffler_->Unshuffle(unshuffled[p], round_id, static_cast<int>(p));
    }
  }
  if (config_.enable_partition) {
    return mapper_->Merge(unshuffled);
  }
  DETA_CHECK_EQ(unshuffled.size(), 1u);
  return unshuffled[0];
}

}  // namespace deta::core
