#include "core/transform.h"

#include "common/check.h"
#include "common/parallel.h"

namespace deta::core {

Transform::Transform(std::shared_ptr<const ModelMapper> mapper,
                     std::shared_ptr<const Shuffler> shuffler, TransformConfig config)
    : mapper_(std::move(mapper)), shuffler_(std::move(shuffler)), config_(config) {
  DETA_CHECK(mapper_ != nullptr);
  if (config_.enable_shuffle) {
    DETA_CHECK_MSG(shuffler_ != nullptr, "shuffle enabled but no shuffler provided");
  }
}

int Transform::num_partitions() const {
  return config_.enable_partition ? mapper_->num_partitions() : 1;
}

std::vector<std::vector<float>> Transform::Apply(const std::vector<float>& flat,
                                                 uint64_t round_id) const {
  std::vector<std::vector<float>> fragments;
  if (config_.enable_partition) {
    fragments = mapper_->Partition(flat);
  } else {
    fragments.push_back(flat);
  }
  if (config_.enable_shuffle) {
    // Partitions shuffle independently (each slot is replaced wholesale). When this outer
    // loop wins the pool, the nested per-element ParallelFor inside Shuffle degrades to
    // serial chunks — same results either way (common/parallel.h).
    parallel::ParallelFor(0, static_cast<int64_t>(fragments.size()), 1,
                          [&](int64_t lo, int64_t hi) {
                            for (int64_t p = lo; p < hi; ++p) {
                              fragments[static_cast<size_t>(p)] = shuffler_->Shuffle(
                                  fragments[static_cast<size_t>(p)], round_id,
                                  static_cast<int>(p));
                            }
                          });
  }
  return fragments;
}

std::vector<float> Transform::Invert(const std::vector<std::vector<float>>& fragments,
                                     uint64_t round_id) const {
  std::vector<std::vector<float>> unshuffled(fragments.size());
  if (config_.enable_shuffle) {
    parallel::ParallelFor(0, static_cast<int64_t>(fragments.size()), 1,
                          [&](int64_t lo, int64_t hi) {
                            for (int64_t p = lo; p < hi; ++p) {
                              unshuffled[static_cast<size_t>(p)] = shuffler_->Unshuffle(
                                  fragments[static_cast<size_t>(p)], round_id,
                                  static_cast<int>(p));
                            }
                          });
  } else {
    unshuffled = fragments;
  }
  if (config_.enable_partition) {
    return mapper_->Merge(unshuffled);
  }
  DETA_CHECK_EQ(unshuffled.size(), 1u);
  return unshuffled[0];
}

}  // namespace deta::core
