// Phase II of the paper's two-phase authentication (§4.3), as concrete message exchanges
// over the bus:
//
//   1. challenge/response — the party sends a random nonce; the aggregator signs it with
//      the ECDSA token the attestation proxy provisioned in phase I; the party verifies
//      against the token public key in the AP registry. Only attested aggregators hold a
//      token, so a verified signature proves SEV-protected, measurement-checked code.
//   2. registration + secure channel — the party registers and both sides run an ECDH
//      exchange, with the aggregator signing the handshake transcript using the same
//      token (authenticated key agreement; the TLS stand-in). All subsequent model-update
//      traffic is sealed on the resulting channel.
#ifndef DETA_CORE_AUTH_PROTOCOL_H_
#define DETA_CORE_AUTH_PROTOCOL_H_

#include <optional>
#include <string>

#include "crypto/ec.h"
#include "crypto/ecdsa.h"
#include "net/message_bus.h"
#include "net/secure_channel.h"

namespace deta::core {

// Message type tags.
inline constexpr char kAuthChallenge[] = "auth.challenge";
inline constexpr char kAuthResponse[] = "auth.response";
inline constexpr char kAuthRegister[] = "auth.register";
inline constexpr char kAuthRegisterAck[] = "auth.register_ack";

// Canonical channel id for a (party, aggregator) pair.
std::string ChannelId(const std::string& party, const std::string& aggregator);

// --- party side ---

// Step 1: challenge-response verification of one aggregator. Blocking.
bool VerifyAggregator(net::Endpoint& endpoint, const std::string& aggregator,
                      const crypto::EcPoint& token_public, crypto::SecureRng& rng);

// Step 2: registration + authenticated ECDH. Returns the established channel, or nullopt
// if the transcript signature fails.
std::optional<net::SecureChannel> RegisterWithAggregator(net::Endpoint& endpoint,
                                                         const std::string& aggregator,
                                                         const crypto::EcPoint& token_public,
                                                         crypto::SecureRng& rng);

// --- aggregator side ---

// Responds to one kAuthChallenge message.
void AnswerChallenge(net::Endpoint& endpoint, const net::Message& challenge,
                     const crypto::BigUint& token_private);

// Handles one kAuthRegister message; returns (party name, channel) on success.
std::optional<std::pair<std::string, net::SecureChannel>> AcceptRegistration(
    net::Endpoint& endpoint, const net::Message& registration,
    const crypto::BigUint& token_private, crypto::SecureRng& rng);

}  // namespace deta::core

#endif  // DETA_CORE_AUTH_PROTOCOL_H_
