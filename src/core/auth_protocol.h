// Phase II of the paper's two-phase authentication (§4.3), as concrete message exchanges
// over the bus:
//
//   1. challenge/response — the party sends a random nonce; the aggregator signs it with
//      the ECDSA token the attestation proxy provisioned in phase I; the party verifies
//      against the token public key in the AP registry. Only attested aggregators hold a
//      token, so a verified signature proves SEV-protected, measurement-checked code.
//   2. registration + secure channel — the party registers and both sides run an ECDH
//      exchange, with the aggregator signing the handshake transcript using the same
//      token (authenticated key agreement; the TLS stand-in). All subsequent model-update
//      traffic is sealed on the resulting channel.
//
// All party-side waits are bounded (net/retry.h): a lost challenge, response, register or
// ack is retransmitted with capped exponential backoff, and replies are matched by sender
// so a delayed reply from another aggregator cannot fail the current handshake.
// Retransmitted registrations are handled idempotently on the responder via
// RegistrationCache — the cached ack re-establishes the *same* channel keys, so both
// sides agree on channel state no matter which copy of which message survived.
#ifndef DETA_CORE_AUTH_PROTOCOL_H_
#define DETA_CORE_AUTH_PROTOCOL_H_

#include <map>
#include <optional>
#include <string>

#include "crypto/ec.h"
#include "crypto/ecdsa.h"
#include "net/retry.h"
#include "net/secure_channel.h"

namespace deta::core {

// Message type tags.
inline constexpr char kAuthChallenge[] = "auth.challenge";
inline constexpr char kAuthResponse[] = "auth.response";
inline constexpr char kAuthRegister[] = "auth.register";
inline constexpr char kAuthRegisterAck[] = "auth.register_ack";

// Canonical channel id for a (party, aggregator) pair.
std::string ChannelId(const std::string& party, const std::string& aggregator);

// --- party side ---

// Step 1: challenge-response verification of one aggregator. Bounded: retransmits the
// challenge per |policy| and fails (false) when the aggregator stays unresponsive.
bool VerifyAggregator(net::Endpoint& endpoint, const std::string& aggregator,
                      const crypto::EcPoint& token_public, crypto::SecureRng& rng,
                      const net::RetryPolicy& policy = {});

// Step 2: registration + authenticated ECDH. Returns the established channel (initiator
// role), or nullopt if the transcript signature fails or the aggregator stays silent.
std::optional<net::SecureChannel> RegisterWithAggregator(
    net::Endpoint& endpoint, const std::string& aggregator,
    const crypto::EcPoint& token_public, crypto::SecureRng& rng,
    const net::RetryPolicy& policy = {});

// --- aggregator side ---

// Responds to one kAuthChallenge message. Naturally idempotent: a retransmitted
// challenge is simply answered again. The token key stays inside its Secret wrapper
// all the way down to EcdsaSign, which is the only exposure point.
void AnswerChallenge(net::Endpoint& endpoint, const net::Message& challenge,
                     const Secret<crypto::BigUint>& token_private);

// Handles one kAuthRegister message; returns (party name, responder-role channel) on
// success. NOT idempotent under retransmission — prefer RegistrationCache in any event
// loop that can see the same registration twice.
std::optional<std::pair<std::string, net::SecureChannel>> AcceptRegistration(
    net::Endpoint& endpoint, const net::Message& registration,
    const Secret<crypto::BigUint>& token_private, crypto::SecureRng& rng);

// Responder-side registration state: caches the ack sent to each party so a
// retransmitted registration (same party, same ECDH share) is answered with the
// identical ack — re-deriving the same master secret — instead of re-keying a channel
// the party may already be using. A registration with a *different* share (the party
// restarted) re-keys and returns the fresh channel.
class RegistrationCache {
 public:
  // Processes one kAuthRegister message, always replying to the party. Returns a channel
  // only when one was (re-)created; nullopt for cached re-acks and malformed shares.
  std::optional<std::pair<std::string, net::SecureChannel>> Accept(
      net::Endpoint& endpoint, const net::Message& registration,
      const Secret<crypto::BigUint>& token_private, crypto::SecureRng& rng);

  // Cache contents for checkpoint/resume. The cached acks carry ECDH transcript
  // material — callers must seal the blob before it reaches disk.
  Bytes Serialize() const;
  // Replaces the cache contents; false (cache unchanged) on a malformed blob.
  bool Deserialize(const Bytes& data);

 private:
  struct Entry {
    Bytes party_share;
    Bytes ack_wire;
  };
  std::map<std::string, Entry> entries_;
};

}  // namespace deta::core

#endif  // DETA_CORE_AUTH_PROTOCOL_H_
