#include "core/deta_party.h"

#include <algorithm>

#include "common/check.h"
#include "common/logging.h"
#include "common/sim_clock.h"
#include "net/codec.h"

namespace deta::core {

DetaParty::DetaParty(std::unique_ptr<fl::Party> local, DetaPartyConfig config,
                     std::shared_ptr<const Transform> transform, net::MessageBus& bus,
                     crypto::SecureRng rng)
    : local_(std::move(local)),
      config_(std::move(config)),
      transform_(std::move(transform)),
      bus_(bus),
      rng_(std::move(rng)) {
  endpoint_ = bus_.CreateEndpoint(local_->name());
  global_params_ = config_.initial_params;
  DETA_CHECK_EQ(static_cast<int64_t>(global_params_.size()), local_->ParameterCount());
  if (!config_.fetch_from_key_broker) {
    DETA_CHECK_MSG(transform_ != nullptr, "no transform and key-broker fetch disabled");
  }
  if (transform_ != nullptr) {
    DETA_CHECK_EQ(config_.aggregator_names.size(),
                  static_cast<size_t>(transform_->num_partitions()));
  }
  if (config_.use_paillier) {
    DETA_CHECK(config_.paillier.has_value());
    paillier_codec_ = std::make_unique<fl::PaillierVectorCodec>(
        config_.paillier->pub, config_.num_parties, config_.paillier_lane_bits);
  }
}

DetaParty::~DetaParty() { Join(); }

void DetaParty::Start() {
  thread_ = std::thread([this] { Run(); });
}

void DetaParty::Join() {
  if (thread_.joinable()) {
    thread_.join();
  }
}

bool DetaParty::SetupChannels() {
  // Fetch the shared transform material from the trusted key broker first: the mapper
  // seed and the permutation key exist only in participant-controlled domains.
  if (config_.fetch_from_key_broker) {
    std::optional<TransformMaterial> material =
        FetchTransformMaterial(*endpoint_, config_.key_broker_public, rng_);
    if (!material.has_value()) {
      return false;
    }
    transform_ = material->BuildTransform();
    if (config_.aggregator_names.size() !=
        static_cast<size_t>(transform_->num_partitions())) {
      LOG_WARNING << name() << ": broker material partition count mismatch";
      return false;
    }
  }
  // Verify, then register with *all* aggregators (the paper's precondition for joining
  // training: no update is ever shared with an unverified aggregator).
  for (const std::string& agg : config_.aggregator_names) {
    auto token = config_.token_registry.find(agg);
    if (token == config_.token_registry.end()) {
      LOG_WARNING << name() << ": no attestation token on record for " << agg;
      return false;
    }
    if (!VerifyAggregator(*endpoint_, agg, token->second, rng_)) {
      return false;
    }
    std::optional<net::SecureChannel> channel =
        RegisterWithAggregator(*endpoint_, agg, token->second, rng_);
    if (!channel.has_value()) {
      return false;
    }
    channels_.emplace(agg, std::move(*channel));
  }
  return true;
}

void DetaParty::Run() {
  setup_ok_ = SetupChannels();
  endpoint_->Send(config_.observer, kPartyReady, Bytes{setup_ok_ ? uint8_t{1} : uint8_t{0}});
  if (!setup_ok_) {
    return;
  }
  for (;;) {
    std::optional<net::Message> m = endpoint_->Receive();
    if (!m.has_value() || m->type == kShutdown) {
      return;
    }
    if (m->type == kRoundBegin) {
      net::Reader r(m->payload);
      RunRound(static_cast<int>(r.ReadU32()));
      if (round_failed_) {
        return;  // aborted mid-round; observer was notified
      }
    } else {
      LOG_WARNING << name() << ": unexpected message type " << m->type;
    }
  }
}

void DetaParty::RunRound(int round) {
  // --- local training ---
  fl::Party::LocalResult local = local_->RunLocalRound(global_params_, round);

  // --- Trans: partition + shuffle (+ Paillier encryption when enabled) ---
  Stopwatch transform_watch;
  std::vector<std::vector<float>> fragments =
      transform_->Apply(local.update.values, static_cast<uint64_t>(round));
  std::vector<Bytes> payloads(fragments.size());
  uint64_t upload_bytes_max = 0;
  for (size_t j = 0; j < fragments.size(); ++j) {
    if (config_.use_paillier) {
      payloads[j] = fl::SerializeCiphertexts(paillier_codec_->Encrypt(fragments[j], rng_));
    } else {
      fl::ModelUpdate fragment_update;
      fragment_update.values = std::move(fragments[j]);
      fragment_update.weight = local.update.weight;
      payloads[j] = fl::SerializeUpdate(fragment_update);
    }
    upload_bytes_max = std::max<uint64_t>(upload_bytes_max, payloads[j].size());
  }
  double transform_seconds = transform_watch.ElapsedSeconds();

  // --- upload Trans(LU[P]) fragment j to aggregator j over its secure channel ---
  for (size_t j = 0; j < payloads.size(); ++j) {
    const std::string& agg = config_.aggregator_names[j];
    net::Writer w;
    w.WriteU32(static_cast<uint32_t>(round));
    w.WriteBytes(channels_.at(agg).Seal(payloads[j], rng_));
    endpoint_->Send(agg, kRoundUpload, w.Take());
  }

  // --- collect AU[A_j] from all aggregators ---
  // CPU-time stopwatch: counts the (potentially expensive, e.g. Paillier) result
  // processing but not the blocking waits on the network.
  Stopwatch result_watch;
  std::vector<std::vector<float>> aggregated(payloads.size());
  for (size_t received = 0; received < payloads.size(); ++received) {
    std::optional<net::Message> m =
        config_.result_timeout_ms > 0
            ? endpoint_->ReceiveTypeFor(kRoundResult, config_.result_timeout_ms)
            : endpoint_->ReceiveType(kRoundResult);
    if (!m.has_value()) {
      // Dead or unreachable aggregator: abort this round and tell the observer rather
      // than hanging the deployment forever.
      LOG_ERROR << name() << ": no round result within " << config_.result_timeout_ms
                << "ms (aggregator down?); aborting round " << round;
      if (!config_.observer.empty()) {
        net::Writer w;
        w.WriteU32(static_cast<uint32_t>(round));
        w.WriteString("round result timeout");
        endpoint_->Send(config_.observer, kPartyFailed, w.Take());
      }
      round_failed_ = true;
      return;
    }
    // Map the sender back to its partition index.
    auto it = std::find(config_.aggregator_names.begin(), config_.aggregator_names.end(),
                        m->from);
    DETA_CHECK_MSG(it != config_.aggregator_names.end(),
                   "round result from unknown aggregator " << m->from);
    size_t j = static_cast<size_t>(it - config_.aggregator_names.begin());
    net::Reader r(m->payload);
    int result_round = static_cast<int>(r.ReadU32());
    DETA_CHECK_EQ(result_round, round);
    std::optional<Bytes> payload = channels_.at(m->from).Open(r.ReadBytes());
    DETA_CHECK_MSG(payload.has_value(), "failed to open aggregated fragment");
    if (config_.use_paillier) {
      std::vector<crypto::BigUint> ct = fl::DeserializeCiphertexts(*payload);
      size_t fragment_len = static_cast<size_t>(
          transform_->config().enable_partition
              ? transform_->mapper().PartitionSize(static_cast<int>(j))
              : static_cast<int64_t>(global_params_.size()));
      aggregated[j] = paillier_codec_->DecryptSum(ct, config_.paillier->priv, fragment_len,
                                                  config_.num_parties);
      float inv = 1.0f / static_cast<float>(config_.num_parties);
      for (auto& v : aggregated[j]) {
        v *= inv;
      }
    } else {
      aggregated[j] = fl::DeserializeUpdate(*payload).values;
    }
  }

  double result_seconds = result_watch.ElapsedSeconds();

  // --- Trans^-1: un-shuffle + merge, then synchronize the local model ---
  Stopwatch invert_watch;
  std::vector<float> merged = transform_->Invert(aggregated, static_cast<uint64_t>(round));
  double invert_seconds = invert_watch.ElapsedSeconds() + result_seconds;

  if (config_.train.kind == fl::TrainConfig::UpdateKind::kGradient) {
    for (size_t i = 0; i < global_params_.size(); ++i) {
      global_params_[i] -= config_.train.lr * merged[i];
    }
  } else {
    global_params_ = std::move(merged);
  }

  // --- timing report + (reporter only) the merged global model for evaluation ---
  if (!config_.observer.empty()) {
    net::Writer w;
    w.WriteU32(static_cast<uint32_t>(round));
    w.WriteDouble(local.train_seconds);
    w.WriteDouble(transform_seconds + invert_seconds);
    w.WriteU64(upload_bytes_max);
    endpoint_->Send(config_.observer, kPartyTiming, w.Take());
    if (config_.is_reporter) {
      net::Writer wr;
      wr.WriteU32(static_cast<uint32_t>(round));
      wr.WriteFloatVector(global_params_);
      endpoint_->Send(config_.observer, kPartyReport, wr.Take());
    }
  }
}

}  // namespace deta::core
