#include "core/deta_party.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/check.h"
#include "common/logging.h"
#include "common/sim_clock.h"
#include "common/telemetry.h"
#include "core/auth_protocol.h"
#include "core/key_broker.h"
#include "net/codec.h"
#include "persist/paillier_key_codec.h"

namespace deta::core {

namespace {
using Clock = std::chrono::steady_clock;
constexpr int kTickMs = 50;

int MsUntil(Clock::time_point deadline) {
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                    Clock::now());
  return static_cast<int>(std::max<int64_t>(0, left.count()));
}
}  // namespace

DetaParty::DetaParty(std::unique_ptr<fl::Party> local, DetaPartyConfig config,
                     std::shared_ptr<const Transform> transform,
                     net::Transport& transport, crypto::SecureRng rng)
    : local_(std::move(local)),
      name_(local_->name()),
      config_(std::move(config)),
      transform_(std::move(transform)),
      transport_(transport),
      rng_(std::move(rng)) {
  endpoint_ = transport_.CreateEndpoint(name_);
  global_params_ = config_.initial_params;
  DETA_CHECK_EQ(static_cast<int64_t>(global_params_.size()), local_->ParameterCount());
  if (!config_.fetch_from_key_broker) {
    DETA_CHECK_MSG(transform_ != nullptr, "no transform and key-broker fetch disabled");
  }
  if (transform_ != nullptr) {
    DETA_CHECK_EQ(config_.aggregator_names.size(),
                  static_cast<size_t>(transform_->num_partitions()));
  }
  if (config_.use_paillier) {
    // The key arrives either with the job config or inside the broker-served transform
    // material; with neither source the party could never decrypt a fused result.
    DETA_CHECK_MSG(config_.paillier.has_value() || config_.fetch_from_key_broker,
                   "Paillier fusion enabled but no key source configured");
    if (config_.paillier.has_value()) {
      paillier_codec_ = std::make_unique<fl::PaillierVectorCodec>(
          config_.paillier->pub, config_.num_parties, config_.paillier_lane_bits);
    }
  }
}

DetaParty::~DetaParty() { Join(); }

void DetaParty::Start() {
  thread_ = ServiceThread([this] { Run(); });
}

void DetaParty::Join() { thread_.Join(); }

bool DetaParty::SetupChannels() {
  // Fetch the shared transform material from the trusted key broker first: the mapper
  // seed and the permutation key exist only in participant-controlled domains. A resumed
  // party that restored sealed material from its snapshot already has a transform and
  // skips the broker entirely — the broker may no longer be running.
  if (config_.fetch_from_key_broker && transform_ == nullptr) {
    std::optional<TransformMaterial> material;
    int attempts = std::max(1, config_.broker_fetch_attempts);
    for (int attempt = 0; attempt < attempts && !material.has_value(); ++attempt) {
      if (attempt > 0) {
        // The broker endpoint did not exist for the previous attempt (crashed, or not
        // yet revived); RequestReply fails fast in that case, so pace the retries.
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
        // The aborted handshake can leave stale replies queued (a challenge response
        // for a nonce we no longer hold, a surplus ack, sealed material). Drain them,
        // or every retry pairs its fresh challenge with the previous attempt's reply
        // and fails verification one step behind, forever.
        while (endpoint_->ReceiveFor(1).has_value()) {
        }
      }
      material = FetchTransformMaterial(*endpoint_, config_.key_broker_public, rng_,
                                        config_.retry);
    }
    if (!material.has_value()) {
      return false;
    }
    transform_ = material->BuildTransform();
    material_ = std::move(material);
    if (config_.aggregator_names.size() !=
        static_cast<size_t>(transform_->num_partitions())) {
      LOG_WARNING << name() << ": broker material partition count mismatch";
      return false;
    }
    // ExposeForCrypto: parsing the broker-served blob back into PaillierPrivateKey,
    // whose components are themselves Secret members.
    const Bytes& paillier_blob = material_->paillier_key.ExposeForCrypto();
    if (config_.use_paillier && !paillier_blob.empty()) {
      std::optional<crypto::PaillierKeyPair> kp =
          persist::ParsePaillierKey(paillier_blob);
      if (!kp.has_value()) {
        LOG_WARNING << name() << ": broker-served Paillier key failed to parse";
        return false;
      }
      if (config_.paillier.has_value() && config_.paillier->pub.n != kp->pub.n) {
        LOG_WARNING << name() << ": broker-served Paillier key disagrees with job key";
        return false;
      }
      config_.paillier = std::move(*kp);
    }
  }
  if (config_.use_paillier && paillier_codec_ == nullptr) {
    if (!config_.paillier.has_value()) {
      LOG_WARNING << name() << ": Paillier fusion enabled but no key from job or broker";
      return false;
    }
    paillier_codec_ = std::make_unique<fl::PaillierVectorCodec>(
        config_.paillier->pub, config_.num_parties, config_.paillier_lane_bits);
  }
  // Verify, then register with *all* aggregators (the paper's precondition for joining
  // training: no update is ever shared with an unverified aggregator).
  for (const std::string& agg : config_.aggregator_names) {
    auto token = config_.token_registry.find(agg);
    if (token == config_.token_registry.end()) {
      LOG_WARNING << name() << ": no attestation token on record for " << agg;
      return false;
    }
    if (!VerifyAggregator(*endpoint_, agg, token->second, rng_, config_.retry)) {
      return false;
    }
    std::optional<net::SecureChannel> channel = RegisterWithAggregator(
        *endpoint_, agg, token->second, rng_, config_.retry);
    if (!channel.has_value()) {
      return false;
    }
    channels_.emplace(agg, std::move(*channel));
  }
  return true;
}

void DetaParty::Run() {
  if (config_.start_delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(config_.start_delay_ms));
  }
  bool resumed = false;
  if (config_.resume) {
    resumed = RestoreFromSnapshot();
    if (!resumed) {
      LOG_ERROR << name() << ": resume requested but no usable snapshot";
      if (config_.announce_ready) {
        endpoint_->Send(config_.observer, kPartyReady, Bytes{uint8_t{0}});
      }
      return;
    }
  }
  setup_ok_ = SetupChannels();
  if (config_.announce_ready) {
    endpoint_->Send(config_.observer, kPartyReady,
                    Bytes{setup_ok_ ? uint8_t{1} : uint8_t{0}});
  }
  if (!setup_ok_) {
    return;
  }
  if (!resumed) {
    SaveState(0);  // post-setup baseline: resumable before the first round completes
  }
  int last_round = resume_round_;
  // Exit notice: tells every aggregator this party needs nothing more, so draining
  // aggregators can stop early. Best-effort — a lost notice just means the aggregator
  // waits out its drain quiet period.
  auto announce_done = [this] {
    for (const std::string& agg : config_.aggregator_names) {
      endpoint_->Send(agg, kPartyDone, {});
    }
  };
  Clock::time_point idle_deadline =
      Clock::now() + std::chrono::milliseconds(config_.idle_timeout_ms);
  for (;;) {
    if (config_.rounds > 0 && last_round >= config_.rounds) {
      announce_done();
      return;  // final round done — do not depend on the shutdown message arriving
    }
    std::optional<net::Message> m = endpoint_->ReceiveFor(kTickMs);
    if (!m.has_value()) {
      if (endpoint_->closed()) {
        return;
      }
      if (Clock::now() >= idle_deadline) {
        LOG_WARNING << name() << ": no traffic for " << config_.idle_timeout_ms
                    << "ms — giving up";
        return;
      }
      continue;
    }
    idle_deadline = Clock::now() + std::chrono::milliseconds(config_.idle_timeout_ms);
    if (m->type == kShutdown) {
      announce_done();
      return;
    }
    if (m->type == kRoundBegin) {
      net::Reader r(m->payload);
      int round = static_cast<int>(r.ReadU32());
      if (round <= last_round) {
        continue;  // retransmitted notice for a round we already ran
      }
      if (config_.crash_at_round > 0 && round == config_.crash_at_round) {
        // Injected crash: die before doing any of round |round|'s work, exactly as a
        // process kill between rounds would. The job driver revives a replacement from
        // the last durable snapshot (round - 1).
        LOG_WARNING << name() << ": injected crash at round " << round;
        DETA_COUNTER("persist.crash.injected").Increment();
        crashed_.store(true);
        endpoint_->Close();
        return;
      }
      RunRound(round);
      if (endpoint_->closed()) {
        return;
      }
      last_round = round;
      SaveState(round);
    } else if (m->type == kRoundResult) {
      LOG_DEBUG << name() << ": late round result between rounds — ignored";
    } else if (m->type == kAuthRegisterAck || m->type == kAuthResponse ||
               m->type == kKeyBrokerMaterial) {
      // A slow reply races the handshake's (or key fetch's) retransmission, so the
      // responder answers twice and the surplus ack, challenge response, or material
      // copy pops out here. Expected protocol fallout, not a fault.
      LOG_DEBUG << name() << ": surplus " << m->type << " — ignored";
    } else {
      LOG_WARNING << name() << ": unexpected message type " << m->type;
    }
  }
}

void DetaParty::SaveState(int round) {
  if (config_.store == nullptr || config_.checkpoint_every <= 0 ||
      round % config_.checkpoint_every != 0) {
    return;
  }
  persist::Snapshot snapshot;
  snapshot.role = name_;
  snapshot.round = round;
  snapshot.AddFloats(persist::SectionType::kModelParams, "params", global_params_);
  snapshot.Add(persist::SectionType::kTrainerState, "trainer",
               local_->SerializeTrainerState());
  persist::SealKey seal = persist::SealKey::Derive(config_.seal_seed, name_);
  snapshot.Add(persist::SectionType::kRngState, "rng",
               seal.Seal(rng_.SerializeState(), rng_));
  if (material_.has_value()) {
    snapshot.Add(persist::SectionType::kKeyMaterial, "material",
                 seal.Seal(material_->Serialize(), rng_));
  }
  if (config_.use_paillier && config_.paillier.has_value()) {
    // Versioned (v2 = CRT-extended) private-key section; parsing a pre-CRT v1 section
    // still resumes, minus the CRT speedup (persist/paillier_key_codec.h).
    snapshot.Add(persist::SectionType::kKeyMaterial, "paillier-key",
                 seal.Seal(persist::SerializePaillierKey(*config_.paillier), rng_));
  }
  if (!config_.store->Write(snapshot)) {
    LOG_WARNING << name_ << ": snapshot write failed for round " << round;
  }
}

bool DetaParty::RestoreFromSnapshot() {
  if (config_.store == nullptr) {
    return false;
  }
  std::optional<persist::Snapshot> snapshot =
      config_.resume_max_round >= 0
          ? config_.store->LoadAt(name_, config_.resume_max_round)
          : config_.store->Load(name_);
  if (!snapshot.has_value()) {
    return false;
  }
  if (config_.resume_max_round >= 0 && snapshot->round != config_.resume_max_round) {
    // Whole-job resume needs every role at the same cut; an older snapshot would
    // silently rewind this party against the rest of the federation.
    LOG_WARNING << name_ << ": no snapshot at round " << config_.resume_max_round;
    return false;
  }
  std::optional<std::vector<float>> params = snapshot->FindFloats("params");
  if (!params.has_value() ||
      static_cast<int64_t>(params->size()) != local_->ParameterCount()) {
    return false;
  }
  const persist::Section* trainer = snapshot->Find("trainer");
  if (trainer == nullptr || !local_->RestoreTrainerState(trainer->data)) {
    return false;
  }
  persist::SealKey seal = persist::SealKey::Derive(config_.seal_seed, name_);
  const persist::Section* rng_section = snapshot->Find("rng");
  if (rng_section != nullptr) {
    std::optional<Bytes> rng_state = seal.Open(rng_section->data);
    if (!rng_state.has_value() || !rng_.RestoreState(*rng_state)) {
      return false;
    }
  }
  const persist::Section* material = snapshot->Find("material");
  if (material != nullptr) {
    std::optional<Bytes> plain = seal.Open(material->data);
    if (!plain.has_value()) {
      return false;
    }
    try {
      material_ = TransformMaterial::Deserialize(*plain);
    } catch (const CheckFailure&) {
      return false;
    }
    transform_ = material_->BuildTransform();
  }
  const persist::Section* paillier_key = snapshot->Find("paillier-key");
  if (paillier_key != nullptr && config_.use_paillier) {
    std::optional<Bytes> plain = seal.Open(paillier_key->data);
    if (!plain.has_value()) {
      return false;
    }
    std::optional<crypto::PaillierKeyPair> kp = persist::ParsePaillierKey(*plain);
    if (!kp.has_value()) {
      return false;
    }
    if (config_.paillier.has_value() && config_.paillier->pub.n != kp->pub.n) {
      // A job-supplied key that disagrees with the snapshot means the resume targets
      // a different federation; decrypting with either key would be wrong.
      LOG_WARNING << name_ << ": snapshot Paillier key does not match job key";
      return false;
    }
    config_.paillier = std::move(*kp);
  }
  global_params_ = std::move(*params);
  resume_round_ = snapshot->round;
  LOG_INFO << name_ << ": resumed from snapshot at round " << resume_round_
           << " (generation " << snapshot->generation << ")";
  return true;
}

void DetaParty::RunRound(int round) {
  telemetry::Span span("core.deta_party.round");
  DETA_COUNTER("core.deta_party.rounds").Increment();
  // --- local training ---
  fl::Party::LocalResult local = local_->RunLocalRound(global_params_, round);

  // --- Trans: partition + shuffle (+ Paillier encryption when enabled) ---
  Stopwatch transform_watch;
  std::vector<std::vector<float>> fragments =
      transform_->Apply(local.update.values, static_cast<uint64_t>(round));
  std::vector<Bytes> payloads(fragments.size());
  uint64_t upload_bytes_max = 0;
  for (size_t j = 0; j < fragments.size(); ++j) {
    if (config_.use_paillier) {
      payloads[j] = fl::SerializeCiphertexts(paillier_codec_->Encrypt(fragments[j], rng_));
    } else {
      fl::ModelUpdate fragment_update;
      fragment_update.values = std::move(fragments[j]);
      fragment_update.weight = local.update.weight;
      payloads[j] = fl::SerializeUpdate(fragment_update);
    }
    upload_bytes_max = std::max<uint64_t>(upload_bytes_max, payloads[j].size());
  }
  double transform_seconds = transform_watch.ElapsedSeconds();

  // --- upload Trans(LU[P]) fragment j to aggregator j, collect AU[A_j] back ---
  // Upload and collection are one retry loop: each attempt (re-)sends the fragment to
  // every aggregator whose result is still missing, then waits one backoff slice for
  // results. Re-sends are re-sealed so the aggregator's replay window accepts them; the
  // aggregator answers a re-send for an already-aggregated round with the cached result.
  // The loop is bounded by result_timeout_ms, not by the retry budget: an aggregator
  // that is merely slow (still waiting on other parties' uploads) is indistinguishable
  // from a lossy link, and giving up after a handful of retransmissions would turn
  // benign scheduling skew into spurious round skips. Retransmission cadence plateaus
  // at the policy's capped timeout.
  //
  // CPU-time stopwatch: counts the (potentially expensive, e.g. Paillier) result
  // processing but not the blocking waits on the network.
  Stopwatch result_watch;
  // Wall-clock round-trip of the upload/collect exchange (first upload send to last
  // result decoded): the tail-latency signal the scale harness aggregates into
  // per-round p50/p99 (bench/scale_parties.cc).
  WallStopwatch rtt_watch;
  size_t num_aggs = payloads.size();
  std::vector<std::vector<float>> aggregated(num_aggs);
  std::vector<bool> have(num_aggs, false);
  size_t received = 0;
  Clock::time_point overall_deadline =
      Clock::now() + std::chrono::milliseconds(config_.result_timeout_ms > 0
                                                   ? config_.result_timeout_ms
                                                   : (1 << 30));
  int unreachable_streak = 0;
  for (int attempt = 0; received < num_aggs; ++attempt) {
    bool any_reachable = false;
    for (size_t j = 0; j < num_aggs; ++j) {
      if (have[j]) {
        continue;
      }
      const std::string& agg = config_.aggregator_names[j];
      net::Writer w;
      w.WriteU32(static_cast<uint32_t>(round));
      w.WriteBytes(channels_.at(agg).Seal(payloads[j], rng_));
      if (endpoint_->Send(agg, kRoundUpload, w.Take())) {
        any_reachable = true;
      }
    }
    if (!any_reachable) {
      // Every aggregator we still need is gone. That is terminal when they were shut
      // down — but transient when one crashed and the job driver is mid-revive (its
      // endpoint only reappears once the replacement starts). Tolerate a few
      // consecutive all-unreachable passes before declaring the round skipped.
      if (++unreachable_streak >= 3 || endpoint_->closed()) {
        break;
      }
      int sleep_ms = std::min(config_.retry.TimeoutForAttempt(attempt),
                              MsUntil(overall_deadline));
      if (sleep_ms == 0) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      continue;
    }
    unreachable_streak = 0;
    Clock::time_point slice_deadline =
        Clock::now() +
        std::chrono::milliseconds(config_.retry.TimeoutForAttempt(attempt));
    if (slice_deadline > overall_deadline) {
      slice_deadline = overall_deadline;
    }
    while (received < num_aggs) {
      int wait_ms = MsUntil(slice_deadline);
      if (wait_ms == 0) {
        break;
      }
      std::optional<net::Message> m = endpoint_->ReceiveTypeFor(kRoundResult, wait_ms);
      if (!m.has_value()) {
        if (endpoint_->closed()) {
          return;
        }
        break;  // slice expired — retransmit to the silent aggregators
      }
      auto it = std::find(config_.aggregator_names.begin(),
                          config_.aggregator_names.end(), m->from);
      if (it == config_.aggregator_names.end()) {
        LOG_WARNING << name() << ": round result from unknown aggregator " << m->from;
        continue;
      }
      size_t j = static_cast<size_t>(it - config_.aggregator_names.begin());
      net::Reader r(m->payload);
      int result_round = static_cast<int>(r.ReadU32());
      if (result_round != round) {
        LOG_DEBUG << name() << ": stale round " << result_round << " result from "
                  << m->from << " — ignored";
        continue;
      }
      if (have[j]) {
        continue;  // duplicate (a re-served result we already decoded)
      }
      std::optional<Bytes> payload = channels_.at(m->from).Open(r.ReadBytes());
      if (!payload.has_value()) {
        LOG_WARNING << name() << ": failed to open aggregated fragment from " << m->from;
        continue;
      }
      if (config_.use_paillier) {
        std::vector<crypto::BigUint> ct = fl::DeserializeCiphertexts(*payload);
        size_t fragment_len = static_cast<size_t>(
            transform_->config().enable_partition
                ? transform_->mapper().PartitionSize(static_cast<int>(j))
                : static_cast<int64_t>(global_params_.size()));
        aggregated[j] = paillier_codec_->DecryptSum(ct, config_.paillier->priv,
                                                    fragment_len, config_.num_parties);
        float inv = 1.0f / static_cast<float>(config_.num_parties);
        for (auto& v : aggregated[j]) {
          v *= inv;
        }
      } else {
        aggregated[j] = fl::DeserializeUpdate(*payload).values;
      }
      have[j] = true;
      ++received;
    }
    if (Clock::now() >= overall_deadline) {
      break;
    }
  }

  if (received < num_aggs) {
    // Graceful degradation: one or more aggregators stayed silent all the way to the
    // collection deadline. Skip the round — keep the last synchronized params — and
    // keep going; the observer records the absence.
    std::vector<std::string> silent;
    for (size_t j = 0; j < num_aggs; ++j) {
      if (!have[j]) {
        silent.push_back(config_.aggregator_names[j]);
      }
    }
    LOG_WARNING << name() << ": skipping round " << round << " (" << silent.size()
                << " aggregator(s) unresponsive)";
    if (!config_.observer.empty()) {
      net::Writer w;
      w.WriteU32(static_cast<uint32_t>(round));
      w.WriteU32(static_cast<uint32_t>(silent.size()));
      for (const std::string& agg : silent) {
        w.WriteString(agg);
      }
      endpoint_->Send(config_.observer, kPartyRoundSkipped, w.Take());
    }
    return;
  }

  double result_seconds = result_watch.ElapsedSeconds();
  double upload_rtt_seconds = rtt_watch.ElapsedSeconds();

  // --- Trans^-1: un-shuffle + merge, then synchronize the local model ---
  Stopwatch invert_watch;
  std::vector<float> merged = transform_->Invert(aggregated, static_cast<uint64_t>(round));
  double invert_seconds = invert_watch.ElapsedSeconds() + result_seconds;

  if (config_.train.kind == fl::TrainConfig::UpdateKind::kGradient) {
    for (size_t i = 0; i < global_params_.size(); ++i) {
      global_params_[i] -= config_.train.lr * merged[i];
    }
  } else {
    global_params_ = std::move(merged);
  }

  // --- timing report + (reporter only) the merged global model for evaluation ---
  if (!config_.observer.empty()) {
    net::Writer w;
    w.WriteU32(static_cast<uint32_t>(round));
    w.WriteDouble(local.train_seconds);
    w.WriteDouble(transform_seconds + invert_seconds);
    w.WriteU64(upload_bytes_max);
    w.WriteDouble(upload_rtt_seconds);
    endpoint_->Send(config_.observer, kPartyTiming, w.Take());
    if (config_.is_reporter) {
      net::Writer wr;
      wr.WriteU32(static_cast<uint32_t>(round));
      wr.WriteFloatVector(global_params_);
      endpoint_->Send(config_.observer, kPartyReport, wr.Take());
    }
  }
}

}  // namespace deta::core
