#include "core/deta_party.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"
#include "common/logging.h"
#include "common/sim_clock.h"
#include "common/telemetry.h"
#include "net/codec.h"

namespace deta::core {

namespace {
using Clock = std::chrono::steady_clock;
constexpr int kTickMs = 50;

int MsUntil(Clock::time_point deadline) {
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                    Clock::now());
  return static_cast<int>(std::max<int64_t>(0, left.count()));
}
}  // namespace

DetaParty::DetaParty(std::unique_ptr<fl::Party> local, DetaPartyConfig config,
                     std::shared_ptr<const Transform> transform, net::MessageBus& bus,
                     crypto::SecureRng rng)
    : local_(std::move(local)),
      config_(std::move(config)),
      transform_(std::move(transform)),
      bus_(bus),
      rng_(std::move(rng)) {
  endpoint_ = bus_.CreateEndpoint(local_->name());
  global_params_ = config_.initial_params;
  DETA_CHECK_EQ(static_cast<int64_t>(global_params_.size()), local_->ParameterCount());
  if (!config_.fetch_from_key_broker) {
    DETA_CHECK_MSG(transform_ != nullptr, "no transform and key-broker fetch disabled");
  }
  if (transform_ != nullptr) {
    DETA_CHECK_EQ(config_.aggregator_names.size(),
                  static_cast<size_t>(transform_->num_partitions()));
  }
  if (config_.use_paillier) {
    DETA_CHECK(config_.paillier.has_value());
    paillier_codec_ = std::make_unique<fl::PaillierVectorCodec>(
        config_.paillier->pub, config_.num_parties, config_.paillier_lane_bits);
  }
}

DetaParty::~DetaParty() { Join(); }

void DetaParty::Start() {
  thread_ = std::thread([this] { Run(); });
}

void DetaParty::Join() {
  if (thread_.joinable()) {
    thread_.join();
  }
}

bool DetaParty::SetupChannels() {
  // Fetch the shared transform material from the trusted key broker first: the mapper
  // seed and the permutation key exist only in participant-controlled domains.
  if (config_.fetch_from_key_broker) {
    std::optional<TransformMaterial> material = FetchTransformMaterial(
        *endpoint_, config_.key_broker_public, rng_, config_.retry);
    if (!material.has_value()) {
      return false;
    }
    transform_ = material->BuildTransform();
    if (config_.aggregator_names.size() !=
        static_cast<size_t>(transform_->num_partitions())) {
      LOG_WARNING << name() << ": broker material partition count mismatch";
      return false;
    }
  }
  // Verify, then register with *all* aggregators (the paper's precondition for joining
  // training: no update is ever shared with an unverified aggregator).
  for (const std::string& agg : config_.aggregator_names) {
    auto token = config_.token_registry.find(agg);
    if (token == config_.token_registry.end()) {
      LOG_WARNING << name() << ": no attestation token on record for " << agg;
      return false;
    }
    if (!VerifyAggregator(*endpoint_, agg, token->second, rng_, config_.retry)) {
      return false;
    }
    std::optional<net::SecureChannel> channel = RegisterWithAggregator(
        *endpoint_, agg, token->second, rng_, config_.retry);
    if (!channel.has_value()) {
      return false;
    }
    channels_.emplace(agg, std::move(*channel));
  }
  return true;
}

void DetaParty::Run() {
  setup_ok_ = SetupChannels();
  endpoint_->Send(config_.observer, kPartyReady, Bytes{setup_ok_ ? uint8_t{1} : uint8_t{0}});
  if (!setup_ok_) {
    return;
  }
  int last_round = 0;
  // Exit notice: tells every aggregator this party needs nothing more, so draining
  // aggregators can stop early. Best-effort — a lost notice just means the aggregator
  // waits out its drain quiet period.
  auto announce_done = [this] {
    for (const std::string& agg : config_.aggregator_names) {
      endpoint_->Send(agg, kPartyDone, {});
    }
  };
  Clock::time_point idle_deadline =
      Clock::now() + std::chrono::milliseconds(config_.idle_timeout_ms);
  for (;;) {
    if (config_.rounds > 0 && last_round >= config_.rounds) {
      announce_done();
      return;  // final round done — do not depend on the shutdown message arriving
    }
    std::optional<net::Message> m = endpoint_->ReceiveFor(kTickMs);
    if (!m.has_value()) {
      if (endpoint_->closed()) {
        return;
      }
      if (Clock::now() >= idle_deadline) {
        LOG_WARNING << name() << ": no traffic for " << config_.idle_timeout_ms
                    << "ms — giving up";
        return;
      }
      continue;
    }
    idle_deadline = Clock::now() + std::chrono::milliseconds(config_.idle_timeout_ms);
    if (m->type == kShutdown) {
      announce_done();
      return;
    }
    if (m->type == kRoundBegin) {
      net::Reader r(m->payload);
      int round = static_cast<int>(r.ReadU32());
      if (round <= last_round) {
        continue;  // retransmitted notice for a round we already ran
      }
      RunRound(round);
      last_round = round;
    } else if (m->type == kRoundResult) {
      LOG_DEBUG << name() << ": late round result between rounds — ignored";
    } else {
      LOG_WARNING << name() << ": unexpected message type " << m->type;
    }
  }
}

void DetaParty::RunRound(int round) {
  telemetry::Span span("core.deta_party.round");
  DETA_COUNTER("core.deta_party.rounds").Increment();
  // --- local training ---
  fl::Party::LocalResult local = local_->RunLocalRound(global_params_, round);

  // --- Trans: partition + shuffle (+ Paillier encryption when enabled) ---
  Stopwatch transform_watch;
  std::vector<std::vector<float>> fragments =
      transform_->Apply(local.update.values, static_cast<uint64_t>(round));
  std::vector<Bytes> payloads(fragments.size());
  uint64_t upload_bytes_max = 0;
  for (size_t j = 0; j < fragments.size(); ++j) {
    if (config_.use_paillier) {
      payloads[j] = fl::SerializeCiphertexts(paillier_codec_->Encrypt(fragments[j], rng_));
    } else {
      fl::ModelUpdate fragment_update;
      fragment_update.values = std::move(fragments[j]);
      fragment_update.weight = local.update.weight;
      payloads[j] = fl::SerializeUpdate(fragment_update);
    }
    upload_bytes_max = std::max<uint64_t>(upload_bytes_max, payloads[j].size());
  }
  double transform_seconds = transform_watch.ElapsedSeconds();

  // --- upload Trans(LU[P]) fragment j to aggregator j, collect AU[A_j] back ---
  // Upload and collection are one retry loop: each attempt (re-)sends the fragment to
  // every aggregator whose result is still missing, then waits one backoff slice for
  // results. Re-sends are re-sealed so the aggregator's replay window accepts them; the
  // aggregator answers a re-send for an already-aggregated round with the cached result.
  // The loop is bounded by result_timeout_ms, not by the retry budget: an aggregator
  // that is merely slow (still waiting on other parties' uploads) is indistinguishable
  // from a lossy link, and giving up after a handful of retransmissions would turn
  // benign scheduling skew into spurious round skips. Retransmission cadence plateaus
  // at the policy's capped timeout.
  //
  // CPU-time stopwatch: counts the (potentially expensive, e.g. Paillier) result
  // processing but not the blocking waits on the network.
  Stopwatch result_watch;
  size_t num_aggs = payloads.size();
  std::vector<std::vector<float>> aggregated(num_aggs);
  std::vector<bool> have(num_aggs, false);
  size_t received = 0;
  Clock::time_point overall_deadline =
      Clock::now() + std::chrono::milliseconds(config_.result_timeout_ms > 0
                                                   ? config_.result_timeout_ms
                                                   : (1 << 30));
  for (int attempt = 0; received < num_aggs; ++attempt) {
    bool any_reachable = false;
    for (size_t j = 0; j < num_aggs; ++j) {
      if (have[j]) {
        continue;
      }
      const std::string& agg = config_.aggregator_names[j];
      net::Writer w;
      w.WriteU32(static_cast<uint32_t>(round));
      w.WriteBytes(channels_.at(agg).Seal(payloads[j], rng_));
      if (endpoint_->Send(agg, kRoundUpload, w.Take())) {
        any_reachable = true;
      }
    }
    if (!any_reachable) {
      break;  // every aggregator we still need is gone — skip, don't wait out the clock
    }
    Clock::time_point slice_deadline =
        Clock::now() +
        std::chrono::milliseconds(config_.retry.TimeoutForAttempt(attempt));
    if (slice_deadline > overall_deadline) {
      slice_deadline = overall_deadline;
    }
    while (received < num_aggs) {
      int wait_ms = MsUntil(slice_deadline);
      if (wait_ms == 0) {
        break;
      }
      std::optional<net::Message> m = endpoint_->ReceiveTypeFor(kRoundResult, wait_ms);
      if (!m.has_value()) {
        if (endpoint_->closed()) {
          return;
        }
        break;  // slice expired — retransmit to the silent aggregators
      }
      auto it = std::find(config_.aggregator_names.begin(),
                          config_.aggregator_names.end(), m->from);
      if (it == config_.aggregator_names.end()) {
        LOG_WARNING << name() << ": round result from unknown aggregator " << m->from;
        continue;
      }
      size_t j = static_cast<size_t>(it - config_.aggregator_names.begin());
      net::Reader r(m->payload);
      int result_round = static_cast<int>(r.ReadU32());
      if (result_round != round) {
        LOG_DEBUG << name() << ": stale round " << result_round << " result from "
                  << m->from << " — ignored";
        continue;
      }
      if (have[j]) {
        continue;  // duplicate (a re-served result we already decoded)
      }
      std::optional<Bytes> payload = channels_.at(m->from).Open(r.ReadBytes());
      if (!payload.has_value()) {
        LOG_WARNING << name() << ": failed to open aggregated fragment from " << m->from;
        continue;
      }
      if (config_.use_paillier) {
        std::vector<crypto::BigUint> ct = fl::DeserializeCiphertexts(*payload);
        size_t fragment_len = static_cast<size_t>(
            transform_->config().enable_partition
                ? transform_->mapper().PartitionSize(static_cast<int>(j))
                : static_cast<int64_t>(global_params_.size()));
        aggregated[j] = paillier_codec_->DecryptSum(ct, config_.paillier->priv,
                                                    fragment_len, config_.num_parties);
        float inv = 1.0f / static_cast<float>(config_.num_parties);
        for (auto& v : aggregated[j]) {
          v *= inv;
        }
      } else {
        aggregated[j] = fl::DeserializeUpdate(*payload).values;
      }
      have[j] = true;
      ++received;
    }
    if (Clock::now() >= overall_deadline) {
      break;
    }
  }

  if (received < num_aggs) {
    // Graceful degradation: one or more aggregators stayed silent all the way to the
    // collection deadline. Skip the round — keep the last synchronized params — and
    // keep going; the observer records the absence.
    std::vector<std::string> silent;
    for (size_t j = 0; j < num_aggs; ++j) {
      if (!have[j]) {
        silent.push_back(config_.aggregator_names[j]);
      }
    }
    LOG_WARNING << name() << ": skipping round " << round << " (" << silent.size()
                << " aggregator(s) unresponsive)";
    if (!config_.observer.empty()) {
      net::Writer w;
      w.WriteU32(static_cast<uint32_t>(round));
      w.WriteU32(static_cast<uint32_t>(silent.size()));
      for (const std::string& agg : silent) {
        w.WriteString(agg);
      }
      endpoint_->Send(config_.observer, kPartyRoundSkipped, w.Take());
    }
    return;
  }

  double result_seconds = result_watch.ElapsedSeconds();

  // --- Trans^-1: un-shuffle + merge, then synchronize the local model ---
  Stopwatch invert_watch;
  std::vector<float> merged = transform_->Invert(aggregated, static_cast<uint64_t>(round));
  double invert_seconds = invert_watch.ElapsedSeconds() + result_seconds;

  if (config_.train.kind == fl::TrainConfig::UpdateKind::kGradient) {
    for (size_t i = 0; i < global_params_.size(); ++i) {
      global_params_[i] -= config_.train.lr * merged[i];
    }
  } else {
    global_params_ = std::move(merged);
  }

  // --- timing report + (reporter only) the merged global model for evaluation ---
  if (!config_.observer.empty()) {
    net::Writer w;
    w.WriteU32(static_cast<uint32_t>(round));
    w.WriteDouble(local.train_seconds);
    w.WriteDouble(transform_seconds + invert_seconds);
    w.WriteU64(upload_bytes_max);
    endpoint_->Send(config_.observer, kPartyTiming, w.Take());
    if (config_.is_reporter) {
      net::Writer wr;
      wr.WriteU32(static_cast<uint32_t>(round));
      wr.WriteFloatVector(global_params_);
      endpoint_->Send(config_.observer, kPartyReport, wr.Take());
    }
  }
}

}  // namespace deta::core
