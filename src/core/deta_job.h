// End-to-end DeTA training job — the full Figure 1 life cycle:
//   (1)-(2) launch SEV platforms and paused aggregator CVMs; the attestation proxy
//           verifies each against the RAS and provisions auth tokens,
//   (3)     parties verify all aggregators (challenge/response) and register,
//   (4)     inter-aggregator synchronization (initiator/follower round protocol),
//   (5)-(6) per-round Trans / upload / aggregate / download / Trans^-1.
//
// Aggregators and parties run on real threads and communicate only via the message bus.
// The job's main thread acts as the evaluation observer: it receives one party's merged
// global model per round (all parties hold identical copies) plus timing reports, from
// which it produces the same loss/accuracy/latency metrics as the FFL baseline, making
// the Figure 5-7 comparisons apples-to-apples.
#ifndef DETA_CORE_DETA_JOB_H_
#define DETA_CORE_DETA_JOB_H_

#include <memory>

#include "cc/attestation_proxy.h"
#include "core/deta_aggregator.h"
#include "core/deta_party.h"
#include "core/key_broker.h"
#include "core/transform.h"
#include "fl/training_job.h"

namespace deta::core {

struct DetaJobConfig {
  fl::JobConfig base;               // rounds, train config, algorithm, paillier, latency
  int num_aggregators = 3;
  std::vector<double> proportions;  // optional custom partition proportions
  bool enable_partition = true;
  bool enable_shuffle = true;
  size_t permutation_key_bits = 128;
  // Distribute the transform material through the trusted key-broker protocol (§4.2)
  // instead of handing parties a pre-built transform. Default on: this is the paper's
  // deployment shape; turning it off removes the broker round-trip from setup.
  bool use_key_broker = true;
};

class DetaJob {
 public:
  DetaJob(DetaJobConfig config, std::vector<std::unique_ptr<fl::Party>> parties,
          const fl::ModelFactory& global_factory, data::Dataset eval);
  ~DetaJob();

  // Runs the full life cycle; returns per-round metrics.
  std::vector<fl::RoundMetrics> Run();

  // Post-run access for the security experiments: the aggregator CVMs (breachable) and
  // the transform (party-held secret state).
  const std::vector<std::shared_ptr<cc::Cvm>>& aggregator_cvms() const { return cvms_; }
  const Transform& transform() const { return *transform_; }
  const std::vector<float>& final_params() const { return final_params_; }
  // One-time setup cost (platform attestation + token provisioning), reported separately
  // from the per-round training latency, matching the paper's measurement boundary.
  double attestation_seconds() const { return attestation_seconds_; }

 private:
  DetaJobConfig config_;
  std::unique_ptr<nn::Model> global_model_;
  data::Dataset eval_;

  net::MessageBus bus_;
  std::unique_ptr<cc::RemoteAttestationService> ras_;
  std::vector<std::unique_ptr<cc::SevPlatform>> platforms_;
  std::vector<std::shared_ptr<cc::Cvm>> cvms_;
  std::unique_ptr<cc::AttestationProxy> proxy_;
  std::unique_ptr<KeyBroker> key_broker_;
  std::shared_ptr<const Transform> transform_;
  std::vector<std::unique_ptr<DetaAggregator>> aggregators_;
  std::vector<std::unique_ptr<DetaParty>> deta_parties_;
  std::vector<float> final_params_;
  double attestation_seconds_ = 0.0;
};

}  // namespace deta::core

#endif  // DETA_CORE_DETA_JOB_H_
