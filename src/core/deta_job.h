// End-to-end DeTA training job — the full Figure 1 life cycle:
//   (1)-(2) launch SEV platforms and paused aggregator CVMs; the attestation proxy
//           verifies each against the RAS and provisions auth tokens,
//   (3)     parties verify all aggregators (challenge/response) and register,
//   (4)     inter-aggregator synchronization (initiator/follower round protocol),
//   (5)-(6) per-round Trans / upload / aggregate / download / Trans^-1.
//
// Aggregators and parties run on real threads and communicate only via the message bus.
// The job's main thread acts as the evaluation observer: it receives one party's merged
// global model per round (all parties hold identical copies) plus timing reports, from
// which it produces the same loss/accuracy/latency metrics as the FFL baseline, making
// the Figure 5-7 comparisons apples-to-apples.
#ifndef DETA_CORE_DETA_JOB_H_
#define DETA_CORE_DETA_JOB_H_

#include <memory>

#include "cc/attestation_proxy.h"
#include "core/deta_aggregator.h"
#include "core/deta_party.h"
#include "core/key_broker.h"
#include "core/transform.h"
#include "fl/job_api.h"
#include "persist/state_store.h"

namespace deta::core {

// Deployment shape of the decentralized aggregation layer. Execution knobs shared with
// the FFL baseline (rounds, training, algorithm, Paillier, latency, seed, threads) come
// from fl::ExecutionOptions instead.
struct DetaOptions {
  int num_aggregators = 3;
  std::vector<double> proportions;  // optional custom partition proportions
  bool enable_partition = true;
  bool enable_shuffle = true;
  size_t permutation_key_bits = 128;
  // Distribute the transform material through the trusted key-broker protocol (§4.2)
  // instead of handing parties a pre-built transform. Default on: this is the paper's
  // deployment shape; turning it off removes the broker round-trip from setup.
  bool use_key_broker = true;
  // Aggregate as soon as this many party fragments arrive (0 = all parties).
  int quorum = 0;
  // Minimum fragments required when an aggregator's round deadline expires; parties
  // missing at that point are recorded as dropouts for the round. 0 = every party must
  // arrive (an absence at the deadline is a quorum failure).
  int min_quorum = 0;
};

class DetaJob {
 public:
  DetaJob(fl::ExecutionOptions options, DetaOptions deta,
          std::vector<std::unique_ptr<fl::Party>> parties,
          const fl::ModelFactory& global_factory, data::Dataset eval);
  ~DetaJob();

  // Runs the full life cycle; returns per-round metrics, the final global parameters,
  // and setup time (platform attestation + token provisioning — one-time cost reported
  // separately from round latency, matching the paper's measurement boundary).
  fl::JobResult Run();

  // Post-run access for the security experiments: the aggregator CVMs (breachable) and
  // the transform (party-held secret state).
  const std::vector<std::shared_ptr<cc::Cvm>>& aggregator_cvms() const { return cvms_; }
  const Transform& transform() const { return *transform_; }
  // Post-run access for the fault-injection tests: delivered/dropped traffic counters.
  const net::MessageBus& bus() const { return bus_; }

 private:
  // Fans out shutdown to every aggregator and party and stops the broker, so failure
  // paths leave no thread waiting on a message that will never come.
  void ShutdownAll(net::Endpoint& observer);
  // Crash-fault orchestration: detects roles whose injected crash fired and replaces
  // each with a new instance resumed from its latest snapshot. The revived role rejoins
  // the in-flight run (re-registering where needed); no-op when nothing crashed.
  void ReviveCrashedRoles(net::Endpoint& observer, bool job_started);
  // Binds a job snapshot to the options that wrote it, so a resume under a different
  // topology/seed is rejected instead of silently diverging. |num_parties| is passed in
  // because the digest is first needed before the party list is materialized.
  Bytes ConfigDigest(size_t num_parties) const;
  // Writes the job-level snapshot (global params + observer accumulators) for round |r|.
  void SaveJobState(int round, const std::vector<float>& params, double cumulative);

  fl::ExecutionOptions options_;
  DetaOptions deta_;
  std::unique_ptr<nn::Model> global_model_;
  data::Dataset eval_;

  net::MessageBus bus_;
  std::unique_ptr<cc::RemoteAttestationService> ras_;
  std::vector<std::unique_ptr<cc::SevPlatform>> platforms_;
  std::vector<std::shared_ptr<cc::Cvm>> cvms_;
  std::unique_ptr<cc::AttestationProxy> proxy_;
  std::unique_ptr<KeyBroker> key_broker_;
  std::shared_ptr<const Transform> transform_;
  std::vector<std::unique_ptr<DetaAggregator>> aggregators_;
  std::vector<std::unique_ptr<DetaParty>> deta_parties_;
  double attestation_seconds_ = 0.0;

  // --- durability / crash-fault orchestration state ---
  std::unique_ptr<persist::StateStore> store_;
  // Retained construction inputs so crashed roles can be rebuilt identically.
  TransformMaterial material_;
  crypto::EcKeyPair broker_identity_;
  std::vector<AggregatorConfig> agg_configs_;
  std::vector<DetaPartyConfig> party_configs_;
  // Transform handed to (re)constructed parties: null in key-broker mode (parties build
  // it from broker-served or snapshot-restored material).
  std::shared_ptr<const Transform> party_transform_;
  // Reseeded from setup entropy at the end of construction; the placeholder seed is
  // never drawn from (SecureRng has no default constructor).
  crypto::SecureRng revive_rng_{StringToBytes("deta-job-revive-placeholder")};
  // Whole-job resume (checkpoint.resume): round of the job snapshot all roles restore
  // to, plus the observer accumulators restored from it.
  int resume_round_ = 0;
  std::vector<float> resume_params_;
  double resume_cumulative_ = 0.0;
  bool resume_failed_ = false;
  std::string resume_error_;
};

}  // namespace deta::core

#endif  // DETA_CORE_DETA_JOB_H_
