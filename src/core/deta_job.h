// End-to-end DeTA training job — the full Figure 1 life cycle:
//   (1)-(2) launch SEV platforms and paused aggregator CVMs; the attestation proxy
//           verifies each against the RAS and provisions auth tokens,
//   (3)     parties verify all aggregators (challenge/response) and register,
//   (4)     inter-aggregator synchronization (initiator/follower round protocol),
//   (5)-(6) per-round Trans / upload / aggregate / download / Trans^-1.
//
// Aggregators and parties run on real threads and communicate only via the message bus.
// The job's main thread acts as the evaluation observer: it receives one party's merged
// global model per round (all parties hold identical copies) plus timing reports, from
// which it produces the same loss/accuracy/latency metrics as the FFL baseline, making
// the Figure 5-7 comparisons apples-to-apples.
#ifndef DETA_CORE_DETA_JOB_H_
#define DETA_CORE_DETA_JOB_H_

#include <memory>

#include "cc/attestation_proxy.h"
#include "core/deta_aggregator.h"
#include "core/deta_party.h"
#include "core/key_broker.h"
#include "core/transform.h"
#include "fl/job_api.h"
#include "net/message_bus.h"
#include "persist/state_store.h"

namespace deta::core {

// Deployment shape of the decentralized aggregation layer. Execution knobs shared with
// the FFL baseline (rounds, training, algorithm, Paillier, latency, seed, threads) come
// from fl::ExecutionOptions instead.
struct DetaOptions {
  int num_aggregators = 3;
  std::vector<double> proportions;  // optional custom partition proportions
  bool enable_partition = true;
  bool enable_shuffle = true;
  size_t permutation_key_bits = 128;
  // Distribute the transform material through the trusted key-broker protocol (§4.2)
  // instead of handing parties a pre-built transform. Default on: this is the paper's
  // deployment shape; turning it off removes the broker round-trip from setup.
  bool use_key_broker = true;
  // Aggregate as soon as this many party fragments arrive (0 = all parties).
  int quorum = 0;
  // Minimum fragments required when an aggregator's round deadline expires; parties
  // missing at that point are recorded as dropouts for the round. 0 = every party must
  // arrive (an absence at the deadline is a quorum failure).
  int min_quorum = 0;
  // Party i delays its setup by i * this many ms. At 1k-10k-party scale, launching
  // every EC handshake simultaneously backs the aggregators up past the retransmission
  // timeouts, and the retransmissions themselves then multiply the backlog; pacing the
  // starts keeps the handshake queues short. 0 = all parties start at once.
  int party_start_stagger_ms = 0;
};

// Where this DetaJob instance's roles run. The default (all fields empty) is the
// classic single-process deployment: the job owns an in-proc MessageBus and hosts every
// role. Multi-process deployments give each process the same options/seed plus a
// Transport backed by real sockets and the subset of roles it hosts; the setup RNG draw
// order is preserved across processes, so shared material (transform, Paillier keys,
// auth tokens) derives identically everywhere.
struct DetaDeployment {
  // External transport (not owned). Null = job-owned in-proc MessageBus.
  net::Transport* transport = nullptr;
  // Role names this process hosts: "observer", KeyBroker::kEndpointName, aggregator
  // names ("aggregator0"...), party names. Empty = every role is local.
  std::vector<std::string> local_roles;
  // Full party roster for multi-process jobs, in global order; |parties| then holds
  // trainers for the local subset only. Empty = the roster is exactly |parties|.
  std::vector<std::string> party_names;
};

class DetaJob {
 public:
  DetaJob(fl::ExecutionOptions options, DetaOptions deta,
          std::vector<std::unique_ptr<fl::Party>> parties,
          const fl::ModelFactory& global_factory, data::Dataset eval,
          DetaDeployment deployment = {});
  ~DetaJob();

  // Runs the full life cycle; returns per-round metrics, the final global parameters,
  // and setup time (platform attestation + token provisioning — one-time cost reported
  // separately from round latency, matching the paper's measurement boundary).
  fl::JobResult Run();

  // Post-run access for the security experiments: the aggregator CVMs (breachable) and
  // the transform (party-held secret state).
  const std::vector<std::shared_ptr<cc::Cvm>>& aggregator_cvms() const { return cvms_; }
  const Transform& transform() const { return *transform_; }
  // Post-run access for the fault-injection tests: delivered/dropped traffic counters.
  // Only meaningful for jobs using the built-in in-proc transport.
  const net::MessageBus& bus() const { return bus_; }

 private:
  // True when |role| runs in this process (deployment.local_roles empty = all local).
  bool RoleIsLocal(const std::string& role) const;
  // Starts local role threads; the observer path then runs the measurement loop while
  // worker processes just wait for their roles to finish.
  void StartLocalRoles();
  fl::JobResult RunWorker();
  // Stops the key broker: directly when local, via a kShutdown message otherwise.
  void StopBroker(net::Endpoint& observer);
  // Fans out shutdown to every aggregator and party and stops the broker, so failure
  // paths leave no thread waiting on a message that will never come.
  void ShutdownAll(net::Endpoint& observer);
  // Crash-fault orchestration: detects roles whose injected crash fired and replaces
  // each with a new instance resumed from its latest snapshot. The revived role rejoins
  // the in-flight run (re-registering where needed); no-op when nothing crashed.
  void ReviveCrashedRoles(net::Endpoint& observer, bool job_started);
  // Binds a job snapshot to the options that wrote it, so a resume under a different
  // topology/seed is rejected instead of silently diverging. |num_parties| is passed in
  // because the digest is first needed before the party list is materialized.
  Bytes ConfigDigest(size_t num_parties) const;
  // Writes the job-level snapshot (global params + observer accumulators) for round |r|.
  void SaveJobState(int round, const std::vector<float>& params, double cumulative);

  fl::ExecutionOptions options_;
  DetaOptions deta_;
  DetaDeployment deployment_;
  std::unique_ptr<nn::Model> global_model_;
  data::Dataset eval_;

  net::MessageBus bus_;
  // The transport every role endpoint is created on: &bus_ or deployment_.transport.
  net::Transport* transport_ = nullptr;
  // Full rosters (identical in every process of a deployment); the local object
  // vectors below hold only this process's subset.
  std::vector<std::string> aggregator_names_;
  std::vector<std::string> party_names_;
  bool observer_local_ = true;
  bool broker_local_ = true;
  bool remote_broker_stopped_ = false;
  std::unique_ptr<cc::RemoteAttestationService> ras_;
  std::vector<std::unique_ptr<cc::SevPlatform>> platforms_;
  std::vector<std::shared_ptr<cc::Cvm>> cvms_;
  std::unique_ptr<cc::AttestationProxy> proxy_;
  std::unique_ptr<KeyBroker> key_broker_;
  std::shared_ptr<const Transform> transform_;
  std::vector<std::unique_ptr<DetaAggregator>> aggregators_;
  std::vector<std::unique_ptr<DetaParty>> deta_parties_;
  double attestation_seconds_ = 0.0;

  // --- durability / crash-fault orchestration state ---
  std::unique_ptr<persist::StateStore> store_;
  // Retained construction inputs so crashed roles can be rebuilt identically.
  TransformMaterial material_;
  crypto::EcKeyPair broker_identity_;
  std::vector<AggregatorConfig> agg_configs_;
  std::vector<DetaPartyConfig> party_configs_;
  // Transform handed to (re)constructed parties: null in key-broker mode (parties build
  // it from broker-served or snapshot-restored material).
  std::shared_ptr<const Transform> party_transform_;
  // Reseeded from setup entropy at the end of construction; the placeholder seed is
  // never drawn from (SecureRng has no default constructor).
  crypto::SecureRng revive_rng_{StringToBytes("deta-job-revive-placeholder")};
  // Whole-job resume (checkpoint.resume): round of the job snapshot all roles restore
  // to, plus the observer accumulators restored from it.
  int resume_round_ = 0;
  std::vector<float> resume_params_;
  double resume_cumulative_ = 0.0;
  bool resume_failed_ = false;
  std::string resume_error_;
};

}  // namespace deta::core

#endif  // DETA_CORE_DETA_JOB_H_
