// Parameter-level data shuffling (paper §4.2): parties permute the parameters inside each
// partitioned update before upload. The permutation is seeded by the combination of a
// permutation key (from a trusted key-broker, shared only among parties) and a dynamic
// per-round training identifier, so it changes every round yet is identical across
// parties. Aggregation commutes with the permutation; data-reconstruction attacks do not.
//
// Recovering the original order without the key costs O(2^|key| * T) — the keyspace
// exhaustion the paper analyzes — because the permutation is derived from the key via a
// PRF (ChaCha20-based), not from the shuffled values themselves.
#ifndef DETA_CORE_SHUFFLER_H_
#define DETA_CORE_SHUFFLER_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/secret.h"

namespace deta::core {

class Shuffler {
 public:
  // |permutation_key| of any length; the paper's key-size security knob. |key_bits| in
  // [8, 8*key.size()] optionally truncates the effective key for the ablation bench.
  explicit Shuffler(Bytes permutation_key);

  // The permutation for (round, partition) as an index map: out[i] = in[perm[i]].
  std::vector<int64_t> PermutationFor(uint64_t round_id, int partition, int64_t size) const;

  // Applies / inverts the round's permutation on one fragment.
  std::vector<float> Shuffle(const std::vector<float>& fragment, uint64_t round_id,
                             int partition) const;
  std::vector<float> Unshuffle(const std::vector<float>& fragment, uint64_t round_id,
                               int partition) const;

 private:
  // deta-lint: secret — undoing the shuffle costs O(2^|key|) without it
  Secret<Bytes> key_;
};

// Generates a fresh permutation key of |bits| (trusted key-broker role).
Bytes GeneratePermutationKey(size_t bits, const Bytes& entropy);

}  // namespace deta::core

#endif  // DETA_CORE_SHUFFLER_H_
