#include "core/model_mapper.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "common/parallel.h"
#include "crypto/chacha20.h"

namespace deta::core {

ModelMapper::ModelMapper(int64_t total_params, const std::vector<double>& proportions,
                         const Bytes& shared_seed)
    : total_params_(total_params) {
  DETA_CHECK_GT(total_params, 0);
  DETA_CHECK(!proportions.empty());
  double sum = std::accumulate(proportions.begin(), proportions.end(), 0.0);
  DETA_CHECK_GT(sum, 0.0);

  // Cryptographically seeded permutation of all coordinate indices; contiguous slices of
  // the permutation become the partitions, so membership is uniform at random.
  std::vector<int64_t> order(static_cast<size_t>(total_params));
  std::iota(order.begin(), order.end(), 0);
  Bytes seed = shared_seed;
  seed.insert(seed.end(), {'m', 'a', 'p', 'p', 'e', 'r'});
  crypto::SecureRng rng(seed);
  for (size_t i = order.size(); i > 1; --i) {
    size_t j = static_cast<size_t>(rng.NextBelow(i));
    std::swap(order[i - 1], order[j]);
  }

  partition_indices_.resize(proportions.size());
  size_t start = 0;
  for (size_t p = 0; p < proportions.size(); ++p) {
    size_t count;
    if (p + 1 == proportions.size()) {
      count = order.size() - start;  // last partition absorbs rounding remainder
    } else {
      count = static_cast<size_t>(static_cast<double>(total_params) * proportions[p] / sum);
      count = std::min(count, order.size() - start);
    }
    partition_indices_[p].assign(order.begin() + static_cast<long>(start),
                                 order.begin() + static_cast<long>(start + count));
    // §4.1: fragments are "squeezed to occupy all empty slots in sequence" — membership is
    // random but relative order is preserved, so keep the indices ascending. (Any further
    // reordering is the shuffler's job, keyed separately.)
    std::sort(partition_indices_[p].begin(), partition_indices_[p].end());
    start += count;
  }
  DETA_CHECK_EQ(start, order.size());
}

ModelMapper ModelMapper::Uniform(int64_t total_params, int num_aggregators,
                                 const Bytes& shared_seed) {
  DETA_CHECK_GT(num_aggregators, 0);
  return ModelMapper(total_params,
                     std::vector<double>(static_cast<size_t>(num_aggregators),
                                         1.0 / num_aggregators),
                     shared_seed);
}

const std::vector<int64_t>& ModelMapper::PartitionIndices(int p) const {
  DETA_CHECK_GE(p, 0);
  DETA_CHECK_LT(static_cast<size_t>(p), partition_indices_.size());
  return partition_indices_[static_cast<size_t>(p)];
}

std::vector<std::vector<float>> ModelMapper::Partition(const std::vector<float>& flat) const {
  DETA_CHECK_EQ(static_cast<int64_t>(flat.size()), total_params_);
  std::vector<std::vector<float>> fragments(partition_indices_.size());
  for (size_t p = 0; p < partition_indices_.size(); ++p) {
    const auto& indices = partition_indices_[p];
    fragments[p].resize(indices.size());
    float* out = fragments[p].data();
    // Gather this partition's coordinates; chunks write disjoint slices of |out|.
    parallel::ParallelFor(0, static_cast<int64_t>(indices.size()), 1 << 15,
                          [&](int64_t lo, int64_t hi) {
                            for (int64_t i = lo; i < hi; ++i) {
                              out[i] = flat[static_cast<size_t>(
                                  indices[static_cast<size_t>(i)])];
                            }
                          });
  }
  return fragments;
}

std::vector<float> ModelMapper::Merge(const std::vector<std::vector<float>>& fragments) const {
  DETA_CHECK_EQ(fragments.size(), partition_indices_.size());
  std::vector<float> flat(static_cast<size_t>(total_params_));
  for (size_t p = 0; p < fragments.size(); ++p) {
    const auto& indices = partition_indices_[p];
    DETA_CHECK_EQ(fragments[p].size(), indices.size());
    const float* frag = fragments[p].data();
    // Scatter back into the flat vector; partition index sets are disjoint by
    // construction, as are chunks within one partition.
    parallel::ParallelFor(0, static_cast<int64_t>(indices.size()), 1 << 15,
                          [&](int64_t lo, int64_t hi) {
                            for (int64_t i = lo; i < hi; ++i) {
                              flat[static_cast<size_t>(indices[static_cast<size_t>(i)])] =
                                  frag[i];
                            }
                          });
  }
  return flat;
}

}  // namespace deta::core
