// The party-side Trans / Trans^-1 pipeline from Figure 1: partition by the shared model
// mapper, then shuffle each fragment with the round-keyed permutation. Both stages are
// index bijections, so coordinate-wise aggregation commutes with the transform — the
// formal basis for DeTA's "no utility loss" claim, asserted bit-exactly in the tests.
#ifndef DETA_CORE_TRANSFORM_H_
#define DETA_CORE_TRANSFORM_H_

#include <memory>

#include "core/model_mapper.h"
#include "core/shuffler.h"

namespace deta::core {

struct TransformConfig {
  bool enable_partition = true;
  bool enable_shuffle = true;
};

class Transform {
 public:
  // |mapper| and |shuffler| are shared across all parties of a training job.
  Transform(std::shared_ptr<const ModelMapper> mapper, std::shared_ptr<const Shuffler> shuffler,
            TransformConfig config);

  int num_partitions() const;

  // Trans(LU[P]) for one round: fragment f goes to aggregator f.
  std::vector<std::vector<float>> Apply(const std::vector<float>& flat,
                                        uint64_t round_id) const;
  // Trans^-1(AU[A_j]): un-shuffle each aggregated fragment and merge.
  std::vector<float> Invert(const std::vector<std::vector<float>>& fragments,
                            uint64_t round_id) const;

  const ModelMapper& mapper() const { return *mapper_; }
  const TransformConfig& config() const { return config_; }

 private:
  std::shared_ptr<const ModelMapper> mapper_;
  std::shared_ptr<const Shuffler> shuffler_;
  TransformConfig config_;
};

}  // namespace deta::core

#endif  // DETA_CORE_TRANSFORM_H_
