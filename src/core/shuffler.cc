#include "core/shuffler.h"

#include "common/check.h"
#include "common/parallel.h"
#include "crypto/chacha20.h"
#include "crypto/hmac.h"
#include "net/codec.h"

namespace deta::core {

Shuffler::Shuffler(Bytes permutation_key) : key_(std::move(permutation_key)) {
  DETA_CHECK_MSG(!key_.ExposeForCrypto().empty(), "empty permutation key");
}

std::vector<int64_t> Shuffler::PermutationFor(uint64_t round_id, int partition,
                                              int64_t size) const {
  // PRF(key, round || partition) seeds a deterministic Fisher-Yates. Every party derives
  // the identical permutation; nothing about it is inferable without the key.
  net::Writer w;
  w.WriteU64(round_id);
  w.WriteU32(static_cast<uint32_t>(partition));
  Bytes seed = crypto::HmacSha256(key_.ExposeForCrypto(), w.Take());
  crypto::SecureRng rng(seed);

  std::vector<int64_t> perm(static_cast<size_t>(size));
  for (int64_t i = 0; i < size; ++i) {
    perm[static_cast<size_t>(i)] = i;
  }
  for (size_t i = perm.size(); i > 1; --i) {
    size_t j = static_cast<size_t>(rng.NextBelow(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

std::vector<float> Shuffler::Shuffle(const std::vector<float>& fragment, uint64_t round_id,
                                     int partition) const {
  std::vector<int64_t> perm =
      PermutationFor(round_id, partition, static_cast<int64_t>(fragment.size()));
  std::vector<float> out(fragment.size());
  // Gather through the permutation: disjoint writes, so chunks parallelize. (Deriving the
  // permutation itself is a sequential Fisher-Yates and stays serial.)
  parallel::ParallelFor(0, static_cast<int64_t>(fragment.size()), 1 << 15,
                        [&](int64_t lo, int64_t hi) {
                          for (int64_t i = lo; i < hi; ++i) {
                            out[static_cast<size_t>(i)] =
                                fragment[static_cast<size_t>(perm[static_cast<size_t>(i)])];
                          }
                        });
  return out;
}

std::vector<float> Shuffler::Unshuffle(const std::vector<float>& fragment, uint64_t round_id,
                                       int partition) const {
  std::vector<int64_t> perm =
      PermutationFor(round_id, partition, static_cast<int64_t>(fragment.size()));
  std::vector<float> out(fragment.size());
  // Scatter through the permutation: perm is a bijection, so writes are disjoint.
  parallel::ParallelFor(0, static_cast<int64_t>(fragment.size()), 1 << 15,
                        [&](int64_t lo, int64_t hi) {
                          for (int64_t i = lo; i < hi; ++i) {
                            out[static_cast<size_t>(perm[static_cast<size_t>(i)])] =
                                fragment[static_cast<size_t>(i)];
                          }
                        });
  return out;
}

Bytes GeneratePermutationKey(size_t bits, const Bytes& entropy) {
  DETA_CHECK_GE(bits, 8u);
  crypto::SecureRng rng(entropy);
  return rng.NextBytes((bits + 7) / 8);
}

}  // namespace deta::core
