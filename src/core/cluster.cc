#include "core/cluster.h"

#include <signal.h>
#include <spawn.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/check.h"
#include "common/logging.h"
#include "common/telemetry.h"
#include "net/tcp_transport.h"

extern char** environ;

namespace deta::core {

std::vector<std::string> ClusterSpec::PartyNames() const {
  std::vector<std::string> names;
  for (int i = 0; i < parties; ++i) {
    names.push_back("party" + std::to_string(i));
  }
  return names;
}

std::vector<std::string> ClusterSpec::AggregatorNames() const {
  std::vector<std::string> names;
  for (int j = 0; j < aggregators; ++j) {
    names.push_back("aggregator" + std::to_string(j));
  }
  return names;
}

std::vector<std::string> ClusterSpec::ChildRoles() const {
  std::vector<std::string> roles = AggregatorNames();
  for (const std::string& p : PartyNames()) {
    roles.push_back(p);
  }
  if (use_key_broker) {
    roles.push_back(KeyBroker::kEndpointName);
  }
  return roles;
}

std::vector<std::string> ClusterSpec::ToArgs() const {
  auto arg = [](const std::string& key, const std::string& value) {
    return "--" + key + "=" + value;
  };
  std::vector<std::string> args;
  args.push_back(arg("parties", std::to_string(parties)));
  args.push_back(arg("aggregators", std::to_string(aggregators)));
  args.push_back(arg("rounds", std::to_string(rounds)));
  args.push_back(arg("seed", std::to_string(seed)));
  args.push_back(arg("algorithm", algorithm));
  args.push_back(arg("paillier", use_paillier ? "1" : "0"));
  args.push_back(arg("key-broker", use_key_broker ? "1" : "0"));
  args.push_back(arg("examples-per-party", std::to_string(examples_per_party)));
  args.push_back(arg("eval-examples", std::to_string(eval_examples)));
  args.push_back(arg("image-size", std::to_string(image_size)));
  args.push_back(arg("batch", std::to_string(batch_size)));
  args.push_back(arg("local-epochs", std::to_string(local_epochs)));
  args.push_back(arg("lr", std::to_string(lr)));
  args.push_back(arg("threads", std::to_string(threads)));
  args.push_back(arg("round-timeout-ms", std::to_string(round_timeout_ms)));
  args.push_back(arg("setup-timeout-ms", std::to_string(setup_timeout_ms)));
  args.push_back(arg("retry-attempts", std::to_string(retry_attempts)));
  args.push_back(arg("retry-initial-timeout-ms", std::to_string(retry_initial_timeout_ms)));
  args.push_back(arg("retry-max-timeout-ms", std::to_string(retry_max_timeout_ms)));
  args.push_back(arg("stagger-ms", std::to_string(party_stagger_ms)));
  args.push_back(arg("listen-host", listen_host));
  args.push_back(arg("registry-port", std::to_string(registry_port)));
  args.push_back(arg("telemetry-dir", telemetry_dir));
  args.push_back(arg("drop", std::to_string(drop_probability)));
  args.push_back(arg("fault-seed", std::to_string(fault_seed)));
  return args;
}

ClusterSpec ClusterSpec::FromFlags(const std::map<std::string, std::string>& flags) {
  ClusterSpec spec;
  auto get = [&flags](const std::string& key, const std::string& fallback) {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  };
  auto get_int = [&get](const std::string& key, int fallback) {
    return std::atoi(get(key, std::to_string(fallback)).c_str());
  };
  auto get_double = [&get](const std::string& key, double fallback) {
    return std::atof(get(key, std::to_string(fallback)).c_str());
  };
  spec.parties = get_int("parties", spec.parties);
  spec.aggregators = get_int("aggregators", spec.aggregators);
  spec.rounds = get_int("rounds", spec.rounds);
  spec.seed = static_cast<uint64_t>(
      std::strtoull(get("seed", std::to_string(spec.seed)).c_str(), nullptr, 10));
  spec.algorithm = get("algorithm", spec.algorithm);
  spec.use_paillier = get_int("paillier", spec.use_paillier ? 1 : 0) != 0;
  spec.use_key_broker = get_int("key-broker", spec.use_key_broker ? 1 : 0) != 0;
  spec.examples_per_party = get_int("examples-per-party", spec.examples_per_party);
  spec.eval_examples = get_int("eval-examples", spec.eval_examples);
  spec.image_size = get_int("image-size", spec.image_size);
  spec.batch_size = get_int("batch", spec.batch_size);
  spec.local_epochs = get_int("local-epochs", spec.local_epochs);
  spec.lr = get_double("lr", spec.lr);
  spec.threads = get_int("threads", spec.threads);
  spec.round_timeout_ms = get_int("round-timeout-ms", spec.round_timeout_ms);
  spec.setup_timeout_ms = get_int("setup-timeout-ms", spec.setup_timeout_ms);
  spec.retry_attempts = get_int("retry-attempts", spec.retry_attempts);
  spec.retry_initial_timeout_ms =
      get_int("retry-initial-timeout-ms", spec.retry_initial_timeout_ms);
  spec.retry_max_timeout_ms = get_int("retry-max-timeout-ms", spec.retry_max_timeout_ms);
  spec.party_stagger_ms = get_int("stagger-ms", spec.party_stagger_ms);
  spec.listen_host = get("listen-host", spec.listen_host);
  spec.registry_port = get_int("registry-port", spec.registry_port);
  spec.telemetry_dir = get("telemetry-dir", spec.telemetry_dir);
  spec.drop_probability = get_double("drop", spec.drop_probability);
  spec.fault_seed = static_cast<uint64_t>(std::strtoull(
      get("fault-seed", std::to_string(spec.fault_seed)).c_str(), nullptr, 10));
  return spec;
}

namespace {

std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) {
    return "";
  }
  size_t end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

bool ParseTomlFile(const std::string& path, std::map<std::string, std::string>* out,
                   std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) {
      *error = "cannot open " + path;
    }
    return false;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments, respecting quoted strings ("#" inside quotes is data).
    bool in_quote = false;
    for (size_t i = 0; i < line.size(); ++i) {
      if (line[i] == '"') {
        in_quote = !in_quote;
      } else if (line[i] == '#' && !in_quote) {
        line = line.substr(0, i);
        break;
      }
    }
    line = Trim(line);
    if (line.empty()) {
      continue;
    }
    if (line[0] == '[') {
      if (error != nullptr) {
        *error = path + ":" + std::to_string(lineno) +
                 ": section headers are not supported (flat key = value only)";
      }
      return false;
    }
    size_t eq = line.find('=');
    if (eq == std::string::npos) {
      if (error != nullptr) {
        *error = path + ":" + std::to_string(lineno) + ": expected `key = value`";
      }
      return false;
    }
    std::string key = Trim(line.substr(0, eq));
    std::string value = Trim(line.substr(eq + 1));
    if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
      value = value.substr(1, value.size() - 2);
    } else if (value == "true") {
      value = "1";
    } else if (value == "false") {
      value = "0";
    }
    if (key.empty()) {
      if (error != nullptr) {
        *error = path + ":" + std::to_string(lineno) + ": empty key";
      }
      return false;
    }
    out->emplace(key, value);  // existing keys (command-line flags) win
  }
  return true;
}

// --- job derivation ---

namespace {

fl::TrainConfig ClusterTrainConfig(const ClusterSpec& spec) {
  fl::TrainConfig train;
  train.batch_size = spec.batch_size;
  train.local_epochs = spec.local_epochs;
  train.lr = static_cast<float>(spec.lr);
  return train;
}

data::Dataset ClusterSynth(const ClusterSpec& spec, int examples, uint64_t seed) {
  data::SyntheticConfig config;
  config.num_examples = examples;
  config.classes = 10;
  config.channels = 1;
  config.image_size = spec.image_size;
  config.style = data::ImageStyle::kBlobs;
  config.seed = seed;
  config.prototype_seed = 777;
  return data::GenerateSynthetic(config);
}

}  // namespace

fl::ExecutionOptions BuildExecutionOptions(const ClusterSpec& spec) {
  fl::ExecutionOptions options;
  options.rounds = spec.rounds;
  options.train = ClusterTrainConfig(spec);
  options.algorithm = spec.algorithm;
  options.use_paillier = spec.use_paillier;
  options.seed = spec.seed;
  options.threads = spec.threads;
  options.round_timeout_ms = spec.round_timeout_ms;
  options.setup_timeout_ms = spec.setup_timeout_ms;
  options.retry.max_attempts = spec.retry_attempts;
  options.retry.initial_timeout_ms = spec.retry_initial_timeout_ms;
  options.retry.max_timeout_ms = spec.retry_max_timeout_ms;
  if (spec.drop_probability > 0.0) {
    options.fault_plan.seed = spec.fault_seed;
    options.fault_plan.default_rates.drop = spec.drop_probability;
  }
  return options;
}

DetaOptions BuildDetaOptions(const ClusterSpec& spec) {
  DetaOptions deta;
  deta.num_aggregators = spec.aggregators;
  deta.use_key_broker = spec.use_key_broker;
  deta.party_start_stagger_ms = spec.party_stagger_ms;
  return deta;
}

fl::ModelFactory ClusterModelFactory(const ClusterSpec& spec) {
  int input_dim = spec.image_size * spec.image_size;
  uint64_t seed = spec.seed;
  return [input_dim, seed] {
    Rng rng(seed);
    return nn::BuildMlp(input_dim, {8}, 10, rng);
  };
}

data::Dataset ClusterEvalData(const ClusterSpec& spec) {
  return ClusterSynth(spec, spec.eval_examples, spec.seed + 8);
}

std::vector<std::unique_ptr<fl::Party>> BuildLocalParties(
    const ClusterSpec& spec, const std::vector<std::string>& local_parties) {
  std::vector<std::unique_ptr<fl::Party>> out;
  if (local_parties.empty()) {
    return out;
  }
  // Every process derives the identical full split, then keeps only its shards — the
  // shard a party trains on must not depend on which process hosts it.
  data::Dataset full =
      ClusterSynth(spec, spec.examples_per_party * spec.parties, spec.seed + 5);
  Rng split_rng(spec.seed + 9);
  std::vector<data::Dataset> shards = data::SplitIid(full, spec.parties, split_rng);
  fl::TrainConfig train = ClusterTrainConfig(spec);
  fl::ModelFactory factory = ClusterModelFactory(spec);
  std::vector<std::string> names = spec.PartyNames();
  for (const std::string& name : local_parties) {
    size_t index = names.size();
    for (size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) {
        index = i;
        break;
      }
    }
    DETA_CHECK_MSG(index < names.size(), "unknown party role: " << name);
    out.push_back(std::make_unique<fl::Party>(name, shards[index], factory, train,
                                              spec.seed + 100 + index));
  }
  return out;
}

// --- process orchestration ---

bool ClusterResult::AllExitedCleanly() const {
  for (const RoleOutcome& role : roles) {
    if (role.exit_code != 0) {
      return false;
    }
  }
  return true;
}

namespace {

pid_t SpawnRole(const std::string& self_exe, const std::vector<std::string>& args) {
  std::vector<char*> argv;
  // posix_spawn takes char* const argv[] for C compatibility but never writes
  // through it; these casts adapt to that API and touch no secret material.
  argv.push_back(const_cast<char*>(self_exe.c_str()));  // NOLINT(cppcoreguidelines-pro-type-const-cast)
  for (const std::string& a : args) {
    argv.push_back(const_cast<char*>(a.c_str()));  // NOLINT(cppcoreguidelines-pro-type-const-cast)
  }
  argv.push_back(nullptr);
  pid_t pid = -1;
  int rc = ::posix_spawn(&pid, self_exe.c_str(), nullptr, nullptr, argv.data(), environ);
  if (rc != 0) {
    LOG_ERROR << "cluster: posix_spawn(" << self_exe << ") failed: " << rc;
    return -1;
  }
  return pid;
}

int DecodeWaitStatus(int status) {
  if (WIFEXITED(status)) {
    return WEXITSTATUS(status);
  }
  if (WIFSIGNALED(status)) {
    return 128 + WTERMSIG(status);
  }
  return -1;
}

// mkdir -p. Returns false when a component cannot be created. Every process of the
// cluster calls this for the telemetry dir, so EEXIST races are expected and fine.
bool MakeDirs(const std::string& dir) {
  if (dir.empty() || dir == "/" || dir == ".") {
    return true;
  }
  struct stat st{};
  if (::stat(dir.c_str(), &st) == 0) {
    return S_ISDIR(st.st_mode);
  }
  size_t slash = dir.find_last_of('/');
  if (slash != std::string::npos && slash > 0 && !MakeDirs(dir.substr(0, slash))) {
    return false;
  }
  return ::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST;
}

void WriteRoleTelemetry(const ClusterSpec& spec, const std::string& role,
                        const telemetry::TelemetrySnapshot& snapshot) {
  if (spec.telemetry_dir.empty()) {
    return;
  }
  if (!MakeDirs(spec.telemetry_dir)) {
    LOG_WARNING << "cluster: cannot create telemetry dir " << spec.telemetry_dir;
    return;
  }
  std::string path = spec.telemetry_dir + "/" + role + ".json";
  if (!telemetry::WriteJsonFile(snapshot, path)) {
    LOG_WARNING << "cluster: failed to write telemetry for " << role << " to " << path;
  }
}

}  // namespace

ClusterResult LaunchCluster(const ClusterSpec& spec, const std::string& self_exe) {
  DETA_CHECK_GT(spec.parties, 0);
  DETA_CHECK_GT(spec.aggregators, 0);

  // The parent hosts the name registry; children dial the bound address.
  net::TcpTransportOptions topts;
  topts.listen_host = spec.listen_host;
  topts.listen_port = spec.registry_port;
  topts.node_name = "cluster-parent";
  net::TcpTransport transport(topts);
  const std::string registry_addr = transport.registry_address();
  LOG_INFO << "cluster: registry at " << registry_addr;

  ClusterResult result;
  std::vector<std::string> base_args = spec.ToArgs();
  for (const std::string& role : spec.ChildRoles()) {
    std::vector<std::string> args = base_args;
    args.push_back("--role=" + role);
    args.push_back("--registry=" + registry_addr);
    RoleOutcome outcome;
    outcome.role = role;
    outcome.pid = SpawnRole(self_exe, args);
    result.roles.push_back(outcome);
  }

  // The observer runs in-process; children host every other role.
  DetaDeployment deployment;
  deployment.transport = &transport;
  deployment.local_roles = {"observer"};
  deployment.party_names = spec.PartyNames();
  DetaJob job(BuildExecutionOptions(spec), BuildDetaOptions(spec), {},
              ClusterModelFactory(spec), ClusterEvalData(spec), deployment);
  result.observer = job.Run();
  WriteRoleTelemetry(spec, "observer", result.observer.telemetry);

  // Bounded reap: children exit on their own once the protocol completes (or once the
  // observer's failure path fanned out shutdown); stragglers past the grace window are
  // killed and reported as failures rather than hanging the parent.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  for (RoleOutcome& role : result.roles) {
    if (role.pid < 0) {
      continue;  // spawn failed; exit_code stays -1
    }
    int status = 0;
    for (;;) {
      pid_t done = ::waitpid(role.pid, &status, WNOHANG);
      if (done == role.pid) {
        role.exit_code = DecodeWaitStatus(status);
        break;
      }
      if (done < 0) {
        role.exit_code = -1;
        break;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        LOG_ERROR << "cluster: role " << role.role << " (pid " << role.pid
                  << ") did not exit; killing it";
        ::kill(role.pid, SIGKILL);
        ::waitpid(role.pid, &status, 0);
        role.exit_code = DecodeWaitStatus(status);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    LOG_INFO << "cluster: role " << role.role << " exited with code " << role.exit_code;
  }
  return result;
}

int RunClusterChild(const ClusterSpec& spec, const std::string& role,
                    const std::string& registry_addr) {
  net::TcpTransportOptions topts;
  topts.listen_host = spec.listen_host;
  topts.listen_port = 0;
  topts.registry_addr = registry_addr;
  topts.node_name = role;
  net::TcpTransport transport(topts);

  std::vector<std::string> local_parties;
  for (const std::string& name : spec.PartyNames()) {
    if (name == role) {
      local_parties.push_back(name);
    }
  }
  DetaDeployment deployment;
  deployment.transport = &transport;
  deployment.local_roles = {role};
  deployment.party_names = spec.PartyNames();
  DetaJob job(BuildExecutionOptions(spec), BuildDetaOptions(spec),
              BuildLocalParties(spec, local_parties), ClusterModelFactory(spec),
              ClusterEvalData(spec), deployment);
  fl::JobResult result = job.Run();
  WriteRoleTelemetry(spec, role, result.telemetry);
  if (!result.ok()) {
    LOG_ERROR << "cluster: role " << role << " run failed ("
              << fl::JobStatusName(result.status) << "): " << result.error;
    return 1;
  }
  return 0;
}

}  // namespace deta::core
