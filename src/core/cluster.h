// Multi-process DeTA deployment: one ClusterSpec describes a whole job (topology,
// workload, transport, fault knobs); every process of the cluster — the parent hosting
// the registry + observer and one child per aggregator/party/key-broker role — parses
// the same spec and derives identical job state from it (same seed, same setup RNG
// draw order, same synthetic shards), so the distributed run is bitwise-identical to
// the equivalent single-process job.
//
// The spec round-trips through --key=value flags (ToArgs/FromFlags) so the parent can
// re-exec itself for each child role, and loads from a flat `key = value` TOML file
// (ParseTomlFile) for scripted deployments. The builders below are shared with the
// scale harness (bench/scale_parties.cc) and the transport conformance tests, which is
// what anchors the "same spec => same bits on any backend" guarantee.
#ifndef DETA_CORE_CLUSTER_H_
#define DETA_CORE_CLUSTER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include <sys/types.h>

#include "core/deta_job.h"

namespace deta::core {

struct ClusterSpec {
  int parties = 8;
  int aggregators = 3;
  int rounds = 3;
  uint64_t seed = 1234;
  std::string algorithm = "iterative_averaging";
  bool use_paillier = false;
  bool use_key_broker = true;

  // Workload: synthetic blob-MNIST shards over a tiny MLP (the protocol fabric is the
  // system under test here, not the model).
  int examples_per_party = 32;
  int eval_examples = 64;
  int image_size = 14;
  int batch_size = 16;
  int local_epochs = 1;
  double lr = 0.1;

  // Per-process worker threads for the deterministic parallel layer (results are
  // thread-count-invariant; 1 keeps a many-process cluster from oversubscribing).
  int threads = 1;
  int round_timeout_ms = 60000;
  int setup_timeout_ms = 120000;
  // Retransmission policy, more patient than the protocol default: when hundreds of
  // party threads contend for a few cores (or sanitizer builds slow every EC op), a
  // handshake reply can legitimately take seconds. The initial timeout matters most at
  // scale — retransmitting into an already-backlogged aggregator only multiplies its
  // EC work, so the scale harness raises it well above the protocol's 250ms.
  int retry_attempts = 10;
  int retry_initial_timeout_ms = 250;
  int retry_max_timeout_ms = 8000;
  // Per-party setup start stagger (DetaOptions::party_start_stagger_ms). Only
  // meaningful for in-proc scale runs, where one process hosts every party.
  int party_stagger_ms = 0;

  // Transport: the parent hosts the TCP name registry on this host/port (0 = pick a
  // free port and pass the bound address to the children).
  std::string listen_host = "127.0.0.1";
  int registry_port = 0;

  // Per-role telemetry JSON is written to "<telemetry_dir>/<role>.json" ("" = off).
  std::string telemetry_dir;

  // Seeded message-fault injection, installed identically in every process.
  double drop_probability = 0.0;
  uint64_t fault_seed = 42;

  std::vector<std::string> PartyNames() const;
  std::vector<std::string> AggregatorNames() const;
  // Child roles the parent spawns: aggregators, parties, then the key broker.
  std::vector<std::string> ChildRoles() const;

  // Flag round-trip: ToArgs() emits exactly the --key=value pairs FromFlags() reads.
  std::vector<std::string> ToArgs() const;
  static ClusterSpec FromFlags(const std::map<std::string, std::string>& flags);
};

// Flat `key = value` TOML subset (comments, quoted strings, ints, floats, bools;
// section headers are rejected). Parsed pairs merge into |out| without overwriting
// existing keys, so command-line flags win over the file. False + |error| on I/O or
// syntax problems.
bool ParseTomlFile(const std::string& path, std::map<std::string, std::string>* out,
                   std::string* error);

// --- job derivation (identical in every process of a deployment) ---

fl::ExecutionOptions BuildExecutionOptions(const ClusterSpec& spec);
DetaOptions BuildDetaOptions(const ClusterSpec& spec);
fl::ModelFactory ClusterModelFactory(const ClusterSpec& spec);
data::Dataset ClusterEvalData(const ClusterSpec& spec);
// Trainers for the parties named in |local_parties|: every process derives the same
// full IID split from the spec and keeps only its shards.
std::vector<std::unique_ptr<fl::Party>> BuildLocalParties(
    const ClusterSpec& spec, const std::vector<std::string>& local_parties);

// --- process orchestration ---

struct RoleOutcome {
  std::string role;
  pid_t pid = -1;
  // waitpid status decoded: the child's exit code, or 128 + signal when killed.
  int exit_code = -1;
};

struct ClusterResult {
  fl::JobResult observer;
  std::vector<RoleOutcome> roles;

  bool AllExitedCleanly() const;
};

// Parent path: binds the TCP registry, spawns |self_exe| once per child role (with
// --role/--registry appended to the spec's flags), runs the observer in-process, then
// reaps every child (bounded wait; stragglers are killed and reported as failures).
ClusterResult LaunchCluster(const ClusterSpec& spec, const std::string& self_exe);

// Child path: hosts exactly |role| over a TCP transport client connected to
// |registry_addr|. Returns the process exit code (0 = the role completed its run).
int RunClusterChild(const ClusterSpec& spec, const std::string& role,
                    const std::string& registry_addr);

}  // namespace deta::core

#endif  // DETA_CORE_CLUSTER_H_
