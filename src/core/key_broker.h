// Trusted key-broker service (paper §4.2: the permutation is seeded by "a permutation key
// (e.g., dispatched from a trusted key broker service) agreed among all parties").
//
// The broker is a party-side trusted component (like the attestation proxy). It owns the
// shared transform material — the permutation key and the model-mapper seed — and serves
// it to parties over the same authenticated-ECDH channel construction used for
// aggregators: parties know the broker's identity public key out of band, challenge it,
// register, then *pull* the material with an explicit fetch request answered on the
// sealed channel. The pull (rather than a push after registration) makes the exchange a
// request/reply pair the party can retransmit when the bus drops either direction.
// Aggregators never talk to the broker, so the material never exists outside
// participant-controlled domains.
#ifndef DETA_CORE_KEY_BROKER_H_
#define DETA_CORE_KEY_BROKER_H_

#include <atomic>
#include <map>
#include <memory>
#include <set>

#include "common/secret.h"
#include "common/thread.h"
#include "core/auth_protocol.h"
#include "core/transform.h"
#include "persist/state_store.h"

namespace deta::core {

inline constexpr char kKeyBrokerFetch[] = "kb.fetch";
inline constexpr char kKeyBrokerMaterial[] = "kb.material";

// Everything a party needs to construct the shared Transform deterministically.
// The keys decide the shuffle/partition every party applies — leaking them lets an
// aggregator undo the transform, so they are Secret members: they wipe on destruction,
// and reaching a log, telemetry label, or plaintext snapshot section requires an
// audited Expose* call.
struct TransformMaterial {
  // deta-lint: secret
  Secret<Bytes> permutation_key;
  // deta-lint: secret
  Secret<Bytes> mapper_seed;
  // Serialized Paillier key pair (persist/paillier_key_codec.h; empty = job does not
  // use Paillier fusion). Carried by the broker so the fusion decryption capability is
  // dispatched over the same authenticated channel as the transform secrets — it is
  // the key-broker key material the paper's §4.2 broker role exists to hold.
  // deta-lint: secret
  Secret<Bytes> paillier_key;
  int64_t total_params = 0;
  std::vector<double> proportions;  // empty = uniform over num_aggregators
  int num_aggregators = 1;
  bool enable_partition = true;
  bool enable_shuffle = true;

  Bytes Serialize() const;
  static TransformMaterial Deserialize(const Bytes& data);

  // Builds the Transform this material describes (identical across parties).
  std::shared_ptr<Transform> BuildTransform() const;
};

// Durability / fault-injection knobs for the broker (src/persist/). The transform
// material itself is not snapshotted: the job that constructs the broker owns it and
// re-supplies it on revive, so the snapshot carries only the service's session state
// (registration cache, channels, serve progress, RNG) — all sealed.
struct KeyBrokerDurability {
  persist::StateStore* store = nullptr;  // null disables persistence
  bool resume = false;                   // restore session state before serving
  // Fault injection: crash instead of serving the Nth *distinct* party (0 = never).
  int crash_after_serves = 0;
  uint64_t seal_seed = 0;  // snapshot sealing key seed (job-provided)
};

class KeyBroker {
 public:
  // |identity| is the broker's long-lived signing key; its public half is distributed to
  // parties out of band (like the AP's token registry). With |expected_parties| > 0 the
  // broker exits once that many *distinct* parties have been served (retransmitted
  // fetches are re-served without advancing the count); with |expected_parties| <= 0 it
  // serves until Stop() — the right mode under fault injection, where a party may still
  // need a retransmission after every party has been served once.
  KeyBroker(TransformMaterial material, crypto::EcKeyPair identity, int expected_parties,
            net::Transport& transport, crypto::SecureRng rng,
            KeyBrokerDurability durability = {});
  ~KeyBroker();

  KeyBroker(const KeyBroker&) = delete;
  KeyBroker& operator=(const KeyBroker&) = delete;

  void Start();
  // Closes the broker endpoint; the service thread drains and exits. Idempotent.
  void Stop();
  void Join();

  static constexpr char kEndpointName[] = "key-broker";
  const crypto::EcPoint& identity_public() const { return identity_.public_key; }

  // True after an injected crash fault fired; the job driver polls this and revives a
  // replacement broker (same material/identity) that resumes from the snapshot.
  bool crashed() const { return crashed_.load(); }

 private:
  void Run();
  void SaveState();
  bool RestoreFromSnapshot();

  TransformMaterial material_;
  crypto::EcKeyPair identity_;
  int expected_parties_;
  KeyBrokerDurability durability_;
  std::unique_ptr<net::Endpoint> endpoint_;
  crypto::SecureRng rng_;
  RegistrationCache registrations_;
  std::map<std::string, net::SecureChannel> channels_;
  std::set<std::string> served_;
  std::atomic<bool> crashed_{false};
  ServiceThread thread_;
};

// Party-side: verify the broker, register, fetch and open the material. Every wait is
// bounded by |policy|; nullopt if verification fails or the broker stays unresponsive.
std::optional<TransformMaterial> FetchTransformMaterial(
    net::Endpoint& endpoint, const crypto::EcPoint& broker_public,
    crypto::SecureRng& rng, const net::RetryPolicy& policy = {});

}  // namespace deta::core

#endif  // DETA_CORE_KEY_BROKER_H_
