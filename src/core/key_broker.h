// Trusted key-broker service (paper §4.2: the permutation is seeded by "a permutation key
// (e.g., dispatched from a trusted key broker service) agreed among all parties").
//
// The broker is a party-side trusted component (like the attestation proxy). It owns the
// shared transform material — the permutation key and the model-mapper seed — and serves
// it to parties over the same authenticated-ECDH channel construction used for
// aggregators: parties know the broker's identity public key out of band, challenge it,
// register, then *pull* the material with an explicit fetch request answered on the
// sealed channel. The pull (rather than a push after registration) makes the exchange a
// request/reply pair the party can retransmit when the bus drops either direction.
// Aggregators never talk to the broker, so the material never exists outside
// participant-controlled domains.
#ifndef DETA_CORE_KEY_BROKER_H_
#define DETA_CORE_KEY_BROKER_H_

#include <map>
#include <memory>
#include <set>
#include <thread>

#include "core/auth_protocol.h"
#include "core/transform.h"

namespace deta::core {

inline constexpr char kKeyBrokerFetch[] = "kb.fetch";
inline constexpr char kKeyBrokerMaterial[] = "kb.material";

// Everything a party needs to construct the shared Transform deterministically.
struct TransformMaterial {
  Bytes permutation_key;
  Bytes mapper_seed;
  int64_t total_params = 0;
  std::vector<double> proportions;  // empty = uniform over num_aggregators
  int num_aggregators = 1;
  bool enable_partition = true;
  bool enable_shuffle = true;

  Bytes Serialize() const;
  static TransformMaterial Deserialize(const Bytes& data);

  // Builds the Transform this material describes (identical across parties).
  std::shared_ptr<Transform> BuildTransform() const;
};

class KeyBroker {
 public:
  // |identity| is the broker's long-lived signing key; its public half is distributed to
  // parties out of band (like the AP's token registry). With |expected_parties| > 0 the
  // broker exits once that many *distinct* parties have been served (retransmitted
  // fetches are re-served without advancing the count); with |expected_parties| <= 0 it
  // serves until Stop() — the right mode under fault injection, where a party may still
  // need a retransmission after every party has been served once.
  KeyBroker(TransformMaterial material, crypto::EcKeyPair identity, int expected_parties,
            net::MessageBus& bus, crypto::SecureRng rng);
  ~KeyBroker();

  KeyBroker(const KeyBroker&) = delete;
  KeyBroker& operator=(const KeyBroker&) = delete;

  void Start();
  // Closes the broker endpoint; the service thread drains and exits. Idempotent.
  void Stop();
  void Join();

  static constexpr char kEndpointName[] = "key-broker";
  const crypto::EcPoint& identity_public() const { return identity_.public_key; }

 private:
  void Run();

  TransformMaterial material_;
  crypto::EcKeyPair identity_;
  int expected_parties_;
  std::unique_ptr<net::Endpoint> endpoint_;
  crypto::SecureRng rng_;
  std::thread thread_;
};

// Party-side: verify the broker, register, fetch and open the material. Every wait is
// bounded by |policy|; nullopt if verification fails or the broker stays unresponsive.
std::optional<TransformMaterial> FetchTransformMaterial(
    net::Endpoint& endpoint, const crypto::EcPoint& broker_public,
    crypto::SecureRng& rng, const net::RetryPolicy& policy = {});

}  // namespace deta::core

#endif  // DETA_CORE_KEY_BROKER_H_
