// A decentralized DeTA aggregator (§4.1): one of J instances, each confined to an SEV
// CVM, holding only a fragmentary, shuffled view of every model update. Runs as a real
// thread with an event loop over bus messages.
//
// Roles: one aggregator is the *initiator* — it starts each training round by notifying
// the parties and advances to the next round once every follower reports completion
// ("Inter-Aggregator Training Synchronization"). The rest are followers.
//
// Everything secret the aggregator handles (its auth token, received fragments, the
// aggregated result) lives in the CVM's encrypted memory, so the breach experiments can
// dump exactly what a successful SEV exploit would expose.
#ifndef DETA_CORE_DETA_AGGREGATOR_H_
#define DETA_CORE_DETA_AGGREGATOR_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "cc/sev.h"
#include "core/auth_protocol.h"
#include "fl/aggregation.h"
#include "fl/paillier_fusion.h"
#include "net/message_bus.h"

namespace deta::core {

// Round-protocol message tags.
inline constexpr char kJobStart[] = "job.start";
inline constexpr char kRoundBegin[] = "round.begin";
inline constexpr char kRoundUpload[] = "round.upload";
inline constexpr char kRoundResult[] = "round.result";
inline constexpr char kRoundDone[] = "round.done";
inline constexpr char kAggReport[] = "agg.report";
inline constexpr char kShutdown[] = "shutdown";

struct AggregatorConfig {
  std::string name;
  int index = 0;
  bool is_initiator = false;
  int num_parties = 0;
  int num_aggregators = 1;
  int rounds = 1;
  // Aggregate as soon as this many party fragments arrive (0 = wait for all parties).
  // Late fragments for an already-aggregated round are dropped — tolerates stragglers in
  // the asynchronous-training setting §8.2 discusses.
  int quorum = 0;
  std::string algorithm = "iterative_averaging";
  // Paillier fusion: aggregate ciphertexts homomorphically instead of plaintext floats.
  bool use_paillier = false;
  std::optional<crypto::PaillierPublicKey> paillier_public;
  int paillier_lane_bits = 56;
  // Observer endpoint for timing reports (empty = no reports).
  std::string observer;
  std::string initiator_name;
  std::vector<std::string> party_names;
  std::vector<std::string> aggregator_names;
};

class DetaAggregator {
 public:
  // The token private key is read from the CVM's encrypted memory (provisioned by the
  // attestation proxy in phase I); construction fails if the CVM was not provisioned.
  DetaAggregator(AggregatorConfig config, net::MessageBus& bus, std::shared_ptr<cc::Cvm> cvm,
                 crypto::SecureRng rng);
  ~DetaAggregator();

  DetaAggregator(const DetaAggregator&) = delete;
  DetaAggregator& operator=(const DetaAggregator&) = delete;

  void Start();
  void Join();

  const std::string& name() const { return config_.name; }
  const std::shared_ptr<cc::Cvm>& cvm() const { return cvm_; }

 private:
  void Run();
  void HandleUpload(const net::Message& m);
  void AggregateAndDistribute(int round);
  void HandleRoundDone(int round);
  void BeginRound(int round);

  AggregatorConfig config_;
  net::MessageBus& bus_;
  std::unique_ptr<net::Endpoint> endpoint_;
  std::shared_ptr<cc::Cvm> cvm_;
  crypto::BigUint token_private_;
  crypto::SecureRng rng_;
  std::unique_ptr<fl::AggregationAlgorithm> algorithm_;
  std::unique_ptr<fl::PaillierVectorCodec> paillier_codec_;

  std::map<std::string, net::SecureChannel> channels_;  // party -> channel
  // Per-round fragment staging: party -> serialized fragment payload.
  std::map<std::string, Bytes> staged_;
  int current_round_ = 0;
  int last_aggregated_round_ = 0;
  int followers_done_ = 0;
  bool finished_ = false;
  std::thread thread_;
};

}  // namespace deta::core

#endif  // DETA_CORE_DETA_AGGREGATOR_H_
