// A decentralized DeTA aggregator (§4.1): one of J instances, each confined to an SEV
// CVM, holding only a fragmentary, shuffled view of every model update. Runs as a real
// thread with an event loop over bus messages.
//
// Roles: one aggregator is the *initiator* — it starts each training round by notifying
// the parties and the follower aggregators, and advances to the next round once every
// aggregator reports completion ("Inter-Aggregator Training Synchronization"). The rest
// are followers.
//
// The event loop never blocks unboundedly: it ticks on a short receive timeout and uses
// the ticks to (a) retransmit round.begin / round.done with capped backoff, (b) enforce a
// per-round collection deadline — aggregating the staged subset when a minimum quorum is
// met and reporting the absentees, or emitting a typed agg.failed to the observer when it
// is not — and (c) bail out on a global idle backstop instead of hanging. A party whose
// round.result was dropped recovers by retransmitting its upload: uploads for an
// already-aggregated round are answered with a re-sealed copy of the cached result.
//
// Everything secret the aggregator handles (its auth token, received fragments, the
// aggregated result) lives in the CVM's encrypted memory, so the breach experiments can
// dump exactly what a successful SEV exploit would expose.
#ifndef DETA_CORE_DETA_AGGREGATOR_H_
#define DETA_CORE_DETA_AGGREGATOR_H_

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "cc/sev.h"
#include "common/thread.h"
#include "core/auth_protocol.h"
#include "fl/aggregation.h"
#include "fl/paillier_fusion.h"
#include "net/retry.h"
#include "persist/state_store.h"

namespace deta::core {

// Round-protocol message tags.
inline constexpr char kJobStart[] = "job.start";
inline constexpr char kJobStartAck[] = "job.start_ack";
inline constexpr char kRoundBegin[] = "round.begin";
inline constexpr char kRoundUpload[] = "round.upload";
inline constexpr char kRoundResult[] = "round.result";
inline constexpr char kRoundDone[] = "round.done";
inline constexpr char kAggReport[] = "agg.report";
inline constexpr char kAggFailed[] = "agg.failed";
// Sent by each party to every aggregator when it exits; lets aggregators stop draining
// early instead of waiting out the drain quiet period.
inline constexpr char kPartyDone[] = "party.done";
inline constexpr char kShutdown[] = "shutdown";

struct AggregatorConfig {
  std::string name;
  int index = 0;
  bool is_initiator = false;
  int num_parties = 0;
  int num_aggregators = 1;
  int rounds = 1;
  // Aggregate as soon as this many party fragments arrive (0 = wait for all parties).
  // Late fragments for an already-aggregated round are dropped — tolerates stragglers in
  // the asynchronous-training setting §8.2 discusses.
  int quorum = 0;
  // Minimum fragments required when the round deadline expires. 0 = all parties must
  // arrive before the deadline (any absence is a quorum failure); > 0 = aggregate the
  // staged subset at the deadline and report the missing parties as dropouts.
  int min_quorum = 0;
  // Deadline for collecting one round's uploads, measured from when this aggregator
  // learns the round started. Must exceed the retry policy's total budget or parties
  // lose their retransmission window.
  int round_timeout_ms = 10000;
  // Backstop: exit (with a warning) if no message arrives for this long.
  int idle_timeout_ms = 60000;
  // After the final round the aggregator *drains* instead of exiting: it keeps
  // re-serving the cached round result to parties whose copy was lost, until every
  // party confirms completion (party.done) or the mailbox stays quiet for this long.
  // Must exceed the retry policy's capped per-attempt timeout, or the drain can end
  // between two retransmissions of a party that still needs the result.
  int drain_timeout_ms = 4000;
  // Retransmission pacing for round.begin / round.done.
  net::RetryPolicy retry;
  std::string algorithm = "iterative_averaging";
  // Paillier fusion: aggregate ciphertexts homomorphically instead of plaintext floats.
  bool use_paillier = false;
  std::optional<crypto::PaillierPublicKey> paillier_public;
  int paillier_lane_bits = 56;
  // Observer endpoint for timing reports (empty = no reports).
  std::string observer;
  std::string initiator_name;
  std::vector<std::string> party_names;
  std::vector<std::string> aggregator_names;

  // --- durability (src/persist/) ---
  // Snapshot store, owned by the job; null disables persistence.
  persist::StateStore* store = nullptr;
  // Snapshot cadence (every Nth aggregated round; registration-time state is always
  // saved so a crash before the first aggregation is still recoverable).
  int checkpoint_every = 1;
  // Restore channels / registration cache / result cache / round counter from the
  // newest verifiable snapshot before entering the event loop.
  bool resume = false;
  // With resume: require the restored snapshot to be for exactly this round (>= 0);
  // -1 accepts the newest. Whole-job resume pins every role to one consistent cut.
  int resume_max_round = -1;
  // Fault injection: kill this aggregator when it starts collecting round
  // |crash_at_round| (0 = never).
  int crash_at_round = 0;
  // Seed for the snapshot sealing key (stand-in for CVM sealed storage; job-provided).
  uint64_t seal_seed = 0;
};

class DetaAggregator {
 public:
  // The token private key is read from the CVM's encrypted memory (provisioned by the
  // attestation proxy in phase I); construction fails if the CVM was not provisioned.
  DetaAggregator(AggregatorConfig config, net::Transport& transport,
                 std::shared_ptr<cc::Cvm> cvm, crypto::SecureRng rng);
  ~DetaAggregator();

  DetaAggregator(const DetaAggregator&) = delete;
  DetaAggregator& operator=(const DetaAggregator&) = delete;

  void Start();
  void Join();

  const std::string& name() const { return config_.name; }
  const std::shared_ptr<cc::Cvm>& cvm() const { return cvm_; }

  // True after an injected crash fault fired; the job driver polls this and revives the
  // aggregator from its latest snapshot.
  bool crashed() const { return crashed_.load(); }

 private:
  using Clock = std::chrono::steady_clock;

  void Run();
  void Dispatch(const net::Message& m);
  void OnTick();
  void HandleJobStart(const net::Message& m);
  void HandleRoundBegin(const net::Message& m);
  void HandleUpload(const net::Message& m);
  void StartCollecting(int round);
  void Aggregate(int round);
  void ResendResult(const std::string& party);
  void SendRoundBegin();
  void SendRoundDone();
  void MarkRoundDone(const std::string& aggregator, int round);
  void FailRound(int round, int have, int need);
  void StartDraining();
  // Writes a snapshot of the durable state (round counter, result cache, channels,
  // registration cache, RNG) for completed round |round|.
  void SaveState(int round);
  bool RestoreFromSnapshot();

  AggregatorConfig config_;
  net::Transport& transport_;
  std::unique_ptr<net::Endpoint> endpoint_;
  std::shared_ptr<cc::Cvm> cvm_;
  // The auth token proves this CVM passed attestation; the Secret wrapper wipes it on
  // destruction and keeps it out of logs/telemetry/plaintext wires by construction.
  // deta-lint: secret
  Secret<crypto::BigUint> token_private_;
  crypto::SecureRng rng_;
  std::unique_ptr<fl::AggregationAlgorithm> algorithm_;
  std::unique_ptr<fl::PaillierVectorCodec> paillier_codec_;

  RegistrationCache registrations_;
  std::map<std::string, net::SecureChannel> channels_;  // party -> channel
  // Per-round fragment staging: party -> serialized fragment payload.
  std::map<std::string, Bytes> staged_;
  int current_round_ = 0;
  int last_aggregated_round_ = 0;
  bool collecting_ = false;
  Clock::time_point round_deadline_;
  // Cached result of the last aggregated round, re-sealed on demand for parties whose
  // round.result was lost.
  int result_round_ = 0;
  Bytes result_plain_;
  // Initiator: aggregators (including self) that completed the current round.
  std::set<std::string> done_;
  // Initiator: round.begin retransmission state.
  int begin_attempts_ = 0;
  Clock::time_point next_begin_resend_;
  // Follower: round.done retransmission state (pending until acked by the next
  // round.begin or shutdown).
  bool done_pending_ = false;
  int done_round_ = 0;
  int done_attempts_ = 0;
  Clock::time_point next_done_resend_;
  Clock::time_point idle_deadline_;
  // Post-final-round drain state: still serving cached results, exiting once every
  // party confirmed completion or the mailbox has been quiet long enough.
  bool draining_ = false;
  Clock::time_point drain_deadline_;
  std::set<std::string> done_parties_;
  bool finished_ = false;
  std::atomic<bool> crashed_{false};
  ServiceThread thread_;
};

}  // namespace deta::core

#endif  // DETA_CORE_DETA_AGGREGATOR_H_
