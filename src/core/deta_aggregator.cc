#include "core/deta_aggregator.h"

#include "cc/attestation_proxy.h"
#include "common/check.h"
#include "common/logging.h"
#include "common/sim_clock.h"
#include "common/telemetry.h"
#include "crypto/secure_wipe.h"
#include "net/codec.h"

namespace deta::core {

namespace {
// Event-loop tick granularity: deadlines and retransmissions are checked this often.
constexpr int kTickMs = 50;
// Added to restored channels' outbound sequence counters: seals issued after the
// snapshot but before the crash burned sequence numbers the peer has already accepted;
// jumping past them keeps the peer's monotonic replay window satisfied.
constexpr uint64_t kResumeSeqSlack = uint64_t{1} << 20;
}  // namespace

DetaAggregator::DetaAggregator(AggregatorConfig config, net::Transport& transport,
                               std::shared_ptr<cc::Cvm> cvm, crypto::SecureRng rng)
    : config_(std::move(config)), transport_(transport), cvm_(std::move(cvm)),
      rng_(std::move(rng)) {
  endpoint_ = transport_.CreateEndpoint(config_.name);
  // The token was injected by the attestation proxy in phase I; its presence is this
  // node's proof of having passed attestation.
  std::optional<Bytes> token = cvm_->GuestRead(cc::kTokenRegion);
  DETA_CHECK_MSG(token.has_value(),
                 "aggregator " << config_.name << " CVM has no provisioned auth token");
  token_private_ = Secret<crypto::BigUint>(crypto::BigUint::FromBytes(*token));
  crypto::SecureWipe(*token);

  if (config_.use_paillier) {
    DETA_CHECK(config_.paillier_public.has_value());
    paillier_codec_ = std::make_unique<fl::PaillierVectorCodec>(
        *config_.paillier_public, config_.num_parties, config_.paillier_lane_bits);
  } else {
    algorithm_ = fl::MakeAlgorithm(config_.algorithm);
  }
}

DetaAggregator::~DetaAggregator() {
  Join();
  // token_private_ is a Secret and wipes itself.
}

void DetaAggregator::Start() {
  thread_ = ServiceThread([this] { Run(); });
}

void DetaAggregator::Join() { thread_.Join(); }

void DetaAggregator::Run() {
  if (config_.resume) {
    if (!RestoreFromSnapshot()) {
      LOG_ERROR << config_.name << ": resume requested but no usable snapshot";
      finished_ = true;
      return;
    }
  }
  idle_deadline_ = Clock::now() + std::chrono::milliseconds(config_.idle_timeout_ms);
  for (;;) {
    std::optional<net::Message> m = endpoint_->ReceiveFor(kTickMs);
    if (m.has_value()) {
      idle_deadline_ = Clock::now() + std::chrono::milliseconds(config_.idle_timeout_ms);
      if (draining_) {
        // Any traffic is evidence some party is still recovering its result.
        drain_deadline_ =
            Clock::now() + std::chrono::milliseconds(config_.drain_timeout_ms);
      }
      Dispatch(*m);
    } else if (endpoint_->closed()) {
      return;
    }
    OnTick();
    if (finished_) {
      return;
    }
  }
}

void DetaAggregator::Dispatch(const net::Message& m) {
  if (m.type == kAuthChallenge) {
    AnswerChallenge(*endpoint_, m, token_private_);
  } else if (m.type == kAuthRegister) {
    auto result = registrations_.Accept(*endpoint_, m, token_private_, rng_);
    if (result.has_value()) {
      channels_.insert_or_assign(result->first, std::move(result->second));
      // Registered channels are durable state: without them a crash before the first
      // aggregation would leave the revived node unable to open any party's uploads.
      SaveState(last_aggregated_round_);
    }
  } else if (m.type == kJobStart) {
    HandleJobStart(m);
  } else if (m.type == kRoundBegin) {
    HandleRoundBegin(m);
  } else if (m.type == kRoundUpload) {
    HandleUpload(m);
  } else if (m.type == kRoundDone) {
    net::Reader r(m.payload);
    MarkRoundDone(m.from, static_cast<int>(r.ReadU32()));
  } else if (m.type == kPartyDone) {
    done_parties_.insert(m.from);
  } else if (m.type == kShutdown) {
    if (last_aggregated_round_ >= config_.rounds) {
      // Completion fanout from the initiator. Don't vanish yet: a party whose final
      // round.result was lost still needs this node alive to re-serve it.
      done_pending_ = false;  // the fanout doubles as the round.done ack
      StartDraining();
    } else {
      finished_ = true;
    }
  } else {
    LOG_WARNING << config_.name << ": unexpected message type " << m.type;
  }
}

void DetaAggregator::HandleJobStart(const net::Message& m) {
  if (!config_.is_initiator) {
    LOG_WARNING << config_.name << ": job.start sent to a follower aggregator — ignored";
    return;
  }
  if (current_round_ == 0) {
    // Resume-aware: a freshly constructed initiator starts at round 1; one revived or
    // restored from a snapshot picks up right after its last aggregated round.
    StartCollecting(last_aggregated_round_ + 1);
    if (finished_) {
      return;  // injected crash fired inside StartCollecting
    }
    SendRoundBegin();
    done_.clear();
    begin_attempts_ = 1;
    next_begin_resend_ =
        Clock::now() + std::chrono::milliseconds(config_.retry.TimeoutForAttempt(0));
  }
  // Ack even for a duplicate job.start: the first ack may have been dropped.
  endpoint_->Send(m.from, kJobStartAck, {});
}

void DetaAggregator::SendRoundBegin() {
  net::Writer w;
  w.WriteU32(static_cast<uint32_t>(current_round_));
  for (const std::string& party : config_.party_names) {
    endpoint_->Send(party, kRoundBegin, w.buffer());
  }
  // Followers get the round notice too, so their collection deadline starts even when
  // every upload to them is delayed or dropped.
  for (const std::string& peer : config_.aggregator_names) {
    if (peer != config_.name) {
      endpoint_->Send(peer, kRoundBegin, w.buffer());
    }
  }
}

void DetaAggregator::HandleRoundBegin(const net::Message& m) {
  net::Reader r(m.payload);
  int round = static_cast<int>(r.ReadU32());
  if (config_.is_initiator) {
    LOG_WARNING << config_.name << ": initiator received round.begin — ignored";
    return;
  }
  // round.begin for round r+1 is the implicit ack of our round.done for round r.
  if (done_pending_ && round > done_round_) {
    done_pending_ = false;
  }
  if (round <= last_aggregated_round_ || (collecting_ && round <= current_round_)) {
    return;  // retransmission of a round we already know about
  }
  StartCollecting(round);
}

void DetaAggregator::StartCollecting(int round) {
  if (config_.crash_at_round > 0 && round == config_.crash_at_round) {
    // Injected crash: die before staging any of round |round|'s fragments, exactly as a
    // process kill at the round boundary would. Every caller checks finished_ after
    // this returns. The job driver revives a replacement from the last snapshot.
    LOG_WARNING << config_.name << ": injected crash at round " << round;
    DETA_COUNTER("persist.crash.injected").Increment();
    crashed_.store(true);
    finished_ = true;
    endpoint_->Close();
    return;
  }
  current_round_ = round;
  collecting_ = true;
  round_deadline_ =
      Clock::now() + std::chrono::milliseconds(config_.round_timeout_ms);
  LOG_DEBUG << config_.name << ": collecting round " << round;
}

void DetaAggregator::HandleUpload(const net::Message& m) {
  auto channel = channels_.find(m.from);
  if (channel == channels_.end()) {
    LOG_WARNING << config_.name << ": upload from unregistered party " << m.from;
    return;
  }
  net::Reader r(m.payload);
  int round = static_cast<int>(r.ReadU32());
  if (round <= last_aggregated_round_) {
    if (round == result_round_ && !result_plain_.empty()) {
      // The party is retransmitting because it never saw our result — re-serve it.
      ResendResult(m.from);
    } else {
      LOG_WARNING << config_.name << ": dropping straggler fragment from " << m.from
                  << " for completed round " << round;
    }
    return;
  }
  if (!collecting_) {
    // Follower whose round.begin is still in flight: the first upload starts the round.
    StartCollecting(round);
    if (finished_) {
      return;  // injected crash fired inside StartCollecting
    }
  }
  if (round != current_round_) {
    LOG_WARNING << config_.name << ": upload from " << m.from << " for round " << round
                << " while collecting round " << current_round_;
    return;
  }
  if (staged_.count(m.from)) {
    return;  // retransmission of a fragment we already hold
  }
  Bytes sealed = r.ReadBytes();
  std::optional<Bytes> fragment = channel->second.Open(sealed);
  if (!fragment.has_value()) {
    LOG_WARNING << config_.name << ": failed to open sealed fragment from " << m.from;
    return;
  }
  // Everything the aggregator learns lands in CVM encrypted memory: this is exactly the
  // material the §6 breach experiments dump.
  cvm_->GuestWrite("update:" + m.from + ":r" + std::to_string(round), *fragment);
  staged_[m.from] = std::move(*fragment);
  int early = config_.quorum > 0 ? config_.quorum : config_.num_parties;
  if (static_cast<int>(staged_.size()) >= early) {
    Aggregate(round);
  }
}

void DetaAggregator::Aggregate(int round) {
  telemetry::Span span("core.deta_agg.aggregate");
  DETA_COUNTER("core.deta_agg.rounds_aggregated").Increment();
  DETA_COUNTER("core.deta_agg.fragments").Add(staged_.size());
  Stopwatch watch;
  Bytes result_payload;

  if (config_.use_paillier) {
    // Homomorphic accumulation; the aggregator never sees plaintext coordinates.
    std::vector<crypto::BigUint> acc;
    for (auto& [party, payload] : staged_) {
      std::vector<crypto::BigUint> ct = fl::DeserializeCiphertexts(payload);
      if (acc.empty()) {
        acc = std::move(ct);
      } else {
        paillier_codec_->AccumulateInPlace(acc, ct);
      }
    }
    result_payload = fl::SerializeCiphertexts(acc);
  } else {
    std::vector<fl::ModelUpdate> updates;
    updates.reserve(staged_.size());
    for (auto& [party, payload] : staged_) {
      updates.push_back(fl::DeserializeUpdate(payload));
    }
    fl::ModelUpdate aggregated;
    aggregated.values = algorithm_->Aggregate(updates);
    aggregated.weight = 1.0;
    result_payload = fl::SerializeUpdate(aggregated);
  }
  std::vector<std::string> missing;
  for (const std::string& party : config_.party_names) {
    if (!staged_.count(party)) {
      missing.push_back(party);
    }
  }
  staged_.clear();
  last_aggregated_round_ = round;
  collecting_ = false;
  result_round_ = round;
  result_plain_ = result_payload;
  cvm_->GuestWrite("aggregated:r" + std::to_string(round), result_payload);
  // Crash consistency: the snapshot lands on disk *before* any party or peer can
  // observe this round as complete (result distribution / round.done below). A crash
  // at any later point revives into a state that can re-serve this round's result.
  SaveState(round);
  double agg_seconds = watch.ElapsedSeconds();
  if (!missing.empty()) {
    LOG_WARNING << config_.name << ": aggregated round " << round << " without "
                << missing.size() << " part" << (missing.size() == 1 ? "y" : "ies");
  }

  // Distribute AU[A_j] back to every party over its secure channel.
  for (auto& [party, channel] : channels_) {
    net::Writer w;
    w.WriteU32(static_cast<uint32_t>(round));
    w.WriteBytes(channel.Seal(result_payload, rng_));
    endpoint_->Send(party, kRoundResult, w.Take());
  }

  // Timing + dropout report for the observer.
  if (!config_.observer.empty()) {
    net::Writer w;
    w.WriteU32(static_cast<uint32_t>(round));
    w.WriteDouble(agg_seconds);
    w.WriteU64(result_payload.size());
    w.WriteU32(static_cast<uint32_t>(missing.size()));
    for (const std::string& party : missing) {
      w.WriteString(party);
    }
    endpoint_->Send(config_.observer, kAggReport, w.Take());
  }

  // Synchronization: followers notify the initiator; the initiator counts itself.
  if (config_.is_initiator) {
    MarkRoundDone(config_.name, round);
  } else {
    done_pending_ = true;
    done_round_ = round;
    done_attempts_ = 1;
    next_done_resend_ =
        Clock::now() + std::chrono::milliseconds(config_.retry.TimeoutForAttempt(0));
    SendRoundDone();
  }
}

void DetaAggregator::ResendResult(const std::string& party) {
  auto channel = channels_.find(party);
  if (channel == channels_.end()) {
    return;
  }
  LOG_DEBUG << config_.name << ": re-serving round " << result_round_ << " result to "
            << party;
  net::Writer w;
  w.WriteU32(static_cast<uint32_t>(result_round_));
  w.WriteBytes(channel->second.Seal(result_plain_, rng_));
  endpoint_->Send(party, kRoundResult, w.Take());
}

void DetaAggregator::SendRoundDone() {
  net::Writer w;
  w.WriteU32(static_cast<uint32_t>(done_round_));
  endpoint_->Send(config_.initiator_name, kRoundDone, w.Take());
}

void DetaAggregator::MarkRoundDone(const std::string& aggregator, int round) {
  if (!config_.is_initiator) {
    LOG_WARNING << config_.name << ": round.done received by a follower";
    return;
  }
  if (round != current_round_) {
    LOG_WARNING << config_.name << ": stale round.done for round " << round;
    return;
  }
  // A set, not a counter: a retransmitted round.done from the same follower must not
  // count twice. Completion needs every aggregator including ourselves, and our own
  // name only lands here after our own aggregation.
  done_.insert(aggregator);
  if (static_cast<int>(done_.size()) < config_.num_aggregators) {
    return;
  }
  if (current_round_ < config_.rounds) {
    done_.clear();
    StartCollecting(current_round_ + 1);
    if (finished_) {
      return;  // injected crash fired inside StartCollecting
    }
    SendRoundBegin();
    begin_attempts_ = 1;
    next_begin_resend_ =
        Clock::now() + std::chrono::milliseconds(config_.retry.TimeoutForAttempt(0));
    return;
  }
  // Training complete: fan out shutdown to parties and follower aggregators, then
  // drain rather than exit — a party whose final round.result was dropped recovers by
  // retransmitting its upload, which only works while this node is still answering.
  // Parties and followers that miss the (unacknowledged) shutdown exit on their own —
  // parties deterministically after their final round, followers when their own drain
  // runs dry.
  for (const std::string& party : config_.party_names) {
    endpoint_->Send(party, kShutdown, {});
  }
  for (const std::string& peer : config_.aggregator_names) {
    if (peer != config_.name) {
      endpoint_->Send(peer, kShutdown, {});
    }
  }
  LOG_INFO << config_.name << ": training complete after " << config_.rounds << " rounds";
  StartDraining();
}

void DetaAggregator::SaveState(int round) {
  if (config_.store == nullptr || config_.checkpoint_every <= 0 ||
      round % config_.checkpoint_every != 0) {
    return;
  }
  persist::Snapshot snapshot;
  snapshot.role = config_.name;
  snapshot.round = round;
  net::Writer agg;
  agg.WriteU32(static_cast<uint32_t>(result_round_));
  agg.WriteU32(static_cast<uint32_t>(last_aggregated_round_));
  snapshot.Add(persist::SectionType::kRaw, "agg", agg.Take());
  persist::SealKey seal = persist::SealKey::Derive(config_.seal_seed, config_.name);
  snapshot.Add(persist::SectionType::kRaw, "result",
               seal.Seal(result_plain_, rng_));
  net::Writer ch;
  ch.WriteU32(static_cast<uint32_t>(channels_.size()));
  for (const auto& [party, channel] : channels_) {
    ch.WriteString(party);
    ch.WriteBytes(channel.SerializeState());
  }
  snapshot.Add(persist::SectionType::kChannelState, "channels",
               seal.Seal(ch.Take(), rng_));
  snapshot.Add(persist::SectionType::kRegistrationCache, "registrations",
               seal.Seal(registrations_.Serialize(), rng_));
  snapshot.Add(persist::SectionType::kRngState, "rng",
               seal.Seal(rng_.SerializeState(), rng_));
  if (!config_.store->Write(snapshot)) {
    LOG_WARNING << config_.name << ": snapshot write failed for round " << round;
  }
}

bool DetaAggregator::RestoreFromSnapshot() {
  if (config_.store == nullptr) {
    return false;
  }
  std::optional<persist::Snapshot> snapshot =
      config_.resume_max_round >= 0
          ? config_.store->LoadAt(config_.name, config_.resume_max_round)
          : config_.store->Load(config_.name);
  if (!snapshot.has_value()) {
    return false;
  }
  if (config_.resume_max_round >= 0 && snapshot->round != config_.resume_max_round) {
    LOG_WARNING << config_.name << ": no snapshot at round " << config_.resume_max_round;
    return false;
  }
  persist::SealKey seal = persist::SealKey::Derive(config_.seal_seed, config_.name);
  const persist::Section* agg = snapshot->Find("agg");
  const persist::Section* result = snapshot->Find("result");
  const persist::Section* channels = snapshot->Find("channels");
  const persist::Section* registrations = snapshot->Find("registrations");
  const persist::Section* rng_section = snapshot->Find("rng");
  if (agg == nullptr || result == nullptr || channels == nullptr ||
      registrations == nullptr || rng_section == nullptr) {
    return false;
  }
  try {
    net::Reader r(agg->data);
    int result_round = static_cast<int>(r.ReadU32());
    int last_aggregated = static_cast<int>(r.ReadU32());
    std::optional<Bytes> result_plain = seal.Open(result->data);
    std::optional<Bytes> channels_plain = seal.Open(channels->data);
    std::optional<Bytes> registrations_plain = seal.Open(registrations->data);
    std::optional<Bytes> rng_plain = seal.Open(rng_section->data);
    if (!result_plain.has_value() || !channels_plain.has_value() ||
        !registrations_plain.has_value() || !rng_plain.has_value()) {
      return false;
    }
    std::map<std::string, net::SecureChannel> restored;
    net::Reader cr(*channels_plain);
    uint32_t count = cr.ReadU32();
    for (uint32_t i = 0; i < count; ++i) {
      std::string party = cr.ReadString();
      std::optional<net::SecureChannel> channel =
          net::SecureChannel::DeserializeState(cr.ReadBytes(), kResumeSeqSlack);
      if (!channel.has_value()) {
        return false;
      }
      restored.emplace(std::move(party), std::move(*channel));
    }
    if (!registrations_.Deserialize(*registrations_plain) ||
        !rng_.RestoreState(*rng_plain)) {
      return false;
    }
    channels_ = std::move(restored);
    result_round_ = result_round;
    result_plain_ = std::move(*result_plain);
    last_aggregated_round_ = last_aggregated;
    LOG_INFO << config_.name << ": resumed from snapshot at round " << snapshot->round
             << " (generation " << snapshot->generation << ")";
    return true;
  } catch (const CheckFailure&) {
    return false;
  }
}

void DetaAggregator::StartDraining() {
  if (draining_) {
    return;
  }
  draining_ = true;
  drain_deadline_ = Clock::now() + std::chrono::milliseconds(config_.drain_timeout_ms);
  LOG_DEBUG << config_.name << ": draining";
}

void DetaAggregator::FailRound(int round, int have, int need) {
  LOG_WARNING << config_.name << ": quorum failure in round " << round << " (" << have
              << "/" << need << " fragments at deadline)";
  if (!config_.observer.empty()) {
    net::Writer w;
    w.WriteU32(static_cast<uint32_t>(round));
    w.WriteU32(static_cast<uint32_t>(have));
    w.WriteU32(static_cast<uint32_t>(need));
    endpoint_->Send(config_.observer, kAggFailed, w.Take());
  }
  finished_ = true;
}

void DetaAggregator::OnTick() {
  if (finished_) {
    return;
  }
  Clock::time_point now = Clock::now();

  if (draining_) {
    bool all_confirmed = true;
    for (const std::string& party : config_.party_names) {
      if (!done_parties_.count(party)) {
        all_confirmed = false;
        break;
      }
    }
    if (all_confirmed || now >= drain_deadline_) {
      finished_ = true;
    }
    return;  // no round deadlines or retransmissions apply while draining
  }

  // Round-collection deadline: aggregate what we have if the floor is met, otherwise
  // fail the round with a typed error instead of waiting forever.
  if (collecting_ && now >= round_deadline_) {
    int have = static_cast<int>(staged_.size());
    int need = config_.min_quorum > 0 ? config_.min_quorum : config_.num_parties;
    if (have >= need) {
      Aggregate(current_round_);
    } else {
      FailRound(current_round_, have, need);
      return;
    }
  }

  // Initiator: keep nudging parties (and followers) with round.begin until the round
  // completes — recovers parties whose original notice was dropped.
  if (config_.is_initiator && current_round_ > 0 &&
      static_cast<int>(done_.size()) < config_.num_aggregators &&
      begin_attempts_ < config_.retry.max_attempts && now >= next_begin_resend_) {
    SendRoundBegin();
    next_begin_resend_ = now + std::chrono::milliseconds(
                                   config_.retry.TimeoutForAttempt(begin_attempts_));
    ++begin_attempts_;
  }

  // Follower: retransmit round.done until the next round.begin (or shutdown) acks it.
  if (done_pending_ && now >= next_done_resend_) {
    if (done_attempts_ >= config_.retry.max_attempts) {
      done_pending_ = false;
      if (done_round_ >= config_.rounds) {
        // Final round and the initiator never advanced us: assume it is gone, but keep
        // serving cached results to straggling parties before exiting.
        StartDraining();
      }
      return;
    }
    SendRoundDone();
    next_done_resend_ = now + std::chrono::milliseconds(
                                  config_.retry.TimeoutForAttempt(done_attempts_));
    ++done_attempts_;
  }

  if (now >= idle_deadline_) {
    LOG_WARNING << config_.name << ": no traffic for " << config_.idle_timeout_ms
                << "ms — giving up";
    finished_ = true;
  }
}

}  // namespace deta::core
