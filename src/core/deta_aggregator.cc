#include "core/deta_aggregator.h"

#include "cc/attestation_proxy.h"
#include "common/check.h"
#include "common/logging.h"
#include "common/sim_clock.h"
#include "net/codec.h"

namespace deta::core {

DetaAggregator::DetaAggregator(AggregatorConfig config, net::MessageBus& bus,
                               std::shared_ptr<cc::Cvm> cvm, crypto::SecureRng rng)
    : config_(std::move(config)), bus_(bus), cvm_(std::move(cvm)), rng_(std::move(rng)) {
  endpoint_ = bus_.CreateEndpoint(config_.name);
  // The token was injected by the attestation proxy in phase I; its presence is this
  // node's proof of having passed attestation.
  std::optional<Bytes> token = cvm_->GuestRead(cc::kTokenRegion);
  DETA_CHECK_MSG(token.has_value(),
                 "aggregator " << config_.name << " CVM has no provisioned auth token");
  token_private_ = crypto::BigUint::FromBytes(*token);

  if (config_.use_paillier) {
    DETA_CHECK(config_.paillier_public.has_value());
    paillier_codec_ = std::make_unique<fl::PaillierVectorCodec>(
        *config_.paillier_public, config_.num_parties, config_.paillier_lane_bits);
  } else {
    algorithm_ = fl::MakeAlgorithm(config_.algorithm);
  }
}

DetaAggregator::~DetaAggregator() { Join(); }

void DetaAggregator::Start() {
  thread_ = std::thread([this] { Run(); });
}

void DetaAggregator::Join() {
  if (thread_.joinable()) {
    thread_.join();
  }
}

void DetaAggregator::Run() {
  for (;;) {
    std::optional<net::Message> m = endpoint_->Receive();
    if (!m.has_value()) {
      return;  // endpoint closed
    }
    if (m->type == kAuthChallenge) {
      AnswerChallenge(*endpoint_, *m, token_private_);
    } else if (m->type == kAuthRegister) {
      auto result = AcceptRegistration(*endpoint_, *m, token_private_, rng_);
      if (result.has_value()) {
        channels_.insert(std::move(*result));
      }
    } else if (m->type == kJobStart) {
      DETA_CHECK_MSG(config_.is_initiator, "job.start sent to a follower aggregator");
      BeginRound(1);
    } else if (m->type == kRoundUpload) {
      HandleUpload(*m);
    } else if (m->type == kRoundDone) {
      net::Reader r(m->payload);
      HandleRoundDone(static_cast<int>(r.ReadU32()));
    } else if (m->type == kShutdown) {
      return;
    } else {
      LOG_WARNING << config_.name << ": unexpected message type " << m->type;
    }
    if (finished_) {
      return;
    }
  }
}

void DetaAggregator::BeginRound(int round) {
  current_round_ = round;
  followers_done_ = 0;
  LOG_DEBUG << config_.name << ": beginning round " << round;
  net::Writer w;
  w.WriteU32(static_cast<uint32_t>(round));
  for (const std::string& party : config_.party_names) {
    endpoint_->Send(party, kRoundBegin, w.buffer());
  }
}

void DetaAggregator::HandleUpload(const net::Message& m) {
  auto channel = channels_.find(m.from);
  if (channel == channels_.end()) {
    LOG_WARNING << config_.name << ": upload from unregistered party " << m.from;
    return;
  }
  net::Reader r(m.payload);
  int round = static_cast<int>(r.ReadU32());
  if (round <= last_aggregated_round_) {
    LOG_WARNING << config_.name << ": dropping straggler fragment from " << m.from
                << " for completed round " << round;
    return;
  }
  Bytes sealed = r.ReadBytes();
  std::optional<Bytes> fragment = channel->second.Open(sealed);
  if (!fragment.has_value()) {
    LOG_WARNING << config_.name << ": failed to open sealed fragment from " << m.from;
    return;
  }
  // Everything the aggregator learns lands in CVM encrypted memory: this is exactly the
  // material the §6 breach experiments dump.
  cvm_->GuestWrite("update:" + m.from + ":r" + std::to_string(round), *fragment);
  staged_[m.from] = std::move(*fragment);
  int quorum = config_.quorum > 0 ? config_.quorum : config_.num_parties;
  if (static_cast<int>(staged_.size()) >= quorum) {
    last_aggregated_round_ = round;
    AggregateAndDistribute(round);
  }
}

void DetaAggregator::AggregateAndDistribute(int round) {
  Stopwatch watch;
  Bytes result_payload;

  if (config_.use_paillier) {
    // Homomorphic accumulation; the aggregator never sees plaintext coordinates.
    std::vector<crypto::BigUint> acc;
    for (auto& [party, payload] : staged_) {
      std::vector<crypto::BigUint> ct = fl::DeserializeCiphertexts(payload);
      if (acc.empty()) {
        acc = std::move(ct);
      } else {
        paillier_codec_->AccumulateInPlace(acc, ct);
      }
    }
    result_payload = fl::SerializeCiphertexts(acc);
  } else {
    std::vector<fl::ModelUpdate> updates;
    updates.reserve(staged_.size());
    for (auto& [party, payload] : staged_) {
      updates.push_back(fl::DeserializeUpdate(payload));
    }
    fl::ModelUpdate aggregated;
    aggregated.values = algorithm_->Aggregate(updates);
    aggregated.weight = 1.0;
    result_payload = fl::SerializeUpdate(aggregated);
  }
  staged_.clear();
  cvm_->GuestWrite("aggregated:r" + std::to_string(round), result_payload);
  double agg_seconds = watch.ElapsedSeconds();

  // Distribute AU[A_j] back to every party over its secure channel.
  for (auto& [party, channel] : channels_) {
    net::Writer w;
    w.WriteU32(static_cast<uint32_t>(round));
    w.WriteBytes(channel.Seal(result_payload, rng_));
    endpoint_->Send(party, kRoundResult, w.Take());
  }

  // Timing report for the latency model.
  if (!config_.observer.empty()) {
    net::Writer w;
    w.WriteU32(static_cast<uint32_t>(round));
    w.WriteDouble(agg_seconds);
    w.WriteU64(result_payload.size());
    endpoint_->Send(config_.observer, kAggReport, w.Take());
  }

  // Synchronization: followers notify the initiator; the initiator counts itself.
  net::Writer w;
  w.WriteU32(static_cast<uint32_t>(round));
  if (config_.is_initiator) {
    HandleRoundDone(round);
  } else {
    endpoint_->Send(config_.initiator_name, kRoundDone, w.Take());
  }
}

void DetaAggregator::HandleRoundDone(int round) {
  DETA_CHECK_MSG(config_.is_initiator, "round.done received by a follower");
  if (round != current_round_) {
    LOG_WARNING << config_.name << ": stale round.done for round " << round;
    return;
  }
  ++followers_done_;
  if (followers_done_ < config_.num_aggregators) {
    return;
  }
  if (current_round_ < config_.rounds) {
    BeginRound(current_round_ + 1);
    return;
  }
  // Training complete: fan out shutdown to parties and follower aggregators.
  for (const std::string& party : config_.party_names) {
    endpoint_->Send(party, kShutdown, {});
  }
  for (const std::string& peer : config_.aggregator_names) {
    if (peer != config_.name) {
      endpoint_->Send(peer, kShutdown, {});
    }
  }
  finished_ = true;
  LOG_INFO << config_.name << ": training complete after " << config_.rounds << " rounds";
}

}  // namespace deta::core
