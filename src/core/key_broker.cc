#include "core/key_broker.h"

#include "common/check.h"
#include "common/logging.h"
#include "common/telemetry.h"
#include "net/codec.h"

namespace deta::core {

Bytes TransformMaterial::Serialize() const {
  net::Writer w;
  w.WriteBytes(permutation_key);
  w.WriteBytes(mapper_seed);
  w.WriteI64(total_params);
  w.WriteU64(proportions.size());
  for (double p : proportions) {
    w.WriteDouble(p);
  }
  w.WriteU32(static_cast<uint32_t>(num_aggregators));
  w.WriteU32(enable_partition ? 1 : 0);
  w.WriteU32(enable_shuffle ? 1 : 0);
  return w.Take();
}

TransformMaterial TransformMaterial::Deserialize(const Bytes& data) {
  net::Reader r(data);
  TransformMaterial m;
  m.permutation_key = r.ReadBytes();
  m.mapper_seed = r.ReadBytes();
  m.total_params = r.ReadI64();
  uint64_t count = r.ReadU64();
  for (uint64_t i = 0; i < count; ++i) {
    m.proportions.push_back(r.ReadDouble());
  }
  m.num_aggregators = static_cast<int>(r.ReadU32());
  m.enable_partition = r.ReadU32() != 0;
  m.enable_shuffle = r.ReadU32() != 0;
  return m;
}

std::shared_ptr<Transform> TransformMaterial::BuildTransform() const {
  DETA_CHECK_GT(total_params, 0);
  std::shared_ptr<ModelMapper> mapper;
  if (proportions.empty()) {
    mapper = std::make_shared<ModelMapper>(
        ModelMapper::Uniform(total_params, num_aggregators, mapper_seed));
  } else {
    mapper = std::make_shared<ModelMapper>(total_params, proportions, mapper_seed);
  }
  auto shuffler = std::make_shared<Shuffler>(permutation_key);
  TransformConfig config;
  config.enable_partition = enable_partition;
  config.enable_shuffle = enable_shuffle;
  return std::make_shared<Transform>(std::move(mapper), std::move(shuffler), config);
}

KeyBroker::KeyBroker(TransformMaterial material, crypto::EcKeyPair identity,
                     int expected_parties, net::MessageBus& bus, crypto::SecureRng rng)
    : material_(std::move(material)),
      identity_(std::move(identity)),
      expected_parties_(expected_parties),
      rng_(std::move(rng)) {
  endpoint_ = bus.CreateEndpoint(kEndpointName);
}

KeyBroker::~KeyBroker() {
  Stop();
  Join();
}

void KeyBroker::Start() {
  thread_ = std::thread([this] { Run(); });
}

void KeyBroker::Stop() { endpoint_->Close(); }

void KeyBroker::Join() {
  if (thread_.joinable()) {
    thread_.join();
  }
}

void KeyBroker::Run() {
  Bytes material_wire = material_.Serialize();
  RegistrationCache registrations;
  std::map<std::string, net::SecureChannel> channels;
  std::set<std::string> served;
  while (expected_parties_ <= 0 ||
         static_cast<int>(served.size()) < expected_parties_) {
    std::optional<net::Message> m = endpoint_->Receive();
    if (!m.has_value()) {
      return;  // endpoint closed (Stop)
    }
    if (m->type == kAuthChallenge) {
      AnswerChallenge(*endpoint_, *m, identity_.private_key);
    } else if (m->type == kAuthRegister) {
      auto result = registrations.Accept(*endpoint_, *m, identity_.private_key, rng_);
      if (result.has_value()) {
        channels.insert_or_assign(result->first, std::move(result->second));
      }
    } else if (m->type == kKeyBrokerFetch) {
      auto it = channels.find(m->from);
      if (it == channels.end()) {
        LOG_WARNING << "key broker: fetch from unregistered party " << m->from;
        continue;
      }
      // Re-seal per fetch: each reply carries a fresh channel sequence number, so a
      // retransmitted fetch gets a reply the party's replay window still accepts.
      endpoint_->Send(m->from, kKeyBrokerMaterial,
                      it->second.Seal(material_wire, rng_));
      bool first = served.insert(m->from).second;
      LOG_DEBUG << "key broker: served transform material to " << m->from
                << (first ? "" : " (re-serve)") << " (" << served.size() << "/"
                << (expected_parties_ > 0 ? std::to_string(expected_parties_) : "∞")
                << ")";
    } else {
      LOG_WARNING << "key broker: unexpected message type " << m->type;
    }
  }
}

std::optional<TransformMaterial> FetchTransformMaterial(
    net::Endpoint& endpoint, const crypto::EcPoint& broker_public,
    crypto::SecureRng& rng, const net::RetryPolicy& policy) {
  // Spans the whole verify -> register -> fetch handshake, so `span.core.kb.fetch.*`
  // histograms report end-to-end handshake latency including retries.
  telemetry::Span span("core.kb.fetch");
  DETA_COUNTER("core.kb.fetch_started").Increment();
  if (!VerifyAggregator(endpoint, KeyBroker::kEndpointName, broker_public, rng,
                        policy)) {
    LOG_WARNING << endpoint.name() << ": key broker failed identity challenge";
    return std::nullopt;
  }
  std::optional<net::SecureChannel> channel = RegisterWithAggregator(
      endpoint, KeyBroker::kEndpointName, broker_public, rng, policy);
  if (!channel.has_value()) {
    return std::nullopt;
  }
  std::optional<net::Message> m = net::RequestReply(
      endpoint, KeyBroker::kEndpointName, kKeyBrokerFetch, {}, kKeyBrokerMaterial,
      policy);
  if (!m.has_value()) {
    return std::nullopt;
  }
  std::optional<Bytes> material = channel->Open(m->payload);
  if (!material.has_value()) {
    LOG_WARNING << endpoint.name() << ": key broker material failed to unseal";
    return std::nullopt;
  }
  DETA_COUNTER("core.kb.fetch_ok").Increment();
  return TransformMaterial::Deserialize(*material);
}

}  // namespace deta::core
