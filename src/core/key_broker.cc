#include "core/key_broker.h"

#include "core/deta_aggregator.h"

#include "common/check.h"
#include "common/logging.h"
#include "common/telemetry.h"
#include "net/codec.h"

namespace deta::core {

Bytes TransformMaterial::Serialize() const {
  net::Writer w;
  // ExposeForSeal: the serialized material only travels sealed — inside the broker's
  // SecureChannel replies and (never today, but structurally) sealed snapshot sections.
  w.WriteBytes(permutation_key.ExposeForSeal());
  w.WriteBytes(mapper_seed.ExposeForSeal());
  w.WriteI64(total_params);
  w.WriteU64(proportions.size());
  for (double p : proportions) {
    w.WriteDouble(p);
  }
  w.WriteU32(static_cast<uint32_t>(num_aggregators));
  w.WriteU32(enable_partition ? 1 : 0);
  w.WriteU32(enable_shuffle ? 1 : 0);
  // Appended after the v1 fields so material serialized before the Paillier extension
  // (old sealed snapshots) still parses: Deserialize reads it only when bytes remain.
  w.WriteBytes(paillier_key.ExposeForSeal());
  return w.Take();
}

TransformMaterial TransformMaterial::Deserialize(const Bytes& data) {
  net::Reader r(data);
  TransformMaterial m;
  m.permutation_key = Secret<Bytes>(r.ReadBytes());
  m.mapper_seed = Secret<Bytes>(r.ReadBytes());
  m.total_params = r.ReadI64();
  uint64_t count = r.ReadU64();
  for (uint64_t i = 0; i < count; ++i) {
    m.proportions.push_back(r.ReadDouble());
  }
  m.num_aggregators = static_cast<int>(r.ReadU32());
  m.enable_partition = r.ReadU32() != 0;
  m.enable_shuffle = r.ReadU32() != 0;
  if (!r.AtEnd()) {
    m.paillier_key = Secret<Bytes>(r.ReadBytes());
  }
  return m;
}

std::shared_ptr<Transform> TransformMaterial::BuildTransform() const {
  DETA_CHECK_GT(total_params, 0);
  std::shared_ptr<ModelMapper> mapper;
  // ExposeForCrypto: the seed and key feed PRF-driven derivations (mapper layout,
  // shuffle permutation); the Shuffler re-wraps the key in its own Secret member.
  const Bytes& seed = mapper_seed.ExposeForCrypto();
  if (proportions.empty()) {
    mapper = std::make_shared<ModelMapper>(
        ModelMapper::Uniform(total_params, num_aggregators, seed));
  } else {
    mapper = std::make_shared<ModelMapper>(total_params, proportions, seed);
  }
  auto shuffler = std::make_shared<Shuffler>(permutation_key.ExposeForCrypto());
  TransformConfig config;
  config.enable_partition = enable_partition;
  config.enable_shuffle = enable_shuffle;
  return std::make_shared<Transform>(std::move(mapper), std::move(shuffler), config);
}

KeyBroker::KeyBroker(TransformMaterial material, crypto::EcKeyPair identity,
                     int expected_parties, net::Transport& transport, crypto::SecureRng rng,
                     KeyBrokerDurability durability)
    : material_(std::move(material)),
      identity_(std::move(identity)),
      expected_parties_(expected_parties),
      durability_(durability),
      rng_(std::move(rng)) {
  endpoint_ = transport.CreateEndpoint(kEndpointName);
}

KeyBroker::~KeyBroker() {
  Stop();
  Join();
}

void KeyBroker::Start() {
  thread_ = ServiceThread([this] { Run(); });
}

void KeyBroker::Stop() { endpoint_->Close(); }

void KeyBroker::Join() { thread_.Join(); }

void KeyBroker::Run() {
  if (durability_.resume && !RestoreFromSnapshot()) {
    LOG_WARNING << "key broker: resume requested but no usable snapshot — "
                   "starting with fresh session state";
  }
  // Tick granularity for noticing Stop(): with expected_parties <= 0 nothing but
  // Close() ends the loop, so an indefinite Receive() could outlive the job had a
  // party's final fetch been lost. Bounded waits keep the broker responsive to
  // shutdown no matter what the bus drops (lint rule DL-L1).
  constexpr int kTickMs = 200;
  Bytes material_wire = material_.Serialize();
  while (expected_parties_ <= 0 ||
         static_cast<int>(served_.size()) < expected_parties_) {
    std::optional<net::Message> m = endpoint_->ReceiveFor(kTickMs);
    if (!m.has_value()) {
      if (endpoint_->closed()) {
        return;  // Stop()
      }
      continue;  // idle tick; keep serving
    }
    if (m->type == kAuthChallenge) {
      AnswerChallenge(*endpoint_, *m, identity_.private_key);
    } else if (m->type == kAuthRegister) {
      auto result = registrations_.Accept(*endpoint_, *m, identity_.private_key, rng_);
      if (result.has_value()) {
        channels_.insert_or_assign(result->first, std::move(result->second));
        SaveState();
      }
    } else if (m->type == kKeyBrokerFetch) {
      if (durability_.crash_after_serves > 0 && !served_.count(m->from) &&
          static_cast<int>(served_.size()) + 1 >= durability_.crash_after_serves) {
        // Injected crash: die instead of serving the Nth distinct party. The job
        // driver revives a replacement; the stranded party restarts its whole
        // verify/register/fetch handshake against it.
        LOG_WARNING << "key broker: injected crash before serving " << m->from;
        DETA_COUNTER("persist.crash.injected").Increment();
        crashed_.store(true);
        endpoint_->Close();
        return;
      }
      auto it = channels_.find(m->from);
      if (it == channels_.end()) {
        LOG_WARNING << "key broker: fetch from unregistered party " << m->from;
        continue;
      }
      // Re-seal per fetch: each reply carries a fresh channel sequence number, so a
      // retransmitted fetch gets a reply the party's replay window still accepts.
      endpoint_->Send(m->from, kKeyBrokerMaterial,
                      it->second.Seal(material_wire, rng_));
      bool first = served_.insert(m->from).second;
      if (first) {
        SaveState();
      }
      LOG_DEBUG << "key broker: served transform material to " << m->from
                << (first ? "" : " (re-serve)") << " (" << served_.size() << "/"
                << (expected_parties_ > 0 ? std::to_string(expected_parties_) : "∞")
                << ")";
    } else if (m->type == kShutdown) {
      // Sent by a remote observer (multi-process deployments, where the job cannot
      // call Stop() on a broker it does not own). Local jobs still use Stop().
      endpoint_->Close();
      return;
    } else {
      LOG_WARNING << "key broker: unexpected message type " << m->type;
    }
  }
}

void KeyBroker::SaveState() {
  if (durability_.store == nullptr) {
    return;
  }
  persist::Snapshot snapshot;
  snapshot.role = kEndpointName;
  snapshot.round = static_cast<int>(served_.size());  // serve progress, not a round
  persist::SealKey seal = persist::SealKey::Derive(durability_.seal_seed, kEndpointName);
  net::Writer ch;
  ch.WriteU32(static_cast<uint32_t>(channels_.size()));
  for (const auto& [party, channel] : channels_) {
    ch.WriteString(party);
    ch.WriteBytes(channel.SerializeState());
  }
  snapshot.Add(persist::SectionType::kChannelState, "channels",
               seal.Seal(ch.Take(), rng_));
  snapshot.Add(persist::SectionType::kRegistrationCache, "registrations",
               seal.Seal(registrations_.Serialize(), rng_));
  snapshot.Add(persist::SectionType::kRngState, "rng",
               seal.Seal(rng_.SerializeState(), rng_));
  net::Writer sw;
  sw.WriteU32(static_cast<uint32_t>(served_.size()));
  for (const std::string& party : served_) {
    sw.WriteString(party);
  }
  snapshot.Add(persist::SectionType::kRaw, "served", sw.Take());
  if (!durability_.store->Write(snapshot)) {
    LOG_WARNING << "key broker: snapshot write failed";
  }
}

bool KeyBroker::RestoreFromSnapshot() {
  if (durability_.store == nullptr) {
    return false;
  }
  std::optional<persist::Snapshot> snapshot = durability_.store->Load(kEndpointName);
  if (!snapshot.has_value()) {
    return false;
  }
  persist::SealKey seal = persist::SealKey::Derive(durability_.seal_seed, kEndpointName);
  const persist::Section* channels = snapshot->Find("channels");
  const persist::Section* registrations = snapshot->Find("registrations");
  const persist::Section* rng_section = snapshot->Find("rng");
  const persist::Section* served = snapshot->Find("served");
  if (channels == nullptr || registrations == nullptr || rng_section == nullptr ||
      served == nullptr) {
    return false;
  }
  try {
    std::optional<Bytes> channels_plain = seal.Open(channels->data);
    std::optional<Bytes> registrations_plain = seal.Open(registrations->data);
    std::optional<Bytes> rng_plain = seal.Open(rng_section->data);
    if (!channels_plain.has_value() || !registrations_plain.has_value() ||
        !rng_plain.has_value()) {
      return false;
    }
    std::map<std::string, net::SecureChannel> restored;
    net::Reader cr(*channels_plain);
    uint32_t count = cr.ReadU32();
    for (uint32_t i = 0; i < count; ++i) {
      std::string party = cr.ReadString();
      std::optional<net::SecureChannel> channel =
          net::SecureChannel::DeserializeState(cr.ReadBytes(), uint64_t{1} << 20);
      if (!channel.has_value()) {
        return false;
      }
      restored.emplace(std::move(party), std::move(*channel));
    }
    std::set<std::string> served_names;
    net::Reader sr(served->data);
    uint32_t served_count = sr.ReadU32();
    for (uint32_t i = 0; i < served_count; ++i) {
      served_names.insert(sr.ReadString());
    }
    if (!registrations_.Deserialize(*registrations_plain) ||
        !rng_.RestoreState(*rng_plain)) {
      return false;
    }
    channels_ = std::move(restored);
    served_ = std::move(served_names);
    LOG_INFO << "key broker: resumed with " << served_.size()
             << " parties already served (generation " << snapshot->generation << ")";
    return true;
  } catch (const CheckFailure&) {
    return false;
  }
}

std::optional<TransformMaterial> FetchTransformMaterial(
    net::Endpoint& endpoint, const crypto::EcPoint& broker_public,
    crypto::SecureRng& rng, const net::RetryPolicy& policy) {
  // Spans the whole verify -> register -> fetch handshake, so `span.core.kb.fetch.*`
  // histograms report end-to-end handshake latency including retries.
  telemetry::Span span("core.kb.fetch");
  DETA_COUNTER("core.kb.fetch_started").Increment();
  if (!VerifyAggregator(endpoint, KeyBroker::kEndpointName, broker_public, rng,
                        policy)) {
    LOG_WARNING << endpoint.name() << ": key broker failed identity challenge";
    return std::nullopt;
  }
  std::optional<net::SecureChannel> channel = RegisterWithAggregator(
      endpoint, KeyBroker::kEndpointName, broker_public, rng, policy);
  if (!channel.has_value()) {
    return std::nullopt;
  }
  std::optional<net::Message> m = net::RequestReply(
      endpoint, KeyBroker::kEndpointName, kKeyBrokerFetch, {}, kKeyBrokerMaterial,
      policy);
  if (!m.has_value()) {
    return std::nullopt;
  }
  std::optional<Bytes> material = channel->Open(m->payload);
  if (!material.has_value()) {
    LOG_WARNING << endpoint.name() << ": key broker material failed to unseal";
    return std::nullopt;
  }
  DETA_COUNTER("core.kb.fetch_ok").Increment();
  return TransformMaterial::Deserialize(*material);
}

}  // namespace deta::core
