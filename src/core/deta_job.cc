#include "core/deta_job.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>

#include "common/check.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/telemetry.h"
#include "crypto/sha256.h"
#include "net/codec.h"
#include "persist/paillier_key_codec.h"

namespace deta::core {

namespace {

// The aggregator "image" whose SHA-256 is the CVM launch measurement. In a real
// deployment this is the OVMF+workload digest; here a canonical manifest plays that role —
// any tampering (e.g. a malicious aggregator binary) changes the measurement and fails
// attestation, which is exactly the property the tests exercise.
Bytes AggregatorImage(const fl::ExecutionOptions& options) {
  net::Writer w;
  w.WriteString("deta-aggregator-image-v1");
  w.WriteString(options.algorithm);
  w.WriteU32(options.use_paillier ? 1 : 0);
  return w.Take();
}

}  // namespace

DetaJob::DetaJob(fl::ExecutionOptions options, DetaOptions deta,
                 std::vector<std::unique_ptr<fl::Party>> parties,
                 const fl::ModelFactory& global_factory, data::Dataset eval,
                 DetaDeployment deployment)
    : options_(std::move(options)),
      deta_(std::move(deta)),
      deployment_(std::move(deployment)),
      global_model_(global_factory()),
      eval_(std::move(eval)) {
  transport_ = deployment_.transport != nullptr ? deployment_.transport : &bus_;
  // Full party roster (identical in every process); |parties| holds trainers for the
  // local subset when a roster is given explicitly.
  if (deployment_.party_names.empty()) {
    for (const auto& p : parties) {
      party_names_.push_back(p->name());
    }
  } else {
    party_names_ = deployment_.party_names;
  }
  DETA_CHECK(!party_names_.empty());
  DETA_CHECK_GT(deta_.num_aggregators, 0);
  observer_local_ = RoleIsLocal("observer");
  broker_local_ = RoleIsLocal(KeyBroker::kEndpointName);
  DETA_CHECK_MSG(options_.fault_plan.crashes.empty() || deployment_.local_roles.empty(),
                 "crash-fault orchestration requires a single-process job: the observer "
                 "supervises revives and cannot restart roles in other processes");
  crypto::SecureRng setup_rng(
      StringToBytes("deta-job-setup-" + std::to_string(options_.seed)));

  // --- Durability: one StateStore shared by every role of this job. ---
  if (!options_.checkpoint.dir.empty()) {
    persist::StateStoreOptions so;
    so.dir = options_.checkpoint.dir;
    so.keep = options_.checkpoint.keep;
    store_ = std::make_unique<persist::StateStore>(so);
  }
  if (!options_.fault_plan.crashes.empty()) {
    DETA_CHECK_MSG(store_ != nullptr,
                   "crash faults require checkpoint.dir (roles revive from snapshots)");
    DETA_CHECK_MSG(options_.checkpoint.every_n_rounds == 1,
                   "crash faults require checkpoint.every_n_rounds == 1 — an in-run "
                   "revive can only rejoin losslessly from the previous round");
  }
  // Whole-job resume: load the job snapshot (the consistent cut every role restores to)
  // before any role is configured. A missing/mismatched snapshot is a typed setup
  // failure surfaced from Run(), not a silent fresh start.
  const bool whole_job_resume = store_ != nullptr && options_.checkpoint.resume;
  if (whole_job_resume) {
    std::optional<persist::Snapshot> job_snap = store_->Load("job");
    const persist::Section* config =
        job_snap.has_value() ? job_snap->Find("config") : nullptr;
    const persist::Section* observer_state =
        job_snap.has_value() ? job_snap->Find("observer") : nullptr;
    std::optional<std::vector<float>> params =
        job_snap.has_value() ? job_snap->FindFloats("params") : std::nullopt;
    if (!job_snap.has_value()) {
      resume_failed_ = true;
      resume_error_ =
          "resume requested but no verifiable job snapshot in " + options_.checkpoint.dir;
    } else if (config == nullptr || config->data != ConfigDigest(party_names_.size())) {
      resume_failed_ = true;
      resume_error_ = "job snapshot was written by a different configuration "
                      "(seed/topology/algorithm mismatch)";
    } else if (!params.has_value() || observer_state == nullptr ||
               params->size() != static_cast<size_t>(global_model_->NumParameters())) {
      resume_failed_ = true;
      resume_error_ = "job snapshot is missing sections or sized for a different model";
    } else {
      try {
        net::Reader r(observer_state->data);
        resume_cumulative_ = r.ReadDouble();
        resume_round_ = job_snap->round;
        resume_params_ = std::move(*params);
        global_model_->SetFlatParams(resume_params_);
        LOG_INFO << "DeTA job: resuming from job snapshot at round " << resume_round_
                 << " (generation " << job_snap->generation << ")";
      } catch (const CheckFailure&) {
        resume_failed_ = true;
        resume_error_ = "job snapshot observer section is malformed";
      }
    }
  }
  const bool resume_roles = whole_job_resume && !resume_failed_;

  // --- Phase I: platforms, paused CVMs, attestation, token provisioning (steps 1-2) ---
  Stopwatch attest_watch;
  ras_ = std::make_unique<cc::RemoteAttestationService>(setup_rng);
  Bytes image = AggregatorImage(options_);
  proxy_ = std::make_unique<cc::AttestationProxy>(
      ras_->RootKey(), crypto::Sha256Digest(image),
      crypto::SecureRng(setup_rng.NextBytes(32)));

  std::vector<std::string> aggregator_names;
  for (int j = 0; j < deta_.num_aggregators; ++j) {
    std::string name = "aggregator" + std::to_string(j);
    platforms_.push_back(std::make_unique<cc::SevPlatform>(
        "platform" + std::to_string(j), *ras_, setup_rng));
    cvms_.push_back(platforms_.back()->LaunchPausedCvm(name, image));
    auto provision = proxy_->VerifyAndProvision(*platforms_.back(), *cvms_.back());
    DETA_CHECK_MSG(provision.ok, "aggregator attestation failed: " << provision.failure_reason);
    aggregator_names.push_back(name);
  }
  attestation_seconds_ = attest_watch.ElapsedSeconds();

  // --- Shared party-side secrets: model mapper seed + permutation key. The trusted key
  // broker owns them and serves them to parties over authenticated channels (§4.2);
  // aggregators never see this material. ---
  TransformMaterial material;
  material.total_params = global_model_->NumParameters();
  material.mapper_seed = Secret<Bytes>(setup_rng.NextBytes(32));
  material.permutation_key = Secret<Bytes>(
      GeneratePermutationKey(deta_.permutation_key_bits, setup_rng.NextBytes(32)));
  material.proportions = deta_.proportions;
  material.num_aggregators = deta_.num_aggregators;
  material.enable_partition = deta_.enable_partition;
  material.enable_shuffle = deta_.enable_shuffle;
  transform_ = material.BuildTransform();

  // --- Paillier key material: generated before the broker exists so the fusion key
  // rides inside the broker-served material (§4.2 key-broker key material) and reaches
  // parties over the same authenticated channel as the transform secrets. ---
  std::optional<crypto::PaillierKeyPair> paillier;
  if (options_.use_paillier) {
    paillier = crypto::GeneratePaillierKey(setup_rng, options_.paillier_modulus_bits);
    material.paillier_key = Secret<Bytes>(persist::SerializePaillierKey(*paillier));
  }

  crypto::EcKeyPair broker_identity = crypto::GenerateEcKey(setup_rng);
  if (deta_.use_key_broker) {
    // Drawn whether or not the broker is local, preserving the global draw order that
    // keeps per-role RNGs identical across the processes of a deployment.
    crypto::SecureRng broker_rng(setup_rng.NextBytes(32));
    if (broker_local_) {
      KeyBrokerDurability kbd;
      kbd.store = store_.get();
      kbd.resume = resume_roles;
      kbd.crash_after_serves =
          options_.fault_plan.CrashRoundFor(KeyBroker::kEndpointName);
      kbd.seal_seed = options_.seed;
      // expected_parties = 0: the broker serves (and re-serves) until the job stops it
      // after the ready barrier — under fault injection a party may need a re-serve
      // after every party has already been served once.
      key_broker_ = std::make_unique<KeyBroker>(material, broker_identity, 0,
                                                *transport_, std::move(broker_rng), kbd);
    }
  }
  // Retained for crash revives: a replacement broker is rebuilt from the same material
  // and identity; replacement aggregators/parties from the retained configs below.
  material_ = material;
  broker_identity_ = broker_identity;

  // --- Aggregator nodes (threads created at Run) ---
  // Idle-watchdog floor: with staggered party starts the quiet stretches scale with the
  // deployment — an early party legitimately hears nothing while the rest of the roster
  // trickles through setup, and an aggregator waits out the same tail before round 1.
  // The watchdog only has to beat a genuinely dead peer, so cover the worst legitimate
  // silence: the longer of the round/setup timeouts plus the whole stagger window.
  const int stagger_window_ms =
      static_cast<int>(party_names_.size()) * deta_.party_start_stagger_ms;
  const int idle_floor_ms =
      std::max(options_.round_timeout_ms, options_.setup_timeout_ms) + stagger_window_ms;
  aggregator_names_ = aggregator_names;
  for (int j = 0; j < deta_.num_aggregators; ++j) {
    AggregatorConfig ac;
    ac.name = aggregator_names[static_cast<size_t>(j)];
    ac.index = j;
    ac.is_initiator = (j == 0);  // "DeTA randomly selects one aggregator as initiator";
                                 // index 0 is equivalent (names carry no bias) and
                                 // keeps runs reproducible.
    ac.num_parties = static_cast<int>(party_names_.size());
    ac.num_aggregators = deta_.num_aggregators;
    ac.rounds = options_.rounds;
    ac.quorum = deta_.quorum;
    ac.min_quorum = deta_.min_quorum;
    ac.round_timeout_ms = options_.round_timeout_ms;
    ac.idle_timeout_ms = std::max(ac.idle_timeout_ms, idle_floor_ms);
    ac.retry = options_.retry;
    ac.algorithm = options_.algorithm;
    ac.use_paillier = options_.use_paillier;
    if (paillier.has_value()) {
      ac.paillier_public = paillier->pub;
    }
    ac.observer = "observer";
    ac.initiator_name = aggregator_names[0];
    ac.party_names = party_names_;
    ac.aggregator_names = aggregator_names;
    ac.store = store_.get();
    ac.checkpoint_every = options_.checkpoint.every_n_rounds;
    ac.seal_seed = options_.seed;
    ac.crash_at_round = options_.fault_plan.CrashRoundFor(ac.name);
    if (resume_roles) {
      ac.resume = true;
      ac.resume_max_round = resume_round_;  // pin to the job snapshot's consistent cut
    }
    agg_configs_.push_back(ac);
    crypto::SecureRng agg_rng(setup_rng.NextBytes(32));  // drawn even for remote roles
    if (RoleIsLocal(ac.name)) {
      aggregators_.push_back(std::make_unique<DetaAggregator>(
          ac, *transport_, cvms_[static_cast<size_t>(j)], std::move(agg_rng)));
    }
  }

  // --- Party nodes ---
  std::vector<float> initial = global_model_->GetFlatParams();
  for (size_t i = 0; i < party_names_.size(); ++i) {
    DetaPartyConfig pc;
    pc.aggregator_names = aggregator_names;
    pc.token_registry = proxy_->TokenRegistry();
    pc.observer = "observer";
    pc.is_reporter = (i == 0);
    pc.train = options_.train;
    pc.use_paillier = options_.use_paillier;
    pc.paillier = paillier;
    pc.num_parties = static_cast<int>(party_names_.size());
    pc.initial_params = initial;
    pc.rounds = options_.rounds;
    pc.retry = options_.retry;
    pc.idle_timeout_ms = std::max(pc.idle_timeout_ms, idle_floor_ms);
    pc.start_delay_ms = static_cast<int>(i) * deta_.party_start_stagger_ms;
    pc.store = store_.get();
    pc.checkpoint_every = options_.checkpoint.every_n_rounds;
    pc.seal_seed = options_.seed;
    pc.crash_at_round = options_.fault_plan.CrashRoundFor(party_names_[i]);
    if (options_.fault_plan.CrashRoundFor(KeyBroker::kEndpointName) > 0) {
      // A broker crash strands the fetch mid-handshake; retry the whole handshake while
      // the job driver revives the replacement broker.
      pc.broker_fetch_attempts = 5;
    }
    if (resume_roles) {
      pc.resume = true;
      pc.resume_max_round = resume_round_;
    }
    std::shared_ptr<const Transform> party_transform = transform_;
    if (deta_.use_key_broker) {
      pc.fetch_from_key_broker = true;
      pc.key_broker_public = broker_identity.public_key;
      party_transform = nullptr;  // built from broker-served material during setup
      // The Paillier key is broker-served material too: parties receive it over the
      // authenticated fetch channel (or from their own sealed snapshot on resume),
      // never via plain job config.
      pc.paillier.reset();
    }
    party_transform_ = party_transform;
    party_configs_.push_back(pc);
    crypto::SecureRng party_rng(setup_rng.NextBytes(32));  // drawn even for remote roles
    if (!RoleIsLocal(party_names_[i])) {
      continue;
    }
    // Find this role's trainer: positional in the classic all-local shape, by name when
    // the deployment hands this process a subset.
    std::unique_ptr<fl::Party> local;
    for (auto& candidate : parties) {
      if (candidate != nullptr && candidate->name() == party_names_[i]) {
        local = std::move(candidate);
        break;
      }
    }
    DETA_CHECK_MSG(local != nullptr,
                   "no local trainer supplied for hosted party " << party_names_[i]);
    deta_parties_.push_back(std::make_unique<DetaParty>(
        std::move(local), pc, party_transform, *transport_, std::move(party_rng)));
  }
  revive_rng_ = crypto::SecureRng(setup_rng.NextBytes(32));
}

bool DetaJob::RoleIsLocal(const std::string& role) const {
  if (deployment_.local_roles.empty()) {
    return true;
  }
  return std::find(deployment_.local_roles.begin(), deployment_.local_roles.end(),
                   role) != deployment_.local_roles.end();
}

Bytes DetaJob::ConfigDigest(size_t num_parties) const {
  net::Writer w;
  w.WriteString("deta-job-config-v1");
  w.WriteU64(options_.seed);
  w.WriteString(options_.algorithm);
  w.WriteU32(options_.use_paillier ? 1 : 0);
  w.WriteU32(static_cast<uint32_t>(num_parties));
  w.WriteU32(static_cast<uint32_t>(deta_.num_aggregators));
  w.WriteU32(deta_.enable_partition ? 1 : 0);
  w.WriteU32(deta_.enable_shuffle ? 1 : 0);
  w.WriteU32(deta_.use_key_broker ? 1 : 0);
  // rounds/threads deliberately excluded: a resumed run may extend the round count, and
  // numeric results are thread-count-invariant by construction.
  return crypto::Sha256Digest(w.Take());
}

void DetaJob::SaveJobState(int round, const std::vector<float>& params,
                           double cumulative) {
  if (store_ == nullptr || options_.checkpoint.every_n_rounds <= 0 ||
      round % options_.checkpoint.every_n_rounds != 0) {
    return;
  }
  persist::Snapshot snapshot;
  snapshot.role = "job";
  snapshot.round = round;
  snapshot.AddFloats(persist::SectionType::kModelParams, "params", params);
  net::Writer w;
  w.WriteDouble(cumulative);
  snapshot.Add(persist::SectionType::kRaw, "observer", w.Take());
  snapshot.Add(persist::SectionType::kRaw, "config",
               ConfigDigest(party_names_.size()));
  if (!store_->Write(snapshot)) {
    LOG_WARNING << "DeTA job: job snapshot write failed for round " << round;
  }
}

void DetaJob::ReviveCrashedRoles(net::Endpoint& observer, bool job_started) {
  if (key_broker_ != nullptr && key_broker_->crashed()) {
    key_broker_->Join();
    key_broker_.reset();  // destroy first: the endpoint name must unregister
    KeyBrokerDurability kbd;
    kbd.store = store_.get();
    kbd.resume = true;
    kbd.seal_seed = options_.seed;
    key_broker_ = std::make_unique<KeyBroker>(
        material_, broker_identity_, 0, *transport_,
        crypto::SecureRng(revive_rng_.NextBytes(32)), kbd);
    key_broker_->Start();
    DETA_COUNTER("persist.role_revived").Increment();
    LOG_INFO << "DeTA job: revived key broker from snapshot";
  }
  for (size_t j = 0; j < aggregators_.size(); ++j) {
    if (!aggregators_[j]->crashed()) {
      continue;
    }
    aggregators_[j]->Join();
    AggregatorConfig ac = agg_configs_[j];
    ac.crash_at_round = 0;
    ac.resume = true;
    ac.resume_max_round = -1;  // in-run revive: newest snapshot is the right one
    aggregators_[j].reset();
    aggregators_[j] = std::make_unique<DetaAggregator>(
        ac, *transport_, cvms_[j], crypto::SecureRng(revive_rng_.NextBytes(32)));
    aggregators_[j]->Start();
    DETA_COUNTER("persist.role_revived").Increment();
    LOG_INFO << "DeTA job: revived " << ac.name << " from snapshot";
    if (ac.is_initiator && job_started) {
      // The revived initiator owns the round protocol again but starts idle; a fresh
      // job.start makes it resume collecting at last_aggregated_round + 1.
      observer.Send(ac.name, kJobStart, {});
    }
  }
  for (size_t i = 0; i < deta_parties_.size(); ++i) {
    if (!deta_parties_[i]->crashed()) {
      continue;
    }
    deta_parties_[i]->Join();
    std::unique_ptr<fl::Party> local = deta_parties_[i]->TakeLocal();
    DetaPartyConfig pc = party_configs_[i];
    pc.crash_at_round = 0;
    pc.resume = true;
    pc.resume_max_round = -1;
    pc.announce_ready = false;  // the ready barrier already passed
    pc.start_delay_ms = 0;      // and with it, any start stagger
    std::string name = local->name();
    deta_parties_[i].reset();
    deta_parties_[i] = std::make_unique<DetaParty>(
        std::move(local), pc, party_transform_, *transport_,
        crypto::SecureRng(revive_rng_.NextBytes(32)));
    deta_parties_[i]->Start();
    DETA_COUNTER("persist.role_revived").Increment();
    LOG_INFO << "DeTA job: revived " << name << " from snapshot";
  }
}

DetaJob::~DetaJob() {
  for (auto& p : deta_parties_) {
    p->Join();
  }
  for (auto& a : aggregators_) {
    a->Join();
  }
}

void DetaJob::ShutdownAll(net::Endpoint& observer) {
  for (const std::string& name : aggregator_names_) {
    observer.Send(name, kShutdown, {});
  }
  for (const std::string& name : party_names_) {
    observer.Send(name, kShutdown, {});
  }
  for (auto& party : deta_parties_) {
    // The message alone cannot interrupt a party blocked in mid-round result
    // collection (selective receive stashes it); closing the mailbox can.
    party->Shutdown();
  }
  StopBroker(observer);
}

void DetaJob::StopBroker(net::Endpoint& observer) {
  if (key_broker_ != nullptr) {
    key_broker_->Stop();
  } else if (deta_.use_key_broker && !broker_local_ && !remote_broker_stopped_) {
    observer.Send(KeyBroker::kEndpointName, kShutdown, {});
    remote_broker_stopped_ = true;
  }
}

void DetaJob::StartLocalRoles() {
  if (key_broker_ != nullptr) {
    key_broker_->Start();
  }
  for (auto& agg : aggregators_) {
    agg->Start();
  }
  for (auto& party : deta_parties_) {
    party->Start();
  }
}

// Worker-process path: no observer loop — start the hosted roles and wait for them to
// run the protocol to completion (parties exit after their final round; followers and
// the broker exit on the shutdown fan-out that reaches them over the transport).
fl::JobResult DetaJob::RunWorker() {
  const telemetry::TelemetrySnapshot telemetry_start = telemetry::Snapshot();
  StartLocalRoles();
  fl::JobResult result;
  result.setup_seconds = attestation_seconds_;
  for (auto& party : deta_parties_) {
    party->Join();
  }
  for (auto& agg : aggregators_) {
    agg->Join();
  }
  if (key_broker_ != nullptr) {
    key_broker_->Join();
  }
  for (auto& party : deta_parties_) {
    if (!party->setup_ok()) {
      result.status = fl::JobStatus::kSetupFailed;
      result.error = "party " + party->name() + " failed setup";
    }
  }
  if (!deta_parties_.empty()) {
    result.final_params = deta_parties_.front()->final_params();
  }
  result.telemetry = telemetry::Delta(telemetry_start, telemetry::Snapshot());
  return result;
}

fl::JobResult DetaJob::Run() {
  // A requested resume that found no usable/matching job snapshot is a typed failure —
  // never a silent fresh start that would overwrite the snapshots it failed to read.
  if (resume_failed_) {
    fl::JobResult result;
    result.status = fl::JobStatus::kSetupFailed;
    result.error = resume_error_;
    LOG_ERROR << "DeTA job: " << result.error;
    return result;
  }

  // Applies to the aggregator/party threads about to start: concurrent parallel regions
  // (several aggregators aggregating at once) degrade gracefully to serial chunks with
  // identical results — see common/parallel.h.
  parallel::SetDefaultThreads(options_.threads);

  // Per-run telemetry is a Delta over the process-global registry, so concurrent runs in
  // one process would bleed into each other — tests run jobs one at a time.
  const telemetry::TelemetrySnapshot telemetry_start = telemetry::Snapshot();
  auto finish_telemetry = [&](fl::JobResult& r, double sim_seconds) {
    r.telemetry = telemetry::Delta(telemetry_start, telemetry::Snapshot());
    r.telemetry.sim_seconds = sim_seconds;
  };

  // Fault injection covers the protocol fabric only: the observer is the measurement
  // harness, so its reports (and its control messages) are exempted — a "dropped" timing
  // report would be a harness bug, not a protocol fault.
  if (options_.fault_plan.enabled()) {
    net::FaultPlan plan = options_.fault_plan;
    plan.immune.insert("observer");
    transport_->SetFaultPlan(plan);
    LOG_INFO << "DeTA job: fault injection enabled (seed " << plan.seed << ")";
  }

  // Worker processes of a multi-process deployment host roles but no measurement loop.
  if (!observer_local_) {
    return RunWorker();
  }

  auto observer = transport_->CreateEndpoint("observer");
  StartLocalRoles();

  fl::JobResult result;
  // Attestation and registration are one-time setup (before training starts); the paper's
  // latency curves measure training rounds only, so setup is reported separately via
  // JobResult::setup_seconds rather than folded into round latency.
  result.setup_seconds = attestation_seconds_;
  result.resumed_from_round = resume_round_;

  // With crash faults configured the observer doubles as the supervisor: every bounded
  // wait below is sliced into short ticks so a crashed role is revived within ~50ms
  // instead of stalling the phase for its full timeout.
  const bool crash_mode = !options_.fault_plan.crashes.empty();
  auto receive_ready = [&]() -> std::optional<net::Message> {
    if (!crash_mode) {
      return observer->ReceiveTypeFor(kPartyReady, options_.setup_timeout_ms);
    }
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(options_.setup_timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      ReviveCrashedRoles(*observer, /*job_started=*/false);
      std::optional<net::Message> m = observer->ReceiveTypeFor(kPartyReady, 50);
      if (m.has_value()) {
        return m;
      }
    }
    return std::nullopt;
  };

  // Bounded ready barrier: every party (local or remote) reports the outcome of
  // verification + registration, or the barrier times out. Either failure is a typed
  // result, not a hang.
  for (size_t i = 0; i < party_names_.size(); ++i) {
    std::optional<net::Message> m = receive_ready();
    if (!m.has_value()) {
      result.status = fl::JobStatus::kSetupFailed;
      result.error = "timed out waiting for party readiness";
    } else if (m->payload.empty() || m->payload[0] != 1) {
      result.status = fl::JobStatus::kSetupFailed;
      result.error = "party " + m->from + " failed aggregator verification";
    } else {
      continue;
    }
    LOG_ERROR << "DeTA job: " << result.error;
    ShutdownAll(*observer);
    finish_telemetry(result, 0.0);
    return result;
  }
  LOG_INFO << "DeTA job: all " << party_names_.size()
           << " parties verified and registered with " << aggregator_names_.size()
           << " aggregators";
  StopBroker(*observer);  // every party holds the material once it reports ready

  // Acked job start, so a stalled initiator is a typed error instead of a silent hang.
  // (Observer traffic is exempt from fault injection, so this succeeds first try when
  // the initiator is healthy.) Under crash faults, RequestReply's fast abort on a dead
  // endpoint would burn the whole retry budget before the supervisor could revive the
  // initiator — so interleave send / short wait / revive manually instead.
  bool job_started = false;
  if (!crash_mode) {
    job_started = net::RequestReply(*observer, aggregator_names_[0], kJobStart, {},
                                    kJobStartAck, options_.retry)
                      .has_value();
  } else {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(options_.setup_timeout_ms);
    while (!job_started && std::chrono::steady_clock::now() < deadline) {
      observer->Send(aggregator_names_[0], kJobStart, {});
      job_started = observer->ReceiveTypeFor(kJobStartAck, 250).has_value();
      if (!job_started) {
        ReviveCrashedRoles(*observer, /*job_started=*/true);
      }
    }
  }
  if (!job_started) {
    result.status = fl::JobStatus::kStalled;
    result.error = "initiator " + aggregator_names_[0] + " did not ack job start";
    ShutdownAll(*observer);
    finish_telemetry(result, 0.0);
    return result;
  }

  const LatencyModel& lm = options_.latency;
  double cumulative = resume_cumulative_;
  // Drives the sim_s stamps on the per-round spans below; advanced by each round's
  // modelled latency once the round's reports are in.
  SimClock sim_clock;

  // Per-round report collection, tolerant of cross-round interleaving and dropouts.
  std::map<int, std::vector<std::pair<double, double>>> timings;  // round -> (train, trans)
  std::map<int, std::vector<double>> rtts;  // round -> per-party upload round-trips
  std::map<int, uint64_t> upload_bytes;
  std::map<int, std::vector<std::pair<double, uint64_t>>> agg_reports;
  std::map<int, std::vector<float>> reported_params;
  std::map<int, std::set<std::string>> dropouts;  // round -> absent/skipping parties

  std::set<std::string> active;  // parties still participating
  for (const std::string& name : party_names_) {
    active.insert(name);
  }
  const std::string reporter = party_names_[0];
  // On whole-job resume the constructor loaded the job snapshot's params into the global
  // model, so this is the restored consistent cut (and already the final params if the
  // requested round count was reached before the crash).
  std::vector<float> last_params = global_model_->GetFlatParams();
  if (resume_round_ > 0) {
    result.final_params = last_params;
  }
  size_t num_aggs = aggregator_names_.size();

  // Worst case for one round under faults: an aggregator runs to its collection
  // deadline, parties spend their whole retry budget, plus scheduling slack.
  const int round_budget_ms =
      2 * options_.round_timeout_ms + options_.retry.TotalBudgetMs() + 5000;

  for (int round = resume_round_ + 1; round <= options_.rounds && result.ok(); ++round) {
    telemetry::Span round_span("core.deta_job.round", &sim_clock);
    WallStopwatch round_wall;
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(round_budget_ms);
    auto round_complete = [&] {
      // Every active party either reported timing or skipped; every aggregator
      // reported; the global params arrived unless the reporter sat the round out.
      size_t accounted = timings[round].size();
      for (const std::string& p : dropouts[round]) {
        if (active.count(p)) {
          ++accounted;
        }
      }
      bool params_ready = reported_params.count(round) > 0 ||
                          dropouts[round].count(reporter) > 0 ||
                          !active.count(reporter);
      return accounted >= active.size() && agg_reports[round].size() >= num_aggs &&
             params_ready;
    };
    while (!round_complete()) {
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) {
        result.status = fl::JobStatus::kStalled;
        result.error = "no progress in round " + std::to_string(round) + " within " +
                       std::to_string(round_budget_ms) + "ms";
        break;
      }
      int wait_ms = static_cast<int>(left.count());
      if (crash_mode) {
        ReviveCrashedRoles(*observer, /*job_started=*/true);
        wait_ms = std::min(wait_ms, 50);
      }
      std::optional<net::Message> m = observer->ReceiveFor(wait_ms);
      if (!m.has_value()) {
        continue;  // deadline check on the next pass
      }
      net::Reader r(m->payload);
      if (m->type == kPartyTiming) {
        int rd = static_cast<int>(r.ReadU32());
        double train_s = r.ReadDouble();
        double trans_s = r.ReadDouble();
        uint64_t bytes = r.ReadU64();
        rtts[rd].push_back(r.ReadDouble());
        timings[rd].push_back({train_s, trans_s});
        upload_bytes[rd] = std::max(upload_bytes[rd], bytes);
      } else if (m->type == kAggReport) {
        int rd = static_cast<int>(r.ReadU32());
        double agg_s = r.ReadDouble();
        uint64_t bytes = r.ReadU64();
        agg_reports[rd].push_back({agg_s, bytes});
        uint32_t missing = r.ReadU32();
        for (uint32_t i = 0; i < missing; ++i) {
          dropouts[rd].insert(r.ReadString());
        }
      } else if (m->type == kPartyReport) {
        int rd = static_cast<int>(r.ReadU32());
        reported_params[rd] = r.ReadFloatVector();
      } else if (m->type == kPartyRoundSkipped) {
        int rd = static_cast<int>(r.ReadU32());
        dropouts[rd].insert(m->from);
        LOG_WARNING << "observer: party " << m->from << " skipped round " << rd;
      } else if (m->type == kPartyFailed) {
        int rd = static_cast<int>(r.ReadU32());
        std::string reason = r.ReadString();
        LOG_WARNING << "observer: party " << m->from << " failed in round " << rd
                    << ": " << reason << " — continuing without it";
        dropouts[rd].insert(m->from);
        active.erase(m->from);
      } else if (m->type == kAggFailed) {
        int rd = static_cast<int>(r.ReadU32());
        int have = static_cast<int>(r.ReadU32());
        int need = static_cast<int>(r.ReadU32());
        result.status = fl::JobStatus::kQuorumFailed;
        result.error = "aggregator " + m->from + " failed quorum in round " +
                       std::to_string(rd) + " (" + std::to_string(have) + "/" +
                       std::to_string(need) + " fragments)";
        break;
      } else if (m->type == kJobStartAck) {
        // Ack for the job.start kick sent to a revived initiator; nothing to do.
      } else {
        LOG_WARNING << "observer: unexpected message " << m->type;
      }
    }
    if (!result.ok()) {
      LOG_ERROR << "DeTA job: " << result.error;
      break;
    }

    // --- latency model for this round (see common/sim_clock.h) ---
    double party_phase = 0.0;
    for (const auto& [train_s, trans_s] : timings[round]) {
      party_phase = std::max(party_phase, train_s + trans_s);
    }
    party_phase += lm.TransferSeconds(upload_bytes[round]);  // parallel uploads: max size
    double agg_phase = 0.0;
    uint64_t down_bytes = 0;
    for (const auto& [agg_s, bytes] : agg_reports[round]) {
      agg_phase = std::max(agg_phase, agg_s);
      down_bytes = std::max(down_bytes, bytes);
    }
    agg_phase *= (1.0 + lm.sev_compute_overhead);
    agg_phase += lm.rtt_seconds;  // initiator/follower sync
    double round_latency = party_phase + agg_phase + lm.TransferSeconds(down_bytes);
    sim_clock.Advance(round_latency);
    DETA_COUNTER("core.deta_job.rounds").Increment();
    DETA_HISTOGRAM("core.deta_job.round_latency_s", ::deta::telemetry::Unit::kSeconds)
        .Record(round_latency);

    // --- evaluation on the reporter's merged global model (or, if the reporter sat
    // this round out, its last synchronized state) ---
    if (reported_params.count(round)) {
      last_params = std::move(reported_params[round]);
    }
    global_model_->SetFlatParams(last_params);
    fl::RoundMetrics m;
    m.round = round;
    m.loss = nn::MeanLoss(*global_model_, eval_.images, eval_.labels, eval_.classes);
    m.accuracy = nn::Accuracy(*global_model_, eval_.images, eval_.labels);
    m.round_latency_s = round_latency;
    cumulative += round_latency;
    m.cumulative_latency_s = cumulative;
    m.wall_seconds = round_wall.ElapsedSeconds();
    m.party_rtts_s = std::move(rtts[round]);
    std::sort(m.party_rtts_s.begin(), m.party_rtts_s.end());
    result.rounds.push_back(m);
    if (!dropouts[round].empty()) {
      result.per_round_dropouts[round] = std::vector<std::string>(
          dropouts[round].begin(), dropouts[round].end());
    }
    LOG_INFO << "DeTA round " << round << ": loss=" << m.loss << " acc=" << m.accuracy
             << " latency=" << m.cumulative_latency_s << "s"
             << (dropouts[round].empty()
                     ? ""
                     : " dropouts=" + std::to_string(dropouts[round].size()));

    result.final_params = last_params;
    SaveJobState(round, last_params, cumulative);
    timings.erase(round);
    rtts.erase(round);
    agg_reports.erase(round);
    reported_params.erase(round);
    dropouts.erase(round);
  }

  // On failure, release every thread still waiting on protocol traffic; on success the
  // initiator has already fanned out shutdown and parties exit after their final round.
  if (!result.ok()) {
    ShutdownAll(*observer);
  }
  for (auto& party : deta_parties_) {
    party->Join();
  }
  for (auto& agg : aggregators_) {
    agg->Join();
  }
  if (key_broker_ != nullptr) {
    key_broker_->Stop();
    key_broker_->Join();
  }
  // Snapshot after every node thread has joined, so all their metric writes are folded in.
  finish_telemetry(result, cumulative);
  return result;
}

}  // namespace deta::core
