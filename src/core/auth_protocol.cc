#include "core/auth_protocol.h"

#include "common/check.h"
#include "common/logging.h"
#include "common/telemetry.h"
#include "crypto/hmac.h"
#include "net/codec.h"

namespace deta::core {

namespace {

const crypto::Secp256k1& Curve() { return crypto::Secp256k1::Instance(); }

// Transcript bound by the aggregator's registration signature: both ECDH shares and the
// party identity, so the handshake cannot be spliced across sessions or parties.
Bytes RegistrationTranscript(const std::string& party, const Bytes& party_share,
                             const Bytes& aggregator_share) {
  net::Writer w;
  w.WriteString("deta-register-v1");
  w.WriteString(party);
  w.WriteBytes(party_share);
  w.WriteBytes(aggregator_share);
  return w.Take();
}

// Shared responder-side core: derive a channel from |registration| and build the wire
// ack. Returns nullopt on a malformed share.
struct RegistrationAck {
  Bytes ack_wire;
  net::SecureChannel channel;
};

std::optional<RegistrationAck> BuildRegistrationAck(
    const std::string& responder, const net::Message& registration,
    const Secret<crypto::BigUint>& token_private, crypto::SecureRng& rng) {
  std::optional<crypto::EcPoint> party_point = Curve().Decode(registration.payload);
  if (!party_point.has_value() || party_point->is_infinity) {
    LOG_WARNING << responder << ": malformed registration share from "
                << registration.from;
    return std::nullopt;
  }
  crypto::EcKeyPair ephemeral = crypto::GenerateEcKey(rng);
  Bytes my_share = Curve().Encode(ephemeral.public_key);
  Bytes transcript =
      RegistrationTranscript(registration.from, registration.payload, my_share);
  crypto::EcdsaSignature sig = crypto::EcdsaSign(token_private, transcript);

  net::Writer w;
  w.WriteBytes(my_share);
  w.WriteBytes(sig.Serialize());

  Bytes master = crypto::EcdhSharedSecret(ephemeral.private_key, *party_point);
  return RegistrationAck{
      w.Take(), net::SecureChannel(master, ChannelId(registration.from, responder),
                                   net::ChannelRole::kResponder)};
}

}  // namespace

std::string ChannelId(const std::string& party, const std::string& aggregator) {
  return "chan:" + party + ":" + aggregator;
}

bool VerifyAggregator(net::Endpoint& endpoint, const std::string& aggregator,
                      const crypto::EcPoint& token_public, crypto::SecureRng& rng,
                      const net::RetryPolicy& policy) {
  telemetry::Span span("core.auth.verify");
  DETA_COUNTER("core.auth.verify_started").Increment();
  Bytes nonce = rng.NextBytes(32);
  std::optional<net::Message> reply =
      net::RequestReply(endpoint, aggregator, kAuthChallenge, nonce, kAuthResponse,
                        policy);
  if (!reply.has_value()) {
    return false;
  }
  if (reply->payload.size() != 64) {
    return false;
  }
  crypto::EcdsaSignature sig = crypto::EcdsaSignature::Deserialize(reply->payload);
  bool ok = crypto::EcdsaVerify(token_public, nonce, sig);
  if (!ok) {
    LOG_WARNING << endpoint.name() << ": aggregator " << aggregator
                << " failed token challenge — refusing to register";
  } else {
    DETA_COUNTER("core.auth.verify_ok").Increment();
  }
  return ok;
}

std::optional<net::SecureChannel> RegisterWithAggregator(
    net::Endpoint& endpoint, const std::string& aggregator,
    const crypto::EcPoint& token_public, crypto::SecureRng& rng,
    const net::RetryPolicy& policy) {
  telemetry::Span span("core.auth.register");
  DETA_COUNTER("core.auth.register_started").Increment();
  crypto::EcKeyPair ephemeral = crypto::GenerateEcKey(rng);
  Bytes my_share = Curve().Encode(ephemeral.public_key);

  // The same share is retransmitted on every attempt, so the responder's
  // RegistrationCache recognises re-registrations and keeps the channel keys stable.
  std::optional<net::Message> ack = net::RequestReply(
      endpoint, aggregator, kAuthRegister, my_share, kAuthRegisterAck, policy);
  if (!ack.has_value()) {
    return std::nullopt;
  }
  net::Reader r(ack->payload);
  Bytes their_share = r.ReadBytes();
  Bytes sig_bytes = r.ReadBytes();
  if (sig_bytes.size() != 64) {
    return std::nullopt;
  }
  crypto::EcdsaSignature sig = crypto::EcdsaSignature::Deserialize(sig_bytes);
  Bytes transcript = RegistrationTranscript(endpoint.name(), my_share, their_share);
  if (!crypto::EcdsaVerify(token_public, transcript, sig)) {
    LOG_WARNING << endpoint.name() << ": registration transcript signature from "
                << aggregator << " invalid";
    return std::nullopt;
  }
  std::optional<crypto::EcPoint> their_point = Curve().Decode(their_share);
  if (!their_point.has_value() || their_point->is_infinity) {
    return std::nullopt;
  }
  Bytes master = crypto::EcdhSharedSecret(ephemeral.private_key, *their_point);
  DETA_COUNTER("core.auth.register_ok").Increment();
  return net::SecureChannel(master, ChannelId(endpoint.name(), aggregator),
                            net::ChannelRole::kInitiator);
}

void AnswerChallenge(net::Endpoint& endpoint, const net::Message& challenge,
                     const Secret<crypto::BigUint>& token_private) {
  crypto::EcdsaSignature sig = crypto::EcdsaSign(token_private, challenge.payload);
  endpoint.Send(challenge.from, kAuthResponse, sig.Serialize());
}

std::optional<std::pair<std::string, net::SecureChannel>> AcceptRegistration(
    net::Endpoint& endpoint, const net::Message& registration,
    const Secret<crypto::BigUint>& token_private, crypto::SecureRng& rng) {
  std::optional<RegistrationAck> ack =
      BuildRegistrationAck(endpoint.name(), registration, token_private, rng);
  if (!ack.has_value()) {
    return std::nullopt;
  }
  endpoint.Send(registration.from, kAuthRegisterAck, ack->ack_wire);
  return std::make_pair(registration.from, std::move(ack->channel));
}

std::optional<std::pair<std::string, net::SecureChannel>> RegistrationCache::Accept(
    net::Endpoint& endpoint, const net::Message& registration,
    const Secret<crypto::BigUint>& token_private, crypto::SecureRng& rng) {
  auto it = entries_.find(registration.from);
  if (it != entries_.end() && it->second.party_share == registration.payload) {
    // Retransmitted registration: the party never saw our ack (or a duplicate survived
    // in flight). Re-send the identical ack so both sides converge on the same keys;
    // the channel created for the first copy stays valid.
    LOG_DEBUG << endpoint.name() << ": re-acking registration from "
              << registration.from;
    endpoint.Send(registration.from, kAuthRegisterAck, it->second.ack_wire);
    return std::nullopt;
  }
  std::optional<RegistrationAck> ack =
      BuildRegistrationAck(endpoint.name(), registration, token_private, rng);
  if (!ack.has_value()) {
    return std::nullopt;
  }
  entries_[registration.from] = Entry{registration.payload, ack->ack_wire};
  endpoint.Send(registration.from, kAuthRegisterAck, ack->ack_wire);
  return std::make_pair(registration.from, std::move(ack->channel));
}

Bytes RegistrationCache::Serialize() const {
  net::Writer w;
  w.WriteU32(static_cast<uint32_t>(entries_.size()));
  for (const auto& [party, entry] : entries_) {
    w.WriteString(party);
    w.WriteBytes(entry.party_share);
    w.WriteBytes(entry.ack_wire);
  }
  return w.Take();
}

bool RegistrationCache::Deserialize(const Bytes& data) {
  try {
    net::Reader r(data);
    uint32_t count = r.ReadU32();
    std::map<std::string, Entry> entries;
    for (uint32_t i = 0; i < count; ++i) {
      std::string party = r.ReadString();
      Bytes share = r.ReadBytes();
      Bytes ack = r.ReadBytes();
      entries[std::move(party)] = Entry{std::move(share), std::move(ack)};
    }
    if (!r.AtEnd()) {
      return false;
    }
    entries_ = std::move(entries);
    return true;
  } catch (const CheckFailure&) {
    return false;
  }
}

}  // namespace deta::core
