#include "core/auth_protocol.h"

#include "common/check.h"
#include "common/logging.h"
#include "crypto/hmac.h"
#include "net/codec.h"

namespace deta::core {

namespace {

const crypto::Secp256k1& Curve() { return crypto::Secp256k1::Instance(); }

// Transcript bound by the aggregator's registration signature: both ECDH shares and the
// party identity, so the handshake cannot be spliced across sessions or parties.
Bytes RegistrationTranscript(const std::string& party, const Bytes& party_share,
                             const Bytes& aggregator_share) {
  net::Writer w;
  w.WriteString("deta-register-v1");
  w.WriteString(party);
  w.WriteBytes(party_share);
  w.WriteBytes(aggregator_share);
  return w.Take();
}

}  // namespace

std::string ChannelId(const std::string& party, const std::string& aggregator) {
  return "chan:" + party + ":" + aggregator;
}

bool VerifyAggregator(net::Endpoint& endpoint, const std::string& aggregator,
                      const crypto::EcPoint& token_public, crypto::SecureRng& rng) {
  Bytes nonce = rng.NextBytes(32);
  endpoint.Send(aggregator, kAuthChallenge, nonce);
  std::optional<net::Message> reply = endpoint.ReceiveType(kAuthResponse);
  if (!reply.has_value() || reply->from != aggregator) {
    return false;
  }
  if (reply->payload.size() != 64) {
    return false;
  }
  crypto::EcdsaSignature sig = crypto::EcdsaSignature::Deserialize(reply->payload);
  bool ok = crypto::EcdsaVerify(token_public, nonce, sig);
  if (!ok) {
    LOG_WARNING << endpoint.name() << ": aggregator " << aggregator
                << " failed token challenge — refusing to register";
  }
  return ok;
}

std::optional<net::SecureChannel> RegisterWithAggregator(net::Endpoint& endpoint,
                                                         const std::string& aggregator,
                                                         const crypto::EcPoint& token_public,
                                                         crypto::SecureRng& rng) {
  crypto::EcKeyPair ephemeral = crypto::GenerateEcKey(rng);
  Bytes my_share = Curve().Encode(ephemeral.public_key);
  endpoint.Send(aggregator, kAuthRegister, my_share);

  std::optional<net::Message> ack = endpoint.ReceiveType(kAuthRegisterAck);
  if (!ack.has_value() || ack->from != aggregator) {
    return std::nullopt;
  }
  net::Reader r(ack->payload);
  Bytes their_share = r.ReadBytes();
  Bytes sig_bytes = r.ReadBytes();
  if (sig_bytes.size() != 64) {
    return std::nullopt;
  }
  crypto::EcdsaSignature sig = crypto::EcdsaSignature::Deserialize(sig_bytes);
  Bytes transcript = RegistrationTranscript(endpoint.name(), my_share, their_share);
  if (!crypto::EcdsaVerify(token_public, transcript, sig)) {
    LOG_WARNING << endpoint.name() << ": registration transcript signature from "
                << aggregator << " invalid";
    return std::nullopt;
  }
  std::optional<crypto::EcPoint> their_point = Curve().Decode(their_share);
  if (!their_point.has_value() || their_point->is_infinity) {
    return std::nullopt;
  }
  Bytes master = crypto::EcdhSharedSecret(ephemeral.private_key, *their_point);
  return net::SecureChannel(master, ChannelId(endpoint.name(), aggregator));
}

void AnswerChallenge(net::Endpoint& endpoint, const net::Message& challenge,
                     const crypto::BigUint& token_private) {
  crypto::EcdsaSignature sig = crypto::EcdsaSign(token_private, challenge.payload);
  endpoint.Send(challenge.from, kAuthResponse, sig.Serialize());
}

std::optional<std::pair<std::string, net::SecureChannel>> AcceptRegistration(
    net::Endpoint& endpoint, const net::Message& registration,
    const crypto::BigUint& token_private, crypto::SecureRng& rng) {
  std::optional<crypto::EcPoint> party_point = Curve().Decode(registration.payload);
  if (!party_point.has_value() || party_point->is_infinity) {
    LOG_WARNING << endpoint.name() << ": malformed registration share from "
                << registration.from;
    return std::nullopt;
  }
  crypto::EcKeyPair ephemeral = crypto::GenerateEcKey(rng);
  Bytes my_share = Curve().Encode(ephemeral.public_key);
  Bytes transcript = RegistrationTranscript(registration.from, registration.payload, my_share);
  crypto::EcdsaSignature sig = crypto::EcdsaSign(token_private, transcript);

  net::Writer w;
  w.WriteBytes(my_share);
  w.WriteBytes(sig.Serialize());
  endpoint.Send(registration.from, kAuthRegisterAck, w.Take());

  Bytes master = crypto::EcdhSharedSecret(ephemeral.private_key, *party_point);
  return std::make_pair(registration.from,
                        net::SecureChannel(master, ChannelId(registration.from,
                                                             endpoint.name())));
}

}  // namespace deta::core
