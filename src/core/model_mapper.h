// Randomized model partitioning (paper §4.1): before training starts, a model mapper is
// generated — a random assignment of every parameter index to one of the deployed
// aggregators, honoring user-chosen proportions. The mapper is agreed upon and shared by
// all parties (it derives deterministically from a shared seed), never by aggregators.
//
// Each aggregator then sees only its own partition, squeezed into a dense vector: the
// fragment carries no model-architecture information because unassociated parameters are
// removed and the rest re-packed in sequence.
#ifndef DETA_CORE_MODEL_MAPPER_H_
#define DETA_CORE_MODEL_MAPPER_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"

namespace deta::core {

class ModelMapper {
 public:
  // |total_params| parameters distributed over |proportions.size()| aggregators with the
  // given proportions (need not sum exactly to 1; they are normalized). The assignment is
  // a seeded random permutation, so every aggregator's partition is a uniform random
  // subset of coordinates.
  ModelMapper(int64_t total_params, const std::vector<double>& proportions,
              const Bytes& shared_seed);

  // Equal proportions convenience.
  static ModelMapper Uniform(int64_t total_params, int num_aggregators,
                             const Bytes& shared_seed);

  int num_partitions() const { return static_cast<int>(partition_indices_.size()); }
  int64_t total_params() const { return total_params_; }
  // Global coordinate indices owned by partition |p|, in fragment order.
  const std::vector<int64_t>& PartitionIndices(int p) const;
  int64_t PartitionSize(int p) const { return static_cast<int64_t>(PartitionIndices(p).size()); }

  // Splits a flat update into per-aggregator fragments.
  std::vector<std::vector<float>> Partition(const std::vector<float>& flat) const;
  // Reassembles fragments into the original coordinate order.
  std::vector<float> Merge(const std::vector<std::vector<float>>& fragments) const;

 private:
  int64_t total_params_;
  std::vector<std::vector<int64_t>> partition_indices_;
};

}  // namespace deta::core

#endif  // DETA_CORE_MODEL_MAPPER_H_
