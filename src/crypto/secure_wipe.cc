#include "crypto/secure_wipe.h"

#include <cstring>

namespace deta::crypto {

void SecureWipe(void* data, size_t len) {
  if (data == nullptr || len == 0) {
    return;
  }
  std::memset(data, 0, len);
  // The asm block claims to read |data|, so the memset above is observable and cannot
  // be removed by dead-store elimination (the trick memset_s/explicit_bzero use, spelled
  // portably for gcc/clang).
  __asm__ __volatile__("" : : "r"(data) : "memory");
}

}  // namespace deta::crypto
