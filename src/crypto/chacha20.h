// ChaCha20 stream cipher (RFC 8439) plus a deterministic CSPRNG built on the keystream.
//
// Uses in this repo:
//   * SecureChannel payload encryption (encrypt-then-MAC with HMAC-SHA256),
//   * CSPRNG for key generation, nonces, attestation challenges,
//   * the keyed permutation generator behind parameter shuffling (crypto-strength
//     permutations are exactly the security knob §4.2 analyzes).
#ifndef DETA_CRYPTO_CHACHA20_H_
#define DETA_CRYPTO_CHACHA20_H_

#include <array>
#include <cstdint>

#include "common/bytes.h"
#include "common/secret.h"
#include "crypto/secure_wipe.h"

namespace deta::crypto {

inline constexpr size_t kChaChaKeySize = 32;
inline constexpr size_t kChaChaNonceSize = 12;

// XORs |data| with the ChaCha20 keystream for (key, nonce) starting at block |counter|.
// Encryption and decryption are the same operation.
Bytes ChaCha20Xor(const std::array<uint8_t, kChaChaKeySize>& key,
                  const std::array<uint8_t, kChaChaNonceSize>& nonce, uint32_t counter,
                  const Bytes& data);

// Deterministic cryptographic RNG: ChaCha20 keystream under a seed-derived key.
// Two instances with the same seed bytes produce identical streams — this determinism is
// what lets every party derive the same per-round permutation from the shared permutation
// key and round identifier.
class SecureRng {
 public:
  // Seeds from arbitrary bytes (hashed down to a 256-bit key).
  explicit SecureRng(const Bytes& seed);

  // The stream key predicts every future output (permutations, nonces, challenges);
  // both Secret members wipe on destruction so a scraped heap page cannot replay a
  // role's randomness.

  // Seeds from OS entropy (std::random_device); for long-lived identity keys.
  static SecureRng FromEntropy();

  uint8_t NextByte();
  uint32_t NextU32();
  uint64_t NextU64();
  // Uniform in [0, bound), bound > 0, rejection-sampled (no modulo bias).
  uint64_t NextBelow(uint64_t bound);
  Bytes NextBytes(size_t n);

  template <size_t N>
  std::array<uint8_t, N> NextArray() {
    std::array<uint8_t, N> out;
    for (auto& b : out) {
      b = NextByte();
    }
    return out;
  }

  // Exact generator state (key, nonce, block counter, unconsumed keystream), for
  // checkpoint/resume: a restored SecureRng continues the identical stream. The state
  // contains the stream key — callers must seal it before it reaches disk.
  Bytes SerializeState() const;
  // False (state unchanged) when |data| is not a serialized SecureRng state.
  bool RestoreState(const Bytes& data);

 private:
  void Refill();

  Secret<std::array<uint8_t, kChaChaKeySize>> key_;  // deta-lint: secret
  std::array<uint8_t, kChaChaNonceSize> nonce_{};
  uint32_t counter_ = 0;
  // deta-lint: secret — unconsumed keystream predicts future outputs
  Secret<Bytes> block_;
  size_t pos_ = 0;
};

}  // namespace deta::crypto

#endif  // DETA_CRYPTO_CHACHA20_H_
