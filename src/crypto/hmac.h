// HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869). HMAC authenticates secure-channel frames
// (encrypt-then-MAC); HKDF derives independent encryption/MAC keys from an ECDH shared
// secret and derives per-round permutation seeds from the permutation key.
#ifndef DETA_CRYPTO_HMAC_H_
#define DETA_CRYPTO_HMAC_H_

#include "common/bytes.h"

namespace deta::crypto {

// HMAC-SHA256 of |data| under |key|. 32-byte output.
Bytes HmacSha256(const Bytes& key, const Bytes& data);

// HKDF-Extract: PRK = HMAC(salt, ikm).
Bytes HkdfExtract(const Bytes& salt, const Bytes& ikm);

// HKDF-Expand: derives |length| bytes (<= 255 * 32) from a PRK and context info.
Bytes HkdfExpand(const Bytes& prk, const Bytes& info, size_t length);

// Extract-then-expand convenience.
Bytes Hkdf(const Bytes& salt, const Bytes& ikm, const Bytes& info, size_t length);

}  // namespace deta::crypto

#endif  // DETA_CRYPTO_HMAC_H_
