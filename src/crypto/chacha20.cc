#include "crypto/chacha20.h"

#include <algorithm>
#include <cstring>
#include <random>

#include "common/check.h"
#include "crypto/sha256.h"

namespace deta::crypto {

namespace {

uint32_t Rotl(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

void QuarterRound(uint32_t& a, uint32_t& b, uint32_t& c, uint32_t& d) {
  a += b;
  d ^= a;
  d = Rotl(d, 16);
  c += d;
  b ^= c;
  b = Rotl(b, 12);
  a += b;
  d ^= a;
  d = Rotl(d, 8);
  c += d;
  b ^= c;
  b = Rotl(b, 7);
}

uint32_t LoadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

// Produces one 64-byte keystream block.
void ChaChaBlock(const std::array<uint8_t, kChaChaKeySize>& key,
                 const std::array<uint8_t, kChaChaNonceSize>& nonce, uint32_t counter,
                 uint8_t out[64]) {
  uint32_t state[16];
  state[0] = 0x61707865;
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) {
    state[4 + i] = LoadLe32(key.data() + 4 * i);
  }
  state[12] = counter;
  for (int i = 0; i < 3; ++i) {
    state[13 + i] = LoadLe32(nonce.data() + 4 * i);
  }

  uint32_t working[16];
  std::memcpy(working, state, sizeof(state));
  for (int round = 0; round < 10; ++round) {
    QuarterRound(working[0], working[4], working[8], working[12]);
    QuarterRound(working[1], working[5], working[9], working[13]);
    QuarterRound(working[2], working[6], working[10], working[14]);
    QuarterRound(working[3], working[7], working[11], working[15]);
    QuarterRound(working[0], working[5], working[10], working[15]);
    QuarterRound(working[1], working[6], working[11], working[12]);
    QuarterRound(working[2], working[7], working[8], working[13]);
    QuarterRound(working[3], working[4], working[9], working[14]);
  }
  for (int i = 0; i < 16; ++i) {
    uint32_t v = working[i] + state[i];
    out[4 * i] = static_cast<uint8_t>(v);
    out[4 * i + 1] = static_cast<uint8_t>(v >> 8);
    out[4 * i + 2] = static_cast<uint8_t>(v >> 16);
    out[4 * i + 3] = static_cast<uint8_t>(v >> 24);
  }
}

}  // namespace

Bytes ChaCha20Xor(const std::array<uint8_t, kChaChaKeySize>& key,
                  const std::array<uint8_t, kChaChaNonceSize>& nonce, uint32_t counter,
                  const Bytes& data) {
  Bytes out(data.size());
  uint8_t block[64];
  for (size_t offset = 0; offset < data.size(); offset += 64) {
    ChaChaBlock(key, nonce, counter++, block);
    size_t n = std::min<size_t>(64, data.size() - offset);
    for (size_t i = 0; i < n; ++i) {
      out[offset + i] = static_cast<uint8_t>(data[offset + i] ^ block[i]);
    }
  }
  return out;
}

SecureRng::SecureRng(const Bytes& seed) {
  Bytes digest = Sha256Digest(seed);
  std::copy(digest.begin(), digest.end(), key_.ExposeMutable().begin());
  SecureWipe(digest);
}

SecureRng SecureRng::FromEntropy() {
  std::random_device rd;
  Bytes seed;
  for (int i = 0; i < 8; ++i) {
    uint32_t v = rd();
    AppendU32(seed, v);
  }
  return SecureRng(seed);
}

void SecureRng::Refill() {
  Bytes& block = block_.ExposeMutable();
  block.resize(64);
  ChaChaBlock(key_.ExposeForCrypto(), nonce_, counter_, block.data());
  ++counter_;
  if (counter_ == 0) {
    // 256 GiB of stream exhausted; roll the nonce forward.
    for (auto& b : nonce_) {
      if (++b != 0) {
        break;
      }
    }
  }
  pos_ = 0;
}

uint8_t SecureRng::NextByte() {
  if (pos_ >= block_.ExposeForCrypto().size()) {
    Refill();
  }
  return block_.ExposeForCrypto()[pos_++];
}

uint32_t SecureRng::NextU32() {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(NextByte()) << (8 * i);
  }
  return v;
}

uint64_t SecureRng::NextU64() {
  return (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
}

uint64_t SecureRng::NextBelow(uint64_t bound) {
  DETA_CHECK_GT(bound, 0u);
  uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

Bytes SecureRng::NextBytes(size_t n) {
  Bytes out(n);
  for (auto& b : out) {
    b = NextByte();
  }
  return out;
}

Bytes SecureRng::SerializeState() const {
  // ExposeForSeal: this blob is checkpoint state; the persist layer seals it under the
  // role's SealKey before it can reach disk (enforced end-to-end by deta_taintcheck).
  const auto& key = key_.ExposeForSeal();
  const Bytes& block = block_.ExposeForSeal();
  Bytes out;
  out.insert(out.end(), key.begin(), key.end());
  out.insert(out.end(), nonce_.begin(), nonce_.end());
  AppendU32(out, counter_);
  AppendU64(out, static_cast<uint64_t>(pos_));
  // The unconsumed keystream block is stored verbatim: replaying it exactly avoids
  // having to re-derive a partially consumed block across the counter/nonce rollover.
  AppendU64(out, static_cast<uint64_t>(block.size()));
  out.insert(out.end(), block.begin(), block.end());
  return out;
}

bool SecureRng::RestoreState(const Bytes& data) {
  const size_t fixed = kChaChaKeySize + kChaChaNonceSize + sizeof(uint32_t) +
                       2 * sizeof(uint64_t);
  if (data.size() < fixed) {
    return false;
  }
  size_t offset = kChaChaKeySize + kChaChaNonceSize;
  uint32_t counter = ReadU32(data, offset);
  uint64_t pos = ReadU64(data, offset + sizeof(uint32_t));
  uint64_t block_size = ReadU64(data, offset + sizeof(uint32_t) + sizeof(uint64_t));
  if (block_size > 64 || pos > block_size || data.size() != fixed + block_size) {
    return false;
  }
  std::copy(data.begin(), data.begin() + kChaChaKeySize, key_.ExposeMutable().begin());
  std::copy(data.begin() + kChaChaKeySize, data.begin() + static_cast<long>(offset),
            nonce_.begin());
  counter_ = counter;
  pos_ = static_cast<size_t>(pos);
  block_.ExposeMutable().assign(data.begin() + static_cast<long>(fixed), data.end());
  return true;
}

}  // namespace deta::crypto
