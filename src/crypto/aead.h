// Authenticated encryption: ChaCha20 + HMAC-SHA256 encrypt-then-MAC with HKDF key
// separation. Real DeTA deployments use TLS for party<->aggregator channels (§4.3); this
// construction provides the same confidentiality+integrity guarantee for the in-process
// simulation without an external TLS stack.
//
// Frame layout: nonce(12) || ciphertext || tag(32). The tag covers nonce, associated data
// length, associated data, and ciphertext.
#ifndef DETA_CRYPTO_AEAD_H_
#define DETA_CRYPTO_AEAD_H_

#include <optional>

#include "common/bytes.h"
#include "common/secret.h"
#include "crypto/chacha20.h"
#include "crypto/secure_wipe.h"

namespace deta::crypto {

class Aead {
 public:
  // |master_key| is expanded via HKDF into independent encryption and MAC keys.
  explicit Aead(const Bytes& master_key);

  // Both derived keys are Secret members, wiped automatically on destruction.

  // Encrypts and authenticates. The nonce is drawn from |rng| and prepended to the frame.
  Bytes Seal(const Bytes& plaintext, const Bytes& associated_data, SecureRng& rng) const;

  // Verifies and decrypts; nullopt on any authentication failure.
  std::optional<Bytes> Open(const Bytes& frame, const Bytes& associated_data) const;

 private:
  Bytes MacInput(const Bytes& nonce, const Bytes& associated_data,
                 const Bytes& ciphertext) const;

  Secret<std::array<uint8_t, kChaChaKeySize>> enc_key_;  // deta-lint: secret
  Secret<Bytes> mac_key_;                                // deta-lint: secret
};

}  // namespace deta::crypto

#endif  // DETA_CRYPTO_AEAD_H_
