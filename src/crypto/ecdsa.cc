#include "crypto/ecdsa.h"

#include "common/check.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace deta::crypto {

namespace {

// Deterministic nonce in the spirit of RFC 6979: k = HMAC(priv || digest || counter),
// reduced mod n, re-drawn when degenerate.
BigUint DeterministicNonce(const BigUint& private_key, const Bytes& digest, uint32_t counter,
                           const BigUint& n) {
  Bytes input = private_key.ToBytesPadded(32);
  input.insert(input.end(), digest.begin(), digest.end());
  AppendU32(input, counter);
  Bytes mac = HmacSha256(StringToBytes("deta-ecdsa-nonce"), input);
  return BigUint::FromBytes(mac).Mod(n);
}

}  // namespace

Bytes EcdsaSignature::Serialize() const {
  Bytes out = r.ToBytesPadded(32);
  Bytes s_bytes = s.ToBytesPadded(32);
  out.insert(out.end(), s_bytes.begin(), s_bytes.end());
  return out;
}

EcdsaSignature EcdsaSignature::Deserialize(const Bytes& data) {
  DETA_CHECK_EQ(data.size(), 64u);
  EcdsaSignature sig;
  sig.r = BigUint::FromBytes(Bytes(data.begin(), data.begin() + 32));
  sig.s = BigUint::FromBytes(Bytes(data.begin() + 32, data.end()));
  return sig;
}

EcdsaSignature EcdsaSign(const Secret<BigUint>& private_key_secret, const Bytes& message) {
  const Secp256k1& curve = Secp256k1::Instance();
  const BigUint& private_key = private_key_secret.ExposeForCrypto();
  const BigUint& n = curve.n();
  Bytes digest = Sha256Digest(message);
  BigUint z = BigUint::FromBytes(digest).Mod(n);

  for (uint32_t counter = 0;; ++counter) {
    BigUint k = DeterministicNonce(private_key, digest, counter, n);
    if (k.IsZero()) {
      continue;
    }
    EcPoint kg = curve.MulGenerator(k);
    BigUint r = kg.x.Mod(n);
    if (r.IsZero()) {
      continue;
    }
    BigUint k_inv;
    if (!BigUint::InvMod(k, n, &k_inv)) {
      continue;
    }
    // s = k^-1 (z + r * priv) mod n
    BigUint s = BigUint::MulMod(
        k_inv, BigUint::AddMod(z, BigUint::MulMod(r, private_key, n), n), n);
    if (s.IsZero()) {
      continue;
    }
    return EcdsaSignature{r, s};
  }
}

bool EcdsaVerify(const EcPoint& public_key, const Bytes& message, const EcdsaSignature& sig) {
  const Secp256k1& curve = Secp256k1::Instance();
  const BigUint& n = curve.n();
  if (sig.r.IsZero() || sig.s.IsZero() || sig.r >= n || sig.s >= n) {
    return false;
  }
  if (public_key.is_infinity || !curve.IsOnCurve(public_key)) {
    return false;
  }
  Bytes digest = Sha256Digest(message);
  BigUint z = BigUint::FromBytes(digest).Mod(n);

  BigUint s_inv;
  if (!BigUint::InvMod(sig.s, n, &s_inv)) {
    return false;
  }
  BigUint u1 = BigUint::MulMod(z, s_inv, n);
  BigUint u2 = BigUint::MulMod(sig.r, s_inv, n);
  EcPoint point = curve.Add(curve.MulGenerator(u1), curve.Mul(u2, public_key));
  if (point.is_infinity) {
    return false;
  }
  return point.x.Mod(n) == sig.r;
}

}  // namespace deta::crypto
