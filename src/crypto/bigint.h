// Arbitrary-precision unsigned integers, from scratch (no GMP in this environment).
// 32-bit limbs, little-endian limb order, 64-bit intermediates. Supports everything
// Paillier and secp256k1 need: +, -, *, divmod (Knuth algorithm D), shifts, modular
// exponentiation, modular inverse (extended Euclid), gcd/lcm, Miller-Rabin primality,
// and random/prime generation from a SecureRng.
//
// Not constant-time; this repo's crypto is a protocol-faithful simulation substrate, not
// a hardened production TLS stack (see DESIGN.md).
#ifndef DETA_CRYPTO_BIGINT_H_
#define DETA_CRYPTO_BIGINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace deta::crypto {

class SecureRng;

struct BigUintDivResult;

class BigUint {
 public:
  BigUint() = default;
  BigUint(uint64_t value);  // NOLINT(google-explicit-constructor): numeric literals are handy.

  // Parses lowercase/uppercase hex (no 0x prefix).
  static BigUint FromHexString(const std::string& hex);
  // Builds from little-endian 32-bit limbs (trailing zero limbs are trimmed).
  static BigUint FromLimbs(std::vector<uint32_t> limbs);
  // Big-endian byte import/export.
  static BigUint FromBytes(const Bytes& be);
  Bytes ToBytes() const;            // Minimal big-endian encoding ("0" -> {0x00}).
  Bytes ToBytesPadded(size_t n) const;  // Fixed-width big-endian; checks the value fits.
  std::string ToHexString() const;

  bool IsZero() const { return limbs_.empty(); }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1u); }
  size_t BitLength() const;
  bool Bit(size_t i) const;

  // Comparisons.
  int Compare(const BigUint& other) const;  // -1 / 0 / +1
  bool operator==(const BigUint& o) const { return Compare(o) == 0; }
  bool operator!=(const BigUint& o) const { return Compare(o) != 0; }
  bool operator<(const BigUint& o) const { return Compare(o) < 0; }
  bool operator<=(const BigUint& o) const { return Compare(o) <= 0; }
  bool operator>(const BigUint& o) const { return Compare(o) > 0; }
  bool operator>=(const BigUint& o) const { return Compare(o) >= 0; }

  // Arithmetic. Sub requires *this >= other.
  BigUint Add(const BigUint& other) const;
  BigUint Sub(const BigUint& other) const;
  BigUint Mul(const BigUint& other) const;
  // Quotient and remainder; divisor must be nonzero.
  using DivResult = BigUintDivResult;
  DivResult DivMod(const BigUint& divisor) const;
  BigUint Mod(const BigUint& m) const;

  BigUint ShiftLeft(size_t bits) const;
  BigUint ShiftRight(size_t bits) const;

  // Modular arithmetic. All operands are expected reduced mod m where noted.
  static BigUint AddMod(const BigUint& a, const BigUint& b, const BigUint& m);
  static BigUint SubMod(const BigUint& a, const BigUint& b, const BigUint& m);
  static BigUint MulMod(const BigUint& a, const BigUint& b, const BigUint& m);
  // Dispatches odd moduli to Montgomery fixed-window exponentiation
  // (crypto/montgomery.h) and even moduli to the schoolbook loop; results are bitwise
  // identical either way.
  static BigUint PowMod(const BigUint& base, const BigUint& exp, const BigUint& m);
  // Square-and-multiply reference implementation, valid for any modulus (odd or even).
  // Kept public as the differential-test oracle for the Montgomery path.
  static BigUint PowModSchoolbook(const BigUint& base, const BigUint& exp,
                                  const BigUint& m);
  // Multiplicative inverse of a mod m; returns false if gcd(a, m) != 1.
  static bool InvMod(const BigUint& a, const BigUint& m, BigUint* out);

  static BigUint Gcd(BigUint a, BigUint b);
  static BigUint Lcm(const BigUint& a, const BigUint& b);

  // Uniform random integer in [0, bound).
  static BigUint RandomBelow(SecureRng& rng, const BigUint& bound);
  // Random integer with exactly |bits| bits (msb set).
  static BigUint RandomBits(SecureRng& rng, size_t bits);
  // Miller-Rabin with |rounds| random witnesses.
  static bool IsProbablePrime(const BigUint& n, SecureRng& rng, int rounds = 20);
  // Random probable prime with exactly |bits| bits.
  static BigUint RandomPrime(SecureRng& rng, size_t bits);

  // Low 64 bits (for small values / tests).
  uint64_t ToU64() const;

  // Zeroes the limb storage through a compiler barrier and resets the value to 0.
  // Called by destructors of types holding secret exponents (Paillier lambda/mu, ECDH
  // private scalars, auth tokens) so key material does not linger in freed heap pages.
  void Wipe();

  const std::vector<uint32_t>& limbs() const { return limbs_; }

 private:
  void Trim();

  // Little-endian 32-bit limbs; empty means zero.
  std::vector<uint32_t> limbs_;
};

struct BigUintDivResult {
  BigUint quotient;
  BigUint remainder;
};

inline BigUint BigUint::Mod(const BigUint& m) const { return DivMod(m).remainder; }

// Convenience operators.
inline BigUint operator+(const BigUint& a, const BigUint& b) { return a.Add(b); }
inline BigUint operator-(const BigUint& a, const BigUint& b) { return a.Sub(b); }
inline BigUint operator*(const BigUint& a, const BigUint& b) { return a.Mul(b); }
inline BigUint operator%(const BigUint& a, const BigUint& b) { return a.Mod(b); }
inline BigUint operator/(const BigUint& a, const BigUint& b) { return a.DivMod(b).quotient; }

}  // namespace deta::crypto

#endif  // DETA_CRYPTO_BIGINT_H_
