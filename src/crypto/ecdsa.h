// ECDSA over secp256k1 with SHA-256 message digests (RFC 6979-style deterministic nonces
// derived via HMAC, so signing needs no entropy source).
//
// This is the signature scheme behind the paper's phase-II authentication: the attestation
// proxy provisions an ECDSA key into each verified CVM; a party challenges an aggregator
// with a nonce and verifies the returned signature against the trusted token public key.
#ifndef DETA_CRYPTO_ECDSA_H_
#define DETA_CRYPTO_ECDSA_H_

#include "crypto/ec.h"

namespace deta::crypto {

struct EcdsaSignature {
  BigUint r;
  BigUint s;

  // Fixed-width (32+32 byte) serialization.
  Bytes Serialize() const;
  static EcdsaSignature Deserialize(const Bytes& data);
};

// Signs SHA-256(message). Takes the scalar wrapped so call sites never hold a bare
// private key; the single exposure happens inside the signing kernel.
EcdsaSignature EcdsaSign(const Secret<BigUint>& private_key, const Bytes& message);

// Verifies a signature over SHA-256(message).
bool EcdsaVerify(const EcPoint& public_key, const Bytes& message, const EcdsaSignature& sig);

}  // namespace deta::crypto

#endif  // DETA_CRYPTO_ECDSA_H_
