#include "crypto/montgomery.h"

#include "common/check.h"
#include "crypto/secure_wipe.h"

namespace deta::crypto {

namespace {

// -m^-1 mod 2^32 by Newton iteration: each step doubles the number of correct bits.
uint32_t NegInverse32(uint32_t m0) {
  uint32_t x = m0;  // correct mod 2^3 for odd m0
  for (int i = 0; i < 4; ++i) {
    x *= 2u - m0 * x;
  }
  return ~x + 1u;  // -x mod 2^32
}

}  // namespace

MontgomeryContext::MontgomeryContext(const BigUint& modulus) : modulus_(modulus) {
  DETA_CHECK_MSG(modulus.IsOdd(), "MontgomeryContext requires an odd modulus");
  DETA_CHECK_MSG(modulus > BigUint(1), "MontgomeryContext requires modulus > 1");
  m_ = modulus.limbs();
  inv32_ = NegInverse32(m_[0]);
  // R^2 mod m with R = 2^(32*limbs), computed once via the schoolbook divider.
  BigUint r2 = BigUint(1).ShiftLeft(64 * m_.size()).Mod(modulus);
  r2_ = Import(r2);
  one_mont_ = Import(BigUint(1).ShiftLeft(32 * m_.size()).Mod(modulus));
}

MontgomeryContext::~MontgomeryContext() {
  SecureWipe(m_.data(), m_.size() * sizeof(uint32_t));
  SecureWipe(r2_.data(), r2_.size() * sizeof(uint32_t));
  SecureWipe(one_mont_.data(), one_mont_.size() * sizeof(uint32_t));
  modulus_.Wipe();
}

MontgomeryContext::Limbs MontgomeryContext::Import(const BigUint& a) const {
  DETA_CHECK_MSG(a < modulus_, "Montgomery operand not reduced mod m");
  Limbs out = a.limbs();
  out.resize(m_.size(), 0);
  return out;
}

BigUint MontgomeryContext::Export(const Limbs& a) const { return BigUint::FromLimbs(a); }

void MontgomeryContext::MulMontLimbs(const Limbs& a, const Limbs& b, Limbs* out,
                                     Limbs* scratch) const {
  // CIOS (coarsely integrated operand scanning): interleaves the schoolbook product
  // with the REDC reduction so the intermediate never exceeds s+2 limbs.
  const size_t s = m_.size();
  Limbs& t = *scratch;
  t.assign(s + 2, 0);
  for (size_t i = 0; i < s; ++i) {
    uint64_t ai = a[i];
    uint64_t carry = 0;
    for (size_t j = 0; j < s; ++j) {
      uint64_t cur = t[j] + ai * b[j] + carry;
      t[j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    uint64_t cur = static_cast<uint64_t>(t[s]) + carry;
    t[s] = static_cast<uint32_t>(cur);
    t[s + 1] = static_cast<uint32_t>(cur >> 32);

    uint64_t mf = static_cast<uint32_t>(t[0] * inv32_);
    cur = t[0] + mf * m_[0];
    carry = cur >> 32;
    for (size_t j = 1; j < s; ++j) {
      cur = t[j] + mf * m_[j] + carry;
      t[j - 1] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    cur = static_cast<uint64_t>(t[s]) + carry;
    t[s - 1] = static_cast<uint32_t>(cur);
    t[s] = t[s + 1] + static_cast<uint32_t>(cur >> 32);
    t[s + 1] = 0;
  }
  // Conditional final subtraction: the CIOS invariant leaves t < 2m.
  bool ge = t[s] != 0;
  if (!ge) {
    ge = true;
    for (size_t i = s; i-- > 0;) {
      if (t[i] != m_[i]) {
        ge = t[i] > m_[i];
        break;
      }
    }
  }
  out->resize(s);
  if (ge) {
    int64_t borrow = 0;
    for (size_t i = 0; i < s; ++i) {
      int64_t diff = static_cast<int64_t>(t[i]) - static_cast<int64_t>(m_[i]) - borrow;
      borrow = diff < 0 ? 1 : 0;
      (*out)[i] = static_cast<uint32_t>(diff);
    }
  } else {
    for (size_t i = 0; i < s; ++i) {
      (*out)[i] = t[i];
    }
  }
}

BigUint MontgomeryContext::ToMont(const BigUint& a) const {
  Limbs in = Import(a);
  Limbs out, scratch;
  MulMontLimbs(in, r2_, &out, &scratch);
  return Export(out);
}

BigUint MontgomeryContext::FromMont(const BigUint& a) const {
  Limbs in = Import(a);
  Limbs one(m_.size(), 0);
  one[0] = 1;
  Limbs out, scratch;
  MulMontLimbs(in, one, &out, &scratch);
  return Export(out);
}

BigUint MontgomeryContext::MulMont(const BigUint& a, const BigUint& b) const {
  Limbs la = Import(a);
  Limbs lb = Import(b);
  Limbs out, scratch;
  MulMontLimbs(la, lb, &out, &scratch);
  return Export(out);
}

BigUint MontgomeryContext::MulMod(const BigUint& a, const BigUint& b) const {
  Limbs la = Import(a);
  Limbs lb = Import(b);
  Limbs out, scratch;
  // (a*R) * b * R^-1 = a*b ... converting one operand up and multiplying back down
  // costs two passes, same as ToMont+FromMont but without the extra reduction.
  MulMontLimbs(la, r2_, &out, &scratch);
  la.swap(out);
  MulMontLimbs(la, lb, &out, &scratch);
  return Export(out);
}

BigUint MontgomeryContext::PowMod(const BigUint& base, const BigUint& exp) const {
  const size_t s = m_.size();
  if (exp.IsZero()) {
    return BigUint(1).Mod(modulus_);
  }
  Limbs scratch, tmp;
  // table[w] = base^w in Montgomery form, w in [0, 16).
  std::vector<Limbs> table(16);
  table[0] = one_mont_;
  Limbs base_limbs = Import(base.Mod(modulus_));
  MulMontLimbs(base_limbs, r2_, &table[1], &scratch);
  for (int w = 2; w < 16; ++w) {
    MulMontLimbs(table[w - 1], table[1], &table[w], &scratch);
  }

  const std::vector<uint32_t>& e = exp.limbs();
  size_t windows = (exp.BitLength() + 3) / 4;
  Limbs acc = one_mont_;
  for (size_t wi = windows; wi-- > 0;) {
    if (wi + 1 != windows) {
      for (int sq = 0; sq < 4; ++sq) {
        MulMontLimbs(acc, acc, &tmp, &scratch);
        acc.swap(tmp);
      }
    }
    // 32 % 4 == 0, so a window never straddles a limb boundary.
    uint32_t w = (e[(wi * 4) / 32] >> ((wi * 4) % 32)) & 0xFu;
    if (w != 0) {
      MulMontLimbs(acc, table[w], &tmp, &scratch);
      acc.swap(tmp);
    }
  }
  Limbs one(s, 0);
  one[0] = 1;
  MulMontLimbs(acc, one, &tmp, &scratch);
  BigUint result = Export(tmp);
  // The table holds powers of a possibly secret-derived base (and acc/scratch its
  // residue); scrub before the storage returns to the allocator.
  for (Limbs& entry : table) {
    SecureWipe(entry.data(), entry.size() * sizeof(uint32_t));
  }
  SecureWipe(acc.data(), acc.size() * sizeof(uint32_t));
  SecureWipe(tmp.data(), tmp.size() * sizeof(uint32_t));
  SecureWipe(scratch.data(), scratch.size() * sizeof(uint32_t));
  return result;
}

}  // namespace deta::crypto
