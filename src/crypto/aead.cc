#include "crypto/aead.h"

#include "common/check.h"
#include "crypto/hmac.h"

namespace deta::crypto {

namespace {
constexpr size_t kTagSize = 32;
}

Aead::Aead(const Bytes& master_key) {
  Bytes okm = Hkdf(StringToBytes("deta-aead-salt"), master_key,
                   StringToBytes("deta-aead-keys"), kChaChaKeySize + 32);
  std::copy(okm.begin(), okm.begin() + kChaChaKeySize, enc_key_.ExposeMutable().begin());
  mac_key_.ExposeMutable().assign(okm.begin() + kChaChaKeySize, okm.end());
  SecureWipe(okm);
}

Bytes Aead::MacInput(const Bytes& nonce, const Bytes& associated_data,
                     const Bytes& ciphertext) const {
  Bytes input;
  input.insert(input.end(), nonce.begin(), nonce.end());
  AppendU64(input, associated_data.size());
  input.insert(input.end(), associated_data.begin(), associated_data.end());
  input.insert(input.end(), ciphertext.begin(), ciphertext.end());
  return input;
}

Bytes Aead::Seal(const Bytes& plaintext, const Bytes& associated_data, SecureRng& rng) const {
  std::array<uint8_t, kChaChaNonceSize> nonce = rng.NextArray<kChaChaNonceSize>();
  Bytes ciphertext = ChaCha20Xor(enc_key_.ExposeForCrypto(), nonce, 1, plaintext);

  Bytes nonce_bytes(nonce.begin(), nonce.end());
  Bytes tag = HmacSha256(mac_key_.ExposeForCrypto(),
                         MacInput(nonce_bytes, associated_data, ciphertext));

  Bytes frame;
  frame.reserve(kChaChaNonceSize + ciphertext.size() + kTagSize);
  frame.insert(frame.end(), nonce.begin(), nonce.end());
  frame.insert(frame.end(), ciphertext.begin(), ciphertext.end());
  frame.insert(frame.end(), tag.begin(), tag.end());
  return frame;
}

std::optional<Bytes> Aead::Open(const Bytes& frame, const Bytes& associated_data) const {
  if (frame.size() < kChaChaNonceSize + kTagSize) {
    return std::nullopt;
  }
  Bytes nonce_bytes(frame.begin(), frame.begin() + kChaChaNonceSize);
  Bytes ciphertext(frame.begin() + kChaChaNonceSize, frame.end() - kTagSize);
  Bytes tag(frame.end() - kTagSize, frame.end());

  Bytes expected = HmacSha256(mac_key_.ExposeForCrypto(),
                              MacInput(nonce_bytes, associated_data, ciphertext));
  if (!ConstantTimeEqual(tag, expected)) {
    return std::nullopt;
  }

  std::array<uint8_t, kChaChaNonceSize> nonce;
  std::copy(nonce_bytes.begin(), nonce_bytes.end(), nonce.begin());
  return ChaCha20Xor(enc_key_.ExposeForCrypto(), nonce, 1, ciphertext);
}

}  // namespace deta::crypto
