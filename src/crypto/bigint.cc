#include "crypto/bigint.h"

#include <algorithm>

#include "common/check.h"
#include "crypto/chacha20.h"
#include "crypto/montgomery.h"
#include "crypto/secure_wipe.h"

namespace deta::crypto {

namespace {
constexpr uint64_t kBase = 1ULL << 32;
}

BigUint::BigUint(uint64_t value) {
  if (value != 0) {
    limbs_.push_back(static_cast<uint32_t>(value));
    uint32_t hi = static_cast<uint32_t>(value >> 32);
    if (hi != 0) {
      limbs_.push_back(hi);
    }
  }
}

void BigUint::Trim() {
  while (!limbs_.empty() && limbs_.back() == 0) {
    limbs_.pop_back();
  }
}

BigUint BigUint::FromHexString(const std::string& hex) {
  BigUint out;
  for (char c : hex) {
    uint32_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<uint32_t>(c - 'A' + 10);
    } else {
      DETA_CHECK_MSG(false, "invalid hex digit in BigUint");
      continue;
    }
    out = out.ShiftLeft(4).Add(BigUint(digit));
  }
  return out;
}

BigUint BigUint::FromBytes(const Bytes& be) {
  BigUint out;
  size_t n = be.size();
  out.limbs_.assign((n + 3) / 4, 0);
  for (size_t i = 0; i < n; ++i) {
    // be[i] is the (n-1-i)-th byte from the least-significant end.
    size_t byte_index = n - 1 - i;
    out.limbs_[byte_index / 4] |= static_cast<uint32_t>(be[i]) << (8 * (byte_index % 4));
  }
  out.Trim();
  return out;
}

Bytes BigUint::ToBytes() const {
  if (IsZero()) {
    return Bytes{0x00};
  }
  size_t bytes = (BitLength() + 7) / 8;
  return ToBytesPadded(bytes);
}

Bytes BigUint::ToBytesPadded(size_t n) const {
  DETA_CHECK_LE((BitLength() + 7) / 8, n);
  Bytes out(n, 0);
  for (size_t byte_index = 0; byte_index < n; ++byte_index) {
    size_t limb = byte_index / 4;
    if (limb < limbs_.size()) {
      out[n - 1 - byte_index] =
          static_cast<uint8_t>(limbs_[limb] >> (8 * (byte_index % 4)));
    }
  }
  return out;
}

std::string BigUint::ToHexString() const {
  if (IsZero()) {
    return "0";
  }
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  for (size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 28; shift >= 0; shift -= 4) {
      out.push_back(kDigits[(limbs_[i] >> shift) & 0xf]);
    }
  }
  size_t first = out.find_first_not_of('0');
  return out.substr(first);
}

size_t BigUint::BitLength() const {
  if (limbs_.empty()) {
    return 0;
  }
  uint32_t top = limbs_.back();
  size_t bits = (limbs_.size() - 1) * 32;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigUint::Bit(size_t i) const {
  size_t limb = i / 32;
  if (limb >= limbs_.size()) {
    return false;
  }
  return (limbs_[limb] >> (i % 32)) & 1u;
}

int BigUint::Compare(const BigUint& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) {
      return limbs_[i] < other.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

BigUint BigUint::Add(const BigUint& other) const {
  BigUint out;
  size_t n = std::max(limbs_.size(), other.limbs_.size());
  out.limbs_.resize(n);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t sum = carry;
    if (i < limbs_.size()) {
      sum += limbs_[i];
    }
    if (i < other.limbs_.size()) {
      sum += other.limbs_[i];
    }
    out.limbs_[i] = static_cast<uint32_t>(sum);
    carry = sum >> 32;
  }
  if (carry != 0) {
    out.limbs_.push_back(static_cast<uint32_t>(carry));
  }
  return out;
}

BigUint BigUint::Sub(const BigUint& other) const {
  DETA_CHECK_MSG(*this >= other, "BigUint::Sub would underflow");
  BigUint out;
  out.limbs_.resize(limbs_.size());
  int64_t borrow = 0;
  for (size_t i = 0; i < limbs_.size(); ++i) {
    int64_t diff = static_cast<int64_t>(limbs_[i]) - borrow;
    if (i < other.limbs_.size()) {
      diff -= static_cast<int64_t>(other.limbs_[i]);
    }
    if (diff < 0) {
      diff += static_cast<int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<uint32_t>(diff);
  }
  DETA_CHECK_EQ(borrow, 0);
  out.Trim();
  return out;
}

BigUint BigUint::Mul(const BigUint& other) const {
  if (IsZero() || other.IsZero()) {
    return BigUint();
  }
  BigUint out;
  out.limbs_.assign(limbs_.size() + other.limbs_.size(), 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t carry = 0;
    uint64_t a = limbs_[i];
    for (size_t j = 0; j < other.limbs_.size(); ++j) {
      uint64_t cur = out.limbs_[i + j] + a * other.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    size_t k = i + other.limbs_.size();
    while (carry != 0) {
      uint64_t cur = out.limbs_[k] + carry;
      out.limbs_[k] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.Trim();
  return out;
}

BigUint BigUint::ShiftLeft(size_t bits) const {
  if (IsZero() || bits == 0) {
    BigUint copy = *this;
    return copy;
  }
  size_t limb_shift = bits / 32;
  size_t bit_shift = bits % 32;
  BigUint out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t v = static_cast<uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<uint32_t>(v >> 32);
  }
  out.Trim();
  return out;
}

BigUint BigUint::ShiftRight(size_t bits) const {
  size_t limb_shift = bits / 32;
  size_t bit_shift = bits % 32;
  if (limb_shift >= limbs_.size()) {
    return BigUint();
  }
  BigUint out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    uint64_t v = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<uint64_t>(limbs_[i + limb_shift + 1]) << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<uint32_t>(v);
  }
  out.Trim();
  return out;
}

BigUint::DivResult BigUint::DivMod(const BigUint& divisor) const {
  DETA_CHECK_MSG(!divisor.IsZero(), "division by zero");
  if (*this < divisor) {
    return {BigUint(), *this};
  }
  if (divisor.limbs_.size() == 1) {
    // Fast single-limb path.
    uint64_t d = divisor.limbs_[0];
    BigUint q;
    q.limbs_.resize(limbs_.size());
    uint64_t rem = 0;
    for (size_t i = limbs_.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | limbs_[i];
      q.limbs_[i] = static_cast<uint32_t>(cur / d);
      rem = cur % d;
    }
    q.Trim();
    return {q, BigUint(rem)};
  }

  // Knuth TAOCP vol. 2, algorithm D. Normalize so the divisor's top limb has its high bit
  // set; this keeps the quotient-digit estimate within 2 of the true digit.
  size_t shift = 32 - (divisor.BitLength() % 32);
  if (shift == 32) {
    shift = 0;
  }
  BigUint u = ShiftLeft(shift);
  BigUint v = divisor.ShiftLeft(shift);
  size_t n = v.limbs_.size();
  size_t m = u.limbs_.size() - n;
  u.limbs_.push_back(0);  // u has m + n + 1 limbs.

  BigUint q;
  q.limbs_.assign(m + 1, 0);
  uint64_t v_top = v.limbs_[n - 1];
  uint64_t v_second = v.limbs_[n - 2];

  for (size_t j = m + 1; j-- > 0;) {
    uint64_t numerator = (static_cast<uint64_t>(u.limbs_[j + n]) << 32) | u.limbs_[j + n - 1];
    uint64_t qhat = numerator / v_top;
    uint64_t rhat = numerator % v_top;
    while (qhat >= kBase ||
           qhat * v_second > ((rhat << 32) | u.limbs_[j + n - 2])) {
      --qhat;
      rhat += v_top;
      if (rhat >= kBase) {
        break;
      }
    }

    // Multiply-subtract qhat * v from u[j .. j+n].
    int64_t borrow = 0;
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
      uint64_t p = qhat * v.limbs_[i] + carry;
      carry = p >> 32;
      int64_t t = static_cast<int64_t>(u.limbs_[i + j]) -
                  static_cast<int64_t>(p & 0xffffffffULL) - borrow;
      if (t < 0) {
        t += static_cast<int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u.limbs_[i + j] = static_cast<uint32_t>(t);
    }
    int64_t t = static_cast<int64_t>(u.limbs_[j + n]) - static_cast<int64_t>(carry) - borrow;
    if (t < 0) {
      // qhat was one too large; add v back.
      t += static_cast<int64_t>(kBase);
      --qhat;
      uint64_t carry2 = 0;
      for (size_t i = 0; i < n; ++i) {
        uint64_t sum = static_cast<uint64_t>(u.limbs_[i + j]) + v.limbs_[i] + carry2;
        u.limbs_[i + j] = static_cast<uint32_t>(sum);
        carry2 = sum >> 32;
      }
      t += static_cast<int64_t>(carry2);
      t &= static_cast<int64_t>(kBase - 1);
    }
    u.limbs_[j + n] = static_cast<uint32_t>(t);
    q.limbs_[j] = static_cast<uint32_t>(qhat);
  }

  q.Trim();
  u.limbs_.resize(n);
  u.Trim();
  return {q, u.ShiftRight(shift)};
}

BigUint BigUint::AddMod(const BigUint& a, const BigUint& b, const BigUint& m) {
  return a.Add(b).Mod(m);
}

BigUint BigUint::SubMod(const BigUint& a, const BigUint& b, const BigUint& m) {
  BigUint ra = a.Mod(m);
  BigUint rb = b.Mod(m);
  if (ra >= rb) {
    return ra.Sub(rb);
  }
  return ra.Add(m).Sub(rb);
}

BigUint BigUint::MulMod(const BigUint& a, const BigUint& b, const BigUint& m) {
  return a.Mul(b).Mod(m);
}

BigUint BigUint::PowMod(const BigUint& base, const BigUint& exp, const BigUint& m) {
  DETA_CHECK_MSG(!m.IsZero(), "PowMod modulus must be nonzero");
  if (m == BigUint(1)) {
    return BigUint();
  }
  // Montgomery REDC requires gcd(m, 2^32) = 1, so even moduli (Miller-Rabin
  // pre-checks, tests) must keep the schoolbook path; Paillier moduli n^2 are odd.
  if (m.IsOdd()) {
    return MontgomeryContext(m).PowMod(base, exp);
  }
  return PowModSchoolbook(base, exp, m);
}

BigUint BigUint::PowModSchoolbook(const BigUint& base, const BigUint& exp,
                                  const BigUint& m) {
  DETA_CHECK_MSG(!m.IsZero(), "PowMod modulus must be nonzero");
  if (m == BigUint(1)) {
    return BigUint();
  }
  BigUint result(1);
  BigUint b = base.Mod(m);
  size_t bits = exp.BitLength();
  for (size_t i = 0; i < bits; ++i) {
    if (exp.Bit(i)) {
      result = MulMod(result, b, m);
    }
    b = MulMod(b, b, m);
  }
  return result;
}

BigUint BigUint::FromLimbs(std::vector<uint32_t> limbs) {
  BigUint out;
  out.limbs_ = std::move(limbs);
  out.Trim();
  return out;
}

bool BigUint::InvMod(const BigUint& a, const BigUint& m, BigUint* out) {
  // Extended Euclid on (a mod m, m) tracking Bezout coefficients for a. Signs are handled
  // by keeping coefficients reduced mod m and using SubMod.
  BigUint r0 = m;
  BigUint r1 = a.Mod(m);
  BigUint s0;          // coefficient of a for r0, starts 0
  BigUint s1(1);       // coefficient of a for r1, starts 1
  while (!r1.IsZero()) {
    DivResult d = r0.DivMod(r1);
    BigUint r2 = d.remainder;
    BigUint s2 = SubMod(s0, MulMod(d.quotient, s1, m), m);
    r0 = r1;
    r1 = r2;
    s0 = s1;
    s1 = s2;
  }
  if (r0 != BigUint(1)) {
    return false;
  }
  *out = s0;
  return true;
}

BigUint BigUint::Gcd(BigUint a, BigUint b) {
  while (!b.IsZero()) {
    BigUint r = a.Mod(b);
    a = b;
    b = r;
  }
  return a;
}

BigUint BigUint::Lcm(const BigUint& a, const BigUint& b) {
  if (a.IsZero() || b.IsZero()) {
    return BigUint();
  }
  return a.Mul(b).DivMod(Gcd(a, b)).quotient;
}

BigUint BigUint::RandomBelow(SecureRng& rng, const BigUint& bound) {
  DETA_CHECK_MSG(!bound.IsZero(), "RandomBelow bound must be positive");
  size_t bits = bound.BitLength();
  size_t bytes = (bits + 7) / 8;
  for (;;) {
    Bytes raw = rng.NextBytes(bytes);
    // Mask extra high bits so the rejection rate stays below 1/2.
    size_t extra = bytes * 8 - bits;
    if (extra > 0) {
      raw[0] &= static_cast<uint8_t>(0xff >> extra);
    }
    BigUint candidate = FromBytes(raw);
    if (candidate < bound) {
      return candidate;
    }
  }
}

BigUint BigUint::RandomBits(SecureRng& rng, size_t bits) {
  DETA_CHECK_GT(bits, 0u);
  size_t bytes = (bits + 7) / 8;
  Bytes raw = rng.NextBytes(bytes);
  size_t extra = bytes * 8 - bits;
  raw[0] &= static_cast<uint8_t>(0xff >> extra);
  raw[0] |= static_cast<uint8_t>(0x80 >> extra);  // force msb
  return FromBytes(raw);
}

bool BigUint::IsProbablePrime(const BigUint& n, SecureRng& rng, int rounds) {
  if (n < BigUint(2)) {
    return false;
  }
  // Quick trial division by small primes.
  static const uint32_t kSmallPrimes[] = {2,  3,  5,  7,  11, 13, 17, 19, 23, 29,
                                          31, 37, 41, 43, 47, 53, 59, 61, 67, 71};
  for (uint32_t p : kSmallPrimes) {
    BigUint bp(p);
    if (n == bp) {
      return true;
    }
    if (n.Mod(bp).IsZero()) {
      return false;
    }
  }

  // n - 1 = d * 2^r with d odd.
  BigUint n_minus_1 = n.Sub(BigUint(1));
  BigUint d = n_minus_1;
  size_t r = 0;
  while (!d.IsOdd()) {
    d = d.ShiftRight(1);
    ++r;
  }

  BigUint two(2);
  BigUint n_minus_2 = n.Sub(two);
  for (int round = 0; round < rounds; ++round) {
    // Witness in [2, n-2].
    BigUint a = RandomBelow(rng, n_minus_2.Sub(BigUint(1))).Add(two);
    BigUint x = PowMod(a, d, n);
    if (x == BigUint(1) || x == n_minus_1) {
      continue;
    }
    bool composite = true;
    for (size_t i = 0; i + 1 < r; ++i) {
      x = MulMod(x, x, n);
      if (x == n_minus_1) {
        composite = false;
        break;
      }
    }
    if (composite) {
      return false;
    }
  }
  return true;
}

BigUint BigUint::RandomPrime(SecureRng& rng, size_t bits) {
  DETA_CHECK_GE(bits, 8u);
  for (;;) {
    BigUint candidate = RandomBits(rng, bits);
    // Force odd.
    if (!candidate.IsOdd()) {
      candidate = candidate.Add(BigUint(1));
    }
    if (IsProbablePrime(candidate, rng)) {
      return candidate;
    }
  }
}

uint64_t BigUint::ToU64() const {
  uint64_t v = 0;
  if (!limbs_.empty()) {
    v = limbs_[0];
  }
  if (limbs_.size() > 1) {
    v |= static_cast<uint64_t>(limbs_[1]) << 32;
  }
  return v;
}

void BigUint::Wipe() {
  SecureWipe(limbs_.data(), limbs_.size() * sizeof(uint32_t));
  limbs_.clear();
}

}  // namespace deta::crypto
