// Paillier additively homomorphic encryption (Paillier, EUROCRYPT'99), used by the
// Paillier-based Fusion aggregation algorithm (paper §7.1 / Figure 5c,f).
//
// Model updates are floats; they are encoded into the plaintext ring Z_n with fixed-point
// scaling plus an offset so negative values round-trip. Homomorphic addition of K party
// ciphertexts yields sum + K*offset, which the decoder removes.
//
// Hot path: all modular exponentiations run through a cached Montgomery fixed-window
// context (crypto/montgomery.h). The private key carries an optional CRT extension
// (decrypt mod p^2 and q^2 against half-size moduli, recombine via Garner) that makes
// decryption ~4x cheaper on top of Montgomery; keys without the extension (legacy
// snapshots) fall back to the lambda/mu path. Both paths produce bitwise-identical
// plaintexts, so fusion results do not depend on which key form decrypted them.
#ifndef DETA_CRYPTO_PAILLIER_H_
#define DETA_CRYPTO_PAILLIER_H_

#include <memory>
#include <vector>

#include "common/secret.h"
#include "crypto/bigint.h"
#include "crypto/chacha20.h"
#include "crypto/montgomery.h"

namespace deta::crypto {

struct PaillierPublicKey {
  BigUint n;         // modulus p*q
  BigUint n_squared;  // n^2 (cached)
  BigUint g;         // generator, n + 1

  // Builds the shared Montgomery context for n^2. Called by GeneratePaillierKey and
  // key deserialization; harmless to call again. Encrypt/AddCiphertexts work (slower)
  // without it, so hand-assembled keys in tests stay valid.
  void PrecomputeCache();
  const MontgomeryContext* mont_n2() const { return mont_n2_.get(); }

  // Encrypts m in [0, n) with fresh randomness from |rng|.
  BigUint Encrypt(const BigUint& m, SecureRng& rng) const;
  // Encrypts every element of |ms|, spreading the modular exponentiations over the
  // deterministic parallel layer (common/parallel.h). Per-element randomness is derived
  // by drawing one seed per element from |rng| in index order before fanning out, so the
  // ciphertext vector is identical for any thread count.
  std::vector<BigUint> EncryptBatch(const std::vector<BigUint>& ms, SecureRng& rng) const;
  // Homomorphic addition: Dec(AddCiphertexts(c1, c2)) = Dec(c1) + Dec(c2) mod n.
  BigUint AddCiphertexts(const BigUint& c1, const BigUint& c2) const;
  // Coordinate-wise AddCiphertexts over two equal-length vectors, in parallel.
  std::vector<BigUint> AddCiphertextBatch(const std::vector<BigUint>& c1,
                                          const std::vector<BigUint>& c2) const;
  // Homomorphic scalar multiply: Dec(MulPlain(c, k)) = k * Dec(c) mod n.
  BigUint MulPlain(const BigUint& c, const BigUint& k) const;

 private:
  // Shared across copies: the modulus is public, and the context is immutable after
  // PrecomputeCache, so concurrent batch workers can all read through it.
  std::shared_ptr<const MontgomeryContext> mont_n2_;
};

struct PaillierPrivateKey {
  // Whoever holds lambda/mu (or the CRT primes, which are strictly stronger) can
  // decrypt every party's update — the exact capability the decentralization argument
  // denies to aggregators — so every component is a Secret<BigUint>: it cannot reach a
  // log, a telemetry label, or a plaintext wire/persist path without an audited
  // Expose* call, and it wipes itself on destruction.

  Secret<BigUint> lambda;  // deta-lint: secret — lcm(p-1, q-1)
  Secret<BigUint> mu;      // deta-lint: secret — (L(g^lambda mod n^2))^-1 mod n

  // CRT extension (empty p/q = absent; legacy keys decrypt via lambda/mu). The primes
  // and everything derived from them are secret; the derived members exist so decrypt
  // never recomputes an inverse or square per ciphertext.
  Secret<BigUint> p;          // deta-lint: secret — prime factor of n
  Secret<BigUint> q;          // deta-lint: secret — prime factor of n
  Secret<BigUint> p_squared;  // deta-lint: secret
  Secret<BigUint> q_squared;  // deta-lint: secret
  Secret<BigUint> p_minus_1;  // deta-lint: secret — CRT exponent mod p^2
  Secret<BigUint> q_minus_1;  // deta-lint: secret — CRT exponent mod q^2
  Secret<BigUint> hp;         // deta-lint: secret — L_p(g^(p-1) mod p^2)^-1 mod p
  Secret<BigUint> hq;         // deta-lint: secret — L_q(g^(q-1) mod q^2)^-1 mod q
  Secret<BigUint> p_inv_q;    // deta-lint: secret — p^-1 mod q (Garner recombination)

  bool HasCrt() const { return !p.ExposeForCrypto().IsZero(); }
  // Derives p_squared..p_inv_q and the per-prime Montgomery contexts from p/q (which
  // must multiply to pub.n). Returns false on degenerate inputs (non-invertible hp/hq).
  bool PrecomputeCrt(const PaillierPublicKey& pub);

  BigUint Decrypt(const BigUint& c, const PaillierPublicKey& pub) const;
  // Decrypts every element of |cs| in parallel (decryption is deterministic, so no
  // randomness bookkeeping is needed).
  std::vector<BigUint> DecryptBatch(const std::vector<BigUint>& cs,
                                    const PaillierPublicKey& pub) const;

 private:
  // MontgomeryContext wipes its limb storage when the last key copy drops it.
  std::shared_ptr<const MontgomeryContext> mont_p2_;
  std::shared_ptr<const MontgomeryContext> mont_q2_;
};

struct PaillierKeyPair {
  PaillierPublicKey pub;
  PaillierPrivateKey priv;
};

// Generates a key with |modulus_bits|-bit n. Benches default to 512 for speed; the
// construction is identical at 2048. The private key carries the CRT extension.
PaillierKeyPair GeneratePaillierKey(SecureRng& rng, size_t modulus_bits);

// Lane layout for packing k quantized model parameters into one Paillier plaintext
// ("Lossless Privacy-Preserving Aggregation for Decentralized FL" packing idea).
// Each lane holds offset + value with ceil(log2(max_addends)) headroom bits, so the
// homomorphic sum of up to |max_addends| packed vectors cannot carry across lanes:
// packing divides the (dominant) modular-exponentiation count by lanes() while the
// aggregate decrypts to exactly the per-coordinate sums.
class PaillierPacker {
 public:
  // |lane_bits| per packed value (the pack width knob; fewer bits = more lanes = fewer
  // exponentiations, at a smaller per-value range). Requires 8 <= lane_bits <= 62.
  PaillierPacker(const PaillierPublicKey& pub, int max_addends, int lane_bits = 56);

  int lanes() const { return lanes_; }
  int lane_bits() const { return lane_bits_; }
  // Per-value magnitude bound B: packed values must satisfy |v| < B so that the sum of
  // max_addends of them stays inside one lane.
  int64_t value_bound() const { return value_bound_; }
  // Number of plaintext blocks (= ciphertexts) for a vector of |n| values.
  size_t BlockCount(size_t n) const {
    return (n + static_cast<size_t>(lanes_) - 1) / static_cast<size_t>(lanes_);
  }

  // Packs quantized values into plaintext blocks (lane 0 in the least-significant
  // bits). Checks every value against value_bound().
  std::vector<BigUint> Pack(const std::vector<int64_t>& values) const;
  // Inverse of Pack over plaintexts that are the homomorphic sum of |num_addends|
  // packed vectors; returns the per-coordinate sums.
  std::vector<int64_t> UnpackSum(const std::vector<BigUint>& plains, size_t n,
                                 int num_addends) const;

 private:
  int lanes_;
  int lane_bits_;
  int64_t value_bound_;
  BigUint lane_offset_;  // 2^(value_bits - 1), added per lane so values are nonnegative
};

// Packed batch hot path: Pack + EncryptBatch / DecryptBatch + UnpackSum fused behind
// one call each, so the fusion layers never touch lane layout directly.
std::vector<BigUint> PaillierEncryptPacked(const PaillierPublicKey& pub,
                                           const PaillierPacker& packer,
                                           const std::vector<int64_t>& values,
                                           SecureRng& rng);
std::vector<int64_t> PaillierDecryptPackedSum(const PaillierPrivateKey& priv,
                                              const PaillierPublicKey& pub,
                                              const PaillierPacker& packer,
                                              const std::vector<BigUint>& cs, size_t n,
                                              int num_addends);

// Fixed-point float codec for homomorphic aggregation.
class PaillierFloatCodec {
 public:
  // |scale_bits| fractional bits; |offset_bits| sets the representable magnitude bound
  // (values must satisfy |v| < 2^(offset_bits - scale_bits - 1) after aggregation).
  PaillierFloatCodec(const PaillierPublicKey& pub, int scale_bits = 24, int offset_bits = 48);

  BigUint Encode(float v) const;
  // Decodes a plaintext that is the homomorphic sum of |num_addends| encoded values.
  float DecodeSum(const BigUint& plain, int num_addends) const;

 private:
  const PaillierPublicKey& pub_;
  double scale_;
  BigUint offset_;
};

}  // namespace deta::crypto

#endif  // DETA_CRYPTO_PAILLIER_H_
