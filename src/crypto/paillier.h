// Paillier additively homomorphic encryption (Paillier, EUROCRYPT'99), used by the
// Paillier-based Fusion aggregation algorithm (paper §7.1 / Figure 5c,f).
//
// Model updates are floats; they are encoded into the plaintext ring Z_n with fixed-point
// scaling plus an offset so negative values round-trip. Homomorphic addition of K party
// ciphertexts yields sum + K*offset, which the decoder removes.
#ifndef DETA_CRYPTO_PAILLIER_H_
#define DETA_CRYPTO_PAILLIER_H_

#include <vector>

#include "crypto/bigint.h"
#include "crypto/chacha20.h"

namespace deta::crypto {

struct PaillierPublicKey {
  BigUint n;         // modulus p*q
  BigUint n_squared;  // n^2 (cached)
  BigUint g;         // generator, n + 1

  // Encrypts m in [0, n) with fresh randomness from |rng|.
  BigUint Encrypt(const BigUint& m, SecureRng& rng) const;
  // Encrypts every element of |ms|, spreading the modular exponentiations over the
  // deterministic parallel layer (common/parallel.h). Per-element randomness is derived
  // by drawing one seed per element from |rng| in index order before fanning out, so the
  // ciphertext vector is identical for any thread count.
  std::vector<BigUint> EncryptBatch(const std::vector<BigUint>& ms, SecureRng& rng) const;
  // Homomorphic addition: Dec(AddCiphertexts(c1, c2)) = Dec(c1) + Dec(c2) mod n.
  BigUint AddCiphertexts(const BigUint& c1, const BigUint& c2) const;
  // Coordinate-wise AddCiphertexts over two equal-length vectors, in parallel.
  std::vector<BigUint> AddCiphertextBatch(const std::vector<BigUint>& c1,
                                          const std::vector<BigUint>& c2) const;
  // Homomorphic scalar multiply: Dec(MulPlain(c, k)) = k * Dec(c) mod n.
  BigUint MulPlain(const BigUint& c, const BigUint& k) const;
};

struct PaillierPrivateKey {
  PaillierPrivateKey() = default;
  PaillierPrivateKey(const PaillierPrivateKey&) = default;
  PaillierPrivateKey(PaillierPrivateKey&&) = default;
  PaillierPrivateKey& operator=(const PaillierPrivateKey&) = default;
  PaillierPrivateKey& operator=(PaillierPrivateKey&&) = default;
  // Whoever holds lambda/mu can decrypt every party's update — the exact capability the
  // decentralization argument denies to aggregators — so they are wiped on destruction.
  ~PaillierPrivateKey() {
    lambda.Wipe();
    mu.Wipe();
  }

  BigUint lambda;  // deta-lint: secret — lcm(p-1, q-1)
  BigUint mu;      // deta-lint: secret — (L(g^lambda mod n^2))^-1 mod n

  BigUint Decrypt(const BigUint& c, const PaillierPublicKey& pub) const;
  // Decrypts every element of |cs| in parallel (decryption is deterministic, so no
  // randomness bookkeeping is needed).
  std::vector<BigUint> DecryptBatch(const std::vector<BigUint>& cs,
                                    const PaillierPublicKey& pub) const;
};

struct PaillierKeyPair {
  PaillierPublicKey pub;
  PaillierPrivateKey priv;
};

// Generates a key with |modulus_bits|-bit n. Benches default to 512 for speed; the
// construction is identical at 2048.
PaillierKeyPair GeneratePaillierKey(SecureRng& rng, size_t modulus_bits);

// Fixed-point float codec for homomorphic aggregation.
class PaillierFloatCodec {
 public:
  // |scale_bits| fractional bits; |offset_bits| sets the representable magnitude bound
  // (values must satisfy |v| < 2^(offset_bits - scale_bits - 1) after aggregation).
  PaillierFloatCodec(const PaillierPublicKey& pub, int scale_bits = 24, int offset_bits = 48);

  BigUint Encode(float v) const;
  // Decodes a plaintext that is the homomorphic sum of |num_addends| encoded values.
  float DecodeSum(const BigUint& plain, int num_addends) const;

 private:
  const PaillierPublicKey& pub_;
  double scale_;
  BigUint offset_;
};

}  // namespace deta::crypto

#endif  // DETA_CRYPTO_PAILLIER_H_
