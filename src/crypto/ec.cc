#include "crypto/ec.h"

#include "common/check.h"
#include "crypto/sha256.h"

namespace deta::crypto {

bool EcPoint::operator==(const EcPoint& other) const {
  if (is_infinity || other.is_infinity) {
    return is_infinity == other.is_infinity;
  }
  return x == other.x && y == other.y;
}

const Secp256k1& Secp256k1::Instance() {
  static const Secp256k1 instance;
  return instance;
}

Secp256k1::Secp256k1() {
  p_ = BigUint::FromHexString(
      "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
  order_ = BigUint::FromHexString(
      "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141");
  g_.x = BigUint::FromHexString(
      "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798");
  g_.y = BigUint::FromHexString(
      "483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8");
  g_.is_infinity = false;
}

bool Secp256k1::IsOnCurve(const EcPoint& pt) const {
  if (pt.is_infinity) {
    return true;
  }
  BigUint lhs = BigUint::MulMod(pt.y, pt.y, p_);
  BigUint x2 = BigUint::MulMod(pt.x, pt.x, p_);
  BigUint rhs = BigUint::AddMod(BigUint::MulMod(x2, pt.x, p_), BigUint(7), p_);
  return lhs == rhs;
}

EcPoint Secp256k1::Double(const EcPoint& a) const {
  if (a.is_infinity || a.y.IsZero()) {
    return EcPoint{};
  }
  // lambda = 3x^2 / 2y
  BigUint three_x2 = BigUint::MulMod(BigUint(3), BigUint::MulMod(a.x, a.x, p_), p_);
  BigUint two_y = BigUint::AddMod(a.y, a.y, p_);
  BigUint inv;
  DETA_CHECK(BigUint::InvMod(two_y, p_, &inv));
  BigUint lambda = BigUint::MulMod(three_x2, inv, p_);

  BigUint x3 = BigUint::SubMod(BigUint::MulMod(lambda, lambda, p_),
                               BigUint::AddMod(a.x, a.x, p_), p_);
  BigUint y3 = BigUint::SubMod(BigUint::MulMod(lambda, BigUint::SubMod(a.x, x3, p_), p_),
                               a.y, p_);
  return EcPoint{x3, y3, false};
}

EcPoint Secp256k1::Add(const EcPoint& a, const EcPoint& b) const {
  if (a.is_infinity) {
    return b;
  }
  if (b.is_infinity) {
    return a;
  }
  if (a.x == b.x) {
    if (a.y == b.y) {
      return Double(a);
    }
    return EcPoint{};  // inverse points
  }
  BigUint num = BigUint::SubMod(b.y, a.y, p_);
  BigUint den = BigUint::SubMod(b.x, a.x, p_);
  BigUint inv;
  DETA_CHECK(BigUint::InvMod(den, p_, &inv));
  BigUint lambda = BigUint::MulMod(num, inv, p_);

  BigUint x3 = BigUint::SubMod(BigUint::MulMod(lambda, lambda, p_),
                               BigUint::AddMod(a.x, b.x, p_), p_);
  BigUint y3 = BigUint::SubMod(BigUint::MulMod(lambda, BigUint::SubMod(a.x, x3, p_), p_),
                               a.y, p_);
  return EcPoint{x3, y3, false};
}

EcPoint Secp256k1::Mul(const BigUint& k, const EcPoint& pt) const {
  EcPoint result;  // infinity
  EcPoint addend = pt;
  size_t bits = k.BitLength();
  for (size_t i = 0; i < bits; ++i) {
    if (k.Bit(i)) {
      result = Add(result, addend);
    }
    addend = Double(addend);
  }
  return result;
}

Bytes Secp256k1::Encode(const EcPoint& pt) const {
  if (pt.is_infinity) {
    return Bytes{0x00};
  }
  Bytes out;
  out.push_back(0x04);
  Bytes x = pt.x.ToBytesPadded(32);
  Bytes y = pt.y.ToBytesPadded(32);
  out.insert(out.end(), x.begin(), x.end());
  out.insert(out.end(), y.begin(), y.end());
  return out;
}

std::optional<EcPoint> Secp256k1::Decode(const Bytes& data) const {
  if (data.size() == 1 && data[0] == 0x00) {
    return EcPoint{};
  }
  if (data.size() != 65 || data[0] != 0x04) {
    return std::nullopt;
  }
  EcPoint pt;
  pt.x = BigUint::FromBytes(Bytes(data.begin() + 1, data.begin() + 33));
  pt.y = BigUint::FromBytes(Bytes(data.begin() + 33, data.end()));
  pt.is_infinity = false;
  if (!IsOnCurve(pt)) {
    return std::nullopt;
  }
  return pt;
}

EcKeyPair GenerateEcKey(SecureRng& rng) {
  const Secp256k1& curve = Secp256k1::Instance();
  BigUint priv;
  do {
    priv = BigUint::RandomBelow(rng, curve.n());
  } while (priv.IsZero());
  EcPoint pub = curve.MulGenerator(priv);
  return EcKeyPair{std::move(priv), std::move(pub)};
}

Bytes EcdhSharedSecret(const Secret<BigUint>& private_key, const EcPoint& peer_public) {
  const Secp256k1& curve = Secp256k1::Instance();
  DETA_CHECK_MSG(curve.IsOnCurve(peer_public) && !peer_public.is_infinity,
                 "invalid ECDH peer public key");
  EcPoint shared = curve.Mul(private_key.ExposeForCrypto(), peer_public);
  DETA_CHECK_MSG(!shared.is_infinity, "degenerate ECDH shared point");
  return Sha256Digest(shared.x.ToBytesPadded(32));
}

}  // namespace deta::crypto
