// FIPS 180-4 SHA-256, implemented from scratch (no crypto libraries are available in this
// environment). Used for CVM launch measurements, attestation report digests, HMAC, and
// key derivation.
#ifndef DETA_CRYPTO_SHA256_H_
#define DETA_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace deta::crypto {

inline constexpr size_t kSha256DigestSize = 32;

// Incremental SHA-256. Typical use: Update(...)* then Finish().
class Sha256 {
 public:
  Sha256();

  void Update(const uint8_t* data, size_t len);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }

  // Finalizes and returns the digest. The object must not be reused afterwards.
  std::array<uint8_t, kSha256DigestSize> Finish();

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t total_len_ = 0;
  uint8_t buffer_[64];
  size_t buffer_len_ = 0;
  bool finished_ = false;
};

// One-shot convenience.
Bytes Sha256Digest(const Bytes& data);
Bytes Sha256Digest(const uint8_t* data, size_t len);

}  // namespace deta::crypto

#endif  // DETA_CRYPTO_SHA256_H_
