#include "crypto/hmac.h"

#include "common/check.h"
#include "crypto/sha256.h"

namespace deta::crypto {

Bytes HmacSha256(const Bytes& key, const Bytes& data) {
  constexpr size_t kBlockSize = 64;
  Bytes k = key;
  if (k.size() > kBlockSize) {
    k = Sha256Digest(k);
  }
  k.resize(kBlockSize, 0x00);

  Bytes ipad(kBlockSize), opad(kBlockSize);
  for (size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = static_cast<uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<uint8_t>(k[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.Update(ipad);
  inner.Update(data);
  auto inner_digest = inner.Finish();

  Sha256 outer;
  outer.Update(opad);
  outer.Update(inner_digest.data(), inner_digest.size());
  auto outer_digest = outer.Finish();
  return Bytes(outer_digest.begin(), outer_digest.end());
}

Bytes HkdfExtract(const Bytes& salt, const Bytes& ikm) {
  Bytes effective_salt = salt.empty() ? Bytes(kSha256DigestSize, 0x00) : salt;
  return HmacSha256(effective_salt, ikm);
}

Bytes HkdfExpand(const Bytes& prk, const Bytes& info, size_t length) {
  DETA_CHECK_LE(length, 255 * kSha256DigestSize);
  Bytes okm;
  Bytes t;
  uint8_t counter = 1;
  while (okm.size() < length) {
    Bytes block = t;
    block.insert(block.end(), info.begin(), info.end());
    block.push_back(counter++);
    t = HmacSha256(prk, block);
    okm.insert(okm.end(), t.begin(), t.end());
  }
  okm.resize(length);
  return okm;
}

Bytes Hkdf(const Bytes& salt, const Bytes& ikm, const Bytes& info, size_t length) {
  return HkdfExpand(HkdfExtract(salt, ikm), info, length);
}

}  // namespace deta::crypto
