#include "crypto/paillier.h"

#include <cmath>

#include "common/check.h"
#include "common/parallel.h"
#include "common/telemetry.h"

namespace deta::crypto {

namespace {

// L(x) = (x - 1) / n, defined on x ≡ 1 (mod n).
BigUint LFunction(const BigUint& x, const BigUint& n) {
  return x.Sub(BigUint(1)).DivMod(n).quotient;
}

}  // namespace

BigUint PaillierPublicKey::Encrypt(const BigUint& m, SecureRng& rng) const {
  DETA_CHECK_MSG(m < n, "Paillier plaintext out of range");
  // r uniform in [1, n) with gcd(r, n) = 1 (holds with overwhelming probability for a
  // well-formed key; re-draw otherwise).
  BigUint r;
  do {
    r = BigUint::RandomBelow(rng, n);
  } while (r.IsZero() || BigUint::Gcd(r, n) != BigUint(1));
  // c = g^m * r^n mod n^2. With g = n + 1, g^m = 1 + m*n (mod n^2), a big speedup.
  BigUint g_m = BigUint::AddMod(BigUint(1), m.Mul(n).Mod(n_squared), n_squared);
  BigUint r_n = BigUint::PowMod(r, n, n_squared);
  return BigUint::MulMod(g_m, r_n, n_squared);
}

std::vector<BigUint> PaillierPublicKey::EncryptBatch(const std::vector<BigUint>& ms,
                                                     SecureRng& rng) const {
  // Each element gets its own SecureRng forked from |rng| in index order; the modexp
  // fan-out below then cannot perturb the randomness stream, keeping ciphertexts
  // reproducible across thread counts.
  telemetry::Span span("crypto.paillier.encrypt_batch");
  DETA_COUNTER("crypto.paillier.encrypt_ops").Add(ms.size());
  DETA_HISTOGRAM("crypto.paillier.encrypt_batch_size", ::deta::telemetry::Unit::kCount)
      .Record(static_cast<double>(ms.size()));
  std::vector<Bytes> seeds(ms.size());
  for (Bytes& seed : seeds) {
    seed = rng.NextBytes(32);
  }
  std::vector<BigUint> out(ms.size());
  parallel::ParallelFor(0, static_cast<int64_t>(ms.size()), 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      SecureRng local(seeds[static_cast<size_t>(i)]);
      out[static_cast<size_t>(i)] = Encrypt(ms[static_cast<size_t>(i)], local);
    }
  });
  return out;
}

BigUint PaillierPublicKey::AddCiphertexts(const BigUint& c1, const BigUint& c2) const {
  return BigUint::MulMod(c1, c2, n_squared);
}

std::vector<BigUint> PaillierPublicKey::AddCiphertextBatch(
    const std::vector<BigUint>& c1, const std::vector<BigUint>& c2) const {
  DETA_CHECK_EQ(c1.size(), c2.size());
  telemetry::Span span("crypto.paillier.add_batch");
  DETA_COUNTER("crypto.paillier.add_ops").Add(c1.size());
  DETA_HISTOGRAM("crypto.paillier.add_batch_size", ::deta::telemetry::Unit::kCount)
      .Record(static_cast<double>(c1.size()));
  std::vector<BigUint> out(c1.size());
  parallel::ParallelFor(0, static_cast<int64_t>(c1.size()), 8, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      size_t k = static_cast<size_t>(i);
      out[k] = AddCiphertexts(c1[k], c2[k]);
    }
  });
  return out;
}

BigUint PaillierPublicKey::MulPlain(const BigUint& c, const BigUint& k) const {
  return BigUint::PowMod(c, k, n_squared);
}

BigUint PaillierPrivateKey::Decrypt(const BigUint& c, const PaillierPublicKey& pub) const {
  BigUint u = BigUint::PowMod(c, lambda, pub.n_squared);
  return BigUint::MulMod(LFunction(u, pub.n), mu, pub.n);
}

std::vector<BigUint> PaillierPrivateKey::DecryptBatch(const std::vector<BigUint>& cs,
                                                      const PaillierPublicKey& pub) const {
  telemetry::Span span("crypto.paillier.decrypt_batch");
  DETA_COUNTER("crypto.paillier.decrypt_ops").Add(cs.size());
  DETA_HISTOGRAM("crypto.paillier.decrypt_batch_size", ::deta::telemetry::Unit::kCount)
      .Record(static_cast<double>(cs.size()));
  std::vector<BigUint> out(cs.size());
  parallel::ParallelFor(0, static_cast<int64_t>(cs.size()), 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      out[static_cast<size_t>(i)] = Decrypt(cs[static_cast<size_t>(i)], pub);
    }
  });
  return out;
}

PaillierKeyPair GeneratePaillierKey(SecureRng& rng, size_t modulus_bits) {
  DETA_CHECK_GE(modulus_bits, 64u);
  for (;;) {
    BigUint p = BigUint::RandomPrime(rng, modulus_bits / 2);
    BigUint q = BigUint::RandomPrime(rng, modulus_bits / 2);
    if (p == q) {
      continue;
    }
    BigUint n = p.Mul(q);
    // gcd(n, (p-1)(q-1)) must be 1; guaranteed for distinct primes of equal length.
    PaillierKeyPair kp;
    kp.pub.n = n;
    kp.pub.n_squared = n.Mul(n);
    kp.pub.g = n.Add(BigUint(1));
    kp.priv.lambda = BigUint::Lcm(p.Sub(BigUint(1)), q.Sub(BigUint(1)));

    BigUint u = BigUint::PowMod(kp.pub.g, kp.priv.lambda, kp.pub.n_squared);
    BigUint l = LFunction(u, n);
    BigUint mu;
    if (!BigUint::InvMod(l, n, &mu)) {
      continue;  // Degenerate key; re-draw.
    }
    kp.priv.mu = mu;
    return kp;
  }
}

PaillierFloatCodec::PaillierFloatCodec(const PaillierPublicKey& pub, int scale_bits,
                                       int offset_bits)
    : pub_(pub),
      scale_(std::ldexp(1.0, scale_bits)),
      offset_(BigUint(1).ShiftLeft(static_cast<size_t>(offset_bits))) {
  DETA_CHECK_LT(static_cast<size_t>(offset_bits) + 8, pub.n.BitLength());
}

BigUint PaillierFloatCodec::Encode(float v) const {
  long long scaled = std::llround(static_cast<double>(v) * scale_);
  // value = offset + scaled; offset dominates so the result is nonnegative.
  if (scaled >= 0) {
    return offset_.Add(BigUint(static_cast<uint64_t>(scaled)));
  }
  return offset_.Sub(BigUint(static_cast<uint64_t>(-scaled)));
}

float PaillierFloatCodec::DecodeSum(const BigUint& plain, int num_addends) const {
  BigUint total_offset = offset_.Mul(BigUint(static_cast<uint64_t>(num_addends)));
  double value;
  if (plain >= total_offset) {
    value = static_cast<double>(plain.Sub(total_offset).ToU64());
  } else {
    value = -static_cast<double>(total_offset.Sub(plain).ToU64());
  }
  return static_cast<float>(value / scale_);
}

}  // namespace deta::crypto
