#include "crypto/paillier.h"

#include <cmath>
#include <cstdlib>

#include "common/check.h"
#include "common/parallel.h"
#include "common/telemetry.h"

namespace deta::crypto {

namespace {

// L(x) = (x - 1) / n, defined on x ≡ 1 (mod n).
BigUint LFunction(const BigUint& x, const BigUint& n) {
  return x.Sub(BigUint(1)).DivMod(n).quotient;
}

}  // namespace

void PaillierPublicKey::PrecomputeCache() {
  if (mont_n2_ == nullptr && n_squared.IsOdd() && n_squared > BigUint(1)) {
    mont_n2_ = std::make_shared<const MontgomeryContext>(n_squared);
  }
}

BigUint PaillierPublicKey::Encrypt(const BigUint& m, SecureRng& rng) const {
  DETA_CHECK_MSG(m < n, "Paillier plaintext out of range");
  // r uniform in [1, n) with gcd(r, n) = 1 (holds with overwhelming probability for a
  // well-formed key; re-draw otherwise).
  BigUint r;
  do {
    r = BigUint::RandomBelow(rng, n);
  } while (r.IsZero() || BigUint::Gcd(r, n) != BigUint(1));
  // c = g^m * r^n mod n^2. With g = n + 1, g^m = 1 + m*n (mod n^2), a big speedup;
  // m < n makes 1 + m*n < n^2 already reduced.
  BigUint g_m = BigUint(1).Add(m.Mul(n));
  if (mont_n2_ != nullptr) {
    return mont_n2_->MulMod(g_m, mont_n2_->PowMod(r, n));
  }
  BigUint r_n = BigUint::PowMod(r, n, n_squared);
  return BigUint::MulMod(g_m, r_n, n_squared);
}

std::vector<BigUint> PaillierPublicKey::EncryptBatch(const std::vector<BigUint>& ms,
                                                     SecureRng& rng) const {
  // Each element gets its own SecureRng forked from |rng| in index order; the modexp
  // fan-out below then cannot perturb the randomness stream, keeping ciphertexts
  // reproducible across thread counts.
  telemetry::Span span("crypto.paillier.encrypt_batch");
  DETA_COUNTER("crypto.paillier.encrypt_ops").Add(ms.size());
  DETA_HISTOGRAM("crypto.paillier.encrypt_batch_size", ::deta::telemetry::Unit::kCount)
      .Record(static_cast<double>(ms.size()));
  std::vector<Bytes> seeds(ms.size());
  for (Bytes& seed : seeds) {
    seed = rng.NextBytes(32);
  }
  std::vector<BigUint> out(ms.size());
  parallel::ParallelFor(0, static_cast<int64_t>(ms.size()), 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      SecureRng local(seeds[static_cast<size_t>(i)]);
      out[static_cast<size_t>(i)] = Encrypt(ms[static_cast<size_t>(i)], local);
    }
  });
  return out;
}

BigUint PaillierPublicKey::AddCiphertexts(const BigUint& c1, const BigUint& c2) const {
  if (mont_n2_ != nullptr) {
    return mont_n2_->MulMod(c1, c2);
  }
  return BigUint::MulMod(c1, c2, n_squared);
}

std::vector<BigUint> PaillierPublicKey::AddCiphertextBatch(
    const std::vector<BigUint>& c1, const std::vector<BigUint>& c2) const {
  DETA_CHECK_EQ(c1.size(), c2.size());
  telemetry::Span span("crypto.paillier.add_batch");
  DETA_COUNTER("crypto.paillier.add_ops").Add(c1.size());
  DETA_HISTOGRAM("crypto.paillier.add_batch_size", ::deta::telemetry::Unit::kCount)
      .Record(static_cast<double>(c1.size()));
  std::vector<BigUint> out(c1.size());
  parallel::ParallelFor(0, static_cast<int64_t>(c1.size()), 8, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      size_t k = static_cast<size_t>(i);
      out[k] = AddCiphertexts(c1[k], c2[k]);
    }
  });
  return out;
}

BigUint PaillierPublicKey::MulPlain(const BigUint& c, const BigUint& k) const {
  if (mont_n2_ != nullptr) {
    return mont_n2_->PowMod(c, k);
  }
  return BigUint::PowMod(c, k, n_squared);
}

bool PaillierPrivateKey::PrecomputeCrt(const PaillierPublicKey& pub) {
  // All derivation happens on exposed references inside this kernel; every derived
  // value lands back in a Secret member (or is a fresh local wiped by BigUint dtor
  // semantics when it leaves scope).
  const BigUint& pv = p.ExposeForCrypto();
  const BigUint& qv = q.ExposeForCrypto();
  if (pv.IsZero() || qv.IsZero() || pv.Mul(qv) != pub.n) {
    return false;
  }
  p_squared = Secret<BigUint>(pv.Mul(pv));
  q_squared = Secret<BigUint>(qv.Mul(qv));
  p_minus_1 = Secret<BigUint>(pv.Sub(BigUint(1)));
  q_minus_1 = Secret<BigUint>(qv.Sub(BigUint(1)));
  const BigUint& p2 = p_squared.ExposeForCrypto();
  const BigUint& q2 = q_squared.ExposeForCrypto();
  mont_p2_ = std::make_shared<const MontgomeryContext>(p2);
  mont_q2_ = std::make_shared<const MontgomeryContext>(q2);
  // hp = L_p(g^(p-1) mod p^2)^-1 mod p (and symmetrically hq): the per-prime analogue
  // of mu, precomputed so decryption costs one inverse-free multiply per prime.
  BigUint lp = LFunction(mont_p2_->PowMod(pub.g.Mod(p2), p_minus_1.ExposeForCrypto()), pv);
  BigUint lq = LFunction(mont_q2_->PowMod(pub.g.Mod(q2), q_minus_1.ExposeForCrypto()), qv);
  BigUint hp_v;
  BigUint hq_v;
  BigUint p_inv_q_v;
  if (!BigUint::InvMod(lp, pv, &hp_v) || !BigUint::InvMod(lq, qv, &hq_v) ||
      !BigUint::InvMod(pv, qv, &p_inv_q_v)) {
    return false;
  }
  hp = Secret<BigUint>(std::move(hp_v));
  hq = Secret<BigUint>(std::move(hq_v));
  p_inv_q = Secret<BigUint>(std::move(p_inv_q_v));
  return true;
}

BigUint PaillierPrivateKey::Decrypt(const BigUint& c, const PaillierPublicKey& pub) const {
  if (HasCrt() && mont_p2_ != nullptr && mont_q2_ != nullptr) {
    // CRT decryption: exponentiate against the half-size moduli p^2/q^2 with the
    // half-size exponents p-1/q-1, then recombine with Garner's formula. ~4x cheaper
    // than the lambda/mu path and bitwise identical to it.
    const BigUint& pv = p.ExposeForCrypto();
    const BigUint& qv = q.ExposeForCrypto();
    BigUint mp = BigUint::MulMod(
        LFunction(mont_p2_->PowMod(c.Mod(p_squared.ExposeForCrypto()),
                                   p_minus_1.ExposeForCrypto()), pv),
        hp.ExposeForCrypto(), pv);
    BigUint mq = BigUint::MulMod(
        LFunction(mont_q2_->PowMod(c.Mod(q_squared.ExposeForCrypto()),
                                   q_minus_1.ExposeForCrypto()), qv),
        hq.ExposeForCrypto(), qv);
    BigUint h = BigUint::MulMod(BigUint::SubMod(mq, mp, qv), p_inv_q.ExposeForCrypto(), qv);
    return mp.Add(pv.Mul(h));  // mp + p*h < p*q = n
  }
  const MontgomeryContext* mont = pub.mont_n2();
  BigUint u = mont != nullptr ? mont->PowMod(c, lambda.ExposeForCrypto())
                              : BigUint::PowMod(c, lambda.ExposeForCrypto(), pub.n_squared);
  return BigUint::MulMod(LFunction(u, pub.n), mu.ExposeForCrypto(), pub.n);
}

std::vector<BigUint> PaillierPrivateKey::DecryptBatch(const std::vector<BigUint>& cs,
                                                      const PaillierPublicKey& pub) const {
  telemetry::Span span("crypto.paillier.decrypt_batch");
  DETA_COUNTER("crypto.paillier.decrypt_ops").Add(cs.size());
  DETA_HISTOGRAM("crypto.paillier.decrypt_batch_size", ::deta::telemetry::Unit::kCount)
      .Record(static_cast<double>(cs.size()));
  std::vector<BigUint> out(cs.size());
  parallel::ParallelFor(0, static_cast<int64_t>(cs.size()), 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      out[static_cast<size_t>(i)] = Decrypt(cs[static_cast<size_t>(i)], pub);
    }
  });
  return out;
}

PaillierKeyPair GeneratePaillierKey(SecureRng& rng, size_t modulus_bits) {
  DETA_CHECK_GE(modulus_bits, 64u);
  for (;;) {
    BigUint p = BigUint::RandomPrime(rng, modulus_bits / 2);
    BigUint q = BigUint::RandomPrime(rng, modulus_bits / 2);
    if (p == q) {
      continue;
    }
    BigUint n = p.Mul(q);
    // gcd(n, (p-1)(q-1)) must be 1; guaranteed for distinct primes of equal length.
    PaillierKeyPair kp;
    kp.pub.n = n;
    kp.pub.n_squared = n.Mul(n);
    kp.pub.g = n.Add(BigUint(1));
    kp.pub.PrecomputeCache();
    kp.priv.lambda = Secret<BigUint>(BigUint::Lcm(p.Sub(BigUint(1)), q.Sub(BigUint(1))));

    BigUint u = kp.pub.mont_n2()->PowMod(kp.pub.g, kp.priv.lambda.ExposeForCrypto());
    BigUint l = LFunction(u, n);
    BigUint mu;
    if (!BigUint::InvMod(l, n, &mu)) {
      continue;  // Degenerate key; re-draw.
    }
    kp.priv.mu = Secret<BigUint>(std::move(mu));
    kp.priv.p = Secret<BigUint>(std::move(p));
    kp.priv.q = Secret<BigUint>(std::move(q));
    if (!kp.priv.PrecomputeCrt(kp.pub)) {
      continue;
    }
    return kp;
  }
}

PaillierPacker::PaillierPacker(const PaillierPublicKey& pub, int max_addends,
                               int lane_bits)
    : lane_bits_(lane_bits) {
  DETA_CHECK_GE(lane_bits, 8);
  DETA_CHECK_LE(lane_bits, 62);
  // Reserve one lane-width of headroom below the modulus top.
  int usable_bits = static_cast<int>(pub.n.BitLength()) - lane_bits - 8;
  DETA_CHECK_MSG(usable_bits >= lane_bits, "Paillier modulus too small for packing");
  lanes_ = usable_bits / lane_bits;
  // Per-lane layout: encoded value = offset + value, with value in (-offset, offset).
  // The homomorphic sum of up to max_addends lane values must not carry into the next
  // lane: max_addends * 2^(value_bits) <= 2^lane_bits, so value_bits cedes
  // ceil(log2(max_addends)) headroom bits.
  DETA_CHECK_GE(max_addends, 1);
  int headroom_bits = 0;
  while ((1 << headroom_bits) < max_addends) {
    ++headroom_bits;
  }
  int value_bits = lane_bits - headroom_bits;
  DETA_CHECK_MSG(value_bits >= 2, "lane too narrow for " << max_addends << " addends");
  lane_offset_ = BigUint(1).ShiftLeft(static_cast<size_t>(value_bits - 1));
  value_bound_ = int64_t{1} << (value_bits - 1);
}

std::vector<BigUint> PaillierPacker::Pack(const std::vector<int64_t>& values) const {
  size_t blocks = BlockCount(values.size());
  std::vector<BigUint> packed(blocks);
  // Packing is a pure function of |values|, so blocks parallelize freely.
  parallel::ParallelFor(0, static_cast<int64_t>(blocks), 16, [&](int64_t lo, int64_t hi) {
    for (int64_t bi = lo; bi < hi; ++bi) {
      size_t base = static_cast<size_t>(bi) * static_cast<size_t>(lanes_);
      int count = static_cast<int>(
          std::min<size_t>(static_cast<size_t>(lanes_), values.size() - base));
      BigUint block;
      // Lane 0 occupies the least-significant bits.
      for (int lane = count - 1; lane >= 0; --lane) {
        int64_t v = values[base + static_cast<size_t>(lane)];
        DETA_CHECK_MSG(v > -value_bound_ && v < value_bound_,
                       "packed value " << v << " exceeds lane bound " << value_bound_);
        BigUint lane_value;
        if (v >= 0) {
          lane_value = lane_offset_.Add(BigUint(static_cast<uint64_t>(v)));
        } else {
          lane_value = lane_offset_.Sub(BigUint(static_cast<uint64_t>(-v)));
        }
        block = block.ShiftLeft(static_cast<size_t>(lane_bits_)).Add(lane_value);
      }
      packed[static_cast<size_t>(bi)] = std::move(block);
    }
  });
  return packed;
}

std::vector<int64_t> PaillierPacker::UnpackSum(const std::vector<BigUint>& plains,
                                               size_t n, int num_addends) const {
  DETA_CHECK_EQ(plains.size(), BlockCount(n));
  std::vector<int64_t> out(n);
  BigUint lane_modulus = BigUint(1).ShiftLeft(static_cast<size_t>(lane_bits_));
  BigUint total_offset = lane_offset_.Mul(BigUint(static_cast<uint64_t>(num_addends)));
  // Unpacking writes disjoint [bi*lanes, bi*lanes+count) slices, so blocks parallelize.
  parallel::ParallelFor(0, static_cast<int64_t>(plains.size()), 16,
                        [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      size_t bi = static_cast<size_t>(i);
      BigUint packed = plains[bi];
      int count = static_cast<int>(std::min<size_t>(
          static_cast<size_t>(lanes_), n - bi * static_cast<size_t>(lanes_)));
      for (int lane = 0; lane < count; ++lane) {
        BigUint lane_value = packed.Mod(lane_modulus);
        packed = packed.ShiftRight(static_cast<size_t>(lane_bits_));
        int64_t v;
        if (lane_value >= total_offset) {
          v = static_cast<int64_t>(lane_value.Sub(total_offset).ToU64());
        } else {
          v = -static_cast<int64_t>(total_offset.Sub(lane_value).ToU64());
        }
        out[bi * static_cast<size_t>(lanes_) + static_cast<size_t>(lane)] = v;
      }
    }
  });
  return out;
}

std::vector<BigUint> PaillierEncryptPacked(const PaillierPublicKey& pub,
                                           const PaillierPacker& packer,
                                           const std::vector<int64_t>& values,
                                           SecureRng& rng) {
  return pub.EncryptBatch(packer.Pack(values), rng);
}

std::vector<int64_t> PaillierDecryptPackedSum(const PaillierPrivateKey& priv,
                                              const PaillierPublicKey& pub,
                                              const PaillierPacker& packer,
                                              const std::vector<BigUint>& cs, size_t n,
                                              int num_addends) {
  return packer.UnpackSum(priv.DecryptBatch(cs, pub), n, num_addends);
}

PaillierFloatCodec::PaillierFloatCodec(const PaillierPublicKey& pub, int scale_bits,
                                       int offset_bits)
    : pub_(pub),
      scale_(std::ldexp(1.0, scale_bits)),
      offset_(BigUint(1).ShiftLeft(static_cast<size_t>(offset_bits))) {
  DETA_CHECK_LT(static_cast<size_t>(offset_bits) + 8, pub.n.BitLength());
}

BigUint PaillierFloatCodec::Encode(float v) const {
  long long scaled = std::llround(static_cast<double>(v) * scale_);
  // value = offset + scaled; offset dominates so the result is nonnegative.
  if (scaled >= 0) {
    return offset_.Add(BigUint(static_cast<uint64_t>(scaled)));
  }
  return offset_.Sub(BigUint(static_cast<uint64_t>(-scaled)));
}

float PaillierFloatCodec::DecodeSum(const BigUint& plain, int num_addends) const {
  BigUint total_offset = offset_.Mul(BigUint(static_cast<uint64_t>(num_addends)));
  double value;
  if (plain >= total_offset) {
    value = static_cast<double>(plain.Sub(total_offset).ToU64());
  } else {
    value = -static_cast<double>(total_offset.Sub(plain).ToU64());
  }
  return static_cast<float>(value / scale_);
}

}  // namespace deta::crypto
