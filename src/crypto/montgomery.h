// Montgomery-form modular arithmetic context for odd moduli: REDC-based
// multiplication/squaring (CIOS, 32-bit limbs, 64-bit intermediates) and fixed-window
// (4-bit) modular exponentiation. This is the hot path under Paillier encrypt/decrypt
// and Miller-Rabin witnesses: it replaces the schoolbook multiply + Knuth-D divide per
// modular product with a single fused multiply-reduce pass that never divides.
//
// All arithmetic is exact, so every result is bitwise identical to the schoolbook
// reference (BigUint::PowModSchoolbook) — the deterministic-aggregation guarantee does
// not depend on which path computed an exponentiation.
//
// A context precomputes everything derived from the modulus (R^2 mod m, -m^-1 mod 2^32)
// once; contexts are immutable after construction and safe to share across the
// deterministic parallel layer. Contexts built over secret moduli (the CRT primes'
// squares in the extended Paillier private key) wipe their limb storage on destruction.
#ifndef DETA_CRYPTO_MONTGOMERY_H_
#define DETA_CRYPTO_MONTGOMERY_H_

#include <cstdint>
#include <vector>

#include "crypto/bigint.h"

namespace deta::crypto {

class MontgomeryContext {
 public:
  // |modulus| must be odd and > 1.
  explicit MontgomeryContext(const BigUint& modulus);
  // Wipes the precomputed tables; CRT contexts are derived from the private primes.
  ~MontgomeryContext();

  MontgomeryContext(const MontgomeryContext&) = delete;
  MontgomeryContext& operator=(const MontgomeryContext&) = delete;

  const BigUint& modulus() const { return modulus_; }

  // Conversions to/from Montgomery form (a*R mod m with R = 2^(32*limbs)).
  BigUint ToMont(const BigUint& a) const;
  BigUint FromMont(const BigUint& a) const;

  // Montgomery product a*b*R^-1 mod m for operands already in Montgomery form.
  BigUint MulMont(const BigUint& a, const BigUint& b) const;

  // Plain a*b mod m (operands in normal form, reduced mod m).
  BigUint MulMod(const BigUint& a, const BigUint& b) const;

  // base^exp mod m via fixed 4-bit windows: per window, four Montgomery squarings plus
  // at most one table multiply. The 16-entry window table is wiped before returning
  // (decryption exponentiates a table of powers tied to secret-keyed values).
  BigUint PowMod(const BigUint& base, const BigUint& exp) const;

 private:
  using Limbs = std::vector<uint32_t>;

  // Fixed-width import: value must be < modulus; pads to limb count.
  Limbs Import(const BigUint& a) const;
  BigUint Export(const Limbs& a) const;
  // CIOS fused multiply-reduce: out = a*b*R^-1 mod m. |out| must not alias a or b.
  void MulMontLimbs(const Limbs& a, const Limbs& b, Limbs* out, Limbs* scratch) const;

  BigUint modulus_;
  Limbs m_;           // modulus, fixed width
  uint32_t inv32_;    // -m^-1 mod 2^32
  Limbs r2_;          // R^2 mod m (Montgomery form of R)
  Limbs one_mont_;    // R mod m (Montgomery form of 1)
};

}  // namespace deta::crypto

#endif  // DETA_CRYPTO_MONTGOMERY_H_
