// Best-effort secret erasure: zeroes memory through a compiler barrier so the store
// cannot be elided as a dead write (the usual fate of a plain memset before free).
//
// Every type owning material tagged `// deta-lint: secret` must call one of these from
// its destructor — enforced by deta_lint rule DL-S2 — so key schedules, shared secrets,
// and seal keys do not linger in freed heap pages for a breach experiment (or a real
// exploit) to scrape. This is the in-process half of the paper's trust argument: secrets
// live only inside their trust domain *and* only for their useful lifetime.
#ifndef DETA_CRYPTO_SECURE_WIPE_H_
#define DETA_CRYPTO_SECURE_WIPE_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/bytes.h"

namespace deta::crypto {

// Zeroes [data, data+len) and prevents the compiler from discarding the store.
void SecureWipe(void* data, size_t len);

// Wipes a byte buffer's current contents in place (the buffer stays usable; callers in
// destructors don't care, callers reusing a buffer get zeros).
inline void SecureWipe(Bytes& buffer) { SecureWipe(buffer.data(), buffer.size()); }

template <size_t N>
inline void SecureWipe(std::array<uint8_t, N>& buffer) {
  SecureWipe(buffer.data(), buffer.size());
}

template <size_t N>
inline void SecureWipe(std::array<uint32_t, N>& buffer) {
  SecureWipe(buffer.data(), buffer.size() * sizeof(uint32_t));
}

}  // namespace deta::crypto

#endif  // DETA_CRYPTO_SECURE_WIPE_H_
