// secp256k1 elliptic-curve group: y^2 = x^3 + 7 over F_p.
//
// Backs the two-phase authentication protocol of §4.3: the attestation proxy provisions an
// EC key as the aggregator trust token (the paper uses ECDSA prime251v1; we use secp256k1,
// identical protocol shape), parties verify aggregators by ECDSA challenge/response, and
// secure channels derive their keys from ECDH.
#ifndef DETA_CRYPTO_EC_H_
#define DETA_CRYPTO_EC_H_

#include <optional>
#include <utility>

#include "common/secret.h"
#include "crypto/bigint.h"
#include "crypto/chacha20.h"

namespace deta::crypto {

// Affine point; infinity is represented by is_infinity.
struct EcPoint {
  BigUint x;
  BigUint y;
  bool is_infinity = true;

  bool operator==(const EcPoint& other) const;
};

// The secp256k1 group with scalar/point arithmetic. Stateless; all methods const.
class Secp256k1 {
 public:
  static const Secp256k1& Instance();

  const BigUint& p() const { return p_; }       // field prime
  const BigUint& n() const { return order_; }   // group order
  const EcPoint& generator() const { return g_; }

  bool IsOnCurve(const EcPoint& pt) const;
  EcPoint Add(const EcPoint& a, const EcPoint& b) const;
  EcPoint Double(const EcPoint& a) const;
  // Scalar multiplication (double-and-add).
  EcPoint Mul(const BigUint& k, const EcPoint& pt) const;
  EcPoint MulGenerator(const BigUint& k) const { return Mul(k, g_); }

  // 65-byte uncompressed SEC1 encoding (0x04 || x || y); infinity -> single 0x00 byte.
  Bytes Encode(const EcPoint& pt) const;
  std::optional<EcPoint> Decode(const Bytes& data) const;

 private:
  Secp256k1();

  BigUint p_;
  BigUint order_;
  EcPoint g_;
};

// Key pair on secp256k1. The scalar is a Secret: signing/ECDH take it wrapped, and it
// wipes itself on destruction.
struct EcKeyPair {
  EcKeyPair() = default;
  EcKeyPair(BigUint priv, EcPoint pub)
      : private_key(std::move(priv)), public_key(std::move(pub)) {}

  Secret<BigUint> private_key;  // deta-lint: secret — scalar in [1, n)
  EcPoint public_key;           // private_key * G
};

EcKeyPair GenerateEcKey(SecureRng& rng);

// ECDH: shared secret = SHA-256 of the x-coordinate of (priv * peer_pub).
Bytes EcdhSharedSecret(const Secret<BigUint>& private_key, const EcPoint& peer_public);

}  // namespace deta::crypto

#endif  // DETA_CRYPTO_EC_H_
