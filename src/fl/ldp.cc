#include "fl/ldp.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace deta::fl {

float ClipToNorm(std::vector<float>& update, float clip_norm) {
  DETA_CHECK_GT(clip_norm, 0.0f);
  double norm_sq = 0.0;
  for (float v : update) {
    norm_sq += static_cast<double>(v) * v;
  }
  float norm = static_cast<float>(std::sqrt(norm_sq));
  if (norm > clip_norm && norm > 0.0f) {
    float scale = clip_norm / norm;
    for (auto& v : update) {
      v *= scale;
    }
  }
  return norm;
}

void ApplyGaussianMechanism(std::vector<float>& update, const LdpConfig& config,
                            uint64_t seed) {
  if (!config.enabled) {
    return;
  }
  ClipToNorm(update, config.clip_norm);
  float stddev = config.noise_multiplier * config.clip_norm;
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  for (auto& v : update) {
    v += stddev * rng.NextGaussian();
  }
}

double GaussianMechanismEpsilon(float noise_multiplier, double delta) {
  DETA_CHECK_GT(noise_multiplier, 0.0f);
  DETA_CHECK_GT(delta, 0.0);
  DETA_CHECK_LT(delta, 1.0);
  return std::sqrt(2.0 * std::log(1.25 / delta)) / noise_multiplier;
}

}  // namespace deta::fl
