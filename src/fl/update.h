// The model update: a flattened parameter (or gradient) vector plus its aggregation
// weight. The paper's key observation (§3.1) is that aggregation algorithms act
// coordinate-wise on exactly this flat view, which is what makes DeTA's partitioning and
// shuffling transparent to them.
#ifndef DETA_FL_UPDATE_H_
#define DETA_FL_UPDATE_H_

#include <string>
#include <vector>

#include "common/bytes.h"

namespace deta::fl {

struct ModelUpdate {
  std::vector<float> values;
  // Aggregation weight (n_i, the party's sample count, for weighted averaging).
  double weight = 1.0;

  size_t size() const { return values.size(); }
};

// Wire form used by both FFL and DeTA transports.
Bytes SerializeUpdate(const ModelUpdate& update);
ModelUpdate DeserializeUpdate(const Bytes& data);

}  // namespace deta::fl

#endif  // DETA_FL_UPDATE_H_
