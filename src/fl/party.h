// An FL party: holds a private local dataset and produces model updates. Used by both the
// centralized baseline (FFL) and DeTA (where its update is additionally partitioned and
// shuffled before upload — src/core/deta_party.h wraps this class).
#ifndef DETA_FL_PARTY_H_
#define DETA_FL_PARTY_H_

#include <functional>
#include <memory>
#include <string>

#include "data/dataset.h"
#include "fl/ldp.h"
#include "fl/update.h"
#include "nn/models.h"
#include "nn/optimizer.h"

namespace deta::fl {

using ModelFactory = std::function<std::unique_ptr<nn::Model>()>;

struct TrainConfig {
  int batch_size = 32;
  int local_epochs = 1;
  float lr = 0.05f;
  float momentum = 0.0f;
  // FedAvg uploads trained parameters; FedSGD uploads one batch's gradients.
  enum class UpdateKind { kParameters, kGradient };
  UpdateKind kind = UpdateKind::kParameters;
  // Optional party-side local differential privacy (Gaussian mechanism). For kParameters
  // the mechanism perturbs the *delta* against the incoming global parameters.
  LdpConfig ldp;
};

class Party {
 public:
  Party(std::string name, data::Dataset dataset, const ModelFactory& factory,
        TrainConfig config, uint64_t seed);
  virtual ~Party() = default;

  struct LocalResult {
    ModelUpdate update;
    double train_seconds = 0.0;  // measured local compute
  };

  // Runs one local round starting from |global_params|. Virtual so tests and examples can
  // model misbehaving (e.g. poisoning) parties.
  virtual LocalResult RunLocalRound(const std::vector<float>& global_params, int round);

  const std::string& name() const { return name_; }
  int SampleCount() const { return dataset_.Size(); }
  int64_t ParameterCount() const { return model_->NumParameters(); }
  const data::Dataset& dataset() const { return dataset_; }

  // The party's only cross-round mutable state is the batch iterator (the model is
  // reset from the global parameters each round); these delegate to it so a restored
  // party trains on the identical batch sequence.
  Bytes SerializeTrainerState() const { return batcher_.SerializeState(); }
  bool RestoreTrainerState(const Bytes& data) { return batcher_.RestoreState(data); }

 private:
  std::string name_;
  data::Dataset dataset_;
  TrainConfig config_;
  std::unique_ptr<nn::Model> model_;
  data::Batcher batcher_;
};

}  // namespace deta::fl

#endif  // DETA_FL_PARTY_H_
