// The centralized FL baseline — "FFL with one central aggregator" in the paper's
// evaluation. One aggregator collects every party's full, in-order model update and runs
// the chosen aggregation algorithm (or Paillier fusion on ciphertexts).
//
// Latency is reported in simulated seconds (see common/sim_clock.h): measured compute
// plus modelled network transfers. Parties compute in parallel in the modelled
// deployment, so the party phase contributes max(), not sum().
#ifndef DETA_FL_TRAINING_JOB_H_
#define DETA_FL_TRAINING_JOB_H_

#include <memory>
#include <optional>
#include <vector>

#include "common/sim_clock.h"
#include "fl/aggregation.h"
#include "fl/paillier_fusion.h"
#include "fl/party.h"

namespace deta::fl {

struct RoundMetrics {
  int round = 0;
  double loss = 0.0;
  double accuracy = 0.0;
  double round_latency_s = 0.0;       // simulated seconds for this round
  double cumulative_latency_s = 0.0;  // running total
};

struct JobConfig {
  int rounds = 10;
  TrainConfig train;
  std::string algorithm = "iterative_averaging";
  // When set, updates travel Paillier-encrypted and the algorithm is homomorphic
  // averaging (the paper's "Paillier" configuration).
  bool use_paillier = false;
  size_t paillier_modulus_bits = 256;
  LatencyModel latency;
  uint64_t seed = 7;
};

class FflJob {
 public:
  // |eval| supplies the held-out loss/accuracy curves; parties keep their own shards.
  FflJob(JobConfig config, std::vector<std::unique_ptr<Party>> parties,
         const ModelFactory& global_factory, data::Dataset eval);

  // Runs all rounds; returns per-round metrics.
  std::vector<RoundMetrics> Run();

  const std::vector<float>& global_params() const { return global_params_; }

 private:
  RoundMetrics RunRound(int round);
  RoundMetrics EvaluateRound(int round, double latency_s);

  JobConfig config_;
  std::vector<std::unique_ptr<Party>> parties_;
  std::unique_ptr<nn::Model> global_model_;
  data::Dataset eval_;
  std::unique_ptr<AggregationAlgorithm> algorithm_;
  std::vector<float> global_params_;
  double cumulative_latency_ = 0.0;

  // Paillier state (shared keypair from the trusted key broker).
  std::optional<crypto::PaillierKeyPair> paillier_;
  std::unique_ptr<PaillierVectorCodec> codec_;
  crypto::SecureRng rng_;
};

}  // namespace deta::fl

#endif  // DETA_FL_TRAINING_JOB_H_
