// The centralized FL baseline — "FFL with one central aggregator" in the paper's
// evaluation. One aggregator collects every party's full, in-order model update and runs
// the chosen aggregation algorithm (or Paillier fusion on ciphertexts).
//
// Latency is reported in simulated seconds (see common/sim_clock.h): measured compute
// plus modelled network transfers. Parties compute in parallel in the modelled
// deployment, so the party phase contributes max(), not sum().
#ifndef DETA_FL_TRAINING_JOB_H_
#define DETA_FL_TRAINING_JOB_H_

#include <memory>
#include <optional>
#include <vector>

#include "fl/aggregation.h"
#include "fl/job_api.h"
#include "fl/paillier_fusion.h"
#include "fl/party.h"
#include "persist/state_store.h"

namespace deta::fl {

class FflJob {
 public:
  // |eval| supplies the held-out loss/accuracy curves; parties keep their own shards.
  FflJob(ExecutionOptions options, std::vector<std::unique_ptr<Party>> parties,
         const ModelFactory& global_factory, data::Dataset eval);

  // Runs all rounds; returns metrics, the final global parameters, and setup time
  // (Paillier keygen when enabled).
  JobResult Run();

 private:
  RoundMetrics RunRound(int round);
  RoundMetrics EvaluateRound(int round, double latency_s);
  // Durable checkpoint/resume (options.checkpoint). The FFL job runs every party
  // in-process, so one snapshot captures the whole deployment: global params, per-party
  // trainer state, observer accumulators, and the (sealed) job RNG.
  Bytes ConfigDigest() const;
  void SaveState(int round);
  bool RestoreFromSnapshot();

  ExecutionOptions options_;
  std::vector<std::unique_ptr<Party>> parties_;
  std::unique_ptr<nn::Model> global_model_;
  data::Dataset eval_;
  std::unique_ptr<AggregationAlgorithm> algorithm_;
  std::vector<float> global_params_;
  double cumulative_latency_ = 0.0;
  double setup_seconds_ = 0.0;

  // Paillier state (shared keypair from the trusted key broker).
  std::optional<crypto::PaillierKeyPair> paillier_;
  std::unique_ptr<PaillierVectorCodec> codec_;
  crypto::SecureRng rng_;

  std::unique_ptr<persist::StateStore> store_;
  int resume_round_ = 0;
  bool resume_failed_ = false;
  std::string resume_error_;
};

}  // namespace deta::fl

#endif  // DETA_FL_TRAINING_JOB_H_
