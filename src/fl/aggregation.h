// Model-aggregation algorithms (paper §3.1, §7.1). All are coordinate-wise (or
// distance-based in a way that partitioning/shuffling preserves — §4.2 "Applicable
// Aggregation Algorithms"), so they run unmodified inside DeTA on partitioned, shuffled
// fragments.
#ifndef DETA_FL_AGGREGATION_H_
#define DETA_FL_AGGREGATION_H_

#include <memory>
#include <string>
#include <vector>

#include "fl/update.h"

namespace deta::fl {

class AggregationAlgorithm {
 public:
  virtual ~AggregationAlgorithm() = default;
  // Fuses same-length updates into one vector.
  virtual std::vector<float> Aggregate(const std::vector<ModelUpdate>& updates) const = 0;
  virtual std::string Name() const = 0;
};

// Weighted coordinate-wise mean — the core of FedAvg/FedSGD ("Iterative Averaging" in
// the paper's §7.1).
class IterativeAveraging : public AggregationAlgorithm {
 public:
  std::vector<float> Aggregate(const std::vector<ModelUpdate>& updates) const override;
  std::string Name() const override { return "iterative_averaging"; }
};

// Coordinate-wise median (Yin et al.) — Byzantine-tolerant.
class CoordinateMedian : public AggregationAlgorithm {
 public:
  std::vector<float> Aggregate(const std::vector<ModelUpdate>& updates) const override;
  std::string Name() const override { return "coordinate_median"; }
};

// Krum (Blanchard et al.): selects the update closest to its n-f-2 nearest neighbours.
// Distance-based, hence shuffle-invariant.
class Krum : public AggregationAlgorithm {
 public:
  // |byzantine| = assumed max number of malicious parties (f).
  explicit Krum(int byzantine) : byzantine_(byzantine) {}
  std::vector<float> Aggregate(const std::vector<ModelUpdate>& updates) const override;
  std::string Name() const override { return "krum"; }

 private:
  int byzantine_;
};

// FLAME-style robust aggregation (Nguyen et al., simplified): filter updates whose mean
// cosine distance to the others is an outlier, clip the survivors to the median norm,
// then average. Cosine distance and norms are permutation-invariant (§4.2).
class Flame : public AggregationAlgorithm {
 public:
  std::vector<float> Aggregate(const std::vector<ModelUpdate>& updates) const override;
  std::string Name() const override { return "flame"; }
};

// Trimmed mean: drop the k largest and smallest values per coordinate, average the rest.
// (An extra Byzantine-robust coordinate-wise algorithm beyond the paper's three.)
class TrimmedMean : public AggregationAlgorithm {
 public:
  explicit TrimmedMean(int trim) : trim_(trim) {}
  std::vector<float> Aggregate(const std::vector<ModelUpdate>& updates) const override;
  std::string Name() const override { return "trimmed_mean"; }

 private:
  int trim_;
};

// Multi-Krum: selects the m lowest-Krum-score updates and averages them (Blanchard et
// al.'s variant trading robustness for variance reduction). Distance-based, hence
// shuffle-invariant like Krum.
class MultiKrum : public AggregationAlgorithm {
 public:
  MultiKrum(int byzantine, int select) : byzantine_(byzantine), select_(select) {}
  std::vector<float> Aggregate(const std::vector<ModelUpdate>& updates) const override;
  std::string Name() const override { return "multi_krum"; }

 private:
  int byzantine_;
  int select_;
};

// Bulyan (El Mhamdi et al.): Multi-Krum selection followed by a per-coordinate trimmed
// mean around the median — combines selection- and coordinate-level robustness.
class Bulyan : public AggregationAlgorithm {
 public:
  explicit Bulyan(int byzantine) : byzantine_(byzantine) {}
  std::vector<float> Aggregate(const std::vector<ModelUpdate>& updates) const override;
  std::string Name() const override { return "bulyan"; }

 private:
  int byzantine_;
};

std::unique_ptr<AggregationAlgorithm> MakeAlgorithm(const std::string& name);

}  // namespace deta::fl

#endif  // DETA_FL_AGGREGATION_H_
