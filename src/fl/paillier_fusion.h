// Paillier-based fusion (paper §7.1, Figures 5c/5f): parties encrypt their updates under
// a shared Paillier public key (from a trusted key-broker, as in Liu et al.), the
// aggregator sums ciphertexts homomorphically without ever seeing plaintext, and parties
// decrypt the fused result.
//
// Coordinates are lane-packed through crypto::PaillierPacker: several fixed-point values
// share one Paillier plaintext, with enough headroom per lane that the homomorphic sum
// of up to |max_parties| updates cannot carry across lanes. Packing divides the
// (dominant) modular-exponentiation count, which is the honest version of why the
// paper's Figure 5f shows DeTA *speeding Paillier up*: the work is embarrassingly
// parallel across coordinates, so partitioning it across aggregators divides the
// wall-clock. This layer only adds the float <-> fixed-point quantization; lane layout,
// headroom accounting, and the packed encrypt/decrypt hot path live in crypto/.
#ifndef DETA_FL_PAILLIER_FUSION_H_
#define DETA_FL_PAILLIER_FUSION_H_

#include <vector>

#include "crypto/paillier.h"
#include "fl/update.h"

namespace deta::fl {

class PaillierVectorCodec {
 public:
  // |lane_bits| per packed value; |scale_bits| fractional bits. Values must satisfy
  // |v| * 2^scale_bits * max_parties < 2^(lane_bits-1).
  PaillierVectorCodec(const crypto::PaillierPublicKey& pub, int max_parties,
                      int lane_bits = 56, int scale_bits = 20);

  int LanesPerCiphertext() const { return packer_.lanes(); }
  // Number of ciphertexts for a vector of |n| floats.
  size_t CiphertextCount(size_t n) const { return packer_.BlockCount(n); }

  // Encrypts a float vector.
  std::vector<crypto::BigUint> Encrypt(const std::vector<float>& values,
                                       crypto::SecureRng& rng) const;
  // Homomorphically accumulates |other| into |acc| (coordinate-wise ciphertext product).
  void AccumulateInPlace(std::vector<crypto::BigUint>& acc,
                         const std::vector<crypto::BigUint>& other) const;
  // Decrypts the sum of |num_addends| encrypted vectors back to floats.
  std::vector<float> DecryptSum(const std::vector<crypto::BigUint>& ciphertexts,
                                const crypto::PaillierPrivateKey& priv, size_t n,
                                int num_addends) const;

 private:
  const crypto::PaillierPublicKey& pub_;
  crypto::PaillierPacker packer_;
  double scale_;
};

// Serialization of ciphertext vectors for the wire.
Bytes SerializeCiphertexts(const std::vector<crypto::BigUint>& c);
std::vector<crypto::BigUint> DeserializeCiphertexts(const Bytes& data);

}  // namespace deta::fl

#endif  // DETA_FL_PAILLIER_FUSION_H_
