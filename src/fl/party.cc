#include "fl/party.h"

#include <functional>

#include "common/check.h"
#include "common/sim_clock.h"

namespace deta::fl {

Party::Party(std::string name, data::Dataset dataset, const ModelFactory& factory,
             TrainConfig config, uint64_t seed)
    : name_(std::move(name)),
      dataset_(std::move(dataset)),
      config_(config),
      model_(factory()),
      batcher_(dataset_, config.batch_size, seed) {
  DETA_CHECK_GT(dataset_.Size(), 0);
}

Party::LocalResult Party::RunLocalRound(const std::vector<float>& global_params, int round) {
  Stopwatch watch;
  model_->SetFlatParams(global_params);

  LocalResult result;
  result.update.weight = static_cast<double>(dataset_.Size());

  if (config_.kind == TrainConfig::UpdateKind::kGradient) {
    // FedSGD: gradients of one mini-batch at the current global parameters.
    auto batch = batcher_.Next();
    auto lg = nn::ComputeLossAndGrads(*model_, batch.images,
                                      nn::OneHot(batch.labels, dataset_.classes));
    result.update.values.reserve(static_cast<size_t>(model_->NumParameters()));
    for (const Tensor& g : lg.grads) {
      const auto& v = g.values();
      result.update.values.insert(result.update.values.end(), v.begin(), v.end());
    }
  } else {
    // FedAvg: several local epochs of SGD, then upload the resulting parameters.
    nn::Sgd opt(config_.lr, config_.momentum);
    int steps = config_.local_epochs * batcher_.BatchesPerEpoch();
    for (int s = 0; s < steps; ++s) {
      auto batch = batcher_.Next();
      auto lg = nn::ComputeLossAndGrads(*model_, batch.images,
                                        nn::OneHot(batch.labels, dataset_.classes));
      opt.Step(model_->params(), lg.grads);
    }
    result.update.values = model_->GetFlatParams();
  }

  if (config_.ldp.enabled) {
    // LDP is applied on the party's device before anything leaves it (§8.1). For the
    // parameter-upload mode the sensitive quantity is the training delta, so clip+noise
    // the delta and re-add the (public) incoming global parameters.
    uint64_t noise_seed =
        std::hash<std::string>{}(name_) ^ (static_cast<uint64_t>(round) * 0x9e3779b9ULL);
    if (config_.kind == TrainConfig::UpdateKind::kGradient) {
      ApplyGaussianMechanism(result.update.values, config_.ldp, noise_seed);
    } else {
      std::vector<float> delta(result.update.values.size());
      for (size_t i = 0; i < delta.size(); ++i) {
        delta[i] = result.update.values[i] - global_params[i];
      }
      ApplyGaussianMechanism(delta, config_.ldp, noise_seed);
      for (size_t i = 0; i < delta.size(); ++i) {
        result.update.values[i] = global_params[i] + delta[i];
      }
    }
  }

  result.train_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace deta::fl
