#include "fl/aggregation.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "net/codec.h"

namespace deta::fl {

Bytes SerializeUpdate(const ModelUpdate& update) {
  net::Writer w;
  w.WriteDouble(update.weight);
  w.WriteFloatVector(update.values);
  return w.Take();
}

ModelUpdate DeserializeUpdate(const Bytes& data) {
  net::Reader r(data);
  ModelUpdate u;
  u.weight = r.ReadDouble();
  u.values = r.ReadFloatVector();
  return u;
}

namespace {

void CheckUpdates(const std::vector<ModelUpdate>& updates) {
  DETA_CHECK_MSG(!updates.empty(), "aggregating zero updates");
  for (const auto& u : updates) {
    DETA_CHECK_EQ(u.values.size(), updates[0].values.size());
  }
}

double SquaredDistance(const std::vector<float>& a, const std::vector<float>& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = static_cast<double>(a[i]) - b[i];
    s += d * d;
  }
  return s;
}

double CosineDist(const std::vector<float>& a, const std::vector<float>& b) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na == 0.0 || nb == 0.0) {
    return 1.0;
  }
  return 1.0 - dot / (std::sqrt(na) * std::sqrt(nb));
}

double Norm(const std::vector<float>& a) {
  double s = 0.0;
  for (float v : a) {
    s += static_cast<double>(v) * v;
  }
  return std::sqrt(s);
}

double Median(std::vector<double> v) {
  DETA_CHECK(!v.empty());
  size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<long>(mid), v.end());
  double m = v[mid];
  if (v.size() % 2 == 0) {
    double lower = *std::max_element(v.begin(), v.begin() + static_cast<long>(mid));
    m = (m + lower) / 2.0;
  }
  return m;
}

}  // namespace

std::vector<float> IterativeAveraging::Aggregate(const std::vector<ModelUpdate>& updates) const {
  CheckUpdates(updates);
  double total_weight = 0.0;
  for (const auto& u : updates) {
    total_weight += u.weight;
  }
  DETA_CHECK_GT(total_weight, 0.0);
  std::vector<float> out(updates[0].values.size(), 0.0f);
  for (const auto& u : updates) {
    float w = static_cast<float>(u.weight / total_weight);
    for (size_t i = 0; i < out.size(); ++i) {
      out[i] += w * u.values[i];
    }
  }
  return out;
}

std::vector<float> CoordinateMedian::Aggregate(const std::vector<ModelUpdate>& updates) const {
  CheckUpdates(updates);
  size_t n = updates[0].values.size();
  std::vector<float> out(n);
  std::vector<float> column(updates.size());
  for (size_t i = 0; i < n; ++i) {
    for (size_t p = 0; p < updates.size(); ++p) {
      column[p] = updates[p].values[i];
    }
    size_t mid = column.size() / 2;
    std::nth_element(column.begin(), column.begin() + static_cast<long>(mid), column.end());
    float m = column[mid];
    if (column.size() % 2 == 0) {
      float lower = *std::max_element(column.begin(), column.begin() + static_cast<long>(mid));
      m = (m + lower) / 2.0f;
    }
    out[i] = m;
  }
  return out;
}

namespace {

// Krum scores: sum of squared distances to each candidate's n - f - 2 nearest neighbours.
std::vector<double> KrumScores(const std::vector<ModelUpdate>& updates, int byzantine) {
  int n = static_cast<int>(updates.size());
  int neighbours = std::max(1, n - byzantine - 2);
  std::vector<std::vector<double>> dist(static_cast<size_t>(n),
                                        std::vector<double>(static_cast<size_t>(n), 0.0));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      double d = SquaredDistance(updates[static_cast<size_t>(i)].values,
                                 updates[static_cast<size_t>(j)].values);
      dist[static_cast<size_t>(i)][static_cast<size_t>(j)] = d;
      dist[static_cast<size_t>(j)][static_cast<size_t>(i)] = d;
    }
  }
  std::vector<double> scores(static_cast<size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    std::vector<double> row;
    for (int j = 0; j < n; ++j) {
      if (j != i) {
        row.push_back(dist[static_cast<size_t>(i)][static_cast<size_t>(j)]);
      }
    }
    std::sort(row.begin(), row.end());
    double score = 0.0;
    for (int k = 0; k < neighbours && k < static_cast<int>(row.size()); ++k) {
      score += row[static_cast<size_t>(k)];
    }
    scores[static_cast<size_t>(i)] = score;
  }
  return scores;
}

}  // namespace

std::vector<float> Krum::Aggregate(const std::vector<ModelUpdate>& updates) const {
  CheckUpdates(updates);
  std::vector<double> scores = KrumScores(updates, byzantine_);
  size_t best = static_cast<size_t>(
      std::min_element(scores.begin(), scores.end()) - scores.begin());
  return updates[best].values;
}

std::vector<float> MultiKrum::Aggregate(const std::vector<ModelUpdate>& updates) const {
  CheckUpdates(updates);
  int n = static_cast<int>(updates.size());
  int m = std::min(select_, n);
  DETA_CHECK_GT(m, 0);
  std::vector<double> scores = KrumScores(updates, byzantine_);
  std::vector<size_t> order(updates.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });
  std::vector<ModelUpdate> selected;
  for (int k = 0; k < m; ++k) {
    selected.push_back(updates[order[static_cast<size_t>(k)]]);
  }
  return IterativeAveraging().Aggregate(selected);
}

std::vector<float> Bulyan::Aggregate(const std::vector<ModelUpdate>& updates) const {
  CheckUpdates(updates);
  int n = static_cast<int>(updates.size());
  // Bulyan requires n >= 4f + 3 for its full guarantee; degrade gracefully below that by
  // clamping the selection size.
  int select = std::max(1, n - 2 * byzantine_);
  std::vector<double> scores = KrumScores(updates, byzantine_);
  std::vector<size_t> order(updates.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });

  size_t len = updates[0].values.size();
  std::vector<float> out(len);
  int beta = std::max(1, select - 2 * byzantine_);
  std::vector<float> column(static_cast<size_t>(select));
  for (size_t i = 0; i < len; ++i) {
    for (int k = 0; k < select; ++k) {
      column[static_cast<size_t>(k)] = updates[order[static_cast<size_t>(k)]].values[i];
    }
    // Average the beta values closest to the coordinate-wise median.
    std::sort(column.begin(), column.end());
    float median = column[column.size() / 2];
    std::sort(column.begin(), column.end(), [median](float a, float b) {
      return std::abs(a - median) < std::abs(b - median);
    });
    double s = 0.0;
    for (int k = 0; k < beta; ++k) {
      s += column[static_cast<size_t>(k)];
    }
    out[i] = static_cast<float>(s / beta);
  }
  return out;
}

std::vector<float> Flame::Aggregate(const std::vector<ModelUpdate>& updates) const {
  CheckUpdates(updates);
  size_t n = updates.size();
  if (n <= 2) {
    return IterativeAveraging().Aggregate(updates);
  }
  // 1. Outlier filtering on mean pairwise cosine distance (cluster-free approximation of
  //    FLAME's HDBSCAN step; both rely only on permutation-invariant distances).
  std::vector<double> mean_dist(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i != j) {
        mean_dist[i] += CosineDist(updates[i].values, updates[j].values);
      }
    }
    mean_dist[i] /= static_cast<double>(n - 1);
  }
  double med = Median(mean_dist);
  std::vector<size_t> kept;
  for (size_t i = 0; i < n; ++i) {
    if (mean_dist[i] <= 2.0 * med + 1e-12) {
      kept.push_back(i);
    }
  }
  if (kept.empty()) {
    for (size_t i = 0; i < n; ++i) {
      kept.push_back(i);
    }
  }
  // 2. Norm clipping to the median norm of the survivors.
  std::vector<double> norms;
  norms.reserve(kept.size());
  for (size_t i : kept) {
    norms.push_back(Norm(updates[i].values));
  }
  double clip = Median(norms);
  // 3. Average the clipped survivors.
  std::vector<float> out(updates[0].values.size(), 0.0f);
  for (size_t i : kept) {
    double norm = Norm(updates[i].values);
    double scale = (norm > clip && norm > 0.0) ? clip / norm : 1.0;
    for (size_t k = 0; k < out.size(); ++k) {
      out[k] += static_cast<float>(updates[i].values[k] * scale);
    }
  }
  float inv = 1.0f / static_cast<float>(kept.size());
  for (auto& v : out) {
    v *= inv;
  }
  return out;
}

std::vector<float> TrimmedMean::Aggregate(const std::vector<ModelUpdate>& updates) const {
  CheckUpdates(updates);
  int n = static_cast<int>(updates.size());
  DETA_CHECK_MSG(2 * trim_ < n, "trim " << trim_ << " too large for " << n << " updates");
  size_t len = updates[0].values.size();
  std::vector<float> out(len);
  std::vector<float> column(static_cast<size_t>(n));
  for (size_t i = 0; i < len; ++i) {
    for (int p = 0; p < n; ++p) {
      column[static_cast<size_t>(p)] = updates[static_cast<size_t>(p)].values[i];
    }
    std::sort(column.begin(), column.end());
    double s = 0.0;
    for (int p = trim_; p < n - trim_; ++p) {
      s += column[static_cast<size_t>(p)];
    }
    out[i] = static_cast<float>(s / (n - 2 * trim_));
  }
  return out;
}

std::unique_ptr<AggregationAlgorithm> MakeAlgorithm(const std::string& name) {
  if (name == "iterative_averaging") {
    return std::make_unique<IterativeAveraging>();
  }
  if (name == "coordinate_median") {
    return std::make_unique<CoordinateMedian>();
  }
  if (name == "krum") {
    return std::make_unique<Krum>(1);
  }
  if (name == "flame") {
    return std::make_unique<Flame>();
  }
  if (name == "trimmed_mean") {
    return std::make_unique<TrimmedMean>(1);
  }
  if (name == "multi_krum") {
    return std::make_unique<MultiKrum>(1, 3);
  }
  if (name == "bulyan") {
    return std::make_unique<Bulyan>(1);
  }
  DETA_CHECK_MSG(false, "unknown aggregation algorithm: " << name);
  return nullptr;
}

}  // namespace deta::fl
