#include "fl/aggregation.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/parallel.h"
#include "common/telemetry.h"
#include "net/codec.h"

namespace deta::fl {

Bytes SerializeUpdate(const ModelUpdate& update) {
  net::Writer w;
  w.WriteDouble(update.weight);
  w.WriteFloatVector(update.values);
  return w.Take();
}

ModelUpdate DeserializeUpdate(const Bytes& data) {
  net::Reader r(data);
  ModelUpdate u;
  u.weight = r.ReadDouble();
  u.values = r.ReadFloatVector();
  return u;
}

namespace {

// Chunk sizes for the deterministic parallel layer (common/parallel.h). Boundaries are
// fixed per (range, grain), so every result below is bitwise-identical for any thread
// count. Cheap per-coordinate work gets large chunks; per-coordinate sorts get smaller
// ones.
constexpr int64_t kCoordGrain = 1 << 13;
constexpr int64_t kSortGrain = 1 << 10;
constexpr int64_t kReduceGrain = 1 << 15;

void CheckUpdates(const std::vector<ModelUpdate>& updates) {
  DETA_CHECK_MSG(!updates.empty(), "aggregating zero updates");
  for (const auto& u : updates) {
    DETA_CHECK_EQ(u.values.size(), updates[0].values.size());
  }
}

double SquaredDistance(const std::vector<float>& a, const std::vector<float>& b) {
  return parallel::ParallelReduce(
      0, static_cast<int64_t>(a.size()), kReduceGrain, 0.0,
      [&](int64_t lo, int64_t hi) {
        double s = 0.0;
        for (int64_t i = lo; i < hi; ++i) {
          double d = static_cast<double>(a[static_cast<size_t>(i)]) -
                     b[static_cast<size_t>(i)];
          s += d * d;
        }
        return s;
      },
      [](double x, double y) { return x + y; });
}

struct DotAndNorms {
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
};

double CosineDist(const std::vector<float>& a, const std::vector<float>& b) {
  DotAndNorms r = parallel::ParallelReduce(
      0, static_cast<int64_t>(a.size()), kReduceGrain, DotAndNorms{},
      [&](int64_t lo, int64_t hi) {
        DotAndNorms p;
        for (int64_t i = lo; i < hi; ++i) {
          size_t k = static_cast<size_t>(i);
          p.dot += static_cast<double>(a[k]) * b[k];
          p.na += static_cast<double>(a[k]) * a[k];
          p.nb += static_cast<double>(b[k]) * b[k];
        }
        return p;
      },
      [](DotAndNorms x, DotAndNorms y) {
        x.dot += y.dot;
        x.na += y.na;
        x.nb += y.nb;
        return x;
      });
  if (r.na == 0.0 || r.nb == 0.0) {
    return 1.0;
  }
  return 1.0 - r.dot / (std::sqrt(r.na) * std::sqrt(r.nb));
}

double Norm(const std::vector<float>& a) {
  double s = parallel::ParallelReduce(
      0, static_cast<int64_t>(a.size()), kReduceGrain, 0.0,
      [&](int64_t lo, int64_t hi) {
        double p = 0.0;
        for (int64_t i = lo; i < hi; ++i) {
          double v = a[static_cast<size_t>(i)];
          p += v * v;
        }
        return p;
      },
      [](double x, double y) { return x + y; });
  return std::sqrt(s);
}

double Median(std::vector<double> v) {
  DETA_CHECK(!v.empty());
  size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<long>(mid), v.end());
  double m = v[mid];
  if (v.size() % 2 == 0) {
    double lower = *std::max_element(v.begin(), v.begin() + static_cast<long>(mid));
    m = (m + lower) / 2.0;
  }
  return m;
}

}  // namespace

std::vector<float> IterativeAveraging::Aggregate(const std::vector<ModelUpdate>& updates) const {
  CheckUpdates(updates);
  double total_weight = 0.0;
  for (const auto& u : updates) {
    total_weight += u.weight;
  }
  DETA_CHECK_GT(total_weight, 0.0);
  std::vector<float> weights(updates.size());
  for (size_t p = 0; p < updates.size(); ++p) {
    weights[p] = static_cast<float>(updates[p].weight / total_weight);
  }
  std::vector<float> out(updates[0].values.size(), 0.0f);
  // Coordinate-major: each coordinate accumulates over updates in index order, the same
  // per-coordinate addition sequence as the serial update-major loop — bitwise equal.
  parallel::ParallelFor(0, static_cast<int64_t>(out.size()), kCoordGrain,
                        [&](int64_t lo, int64_t hi) {
                          for (size_t p = 0; p < updates.size(); ++p) {
                            const float w = weights[p];
                            const float* v = updates[p].values.data();
                            for (int64_t i = lo; i < hi; ++i) {
                              out[static_cast<size_t>(i)] += w * v[i];
                            }
                          }
                        });
  return out;
}

std::vector<float> CoordinateMedian::Aggregate(const std::vector<ModelUpdate>& updates) const {
  CheckUpdates(updates);
  size_t n = updates[0].values.size();
  std::vector<float> out(n);
  parallel::ParallelFor(0, static_cast<int64_t>(n), kSortGrain, [&](int64_t lo, int64_t hi) {
    std::vector<float> column(updates.size());
    for (int64_t i = lo; i < hi; ++i) {
      for (size_t p = 0; p < updates.size(); ++p) {
        column[p] = updates[p].values[static_cast<size_t>(i)];
      }
      size_t mid = column.size() / 2;
      std::nth_element(column.begin(), column.begin() + static_cast<long>(mid), column.end());
      float m = column[mid];
      if (column.size() % 2 == 0) {
        float lower = *std::max_element(column.begin(), column.begin() + static_cast<long>(mid));
        m = (m + lower) / 2.0f;
      }
      out[static_cast<size_t>(i)] = m;
    }
  });
  return out;
}

namespace {

// Krum scores: sum of squared distances to each candidate's n - f - 2 nearest neighbours.
std::vector<double> KrumScores(const std::vector<ModelUpdate>& updates, int byzantine) {
  int n = static_cast<int>(updates.size());
  int neighbours = std::max(1, n - byzantine - 2);
  std::vector<std::vector<double>> dist(static_cast<size_t>(n),
                                        std::vector<double>(static_cast<size_t>(n), 0.0));
  // Each pair's distance is itself a deterministic parallel reduction over coordinates;
  // the pair loop stays serial (n is small, coordinates are not).
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      double d = SquaredDistance(updates[static_cast<size_t>(i)].values,
                                 updates[static_cast<size_t>(j)].values);
      dist[static_cast<size_t>(i)][static_cast<size_t>(j)] = d;
      dist[static_cast<size_t>(j)][static_cast<size_t>(i)] = d;
    }
  }
  std::vector<double> scores(static_cast<size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    std::vector<double> row;
    for (int j = 0; j < n; ++j) {
      if (j != i) {
        row.push_back(dist[static_cast<size_t>(i)][static_cast<size_t>(j)]);
      }
    }
    std::sort(row.begin(), row.end());
    double score = 0.0;
    for (int k = 0; k < neighbours && k < static_cast<int>(row.size()); ++k) {
      score += row[static_cast<size_t>(k)];
    }
    scores[static_cast<size_t>(i)] = score;
  }
  return scores;
}

}  // namespace

std::vector<float> Krum::Aggregate(const std::vector<ModelUpdate>& updates) const {
  CheckUpdates(updates);
  std::vector<double> scores = KrumScores(updates, byzantine_);
  size_t best = static_cast<size_t>(
      std::min_element(scores.begin(), scores.end()) - scores.begin());
  return updates[best].values;
}

std::vector<float> MultiKrum::Aggregate(const std::vector<ModelUpdate>& updates) const {
  CheckUpdates(updates);
  int n = static_cast<int>(updates.size());
  int m = std::min(select_, n);
  DETA_CHECK_GT(m, 0);
  std::vector<double> scores = KrumScores(updates, byzantine_);
  std::vector<size_t> order(updates.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });
  std::vector<ModelUpdate> selected;
  for (int k = 0; k < m; ++k) {
    selected.push_back(updates[order[static_cast<size_t>(k)]]);
  }
  return IterativeAveraging().Aggregate(selected);
}

std::vector<float> Bulyan::Aggregate(const std::vector<ModelUpdate>& updates) const {
  CheckUpdates(updates);
  int n = static_cast<int>(updates.size());
  // Bulyan requires n >= 4f + 3 for its full guarantee; degrade gracefully below that by
  // clamping the selection size.
  int select = std::max(1, n - 2 * byzantine_);
  std::vector<double> scores = KrumScores(updates, byzantine_);
  std::vector<size_t> order(updates.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });

  size_t len = updates[0].values.size();
  std::vector<float> out(len);
  int beta = std::max(1, select - 2 * byzantine_);
  parallel::ParallelFor(0, static_cast<int64_t>(len), kSortGrain, [&](int64_t lo, int64_t hi) {
    std::vector<float> column(static_cast<size_t>(select));
    for (int64_t i = lo; i < hi; ++i) {
      for (int k = 0; k < select; ++k) {
        column[static_cast<size_t>(k)] =
            updates[order[static_cast<size_t>(k)]].values[static_cast<size_t>(i)];
      }
      // Average the beta values closest to the coordinate-wise median.
      std::sort(column.begin(), column.end());
      float median = column[column.size() / 2];
      std::sort(column.begin(), column.end(), [median](float a, float b) {
        return std::abs(a - median) < std::abs(b - median);
      });
      double s = 0.0;
      for (int k = 0; k < beta; ++k) {
        s += column[static_cast<size_t>(k)];
      }
      out[static_cast<size_t>(i)] = static_cast<float>(s / beta);
    }
  });
  return out;
}

std::vector<float> Flame::Aggregate(const std::vector<ModelUpdate>& updates) const {
  CheckUpdates(updates);
  size_t n = updates.size();
  if (n <= 2) {
    return IterativeAveraging().Aggregate(updates);
  }
  // 1. Outlier filtering on mean pairwise cosine distance (cluster-free approximation of
  //    FLAME's HDBSCAN step; both rely only on permutation-invariant distances).
  std::vector<double> mean_dist(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i != j) {
        mean_dist[i] += CosineDist(updates[i].values, updates[j].values);
      }
    }
    mean_dist[i] /= static_cast<double>(n - 1);
  }
  double med = Median(mean_dist);
  std::vector<size_t> kept;
  for (size_t i = 0; i < n; ++i) {
    if (mean_dist[i] <= 2.0 * med + 1e-12) {
      kept.push_back(i);
    }
  }
  if (kept.empty()) {
    for (size_t i = 0; i < n; ++i) {
      kept.push_back(i);
    }
  }
  // 2. Norm clipping to the median norm of the survivors.
  std::vector<double> norms;
  norms.reserve(kept.size());
  for (size_t i : kept) {
    norms.push_back(Norm(updates[i].values));
  }
  double clip = Median(norms);
  // 3. Average the clipped survivors, coordinate-major (per-coordinate accumulation
  //    order over |kept| is unchanged from the serial version).
  std::vector<double> scales(kept.size());
  for (size_t k = 0; k < kept.size(); ++k) {
    double norm = norms[k];
    scales[k] = (norm > clip && norm > 0.0) ? clip / norm : 1.0;
  }
  std::vector<float> out(updates[0].values.size(), 0.0f);
  parallel::ParallelFor(
      0, static_cast<int64_t>(out.size()), kCoordGrain, [&](int64_t lo, int64_t hi) {
        for (size_t k = 0; k < kept.size(); ++k) {
          const double scale = scales[k];
          const float* v = updates[kept[k]].values.data();
          for (int64_t i = lo; i < hi; ++i) {
            out[static_cast<size_t>(i)] += static_cast<float>(v[i] * scale);
          }
        }
      });
  float inv = 1.0f / static_cast<float>(kept.size());
  for (auto& v : out) {
    v *= inv;
  }
  return out;
}

std::vector<float> TrimmedMean::Aggregate(const std::vector<ModelUpdate>& updates) const {
  CheckUpdates(updates);
  int n = static_cast<int>(updates.size());
  DETA_CHECK_MSG(2 * trim_ < n, "trim " << trim_ << " too large for " << n << " updates");
  size_t len = updates[0].values.size();
  std::vector<float> out(len);
  parallel::ParallelFor(0, static_cast<int64_t>(len), kSortGrain, [&](int64_t lo, int64_t hi) {
    std::vector<float> column(static_cast<size_t>(n));
    for (int64_t i = lo; i < hi; ++i) {
      for (int p = 0; p < n; ++p) {
        column[static_cast<size_t>(p)] =
            updates[static_cast<size_t>(p)].values[static_cast<size_t>(i)];
      }
      std::sort(column.begin(), column.end());
      double s = 0.0;
      for (int p = trim_; p < n - trim_; ++p) {
        s += column[static_cast<size_t>(p)];
      }
      out[static_cast<size_t>(i)] = static_cast<float>(s / (n - 2 * trim_));
    }
  });
  return out;
}

namespace {

// Telemetry decorator wrapped around every factory-made algorithm: per-call counters
// plus a `span.fl.aggregation.<name>.wall_s` latency histogram. Delegation is a plain
// virtual call, so the numeric results are untouched.
class InstrumentedAlgorithm : public AggregationAlgorithm {
 public:
  explicit InstrumentedAlgorithm(std::unique_ptr<AggregationAlgorithm> inner)
      : inner_(std::move(inner)) {
    span_name_ = "fl.aggregation.";
    span_name_.append(inner_->Name());
  }

  std::vector<float> Aggregate(const std::vector<ModelUpdate>& updates) const override {
    telemetry::Span span(span_name_);
    DETA_COUNTER("fl.aggregation.calls").Increment();
    DETA_COUNTER("fl.aggregation.updates_in").Add(updates.size());
    if (!updates.empty()) {
      DETA_HISTOGRAM("fl.aggregation.vector_len", ::deta::telemetry::Unit::kCount)
          .Record(static_cast<double>(updates[0].values.size()));
    }
    return inner_->Aggregate(updates);
  }

  std::string Name() const override { return inner_->Name(); }

 private:
  std::unique_ptr<AggregationAlgorithm> inner_;
  std::string span_name_;
};

}  // namespace

std::unique_ptr<AggregationAlgorithm> MakeAlgorithm(const std::string& name) {
  std::unique_ptr<AggregationAlgorithm> algo;
  if (name == "iterative_averaging") {
    algo = std::make_unique<IterativeAveraging>();
  } else if (name == "coordinate_median") {
    algo = std::make_unique<CoordinateMedian>();
  } else if (name == "krum") {
    algo = std::make_unique<Krum>(1);
  } else if (name == "flame") {
    algo = std::make_unique<Flame>();
  } else if (name == "trimmed_mean") {
    algo = std::make_unique<TrimmedMean>(1);
  } else if (name == "multi_krum") {
    algo = std::make_unique<MultiKrum>(1, 3);
  } else if (name == "bulyan") {
    algo = std::make_unique<Bulyan>(1);
  } else {
    DETA_CHECK_MSG(false, "unknown aggregation algorithm: " << name);
  }
  return std::make_unique<InstrumentedAlgorithm>(std::move(algo));
}

}  // namespace deta::fl
